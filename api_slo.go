package micstream

import (
	"micstream/internal/experiments"
	"micstream/internal/serve"
	"micstream/internal/slo"
)

// SLO layer (DESIGN.md §16): tenants declare objectives — latency
// targets, per-job deadlines with miss budgets, throughput floors —
// and a deterministic evaluator folds the telemetry stream into
// windowed error budgets, Google-SRE multi-window burn rates, and
// causally attributed violations. Evaluation happens only at drain
// instants in virtual time, so every verdict (and the SLO_<run>.json
// artifact) is bit-identical across same-seed runs, and the evaluator
// never perturbs the run it observes.

type (
	// SLOSpec is a tenant's declarative set of objectives, loadable
	// from JSON (LoadSLOSpec / ParseSLOSpec).
	SLOSpec = slo.Spec
	// SLOObjective is one objective: a latency target, a deadline
	// miss budget, or a throughput floor, with its burn-rate alert
	// windows and thresholds.
	SLOObjective = slo.Objective
	// SLOEvaluator folds telemetry into per-objective budgets, burn
	// rates, alerts and attributed violations. Attach it to a
	// Telemetry recorder (Attach), or let the serve layer wire it.
	SLOEvaluator = slo.Evaluator
	// SLOState is one objective's verdict: samples, breaches,
	// remaining budget, burn rates, alert and exhaustion instants.
	SLOState = slo.ObjectiveState
	// SLOAlert is one burn-rate alert episode (fired, maybe cleared),
	// stamped in virtual time.
	SLOAlert = slo.Alert
	// SLOViolation is one attributed breach: which job, at what
	// drain instant, over which budget, dominated by which causal
	// phase of its timeline.
	SLOViolation = slo.Violation
	// SLOMeta is the provenance block of an SLO_<run>.json artifact.
	SLOMeta = slo.Meta
)

// NewSLOEvaluator builds an evaluator for the spec (normalized and
// validated; defaults fill unset windows and burn thresholds).
func NewSLOEvaluator(spec SLOSpec) (*SLOEvaluator, error) { return slo.New(spec) }

// LoadSLOSpec reads and validates a JSON objective spec from a file.
func LoadSLOSpec(path string) (SLOSpec, error) { return slo.LoadSpec(path) }

// ParseSLOSpec parses and validates a JSON objective spec.
func ParseSLOSpec(data []byte) (SLOSpec, error) { return slo.ParseSpec(data) }

// WithServeSLO attaches an SLO evaluator to the server: live /slo and
// /health endpoints, mic_slo_* families joined into /metrics, and
// budget exhaustion triggering the flight recorder. Requires a
// cluster built WithClusterTelemetry.
func WithServeSLO(ev *SLOEvaluator) ServeOption { return serve.WithSLO(ev) }

// WithServeSLOMeta sets the provenance block of the server's /slo
// report.
func WithServeSLOMeta(m SLOMeta) ServeOption { return serve.WithSLOMeta(m) }

// StampSLODeadlines copies each deadline-kind objective's threshold
// onto its tenant's jobs as their declared relative deadline, so the
// scheduler's miss accounting and the evaluator judge the same budget.
// Jobs that already declare a deadline keep it.
func StampSLODeadlines(jobs []ClusterJob, spec SLOSpec) { experiments.StampDeadlines(jobs, spec) }
