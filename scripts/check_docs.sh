#!/bin/sh
# check_docs.sh — documentation lint for CI and local runs.
#
# 1. Every library package (root + internal/...) must carry a
#    `// Package <name>` doc comment; every command under cmd/ a
#    `// Command <name>` one; every example program some leading
#    comment before `package main`.
# 2. Every relative markdown link or bare file reference in the
#    top-level documents must point at a file that exists.
#
# Exits non-zero with a list of violations.
set -eu
cd "$(dirname "$0")/.."

fail=0

# --- package comments -------------------------------------------------
for dir in $(go list -f '{{.Dir}}' ./...); do
    rel=${dir#"$(pwd)"/}
    case "$rel" in
    "$(pwd)") rel="." ;;
    esac
    case "$rel" in
    cmd/*)
        pattern='^// Command ' ;;
    examples/*)
        pattern='^//' ;;
    *)
        pattern='^// Package ' ;;
    esac
    if ! grep -lq "$pattern" "$dir"/*.go 2>/dev/null; then
        echo "missing doc comment ($pattern) in package $rel"
        fail=1
    fi
done

# --- markdown links ---------------------------------------------------
for doc in README.md DESIGN.md ROADMAP.md CHANGES.md; do
    [ -f "$doc" ] || { echo "missing top-level document $doc"; fail=1; continue; }
    # Relative links in [text](target) form; external URLs and
    # intra-page anchors are skipped.
    for target in $(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//'); do
        case "$target" in
        http://*|https://*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -z "$path" ] && continue
        if [ ! -e "$path" ]; then
            echo "$doc: broken link -> $target"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "docs check failed"
    exit 1
fi
echo "docs check ok"
