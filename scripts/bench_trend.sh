#!/usr/bin/env bash
# bench_trend.sh — fold the recorded BENCH_*.json points into one
# perf-trajectory file and gate on throughput regressions.
#
# Usage: scripts/bench_trend.sh [run-id]
#
# Reads every bench/BENCH_*.json point (bench.sh writes one per run,
# CI accumulates them as artifacts next to the committed baseline),
# merges the jobs/s throughput series into bench/TREND_<run-id>.json —
# one series per benchmark name, points in file order, so the
# trajectory of the admission-path hot numbers reads as one document —
# and then compares the named run's point against
# bench/BENCH_baseline.json: any throughput series that dropped more
# than THRESHOLD (default 10%) below the baseline fails the script
# with exit 1, naming the series and both numbers. A new series with
# no baseline entry is reported but not gated (the next baseline
# refresh picks it up).
#
# ns/op numbers at -benchtime 1x are smoke readings and far too noisy
# to gate on; the jobs/s series are sustained-rate measurements over
# thousands of admissions, where a >10% drop is a real regression.
set -euo pipefail
cd "$(dirname "$0")/.."

run="${1:-local}"
threshold="${THRESHOLD:-10}"
baseline="bench/BENCH_baseline.json"
latest="bench/BENCH_${run}.json"
out="bench/TREND_${run}.json"

if [ ! -f "$baseline" ]; then
  echo "bench_trend.sh: no $baseline — nothing to gate against" >&2
  exit 1
fi
if [ ! -f "$latest" ]; then
  echo "bench_trend.sh: no $latest — run scripts/bench.sh $run first" >&2
  exit 1
fi

# extract_throughput FILE prints "name jobs_per_s" per series in the
# file's throughput array.
extract_throughput() {
  awk '
    /"throughput": \[/ { in_tp = 1; next }
    in_tp && /^  \]/   { in_tp = 0 }
    in_tp && /"name":/ {
      name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
      rate = $0; sub(/.*"jobs_per_s": /, "", rate); sub(/[,}].*/, "", rate)
      print name, rate
    }
  ' "$1"
}

# The merged trajectory: every point's series, grouped by name, in
# stable (sorted-file, then file-order) sequence.
mkdir -p bench
{
  printf '{\n  "run": "%s",\n  "threshold_pct": %s,\n  "series": [\n' "$run" "$threshold"
  first_series=1
  # Series names, sorted for a stable document.
  for name in $(for f in bench/BENCH_*.json; do extract_throughput "$f"; done | awk '{print $1}' | sort -u); do
    [ "$first_series" -eq 1 ] || printf ',\n'
    first_series=0
    printf '    {"name": "%s", "points": [' "$name"
    first_pt=1
    for f in $(ls bench/BENCH_*.json | sort); do
      pt_run=$(awk '/"run":/ { sub(/.*"run": "/, ""); sub(/".*/, ""); print; exit }' "$f")
      rate=$(extract_throughput "$f" | awk -v n="$name" '$1 == n { print $2; exit }')
      [ -n "$rate" ] || continue
      [ "$first_pt" -eq 1 ] || printf ', '
      first_pt=0
      printf '{"run": "%s", "jobs_per_s": %s}' "$pt_run" "$rate"
    done
    printf ']}'
  done
  printf '\n  ]\n}\n'
} > "$out"
echo "wrote $out ($(ls bench/BENCH_*.json | wc -l | tr -d ' ') points merged)"

# The gate: the named run vs the baseline, series by series.
status=0
while read -r name rate; do
  base=$(extract_throughput "$baseline" | awk -v n="$name" '$1 == n { print $2; exit }')
  if [ -z "$base" ]; then
    echo "bench_trend: $name: new series (${rate} jobs/s), no baseline to gate against"
    continue
  fi
  verdict=$(awk -v b="$base" -v r="$rate" -v t="$threshold" 'BEGIN {
    drop = (b - r) / b * 100
    if (drop > t) printf "REGRESSION %.1f", drop
    else if (drop > 0) printf "ok -%.1f", drop
    else printf "ok +%.1f", (drop < 0 ? -drop : 0)
  }')
  case "$verdict" in
    REGRESSION*)
      pct=${verdict#REGRESSION }
      echo "bench_trend: $name: ${rate} jobs/s is ${pct}% below baseline ${base} (gate: ${threshold}%)" >&2
      status=1
      ;;
    *)
      echo "bench_trend: $name: ${rate} vs baseline ${base} jobs/s (${verdict#ok })"
      ;;
  esac
done < <(extract_throughput "$latest")

if [ "$status" -ne 0 ]; then
  echo "bench_trend: FAILED — throughput regressed more than ${threshold}% vs baseline" >&2
  exit 1
fi
echo "bench_trend: ok (no series more than ${threshold}% below baseline)"
