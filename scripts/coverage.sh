#!/usr/bin/env bash
# coverage.sh — run the test suite with coverage, gate on a minimum
# total, and record the summary as a JSON artifact point.
#
# Usage: scripts/coverage.sh [run-id]
#
# Runs `go test -coverprofile` over every package (counting coverage
# across package boundaries with -coverpkg, so e.g. experiments runs
# credit the cluster code they exercise), fails if the total statement
# coverage drops below COVERAGE_THRESHOLD (default 70%, below the
# seed's measured state so the gate catches erosion, not noise), and
# renders the per-package mean function coverage into
# COVERAGE_<run-id>.json. CI uploads the file next to
# BENCH_<run-id>.json, so the artifact sequence records the coverage
# trajectory alongside the perf one.
set -euo pipefail
cd "$(dirname "$0")/.."

run="${1:-local}"
out="COVERAGE_${run}.json"
threshold="${COVERAGE_THRESHOLD:-70}"

profile="$(mktemp)"
funcs="$(mktemp)"
trap 'rm -f "$profile" "$funcs"' EXIT

go test -count=1 -coverprofile="$profile" -coverpkg=./... ./... > /dev/null
go tool cover -func="$profile" > "$funcs"

total="$(awk '/^total:/ { sub(/%/, "", $3); print $3 }' "$funcs")"

{
  printf '{\n'
  printf '  "run": "%s",\n' "$run"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "threshold_percent": %s,\n' "$threshold"
  printf '  "total_percent": %s,\n' "$total"
  printf '  "packages": [\n'
  awk '
    $1 ~ /\.go:/ {
      pkg = $1
      sub(/\/[^\/]*\.go:.*$/, "", pkg)
      pct = $3; sub(/%/, "", pct)
      funcs[pkg] += 1
      sum[pkg] += pct
    }
    END {
      for (pkg in funcs)
        printf "%s %.1f\n", pkg, sum[pkg] / funcs[pkg]
    }
  ' "$funcs" | sort | awk '{
    if (sep) print sep
    printf "    {\"package\": \"%s\", \"mean_func_percent\": %s}", $1, $2
    sep = ","
  }
  END { print "" }'
  printf '  ]\n'
  printf '}\n'
} > "$out"

echo "coverage: ${total}% total (threshold ${threshold}%) → $out"
awk -v t="$threshold" -v c="$total" 'BEGIN {
  if (c + 0 < t + 0) {
    printf "coverage %s%% is below the %s%% gate\n", c, t
    exit 1
  }
}'
