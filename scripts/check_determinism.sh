#!/usr/bin/env bash
# check_determinism.sh — static lint for the determinism contract.
#
# The simulation packages promise bit-identical runs per seed
# (DESIGN.md §2): all time is virtual, and nothing observable may
# depend on Go's randomized map iteration order. This script enforces
# the two leak classes that property tests catch only probabilistically:
#
#  1. Wall-clock reads. time.Now/Since/Until/Sleep have no place in
#     the virtual-time packages — timestamps come from the engine's
#     clock. (Benchmarks and the CLIs may read real time; they are not
#     linted.)
#
#  2. Unordered map iteration. `for ... range m` over a map feeds
#     Go's per-run random order into whatever the loop emits. Every
#     such loop in the linted packages must either be the
#     collect-keys-then-sort idiom (a sort within the next few lines)
#     or carry a nearby comment marking it order-independent /
#     sorted, so the exemption is visible at the loop.
#
# Scope: internal/{sim,sched,cluster,telemetry,obs,slo}, non-test
# files (tests may use wall clocks for timeouts and maps for
# assertions).
#
# A dynamic check rides along: two back-to-back `miccluster -slo`
# runs of the same seed must write byte-identical SLO reports — the
# artifact-level determinism the static lint protects.
set -euo pipefail
cd "$(dirname "$0")/.."

dirs="internal/sim internal/sched internal/cluster internal/telemetry internal/obs internal/slo"
status=0

if out=$(grep -rn --include='*.go' -E 'time\.(Now|Since|Until|Sleep)\(' $dirs | grep -v '_test.go'); then
  echo "check_determinism: wall-clock use in virtual-time packages:" >&2
  echo "$out" >&2
  status=1
fi

for f in $(find $dirs -name '*.go' ! -name '*_test.go' | sort); do
  if ! awk '
    {
      lines[NR] = $0
      line = $0
      sub(/\/\/.*/, "", line)   # declarations inside comments do not count
      # assignment / short-declaration of a map value
      if (line ~ /:?= *(make\()?map\[/) {
        n = line
        sub(/ *:?= *(make\()?map\[.*/, "", n)
        sub(/.*[^A-Za-z0-9_]/, "", n)
        if (n ~ /^[A-Za-z_][A-Za-z0-9_]*$/) maps[n] = 1
      }
      # struct field, var decl, or parameter typed as a map
      if (line ~ /[A-Za-z_][A-Za-z0-9_]* +map\[/) {
        n = line
        sub(/ +map\[.*/, "", n)
        sub(/.*[^A-Za-z0-9_]/, "", n)
        if (n ~ /^[A-Za-z_][A-Za-z0-9_]*$/) maps[n] = 1
      }
    }
    END {
      bad = 0
      for (i = 1; i <= NR; i++) {
        line = lines[i]
        if (line !~ /for .* range /) continue
        n = line
        sub(/.*range +/, "", n)
        sub(/[^A-Za-z0-9_.].*/, "", n)
        leaf = n
        sub(/.*\./, "", leaf)
        if (!(leaf in maps)) continue
        ok = 0
        for (j = i + 1; j <= i + 6 && j <= NR; j++)
          if (lines[j] ~ /sort\.|slices\.Sort/) ok = 1
        for (j = (i > 3 ? i - 3 : 1); j <= i; j++)
          if (lines[j] ~ /order-independent|sorted|stable order/) ok = 1
        if (!ok) {
          printf "%s:%d: range over map %s without a nearby sort or order-independent annotation\n", FILENAME, i, n
          bad = 1
        }
      }
      exit bad
    }
  ' "$f"; then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "check_determinism: FAILED" >&2
  exit 1
fi

# Byte-identity of the SLO artifact: same seed, same spec, two runs,
# one diff. Catches any nondeterminism the static lint's scope misses
# (float formatting, map order in a rendered report, hidden clocks).
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cat > "$tmp/spec.json" <<'EOF'
{"objectives": [
  {"tenant": "A", "name": "a-lat", "kind": "latency", "target": 0.9, "threshold": "1500us", "fast_burn": 8, "slow_burn": 4},
  {"tenant": "B", "name": "b-deadline", "kind": "deadline", "target": 0.8, "threshold": "2ms"}
]}
EOF
go run ./cmd/miccluster -njobs=24 -seed=3 -slo "$tmp/spec.json" -slo-json "$tmp/SLO_a.json" > /dev/null
go run ./cmd/miccluster -njobs=24 -seed=3 -slo "$tmp/spec.json" -slo-json "$tmp/SLO_b.json" > /dev/null
if ! cmp -s "$tmp/SLO_a.json" "$tmp/SLO_b.json"; then
  echo "check_determinism: FAILED — back-to-back SLO reports differ:" >&2
  diff "$tmp/SLO_a.json" "$tmp/SLO_b.json" >&2 || true
  exit 1
fi

echo "check_determinism: ok (no wall-clock reads, all map iterations ordered or annotated, SLO reports byte-identical)"
