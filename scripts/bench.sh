#!/usr/bin/env bash
# bench.sh — run the benchmark suite once and record the result as a
# JSON perf-trajectory point.
#
# Usage: scripts/bench.sh [run-id]
#
# Runs every benchmark at -benchtime 1x (a smoke pass: one iteration
# each, catching crashes and gross regressions rather than noise-free
# timings) and renders the `go test -bench` output into
# bench/BENCH_<run-id>.json — next to bench/BENCH_baseline.json, so
# the directory accumulates the recorded perf trajectory instead of
# scattering points at the repo root where .gitignore eats them. CI
# invokes this with the workflow run id and uploads the file as an
# artifact too.
#
# The point carries two views: "benchmarks", every benchmark's own
# metrics (ns/op becomes ns_per_op, jobs/s becomes jobs_per_s, any
# other metric follows the same slash-to-_per_ rule), and
# "throughput", the jobs-per-second admission series — the sustained
# concurrent-ingest rate measured by an actual `micserve -rate-only`
# run (SERVE_JOBS jobs through 8 submitter goroutines, default 2000)
# followed by the extracted scheduler/cluster/traced/serve canaries —
# the headline numbers a trajectory diff looks at first.
#
# Zero matched benchmarks is a failure, not an empty trajectory point:
# a -run/-bench typo or a build constraint silently filtering the
# suite must fail CI loudly.
set -euo pipefail
cd "$(dirname "$0")/.."

run="${1:-local}"
out="bench/BENCH_${run}.json"
benchtime="${BENCHTIME:-1x}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench . -benchtime "$benchtime" -run '^$' . | tee "$raw"

matched="$(grep -c '^Benchmark' "$raw" || true)"
if [ "${matched:-0}" -eq 0 ]; then
  echo "bench.sh: no benchmarks matched — refusing to write an empty trajectory point" >&2
  exit 1
fi

# Service-mode sustained ingest: a real micserve run (concurrent
# submitters racing through the admission frontier, then a drain), not
# a testing.B loop — this is the end-to-end number an operator sees.
serve_jobs="${SERVE_JOBS:-2000}"
serve_rate="$(go run ./cmd/micserve -rate-only -jobs "$serve_jobs" -submitters 8)"
echo "micserve sustained ingest: ${serve_rate} jobs/s (${serve_jobs} jobs, 8 submitters)"

mkdir -p bench
{
  printf '{\n'
  printf '  "run": "%s",\n' "$run"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "benchmarks": [\n'
  awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
      for (i = 3; i < NF; i += 2) {
        key = $(i + 1); gsub(/\//, "_per_", key)
        line = line sprintf(", \"%s\": %s", key, $i)
      }
      line = line "}"
      if (sep) print sep
      printf "%s", line
      sep = ","
    }
    END { print "" }
  ' "$raw"
  printf '  ],\n'
  printf '  "throughput": [\n'
  printf '    {"name": "micserve/sustained-ingest", "jobs_per_s": %s}' "$serve_rate"
  awk '
    BEGIN { sep = "," }
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      for (i = 3; i < NF; i += 2) {
        if ($(i + 1) == "jobs/s") {
          line = sprintf("    {\"name\": \"%s\", \"jobs_per_s\": %s}", name, $i)
          print sep
          printf "%s", line
        }
      }
    }
    END { print "" }
  ' "$raw"
  printf '  ]\n'
  printf '}\n'
} > "$out"

echo "wrote $out ($matched benchmarks; trajectory now $(ls bench/BENCH_*.json | wc -l | tr -d ' ') points)"
