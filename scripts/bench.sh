#!/usr/bin/env bash
# bench.sh — run the benchmark suite once and record the result as a
# JSON perf-trajectory point.
#
# Usage: scripts/bench.sh [run-id]
#
# Runs every benchmark at -benchtime 1x (a smoke pass: one iteration
# each, catching crashes and gross regressions rather than noise-free
# timings) and renders the `go test -bench` output into
# BENCH_<run-id>.json. CI invokes this with the workflow run id and
# uploads the file as an artifact, so the sequence of artifacts across
# runs forms a recorded perf trajectory; bench/BENCH_baseline.json is
# the first committed point.
#
# Units in the JSON are the benchmark's own: ns/op becomes ns_per_op,
# jobs/s becomes jobs_per_s, and any other metric follows the same
# slash-to-_per_ rule.
set -euo pipefail
cd "$(dirname "$0")/.."

run="${1:-local}"
out="BENCH_${run}.json"
benchtime="${BENCHTIME:-1x}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench . -benchtime "$benchtime" -run '^$' . | tee "$raw"

{
  printf '{\n'
  printf '  "run": "%s",\n' "$run"
  printf '  "benchtime": "%s",\n' "$benchtime"
  printf '  "go": "%s",\n' "$(go env GOVERSION)"
  printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "benchmarks": [\n'
  awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
      for (i = 3; i < NF; i += 2) {
        key = $(i + 1); gsub(/\//, "_per_", key)
        line = line sprintf(", \"%s\": %s", key, $i)
      }
      line = line "}"
      if (sep) print sep
      printf "%s", line
      sep = ","
    }
    END { print "" }
  ' "$raw"
  printf '  ]\n'
  printf '}\n'
} > "$out"

echo "wrote $out"
