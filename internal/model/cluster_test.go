package model

import (
	"testing"

	"micstream/internal/device"
	"micstream/internal/pcie"
)

// clusterWorkload is a generic overlappable bag with staging traffic
// proportional to the split: every extra device stages 8 MiB per
// round through the host.
func clusterWorkload() ClusterWorkload {
	w := Uniform("bag", 64<<20, 64<<20, device.KernelCost{Name: "k", Flops: 4e10, Efficiency: 0.5})
	return Split(w, func(devices int) int64 { return int64(devices-1) * (8 << 20) })
}

func TestPredictClusterOneDeviceMatchesPredict(t *testing.T) {
	m := New(device.Xeon31SP(), pcie.DefaultConfig())
	cw := clusterWorkload()
	for _, pt := range [][2]int{{4, 16}, {8, 32}, {2, 8}} {
		single, err := m.Predict(cw.Workload, pt[0], pt[1])
		if err != nil {
			t.Fatal(err)
		}
		multi, err := m.PredictCluster(cw, 1, pt[0], pt[1])
		if err != nil {
			t.Fatal(err)
		}
		if single.Wall != multi.Wall {
			t.Errorf("P=%d T=%d: PredictCluster(1 dev) wall %v != Predict wall %v",
				pt[0], pt[1], multi.Wall, single.Wall)
		}
		if multi.Speedup != 1 || multi.StagingTime != 0 {
			t.Errorf("P=%d T=%d: one device should have speedup 1 and no staging, got %v / %v",
				pt[0], pt[1], multi.Speedup, multi.StagingTime)
		}
	}
}

func TestPredictClusterSubLinearScaling(t *testing.T) {
	// The Fig. 11 shape, predicted: two devices beat one but land
	// below the 2× projection because of the staged traffic.
	m := New(device.Xeon31SP(), pcie.DefaultConfig())
	cw := clusterWorkload()
	one, err := m.PredictCluster(cw, 1, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	two, err := m.PredictCluster(cw, 2, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if two.Wall >= one.Wall {
		t.Fatalf("2 devices (%v) should beat 1 (%v)", two.Wall, one.Wall)
	}
	if two.Speedup >= 2 {
		t.Fatalf("staged split should scale sub-linearly, got %.2fx", two.Speedup)
	}
	if two.Speedup <= 1 {
		t.Fatalf("2 devices should still win, got %.2fx", two.Speedup)
	}
	if two.StagingTime <= 0 {
		t.Fatal("2-device split should charge staging time")
	}

	// Free splits (no staging function) scale nearly linearly on
	// dedicated links: the only loss is the ceiling division.
	free := Split(cw.Workload, nil)
	ftwo, err := m.PredictCluster(free, 2, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ftwo.Speedup < 1.9 {
		t.Fatalf("free split should be near-linear, got %.2fx", ftwo.Speedup)
	}
	if ftwo.Speedup < two.Speedup {
		t.Fatal("staging should only ever slow the split down")
	}
}

func TestPredictClusterHostContention(t *testing.T) {
	// Capping the host complex at one link's bandwidth makes four
	// concurrent links contend 4×, stretching transfers.
	link := pcie.DefaultConfig()
	free := New(device.Xeon31SP(), link)
	capped := New(device.Xeon31SP(), link)
	capped.HostBandwidthBps = link.BandwidthBps
	cw := Split(clusterWorkload().Workload, nil)

	a, err := free.PredictCluster(cw, 4, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := capped.PredictCluster(cw, 4, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if b.LinkContention != 4 {
		t.Fatalf("contention = %v, want 4", b.LinkContention)
	}
	if b.Wall <= a.Wall {
		t.Fatalf("shared host complex (%v) should be slower than dedicated links (%v)", b.Wall, a.Wall)
	}
	// One device never contends with itself.
	c, err := capped.PredictCluster(cw, 1, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if c.LinkContention != 1 {
		t.Fatalf("single-device contention = %v, want 1", c.LinkContention)
	}
}

func TestPredictClusterErrors(t *testing.T) {
	m := New(device.Xeon31SP(), pcie.DefaultConfig())
	cw := clusterWorkload()
	if _, err := m.PredictCluster(cw, 0, 4, 16); err == nil {
		t.Error("zero devices should error")
	}
	if _, err := m.PredictCluster(cw, 2, 0, 16); err == nil {
		t.Error("zero partitions should error")
	}
	if _, err := m.PredictCluster(cw, 2, 4, 0); err == nil {
		t.Error("zero tiles should error")
	}
	if _, err := m.PredictCluster(ClusterWorkload{}, 2, 4, 16); err == nil {
		t.Error("workload without phases should error")
	}
}

// TestStagingOnlyPricesOneTransfer: the staging-only form the cluster
// prices residual staging with carries no compute, charges exactly the
// two-crossing staging time, and scales with calibration and the
// shared-host contention factor.
func TestStagingOnlyPricesOneTransfer(t *testing.T) {
	m := New(device.Xeon31SP(), pcie.DefaultConfig())
	cw := StagingOnly("staging", 4<<20)
	p, err := m.PredictCluster(cw, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.DeviceWall != 0 {
		t.Errorf("staging-only workload has device wall %v, want 0", p.DeviceWall)
	}
	if p.StagingTime <= 0 || p.Wall != p.StagingTime {
		t.Errorf("wall %v / staging %v: want wall == staging > 0", p.Wall, p.StagingTime)
	}
	if want := m.stagingTime(4<<20, 1); p.StagingTime != want {
		t.Errorf("staging time %v, want the two-crossing charge %v", p.StagingTime, want)
	}

	// Calibration stretches the price.
	cal := New(device.Xeon31SP(), pcie.DefaultConfig())
	cal.TransferScale = 2
	pc, err := cal.PredictCluster(cw, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pc.StagingTime <= p.StagingTime {
		t.Errorf("TransferScale=2 staging %v should exceed uncalibrated %v", pc.StagingTime, p.StagingTime)
	}

	// A capped host root complex stretches it further.
	capped := New(device.Xeon31SP(), pcie.DefaultConfig())
	capped.HostBandwidthBps = capped.Link.BandwidthBps // 2 links share 1 link's rate
	ph, err := capped.PredictCluster(cw, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ph.StagingTime <= p.StagingTime {
		t.Errorf("contended staging %v should exceed dedicated %v", ph.StagingTime, p.StagingTime)
	}

	// Zero bytes price zero.
	z, err := m.PredictCluster(StagingOnly("none", 0), 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if z.Wall != 0 {
		t.Errorf("zero-byte staging-only wall %v, want 0", z.Wall)
	}
}
