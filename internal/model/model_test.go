package model_test

import (
	"math"
	"reflect"
	"testing"

	"micstream/internal/apps/hbench"
	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/experiments"
	"micstream/internal/hstreams"
	"micstream/internal/model"
	"micstream/internal/pcie"
)

const (
	synthFlops = 4e10
	synthBytes = int64(256 << 20)
)

func synthModel() (*model.Model, model.Workload, core.EvalFunc) {
	m := model.New(device.Xeon31SP(), pcie.DefaultConfig())
	return m, experiments.SynthWorkload(synthFlops, synthBytes),
		experiments.SynthEval(synthFlops, synthBytes)
}

// With one stream the pipeline degenerates to a serial chain the model
// reproduces exactly: FIFO order leaves nothing to approximate.
func TestPredictSerialExact(t *testing.T) {
	m, w, eval := synthModel()
	for _, tiles := range []int{1, 2, 8, 32, 128} {
		pred, err := m.Predict(w, 1, tiles)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := eval(1, tiles)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(pred.Seconds()-meas) / meas; e > 1e-9 {
			t.Errorf("P=1 T=%d: predicted %.6fms, simulated %.6fms (err %.3g) — serial case must be exact",
				tiles, pred.Seconds()*1e3, meas*1e3, e)
		}
	}
}

// Across the streamed (P, T) plane the closed forms stay within a
// stated bound of full simulation on the synthetic workload.
func TestPredictAccuracySynthetic(t *testing.T) {
	m, w, eval := synthModel()
	var sum, worst float64
	n := 0
	for _, p := range []int{2, 4, 8, 14, 28, 56} {
		for _, tiles := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
			pred, err := m.Predict(w, p, tiles)
			if err != nil {
				t.Fatal(err)
			}
			meas, err := eval(p, tiles)
			if err != nil {
				t.Fatal(err)
			}
			e := math.Abs(pred.Seconds()-meas) / meas
			sum += e
			if e > worst {
				worst = e
			}
			n++
			if e > 0.15 {
				t.Errorf("P=%d T=%d: err %.1f%% exceeds 15%%", p, tiles, e*100)
			}
		}
	}
	if mean := sum / float64(n); mean > 0.05 {
		t.Errorf("mean error %.1f%% exceeds 5%% over %d points (worst %.1f%%)", mean*100, n, worst*100)
	}
}

// Every application's analytic self-description stays within its
// stated error bound of full simulation across the validation plane —
// including the transfer-bound (hbench short-iteration, nn) and
// compute-bound (hbench long-iteration, mm, srad) regimes.
func TestPredictAccuracyApps(t *testing.T) {
	apps, err := experiments.ModelApps()
	if err != nil {
		t.Fatal(err)
	}
	bounds := map[string]struct{ mean, max float64 }{
		"hbench":  {0.06, 0.16},
		"mm":      {0.08, 0.15},
		"nn":      {0.09, 0.16},
		"kmeans":  {0.03, 0.06},
		"hotspot": {0.04, 0.10},
		"srad":    {0.05, 0.12},
		// CF's right-looking DAG overlaps across steps the model
		// serializes; the bound records that known pessimism.
		"cf": {0.40, 0.70},
	}
	m := model.New(device.Xeon31SP(), pcie.DefaultConfig())
	for _, app := range apps {
		b, ok := bounds[app.Name]
		if !ok {
			t.Errorf("app %s has no stated error bound — add one", app.Name)
			continue
		}
		points, meanErr, maxErr, err := experiments.SweepModel(m, app)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if points == 0 {
			t.Errorf("%s: empty validation plane", app.Name)
		}
		if meanErr > b.mean {
			t.Errorf("%s: mean error %.1f%% exceeds stated bound %.0f%%", app.Name, meanErr*100, b.mean*100)
		}
		if maxErr > b.max {
			t.Errorf("%s: max error %.1f%% exceeds stated bound %.0f%%", app.Name, maxErr*100, b.max*100)
		}
	}
}

// The hbench iteration dial moves the workload across the
// transfer/compute crossover; the model must hold up in both regimes,
// not just at the calibrated default.
func TestPredictAccuracyRegimes(t *testing.T) {
	for _, tc := range []struct {
		name  string
		iters int
	}{
		{"transfer-bound", 5},
		{"compute-bound", 200},
	} {
		t.Run(tc.name, func(t *testing.T) {
			hb := newHBench(t, tc.iters)
			m := model.New(device.Xeon31SP(), pcie.DefaultConfig())
			w := hb.workload
			for _, p := range []int{4, 14, 56} {
				for _, tiles := range []int{p, 8 * p} {
					pred, err := m.Predict(w, p, tiles)
					if err != nil {
						t.Fatal(err)
					}
					meas, err := hb.eval(p, tiles)
					if err != nil {
						t.Fatal(err)
					}
					if e := math.Abs(pred.Seconds()-meas) / meas; e > 0.16 {
						t.Errorf("%s P=%d T=%d: err %.1f%% exceeds 16%%", tc.name, p, tiles, e*100)
					}
				}
			}
		})
	}
}

// Model-guided tuning must land within 5% of the exhaustive optimum on
// the synthetic mictune workload while simulating at most 25% of the
// (P, T) points — the search-cost contract of the model layer.
func TestGuidedWithinFiveRercentOfExhaustive(t *testing.T) {
	m, w, eval := synthModel()
	space := core.ExhaustiveSpace(56, 128)
	ex, err := core.Tune(space, eval)
	if err != nil {
		t.Fatal(err)
	}
	guided, err := core.TuneGuided(space, m.EvalFunc(w), eval, 16)
	if err != nil {
		t.Fatal(err)
	}
	if limit := space.Size() / 4; guided.Evaluations > limit {
		t.Errorf("guided search simulated %d of %d points (> 25%%)", guided.Evaluations, space.Size())
	}
	if gap := guided.Seconds/ex.Seconds - 1; gap > 0.05 {
		t.Errorf("guided optimum %.3fms is %.1f%% above exhaustive %.3fms (> 5%%)",
			guided.Seconds*1e3, gap*100, ex.Seconds*1e3)
	}
}

// Fit recovers a deliberate miscalibration: a model whose device is
// declared twice as fast predicts compute-bound configurations at half
// their simulated time until calibration scales them back.
func TestFitRecoversMiscalibration(t *testing.T) {
	dev := device.Xeon31SP()
	dev.FlopsPerCyclePerThread *= 2
	m := model.New(dev, pcie.DefaultConfig())
	w := experiments.SynthWorkload(4e11, 16<<20) // heavily compute-bound
	eval := experiments.SynthEval(4e11, 16<<20)
	space := core.HeuristicSpace(56, 64)

	errAt := func() float64 {
		var sum float64
		n := 0
		for _, p := range []int{2, 8, 56} {
			pred, err := m.Predict(w, p, 4*p)
			if err != nil {
				t.Fatal(err)
			}
			meas, err := eval(p, 4*p)
			if err != nil {
				t.Fatal(err)
			}
			sum += math.Abs(pred.Seconds()-meas) / meas
			n++
		}
		return sum / float64(n)
	}
	before := errAt()
	probes, err := m.Fit(w, space, eval, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) == 0 {
		t.Fatal("Fit returned no probes")
	}
	if m.ComputeScale < 1.5 || m.ComputeScale > 2.8 {
		t.Errorf("ComputeScale %.2f should recover the ~2x miscalibration", m.ComputeScale)
	}
	after := errAt()
	if after >= before {
		t.Errorf("calibration did not help: mean error %.1f%% before, %.1f%% after", before*100, after*100)
	}
	if after > 0.10 {
		t.Errorf("calibrated mean error %.1f%% exceeds 10%%", after*100)
	}
}

// Rank is a pure function: identical inputs give identical orderings,
// and TopK(1) agrees with BestConfig.
func TestRankDeterministic(t *testing.T) {
	m, w, _ := synthModel()
	space := core.HeuristicSpace(56, 128)
	a, err := m.Rank(w, space)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Rank(w, space)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Rank is not deterministic")
	}
	best, err := m.BestConfig(w, space)
	if err != nil {
		t.Fatal(err)
	}
	if best != a[0] {
		t.Fatalf("BestConfig %+v disagrees with Rank[0] %+v", best, a[0])
	}
	for i := 1; i < len(a); i++ {
		if a[i].Pred.Wall < a[i-1].Pred.Wall {
			t.Fatalf("Rank not sorted at %d", i)
		}
	}
}

// ServiceTime's serial chain matches a one-stream simulation of the
// same task list: with no concurrency there is nothing to approximate.
func TestServiceTimeMatchesSerialRun(t *testing.T) {
	ctx, err := hstreams.Init(hstreams.Config{Partitions: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	buf := hstreams.AllocVirtual(ctx, "data", 8<<20, 1)
	var tasks []*core.Task
	for i := 0; i < 4; i++ {
		off := i * buf.Len() / 4
		tasks = append(tasks, &core.Task{
			ID:         i,
			H2D:        []core.TransferSpec{core.Xfer(buf, off, buf.Len()/4)},
			Cost:       device.KernelCost{Name: "k", Flops: 1e9},
			D2H:        []core.TransferSpec{core.Xfer(buf, off, buf.Len()/4)},
			StreamHint: -1,
		})
	}
	m := model.New(device.Xeon31SP(), pcie.DefaultConfig())
	est := m.ServiceTime(tasks, 1)
	res, err := core.Run(ctx, tasks, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(est.Seconds()-res.Wall.Seconds()) / res.Wall.Seconds(); e > 0.005 {
		t.Errorf("ServiceTime %.3fms vs serial run %.3fms (err %.2f%%)",
			est.Seconds()*1e3, res.Wall.Milliseconds(), e*100)
	}
}

// FromTasks round-trips the aggregate quantities the predictor needs.
func TestFromTasksAggregates(t *testing.T) {
	ctx, err := hstreams.Init(hstreams.Config{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	buf := hstreams.AllocVirtual(ctx, "data", 1<<20, 4)
	tasks := []*core.Task{
		{ID: 0, H2D: []core.TransferSpec{core.Xfer(buf, 0, 1<<19)},
			Cost: device.KernelCost{Flops: 2e9, Efficiency: 0.5}},
		{ID: 1, Cost: device.KernelCost{Flops: 4e9, Efficiency: 0.5},
			D2H: []core.TransferSpec{core.Xfer(buf, 0, 1<<20)}},
	}
	w := model.FromTasks("job", tasks)
	if w.Flops != 6e9 {
		t.Errorf("Flops = %g, want 6e9", w.Flops)
	}
	phases := w.Phases(99) // tile count is fixed by the task list
	if len(phases) != 1 || phases[0].Tiles != 2 {
		t.Fatalf("phases = %+v, want one phase of 2 tiles", phases)
	}
	if got := phases[0].H2DBytesPerTile; got != 4*(1<<19)/2 {
		t.Errorf("H2DBytesPerTile = %d", got)
	}
	if got := phases[0].D2HBytesPerTile; got != 4*(1<<20)/2 {
		t.Errorf("D2HBytesPerTile = %d", got)
	}
	if !phases[0].HasKernel || phases[0].Cost.Efficiency != 0.5 {
		t.Errorf("kernel aggregate wrong: %+v", phases[0])
	}
}

// hbenchCase adapts one hbench instance for the regime tests.
type hbenchCase struct {
	workload model.Workload
	eval     core.EvalFunc
}

func newHBench(t *testing.T, iters int) hbenchCase {
	t.Helper()
	p := hbench.DefaultParams()
	p.Iterations = iters
	app, err := hbench.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return hbenchCase{
		workload: app.Model(),
		eval: func(partitions, tiles int) (float64, error) {
			res, err := app.RunStreamed(partitions, tiles)
			if err != nil {
				return 0, err
			}
			return res.Wall.Seconds(), nil
		},
	}
}
