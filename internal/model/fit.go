package model

import (
	"fmt"
	"sort"

	"micstream/internal/core"
)

// Candidate is one ranked (P, T) point.
type Candidate struct {
	// Partitions and Tiles identify the point.
	Partitions, Tiles int
	// Pred is the model's estimate for it.
	Pred Prediction
}

// Rank predicts every point of the space and returns the candidates
// sorted by ascending predicted wall time, ties broken by (partitions,
// tiles) so the order is deterministic.
func (m *Model) Rank(w Workload, space core.SearchSpace) ([]Candidate, error) {
	var out []Candidate
	for _, p := range space.Partitions {
		for _, t := range space.TilesFor(p) {
			pred, err := m.Predict(w, p, t)
			if err != nil {
				return nil, err
			}
			out = append(out, Candidate{Partitions: p, Tiles: t, Pred: pred})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("model: empty search space")
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pred.Wall != out[j].Pred.Wall {
			return out[i].Pred.Wall < out[j].Pred.Wall
		}
		if out[i].Partitions != out[j].Partitions {
			return out[i].Partitions < out[j].Partitions
		}
		return out[i].Tiles < out[j].Tiles
	})
	return out, nil
}

// TopK returns the k best-predicted candidates of the space (all of
// them when k exceeds the space size).
func (m *Model) TopK(w Workload, space core.SearchSpace, k int) ([]Candidate, error) {
	ranked, err := m.Rank(w, space)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		k = 1
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k], nil
}

// BestConfig returns the configuration the model predicts fastest.
func (m *Model) BestConfig(w Workload, space core.SearchSpace) (Candidate, error) {
	top, err := m.TopK(w, space, 1)
	if err != nil {
		return Candidate{}, err
	}
	return top[0], nil
}

// EvalFunc adapts the model to the tuner's measurement interface: an
// evaluation that predicts instead of simulating. Use it as the
// predict argument of core.TuneGuided.
func (m *Model) EvalFunc(w Workload) core.EvalFunc {
	return func(partitions, tiles int) (float64, error) {
		pred, err := m.Predict(w, partitions, tiles)
		if err != nil {
			return 0, err
		}
		return pred.Seconds(), nil
	}
}

// Probe is one calibration measurement: a (P, T) point with the
// model's raw prediction and the simulator's measurement, both in
// seconds.
type Probe struct {
	// Partitions and Tiles identify the probed point.
	Partitions, Tiles int
	// Predicted is the uncalibrated model estimate.
	Predicted float64
	// Measured is the simulated wall time.
	Measured float64
}

// Fit calibrates the model against at most probes simulated runs:
// probe points are spread deterministically over the space (both ends
// of each axis and evenly between), measured with eval, and the two
// regime scale factors are set to the mean measured/predicted ratio of
// the probes each closed form dominated. Regimes with no probe keep
// scale 1, and a probe error leaves the model's existing calibration
// untouched. Fit returns the probes so callers can report calibration
// quality; scales are clamped to [0.25, 4] — a model that far off is
// reported rather than silently stretched.
func (m *Model) Fit(w Workload, space core.SearchSpace, eval core.EvalFunc, probes int) ([]Probe, error) {
	type point struct{ p, t int }
	var pts []point
	for _, p := range space.Partitions {
		for _, t := range space.TilesFor(p) {
			pts = append(pts, point{p, t})
		}
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("model: empty search space")
	}
	if probes < 2 {
		probes = 2
	}
	if probes > len(pts) {
		probes = len(pts)
	}
	// Evenly spaced indices over the (P-major, T-minor) flattening,
	// always including both ends: the corners anchor the extremes of
	// both regimes, the interior points the transition.
	chosen := make([]point, 0, probes)
	seen := map[point]bool{}
	for i := 0; i < probes; i++ {
		idx := i * (len(pts) - 1) / (probes - 1)
		if pt := pts[idx]; !seen[pt] {
			seen[pt] = true
			chosen = append(chosen, pt)
		}
	}

	// Probe with an uncalibrated copy so the receiver keeps its
	// current calibration if any probe fails.
	raw := *m
	raw.TransferScale, raw.ComputeScale = 0, 0
	var out []Probe
	var tbSum, cbSum float64
	var tbN, cbN int
	for _, pt := range chosen {
		pred, err := raw.Predict(w, pt.p, pt.t)
		if err != nil {
			return nil, err
		}
		meas, err := eval(pt.p, pt.t)
		if err != nil {
			return nil, fmt.Errorf("model: probing P=%d T=%d: %w", pt.p, pt.t, err)
		}
		out = append(out, Probe{Partitions: pt.p, Tiles: pt.t, Predicted: pred.Seconds(), Measured: meas})
		if pred.Seconds() <= 0 || meas <= 0 {
			continue
		}
		ratio := meas / pred.Seconds()
		if pred.TransferBound {
			tbSum += ratio
			tbN++
		} else {
			cbSum += ratio
			cbN++
		}
	}
	clamp := func(v float64) float64 {
		if v < 0.25 {
			return 0.25
		}
		if v > 4 {
			return 4
		}
		return v
	}
	m.TransferScale, m.ComputeScale = 0, 0
	if tbN > 0 {
		m.TransferScale = clamp(tbSum / float64(tbN))
	}
	if cbN > 0 {
		m.ComputeScale = clamp(cbSum / float64(cbN))
	}
	return out, nil
}
