// Package model is the analytic performance model: closed-form
// predictions of wall time, overlap efficiency and GFLOPS for any
// (partitions, tiles) configuration of a tiled-offload workload,
// without running the discrete-event simulation.
//
// The paper discovers good configurations by measurement; its
// follow-ups (arXiv:1608.03044, arXiv:2003.04294) replace the
// exhaustive (P, T) search with a predictive model that picks the
// configuration directly. This package is that layer for the simulated
// platform. A prediction composes three closed forms:
//
//   - the kernel term reuses device.Config.KernelTimeOn — the exact
//     equation the simulator charges (DESIGN.md §2), evaluated on the
//     partition shapes of device.Config.PartitionLayout;
//   - the transfer term is pcie.Config.TransferTime aggregated over a
//     phase's tiles, serialized on the half-duplex link (§3);
//   - the pipeline composition approximates the schedule: per phase,
//     wall ≈ max(link demand + one exposed kernel, fill + per-partition
//     compute demand + drain), exact in both asymptotic regimes
//     (transfer-bound and compute-bound) and within a few percent in
//     between (DESIGN.md §8 derives the equations).
//
// Model.Fit calibrates two regime scale factors against a handful of
// simulated probe runs; Model.BestConfig/TopK rank a core.SearchSpace
// so a tuner can confirm only the most promising candidates by
// simulation (core.TuneGuided).
package model

import (
	"fmt"
	"math"

	"micstream/internal/device"
	"micstream/internal/pcie"
	"micstream/internal/sim"
)

// Phase is one barrier-separated stage of a workload: Tiles tasks, each
// moving H2DBytesPerTile in, running one kernel, and moving
// D2HBytesPerTile out. Transfer-only stages leave HasKernel false;
// kernel-only stages leave the byte counts zero.
type Phase struct {
	// Tiles is the number of tasks in the phase.
	Tiles int
	// H2DBytesPerTile and D2HBytesPerTile are one tile's transfer
	// volumes.
	H2DBytesPerTile, D2HBytesPerTile int64
	// H2DXfersPerTile and D2HXfersPerTile are one tile's transfer
	// counts (setup-latency terms); 0 means 1 when the matching byte
	// count is positive.
	H2DXfersPerTile, D2HXfersPerTile int
	// HasKernel marks phases that launch kernels.
	HasKernel bool
	// Cost is one tile's kernel cost (ignored unless HasKernel).
	Cost device.KernelCost
	// SerialNs is host-side serial time after the phase's barrier
	// (e.g. a reduction on the host between iterations).
	SerialNs int64
}

// Workload describes a tunable application to the model: a sequence of
// phases, repeated Rounds times, bracketed by one-time serial costs.
// Phases is a function of the tile count so the same workload describes
// every point of the (P, T) plane; descriptions are pure functions and
// must be deterministic.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Flops is the total useful floating-point work (GFLOPS metric).
	Flops float64
	// Rounds is how many times the phase sequence repeats (an
	// iterative solver's outer loop); 0 means 1.
	Rounds int
	// PrologNs and EpilogNs are one-time serial durations outside the
	// rounds.
	PrologNs, EpilogNs int64
	// PrologH2DBytes and EpilogD2HBytes are one-time bulk transfers
	// outside the rounds (a resident dataset shipped in before the
	// first round, the final result read back after the last),
	// charged at link rate with one setup latency each.
	PrologH2DBytes, EpilogD2HBytes int64
	// Phases returns one round's phases at the given tile count.
	Phases func(tiles int) []Phase
}

// SplitCost divides a whole-workload kernel cost evenly across tiles:
// Flops, Bytes and WorkingSetBytes are per-tile shares; per-launch
// fields (SerialNs, AllocBytesPerThread) and quality knobs
// (Efficiency, penalties) are unchanged.
func SplitCost(c device.KernelCost, tiles int) device.KernelCost {
	if tiles < 1 {
		tiles = 1
	}
	c.Flops /= float64(tiles)
	c.Bytes /= float64(tiles)
	c.WorkingSetBytes /= int64(tiles)
	return c
}

// Uniform describes the generic overlappable workload (cmd/mictune's
// synthetic shape, Fig. 4's flow): one phase of tiles tasks evenly
// splitting a total kernel cost and per-direction transfer volume.
// template's Flops and Bytes are workload totals.
func Uniform(name string, h2dBytes, d2hBytes int64, template device.KernelCost) Workload {
	return Workload{
		Name:  name,
		Flops: template.Flops,
		Phases: func(tiles int) []Phase {
			if tiles < 1 {
				tiles = 1
			}
			return []Phase{{
				Tiles:           tiles,
				H2DBytesPerTile: h2dBytes / int64(tiles),
				D2HBytesPerTile: d2hBytes / int64(tiles),
				HasKernel:       true,
				Cost:            SplitCost(template, tiles),
			}}
		},
	}
}

// Prediction is the model's estimate of one configuration.
type Prediction struct {
	// Partitions and Tiles echo the predicted configuration.
	Partitions, Tiles int
	// Wall is the predicted wall time.
	Wall sim.Duration
	// GFlops is the predicted throughput (0 when the workload's Flops
	// is unknown).
	GFlops float64
	// Overlap is the predicted fraction of transfer time hidden
	// behind kernel execution.
	Overlap float64
	// LinkBusy is the predicted total link occupancy.
	LinkBusy sim.Duration
	// ComputeBusy is the predicted busiest-partition kernel occupancy.
	ComputeBusy sim.Duration
	// TransferBound reports which closed form dominated the
	// prediction: true when the link demand sets the wall time.
	TransferBound bool
}

// Seconds returns the predicted wall time in seconds.
func (p Prediction) Seconds() float64 { return p.Wall.Seconds() }

// Model predicts configurations for one platform. The zero scales mean
// uncalibrated (1.0); Fit adjusts them against simulated probes.
type Model struct {
	// Dev is the coprocessor model the predictions target.
	Dev device.Config
	// Link is the PCIe model the predictions target.
	Link pcie.Config
	// StreamsPerPartition mirrors the platform's stream binding
	// (default 1). Streams sharing a partition serialize on it, so the
	// value only matters for the single-stream degenerate case.
	StreamsPerPartition int
	// TransferScale and ComputeScale are the calibration factors Fit
	// sets: predicted link and kernel demands are multiplied by them.
	// 0 means 1 (uncalibrated).
	TransferScale, ComputeScale float64
	// HostBandwidthBps caps the aggregate bandwidth of all device
	// links at the host side (the shared PCIe root complex); 0 means
	// unconstrained (each device owns a dedicated full-rate link).
	// Only PredictCluster consults it — single-device predictions see
	// one link by construction.
	HostBandwidthBps float64
}

// New builds an uncalibrated model of the given platform.
func New(dev device.Config, link pcie.Config) *Model {
	return &Model{Dev: dev, Link: link}
}

// Calibration returns the effective calibration factors (1 when
// uncalibrated) — the drift audit records them in its artifact so an
// error histogram is attributable to a specific calibration state.
func (m *Model) Calibration() (transfer, compute float64) { return m.scales() }

// scales returns the effective calibration factors.
func (m *Model) scales() (ts, cs float64) {
	ts, cs = m.TransferScale, m.ComputeScale
	if ts <= 0 {
		ts = 1
	}
	if cs <= 0 {
		cs = 1
	}
	return ts, cs
}

// xferTime is one tile's link occupancy for bytes split over xfers
// setup latencies (xfers 0 means 1 when bytes move): the §3 transfer
// closed form plus the extra per-transfer setups.
func (m *Model) xferTime(bytes int64, xfers int) sim.Duration {
	if bytes <= 0 && xfers <= 0 {
		return 0
	}
	if xfers < 1 {
		xfers = 1
	}
	return m.Link.TransferTime(bytes) +
		sim.Duration(xfers-1)*sim.Duration(m.Link.LatencyNs)
}

// ceilDiv is ⌈a/b⌉ for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// phaseTimes evaluates the closed forms for one phase on a device
// split into the given layout with streams logical streams, under the
// effective calibration factors (ts, cs). It returns the phase's wall
// time, link occupancy, busiest-partition compute occupancy, and
// whether the link demand set the wall time. Predict and PredictCluster
// share it so single- and multi-device predictions agree about the
// hardware.
func (m *Model) phaseTimes(ph Phase, layout []device.PartitionShape, partitions, streams int, ts, cs float64) (wall, link, compute sim.Duration, transferBound bool) {
	th := sim.Duration(float64(m.xferTime(ph.H2DBytesPerTile, ph.H2DXfersPerTile)) * ts)
	td := sim.Duration(float64(m.xferTime(ph.D2HBytesPerTile, ph.D2HXfersPerTile)) * ts)
	var tk sim.Duration
	if ph.HasKernel {
		// The slowest partition governs the phase's finish: a
		// non-divisor split leaves some partitions smaller and
		// core-sharing, and round-robin placement hands them the
		// same tile count as everyone else (the Fig. 9
		// divisor-of-56 effect, predicted instead of measured).
		for _, shape := range layout {
			if kt := m.Dev.KernelTimeOn(ph.Cost, shape, partitions); kt > tk {
				tk = kt
			}
		}
		tk = sim.Duration(float64(tk) * cs)
	}
	n := sim.Duration(ph.Tiles)
	inBusy, outBusy := n*th, n*td
	var phaseLink sim.Duration
	if m.Link.FullDuplex {
		phaseLink = inBusy
		if outBusy > phaseLink {
			phaseLink = outBusy
		}
	} else {
		phaseLink = inBusy + outBusy
	}
	phaseCompute := sim.Duration(ceilDiv(ph.Tiles, partitions)) * tk

	var phaseWall sim.Duration
	if streams == 1 {
		// One stream: FIFO serializes every stage of every tile.
		phaseWall = n * (th + tk + td)
	} else {
		// Stream FIFO means a stream's next input waits for its
		// previous output, so one stream pipelines nothing; the
		// phase's wall time is the slowest stream's cycle chain,
		// bounded below by the busiest partition's kernels and —
		// when the link saturates — by the total link demand.
		sEff := streams
		if ph.Tiles < sEff {
			sEff = ph.Tiles
		}
		cycle := th + tk + td
		// Steady-state link contention: a stream's transfers
		// queue behind the other streams' in proportion to how
		// much of a cycle the link spends serving everyone.
		var wait sim.Duration
		if cycle > 0 && !m.Link.FullDuplex {
			rho := float64(sEff) * float64(th+td) / float64(cycle)
			if rho > 1 {
				rho = 1
			}
			wait = sim.Duration(rho * float64(th+td))
		}
		// First inputs serialize on the link (stagger), then each
		// stream runs its tiles' cycles, all but the first paying
		// the contention wait. Round-robin placement hands the
		// remainder tiles to the earliest-started streams, so the
		// last finisher is either the deepest-staggered stream
		// with ⌊T/S⌋ tiles or the last remainder stream with one
		// tile more — whichever chain runs longer.
		q := ph.Tiles / sEff
		r := ph.Tiles % sEff
		var chain sim.Duration
		if q > 0 {
			chain = sim.Duration(sEff-1)*th +
				sim.Duration(q)*cycle + sim.Duration(q-1)*wait
		}
		if r > 0 {
			withExtra := sim.Duration(r-1)*th +
				sim.Duration(q+1)*cycle + sim.Duration(q)*wait
			if withExtra > chain {
				chain = withExtra
			}
		}
		partBound := th + phaseCompute + td
		if partBound > chain {
			chain = partBound
		}
		if phaseLink >= chain {
			// Link-saturated: transfers run back to back and the
			// last tile's kernel is exposed at the end.
			phaseWall = phaseLink + tk
			transferBound = true
		} else {
			phaseWall = chain
		}
	}
	return phaseWall, phaseLink, phaseCompute, transferBound
}

// Predict evaluates the closed-form model at one (partitions, tiles)
// point. tiles is passed to the workload's Phases description, so its
// meaning (tile count, grid edge, stripe count) is the workload's own —
// the same argument its simulated Run takes.
func (m *Model) Predict(w Workload, partitions, tiles int) (Prediction, error) {
	layout := m.Dev.PartitionLayout(partitions)
	if layout == nil {
		return Prediction{}, fmt.Errorf("model: partition count %d out of range [1,%d]", partitions, m.Dev.TotalThreads())
	}
	if tiles < 1 {
		return Prediction{}, fmt.Errorf("model: tile count %d must be positive", tiles)
	}
	if w.Phases == nil {
		return Prediction{}, fmt.Errorf("model: workload %q has no phase description", w.Name)
	}
	rounds := w.Rounds
	if rounds < 1 {
		rounds = 1
	}
	spp := m.StreamsPerPartition
	if spp < 1 {
		spp = 1
	}
	streams := partitions * spp
	ts, cs := m.scales()

	var wall, linkBusy, computeBusy sim.Duration
	var serial sim.Duration
	transferBound := false
	for _, ph := range w.Phases(tiles) {
		if ph.Tiles < 1 {
			continue
		}
		phaseWall, phaseLink, phaseCompute, tb := m.phaseTimes(ph, layout, partitions, streams, ts, cs)
		if tb {
			transferBound = true
		}
		wall += phaseWall + sim.Duration(ph.SerialNs)
		serial += sim.Duration(ph.SerialNs)
		linkBusy += phaseLink
		computeBusy += phaseCompute
	}
	wall *= sim.Duration(rounds)
	serial *= sim.Duration(rounds)
	linkBusy *= sim.Duration(rounds)
	computeBusy *= sim.Duration(rounds)
	ends := sim.Duration(w.PrologNs) + sim.Duration(w.EpilogNs)
	if w.PrologH2DBytes > 0 {
		ends += sim.Duration(float64(m.xferTime(w.PrologH2DBytes, 1)) * ts)
	}
	if w.EpilogD2HBytes > 0 {
		ends += sim.Duration(float64(m.xferTime(w.EpilogD2HBytes, 1)) * ts)
	}
	wall += ends

	p := Prediction{
		Partitions:    partitions,
		Tiles:         tiles,
		Wall:          wall,
		LinkBusy:      linkBusy,
		ComputeBusy:   computeBusy,
		TransferBound: transferBound,
	}
	if wall > 0 && w.Flops > 0 {
		p.GFlops = w.Flops / wall.Seconds() / 1e9
	}
	if linkBusy > 0 {
		exposed := wall - computeBusy - serial - ends
		p.Overlap = math.Min(1, math.Max(0, 1-float64(exposed)/float64(linkBusy)))
	}
	return p, nil
}
