package model

import (
	"fmt"

	"micstream/internal/core"
	"micstream/internal/sim"
)

// ClusterWorkload describes a workload split across the devices of a
// multi-MIC platform (the paper's §VI topology): the embedded Workload
// is the whole job, and StagingBytes quantifies the extra traffic the
// split costs — the tiles a partitioned computation must move through
// the host so a producer on one device can feed a consumer on another
// (Fig. 11's cross-device synchronization).
type ClusterWorkload struct {
	Workload
	// StagingBytes returns the bytes staged through the host per
	// round when the workload runs on the given device count. Each
	// staged byte crosses PCIe twice (D2H out of the producer, H2D
	// into the consumer), and the model charges both crossings
	// serialized — host memory is the rendezvous. nil or a zero
	// return means the split is free (fully independent tiles); one
	// device never stages.
	StagingBytes func(devices int) int64
}

// Split lifts a single-device workload to the cluster form with the
// given staging function.
func Split(w Workload, staging func(devices int) int64) ClusterWorkload {
	return ClusterWorkload{Workload: w, StagingBytes: staging}
}

// StagingOnly is a ClusterWorkload carrying no compute phases — only
// a host-staging charge of the given bytes, independent of the device
// count. PredictCluster evaluated on it prices exactly one staged
// transfer through the calibrated, contended link: each byte crosses
// PCIe twice (D2H out of the holder, H2D into the target), stretched
// by TransferScale and the shared-host contention factor. The cluster
// scheduler prices every residual staging decision — placement scores,
// steal gains — through this form, so one convention covers them all
// (DESIGN.md §9–§11).
func StagingOnly(name string, bytes int64) ClusterWorkload {
	return ClusterWorkload{
		Workload:     Workload{Name: name, Phases: func(int) []Phase { return nil }},
		StagingBytes: func(int) int64 { return bytes },
	}
}

// ClusterPrediction is the model's estimate of one multi-device
// configuration.
type ClusterPrediction struct {
	// Devices, Partitions and Tiles echo the predicted configuration
	// (partitions and tiles per device; Tiles is the workload-total
	// tile argument, split evenly with the remainder on the earliest
	// devices).
	Devices, Partitions, Tiles int
	// Wall is the predicted wall time: the slowest device's share
	// plus the staging traffic.
	Wall sim.Duration
	// GFlops is the predicted throughput over the workload's total
	// Flops (0 when unknown).
	GFlops float64
	// DeviceWall is the slowest device's predicted share alone.
	DeviceWall sim.Duration
	// StagingTime is the predicted host-staging cost per run.
	StagingTime sim.Duration
	// LinkContention is the factor by which the shared host PCIe
	// complex stretches every transfer (1 = dedicated links).
	LinkContention float64
	// Speedup is Wall's improvement over the same model's one-device
	// prediction — the Fig. 11 projection with staging accounted.
	Speedup float64
}

// Seconds returns the predicted wall time in seconds.
func (p ClusterPrediction) Seconds() float64 { return p.Wall.Seconds() }

// stagingTime charges bytes through the host: one D2H plus one H2D
// crossing at the effective (contended, calibrated) link rate.
func (m *Model) stagingTime(bytes int64, ts float64) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	return sim.Duration(float64(2*m.xferTime(bytes, 1)) * ts)
}

// contention reports how much the shared host PCIe complex stretches
// concurrent per-device transfers: with devices links of the model's
// bandwidth behind a HostBandwidthBps root complex, demand beyond the
// ceiling serializes proportionally.
func (m *Model) contention(devices int) float64 {
	if m.HostBandwidthBps <= 0 || devices <= 1 {
		return 1
	}
	agg := float64(devices) * m.Link.BandwidthBps
	if agg <= m.HostBandwidthBps {
		return 1
	}
	return agg / m.HostBandwidthBps
}

// PredictCluster evaluates the closed-form model for the workload
// split across devices identical coprocessors, each split into
// partitions partitions. The per-device share is the original phase
// list with every phase's tile count divided by the device count
// (ceiling — the slowest device governs), transfers stretched by the
// shared-host contention factor; the staging traffic is appended
// serialized. PredictCluster(w, 1, P, T) equals Predict(w, P, T)
// whenever the host link is not the bottleneck.
func (m *Model) PredictCluster(cw ClusterWorkload, devices, partitions, tiles int) (ClusterPrediction, error) {
	if devices < 1 {
		return ClusterPrediction{}, fmt.Errorf("model: device count %d must be positive", devices)
	}
	layout := m.Dev.PartitionLayout(partitions)
	if layout == nil {
		return ClusterPrediction{}, fmt.Errorf("model: partition count %d out of range [1,%d]", partitions, m.Dev.TotalThreads())
	}
	if tiles < 1 {
		return ClusterPrediction{}, fmt.Errorf("model: tile count %d must be positive", tiles)
	}
	if cw.Phases == nil {
		return ClusterPrediction{}, fmt.Errorf("model: workload %q has no phase description", cw.Name)
	}
	rounds := cw.Rounds
	if rounds < 1 {
		rounds = 1
	}
	spp := m.StreamsPerPartition
	if spp < 1 {
		spp = 1
	}
	streams := partitions * spp
	ts, cs := m.scales()
	cont := m.contention(devices)
	ts *= cont

	var devWall sim.Duration
	for _, ph := range cw.Phases(tiles) {
		if ph.Tiles < 1 {
			continue
		}
		share := ph
		share.Tiles = ceilDiv(ph.Tiles, devices)
		w, _, _, _ := m.phaseTimes(share, layout, partitions, streams, ts, cs)
		devWall += w + sim.Duration(ph.SerialNs)
	}
	devWall *= sim.Duration(rounds)

	var staging sim.Duration
	if cw.StagingBytes != nil && devices > 1 {
		staging = sim.Duration(rounds) * m.stagingTime(cw.StagingBytes(devices), ts)
	}

	// One-time serial ends: the prolog dataset ships to every device's
	// share in parallel (contended), the epilog reads back likewise.
	ends := sim.Duration(cw.PrologNs) + sim.Duration(cw.EpilogNs)
	if cw.PrologH2DBytes > 0 {
		ends += sim.Duration(float64(m.xferTime(ceilDiv64(cw.PrologH2DBytes, devices), 1)) * ts)
	}
	if cw.EpilogD2HBytes > 0 {
		ends += sim.Duration(float64(m.xferTime(ceilDiv64(cw.EpilogD2HBytes, devices), 1)) * ts)
	}

	p := ClusterPrediction{
		Devices:        devices,
		Partitions:     partitions,
		Tiles:          tiles,
		Wall:           devWall + staging + ends,
		DeviceWall:     devWall,
		StagingTime:    staging,
		LinkContention: cont,
	}
	if p.Wall > 0 && cw.Flops > 0 {
		p.GFlops = cw.Flops / p.Wall.Seconds() / 1e9
	}
	if devices > 1 {
		if one, err := m.PredictCluster(cw, 1, partitions, tiles); err == nil && p.Wall > 0 {
			p.Speedup = one.Wall.Seconds() / p.Wall.Seconds()
		}
	} else {
		p.Speedup = 1
	}
	return p, nil
}

// ceilDiv64 is ⌈a/b⌉ for positive b on int64 byte counts.
func ceilDiv64(a int64, b int) int64 {
	bb := int64(b)
	return (a + bb - 1) / bb
}

// ClusterEvalFunc adapts the multi-device model to the cluster tuner's
// measurement interface: an evaluation that predicts instead of
// simulating. Use it as the predict argument of core.TuneClusterGuided.
func (m *Model) ClusterEvalFunc(cw ClusterWorkload) core.ClusterEvalFunc {
	return func(devices, partitions, tiles int) (float64, error) {
		pred, err := m.PredictCluster(cw, devices, partitions, tiles)
		if err != nil {
			return 0, err
		}
		return pred.Seconds(), nil
	}
}
