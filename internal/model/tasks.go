package model

import (
	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/sim"
)

// specBytes is the byte volume of one transfer spec, derived from its
// buffer's element size.
func specBytes(x core.TransferSpec) int64 {
	if x.Buf == nil || x.Buf.Len() == 0 {
		return 0
	}
	return int64(float64(x.N) * float64(x.Buf.Bytes()) / float64(x.Buf.Len()))
}

// FromTasks summarizes an already-tiled task list as a one-phase
// workload: the tile count is the number of kernel-launching tasks and
// per-tile quantities are the list's totals divided evenly. Kernel
// knobs (efficiency, penalties, per-launch costs) are averaged across
// tasks weighted equally. The resulting workload ignores the tiles
// argument of its Phases description — the tiling is already fixed —
// so it suits prediction (Predict, ServiceTime), not retiling searches.
func FromTasks(name string, tasks []*core.Task) Workload {
	var (
		kernels                int
		flops, bytes, eff, sp  float64
		wsBytes, serial, alloc int64
		h2dBytes, d2hBytes     int64
		h2dXfers, d2hXfers     int
	)
	for _, t := range tasks {
		if t == nil {
			continue
		}
		for _, x := range t.H2D {
			h2dBytes += specBytes(x)
			h2dXfers++
		}
		for _, x := range t.D2H {
			d2hBytes += specBytes(x)
			d2hXfers++
		}
		if t.TransferOnly {
			continue
		}
		kernels++
		flops += t.Cost.Flops
		bytes += t.Cost.Bytes
		eff += t.Cost.Efficiency
		sp += t.Cost.ScalingPenalty
		wsBytes += t.Cost.WorkingSetBytes
		serial += t.Cost.SerialNs
		alloc += t.Cost.AllocBytesPerThread
	}
	w := Workload{Name: name, Flops: flops}
	if kernels == 0 && h2dXfers == 0 && d2hXfers == 0 {
		w.Phases = func(int) []Phase { return nil }
		return w
	}
	n := kernels
	if n == 0 {
		n = 1
	}
	cost := device.KernelCost{
		Name:                name,
		Flops:               flops / float64(n),
		Bytes:               bytes / float64(n),
		SerialNs:            serial / int64(n),
		AllocBytesPerThread: alloc / int64(n),
		WorkingSetBytes:     wsBytes / int64(n),
		Efficiency:          eff / float64(n),
		ScalingPenalty:      sp / float64(n),
	}
	ph := Phase{
		Tiles:           n,
		H2DBytesPerTile: h2dBytes / int64(n),
		D2HBytesPerTile: d2hBytes / int64(n),
		H2DXfersPerTile: ceilDiv(h2dXfers, n),
		D2HXfersPerTile: ceilDiv(d2hXfers, n),
		HasKernel:       kernels > 0,
		Cost:            cost,
	}
	w.Phases = func(int) []Phase { return []Phase{ph} }
	return w
}

// ServiceTime predicts how long a job's task list occupies one stream
// of a platform split into partitions partitions: the serial sum of
// each task's kernel time on one partition plus the link time of its
// declared transfers, FIFO order, no cross-job overlap. It is the
// model-backed replacement for ranking-only service estimates — the
// same closed forms as Predict, so scheduler decisions and tuner
// decisions agree about the hardware.
func (m *Model) ServiceTime(tasks []*core.Task, partitions int) sim.Duration {
	layout := m.Dev.PartitionLayout(partitions)
	if layout == nil {
		return 0
	}
	// A job may land on any stream; predict against the slowest
	// partition so estimates rank jobs consistently with Predict.
	kernel := func(c device.KernelCost) sim.Duration {
		var worst sim.Duration
		for _, shape := range layout {
			if kt := m.Dev.KernelTimeOn(c, shape, partitions); kt > worst {
				worst = kt
			}
		}
		return worst
	}
	ts, cs := m.scales()
	var total sim.Duration
	for _, t := range tasks {
		if t == nil {
			continue
		}
		if !t.TransferOnly {
			total += sim.Duration(float64(kernel(t.Cost)) * cs)
		}
		for _, specs := range [][]core.TransferSpec{t.H2D, t.D2H} {
			for _, x := range specs {
				if b := specBytes(x); b > 0 {
					total += sim.Duration(float64(m.xferTime(b, 1)) * ts)
				}
			}
		}
	}
	if total <= 0 {
		total = 1
	}
	return total
}
