// Package device models the coprocessor side of the reproduced
// platform: an Intel Xeon Phi 31SP-like many-core device that can be
// partitioned into groups of cores, with each partition executing the
// kernels of the streams bound to it.
//
// The model is the substitution for real MIC silicon (see DESIGN.md §2)
// and deliberately encodes, as explicit terms, every effect the paper
// attributes to the hardware:
//
//   - 57 cores × 4 hardware threads, one core reserved for the uOS,
//     leaving 56 cores / 224 usable threads (§V-B-1);
//   - partitioning at thread granularity, so partition counts that do
//     not divide 56 split a physical core's 4 threads across two
//     partitions and suffer shared-core contention — the reason the
//     paper recommends P ∈ {2,4,7,8,14,28,56} (Fig. 9a/9b);
//   - a roofline kernel-duration model max(compute, memory) with a
//     per-thread parallel-efficiency saturation term, so that tiny
//     tasks spread over many threads run poorly (left edge of Fig. 7,
//     right edge of Fig. 10);
//   - per-launch fixed overhead plus management overhead growing with
//     the number of partitions (right edge of Fig. 7);
//   - per-launch temporary-memory allocation cost proportional to the
//     partition's thread count — the effect behind Kmeans' monotone
//     improvement with the number of partitions (Fig. 9c);
//   - an L2-locality bonus for cache-sensitive kernels on partitions
//     spanning few cores — the Hotspot dip at P ∈ [33,37] (Fig. 9d).
package device

import (
	"fmt"

	"micstream/internal/sim"
	"micstream/internal/trace"
)

// Config describes a coprocessor. All timing constants are model
// parameters calibrated in this package's tests against the absolute
// numbers the paper reports.
type Config struct {
	// Name labels the device type in diagnostics.
	Name string
	// Cores is the number of physical cores, including reserved ones.
	Cores int
	// ReservedCores is the number of cores held back for the device
	// OS (the paper's uOS occupies one of the 31SP's 57 cores).
	ReservedCores int
	// ThreadsPerCore is the number of hardware threads per core.
	ThreadsPerCore int
	// ClockHz is the core clock.
	ClockHz float64
	// FlopsPerCyclePerThread is the peak floating-point throughput of
	// one hardware thread in flops/cycle, amortizing the vector unit
	// across the core's threads.
	FlopsPerCyclePerThread float64
	// MemBandwidthBps is the aggregate device-memory bandwidth,
	// shared by partitions in proportion to their thread count.
	MemBandwidthBps float64
	// L2PerCoreBytes is the per-core L2 capacity (locality model).
	L2PerCoreBytes int64
	// KernelLaunchNs is the fixed cost of one kernel launch on a
	// partition (offload descriptor, thread wakeup).
	KernelLaunchNs int64
	// StreamMgmtNsPerPartition is the additional per-launch runtime
	// bookkeeping cost paid for every active partition: more streams
	// mean more management overhead (§IV-B).
	StreamMgmtNsPerPartition int64
	// HalfWorkFlopsPerThread is the parallel-efficiency half-point:
	// a thread reaches 50% efficiency when its share of a kernel's
	// flops equals this value (vector-machine n½ analogue).
	HalfWorkFlopsPerThread float64
	// AllocNsPerByte is the cost of allocating one byte of temporary
	// device memory at kernel launch, charged per thread.
	AllocNsPerByte float64
	// ContentionPenalty multiplies the compute-bound portion of a
	// kernel when the partition shares a physical core with a
	// neighbouring partition (≥ 1).
	ContentionPenalty float64
	// CacheAffinityBonus is the maximum speedup of the memory-bound
	// portion for cache-sensitive kernels running on a partition
	// concentrated on few cores (≥ 0; 0 disables the effect).
	CacheAffinityBonus float64
}

// Xeon31SP returns the model of the paper's coprocessor: Intel Xeon Phi
// 31SP, 57 cores at 1.1 GHz, 4 threads/core, one core reserved.
// Timing constants are calibrated against §IV (see device tests).
func Xeon31SP() Config {
	return Config{
		Name:                     "Xeon Phi 31SP",
		Cores:                    57,
		ReservedCores:            1,
		ThreadsPerCore:           4,
		ClockHz:                  1.1e9,
		FlopsPerCyclePerThread:   4.0, // 1.1 GHz × 4 = 4.4 GFLOPS/thread, 985 GFLOPS device peak
		MemBandwidthBps:          160e9,
		L2PerCoreBytes:           512 << 10,
		KernelLaunchNs:           25_000,
		StreamMgmtNsPerPartition: 900,
		HalfWorkFlopsPerThread:   5_000,
		AllocNsPerByte:           0.22,
		ContentionPenalty:        1.35,
		CacheAffinityBonus:       0.35,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("device: cores must be positive, got %d", c.Cores)
	case c.ReservedCores < 0 || c.ReservedCores >= c.Cores:
		return fmt.Errorf("device: reserved cores %d out of range [0,%d)", c.ReservedCores, c.Cores)
	case c.ThreadsPerCore <= 0:
		return fmt.Errorf("device: threads/core must be positive, got %d", c.ThreadsPerCore)
	case c.ClockHz <= 0:
		return fmt.Errorf("device: clock must be positive")
	case c.FlopsPerCyclePerThread <= 0:
		return fmt.Errorf("device: flops/cycle must be positive")
	case c.MemBandwidthBps <= 0:
		return fmt.Errorf("device: memory bandwidth must be positive")
	case c.ContentionPenalty < 1:
		return fmt.Errorf("device: contention penalty must be ≥ 1, got %g", c.ContentionPenalty)
	case c.CacheAffinityBonus < 0:
		return fmt.Errorf("device: cache affinity bonus must be ≥ 0")
	}
	return nil
}

// UsableCores reports cores available to kernels (total minus reserved).
func (c Config) UsableCores() int { return c.Cores - c.ReservedCores }

// TotalThreads reports the usable hardware thread count (224 on 31SP).
func (c Config) TotalThreads() int { return c.UsableCores() * c.ThreadsPerCore }

// PerThreadFlops reports the peak flops/second of one hardware thread.
func (c Config) PerThreadFlops() float64 { return c.ClockHz * c.FlopsPerCyclePerThread }

// PeakFlops reports the device's aggregate peak flops/second.
func (c Config) PeakFlops() float64 {
	return c.PerThreadFlops() * float64(c.TotalThreads())
}

// KernelCost describes one kernel invocation to the timing model.
// Application packages construct these from their analytic operation
// counts (e.g. 2·n³ flops for an n×n×n matrix-multiply tile).
type KernelCost struct {
	// Name labels the kernel in traces.
	Name string
	// Flops is the useful floating-point work of the invocation.
	Flops float64
	// Bytes is the device-memory traffic of the invocation.
	Bytes float64
	// SerialNs is non-parallelizable time inside the kernel
	// (e.g. a master thread merging per-thread partials).
	SerialNs int64
	// AllocBytesPerThread is temporary memory allocated (and freed)
	// per thread at every launch; the paper identifies this as the
	// dominant overhead in Kmeans (§V-B-1).
	AllocBytesPerThread int64
	// WorkingSetBytes is the memory the kernel re-touches; used by
	// the L2-locality model for cache-sensitive kernels.
	WorkingSetBytes int64
	// CacheSensitive marks stencil-like kernels whose memory-bound
	// portion benefits from partitions concentrated on few cores.
	CacheSensitive bool
	// FitBonus is the maximum speedup of the memory-bound portion
	// when WorkingSetBytes fits in the partition's aggregate L2 —
	// for kernels that re-read a tile across phases of the same
	// iteration (SRAD's two stencil passes). 0 disables the effect.
	FitBonus float64
	// Efficiency is the kernel's arithmetic efficiency relative to
	// peak (vectorization quality, instruction mix); (0,1], with 0
	// treated as 1.
	Efficiency float64
	// ScalingPenalty models synchronization and ring-interconnect
	// contention that grows with the number of threads a single
	// kernel spans: the compute-bound portion is multiplied by
	// 1 + ScalingPenalty·(t-1)/TotalThreads. Compute-bound kernels
	// with frequent barriers (GEMM, factorizations) set this; it is
	// why four 56-thread tiles outrun one 224-thread kernel even
	// without any transfer overlap (part of the paper's §V-A gains).
	ScalingPenalty float64
}

// Device is a partitioned coprocessor instance bound to an engine.
type Device struct {
	cfg   Config
	eng   *sim.Engine
	rec   *trace.Recorder
	name  string
	parts []*Partition
}

// New builds a device with a single partition covering every usable
// thread. name scopes trace resources (e.g. "mic0").
func New(eng *sim.Engine, cfg Config, name string, rec *trace.Recorder) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{cfg: cfg, eng: eng, rec: rec, name: name}
	if err := d.SetPartitions(1); err != nil {
		return nil, err
	}
	return d, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Name returns the device instance name.
func (d *Device) Name() string { return d.name }

// PartitionShape is the geometry of one partition of an n-way split:
// everything the timing model needs to know about where the partition's
// threads sit on the die. It is a pure description — analytic layers
// (internal/model) evaluate kernel times on shapes without building a
// Device.
type PartitionShape struct {
	// FirstThread is the partition's first global thread index.
	FirstThread int
	// Threads is the partition's hardware thread count.
	Threads int
	// CoresSpanned is how many physical cores hold any of the
	// partition's threads.
	CoresSpanned int
	// SharesCore reports whether a boundary of the thread range
	// splits a physical core with a neighbouring partition.
	SharesCore bool
}

// PartitionLayout divides the usable hardware threads contiguously into
// n partitions and returns their shapes: base threads each, with the
// remainder spread over the leading partitions (mirroring hStreams'
// even places). It returns nil when n is out of [1, TotalThreads].
func (c Config) PartitionLayout(n int) []PartitionShape {
	total := c.TotalThreads()
	if n < 1 || n > total {
		return nil
	}
	shapes := make([]PartitionShape, n)
	base, rem := total/n, total%n
	first := 0
	for i := 0; i < n; i++ {
		threads := base
		if i < rem {
			threads++
		}
		shapes[i] = PartitionShape{
			FirstThread:  first,
			Threads:      threads,
			CoresSpanned: coresSpanned(first, threads, c.ThreadsPerCore),
			SharesCore:   sharesCore(first, threads, c.ThreadsPerCore, total),
		}
		first += threads
	}
	return shapes
}

// SetPartitions divides the usable hardware threads contiguously into n
// partitions following PartitionLayout. Re-partitioning discards
// previous partitions; callers must not hold kernels in flight across a
// repartition.
func (d *Device) SetPartitions(n int) error {
	shapes := d.cfg.PartitionLayout(n)
	if shapes == nil {
		return fmt.Errorf("device: partition count %d out of range [1,%d]", n, d.cfg.TotalThreads())
	}
	d.parts = make([]*Partition, n)
	for i, sh := range shapes {
		p := &Partition{
			dev:          d,
			idx:          i,
			firstThread:  sh.FirstThread,
			threads:      sh.Threads,
			coresSpanned: sh.CoresSpanned,
			sharesCore:   sh.SharesCore,
		}
		p.srv = sim.NewServer(d.eng, fmt.Sprintf("%s/part%d", d.name, i))
		d.parts[i] = p
	}
	return nil
}

// coresSpanned counts how many physical cores hold any of the
// partition's threads.
func coresSpanned(first, threads, tpc int) int {
	if threads <= 0 {
		return 0
	}
	lo := first / tpc
	hi := (first + threads - 1) / tpc
	return hi - lo + 1
}

// sharesCore reports whether either boundary of the partition's thread
// range splits a physical core shared with a neighbouring partition.
func sharesCore(first, threads, tpc, total int) bool {
	lo, hi := first, first+threads
	if lo%tpc != 0 {
		return true
	}
	if hi != total && hi%tpc != 0 {
		return true
	}
	return false
}

// Partitions returns the current partitions in index order.
func (d *Device) Partitions() []*Partition { return d.parts }

// NumPartitions reports the current partition count.
func (d *Device) NumPartitions() int { return len(d.parts) }

// Partition returns partition i.
func (d *Device) Partition(i int) *Partition { return d.parts[i] }

// Partition is one group of hardware threads executing kernels
// serially. Streams bound to the same partition contend for it.
type Partition struct {
	dev         *Device
	idx         int
	firstThread int
	threads     int

	coresSpanned int
	sharesCore   bool
	srv          *sim.Server
}

// Index reports the partition's position on its device.
func (p *Partition) Index() int { return p.idx }

// Threads reports the partition's hardware thread count.
func (p *Partition) Threads() int { return p.threads }

// CoresSpanned reports how many physical cores the partition touches.
func (p *Partition) CoresSpanned() int { return p.coresSpanned }

// SharesCore reports whether the partition splits a physical core with
// a neighbour — the condition behind the paper's divisor-of-56 rule.
func (p *Partition) SharesCore() bool { return p.sharesCore }

// Device returns the partition's device.
func (p *Partition) Device() *Device { return p.dev }

// BusyTime reports the partition's cumulative kernel occupancy.
func (p *Partition) BusyTime() sim.Duration { return p.srv.Busy() }

// FreeAt reports when the partition next becomes idle.
func (p *Partition) FreeAt() sim.Time { return p.srv.FreeAt() }

// KernelTime evaluates the timing model for one invocation of cost c on
// this partition, independent of queueing.
func (p *Partition) KernelTime(c KernelCost) sim.Duration {
	shape := PartitionShape{
		FirstThread:  p.firstThread,
		Threads:      p.threads,
		CoresSpanned: p.coresSpanned,
		SharesCore:   p.sharesCore,
	}
	return p.dev.cfg.KernelTimeOn(c, shape, len(p.dev.parts))
}

// KernelTimeOn evaluates the timing model for one invocation of cost c
// on a partition of the given shape, with partitions active partitions
// on the device. This is the simulator's closed-form kernel equation
// (DESIGN.md §2) exposed as a pure function so the analytic performance
// model predicts with exactly the terms the simulation charges.
func (cfg Config) KernelTimeOn(c KernelCost, shape PartitionShape, partitions int) sim.Duration {
	t := float64(shape.Threads)

	eff := c.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}

	// Parallel efficiency: a thread's share of the work against the
	// fork/join and scheduling quantum it must amortize.
	parEff := 1.0
	if c.Flops > 0 && cfg.HalfWorkFlopsPerThread > 0 {
		perThread := c.Flops / t
		parEff = perThread / (perThread + cfg.HalfWorkFlopsPerThread)
	}

	computeSec := 0.0
	if c.Flops > 0 {
		computeSec = c.Flops / (t * parEff * cfg.PerThreadFlops() * eff)
		if c.ScalingPenalty > 0 {
			computeSec *= 1 + c.ScalingPenalty*(t-1)/float64(cfg.TotalThreads())
		}
	}

	// Memory-bound term: bandwidth share is proportional to threads;
	// cache-sensitive kernels recover locality when concentrated on
	// few cores (the partition's slice of the data stays resident in
	// the L2s it owns instead of being diluted across the ring).
	memSec := 0.0
	if c.Bytes > 0 {
		share := cfg.MemBandwidthBps * t / float64(cfg.TotalThreads())
		locality := 1.0
		if c.CacheSensitive && cfg.CacheAffinityBonus > 0 && cfg.UsableCores() > 1 {
			concentration := 1 - float64(shape.CoresSpanned-1)/float64(cfg.UsableCores()-1)
			locality = 1 + cfg.CacheAffinityBonus*concentration
		}
		if c.FitBonus > 0 && c.WorkingSetBytes > 0 && cfg.L2PerCoreBytes > 0 {
			l2 := float64(shape.CoresSpanned) * float64(cfg.L2PerCoreBytes)
			fit := l2 / float64(c.WorkingSetBytes)
			if fit > 1 {
				fit = 1
			}
			locality *= 1 + c.FitBonus*fit
		}
		memSec = c.Bytes / (share * locality)
	}

	body := computeSec
	if memSec > body {
		body = memSec
	}
	// Shared-core contention slows execution-unit-bound kernels; a
	// memory-bound kernel's stalled threads barely notice a core
	// neighbour, so the penalty applies to compute-dominated bodies.
	if shape.SharesCore && computeSec >= memSec {
		body *= cfg.ContentionPenalty
	}

	dur := sim.Duration(cfg.KernelLaunchNs) +
		sim.Duration(cfg.StreamMgmtNsPerPartition)*sim.Duration(partitions) +
		sim.Duration(c.SerialNs) +
		cfg.AllocTimeOn(c, shape.Threads) +
		sim.DurationOf(body)
	return dur
}

// AllocTime reports the per-launch temporary-allocation cost of c on
// this partition (part of KernelTime; exposed for analysis).
func (p *Partition) AllocTime(c KernelCost) sim.Duration {
	return p.dev.cfg.AllocTimeOn(c, p.threads)
}

// AllocTimeOn is the pure form of AllocTime: the per-launch
// temporary-allocation cost of c on a partition of threads threads.
func (cfg Config) AllocTimeOn(c KernelCost, threads int) sim.Duration {
	if c.AllocBytesPerThread <= 0 {
		return 0
	}
	ns := float64(c.AllocBytesPerThread) * float64(threads) * cfg.AllocNsPerByte
	return sim.DurationOf(ns / 1e9)
}

// Launch schedules one invocation of cost c, eligible at ready, on the
// partition. The partition serves launches in ready order. body, if
// non-nil, executes at the invocation's start time (the functional
// model: real Go code operating on device buffers). done, if non-nil,
// fires at completion. The stream and task ids annotate the trace.
func (p *Partition) Launch(ready sim.Time, c KernelCost, stream, task int, body func(), done func(start, end sim.Time)) (start, end sim.Time) {
	dur := p.KernelTime(c)
	start, end = p.srv.Reserve(ready, dur, done)
	if body != nil {
		p.dev.eng.At(start, body)
	}
	alloc := p.AllocTime(c)
	if alloc > 0 {
		p.dev.rec.Add(trace.Span{
			Resource: p.srv.Name(),
			Stream:   stream,
			Task:     task,
			Kind:     trace.Alloc,
			Label:    c.Name + "/alloc",
			Start:    start,
			End:      start.Add(alloc),
		})
	}
	p.dev.rec.Add(trace.Span{
		Resource: p.srv.Name(),
		Stream:   stream,
		Task:     task,
		Kind:     trace.Kernel,
		Label:    c.Name,
		Start:    start.Add(alloc),
		End:      end,
	})
	return start, end
}
