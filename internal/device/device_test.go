package device

import (
	"testing"
	"testing/quick"

	"micstream/internal/sim"
	"micstream/internal/trace"
)

func newDev(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	d, err := New(eng, Xeon31SP(), "mic0", trace.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestXeon31SPTopology(t *testing.T) {
	cfg := Xeon31SP()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.UsableCores(); got != 56 {
		t.Fatalf("usable cores = %d, want 56 (57 minus one for the uOS)", got)
	}
	if got := cfg.TotalThreads(); got != 224 {
		t.Fatalf("total threads = %d, want 224", got)
	}
	// 985 GFLOPS DP peak for the 31SP.
	if peak := cfg.PeakFlops() / 1e9; peak < 900 || peak > 1100 {
		t.Fatalf("peak = %.0f GFLOPS, want ≈985", peak)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.ReservedCores = -1 },
		func(c *Config) { c.ReservedCores = 57 },
		func(c *Config) { c.ThreadsPerCore = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.FlopsPerCyclePerThread = 0 },
		func(c *Config) { c.MemBandwidthBps = 0 },
		func(c *Config) { c.ContentionPenalty = 0.5 },
		func(c *Config) { c.CacheAffinityBonus = -1 },
	}
	for i, mutate := range bad {
		cfg := Xeon31SP()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestPartitioningSplitsAllThreads(t *testing.T) {
	_, d := newDev(t)
	for _, n := range []int{1, 2, 4, 7, 8, 14, 28, 56, 3, 5, 33, 100, 224} {
		if err := d.SetPartitions(n); err != nil {
			t.Fatalf("SetPartitions(%d): %v", n, err)
		}
		total := 0
		for _, p := range d.Partitions() {
			if p.Threads() <= 0 {
				t.Fatalf("P=%d: partition %d has %d threads", n, p.Index(), p.Threads())
			}
			total += p.Threads()
		}
		if total != 224 {
			t.Fatalf("P=%d: threads sum to %d, want 224", n, total)
		}
	}
}

func TestPartitionCountBounds(t *testing.T) {
	_, d := newDev(t)
	if err := d.SetPartitions(0); err == nil {
		t.Fatal("P=0 accepted")
	}
	if err := d.SetPartitions(225); err == nil {
		t.Fatal("P=225 accepted (only 224 threads exist)")
	}
	if err := d.SetPartitions(224); err != nil {
		t.Fatalf("P=224 rejected: %v", err)
	}
}

// The paper's §V-B-1 rule: P ∈ {2,4,7,8,14,28,56} avoids splitting any
// core's threads across partitions; other values share cores.
func TestDivisorsOf56DoNotShareCores(t *testing.T) {
	_, d := newDev(t)
	divisors := map[int]bool{1: true, 2: true, 4: true, 7: true, 8: true, 14: true, 28: true, 56: true}
	for n := 1; n <= 56; n++ {
		if err := d.SetPartitions(n); err != nil {
			t.Fatal(err)
		}
		shared := false
		for _, p := range d.Partitions() {
			if p.SharesCore() {
				shared = true
				break
			}
		}
		if divisors[n] && shared {
			t.Errorf("P=%d (divisor of 56) unexpectedly shares a core", n)
		}
		if !divisors[n] && !shared {
			t.Errorf("P=%d (non-divisor) unexpectedly shares no core", n)
		}
	}
}

func TestCoresSpanned(t *testing.T) {
	_, d := newDev(t)
	if err := d.SetPartitions(4); err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Partitions() {
		if p.CoresSpanned() != 14 {
			t.Fatalf("P=4: partition spans %d cores, want 14", p.CoresSpanned())
		}
	}
	if err := d.SetPartitions(224); err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Partitions() {
		if p.CoresSpanned() != 1 {
			t.Fatalf("P=224: partition spans %d cores, want 1", p.CoresSpanned())
		}
	}
}

func TestKernelTimeScalesWithFlops(t *testing.T) {
	_, d := newDev(t)
	p := d.Partition(0)
	small := p.KernelTime(KernelCost{Flops: 1e9})
	large := p.KernelTime(KernelCost{Flops: 4e9})
	if large <= small {
		t.Fatalf("4x flops not slower: %v vs %v", large, small)
	}
}

func TestKernelTimeMoreThreadsFaster(t *testing.T) {
	_, d := newDev(t)
	cost := KernelCost{Flops: 1e9}
	if err := d.SetPartitions(1); err != nil {
		t.Fatal(err)
	}
	t224 := d.Partition(0).KernelTime(cost)
	if err := d.SetPartitions(4); err != nil {
		t.Fatal(err)
	}
	t56 := d.Partition(0).KernelTime(cost)
	if t224 >= t56 {
		t.Fatalf("224 threads (%v) not faster than 56 (%v) on 1 GFLOP kernel", t224, t56)
	}
}

// Tiny kernels cannot exploit wide partitions: the parallel-efficiency
// saturation term means a 100 KFLOP kernel gains almost nothing going
// from 14 to 224 threads, while a 10 GFLOP kernel speeds up nearly
// linearly. This is the model term behind Fig. 7's left edge and
// Fig. 10's right edge: spreading tiny tasks across the whole device
// wastes it.
func TestTinyKernelGainsNothingFromWidePartition(t *testing.T) {
	_, d := newDev(t)
	speedup := func(cost KernelCost) float64 {
		if err := d.SetPartitions(16); err != nil {
			t.Fatal(err)
		}
		narrow := d.Partition(0).KernelTime(cost) - sim.Duration(d.Config().StreamMgmtNsPerPartition)*16
		if err := d.SetPartitions(1); err != nil {
			t.Fatal(err)
		}
		wide := d.Partition(0).KernelTime(cost) - sim.Duration(d.Config().StreamMgmtNsPerPartition)
		return float64(narrow) / float64(wide)
	}
	if s := speedup(KernelCost{Flops: 100_000}); s > 2 {
		t.Fatalf("tiny kernel speedup 14→224 threads = %.2fx, want <2x (saturated)", s)
	}
	if s := speedup(KernelCost{Flops: 10e9}); s < 8 {
		t.Fatalf("large kernel speedup 14→224 threads = %.2fx, want ≳16x-ish (>8)", s)
	}
}

func TestSharedCoreContentionPenalizesComputeBound(t *testing.T) {
	_, d := newDev(t)
	cost := KernelCost{Flops: 1e9}
	// P=8 divides 56: no sharing. P=9 does not.
	if err := d.SetPartitions(8); err != nil {
		t.Fatal(err)
	}
	aligned := d.Partition(0).KernelTime(cost)
	alignedThreads := d.Partition(0).Threads()
	if err := d.SetPartitions(9); err != nil {
		t.Fatal(err)
	}
	var shared *Partition
	for _, p := range d.Partitions() {
		if p.SharesCore() {
			shared = p
			break
		}
	}
	if shared == nil {
		t.Fatal("P=9 produced no shared-core partition")
	}
	// Normalize for thread-count difference: scale by threads ratio.
	norm := float64(shared.KernelTime(cost)) * float64(shared.Threads()) / float64(alignedThreads)
	if norm <= float64(aligned)*1.05 {
		t.Fatalf("shared-core partition not penalized: normalized %v vs aligned %v", sim.Duration(norm), aligned)
	}
}

func TestMemoryBoundKernelIgnoresContention(t *testing.T) {
	_, d := newDev(t)
	// Pure memory-bound cost: no flops.
	cost := KernelCost{Bytes: 100 << 20}
	if err := d.SetPartitions(9); err != nil {
		t.Fatal(err)
	}
	var shared *Partition
	for _, p := range d.Partitions() {
		if p.SharesCore() {
			shared = p
		}
	}
	if shared == nil {
		t.Fatal("no shared partition at P=9")
	}
	// Compare against an identical-thread partition without sharing
	// by computing the expected bandwidth-limited time directly.
	cfg := d.Config()
	share := cfg.MemBandwidthBps * float64(shared.Threads()) / float64(cfg.TotalThreads())
	wantBody := sim.DurationOf(float64(cost.Bytes) / share)
	overhead := sim.Duration(cfg.KernelLaunchNs) + sim.Duration(cfg.StreamMgmtNsPerPartition)*9
	got := shared.KernelTime(cost)
	if got != wantBody+overhead {
		t.Fatalf("memory-bound kernel time = %v, want %v (no contention penalty)", got, wantBody+overhead)
	}
}

func TestCacheSensitiveKernelFasterOnConcentratedPartition(t *testing.T) {
	_, d := newDev(t)
	cost := KernelCost{Bytes: 64 << 20, CacheSensitive: true}
	if err := d.SetPartitions(1); err != nil {
		t.Fatal(err)
	}
	wide := d.Partition(0).KernelTime(cost)
	wideThreads := d.Partition(0).Threads()
	if err := d.SetPartitions(56); err != nil {
		t.Fatal(err)
	}
	narrow := d.Partition(0).KernelTime(cost)
	narrowThreads := d.Partition(0).Threads()
	// Normalize to per-thread bandwidth terms: time × threads is the
	// thread-seconds of the memory phase; concentration should reduce it.
	wideTS := float64(wide-sim.Duration(d.Config().KernelLaunchNs)) * float64(wideThreads)
	narrowTS := float64(narrow-sim.Duration(d.Config().KernelLaunchNs)-56*sim.Duration(d.Config().StreamMgmtNsPerPartition)) * float64(narrowThreads)
	if narrowTS >= wideTS {
		t.Fatalf("cache-sensitive kernel gained nothing from concentration: %v vs %v thread-ns", narrowTS, wideTS)
	}
}

// A kernel with ScalingPenalty loses efficiency as it spans more
// threads: thread-seconds grow with partition width, so four quarter-
// device kernels beat one full-device kernel — a source of the paper's
// spatial-sharing gains for GEMM-like code.
func TestScalingPenaltyMakesWideKernelsLessEfficient(t *testing.T) {
	_, d := newDev(t)
	cost := KernelCost{Flops: 1e11, ScalingPenalty: 0.1}
	threadSeconds := func(parts int) float64 {
		if err := d.SetPartitions(parts); err != nil {
			t.Fatal(err)
		}
		p := d.Partition(0)
		// Scale the per-partition share of the work.
		c := cost
		c.Flops /= float64(parts)
		return p.KernelTime(c).Seconds() * float64(p.Threads())
	}
	wide := threadSeconds(1)
	quarter := threadSeconds(4)
	if wide <= quarter {
		t.Fatalf("224-thread kernel (%.4f thread-s) should be less efficient than 56-thread (%.4f)", wide, quarter)
	}
	// Without the penalty, thread-seconds are width-independent
	// (up to fixed overheads).
	cost.ScalingPenalty = 0
	if err := d.SetPartitions(1); err != nil {
		t.Fatal(err)
	}
	a := d.Partition(0).KernelTime(cost).Seconds() * 224
	if err := d.SetPartitions(4); err != nil {
		t.Fatal(err)
	}
	c2 := cost
	c2.Flops /= 4
	b := d.Partition(0).KernelTime(c2).Seconds() * 56 * 4
	if ratio := a / b; ratio < 0.98 || ratio > 1.02 {
		t.Fatalf("without penalty thread-seconds should match: %.4f vs %.4f", a, b)
	}
}

// Kernels with cross-phase reuse (FitBonus) run the memory phase faster
// when their working set fits in the partition's aggregate L2 — smaller
// tiles on the same partition are faster per byte.
func TestFitBonusRewardsL2ResidentWorkingSets(t *testing.T) {
	_, d := newDev(t)
	if err := d.SetPartitions(4); err != nil {
		t.Fatal(err)
	}
	p := d.Partition(0) // 14 cores → 7 MB aggregate L2
	perByte := func(ws int64) float64 {
		c := KernelCost{Bytes: float64(ws), WorkingSetBytes: ws, FitBonus: 0.8}
		dt := p.KernelTime(c) - p.KernelTime(KernelCost{})
		return float64(dt) / float64(ws)
	}
	small := perByte(2 << 20)   // fits: 2 MB < 7 MB
	large := perByte(256 << 20) // does not fit
	if small >= large {
		t.Fatalf("L2-resident working set not faster per byte: %.3f vs %.3f ns/B", small, large)
	}
	// Without the bonus the two are identical per byte.
	noBonus := func(ws int64) float64 {
		c := KernelCost{Bytes: float64(ws), WorkingSetBytes: ws}
		dt := p.KernelTime(c) - p.KernelTime(KernelCost{})
		return float64(dt) / float64(ws)
	}
	a, b := noBonus(2<<20), noBonus(256<<20)
	if diff := a/b - 1; diff > 0.01 || diff < -0.01 {
		t.Fatalf("FitBonus=0 should be size-neutral: %.3f vs %.3f", a, b)
	}
}

func TestAllocCostScalesWithThreads(t *testing.T) {
	_, d := newDev(t)
	cost := KernelCost{Flops: 1, AllocBytesPerThread: 1 << 20}
	if err := d.SetPartitions(1); err != nil {
		t.Fatal(err)
	}
	wide := d.Partition(0).AllocTime(cost)
	if err := d.SetPartitions(56); err != nil {
		t.Fatal(err)
	}
	narrow := d.Partition(0).AllocTime(cost)
	if wide <= narrow {
		t.Fatalf("alloc on 224 threads (%v) should cost more than on 4 (%v)", wide, narrow)
	}
	ratio := float64(wide) / float64(narrow)
	if ratio < 50 || ratio > 60 {
		t.Fatalf("alloc ratio = %.1f, want ≈56 (linear in threads)", ratio)
	}
	if d.Partition(0).AllocTime(KernelCost{}) != 0 {
		t.Fatal("zero alloc bytes should cost nothing")
	}
}

func TestLaunchSerializesOnPartition(t *testing.T) {
	eng, d := newDev(t)
	p := d.Partition(0)
	cost := KernelCost{Flops: 1e8}
	_, end1 := p.Launch(0, cost, 0, 0, nil, nil)
	start2, _ := p.Launch(0, cost, 0, 1, nil, nil)
	if start2 != end1 {
		t.Fatalf("second launch at %v, want %v (partition must serialize)", start2, end1)
	}
	eng.Run()
}

func TestLaunchRunsBodyAtStartAndDoneAtEnd(t *testing.T) {
	eng, d := newDev(t)
	p := d.Partition(0)
	var bodyAt, doneAt sim.Time = -1, -1
	start, end := p.Launch(10, KernelCost{Flops: 1e8}, 0, 0,
		func() { bodyAt = eng.Now() },
		func(s, e sim.Time) { doneAt = eng.Now() })
	eng.Run()
	if bodyAt != start {
		t.Fatalf("body ran at %v, want start %v", bodyAt, start)
	}
	if doneAt != end {
		t.Fatalf("done ran at %v, want end %v", doneAt, end)
	}
}

func TestLaunchTracesKernelAndAllocSpans(t *testing.T) {
	eng := sim.NewEngine()
	rec := trace.NewRecorder()
	d, err := New(eng, Xeon31SP(), "mic0", rec)
	if err != nil {
		t.Fatal(err)
	}
	d.Partition(0).Launch(0, KernelCost{Name: "k", Flops: 1e8, AllocBytesPerThread: 1 << 16}, 2, 3, nil, nil)
	var kernels, allocs int
	for _, s := range rec.Spans() {
		switch s.Kind {
		case trace.Kernel:
			kernels++
			if s.Stream != 2 || s.Task != 3 || s.Label != "k" {
				t.Fatalf("bad kernel span %+v", s)
			}
		case trace.Alloc:
			allocs++
		}
	}
	if kernels != 1 || allocs != 1 {
		t.Fatalf("spans: %d kernel, %d alloc; want 1 and 1", kernels, allocs)
	}
}

func TestZeroEfficiencyTreatedAsFull(t *testing.T) {
	_, d := newDev(t)
	p := d.Partition(0)
	a := p.KernelTime(KernelCost{Flops: 1e9, Efficiency: 0})
	b := p.KernelTime(KernelCost{Flops: 1e9, Efficiency: 1})
	if a != b {
		t.Fatalf("Efficiency 0 (%v) should equal 1 (%v)", a, b)
	}
}

// Property: kernel time is monotone non-decreasing in flops and bytes
// for any partitioning.
func TestPropertyKernelTimeMonotone(t *testing.T) {
	_, d := newDev(t)
	f := func(p8 uint8, flops, bytes uint32) bool {
		n := 1 + int(p8)%56
		if err := d.SetPartitions(n); err != nil {
			return false
		}
		p := d.Partition(0)
		base := KernelCost{Flops: float64(flops), Bytes: float64(bytes)}
		more := KernelCost{Flops: float64(flops) * 2, Bytes: float64(bytes) * 2}
		return p.KernelTime(more) >= p.KernelTime(base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every partitioning covers threads exactly once with
// contiguous, non-overlapping ranges.
func TestPropertyPartitionCoverage(t *testing.T) {
	_, d := newDev(t)
	f := func(p8 uint8) bool {
		n := 1 + int(p8)%224
		if err := d.SetPartitions(n); err != nil {
			return false
		}
		next := 0
		for _, p := range d.Partitions() {
			if p.firstThread != next {
				return false
			}
			next += p.Threads()
		}
		return next == 224
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 224}); err != nil {
		t.Fatal(err)
	}
}
