package telemetry

import (
	"testing"

	"micstream/internal/sim"
)

func TestKindString(t *testing.T) {
	for k := Admit; k <= Preempt; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no label", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}

func TestRecorderSemantics(t *testing.T) {
	r := NewRecorder()
	if !r.Enabled() {
		t.Fatal("fresh recorder should be enabled")
	}
	r.Emit(Event{At: 10, Kind: Admit, Job: 0})
	r.Emit(Event{At: 20, Kind: Place, Job: 0, Device: 1})
	r.Emit(Event{At: 20, Kind: Dispatch, Job: 0, Device: 1})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	for i, e := range r.Events() {
		if e.Seq != i {
			t.Errorf("event %d has Seq %d", i, e.Seq)
		}
	}
	if r.Count(Place) != 1 || r.Count(Steal) != 0 {
		t.Error("Count misbehaves")
	}
	r.AddMetrics(MetricsSnapshot{At: 20, Done: 1})
	if len(r.Metrics()) != 1 {
		t.Fatal("AddMetrics did not append")
	}
	r.Reset()
	if r.Len() != 0 || len(r.Metrics()) != 0 {
		t.Fatal("Reset did not clear the recorder")
	}
}

func TestNilRecorderIsValidSink(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder must report disabled")
	}
	// Every method must be callable on nil without panicking.
	r.Emit(Event{At: 1, Kind: Admit})
	r.AddMetrics(MetricsSnapshot{})
	r.Reset()
	if r.Len() != 0 || r.Events() != nil || r.Metrics() != nil || r.Count(Admit) != 0 {
		t.Fatal("nil recorder must observe as empty")
	}
	if r.Makespan() != 0 {
		t.Fatal("nil recorder makespan must be zero")
	}
}

// TestDisabledEmissionAllocatesNothing is the hot-path guarantee the
// nil-sink idiom exists for: emitting into a disabled (nil) recorder
// must not allocate, so always-on emission sites cost nothing when
// telemetry is off.
func TestDisabledEmissionAllocatesNothing(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		if r.Enabled() {
			t.Fatal("unreachable")
		}
		r.Emit(Event{At: 5, Kind: Dispatch, Job: 1, ID: 2, Device: 0, Stream: 3, Dur: sim.Duration(100)})
		r.Emit(Event{At: 6, Kind: Slice, Job: 1, ID: 2, Device: 0, Stream: 3, Dur: sim.Duration(50)})
		r.Emit(Event{At: 7, Kind: Preempt, Job: 1, ID: 2, Device: 1, From: 0, Dur: sim.Duration(25)})
	})
	if allocs != 0 {
		t.Fatalf("disabled emission allocates %.1f times per call, want 0", allocs)
	}
}

func TestMakespan(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{At: 30, Kind: Admit})
	r.Emit(Event{At: 10, Kind: Drain})
	if r.Makespan() != 30 {
		t.Fatalf("Makespan = %v, want 30", r.Makespan())
	}
}
