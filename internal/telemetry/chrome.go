package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"micstream/internal/sim"
	"micstream/internal/trace"
)

// WriteChromeTrace renders a run as Chrome trace-event JSON — the
// format chrome://tracing and Perfetto load — unifying the two
// recorders the platform keeps: the hstreams span recorder (per-
// resource H2D/EXE/D2H occupancy, the paper's Fig. 1 material) and the
// telemetry event log (scheduling decisions). Each device becomes one
// process ("mic0", "mic1", …) whose threads are its trace resources
// (PCIe link, partitions) plus one synthetic "jobs/stream<N>" track per
// stream carrying job-level slices from Dispatch→Complete; scheduling
// decisions render as instant events (admit/place/fail on the
// "cluster" process, steal on the thief, stage/hit/evict/invalidate/
// drain on their device) and drain-instant metrics as counter series.
// Either input may be nil/empty. Output is deterministic: tracks are
// numbered by sorted name, events keep emission order, timestamps are
// exact (virtual nanoseconds rendered as fixed-point microseconds).
func WriteChromeTrace(w io.Writer, spans []trace.Span, r *Recorder) error {
	cw := &chromeWriter{w: w}
	cw.begin()

	// Assign (pid, tid) tracks. Span resources name themselves; job
	// slices from Complete events get a per-stream track on their
	// device's process.
	tracks := map[string]int{} // "pid/name" → tid
	var names []string
	addTrack := func(pid int, name string) {
		key := fmt.Sprintf("%d/%s", pid, name)
		if _, ok := tracks[key]; !ok {
			tracks[key] = 0
			names = append(names, key)
		}
	}
	for _, s := range spans {
		addTrack(pidOf(s.Resource), s.Resource)
	}
	for _, e := range r.Events() {
		if e.Kind == Complete && e.Device >= 0 && e.Stream >= 0 {
			addTrack(e.Device+1, fmt.Sprintf("jobs/stream%d", e.Stream))
		}
	}
	sort.Strings(names)
	pids := map[int]bool{0: true}
	for tid, key := range names {
		tracks[key] = tid + 1 // tid 0 is the counter track
		slash := strings.IndexByte(key, '/')
		pid, _ := strconv.Atoi(key[:slash])
		pids[pid] = true
	}

	// Metadata: process and thread names, sorted for stable output.
	pidList := make([]int, 0, len(pids))
	for pid := range pids {
		pidList = append(pidList, pid)
	}
	sort.Ints(pidList)
	for _, pid := range pidList {
		name := "cluster"
		if pid > 0 {
			name = fmt.Sprintf("mic%d", pid-1)
		}
		cw.event(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`, pid, quote(name))
	}
	for _, key := range names {
		slash := strings.IndexByte(key, '/')
		pid, _ := strconv.Atoi(key[:slash])
		cw.event(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`, pid, tracks[key], quote(key[slash+1:]))
	}

	// Resource occupancy spans, one "X" slice each.
	for _, s := range spans {
		pid := pidOf(s.Resource)
		label := s.Kind.String()
		if s.Label != "" {
			label = s.Label
		}
		cw.event(`{"name":%s,"cat":"span","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"kind":%s,"stream":%d,"task":%d}}`,
			quote(label), usOf(int64(s.Start)), usOf(int64(s.Duration())), pid, tracks[fmt.Sprintf("%d/%s", pid, s.Resource)],
			quote(s.Kind.String()), s.Stream, s.Task)
	}

	// Scheduling decisions: job slices and instant events.
	for _, e := range r.Events() {
		cw.decision(e, tracks)
	}

	// Drain-instant metrics as counter series (tid 0 of each process).
	for _, m := range r.Metrics() {
		cw.event(`{"name":"cluster","cat":"metrics","ph":"C","ts":%s,"pid":0,"tid":0,"args":{"queued":%d,"done":%d,"steals":%d}}`,
			usOf(int64(m.At)), m.ClusterQueue, m.Done, m.Steals)
		for _, d := range m.Devices {
			cw.event(`{"name":"device","cat":"metrics","ph":"C","ts":%s,"pid":%d,"tid":0,"args":{"queued":%d,"inflight":%d,"resident":%d}}`,
				usOf(int64(m.At)), d.Device+1, d.Queued, d.InFlight, d.ResidentBytes)
		}
	}

	return cw.end()
}

// decision renders one telemetry event. Complete events become job
// slices (their Dur is the realized service, so the slice spans
// dispatch→completion); everything else becomes an instant.
func (cw *chromeWriter) decision(e Event, tracks map[string]int) {
	job := quote(fmt.Sprintf("job %d (%s)", e.ID, e.Tenant))
	switch e.Kind {
	case Complete:
		if e.Device >= 0 && e.Stream >= 0 {
			tid := tracks[fmt.Sprintf("%d/jobs/stream%d", e.Device+1, e.Stream)]
			cw.event(`{"name":%s,"cat":"job","ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d,"args":{"job":%d,"tenant":%s}}`,
				job, usOf(int64(e.At)-int64(e.Dur)), usOf(int64(e.Dur)), e.Device+1, tid, e.Job, quote(e.Tenant))
		}
	case Admit:
		cw.instant("admit", "g", 0, fmt.Sprintf(`"job":%d,"tenant":%s,"est_us":%s`, e.Job, quote(e.Tenant), usOf(int64(e.Dur))), e)
	case Place:
		args := fmt.Sprintf(`"job":%d,"device":%d`, e.Job, e.Device)
		if len(e.Scores) > 0 {
			var sb strings.Builder
			for i, s := range e.Scores {
				if i > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, `{"dev":%d,"predicted_us":%s}`, s.Device, usOf(int64(s.Predicted)))
			}
			args += `,"scores":[` + sb.String() + `]`
		}
		cw.instant("place", "g", 0, args, e)
	case Dispatch:
		cw.instant("dispatch", "p", e.Device+1, fmt.Sprintf(`"job":%d,"stream":%d,"est_us":%s`, e.Job, e.Stream, usOf(int64(e.Dur))), e)
	case Fail:
		cw.instant("fail", "g", 0, fmt.Sprintf(`"job":%d,"tenant":%s`, e.Job, quote(e.Tenant)), e)
	case Steal:
		cw.instant("steal", "g", maxInt(e.Device+1, 0),
			fmt.Sprintf(`"job":%d,"thief":%d,"victim":%d,"gain_us":%s`, e.Job, e.Device, e.From, usOf(int64(e.Dur))), e)
	case Hit:
		cw.instant("residency-hit", "p", e.Device+1, fmt.Sprintf(`"job":%d,"bytes":%d`, e.Job, e.Bytes), e)
	case Stage:
		cw.instant("stage", "p", e.Device+1, fmt.Sprintf(`"job":%d,"bytes":%d,"link_us":%s`, e.Job, e.Bytes, usOf(int64(e.Dur))), e)
	case Evict:
		cw.instant("evict", "p", e.Device+1, fmt.Sprintf(`"bytes":%d`, e.Bytes), e)
	case Invalidate:
		cw.instant("invalidate", "p", e.Device+1, fmt.Sprintf(`"writer":%d,"bytes":%d`, e.From, e.Bytes), e)
	case Drain:
		cw.instant("drain", "p", e.Device+1, fmt.Sprintf(`"job":%d`, e.Job), e)
	case Slice:
		cw.instant("slice", "p", e.Device+1, fmt.Sprintf(`"job":%d,"stream":%d,"est_us":%s`, e.Job, e.Stream, usOf(int64(e.Dur))), e)
	case Preempt:
		cw.instant("preempt", "g", maxInt(e.Device+1, 0),
			fmt.Sprintf(`"job":%d,"thief":%d,"victim":%d,"gain_us":%s`, e.Job, e.Device, e.From, usOf(int64(e.Dur))), e)
	case Requeue:
		cw.instant("requeue", "p", e.Device+1,
			fmt.Sprintf(`"job":%d,"stream":%d,"ran_us":%s`, e.Job, e.Stream, usOf(int64(e.Dur))), e)
	}
}

// instant emits one instant ("i") event with the given scope and args.
func (cw *chromeWriter) instant(name, scope string, pid int, args string, e Event) {
	cw.event(`{"name":%s,"cat":"decision","ph":"i","s":%s,"ts":%s,"pid":%d,"tid":0,"args":{%s}}`,
		quote(name), quote(scope), usOf(int64(e.At)), pid, args)
}

// chromeWriter accumulates trace events with comma discipline and a
// sticky error, so the export reads as one pass.
type chromeWriter struct {
	w   io.Writer
	n   int
	err error
}

func (cw *chromeWriter) begin() {
	_, cw.err = io.WriteString(cw.w, "{\"traceEvents\":[\n")
}

func (cw *chromeWriter) event(format string, args ...any) {
	if cw.err != nil {
		return
	}
	sep := ",\n"
	if cw.n == 0 {
		sep = ""
	}
	cw.n++
	_, cw.err = fmt.Fprintf(cw.w, sep+format, args...)
}

func (cw *chromeWriter) end() error {
	if cw.err != nil {
		return cw.err
	}
	_, cw.err = io.WriteString(cw.w, "\n]}\n")
	return cw.err
}

// usOf renders virtual nanoseconds as the trace format's microsecond
// timestamps, exactly: fixed-point with three decimals, so no float
// rounding can perturb byte-identical exports.
func usOf(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}

// pidOf maps a span resource to its process: "mic<d>/…" resources
// belong to device d's process (pid d+1), everything else (host work)
// to the cluster process (pid 0).
func pidOf(resource string) int {
	if !strings.HasPrefix(resource, "mic") {
		return 0
	}
	rest := resource[3:]
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		slash = len(rest)
	}
	d, err := strconv.Atoi(rest[:slash])
	if err != nil || d < 0 {
		return 0
	}
	return d + 1
}

// quote JSON-escapes a string, covering the control, quote and
// backslash cases our labels can contain.
func quote(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for _, r := range s {
		switch {
		case r == '"':
			sb.WriteString(`\"`)
		case r == '\\':
			sb.WriteString(`\\`)
		case r < 0x20:
			fmt.Fprintf(&sb, `\u%04x`, r)
		default:
			sb.WriteRune(r)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Makespan reports the end of the latest recorded event — a
// convenience mirror of trace.Recorder.Makespan for logs without
// spans.
func (r *Recorder) Makespan() sim.Time {
	var m sim.Time
	for _, e := range r.Events() {
		if e.At > m {
			m = e.At
		}
	}
	return m
}
