package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"micstream/internal/sim"
	"micstream/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden Chrome trace")

// goldenFixture is a handcrafted run exercising every event kind and
// both recorders: two devices, one steal, a slice/preempt pair, a
// residency hit/stage/evict cycle, and a metrics snapshot.
func goldenFixture() ([]trace.Span, *Recorder) {
	ms := sim.Time(sim.Millisecond)
	spans := []trace.Span{
		{Resource: "mic0/pcie", Stream: 0, Task: 0, Kind: trace.H2D, Start: 0, End: 1 * ms},
		{Resource: "mic0/part0", Stream: 0, Task: 0, Kind: trace.Kernel, Label: "gemm", Start: 1 * ms, End: 3 * ms},
		{Resource: "mic0/pcie", Stream: 0, Task: 0, Kind: trace.D2H, Start: 3 * ms, End: 4 * ms},
		{Resource: "mic1/part0", Stream: 2, Task: 1, Kind: trace.Kernel, Label: "gemm", Start: 2 * ms, End: 5 * ms},
		{Resource: "host", Stream: -1, Task: -1, Kind: trace.Kernel, Label: "stage \"quoted\"", Start: 0, End: 1 * ms},
	}
	r := NewRecorder()
	r.Emit(Event{At: 0, Kind: Admit, Job: 0, ID: 100, Tenant: "A", Device: -1, From: -1, Stream: -1, Dur: sim.Duration(3 * ms)})
	r.Emit(Event{At: 0, Kind: Place, Job: 0, ID: 100, Tenant: "A", Device: 0, From: -1, Stream: -1,
		Scores: []Score{{Device: 0, Predicted: 3 * ms}, {Device: 1, Predicted: 5 * ms}}})
	r.Emit(Event{At: 0, Kind: Hit, Job: 0, ID: 100, Tenant: "A", Device: 0, From: -1, Stream: -1, Bytes: 1 << 20})
	r.Emit(Event{At: 0, Kind: Stage, Job: 0, ID: 100, Tenant: "A", Device: 0, From: -1, Stream: -1, Bytes: 2 << 20, Dur: sim.Duration(ms)})
	r.Emit(Event{At: 0, Kind: Dispatch, Job: 0, ID: 100, Tenant: "A", Device: 0, From: -1, Stream: 0, Dur: sim.Duration(3 * ms)})
	r.Emit(Event{At: sim.Time(ms / 2), Kind: Steal, Job: 1, ID: 101, Tenant: "B", Device: 1, From: 0, Stream: -1, Dur: sim.Duration(2 * ms)})
	r.Emit(Event{At: sim.Time(ms), Kind: Requeue, Job: 0, ID: 100, Tenant: "A", Device: 0, From: -1, Stream: 0, Dur: sim.Duration(ms)})
	r.Emit(Event{At: sim.Time(ms), Kind: Slice, Job: 0, ID: 100, Tenant: "A", Device: 0, From: -1, Stream: 0, Dur: sim.Duration(ms)})
	r.Emit(Event{At: 2 * ms, Kind: Preempt, Job: 1, ID: 101, Tenant: "B", Device: 1, From: 0, Stream: -1, Dur: sim.Duration(ms)})
	r.Emit(Event{At: 2 * ms, Kind: Dispatch, Job: 1, ID: 101, Tenant: "B", Device: 1, From: -1, Stream: 2, Dur: sim.Duration(3 * ms)})
	r.Emit(Event{At: 4 * ms, Kind: Complete, Job: 0, ID: 100, Tenant: "A", Device: 0, From: -1, Stream: 0, Dur: sim.Duration(4 * ms)})
	r.Emit(Event{At: 4 * ms, Kind: Drain, Job: 0, ID: 100, Tenant: "A", Device: 0, From: -1, Stream: 0})
	r.Emit(Event{At: 4 * ms, Kind: Invalidate, Job: 0, ID: 100, Tenant: "A", Device: 0, From: 0, Stream: -1, Bytes: 1 << 20})
	r.Emit(Event{At: 4 * ms, Kind: Evict, Job: -1, ID: -1, Device: 1, From: -1, Stream: -1, Bytes: 3 << 20})
	r.Emit(Event{At: 5 * ms, Kind: Complete, Job: 1, ID: 101, Tenant: "B", Device: 1, From: -1, Stream: 2, Dur: sim.Duration(3 * ms)})
	r.Emit(Event{At: 5 * ms, Kind: Fail, Job: 2, ID: 102, Tenant: "B", Device: -1, From: -1, Stream: -1})
	r.AddMetrics(MetricsSnapshot{
		At: 4 * ms, Elapsed: sim.Duration(4 * ms), Done: 1, Steals: 1, ClusterQueue: 2, Fairness: 0.5,
		Devices: []DeviceMetrics{
			{Device: 0, Queued: 1, InFlight: 1, StagedBytes: 2 << 20, ResidentBytes: 4 << 20},
			{Device: 1, Queued: 0, InFlight: 1},
		},
	})
	return spans, r
}

// TestChromeTraceGolden locks the export format byte-for-byte: the
// deterministic renderer plus a handcrafted fixture must reproduce the
// checked-in golden file exactly. Regenerate with -update after a
// deliberate format change.
func TestChromeTraceGolden(t *testing.T) {
	spans, rec := goldenFixture()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, rec); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run Golden -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export differs from golden %s (regenerate with -update if deliberate)\ngot:\n%s", path, buf.String())
	}
}

// TestChromeTraceIsValidJSON parses the export with encoding/json and
// checks the structural invariants Perfetto needs.
func TestChromeTraceIsValidJSON(t *testing.T) {
	spans, rec := goldenFixture()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, rec); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export has no events")
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		phases[ph]++
		if ph == "" {
			t.Fatalf("event missing ph: %v", e)
		}
		if _, ok := e["pid"]; !ok {
			t.Fatalf("event missing pid: %v", e)
		}
	}
	// Metadata, spans, instants and counters must all be present.
	for _, ph := range []string{"M", "X", "i", "C"} {
		if phases[ph] == 0 {
			t.Errorf("export has no %q events (%v)", ph, phases)
		}
	}
	// One X slice per span plus one per Complete event.
	if want := len(spans) + rec.Count(Complete); phases["X"] != want {
		t.Errorf("got %d X slices, want %d", phases["X"], want)
	}
}

// TestChromeTraceEmptyInputs checks the degenerate exports stay valid.
func TestChromeTraceEmptyInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
}

func TestUsOf(t *testing.T) {
	for _, tc := range []struct {
		ns   int64
		want string
	}{
		{0, "0.000"}, {1, "0.001"}, {999, "0.999"}, {1000, "1.000"},
		{1234567, "1234.567"}, {-1500, "-1.500"},
	} {
		if got := usOf(tc.ns); got != tc.want {
			t.Errorf("usOf(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}

func TestPidOf(t *testing.T) {
	for _, tc := range []struct {
		resource string
		want     int
	}{
		{"mic0/pcie", 1}, {"mic3/part1", 4}, {"mic12", 13},
		{"host", 0}, {"cluster/staging", 0}, {"micX/pcie", 0},
	} {
		if got := pidOf(tc.resource); got != tc.want {
			t.Errorf("pidOf(%q) = %d, want %d", tc.resource, got, tc.want)
		}
	}
}

func TestQuote(t *testing.T) {
	got := quote("a\"b\\c\nd")
	if !strings.Contains(got, `\"`) || !strings.Contains(got, `\\`) || strings.ContainsRune(got, '\n') {
		t.Errorf("quote did not escape: %s", got)
	}
	var s string
	if err := json.Unmarshal([]byte(got), &s); err != nil || s != "a\"b\\c\nd" {
		t.Errorf("quote round-trip failed: %q %v", s, err)
	}
}
