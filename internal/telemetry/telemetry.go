// Package telemetry is the cluster-wide observability layer: a
// deterministic, virtual-time-stamped event log of every scheduling
// decision the platform makes — admission, placement (with the
// per-device predicted scores behind the pick), dispatch, completion,
// failure, work stealing, residency hits/stages/evictions/
// invalidations, and drain instants — plus drain-instant metrics
// snapshots (per-device utilization and queue state, per-tenant
// throughput and tail latency) and a Chrome trace-event JSON exporter
// that renders cluster runs as Perfetto-loadable Gantt timelines.
//
// The paper's whole argument rests on *seeing* temporal sharing: Fig. 1
// is an eyeballed overlap of H2D/EXE/D2H spans, which internal/trace
// already records for the single-device pipeline. This package extends
// that visibility to the layers where the interesting decisions now
// happen — placement, stealing, residency — without perturbing them:
// the recorder follows the trace.Recorder nil-sink idiom (a nil
// *Recorder is a valid no-op sink, and emission sites guard with
// Enabled so the disabled hot path constructs nothing and allocates
// nothing), every event is stamped with virtual time inside an engine
// callback (so repeated runs produce byte-identical logs), and nothing
// recorded ever feeds back into a scheduling decision (so a traced
// run's Result is bit-identical to an untraced one — DESIGN.md §12).
package telemetry

import (
	"micstream/internal/sim"
)

// Kind classifies a scheduling event.
type Kind uint8

// Event kinds, in rough lifecycle order. Admit/Place/Dispatch/
// Complete/Fail are the job lifecycle (Place is cluster-level
// commitment, Dispatch the stream grant); Steal is a drain-instant
// re-binding; Hit/Stage split an off-origin job's staging demand at
// commitment; Evict/Invalidate are residency-cache drops; Drain marks
// a device's job-completion instant, the decision point the cluster
// re-enters placement and stealing from; Slice marks a follow-up
// slice of a partially-dispatched job being granted a stream (the
// first slice logs Dispatch); Preempt is a mid-job steal — the
// undispatched remainder of a dispatched job migrating to a thief;
// Requeue marks a slice boundary — the stream grant ending with the
// job unfinished and its remainder re-entering the queue, so every
// grant closes with exactly one Requeue or Complete and the timeline
// folder (internal/obs) can reconstruct per-slice execution spans
// exactly (DESIGN.md §14). New kinds append at the end: the numeric
// values are load-bearing for recorded logs.
const (
	Admit Kind = iota
	Place
	Dispatch
	Complete
	Fail
	Steal
	Hit
	Stage
	Evict
	Invalidate
	Drain
	Slice
	Preempt
	Requeue
)

var kindNames = [...]string{
	"admit", "place", "dispatch", "complete", "fail",
	"steal", "hit", "stage", "evict", "invalidate", "drain",
	"slice", "preempt", "requeue",
}

// String returns the short event-kind label used in exports.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Score is one device's predicted completion instant at a placement
// decision, as the placement policy scored it.
type Score struct {
	// Device is the device index.
	Device int
	// Predicted is the policy's predicted completion instant for the
	// job on this device (staging term included).
	Predicted sim.Time
}

// Event is one recorded scheduling decision. Unused fields hold their
// zero value except the index-valued ones (Job, Device, From, Stream),
// which hold -1 when not applicable so a valid device 0 is never
// conflated with "none".
type Event struct {
	// At is the virtual instant the decision happened.
	At sim.Time
	// Seq is the event's position in the log (stamped by Emit) —
	// events sharing a virtual instant keep their decision order.
	Seq int
	// Kind classifies the decision.
	Kind Kind
	// Job is the owning run's outcome index for the job. On cluster
	// runs every event — including the dispatch/slice/requeue/complete
	// events the embedded per-device schedulers emit — carries the
	// cluster-level index (the cluster stamps it on the submitted
	// sched.Job's Ref), so a single index space correlates all layers
	// of one log; standalone scheduler events carry the scheduler-local
	// index. -1 on events not tied to a job.
	Job int
	// ID echoes the job's caller-assigned label — the cross-layer
	// correlator, since cluster and device indices differ.
	ID int
	// Tenant is the job's tenant label ("" on non-job events).
	Tenant string
	// Device is the event's primary device: the commitment target on
	// Place, the thief on Steal, the drained device on Drain; -1 on
	// cluster-level events (Admit).
	Device int
	// From is the secondary device: the steal victim on Steal, the
	// writing device on Invalidate; -1 otherwise.
	From int
	// Stream is the context-wide stream id on Dispatch/Complete, -1
	// otherwise.
	Stream int
	// Bytes carries the event's data volume: staged bytes on Stage
	// (the charged transfer), resident bytes served on Hit, dropped
	// bytes on Evict/Invalidate.
	Bytes int64
	// Dur carries the event's duration signal: the service estimate on
	// Admit/Dispatch/Slice, the realized service on Complete, the
	// realized span of the just-ended slice on Requeue, the predicted
	// gain on Steal/Preempt, the modeled staging occupancy on Stage.
	Dur sim.Duration
	// Scores lists every eligible device's predicted completion at a
	// Place decision, when the placement policy exposes its scores
	// (predicted/affinity do; load-blind policies leave it nil).
	Scores []Score
	// Deadline echoes the job's declared relative deadline on Admit (0
	// when the job has none), so SLO evaluators can judge the later
	// Complete event without reaching back into the job spec.
	Deadline sim.Duration
}

// Recorder accumulates scheduling events and drain-instant metrics
// snapshots. A nil *Recorder is a valid no-op sink, so hot paths can
// emit unconditionally; emission sites that would build slices (Place
// scores, metrics snapshots) guard with Enabled so the disabled path
// allocates nothing. The recorder is append-only across runs — like
// the residency cache, it survives Cluster.Run calls, so a multi-run
// session logs one continuous timeline.
type Recorder struct {
	events []Event
	snaps  []MetricsSnapshot

	// onEvent and onMetrics are live observers (a flight recorder, a
	// metrics exporter) invoked synchronously after each append, in
	// decision order with virtual timestamps. Observers are pure
	// consumers: nothing they do feeds back into a scheduling decision,
	// so an observed run stays bit-identical to a bare one. A nil
	// recorder never invokes them (the disabled path is unchanged).
	onEvent   func(Event)
	onMetrics func(MetricsSnapshot)
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Enabled reports whether events will be kept. Emission sites use it
// to skip building per-event state (score slices, metric snapshots) on
// the disabled path.
func (r *Recorder) Enabled() bool { return r != nil }

// Emit appends one event, stamping its Seq. Calls on a nil recorder
// are dropped without allocating.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	e.Seq = len(r.events)
	r.events = append(r.events, e)
	if r.onEvent != nil {
		r.onEvent(e)
	}
}

// SetOnEvent installs (or clears, with nil) a live event observer.
// The observer sees every event after it is appended, Seq stamped, in
// decision order. Install before Run; observers must not mutate the
// recorder.
func (r *Recorder) SetOnEvent(fn func(Event)) {
	if r != nil {
		r.onEvent = fn
	}
}

// SetOnMetrics installs (or clears, with nil) a live metrics-snapshot
// observer, called after each drain-instant snapshot is appended.
func (r *Recorder) SetOnMetrics(fn func(MetricsSnapshot)) {
	if r != nil {
		r.onMetrics = fn
	}
}

// Events returns the recorded events in emission order. The returned
// slice aliases the recorder's storage; callers must not mutate it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// AddMetrics appends one drain-instant metrics snapshot. Calls on a
// nil recorder are dropped.
func (r *Recorder) AddMetrics(s MetricsSnapshot) {
	if r == nil {
		return
	}
	r.snaps = append(r.snaps, s)
	if r.onMetrics != nil {
		r.onMetrics(s)
	}
}

// Metrics returns the recorded snapshots in emission order. The
// returned slice aliases the recorder's storage; callers must not
// mutate it.
func (r *Recorder) Metrics() []MetricsSnapshot {
	if r == nil {
		return nil
	}
	return r.snaps
}

// Reset discards all recorded events and snapshots but keeps the
// recorder usable.
func (r *Recorder) Reset() {
	if r != nil {
		r.events = r.events[:0]
		r.snaps = r.snaps[:0]
	}
}

// Count reports how many recorded events have the given kind.
func (r *Recorder) Count(kind Kind) int {
	n := 0
	for _, e := range r.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
