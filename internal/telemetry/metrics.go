package telemetry

import (
	"micstream/internal/sim"
)

// DeviceMetrics is one device's state at a drain instant.
type DeviceMetrics struct {
	// Device is the device index.
	Device int
	// Queued is the committed-but-undispatched job count; InFlight
	// the dispatched-but-unfinished count.
	Queued, InFlight int
	// Backlog is the summed service estimates of the queued jobs.
	Backlog sim.Duration
	// KernelBusy and LinkBusy are the device's partition-server and
	// DMA-server occupancy so far this run (sim.Server accounting);
	// Utilization is KernelBusy over the elapsed run span times the
	// partition count — the live form of the Result's per-device
	// utilization.
	KernelBusy, LinkBusy sim.Duration
	Utilization          float64
	// StagedBytes is the cumulative staging volume charged onto this
	// device's link so far this run; ResidentBytes is the residency
	// cache's current footprint (0 cache-less).
	StagedBytes, ResidentBytes int64
}

// TenantMetrics is one tenant's accounting at a drain instant, over
// the jobs completed so far.
type TenantMetrics struct {
	// Tenant is the tenant label.
	Tenant string
	// Done is the completed-job count so far.
	Done int
	// Throughput is completed jobs per second of elapsed run span.
	Throughput float64
	// MeanLatency and P95 summarize the completed jobs' response
	// times so far.
	MeanLatency, P95 sim.Duration
}

// MetricsSnapshot is the cluster's state captured at one drain
// instant — the time-series sample a live service mode will stream.
// Snapshots are pure observations: capturing them never perturbs a
// scheduling decision, so a metered run's Result is bit-identical to
// an unmetered one.
type MetricsSnapshot struct {
	// At is the drain instant; Elapsed is the span since the run
	// started (the denominator of the rates).
	At      sim.Time
	Elapsed sim.Duration
	// Done and Steals count completions and re-bindings so far;
	// ClusterQueue is the cluster-level admission queue depth after
	// the drain instant's placement loop ran.
	Done, Steals, ClusterQueue int
	// Fairness is Jain's index over the per-tenant throughputs so far
	// (1 = perfectly even, 1/n = one tenant has everything).
	Fairness float64
	// HitBytes and MissBytes are the cumulative residency-cache split
	// of staging demand committed so far this run: bytes served
	// resident versus bytes charged as cold-miss transfer. Withdrawn
	// commitments (steal re-bindings) are un-charged, mirroring the
	// per-device StagedBytes accounting, so the pair is exact, not
	// monotone. Both 0 cache-less.
	HitBytes, MissBytes int64
	// Devices lists per-device state in device order; Tenants lists
	// per-tenant accounting sorted by tenant label.
	Devices []DeviceMetrics
	Tenants []TenantMetrics
}
