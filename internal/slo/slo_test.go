package slo

import (
	"bytes"
	"strings"
	"testing"

	"micstream/internal/obs"
	"micstream/internal/sim"
	"micstream/internal/telemetry"
)

const msD = sim.Millisecond

func at(ms int64) sim.Time { return sim.Time(ms) * sim.Time(msD) }

// feedJob replays one job's minimal lifecycle (Admit → Place →
// Dispatch → Complete) through the evaluator, with the given latency
// split so the critical phase is controllable.
func feedJob(ev *Evaluator, job int, tenant string, admitMs, placeMs, startMs, doneMs int64, deadline sim.Duration) {
	ev.OnEvent(telemetry.Event{At: at(admitMs), Kind: telemetry.Admit, Job: job, ID: job, Tenant: tenant, Deadline: deadline})
	ev.OnEvent(telemetry.Event{At: at(placeMs), Kind: telemetry.Place, Job: job, ID: job, Tenant: tenant})
	ev.OnEvent(telemetry.Event{At: at(startMs), Kind: telemetry.Dispatch, Job: job, ID: job, Tenant: tenant})
	ev.OnEvent(telemetry.Event{At: at(doneMs), Kind: telemetry.Complete, Job: job, ID: job, Tenant: tenant})
}

func drain(ev *Evaluator, nowMs int64) {
	ev.OnMetrics(telemetry.MetricsSnapshot{At: at(nowMs)})
}

func latencySpec(tenant string, thresholdMs int64, target float64) Spec {
	return Spec{Objectives: []Objective{{
		Tenant: tenant, Name: "lat", Kind: KindLatency,
		Target: target, Threshold: sim.Duration(thresholdMs) * msD,
	}}}
}

func TestNormalizeDefaults(t *testing.T) {
	spec := latencySpec("a", 10, 0)
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	o := spec.Objectives[0]
	if o.Target != DefaultTarget || o.FastWindow != DefaultFastWindow || o.SlowWindow != DefaultSlowWindow ||
		o.FastBurn != DefaultFastBurn || o.SlowBurn != DefaultSlowBurn {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"empty", Spec{}, "no objectives"},
		{"unnamed", Spec{Objectives: []Objective{{Kind: KindLatency, Threshold: msD}}}, "no name"},
		{"dup", Spec{Objectives: []Objective{
			{Name: "x", Kind: KindLatency, Threshold: msD},
			{Name: "x", Kind: KindLatency, Threshold: msD},
		}}, "duplicate"},
		{"kind", Spec{Objectives: []Objective{{Name: "x", Kind: "p99"}}}, "unknown kind"},
		{"latency-threshold", Spec{Objectives: []Objective{{Name: "x", Kind: KindLatency}}}, "positive threshold"},
		{"floor", Spec{Objectives: []Objective{{Name: "x", Kind: KindThroughput}}}, "positive floor"},
		{"target", Spec{Objectives: []Objective{{Name: "x", Kind: KindLatency, Threshold: msD, Target: 1.5}}}, "outside (0,1)"},
		{"windows", Spec{Objectives: []Objective{{Name: "x", Kind: KindLatency, Threshold: msD,
			FastWindow: 50 * msD, SlowWindow: 10 * msD}}}, "exceeds slow window"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Normalize()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestParseSpec(t *testing.T) {
	good := `{"objectives": [
		{"tenant": "a", "name": "lat", "kind": "latency", "threshold": "10ms", "target": 0.9},
		{"tenant": "a", "name": "tp", "kind": "throughput", "floor_jobs_per_s": 100}
	]}`
	spec, err := ParseSpec([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Objectives) != 2 || spec.Objectives[0].Threshold != 10*msD {
		t.Fatalf("parsed %+v", spec.Objectives)
	}
	if spec.Objectives[0].FastWindow != DefaultFastWindow {
		t.Fatal("parse did not normalize")
	}

	bad := []struct{ name, in, want string }{
		{"unknown-field", `{"objectives": [{"name": "x", "kind": "latency", "treshold": "1ms"}]}`, "unknown field"},
		{"trailing", `{"objectives": [{"name": "x", "kind": "latency", "threshold": "1ms"}]} {}`, "trailing data"},
		{"bad-duration", `{"objectives": [{"name": "x", "kind": "latency", "threshold": "10 furlongs"}]}`, "threshold"},
		{"syntax", `{"objectives": `, "parse spec"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestBurnAndBudgetMath(t *testing.T) {
	// Target 0.9 tolerates a 10% bad fraction. Four jobs, one bad
	// (5ms over the 2ms threshold): bad fraction 0.25, so burn 2.5 and
	// budget 1 − 0.25/0.1 = −1.5 (exhausted).
	spec := latencySpec("a", 2, 0.9)
	ev, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	feedJob(ev, 0, "a", 0, 0, 0, 1, 0)
	feedJob(ev, 1, "a", 1, 1, 1, 2, 0)
	feedJob(ev, 2, "a", 2, 2, 2, 3, 0)
	feedJob(ev, 3, "a", 3, 3, 3, 8, 0) // 5ms > 2ms: bad
	drain(ev, 10)
	st := ev.States()[0]
	if st.Samples != 4 || st.Bad != 1 {
		t.Fatalf("samples %d bad %d", st.Samples, st.Bad)
	}
	if got, want := st.BurnFast, 2.5; !near(got, want) {
		t.Fatalf("fast burn %v want %v", got, want)
	}
	if got, want := st.BudgetRemaining, -1.5; !near(got, want) {
		t.Fatalf("budget %v want %v", got, want)
	}
	if !st.Exhausted || st.ExhaustedAt != at(10) {
		t.Fatalf("exhaustion not detected: %+v", st)
	}
	if st.Violations != 1 {
		t.Fatalf("violations %d", st.Violations)
	}
}

func TestWindowPruning(t *testing.T) {
	// A bad sample older than the slow window stops burning but keeps
	// counting against the cumulative budget.
	spec := latencySpec("a", 1, 0.5)
	spec.Objectives[0].FastWindow = 10 * msD
	spec.Objectives[0].SlowWindow = 20 * msD
	ev, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	feedJob(ev, 0, "a", 0, 0, 0, 5, 0) // bad at 5ms
	drain(ev, 6)
	if b := ev.States()[0].BurnFast; b == 0 {
		t.Fatal("fresh breach should burn")
	}
	feedJob(ev, 1, "a", 39, 39, 39, 39, 0) // good at 39ms, inside windows at 40
	drain(ev, 40)
	st := ev.States()[0]
	if st.BurnFast != 0 || st.BurnSlow != 0 {
		t.Fatalf("aged breach still burning: fast %v slow %v", st.BurnFast, st.BurnSlow)
	}
	if near(st.BudgetRemaining, 1) {
		t.Fatalf("cumulative budget forgot the breach: %v", st.BudgetRemaining)
	}
}

func TestViolationAttribution(t *testing.T) {
	spec := latencySpec("a", 1, 0.9)
	ev, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Admit 0, place 1ms, dispatch 2ms, complete 12ms: exec (10ms)
	// dominates.
	feedJob(ev, 0, "a", 0, 1, 2, 12, 0)
	// Admit 20, place 29ms, dispatch 30ms, complete 31ms: place-wait
	// (9ms) dominates.
	feedJob(ev, 1, "a", 20, 29, 30, 31, 0)
	vs := ev.Violations()
	if len(vs) != 2 {
		t.Fatalf("violations %d", len(vs))
	}
	if vs[0].Phase != obs.PhaseExec || vs[1].Phase != obs.PhasePlaceWait {
		t.Fatalf("phases %q, %q", vs[0].Phase, vs[1].Phase)
	}
	if vs[0].Latency != 12*msD || vs[0].Budget != msD {
		t.Fatalf("violation %+v", vs[0])
	}
}

func TestDeadlineKind(t *testing.T) {
	spec := Spec{Objectives: []Objective{{
		Tenant: "a", Name: "dl", Kind: KindDeadline,
		Target: 0.5, Threshold: 10 * msD,
	}}}
	ev, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	feedJob(ev, 0, "a", 0, 0, 0, 5, 3*msD)  // own 3ms deadline: 5ms misses
	feedJob(ev, 1, "a", 0, 0, 0, 5, 0)      // falls back to 10ms threshold: meets
	feedJob(ev, 2, "a", 0, 0, 0, 5, 20*msD) // own 20ms deadline: meets
	drain(ev, 10)
	st := ev.States()[0]
	if st.Samples != 3 || st.Bad != 1 {
		t.Fatalf("samples %d bad %d", st.Samples, st.Bad)
	}

	// With no threshold and no per-job deadline, jobs are not sampled.
	ev2, err := New(Spec{Objectives: []Objective{{Tenant: "a", Name: "dl", Kind: KindDeadline, Target: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	feedJob(ev2, 0, "a", 0, 0, 0, 500, 0)
	drain(ev2, 501)
	if st := ev2.States()[0]; st.Samples != 0 {
		t.Fatalf("deadline-less job sampled: %+v", st)
	}
}

func TestThroughputFloor(t *testing.T) {
	spec := Spec{Objectives: []Objective{{
		Tenant: "a", Name: "tp", Kind: KindThroughput,
		Target: 0.5, Floor: 100, // 100 jobs per virtual second
		FastWindow: 10 * msD, SlowWindow: 40 * msD,
	}}}
	ev, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 5 completions in the first 10ms: 500 jobs/s, above the floor.
	for i := 0; i < 5; i++ {
		feedJob(ev, i, "a", int64(i*2), int64(i*2), int64(i*2), int64(i*2)+1, 0)
	}
	drain(ev, 10)
	st := ev.States()[0]
	if st.BadTime != 0 || len(ev.Violations()) != 0 {
		t.Fatalf("above-floor window flagged: %+v", st)
	}
	// Then silence: the 10→30ms segments fall below the floor; exactly
	// one violation fires at the edge.
	drain(ev, 20)
	drain(ev, 30)
	st = ev.States()[0]
	if st.BadTime != 20*msD {
		t.Fatalf("bad time %v want 20ms", st.BadTime)
	}
	vs := ev.Violations()
	if len(vs) != 1 || vs[0].Phase != "throughput" || vs[0].Job != -1 {
		t.Fatalf("violations %+v", vs)
	}
	if st.BurnFast == 0 {
		t.Fatal("below-floor window should burn")
	}
}

func TestAlertLifecycle(t *testing.T) {
	spec := latencySpec("a", 1, 0.9)
	spec.Objectives[0].FastWindow = 5 * msD
	spec.Objectives[0].SlowWindow = 20 * msD
	spec.Objectives[0].FastBurn = 5
	spec.Objectives[0].SlowBurn = 2
	ev, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Every job bad: both windows burn at 1/0.1 = 10 ≥ both thresholds.
	feedJob(ev, 0, "a", 0, 0, 0, 3, 0)
	feedJob(ev, 1, "a", 0, 0, 0, 4, 0)
	drain(ev, 5)
	if alerting := ev.Alerting(); len(alerting) != 1 {
		t.Fatalf("alerting %v", alerting)
	}
	// Same state a second drain later: still one episode, not two.
	drain(ev, 6)
	if n := len(ev.Alerts()); n != 1 {
		t.Fatalf("alert episodes %d", n)
	}
	// Good jobs push the fast-window burn to 0 while the slow window
	// still remembers: the episode clears.
	feedJob(ev, 2, "a", 14, 14, 14, 14, 0)
	feedJob(ev, 3, "a", 15, 15, 15, 15, 0)
	drain(ev, 16)
	alerts := ev.Alerts()
	if len(alerts) != 1 || !alerts[0].Cleared || alerts[0].ClearedAt != at(16) {
		t.Fatalf("alerts %+v", alerts)
	}
	if len(ev.Alerting()) != 0 {
		t.Fatal("still alerting after clear")
	}
	if st := ev.States()[0]; st.FirstAlertAt != at(5) {
		t.Fatalf("first alert %v", st.FirstAlertAt)
	}
}

func TestExhaustionHookFiresOnce(t *testing.T) {
	spec := latencySpec("a", 1, 0.9)
	ev, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	var fired []sim.Time
	ev.SetOnExhausted(func(o Objective, now sim.Time) {
		if o.Name != "lat" {
			t.Errorf("objective %q", o.Name)
		}
		fired = append(fired, now)
	})
	feedJob(ev, 0, "a", 0, 0, 0, 5, 0) // 100% bad: budget −9
	drain(ev, 6)
	drain(ev, 7)
	if len(fired) != 1 || fired[0] != at(6) {
		t.Fatalf("exhaustion hook fired %v", fired)
	}
	if ex := ev.Exhausted(); len(ex) != 1 || ex[0] != "lat" {
		t.Fatalf("exhausted %v", ex)
	}
}

func TestOtherTenantsIgnored(t *testing.T) {
	ev, err := New(latencySpec("a", 1, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	feedJob(ev, 0, "b", 0, 0, 0, 500, 0)
	drain(ev, 501)
	if st := ev.States()[0]; st.Samples != 0 || st.Violations != 0 {
		t.Fatalf("foreign tenant judged: %+v", st)
	}
	if len(ev.jobs) != 0 {
		t.Fatalf("foreign tenant tracked: %d jobs", len(ev.jobs))
	}
}

// replaySynthetic drives a fixed synthetic stream through a fresh
// evaluator — the shared input for the byte-identity tests.
func replaySynthetic(t *testing.T) *Evaluator {
	t.Helper()
	spec := Spec{Objectives: []Objective{
		{Tenant: "a", Name: "lat", Kind: KindLatency, Target: 0.9, Threshold: 2 * msD},
		{Tenant: "a", Name: "tp", Kind: KindThroughput, Target: 0.5, Floor: 100, FastWindow: 10 * msD, SlowWindow: 40 * msD},
		{Tenant: "b", Name: "dl", Kind: KindDeadline, Target: 0.8, Threshold: 5 * msD},
	}}
	ev, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tenant := "a"
		if i%2 == 1 {
			tenant = "b"
		}
		feedJob(ev, i, tenant, int64(i), int64(i)+1, int64(i)+2, int64(i)+3+int64(i%3)*4, 0)
		drain(ev, int64(i)+15)
	}
	drain(ev, 60)
	return ev
}

func TestWriteJSONByteIdentical(t *testing.T) {
	meta := Meta{Run: "test", Seed: 7, Policy: "predicted"}
	var a, b bytes.Buffer
	if err := replaySynthetic(t).WriteJSON(&a, meta); err != nil {
		t.Fatal(err)
	}
	if err := replaySynthetic(t).WriteJSON(&b, meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("reports differ:\n%s\n---\n%s", a.String(), b.String())
	}
	for _, want := range []string{
		`"schema": "micstream-slo-v1"`, `"run": "test"`, `"seed": 7`,
		`"tenant": "a"`, `"kind": "throughput"`, `"violations_by_phase"`,
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	var a, b bytes.Buffer
	if err := replaySynthetic(t).WriteOpenMetrics(&a); err != nil {
		t.Fatal(err)
	}
	if err := replaySynthetic(t).WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("expositions differ:\n%s\n---\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE mic_slo_budget_remaining gauge",
		`mic_slo_budget_remaining{tenant="a",objective="lat"} `,
		`mic_slo_burn_rate{tenant="a",objective="tp",window="fast"} `,
		`mic_slo_violations_total{tenant="b",objective="dl"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# EOF") {
		t.Fatal("fragment must not emit # EOF (the exporter terminates the exposition)")
	}
}

func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
