package slo

import (
	"micstream/internal/obs"
	"micstream/internal/sim"
	"micstream/internal/telemetry"
)

// Violation is one detected objective breach: a completed job that
// overran its latency or deadline budget, or a drain instant at which
// a tenant's windowed throughput dropped below its floor.
type Violation struct {
	// Objective and Tenant identify the breached objective.
	Objective, Tenant string
	// Job and ID identify the breaching job (-1 for throughput
	// breaches, which are tenant-wide).
	Job, ID int
	// At is the detection instant (the Complete event for per-job
	// kinds, the drain instant for throughput).
	At sim.Time
	// Latency and Budget are the compared durations for per-job kinds
	// (both 0 for throughput breaches).
	Latency, Budget sim.Duration
	// Phase attributes the breach via the causal timeline: the
	// dominant phase of the breaching job's latency (place-wait,
	// commit-wait, exec, slice-wait, migration), or "throughput" for
	// floor breaches.
	Phase string
}

// Alert is one burn-rate alert episode: both windows burning above
// their thresholds at a drain instant. It clears when the fast-window
// burn drops back under its threshold.
type Alert struct {
	// Objective and Tenant identify the alerting objective.
	Objective, Tenant string
	// At is the instant the alert fired; FastBurn and SlowBurn the
	// burn rates that fired it.
	At                 sim.Time
	FastBurn, SlowBurn float64
	// Cleared reports the episode ended; ClearedAt is when.
	Cleared   bool
	ClearedAt sim.Time
}

// ObjectiveState is one objective's standing at the latest evaluation
// instant — the row /slo and the experiment tables render.
type ObjectiveState struct {
	// Objective echoes the (normalized) declaration.
	Objective Objective
	// Samples and Bad count judged events so far (per-job kinds).
	Samples, Bad int
	// BadTime and TotalTime are the throughput kinds' integrated
	// breach and observation spans (0 for per-job kinds).
	BadTime, TotalTime sim.Duration
	// BudgetRemaining is the cumulative error budget left: 1 untouched,
	// ≤ 0 exhausted. BurnFast and BurnSlow are the windowed burn rates
	// at the latest evaluation.
	BudgetRemaining, BurnFast, BurnSlow float64
	// Violations counts breaches so far; Alerting marks a live alert
	// episode; Exhausted marks a spent budget (at ExhaustedAt).
	Violations  int
	Alerting    bool
	Exhausted   bool
	ExhaustedAt sim.Time
	// FirstAlertAt is the first alert episode's instant (0 when none
	// ever fired).
	FirstAlertAt sim.Time
}

// sample is one judged per-job event.
type sample struct {
	at  sim.Time
	bad bool
}

// segment is one integrated throughput-observation span.
type segment struct {
	from, to sim.Time
	bad      bool
}

// objState is one objective's accumulating evaluation state.
type objState struct {
	obj Objective

	// Per-job kinds: a windowed deque of judged samples (pruned to the
	// slow window) plus cumulative totals.
	samples    []sample
	total, bad int

	// Throughput kind: completion instants within the slow window, the
	// windowed segment deque, and cumulative time integrals.
	completions        []sim.Time
	segs               []segment
	badTime, totalTime sim.Duration
	lastBelow          bool

	burnFast, burnSlow float64
	budget             float64

	alerting    bool
	alerts      []Alert
	exhausted   bool
	exhaustedAt sim.Time

	violations []Violation
	byPhase    map[string]int
}

// jobState tracks one in-flight job of a judged tenant: its admission
// instant, declared deadline, and accumulated event history for
// breach attribution.
type jobState struct {
	admitAt  sim.Time
	deadline sim.Duration
	tenant   string
	events   []telemetry.Event
}

// Evaluator consumes the telemetry stream and maintains every
// objective's budget, burn rates, alerts and violations. It is a pure
// consumer: wire it to a recorder with Attach (claiming both observer
// slots) or call OnEvent/OnMetrics from composite hooks, and nothing
// it computes feeds back into a scheduling decision.
//
// Like the flight recorder it is not itself thread-safe: the serve
// layer serializes scheduler-side writes against HTTP-side reads.
type Evaluator struct {
	spec     Spec
	objs     []*objState
	byTenant map[string][]int

	jobs map[int]*jobState

	onExhausted func(Objective, sim.Time)

	started  bool
	start    sim.Time
	lastEval sim.Time
	evals    int
}

// New builds an evaluator over a normalized copy of the spec.
func New(spec Spec) (*Evaluator, error) {
	spec.Objectives = append([]Objective(nil), spec.Objectives...)
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	ev := &Evaluator{
		spec:     spec,
		objs:     make([]*objState, len(spec.Objectives)),
		byTenant: make(map[string][]int),
		jobs:     make(map[int]*jobState),
	}
	for i, o := range spec.Objectives {
		ev.objs[i] = &objState{obj: o, budget: 1, byPhase: make(map[string]int)}
		t := o.TenantLabel()
		ev.byTenant[t] = append(ev.byTenant[t], i)
	}
	return ev, nil
}

// Spec returns the evaluator's normalized spec.
func (ev *Evaluator) Spec() Spec { return ev.spec }

// SetOnExhausted installs the budget-exhaustion hook, fired once per
// objective at the drain instant its budget crosses zero — the seam
// the cluster layers use to trigger the flight recorder so the ring
// captures the breach neighborhood.
func (ev *Evaluator) SetOnExhausted(fn func(Objective, sim.Time)) { ev.onExhausted = fn }

// Attach subscribes the evaluator to a recorder's hooks. It claims
// both observer slots; to share them with other consumers (exporter,
// flight recorder), install composite hooks calling OnEvent and
// OnMetrics directly.
func (ev *Evaluator) Attach(rec *telemetry.Recorder) {
	rec.SetOnEvent(ev.OnEvent)
	rec.SetOnMetrics(ev.OnMetrics)
}

// OnEvent consumes one telemetry event: admissions of judged tenants
// open per-job tracking, completions are judged against the tenant's
// per-job objectives, and everything in between accumulates for
// breach attribution.
func (ev *Evaluator) OnEvent(e telemetry.Event) {
	if !ev.started {
		ev.started = true
		ev.start = e.At
		ev.lastEval = e.At
	}
	switch e.Kind {
	case telemetry.Admit:
		if len(ev.byTenant[e.Tenant]) == 0 {
			return
		}
		ev.jobs[e.Job] = &jobState{
			admitAt:  e.At,
			deadline: e.Deadline,
			tenant:   e.Tenant,
			events:   []telemetry.Event{e},
		}
	case telemetry.Complete:
		js := ev.jobs[e.Job]
		if js == nil {
			return
		}
		js.events = append(js.events, e)
		ev.judge(js, e)
		delete(ev.jobs, e.Job)
	case telemetry.Fail:
		delete(ev.jobs, e.Job)
	default:
		if js := ev.jobs[e.Job]; js != nil && e.Job >= 0 {
			js.events = append(js.events, e)
		}
	}
}

// judge scores one completed job against its tenant's per-job
// objectives and records completions for throughput rates.
func (ev *Evaluator) judge(js *jobState, e telemetry.Event) {
	lat := e.At.Sub(js.admitAt)
	attributed := ""
	// stable order: this ranges the slice value looked up in the map,
	// which lists objective indexes in spec declaration order.
	for _, i := range ev.byTenant[js.tenant] {
		st := ev.objs[i]
		switch st.obj.Kind {
		case KindThroughput:
			st.completions = append(st.completions, e.At)
			continue
		case KindDeadline:
			budget := js.deadline
			if budget <= 0 {
				budget = st.obj.Threshold
			}
			if budget <= 0 {
				continue // no budget declared anywhere: not a sample
			}
			ev.addSample(st, e, lat, budget, &attributed, js)
		case KindLatency:
			ev.addSample(st, e, lat, st.obj.Threshold, &attributed, js)
		}
	}
}

// addSample records one judged per-job event and, on a breach, its
// attributed violation.
func (ev *Evaluator) addSample(st *objState, e telemetry.Event, lat, budget sim.Duration, attributed *string, js *jobState) {
	bad := lat > budget
	st.samples = append(st.samples, sample{at: e.At, bad: bad})
	st.total++
	if !bad {
		return
	}
	st.bad++
	if *attributed == "" {
		*attributed = attributePhase(js.events, e.Job)
	}
	st.byPhase[*attributed]++
	st.violations = append(st.violations, Violation{
		Objective: st.obj.Name,
		Tenant:    st.obj.TenantLabel(),
		Job:       e.Job,
		ID:        e.ID,
		At:        e.At,
		Latency:   lat,
		Budget:    budget,
		Phase:     *attributed,
	})
}

// attributePhase folds the job's own event history into its causal
// timeline and names the dominant latency phase — the PR 8 timeline
// reused as breach attribution.
func attributePhase(events []telemetry.Event, job int) string {
	ts := obs.Fold(events)
	for i := len(ts) - 1; i >= 0; i-- {
		if ts[i].Job == job {
			return ts[i].CriticalPhase()
		}
	}
	return obs.PhaseExec
}

// OnMetrics evaluates every objective at one drain instant: throughput
// segments are integrated, windows pruned, burn rates and budgets
// recomputed, alert edges detected, and exhaustion hooks fired. This
// is the only place verdict state changes, so verdicts are a pure
// function of the virtual-time event stream.
func (ev *Evaluator) OnMetrics(s telemetry.MetricsSnapshot) {
	now := s.At
	if !ev.started {
		ev.started = true
		ev.start = now
		ev.lastEval = now
	}
	for _, st := range ev.objs {
		if st.obj.Kind == KindThroughput {
			ev.integrateThroughput(st, now)
		}
		prune(st, now)
		st.burnFast = burn(st, now, st.obj.FastWindow, ev.start)
		st.burnSlow = burn(st, now, st.obj.SlowWindow, ev.start)
		st.budget = budgetRemaining(st)

		active := st.burnFast >= st.obj.FastBurn && st.burnSlow >= st.obj.SlowBurn
		if !st.alerting && active {
			st.alerting = true
			st.alerts = append(st.alerts, Alert{
				Objective: st.obj.Name,
				Tenant:    st.obj.TenantLabel(),
				At:        now,
				FastBurn:  st.burnFast,
				SlowBurn:  st.burnSlow,
			})
		} else if st.alerting && st.burnFast < st.obj.FastBurn {
			st.alerting = false
			last := &st.alerts[len(st.alerts)-1]
			last.Cleared = true
			last.ClearedAt = now
		}
		if !st.exhausted && st.budget <= 0 {
			st.exhausted = true
			st.exhaustedAt = now
			if ev.onExhausted != nil {
				ev.onExhausted(st.obj, now)
			}
		}
	}
	ev.lastEval = now
	ev.evals++
}

// integrateThroughput appends the observation segment since the last
// evaluation, judged by the windowed completion rate at its end, and
// records a violation on each below-floor edge.
func (ev *Evaluator) integrateThroughput(st *objState, now sim.Time) {
	if now <= ev.lastEval {
		return
	}
	win := st.obj.FastWindow
	from := now.Add(-win)
	if from < ev.start {
		from = ev.start
	}
	span := now.Sub(from)
	n := 0
	for _, at := range st.completions {
		if at > from && at <= now {
			n++
		}
	}
	rate := 0.0
	if secs := span.Seconds(); secs > 0 {
		rate = float64(n) / secs
	}
	below := rate < st.obj.Floor
	seg := segment{from: ev.lastEval, to: now, bad: below}
	st.segs = append(st.segs, seg)
	st.totalTime += seg.to.Sub(seg.from)
	if below {
		st.badTime += seg.to.Sub(seg.from)
		if !st.lastBelow {
			st.byPhase["throughput"]++
			st.violations = append(st.violations, Violation{
				Objective: st.obj.Name,
				Tenant:    st.obj.TenantLabel(),
				Job:       -1,
				ID:        -1,
				At:        now,
				Phase:     "throughput",
			})
		}
	}
	st.lastBelow = below
}

// prune drops samples, segments and completions that fell out of the
// slow window — the only state the windowed burn rates need.
func prune(st *objState, now sim.Time) {
	edge := now.Add(-st.obj.SlowWindow)
	i := 0
	for i < len(st.samples) && st.samples[i].at <= edge {
		i++
	}
	st.samples = st.samples[i:]
	i = 0
	for i < len(st.segs) && st.segs[i].to <= edge {
		i++
	}
	st.segs = st.segs[i:]
	i = 0
	for i < len(st.completions) && st.completions[i] <= edge {
		i++
	}
	st.completions = st.completions[i:]
}

// burn computes one objective's burn rate over a trailing window:
// the window's bad fraction over the tolerated bad fraction.
func burn(st *objState, now sim.Time, window sim.Duration, start sim.Time) float64 {
	tol := 1 - st.obj.Target
	edge := now.Add(-window)
	if st.obj.Kind == KindThroughput {
		if edge < start {
			edge = start
		}
		covered := sim.Duration(0)
		bad := sim.Duration(0)
		for _, seg := range st.segs {
			from, to := seg.from, seg.to
			if from < edge {
				from = edge
			}
			if to <= from {
				continue
			}
			covered += to.Sub(from)
			if seg.bad {
				bad += to.Sub(from)
			}
		}
		if covered <= 0 {
			return 0
		}
		return (bad.Seconds() / covered.Seconds()) / tol
	}
	total, bad := 0, 0
	for _, sm := range st.samples {
		if sm.at > edge {
			total++
			if sm.bad {
				bad++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / tol
}

// budgetRemaining computes the cumulative error budget left.
func budgetRemaining(st *objState) float64 {
	tol := 1 - st.obj.Target
	if st.obj.Kind == KindThroughput {
		if st.totalTime <= 0 {
			return 1
		}
		return 1 - (st.badTime.Seconds()/st.totalTime.Seconds())/tol
	}
	if st.total == 0 {
		return 1
	}
	return 1 - (float64(st.bad)/float64(st.total))/tol
}

// States snapshots every objective's standing in declaration order.
func (ev *Evaluator) States() []ObjectiveState {
	out := make([]ObjectiveState, len(ev.objs))
	for i, st := range ev.objs {
		os := ObjectiveState{
			Objective:       st.obj,
			Samples:         st.total,
			Bad:             st.bad,
			BadTime:         st.badTime,
			TotalTime:       st.totalTime,
			BudgetRemaining: st.budget,
			BurnFast:        st.burnFast,
			BurnSlow:        st.burnSlow,
			Violations:      len(st.violations),
			Alerting:        st.alerting,
			Exhausted:       st.exhausted,
			ExhaustedAt:     st.exhaustedAt,
		}
		if len(st.alerts) > 0 {
			os.FirstAlertAt = st.alerts[0].At
		}
		out[i] = os
	}
	return out
}

// Alerts returns every alert episode of every objective, in
// declaration-then-fire order.
func (ev *Evaluator) Alerts() []Alert {
	var out []Alert
	for _, st := range ev.objs {
		out = append(out, st.alerts...)
	}
	return out
}

// Violations returns every recorded breach, in declaration-then-
// detection order.
func (ev *Evaluator) Violations() []Violation {
	var out []Violation
	for _, st := range ev.objs {
		out = append(out, st.violations...)
	}
	return out
}

// Exhausted lists the names of objectives whose budget is spent, in
// declaration order.
func (ev *Evaluator) Exhausted() []string {
	var out []string
	for _, st := range ev.objs {
		if st.exhausted {
			out = append(out, st.obj.Name)
		}
	}
	return out
}

// Alerting lists the names of objectives with a live alert episode,
// in declaration order.
func (ev *Evaluator) Alerting() []string {
	var out []string
	for _, st := range ev.objs {
		if st.alerting {
			out = append(out, st.obj.Name)
		}
	}
	return out
}

// Evals reports how many drain-instant evaluations have run.
func (ev *Evaluator) Evals() int { return ev.evals }
