package slo

import (
	"fmt"
	"io"
	"strconv"
)

// maxViolationDetail caps the per-objective violation detail list in
// the JSON report; the full count and phase histogram always cover
// everything.
const maxViolationDetail = 50

// Meta is the provenance block of an SLO_<run>.json artifact.
type Meta struct {
	// Run labels the artifact (the CI run id, or a local tag).
	Run string
	// Seed and Policy echo the run's scenario seed and placement
	// policy.
	Seed   int64
	Policy string
}

// WriteJSON renders the evaluator's full verdict as the SLO_<run>.json
// artifact — handcrafted, key-ordered, shortest-round-trip floats, so
// two same-seed runs produce byte-identical reports.
func (ev *Evaluator) WriteJSON(w io.Writer, meta Meta) error {
	jw := &textSink{w: w}
	jw.printf("{\n  \"schema\": \"micstream-slo-v1\",\n")
	jw.printf("  \"run\": %s,\n  \"seed\": %d,\n  \"policy\": %s,\n", jsonStr(meta.Run), meta.Seed, jsonStr(meta.Policy))
	jw.printf("  \"evals\": %d,\n", ev.evals)
	jw.printf("  \"objectives\": [")
	for i, st := range ev.objs {
		if i > 0 {
			jw.printf(",")
		}
		jw.printf("\n    ")
		writeObjective(jw, st)
	}
	if len(ev.objs) > 0 {
		jw.printf("\n  ")
	}
	jw.printf("]\n}\n")
	return jw.err
}

func writeObjective(jw *textSink, st *objState) {
	o := &st.obj
	jw.printf("{\n      \"tenant\": %s,\n      \"name\": %s,\n      \"kind\": %s,\n",
		jsonStr(o.TenantLabel()), jsonStr(o.Name), jsonStr(o.Kind))
	jw.printf("      \"target\": %s,\n      \"threshold_ms\": %s,\n      \"floor_jobs_per_s\": %s,\n",
		jsonFloat(o.Target), jsonFloat(msf(float64(o.Threshold))), jsonFloat(o.Floor))
	jw.printf("      \"fast_window_ms\": %s,\n      \"slow_window_ms\": %s,\n",
		jsonFloat(msf(float64(o.FastWindow))), jsonFloat(msf(float64(o.SlowWindow))))
	jw.printf("      \"fast_burn_max\": %s,\n      \"slow_burn_max\": %s,\n",
		jsonFloat(o.FastBurn), jsonFloat(o.SlowBurn))
	jw.printf("      \"samples\": %d,\n      \"bad\": %d,\n", st.total, st.bad)
	jw.printf("      \"bad_time_ms\": %s,\n      \"total_time_ms\": %s,\n",
		jsonFloat(msf(float64(st.badTime))), jsonFloat(msf(float64(st.totalTime))))
	jw.printf("      \"budget_remaining\": %s,\n      \"burn_fast\": %s,\n      \"burn_slow\": %s,\n",
		jsonFloat(st.budget), jsonFloat(st.burnFast), jsonFloat(st.burnSlow))
	jw.printf("      \"compliant\": %t,\n", st.budget > 0)
	exhausted := -1.0
	if st.exhausted {
		exhausted = msf(float64(st.exhaustedAt))
	}
	jw.printf("      \"exhausted_at_ms\": %s,\n", jsonFloat(exhausted))
	jw.printf("      \"violations\": %d,\n", len(st.violations))
	jw.printf("      \"violations_by_phase\": {")
	for i, phase := range sortedPhases(st.byPhase) {
		if i > 0 {
			jw.printf(", ")
		}
		jw.printf("%s: %d", jsonStr(phase), st.byPhase[phase])
	}
	jw.printf("},\n")
	jw.printf("      \"violation_detail\": [")
	detail := st.violations
	if len(detail) > maxViolationDetail {
		detail = detail[:maxViolationDetail]
	}
	for i := range detail {
		v := &detail[i]
		if i > 0 {
			jw.printf(",")
		}
		jw.printf("\n        {\"job\": %d, \"id\": %d, \"at_ms\": %s, \"latency_ms\": %s, \"budget_ms\": %s, \"phase\": %s}",
			v.Job, v.ID, jsonFloat(msf(float64(v.At))), jsonFloat(msf(float64(v.Latency))), jsonFloat(msf(float64(v.Budget))), jsonStr(v.Phase))
	}
	if len(detail) > 0 {
		jw.printf("\n      ")
	}
	jw.printf("],\n")
	jw.printf("      \"alerts\": [")
	for i := range st.alerts {
		a := &st.alerts[i]
		if i > 0 {
			jw.printf(",")
		}
		cleared := -1.0
		if a.Cleared {
			cleared = msf(float64(a.ClearedAt))
		}
		jw.printf("\n        {\"at_ms\": %s, \"fast_burn\": %s, \"slow_burn\": %s, \"cleared_at_ms\": %s}",
			jsonFloat(msf(float64(a.At))), jsonFloat(a.FastBurn), jsonFloat(a.SlowBurn), jsonFloat(cleared))
	}
	if len(st.alerts) > 0 {
		jw.printf("\n      ")
	}
	jw.printf("],\n")
	first := -1.0
	if len(st.alerts) > 0 {
		first = msf(float64(st.alerts[0].At))
	}
	jw.printf("      \"first_alert_ms\": %s\n    }", jsonFloat(first))
}

// WriteOpenMetrics renders the mic_slo_* families in the OpenMetrics
// text exposition format, WITHOUT the trailing # EOF marker — the
// fragment plugs into an obs.Exporter via SetAux, joining the
// micstream_* families in one exposition.
func (ev *Evaluator) WriteOpenMetrics(w io.Writer) error {
	jw := &textSink{w: w}
	jw.printf("# TYPE mic_slo_budget_remaining gauge\n# HELP mic_slo_budget_remaining Fraction of the objective's error budget left (1 untouched, <=0 exhausted).\n")
	for _, st := range ev.objs {
		jw.printf("mic_slo_budget_remaining{tenant=%s,objective=%s} %s\n",
			omLabel(st.obj.TenantLabel()), omLabel(st.obj.Name), omFloat(st.budget))
	}
	jw.printf("# TYPE mic_slo_burn_rate gauge\n# HELP mic_slo_burn_rate Windowed error-budget burn rate (1 = exactly on budget).\n")
	for _, st := range ev.objs {
		jw.printf("mic_slo_burn_rate{tenant=%s,objective=%s,window=\"fast\"} %s\n",
			omLabel(st.obj.TenantLabel()), omLabel(st.obj.Name), omFloat(st.burnFast))
		jw.printf("mic_slo_burn_rate{tenant=%s,objective=%s,window=\"slow\"} %s\n",
			omLabel(st.obj.TenantLabel()), omLabel(st.obj.Name), omFloat(st.burnSlow))
	}
	jw.printf("# TYPE mic_slo_violations_total counter\n# HELP mic_slo_violations_total Objective breaches detected this run.\n")
	for _, st := range ev.objs {
		jw.printf("mic_slo_violations_total{tenant=%s,objective=%s} %d\n",
			omLabel(st.obj.TenantLabel()), omLabel(st.obj.Name), len(st.violations))
	}
	return jw.err
}

// msf converts virtual nanoseconds to milliseconds.
func msf(ns float64) float64 { return ns / 1e6 }

// textSink is a printf sink with a sticky error (the same idiom the
// obs package's deterministic renderers use; its copy is unexported).
type textSink struct {
	w   io.Writer
	err error
}

func (jw *textSink) printf(format string, args ...any) {
	if jw.err != nil {
		return
	}
	_, jw.err = fmt.Fprintf(jw.w, format, args...)
}

// jsonStr quotes a string for JSON (escape the structural characters,
// escape control bytes numerically).
func jsonStr(s string) string {
	b := make([]byte, 0, len(s)+2)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, fmt.Sprintf(`\u%04x`, c)...)
		default:
			b = append(b, c)
		}
	}
	return `"` + string(b) + `"`
}

// jsonFloat renders a float deterministically (shortest round-trip
// form, same across platforms).
func jsonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// omFloat and omLabel mirror the exposition helpers in obs.
func omFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func omLabel(s string) string {
	b := make([]byte, 0, len(s)+2)
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\', '"':
			b = append(b, '\\', c)
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return string(append(b, '"'))
}
