// Package slo is the judgment layer over the telemetry stream: tenants
// declare objectives — latency percentile targets, per-job deadlines
// with miss budgets, throughput floors — and the evaluator turns the
// existing event log into compliance verdicts: windowed error budgets,
// Google-SRE-style multi-window burn rates, alert episodes, and
// per-violation causal attribution through the obs timeline folder
// (was the breach place-wait, commit-wait, exec, or migration
// dominated?).
//
// Everything is evaluated deterministically at drain instants in
// virtual time: violations are detected on Complete events, budgets
// and burn rates re-evaluated on each drain-instant MetricsSnapshot,
// and every window is a span of virtual nanoseconds — so two runs of
// the same seed produce byte-identical SLO_<run>.json reports, and an
// SLO-evaluated run's Result stays bit-identical to a bare one (the
// evaluator is a pure consumer on the far side of the recorder,
// exactly like the rest of the observability stack).
//
// The budget math follows the SRE workbook form. Each objective
// declares a Target good fraction (e.g. 0.95: "95% of jobs complete
// within the threshold"); the error budget is the 1−Target bad
// fraction it tolerates. The burn rate over a window is
// badFraction(window) / (1−Target): burning at exactly 1 exhausts the
// budget at the objective's horizon, 14 means fourteen times too
// fast. An alert fires when BOTH the fast and the slow window burn
// above their thresholds (the fast window makes the alert responsive,
// the slow window keeps a transient spike from paging) and clears
// when the fast burn drops back under. Budget remaining is the
// cumulative form: 1 − (bad/total)/(1−Target), 1 with an untouched
// budget, ≤ 0 once the run has spent more than its tolerated bad
// fraction — the exhaustion instant fires the flight-recorder hook.
package slo

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"micstream/internal/sim"
)

// Objective kinds. A latency objective judges every completed job of
// the tenant against Threshold (Target 0.95 with a 10ms threshold is
// "p95 ≤ 10ms" restated as a good-event ratio); a deadline objective
// judges each job against its own declared relative deadline (falling
// back to Threshold for jobs without one; jobs with neither are not
// sampled); a throughput objective integrates breach time — the
// virtual-time fraction during which the tenant's windowed completion
// rate sat below Floor.
const (
	KindLatency    = "latency"
	KindDeadline   = "deadline"
	KindThroughput = "throughput"
)

// Default windows and burn thresholds, applied by Normalize when a
// spec leaves them zero. The virtual runs the reproduction drives are
// tens to hundreds of milliseconds long, so the defaults are scaled
// to that horizon (the SRE workbook's 5m/1h windows, shrunk): a 20ms
// fast window with a 100ms slow window, alerting at 14× / 6× burn.
const (
	DefaultFastWindow = 20 * sim.Duration(time.Millisecond)
	DefaultSlowWindow = 100 * sim.Duration(time.Millisecond)
	DefaultFastBurn   = 14.0
	DefaultSlowBurn   = 6.0
	DefaultTarget     = 0.95
)

// Objective is one tenant's declared service-level objective.
type Objective struct {
	// Tenant is the tenant label the objective judges ("" is the
	// "default" tenant, matching the schedulers' labeling).
	Tenant string
	// Name identifies the objective in reports, metrics labels and
	// alerts; unique within a spec.
	Name string
	// Kind is KindLatency, KindDeadline or KindThroughput.
	Kind string
	// Target is the good fraction the objective promises, in (0,1):
	// 0.95 tolerates 5% bad events (the error budget).
	Target float64
	// Threshold is the per-job latency budget for latency objectives
	// and the default relative deadline for deadline objectives
	// (ignored by throughput objectives).
	Threshold sim.Duration
	// Floor is the throughput floor in completed jobs per virtual
	// second (throughput objectives only).
	Floor float64
	// FastWindow and SlowWindow are the two burn-rate windows in
	// virtual time; FastBurn and SlowBurn the burn thresholds both of
	// which must be exceeded for an alert to fire.
	FastWindow, SlowWindow sim.Duration
	FastBurn, SlowBurn     float64
}

// TenantLabel normalizes an objective's tenant to the schedulers'
// accounting label (empty means "default").
func (o *Objective) TenantLabel() string {
	if o.Tenant == "" {
		return "default"
	}
	return o.Tenant
}

// Spec is a set of objectives, evaluated together over one run.
type Spec struct {
	// Objectives lists the declared objectives in declaration order —
	// the order every report and metrics exposition preserves.
	Objectives []Objective
}

// Normalize applies defaults and validates the spec, returning the
// first problem found. A normalized spec has every window, burn
// threshold and target filled in.
func (s *Spec) Normalize() error {
	if len(s.Objectives) == 0 {
		return fmt.Errorf("slo: spec declares no objectives")
	}
	seen := make(map[string]bool, len(s.Objectives))
	for i := range s.Objectives {
		o := &s.Objectives[i]
		if o.Name == "" {
			return fmt.Errorf("slo: objective %d has no name", i)
		}
		if seen[o.Name] {
			return fmt.Errorf("slo: duplicate objective name %q", o.Name)
		}
		seen[o.Name] = true
		switch o.Kind {
		case KindLatency:
			if o.Threshold <= 0 {
				return fmt.Errorf("slo: objective %q: latency objectives need a positive threshold", o.Name)
			}
		case KindDeadline:
			if o.Threshold < 0 {
				return fmt.Errorf("slo: objective %q: negative deadline threshold", o.Name)
			}
		case KindThroughput:
			if o.Floor <= 0 {
				return fmt.Errorf("slo: objective %q: throughput objectives need a positive floor", o.Name)
			}
		default:
			return fmt.Errorf("slo: objective %q: unknown kind %q (want %s, %s or %s)",
				o.Name, o.Kind, KindLatency, KindDeadline, KindThroughput)
		}
		if o.Target == 0 {
			o.Target = DefaultTarget
		}
		if o.Target <= 0 || o.Target >= 1 {
			return fmt.Errorf("slo: objective %q: target %v outside (0,1)", o.Name, o.Target)
		}
		if o.FastWindow == 0 {
			o.FastWindow = DefaultFastWindow
		}
		if o.SlowWindow == 0 {
			o.SlowWindow = DefaultSlowWindow
		}
		if o.FastWindow <= 0 || o.SlowWindow <= 0 {
			return fmt.Errorf("slo: objective %q: windows must be positive", o.Name)
		}
		if o.FastWindow > o.SlowWindow {
			return fmt.Errorf("slo: objective %q: fast window %v exceeds slow window %v", o.Name, o.FastWindow, o.SlowWindow)
		}
		if o.FastBurn == 0 {
			o.FastBurn = DefaultFastBurn
		}
		if o.SlowBurn == 0 {
			o.SlowBurn = DefaultSlowBurn
		}
		if o.FastBurn <= 0 || o.SlowBurn <= 0 {
			return fmt.Errorf("slo: objective %q: burn thresholds must be positive", o.Name)
		}
	}
	return nil
}

// objectiveJSON is the declarative file form of one objective:
// durations are Go duration strings ("10ms"), interpreted as virtual
// time.
type objectiveJSON struct {
	Tenant     string  `json:"tenant"`
	Name       string  `json:"name"`
	Kind       string  `json:"kind"`
	Target     float64 `json:"target"`
	Threshold  string  `json:"threshold"`
	Floor      float64 `json:"floor_jobs_per_s"`
	FastWindow string  `json:"fast_window"`
	SlowWindow string  `json:"slow_window"`
	FastBurn   float64 `json:"fast_burn"`
	SlowBurn   float64 `json:"slow_burn"`
}

type specJSON struct {
	Objectives []objectiveJSON `json:"objectives"`
}

// ParseSpec decodes a declarative spec file. Unknown fields are
// rejected — a typoed key must not silently drop an objective — and
// the result is normalized (defaults applied, constraints checked).
// Parsing is config input, not run output: encoding/json here cannot
// perturb the byte-determinism of the reports.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var raw specJSON
	if err := dec.Decode(&raw); err != nil {
		return Spec{}, fmt.Errorf("slo: parse spec: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil {
		return Spec{}, fmt.Errorf("slo: parse spec: trailing data after the spec object")
	}
	spec := Spec{Objectives: make([]Objective, len(raw.Objectives))}
	for i, ro := range raw.Objectives {
		o := Objective{
			Tenant:   ro.Tenant,
			Name:     ro.Name,
			Kind:     ro.Kind,
			Target:   ro.Target,
			Floor:    ro.Floor,
			FastBurn: ro.FastBurn,
			SlowBurn: ro.SlowBurn,
		}
		var err error
		if o.Threshold, err = parseDur(ro.Threshold); err != nil {
			return Spec{}, fmt.Errorf("slo: objective %q: threshold: %w", ro.Name, err)
		}
		if o.FastWindow, err = parseDur(ro.FastWindow); err != nil {
			return Spec{}, fmt.Errorf("slo: objective %q: fast_window: %w", ro.Name, err)
		}
		if o.SlowWindow, err = parseDur(ro.SlowWindow); err != nil {
			return Spec{}, fmt.Errorf("slo: objective %q: slow_window: %w", ro.Name, err)
		}
		spec.Objectives[i] = o
	}
	if err := spec.Normalize(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// LoadSpec reads and parses a declarative spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("slo: %w", err)
	}
	return ParseSpec(data)
}

func parseDur(s string) (sim.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return sim.Duration(d.Nanoseconds()), nil
}

// sortedPhases returns a phase-count map's keys in sorted order (the
// deterministic rendering order for attribution histograms).
func sortedPhases(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	// order-independent: collecting keys for the sort below.
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
