// Package sched is the online multi-tenant job scheduler: it admits a
// stream of offload jobs — each a []*core.Task workload tagged with a
// tenant and a virtual arrival time — onto the simulated platform,
// instead of the single-phase core.Run the paper's experiments use.
//
// The scheduler is built directly on the discrete-event engine:
// arrivals are engine events, dispatch decisions happen at exactly two
// kinds of instants (a job arriving, a stream draining), and a
// pluggable Policy chooses which queued job runs next and on which
// idle stream. Because every decision point is an engine event and
// every queue is ordered by (time, admission sequence), a run is
// bit-identical across repeats, machines, and Go versions — the same
// determinism contract as the rest of the repository (DESIGN.md §6).
//
// The dispatch loop is structurally work-conserving: whenever the
// admission queue is non-empty and a stream is idle, a job is
// dispatched before virtual time can advance. Policies only choose
// *which* job and *which* stream; they cannot choose to idle.
//
// Four policies ship with the package: FIFO (arrival order, pack the
// lowest idle stream), RoundRobin (arrival order, rotate placement
// across partitions), SJF (shortest estimated job first, least-loaded
// placement) and Adaptive (per-tenant stream shares derived from
// model-predicted work, re-planned online when the mix drifts —
// DESIGN.md §8). Use ByName to construct one from its CLI name, or
// implement Policy for custom dispatch.
//
// A scheduler normally owns every stream of its context, but
// WithStreams restricts it to a subset — one scheduler per device is
// how the multi-MIC cluster layer (internal/cluster) embeds it. In
// that embedded mode the batch Run call is replaced by Reset + online
// Submit calls, with SetOnDone exposing every completion instant to
// the embedding layer (DESIGN.md §9).
package sched

import (
	"fmt"
	"sort"

	"micstream/internal/core"
	"micstream/internal/hstreams"
	"micstream/internal/sim"
	"micstream/internal/stats"
	"micstream/internal/telemetry"
)

// Job is one unit of admission: a tenant-tagged task list that becomes
// runnable at Arrival. The scheduler treats the task list as an opaque
// workload — tasks keep their intra-job dependencies — and pins every
// task to the stream the policy selects, so one job occupies exactly
// one stream from dispatch to completion.
type Job struct {
	// ID labels the job in results; it need not be unique (the
	// scheduler identifies jobs by submission order).
	ID int
	// Tenant attributes the job for per-tenant accounting. Empty means
	// "default".
	Tenant string
	// Arrival is the virtual time the job becomes runnable.
	Arrival sim.Time
	// Tasks is the job's workload. StreamHint values are overridden by
	// the scheduler's placement decision.
	Tasks []*core.Task
	// Est optionally declares the job's service-time estimate used by
	// cost-aware policies; 0 means the scheduler derives one from the
	// tasks' kernel costs and transfer sizes.
	Est sim.Duration
	// Ref is the embedding layer's index for the job. An embedded
	// scheduler (WithDevice) stamps it onto every telemetry event it
	// emits in place of its own outcome index, so a cluster log's
	// dispatch/slice/requeue/complete events share the cluster-level
	// index space with the admit/place/steal events — one index
	// correlates all layers (DESIGN.md §14). Ignored standalone.
	Ref int
	// Deadline is the job's relative completion deadline (latency
	// budget measured from admission); 0 means none. Deadlines are
	// accounting only — they tag the outcome (JobOutcome.Missed) and
	// the telemetry Admit event, and never influence dispatch order
	// (a deadline-aware policy would read them through Pending.Job).
	Deadline sim.Duration
}

// Pending is a queued job together with the bookkeeping policies see.
type Pending struct {
	// Job is the queued job.
	Job *Job
	// Est is the service-time estimate (declared or derived). For a
	// partially-dispatched job under WithSlicing it covers only the
	// remaining tasks — completed slices no longer count as backlog.
	Est sim.Duration
	// Seq is the admission sequence number; FIFO order is ascending
	// Seq.
	Seq int
	// Next is the index of the first not-yet-dispatched task: 0 for a
	// job that never started, positive for the remainder of a
	// partially-dispatched job re-queued between slices (WithSlicing).
	Next int

	// idx is the job's outcome slot (its position in the Run slice).
	idx int
}

// View is the platform snapshot handed to a policy at a decision
// point.
type View struct {
	// Now is the current virtual time.
	Now sim.Time
	// StreamLoad is the cumulative estimated service each stream has
	// been handed so far — the least-loaded signal.
	StreamLoad []sim.Duration
	// StreamPartition maps each stream to its global partition index
	// (device-major): streams sharing a partition contend for its
	// cores, which is what partition-aware placement avoids.
	StreamPartition []int
	// StreamTenant maps each stream to the tenant of the job it is
	// running ("" when idle) — the allocation snapshot tenant-aware
	// policies re-balance against.
	StreamTenant []string
	// Partitions is the global partition count across devices.
	Partitions int
}

// Policy chooses, at each dispatch opportunity, which pending job runs
// next and on which idle stream. pending and idle are non-empty;
// pending is in admission order. Implementations may keep per-run
// state (e.g. a round-robin cursor) and must be deterministic
// functions of their inputs and that state.
type Policy interface {
	// Name identifies the policy in results and CLIs.
	Name() string
	// Pick returns an index into pending and a member of idle.
	Pick(pending []*Pending, idle []int, v *View) (pendIdx, stream int)
}

// Option configures a Scheduler.
type Option func(*Scheduler)

// WithPolicy selects the scheduling policy (default FIFO). The policy
// instance must not be shared with another live scheduler.
func WithPolicy(p Policy) Option {
	return func(s *Scheduler) { s.policy = p }
}

// WithTelemetry attaches a scheduling-event recorder: the scheduler
// emits admit, dispatch, complete and fail events at their decision
// instants (DESIGN.md §12). A nil recorder (the default) disables
// telemetry at zero cost — every emission site is guarded, so the
// disabled hot path constructs nothing. Recording never feeds back
// into a decision: a traced run's Result is bit-identical to an
// untraced one.
func WithTelemetry(rec *telemetry.Recorder) Option {
	return func(s *Scheduler) { s.tel = rec }
}

// WithSlicing caps how many tasks a single stream grant dispatches
// (default 0 = off: a job pins whole, the pre-slicing behavior). With
// a positive cap the scheduler dispatches a *slice* — a prefix of the
// job's remaining task list, which is dependency-closed because task
// lists are dependency-ordered (core.EnqueuePhase's contract) — and at
// the slice's completion re-queues the remainder behind the policy, so
// dispatch decisions happen at task granularity: light jobs overtake a
// heavy job between its slices, and the adaptive policy re-plans
// tenant shares at every slice boundary. Slice boundaries are ordinary
// drain instants, so determinism is unchanged; a re-queued remainder
// keeps its admission sequence and outcome slot. Dependencies crossing
// a slice boundary are satisfied temporally — slices of one job
// serialize — and are stripped from the enqueued copy.
func WithSlicing(maxTasksPerSlice int) Option {
	return func(s *Scheduler) { s.sliceMax = maxTasksPerSlice }
}

// WithStreams restricts the scheduler to a subset of the context's
// streams, identified by their context-wide ids (default: all). The
// cluster layer uses one scheduler per device, each owning that
// device's streams; two live schedulers must not share a stream.
// Policies see the owned streams re-indexed 0..n-1 in the given order,
// with partitions renumbered by first appearance.
func WithStreams(ids ...int) Option {
	return func(s *Scheduler) { s.streams = append(make([]int, 0, len(ids)), ids...) }
}

// Scheduler runs admission and dispatch over one hstreams context (or,
// with WithStreams, over a slice of it). A scheduler may execute
// several Run calls sequentially; each call drains completely before
// returning. Alternatively an embedding layer drives it online:
// Reset, then Submit at arrival instants, observing completions via
// SetOnDone.
type Scheduler struct {
	ctx    *hstreams.Context
	policy Policy

	// tel is the scheduling-event sink (nil = disabled); telDev is the
	// device index an embedding cluster stamps on this scheduler's
	// events, -1 standalone. In embedded mode the cluster logs its own
	// admissions, so the scheduler emits only dispatch/complete/fail.
	tel    *telemetry.Recorder
	telDev int

	// sliceMax caps the tasks per stream grant (0 = whole-job
	// dispatch).
	sliceMax int

	// streams lists the context-wide ids of the owned streams; all
	// other per-stream state is indexed by position in this slice
	// (the "local" index policies see).
	streams []int
	// streamPart maps local stream index → local partition index;
	// fixed by the platform topology and the owned subset.
	streamPart []int
	nparts     int

	// Per-run state, reset by Reset (and therefore by Run).
	pending      []*Pending
	busy         []bool
	load         []sim.Duration
	freeAt       []sim.Time
	streamTenant []string
	outcomes     []JobOutcome
	done         int
	seq          int
	runErr       error
	onDone       func(JobOutcome)
}

// binder is implemented by policies that derive state from the
// platform (e.g. a performance model built from the device and link
// configs); Scheduler.Run calls it before the first dispatch.
type binder interface{ bind(*hstreams.Context) }

// New builds a scheduler over ctx.
func New(ctx *hstreams.Context, opts ...Option) (*Scheduler, error) {
	if ctx == nil {
		return nil, fmt.Errorf("sched: nil context")
	}
	s := &Scheduler{ctx: ctx, policy: FIFO(), telDev: -1}
	for _, opt := range opts {
		opt(s)
	}
	if s.policy == nil {
		return nil, fmt.Errorf("sched: nil policy")
	}
	if s.streams == nil {
		s.streams = make([]int, ctx.NumStreams())
		for i := range s.streams {
			s.streams[i] = i
		}
	}
	if len(s.streams) == 0 {
		return nil, fmt.Errorf("sched: empty stream set")
	}
	cfg := ctx.Config()
	// Renumber the owned streams' partitions by first appearance; for
	// the default full set this reproduces the context's device-major
	// partition numbering exactly.
	s.streamPart = make([]int, len(s.streams))
	partIdx := make(map[int]int)
	seen := make(map[int]bool, len(s.streams))
	for i, id := range s.streams {
		if id < 0 || id >= ctx.NumStreams() {
			return nil, fmt.Errorf("sched: stream id %d out of range [0,%d)", id, ctx.NumStreams())
		}
		if seen[id] {
			return nil, fmt.Errorf("sched: duplicate stream id %d", id)
		}
		seen[id] = true
		st := ctx.Stream(id)
		global := st.DeviceIndex()*cfg.Partitions + st.Partition().Index()
		local, ok := partIdx[global]
		if !ok {
			local = len(partIdx)
			partIdx[global] = local
		}
		s.streamPart[i] = local
	}
	s.nparts = len(partIdx)
	s.Reset()
	return s, nil
}

// Policy returns the scheduler's policy.
func (s *Scheduler) Policy() Policy { return s.policy }

// Context returns the underlying platform context.
func (s *Scheduler) Context() *hstreams.Context { return s.ctx }

// Streams returns the context-wide ids of the streams the scheduler
// owns, in local-index order.
func (s *Scheduler) Streams() []int { return append([]int(nil), s.streams...) }

// NumStreams reports how many streams the scheduler owns, without the
// copy Streams makes — the per-decision snapshot path uses it.
func (s *Scheduler) NumStreams() int { return len(s.streams) }

// validateJob rejects jobs the dispatch loop cannot execute.
func validateJob(j *Job) error {
	if len(j.Tasks) == 0 {
		return fmt.Errorf("sched: job %d (tenant %q) has no tasks", j.ID, j.Tenant)
	}
	for k, task := range j.Tasks {
		if task == nil {
			return fmt.Errorf("sched: job %d (tenant %q) has nil task %d", j.ID, j.Tenant, k)
		}
	}
	return nil
}

// Sliceable checks the dependency-ordering invariant slicing cuts at:
// every DependsOn target must be an earlier task in the list, so any
// prefix of the remaining list is dependency-closed. EnqueuePhase
// enforces the same order at dispatch; layers that slice — a
// WithSlicing scheduler, the cluster's mid-job migration — check it at
// admission, before a half-dispatched job can strand.
func Sliceable(tasks []*core.Task) error {
	seen := make(map[int]bool, len(tasks))
	for _, t := range tasks {
		for _, d := range t.DependsOn {
			if !seen[d] {
				return fmt.Errorf("task %d depends on %d which is not an earlier task; slicing needs dependency-ordered task lists", t.ID, d)
			}
		}
		seen[t.ID] = true
	}
	return nil
}

func validateSliceable(j *Job) error {
	if err := Sliceable(j.Tasks); err != nil {
		return fmt.Errorf("sched: job %d (tenant %q): %w", j.ID, j.Tenant, err)
	}
	return nil
}

// Reset clears the scheduler's per-run state and re-binds the policy,
// preparing for a fresh sequence of Submit calls. Run calls it
// implicitly; embedding layers call it once per composed run.
func (s *Scheduler) Reset() {
	if b, ok := s.policy.(binder); ok {
		b.bind(s.ctx)
	}
	if r, ok := s.policy.(resetter); ok {
		r.reset()
	}
	n := len(s.streams)
	s.pending = nil
	s.busy = make([]bool, n)
	s.load = make([]sim.Duration, n)
	s.freeAt = make([]sim.Time, n)
	s.streamTenant = make([]string, n)
	s.outcomes = nil
	s.done = 0
	s.seq = 0
	s.runErr = nil
}

// Submit admits one job at the current virtual instant (its Arrival
// field is ignored — the embedding layer owns arrival timing) and runs
// the dispatch loop. It returns the job's outcome index; the outcome's
// completion fields fill in at the completion instant, observable via
// SetOnDone.
func (s *Scheduler) Submit(job *Job) (int, error) {
	if err := validateJob(job); err != nil {
		return -1, err
	}
	if s.sliceMax > 0 {
		if err := validateSliceable(job); err != nil {
			return -1, err
		}
	}
	if s.runErr != nil {
		return -1, s.runErr
	}
	idx := len(s.outcomes)
	s.outcomes = append(s.outcomes, JobOutcome{})
	s.admit(job, idx)
	return idx, s.runErr
}

// PendingView describes one admitted-but-undispatched job to an
// embedding layer: its outcome index (as returned by Submit), the
// service estimate dispatch accounting uses (including any staging
// transfer the embedder prepended), and the admission sequence number.
type PendingView struct {
	Index int
	Est   sim.Duration
	Seq   int
	// Next is the first not-yet-dispatched task index: 0 for a job
	// that never started, positive for the re-queued remainder of a
	// partially-dispatched job (WithSlicing) — the mid-job steal
	// candidates the cluster layer migrates at task granularity.
	Next int
}

// PendingJobs snapshots the admission queue in admission order — the
// per-job view the cluster layer's work stealing chooses victims from,
// where PendingBacklog only reports the queue's total.
func (s *Scheduler) PendingJobs() []PendingView {
	out := make([]PendingView, len(s.pending))
	for i, p := range s.pending {
		out[i] = PendingView{Index: p.idx, Est: p.Est, Seq: p.Seq, Next: p.Next}
	}
	return out
}

// Withdraw removes the queued job with the given outcome index from
// the admission queue and returns the submitted job. It reports false
// when the index is unknown or the job is not currently queued — a
// withdrawn job must be in the queue, either never dispatched or (with
// WithSlicing) a remainder re-queued between slices; a job with a
// slice in flight is never in the queue and therefore never
// withdrawable mid-slice. The outcome slot remains allocated but
// permanently unrun; the cluster layer withdraws committed jobs and
// mid-job remainders at drain instants to re-bind them elsewhere
// (DESIGN.md §10, §13).
func (s *Scheduler) Withdraw(idx int) (*Job, bool) {
	for i, p := range s.pending {
		if p.idx == idx {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return p.Job, true
		}
	}
	return nil, false
}

// SetTelemetry attaches a scheduling-event recorder in embedded mode,
// stamping device on every event this scheduler emits. The cluster
// layer calls it so per-device dispatch and completion instants land
// in the cluster-wide log; admissions are logged by the cluster
// itself, so an embedded scheduler does not emit Admit events.
func (s *Scheduler) SetTelemetry(rec *telemetry.Recorder, device int) {
	s.tel = rec
	s.telDev = device
}

// telIdx is the job index stamped on emitted events: the embedding
// layer's Job.Ref in embedded mode (so cluster logs keep one index
// space across layers), the scheduler-local outcome index standalone.
func (s *Scheduler) telIdx(idx int, job *Job) int {
	if s.telDev >= 0 {
		return job.Ref
	}
	return idx
}

// SetOnDone registers fn to run at every job-completion instant, after
// the scheduler has updated its own state and re-entered the dispatch
// loop. The cluster layer uses it to place queued jobs at drain
// instants.
func (s *Scheduler) SetOnDone(fn func(JobOutcome)) { s.onDone = fn }

// Outcomes returns the outcomes recorded since the last Reset, in
// submission order; entries whose Done is unset are still in flight.
func (s *Scheduler) Outcomes() []JobOutcome { return s.outcomes }

// Err reports a dispatch error raised since the last Reset (a policy
// picking an invalid job or stream), nil while healthy.
func (s *Scheduler) Err() error { return s.runErr }

// QueueDepth reports the number of admitted-but-undispatched jobs.
func (s *Scheduler) QueueDepth() int { return len(s.pending) }

// InFlight reports the number of dispatched-but-unfinished jobs.
func (s *Scheduler) InFlight() int {
	n := 0
	for _, b := range s.busy {
		if b {
			n++
		}
	}
	return n
}

// PendingBacklog sums the service estimates of the queued jobs — the
// time-denominated load signal the cluster's predicted placement uses,
// where queue depth alone is blind to job sizes. A partially-
// dispatched job counts only its remaining tasks: each slice boundary
// re-estimates the remainder, so completed work never inflates the
// backlog a steal decision reads.
func (s *Scheduler) PendingBacklog() sim.Duration {
	var total sim.Duration
	for _, p := range s.pending {
		total += p.Est
	}
	return total
}

// EarliestFree estimates when a stream next becomes idle: now when one
// already is, otherwise the smallest estimated completion instant of
// the in-flight jobs. It is an estimate (service estimates, not
// simulated futures) — a ranking signal, not a prediction.
func (s *Scheduler) EarliestFree() sim.Time {
	now := s.ctx.Now()
	best := sim.Time(-1)
	for i, b := range s.busy {
		if !b {
			return now
		}
		if best < 0 || s.freeAt[i] < best {
			best = s.freeAt[i]
		}
	}
	if best < now {
		best = now
	}
	return best
}

// Run admits every job at its arrival time, dispatches them under the
// configured policy until all complete, and returns the per-job and
// per-tenant accounting. Arrival times earlier than the context's
// current virtual time are clamped to it (a job cannot arrive in the
// past of a composed run). When a dispatch error aborts the run, Run
// returns the error together with a partial Result in which every
// admitted-but-unrun job is flagged Failed.
func (s *Scheduler) Run(jobs []Job) (*Result, error) {
	for i := range jobs {
		if err := validateJob(&jobs[i]); err != nil {
			return nil, err
		}
		if s.sliceMax > 0 {
			if err := validateSliceable(&jobs[i]); err != nil {
				return nil, err
			}
		}
		if jobs[i].Arrival < 0 {
			return nil, fmt.Errorf("sched: job %d has negative arrival %v", jobs[i].ID, jobs[i].Arrival)
		}
	}
	s.Reset()
	s.outcomes = make([]JobOutcome, len(jobs))

	eng := s.ctx.Engine()
	runStart := eng.Now()
	for i := range jobs {
		job := &jobs[i]
		idx := i
		at := job.Arrival
		if at < runStart {
			at = runStart
		}
		eng.At(at, func() { s.admit(job, idx) })
	}
	eng.Run()
	if s.runErr != nil {
		// The partial result surfaces every admitted job — the ones the
		// aborted dispatch loop never ran are flagged Failed — so the
		// caller can account for the whole submission, not just the
		// jobs that happened to finish before the error.
		return s.summarize(runStart), s.runErr
	}
	if s.done != len(jobs) {
		return nil, fmt.Errorf("sched: internal error: %d of %d jobs completed", s.done, len(jobs))
	}
	return s.summarize(runStart), nil
}

// admit enqueues one arriving job and runs the dispatch loop. Arrivals
// after a dispatch error are recorded as failed outcomes immediately —
// dropping them silently would understate the submission.
func (s *Scheduler) admit(job *Job, idx int) {
	est := job.Est
	if est <= 0 {
		est = s.Estimate(job.Tasks)
	}
	s.outcomes[idx] = JobOutcome{
		Index:    idx,
		ID:       job.ID,
		Tenant:   tenantOf(job),
		Arrival:  s.ctx.Now(),
		Est:      est,
		Stream:   -1,
		Deadline: job.Deadline,
	}
	if s.runErr != nil {
		s.outcomes[idx].Failed = true
		if s.tel.Enabled() {
			s.tel.Emit(telemetry.Event{At: s.ctx.Now(), Kind: telemetry.Fail, Job: s.telIdx(idx, job), ID: job.ID,
				Tenant: tenantOf(job), Device: s.telDev, From: -1, Stream: -1})
		}
		if s.onDone != nil {
			s.onDone(s.outcomes[idx])
		}
		return
	}
	// An embedded scheduler's admission instant is the cluster's
	// commitment, which the cluster logs itself as a Place event.
	if s.tel.Enabled() && s.telDev < 0 {
		s.tel.Emit(telemetry.Event{At: s.ctx.Now(), Kind: telemetry.Admit, Job: idx, ID: job.ID,
			Tenant: tenantOf(job), Device: -1, From: -1, Stream: -1, Dur: est, Deadline: job.Deadline})
	}
	s.pending = append(s.pending, &Pending{Job: job, Est: est, Seq: s.seq, idx: idx})
	s.seq++
	s.dispatch()
}

// fail records the first dispatch error and surfaces every queued job
// as a failed outcome: the run cannot dispatch them anymore, and
// leaving them silently pending would drop them from Outcomes() and
// never fire onDone — the embedding layer would wait forever.
func (s *Scheduler) fail(err error) {
	if s.runErr != nil {
		return
	}
	s.runErr = err
	stranded := s.pending
	s.pending = nil
	for _, p := range stranded {
		s.outcomes[p.idx].Failed = true
		if s.tel.Enabled() {
			s.tel.Emit(telemetry.Event{At: s.ctx.Now(), Kind: telemetry.Fail, Job: s.telIdx(p.idx, p.Job), ID: p.Job.ID,
				Tenant: tenantOf(p.Job), Device: s.telDev, From: -1, Stream: -1})
		}
		if s.onDone != nil {
			s.onDone(s.outcomes[p.idx])
		}
	}
}

// dispatch drains the admission queue onto idle streams. It runs until
// either the queue or the idle set is empty — the work-conservation
// invariant.
func (s *Scheduler) dispatch() {
	for len(s.pending) > 0 && s.runErr == nil {
		idle := s.idleStreams()
		if len(idle) == 0 {
			return
		}
		// Both slices are defensive copies: Policy is an exported
		// interface, and a mutating implementation must not corrupt
		// the scheduler's state.
		v := &View{
			Now:             s.ctx.Now(),
			StreamLoad:      append([]sim.Duration(nil), s.load...),
			StreamPartition: append([]int(nil), s.streamPart...),
			StreamTenant:    append([]string(nil), s.streamTenant...),
			Partitions:      s.nparts,
		}
		pi, stream := s.policy.Pick(s.pending, idle, v)
		if pi < 0 || pi >= len(s.pending) {
			s.fail(fmt.Errorf("sched: policy %s picked job index %d out of range [0,%d)", s.policy.Name(), pi, len(s.pending)))
			return
		}
		if stream < 0 || stream >= len(s.busy) || s.busy[stream] {
			s.fail(fmt.Errorf("sched: policy %s picked stream %d which is not idle", s.policy.Name(), stream))
			return
		}
		p := s.pending[pi]
		s.pending = append(s.pending[:pi], s.pending[pi+1:]...)
		s.start(p, stream)
	}
}

// start pins the job's next slice to the chosen stream, enqueues it,
// and registers the completion hook that frees the stream and
// re-enters the dispatch loop. Without WithSlicing the slice is the
// whole task list and this is exactly the pre-slicing dispatch; with
// it, a non-final slice's completion re-queues the remainder behind
// the policy instead of completing the job.
func (s *Scheduler) start(p *Pending, stream int) {
	idx := p.idx
	global := s.streams[stream]
	all := p.Job.Tasks
	end := len(all)
	if s.sliceMax > 0 && p.Next+s.sliceMax < end {
		end = p.Next + s.sliceMax
	}
	chunk := all[p.Next:end]
	// A partial slice is accounted at its own estimate; the final (or
	// only) slice carries whatever remains of the job's estimate, so
	// the whole-job path is bit-identical to the pre-slicing scheduler.
	est := p.Est
	if end < len(all) {
		est = s.Estimate(chunk)
	}
	first := p.Next == 0
	granted := s.ctx.Now()
	s.busy[stream] = true
	s.streamTenant[stream] = tenantOf(p.Job)
	s.load[stream] += est
	s.freeAt[stream] = s.ctx.Now().Add(est)
	s.outcomes[idx].Stream = global
	if first {
		s.outcomes[idx].Start = s.ctx.Now()
	}
	s.outcomes[idx].Slices++
	if s.tel.Enabled() {
		kind := telemetry.Dispatch
		if !first {
			kind = telemetry.Slice
		}
		s.tel.Emit(telemetry.Event{At: s.ctx.Now(), Kind: kind, Job: s.telIdx(idx, p.Job), ID: p.Job.ID,
			Tenant: tenantOf(p.Job), Device: s.telDev, From: -1, Stream: global, Dur: est})
	}

	var inChunk map[int]bool
	if p.Next > 0 {
		inChunk = make(map[int]bool, len(chunk))
		for _, t := range chunk {
			inChunk[t.ID] = true
		}
	}
	tasks := make([]*core.Task, len(chunk))
	for i, t := range chunk {
		c := *t
		c.StreamHint = global
		// Dependencies on earlier slices are satisfied temporally —
		// slices of one job serialize — and must not reference tasks
		// EnqueuePhase has not seen in this call.
		if inChunk != nil && len(c.DependsOn) > 0 {
			deps := make([]int, 0, len(c.DependsOn))
			for _, d := range c.DependsOn {
				if inChunk[d] {
					deps = append(deps, d)
				}
			}
			c.DependsOn = deps
		}
		tasks[i] = &c
	}
	ev, err := core.EnqueuePhase(s.ctx, tasks)
	if err != nil {
		// The job claimed its stream but will never complete there;
		// mark it failed before stranding the queue behind it.
		s.outcomes[idx].Failed = true
		if s.tel.Enabled() {
			s.tel.Emit(telemetry.Event{At: s.ctx.Now(), Kind: telemetry.Fail, Job: s.telIdx(idx, p.Job), ID: p.Job.ID,
				Tenant: tenantOf(p.Job), Device: s.telDev, From: -1, Stream: global})
		}
		s.fail(fmt.Errorf("sched: job %d: %w", p.Job.ID, err))
		if s.onDone != nil {
			s.onDone(s.outcomes[idx])
		}
		return
	}
	// Every action of the slice sits on one FIFO stream, so the last
	// task's final event is the last to resolve.
	final := ev.Done[tasks[len(tasks)-1].ID]
	final.OnDone(func() {
		if end < len(all) {
			// Slice boundary: free the stream, re-estimate the
			// remainder (remaining tasks only — completed slices must
			// not inflate PendingBacklog) and re-queue it in admission
			// order, then let the policy re-plan. The job's outcome
			// completes only at its final slice. The Requeue event
			// closes the grant opened by Dispatch/Slice, carrying the
			// slice's realized span, so the timeline folder can
			// reconstruct per-slice execution exactly.
			s.busy[stream] = false
			s.streamTenant[stream] = ""
			p.Next = end
			p.Est = s.Estimate(all[end:])
			if s.tel.Enabled() {
				s.tel.Emit(telemetry.Event{At: s.ctx.Now(), Kind: telemetry.Requeue, Job: s.telIdx(idx, p.Job), ID: p.Job.ID,
					Tenant: tenantOf(p.Job), Device: s.telDev, From: -1, Stream: global,
					Dur: s.ctx.Now().Sub(granted)})
			}
			s.requeue(p)
			s.dispatch()
			return
		}
		s.outcomes[idx].Done = s.ctx.Now()
		if d := s.outcomes[idx].Deadline; d > 0 && s.outcomes[idx].Latency() > d {
			s.outcomes[idx].Missed = true
		}
		s.done++
		s.busy[stream] = false
		s.streamTenant[stream] = ""
		if s.tel.Enabled() {
			s.tel.Emit(telemetry.Event{At: s.ctx.Now(), Kind: telemetry.Complete, Job: s.telIdx(idx, p.Job), ID: p.Job.ID,
				Tenant: tenantOf(p.Job), Device: s.telDev, From: -1, Stream: global,
				Dur: s.outcomes[idx].Done.Sub(s.outcomes[idx].Start)})
		}
		s.dispatch()
		if s.onDone != nil {
			s.onDone(s.outcomes[idx])
		}
	})
}

// requeue inserts a re-queued remainder back into the admission queue
// at its sequence position, preserving the "pending is in admission
// order" contract policies rely on.
func (s *Scheduler) requeue(p *Pending) {
	at := len(s.pending)
	for i, q := range s.pending {
		if p.Seq < q.Seq {
			at = i
			break
		}
	}
	s.pending = append(s.pending, nil)
	copy(s.pending[at+1:], s.pending[at:])
	s.pending[at] = p
}

// idleStreams lists streams with no job in flight, ascending.
func (s *Scheduler) idleStreams() []int {
	var idle []int
	for i, b := range s.busy {
		if !b {
			idle = append(idle, i)
		}
	}
	return idle
}

// Estimate derives a service-time estimate for a task list: per task,
// the kernel's duration on the first owned stream's partition plus the
// PCIe time of its declared transfers. It ignores queueing and overlap
// — it is a ranking signal for cost-aware policies and the cluster's
// placement scores, not a prediction.
func (s *Scheduler) Estimate(tasks []*core.Task) sim.Duration {
	part := s.ctx.Stream(s.streams[0]).Partition()
	link := s.ctx.Config().Link
	var total sim.Duration
	for _, t := range tasks {
		if !t.TransferOnly {
			total += part.KernelTime(t.Cost)
		}
		for _, specs := range [][]core.TransferSpec{t.H2D, t.D2H} {
			for _, x := range specs {
				if x.Buf == nil || x.Buf.Len() == 0 {
					continue
				}
				bytes := float64(x.N) * float64(x.Buf.Bytes()) / float64(x.Buf.Len())
				total += sim.Duration(link.LatencyNs) + sim.DurationOf(bytes/link.BandwidthBps)
			}
		}
	}
	if total <= 0 {
		total = 1
	}
	return total
}

// JobOutcome records one completed job.
type JobOutcome struct {
	// Index is the job's position in the Run slice.
	Index int
	// ID and Tenant echo the job's labels.
	ID     int
	Tenant string
	// Stream is where the job ran (a context-wide stream id, even
	// when the scheduler owns a WithStreams subset).
	Stream int
	// Arrival, Start and Done are the job's lifecycle instants:
	// admission, dispatch, and completion of its last action.
	Arrival, Start, Done sim.Time
	// Est is the service estimate the policies saw.
	Est sim.Duration
	// Deadline echoes the job's relative latency budget (0: none);
	// Missed reports the completed job overran it (Latency > Deadline).
	Deadline sim.Duration
	Missed   bool
	// Slices counts the stream grants the job took: 1 for a
	// whole-job dispatch, more under WithSlicing. Zero means the job
	// never reached a stream.
	Slices int
	// Failed marks a job the run admitted but could never finish
	// because a dispatch error aborted scheduling; its Start/Done
	// fields are meaningless. Failed jobs appear in Result.Jobs so no
	// admission is silently dropped.
	Failed bool
}

// Wait is the queueing delay (dispatch minus arrival).
func (o JobOutcome) Wait() sim.Duration { return o.Start.Sub(o.Arrival) }

// Latency is the response time (completion minus arrival).
func (o JobOutcome) Latency() sim.Duration { return o.Done.Sub(o.Arrival) }

// Service is the occupancy (completion minus dispatch).
func (o JobOutcome) Service() sim.Duration { return o.Done.Sub(o.Start) }

// Slowdown is latency over service: 1 means the job never queued.
func (o JobOutcome) Slowdown() float64 {
	sv := o.Service().Seconds()
	if sv <= 0 {
		return 1
	}
	return o.Latency().Seconds() / sv
}

// TenantStats aggregates the jobs of one tenant.
type TenantStats struct {
	// Tenant is the tenant label.
	Tenant string
	// Jobs is the completed-job count.
	Jobs int
	// Throughput is completed jobs per second of the run's makespan.
	Throughput float64
	// MeanLatency and the percentiles summarize response times.
	MeanLatency, P50, P95, P99 sim.Duration
	// Misses counts completed jobs that overran their declared
	// deadline (always 0 when no job of the tenant carries one).
	Misses int
	// MeanSlowdown is the mean latency/service ratio: the tenant's
	// service-quality degradation under contention.
	MeanSlowdown float64
}

// Result summarizes one Run.
type Result struct {
	// Policy names the policy that produced the schedule.
	Policy string
	// Jobs lists every outcome in submission order.
	Jobs []JobOutcome
	// Tenants lists per-tenant aggregates sorted by tenant label.
	Tenants []TenantStats
	// Makespan is the span from the run's start to the last
	// completion.
	Makespan sim.Duration
	// Failed counts jobs the run admitted but never ran because a
	// dispatch error aborted scheduling (Run also returns the error).
	Failed int
	// JainSlowdown is Jain's fairness index over per-tenant mean
	// slowdowns: 1 when every tenant suffers equal queueing
	// degradation.
	JainSlowdown float64
	// JainThroughput is Jain's index over per-tenant throughputs.
	// In this run-to-completion model every submitted job finishes
	// and every tenant shares the makespan denominator, so this
	// reduces to the Jain index of the *offered* per-tenant job
	// counts — it quantifies how imbalanced the load was, not how
	// fairly the policy scheduled it (that is JainSlowdown).
	JainThroughput float64
}

// Tenant returns the aggregate for one tenant, or nil.
func (r *Result) Tenant(name string) *TenantStats {
	for i := range r.Tenants {
		if r.Tenants[i].Tenant == name {
			return &r.Tenants[i]
		}
	}
	return nil
}

// AggregateTenants computes per-tenant aggregates over completed
// outcomes, sorted by tenant label; makespan is the run span the
// throughput denominators use. Failed outcomes are excluded — they
// have no lifecycle to aggregate. The cluster layer reuses it to
// account jobs that ran on several per-device schedulers.
func AggregateTenants(outcomes []JobOutcome, makespan sim.Duration) []TenantStats {
	perTenant := map[string][]JobOutcome{}
	for _, o := range outcomes {
		if o.Failed {
			continue
		}
		perTenant[o.Tenant] = append(perTenant[o.Tenant], o)
	}
	names := make([]string, 0, len(perTenant))
	for name := range perTenant {
		names = append(names, name)
	}
	sort.Strings(names)

	span := makespan.Seconds()
	out := make([]TenantStats, 0, len(names))
	for _, name := range names {
		jobs := perTenant[name]
		lats := make([]float64, len(jobs))
		slow := 0.0
		misses := 0
		for i, o := range jobs {
			lats[i] = float64(o.Latency())
			slow += o.Slowdown()
			if o.Missed {
				misses++
			}
		}
		p50, p95, p99 := stats.Percentiles(lats)
		ts := TenantStats{
			Tenant:       name,
			Jobs:         len(jobs),
			MeanLatency:  sim.Duration(stats.Mean(lats)),
			P50:          sim.Duration(p50),
			P95:          sim.Duration(p95),
			P99:          sim.Duration(p99),
			Misses:       misses,
			MeanSlowdown: slow / float64(len(jobs)),
		}
		if span > 0 {
			ts.Throughput = float64(len(jobs)) / span
		}
		out = append(out, ts)
	}
	return out
}

// summarize assembles the Result from the recorded outcomes.
func (s *Scheduler) summarize(runStart sim.Time) *Result {
	r := &Result{Policy: s.policy.Name(), Jobs: s.outcomes}
	end := runStart
	for _, o := range s.outcomes {
		if o.Failed {
			r.Failed++
			continue
		}
		if o.Done > end {
			end = o.Done
		}
	}
	r.Makespan = end.Sub(runStart)
	r.Tenants = AggregateTenants(s.outcomes, r.Makespan)

	var slowdowns, throughputs []float64
	for _, ts := range r.Tenants {
		slowdowns = append(slowdowns, ts.MeanSlowdown)
		throughputs = append(throughputs, ts.Throughput)
	}
	r.JainSlowdown = stats.JainIndex(slowdowns)
	r.JainThroughput = stats.JainIndex(throughputs)
	return r
}

// tenantOf returns the job's tenant label, defaulting empty to
// "default".
func tenantOf(j *Job) string {
	if j.Tenant == "" {
		return "default"
	}
	return j.Tenant
}
