package sched

import (
	"sort"

	"micstream/internal/hstreams"
	"micstream/internal/model"
)

// driftThreshold is how far the observed per-tenant work mix may move
// (max absolute change of any tenant's share) before the adaptive
// policy recomputes its stream allocation. The hysteresis keeps the
// plan stable under noise while still tracking real load shifts; the
// value is part of the determinism contract (DESIGN.md §8) — a plan
// recomputation happens at exactly the dispatch instant the threshold
// is crossed, never in between.
const driftThreshold = 0.2

// adaptive is the model-guided re-partitioning policy: it predicts
// every job's service time with the analytic performance model,
// maintains the observed per-tenant work mix, and re-divides the
// platform's streams among tenants in proportion to that mix whenever
// it drifts. At each dispatch instant it serves the tenant furthest
// below its allocated stream share — weighted fair sharing in
// predicted-work space, with the weights themselves adapting online.
type adaptive struct {
	m *model.Model
	// partitions is the per-device partition count, fixed at bind.
	partitions int

	// Per-run state, cleared by reset.
	seen    map[int]bool
	arrived map[string]float64
	planned map[string]float64
	plans   int
}

// Adaptive returns the model-guided adaptive policy. The performance
// model is built from the platform's device and link configs when the
// scheduler binds the policy to its context.
func Adaptive() Policy { return &adaptive{} }

// AdaptiveWithModel returns the adaptive policy with a caller-supplied
// (e.g. Fit-calibrated) performance model.
func AdaptiveWithModel(m *model.Model) Policy { return &adaptive{m: m} }

// Name implements Policy.
func (*adaptive) Name() string { return "adaptive" }

// bind implements binder: an unconfigured policy models the platform
// it is scheduling.
func (p *adaptive) bind(ctx *hstreams.Context) {
	cfg := ctx.Config()
	if p.m == nil {
		p.m = model.New(cfg.Device, cfg.Link)
	}
	p.partitions = cfg.Partitions
}

// reset implements resetter.
func (p *adaptive) reset() {
	p.seen = map[int]bool{}
	p.arrived = map[string]float64{}
	p.planned = nil
	p.plans = 0
}

// Pick implements Policy. Dispatch instants are exactly the admission
// and drain events (the scheduler calls Pick nowhere else), so this is
// where the policy observes the mix, re-plans on drift, and places.
func (p *adaptive) Pick(pending []*Pending, idle []int, v *View) (int, int) {
	// Account every newly observed job's model-predicted service time
	// into its tenant's share of the arrived work.
	for _, pd := range pending {
		if !p.seen[pd.Seq] {
			p.seen[pd.Seq] = true
			e := p.m.ServiceTime(pd.Job.Tasks, p.partitions)
			p.arrived[tenantOf(pd.Job)] += e.Seconds()
		}
	}
	p.replanIfDrifted()

	// Streams currently held per tenant.
	held := map[string]int{}
	for _, tn := range v.StreamTenant {
		if tn != "" {
			held[tn]++
		}
	}

	// Tenants with pending work, in sorted order for determinism.
	byTenant := map[string]int{} // tenant → pending index of its oldest job
	for i, pd := range pending {
		tn := tenantOf(pd.Job)
		if at, ok := byTenant[tn]; !ok || pd.Seq < pending[at].Seq {
			byTenant[tn] = i
		}
	}
	names := make([]string, 0, len(byTenant))
	for tn := range byTenant {
		names = append(names, tn)
	}
	sort.Strings(names)

	// Serve the tenant furthest below its allocated share of the
	// streams; ties go to the lexicographically first tenant.
	streams := float64(len(v.StreamTenant))
	job, bestDeficit := -1, 0.0
	for _, tn := range names {
		deficit := p.planned[tn]*streams - float64(held[tn])
		if job < 0 || deficit > bestDeficit {
			job, bestDeficit = byTenant[tn], deficit
		}
	}

	// Least-loaded idle stream, ties to the lowest id.
	stream := idle[0]
	for _, s := range idle[1:] {
		if v.StreamLoad[s] < v.StreamLoad[stream] {
			stream = s
		}
	}
	return job, stream
}

// replanIfDrifted recomputes the per-tenant stream shares from the
// observed mix when any tenant's share of the arrived work has moved
// more than driftThreshold since the last plan.
func (p *adaptive) replanIfDrifted() {
	// Iterate the arrived shares in sorted tenant order: the total is
	// a float accumulation, so a fixed order keeps re-planning
	// bit-deterministic regardless of map layout.
	tenants := make([]string, 0, len(p.arrived))
	for tn := range p.arrived {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	var total float64
	for _, tn := range tenants {
		total += p.arrived[tn]
	}
	if total <= 0 {
		return
	}
	if p.planned != nil {
		drift := 0.0
		for _, tn := range tenants {
			d := p.arrived[tn]/total - p.planned[tn]
			if d < 0 {
				d = -d
			}
			if d > drift {
				drift = d
			}
		}
		if drift <= driftThreshold {
			return
		}
	}
	p.planned = make(map[string]float64, len(p.arrived))
	for _, tn := range tenants {
		p.planned[tn] = p.arrived[tn] / total
	}
	p.plans++
}
