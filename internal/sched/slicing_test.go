package sched

import (
	"reflect"
	"strings"
	"testing"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/sim"
)

// multiTaskJob builds an n-task compute job; chained adds a linear
// DependsOn chain (task i waits on task i-1), the dependency-ordered
// shape slicing supports.
func multiTaskJob(id int, tenant string, arrival sim.Time, n int, flopsPerTask float64, chained bool) Job {
	tasks := make([]*core.Task, n)
	for i := range tasks {
		tasks[i] = &core.Task{
			ID:         i,
			Cost:       device.KernelCost{Name: "synthetic", Flops: flopsPerTask},
			StreamHint: -1,
		}
		if chained && i > 0 {
			tasks[i].DependsOn = []int{i - 1}
		}
	}
	return Job{ID: id, Tenant: tenant, Arrival: arrival, Tasks: tasks}
}

func TestSliceable(t *testing.T) {
	ordered := multiTaskJob(0, "t", 0, 4, 1e8, true).Tasks
	if err := Sliceable(ordered); err != nil {
		t.Fatalf("dependency-ordered chain rejected: %v", err)
	}
	forward := []*core.Task{
		{ID: 0, DependsOn: []int{1}, Cost: device.KernelCost{Name: "k", Flops: 1e8}},
		{ID: 1, Cost: device.KernelCost{Name: "k", Flops: 1e8}},
	}
	err := Sliceable(forward)
	if err == nil || !strings.Contains(err.Error(), "dependency-ordered") {
		t.Fatalf("forward dependency accepted: %v", err)
	}
}

// TestSlicingRejectsUnsliceableJobs checks both admission paths gate
// on the dependency-ordering invariant when slicing is on — and only
// then (the whole-job scheduler dispatches any EnqueuePhase-legal
// order).
func TestSlicingRejectsUnsliceableJobs(t *testing.T) {
	mk := func() Job {
		j := multiTaskJob(0, "t", 0, 2, 1e8, false)
		j.Tasks[0].DependsOn = []int{1} // forward reference
		return j
	}
	ctx := newCtx(t, 1)
	s, err := New(ctx, WithSlicing(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]Job{mk()}); err == nil || !strings.Contains(err.Error(), "dependency-ordered") {
		t.Fatalf("Run accepted an unsliceable job under WithSlicing: %v", err)
	}
	s.Reset()
	j := mk()
	if _, err := s.Submit(&j); err == nil || !strings.Contains(err.Error(), "dependency-ordered") {
		t.Fatalf("Submit accepted an unsliceable job under WithSlicing: %v", err)
	}
}

// TestSlicingWholeJobEquivalence asserts the compatibility contract:
// a cap at least as large as every task list dispatches whole jobs and
// must reproduce the unsliced scheduler bit for bit — and so must the
// off switch (cap 0).
func TestSlicingWholeJobEquivalence(t *testing.T) {
	build := func() []Job {
		var jobs []Job
		for i := 0; i < 10; i++ {
			jobs = append(jobs, multiTaskJob(i, string(rune('A'+i%3)),
				sim.Time(i)*sim.Time(sim.Millisecond)/3, 1+i%4, 3e8, i%2 == 0))
		}
		return jobs
	}
	run := func(opts ...Option) *Result {
		ctx := newCtx(t, 2)
		s, err := New(ctx, append([]Option{WithPolicy(SJF())}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(build())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain := run()
	if wide := run(WithSlicing(16)); !reflect.DeepEqual(plain, wide) {
		t.Error("cap 16 (≥ every task list) diverges from the unsliced scheduler")
	}
	if off := run(WithSlicing(0)); !reflect.DeepEqual(plain, off) {
		t.Error("cap 0 diverges from the unsliced scheduler")
	}
	for _, o := range plain.Jobs {
		if o.Slices != 1 {
			t.Fatalf("whole-job dispatch of job %d took %d slices, want 1", o.ID, o.Slices)
		}
	}
}

// TestSlicingSliceCounts checks a sliced job takes exactly
// ceil(tasks/cap) stream grants and completes with the same lifecycle
// shape as a whole-job run.
func TestSlicingSliceCounts(t *testing.T) {
	for _, tc := range []struct {
		tasks, cap, want int
	}{
		{7, 2, 4}, {6, 2, 3}, {6, 3, 2}, {1, 2, 1}, {5, 1, 5},
	} {
		ctx := newCtx(t, 1)
		s, err := New(ctx, WithSlicing(tc.cap))
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run([]Job{multiTaskJob(0, "t", 0, tc.tasks, 2e8, true)})
		if err != nil {
			t.Fatal(err)
		}
		o := r.Jobs[0]
		if o.Slices != tc.want {
			t.Errorf("%d tasks / cap %d: %d slices, want %d", tc.tasks, tc.cap, o.Slices, tc.want)
		}
		if o.Done <= o.Start || o.Start != 0 {
			t.Errorf("%d tasks / cap %d: lifecycle %v..%v", tc.tasks, tc.cap, o.Start, o.Done)
		}
	}
}

// TestSlicingLetsShortJobsOvertake is the convoy relief the feature
// exists for: on one stream, a light job arriving during a heavy job's
// first slice finishes before the heavy job under slicing (SJF grabs
// the slice boundary), while the whole-job scheduler strands it for
// the heavy job's full service.
func TestSlicingLetsShortJobsOvertake(t *testing.T) {
	build := func() []Job {
		return []Job{
			multiTaskJob(0, "heavy", 0, 6, 2e9, false),
			multiTaskJob(1, "light", sim.Time(sim.Millisecond), 1, 1e8, false),
		}
	}
	run := func(cap int) *Result {
		ctx := newCtx(t, 1)
		s, err := New(ctx, WithPolicy(SJF()), WithSlicing(cap))
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(build())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	whole, sliced := run(0), run(1)
	wh, wl := whole.Jobs[0], whole.Jobs[1]
	sh, sl := sliced.Jobs[0], sliced.Jobs[1]
	if wl.Start < wh.Done {
		t.Fatalf("whole-job run let the light job start at %v before the heavy job drained at %v", wl.Start, wh.Done)
	}
	if sl.Done >= sh.Done {
		t.Errorf("sliced run still convoys: light done %v, heavy done %v", sl.Done, sh.Done)
	}
	if sl.Wait() >= wl.Wait() {
		t.Errorf("slicing did not shrink the light job's wait: %v vs %v", sl.Wait(), wl.Wait())
	}
	if sh.Slices != 6 {
		t.Errorf("heavy job took %d slices, want 6", sh.Slices)
	}
}

// TestSlicingStripsCrossSliceDeps checks a linear dependency chain cut
// by slice boundaries still runs: dependencies on tasks of completed
// slices are satisfied temporally and must be stripped before
// EnqueuePhase sees the remainder.
func TestSlicingStripsCrossSliceDeps(t *testing.T) {
	ctx := newCtx(t, 2)
	s, err := New(ctx, WithSlicing(2))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run([]Job{
		multiTaskJob(0, "a", 0, 7, 5e8, true),
		multiTaskJob(1, "b", 0, 5, 5e8, true),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range r.Jobs {
		if o.Failed {
			t.Fatalf("job %d failed under sliced chained dependencies", o.ID)
		}
	}
	if r.Jobs[0].Slices != 4 || r.Jobs[1].Slices != 3 {
		t.Errorf("slice counts %d/%d, want 4/3", r.Jobs[0].Slices, r.Jobs[1].Slices)
	}
}

// TestPendingBacklogExcludesConsumedSlices is the regression test for
// the backlog overestimate: before slice-boundary re-estimation, a
// partially-dispatched job's pending remainder still carried the
// whole-job estimate, so PendingBacklog — the victim-selection signal
// work stealing reads — counted work that had already run. The probe
// observes the queue mid-run, at an instant when the heavy job's
// remainder waits behind a light job on the only stream.
func TestPendingBacklogExcludesConsumedSlices(t *testing.T) {
	ctx := newCtx(t, 1)
	s, err := New(ctx, WithPolicy(SJF()), WithSlicing(2))
	if err != nil {
		t.Fatal(err)
	}
	heavy := multiTaskJob(0, "heavy", 0, 6, 2e9, false)
	wholeEst := s.Estimate(heavy.Tasks)
	sliceEst := s.Estimate(heavy.Tasks[:2])
	remainEst := s.Estimate(heavy.Tasks[2:])
	if remainEst >= wholeEst || sliceEst <= 0 {
		t.Fatalf("estimates not ordered: slice %v, remainder %v, whole %v", sliceEst, remainEst, wholeEst)
	}
	// The light job arrives mid-slice-1 and wins the first slice
	// boundary under SJF, parking the remainder in the queue.
	light := multiTaskJob(1, "light", sim.Time(0).Add(sliceEst/2), 1, 1e8, false)
	lightEst := s.Estimate(light.Tasks)

	probed := false
	var gotBacklog sim.Duration
	var gotViews []PendingView
	ctx.Engine().At(sim.Time(0).Add(sliceEst).Add(lightEst/2), func() {
		probed = true
		gotBacklog = s.PendingBacklog()
		gotViews = s.PendingJobs()
	})
	if _, err := s.Run([]Job{heavy, light}); err != nil {
		t.Fatal(err)
	}
	if !probed {
		t.Fatal("probe event never fired")
	}
	if len(gotViews) != 1 {
		t.Fatalf("probe saw %d pending jobs, want only the heavy remainder: %+v", len(gotViews), gotViews)
	}
	if gotViews[0].Next != 2 {
		t.Errorf("remainder view Next = %d, want 2 (one slice of two tasks consumed)", gotViews[0].Next)
	}
	if gotBacklog != remainEst {
		t.Errorf("PendingBacklog = %v, want the remainder-only estimate %v", gotBacklog, remainEst)
	}
	// The pre-fix failure mode: the whole-job estimate would overstate
	// the backlog by the consumed slice, misranking this device as the
	// deepest steal victim.
	if gotBacklog >= wholeEst {
		t.Errorf("PendingBacklog %v still counts consumed slices (whole-job estimate %v)", gotBacklog, wholeEst)
	}
}
