package sched

import (
	"reflect"
	"sort"
	"testing"

	"micstream/internal/sim"
)

// runScenario executes one (policy, pattern, arrival, seed) scenario
// on a fresh 4-partition platform and returns the result.
func runScenario(t *testing.T, policy, pattern, arrival string, seed uint64) *Result {
	t.Helper()
	ctx := newCtx(t, 4)
	jobs, err := BuildScenario(ctx, ScenarioConfig{Pattern: pattern, Arrival: arrival, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ByName(policy)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ctx, WithPolicy(p))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestWorkConserving asserts the core scheduling invariant for every
// policy: while any job is waiting in the admission queue, no stream
// is idle. Reconstructed from outcomes: each job's waiting interval
// [arrival, start) must be fully covered by the busy intervals of
// every stream.
func TestWorkConserving(t *testing.T) {
	for _, policy := range Policies() {
		for _, pattern := range Patterns() {
			r := runScenario(t, policy, pattern, "bursty", 11)
			assertWorkConserving(t, policy+"/"+pattern, r, 4)
		}
	}
}

// assertWorkConserving checks that every job's waiting interval is
// covered by busy time on all streams.
func assertWorkConserving(t *testing.T, label string, r *Result, streams int) {
	t.Helper()
	type iv struct{ start, end sim.Time }
	busy := make([][]iv, streams)
	for _, o := range r.Jobs {
		busy[o.Stream] = append(busy[o.Stream], iv{o.Start, o.Done})
	}
	for s := range busy {
		sort.Slice(busy[s], func(i, j int) bool { return busy[s][i].start < busy[s][j].start })
	}
	// covered reports whether [from, to) is inside the union of a
	// stream's busy intervals. Jobs on one stream never overlap, so
	// the sorted intervals only need a linear sweep.
	covered := func(s int, from, to sim.Time) bool {
		at := from
		for _, i := range busy[s] {
			if i.start > at {
				return false
			}
			if i.end > at {
				at = i.end
			}
			if at >= to {
				return true
			}
		}
		return at >= to
	}
	violations := 0
	for _, o := range r.Jobs {
		if o.Wait() <= 0 {
			continue
		}
		for s := 0; s < streams; s++ {
			if !covered(s, o.Arrival, o.Start) {
				violations++
				if violations <= 3 {
					t.Errorf("%s: job %d waited [%v,%v) while stream %d was idle",
						label, o.ID, o.Arrival, o.Start, s)
				}
			}
		}
	}
	if violations > 3 {
		t.Errorf("%s: %d further work-conservation violations suppressed", label, violations-3)
	}
}

// TestFIFONoOvertaking asserts FIFO's starvation-freedom: dispatch
// order equals admission order, so every job's wait is bounded by the
// service of the finite set of jobs ahead of it.
func TestFIFONoOvertaking(t *testing.T) {
	for _, pattern := range Patterns() {
		r := runScenario(t, "fifo", pattern, "heavytail", 5)
		jobs := append([]JobOutcome(nil), r.Jobs...)
		// Admission order: arrival time, ties by submission order.
		sort.SliceStable(jobs, func(i, j int) bool {
			if jobs[i].Arrival != jobs[j].Arrival {
				return jobs[i].Arrival < jobs[j].Arrival
			}
			return jobs[i].Index < jobs[j].Index
		})
		for i := 1; i < len(jobs); i++ {
			if jobs[i].Start < jobs[i-1].Start {
				t.Fatalf("%s: FIFO overtaking: job %d (arrived %v) started %v before job %d (arrived %v) started %v",
					pattern, jobs[i].ID, jobs[i].Arrival, jobs[i].Start,
					jobs[i-1].ID, jobs[i-1].Arrival, jobs[i-1].Start)
			}
		}
	}
}

// TestFIFOBoundedWait asserts a concrete starvation bound: under FIFO
// a job's wait never exceeds the summed service of all jobs admitted
// before it (the worst case is draining the entire backlog through
// one stream).
func TestFIFOBoundedWait(t *testing.T) {
	r := runScenario(t, "fifo", "severe", "bursty", 23)
	jobs := append([]JobOutcome(nil), r.Jobs...)
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].Arrival != jobs[j].Arrival {
			return jobs[i].Arrival < jobs[j].Arrival
		}
		return jobs[i].Index < jobs[j].Index
	})
	var backlog sim.Duration
	for _, o := range jobs {
		if o.Wait() > backlog {
			t.Fatalf("job %d waited %v, more than the %v of service admitted before it",
				o.ID, o.Wait(), backlog)
		}
		backlog += o.Service()
	}
}

// TestBitIdenticalRepeats asserts the determinism contract: the same
// (policy, pattern, arrival, seed) tuple produces byte-for-byte
// identical results on every run, including every per-job timestamp.
func TestBitIdenticalRepeats(t *testing.T) {
	for _, policy := range Policies() {
		for _, arrival := range []string{"poisson", "bursty", "heavytail"} {
			a := runScenario(t, policy, "moderate", arrival, 99)
			b := runScenario(t, policy, "moderate", arrival, 99)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s/%s: repeated runs differ", policy, arrival)
			}
			c := runScenario(t, policy, "moderate", arrival, 100)
			if reflect.DeepEqual(a, c) {
				t.Fatalf("%s/%s: different seeds produced identical schedules", policy, arrival)
			}
		}
	}
}

// TestEveryJobRunsExactlyOnce asserts completeness: every submitted
// job appears in the outcome list with a valid lifecycle under every
// policy.
func TestEveryJobRunsExactlyOnce(t *testing.T) {
	for _, policy := range Policies() {
		r := runScenario(t, policy, "severe", "poisson", 42)
		seen := map[int]bool{}
		for _, o := range r.Jobs {
			if seen[o.Index] {
				t.Fatalf("%s: job index %d appears twice", policy, o.Index)
			}
			seen[o.Index] = true
			if o.Done < o.Start || o.Start < o.Arrival {
				t.Fatalf("%s: job %d has inverted lifecycle %v/%v/%v",
					policy, o.ID, o.Arrival, o.Start, o.Done)
			}
		}
		if len(seen) != 135 {
			t.Fatalf("%s: %d unique jobs completed, want 135", policy, len(seen))
		}
	}
}
