package sched

import (
	"testing"

	"micstream/internal/schedtest"
	"micstream/internal/sim"
)

// spans projects a device-scheduler result onto the shared invariant
// harness: the wait interval is arrival→dispatch, the busy interval is
// the stream occupancy, and the lifecycle promises arrival ≤ start ≤
// done.
func spans(r *Result) []schedtest.Span {
	out := make([]schedtest.Span, 0, len(r.Jobs))
	for _, o := range r.Jobs {
		out = append(out, schedtest.Span{
			ID: o.ID, Index: o.Index, Stream: o.Stream,
			Wait:  [2]sim.Time{o.Arrival, o.Start},
			Busy:  [2]sim.Time{o.Start, o.Done},
			Marks: []sim.Time{o.Arrival, o.Start, o.Done},
		})
	}
	return out
}

// runScenario executes one (policy, pattern, arrival, seed) scenario
// on a fresh 4-partition platform and returns the result.
func runScenario(t *testing.T, policy, pattern, arrival string, seed uint64) *Result {
	t.Helper()
	ctx := newCtx(t, 4)
	jobs, err := BuildScenario(ctx, ScenarioConfig{Pattern: pattern, Arrival: arrival, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ByName(policy)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ctx, WithPolicy(p))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestWorkConserving asserts the core scheduling invariant for every
// policy: while any job is waiting in the admission queue, no stream
// is idle (schedtest.WorkConserving reconstructs the busy timeline
// from the outcomes).
func TestWorkConserving(t *testing.T) {
	for _, policy := range Policies() {
		for _, pattern := range Patterns() {
			r := runScenario(t, policy, pattern, "bursty", 11)
			schedtest.WorkConserving(t, policy+"/"+pattern, spans(r), []int{0, 1, 2, 3})
		}
	}
}

// TestFIFONoOvertaking asserts FIFO's starvation-freedom: dispatch
// order equals admission order, so every job's wait is bounded by the
// service of the finite set of jobs ahead of it.
func TestFIFONoOvertaking(t *testing.T) {
	for _, pattern := range Patterns() {
		r := runScenario(t, "fifo", pattern, "heavytail", 5)
		schedtest.NoOvertaking(t, pattern, spans(r))
	}
}

// TestFIFOBoundedWait asserts a concrete starvation bound: under FIFO
// a job's wait never exceeds the summed service of all jobs admitted
// before it (the worst case is draining the entire backlog through
// one stream).
func TestFIFOBoundedWait(t *testing.T) {
	r := runScenario(t, "fifo", "severe", "bursty", 23)
	schedtest.BoundedWait(t, "fifo/severe", spans(r))
}

// TestBitIdenticalRepeats asserts the determinism contract: the same
// (policy, pattern, arrival, seed) tuple produces byte-for-byte
// identical results on every run, including every per-job timestamp.
func TestBitIdenticalRepeats(t *testing.T) {
	for _, policy := range Policies() {
		for _, arrival := range []string{"poisson", "bursty", "heavytail"} {
			policy, arrival := policy, arrival
			schedtest.BitIdentical(t, policy+"/"+arrival, func(seed uint64) any {
				return runScenario(t, policy, "moderate", arrival, seed)
			}, 99, 100)
		}
	}
}

// TestEveryJobRunsExactlyOnce asserts completeness: every submitted
// job appears in the outcome list with a valid lifecycle under every
// policy.
func TestEveryJobRunsExactlyOnce(t *testing.T) {
	for _, policy := range Policies() {
		r := runScenario(t, policy, "severe", "poisson", 42)
		schedtest.UniqueCompletion(t, policy, spans(r), 135, nil)
	}
}
