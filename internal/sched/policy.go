package sched

import (
	"fmt"
	"sort"
)

// fifo serves jobs strictly in admission order, packing onto the
// lowest-numbered idle stream. Its bounded-wait guarantee (no job is
// overtaken) is the starvation-freedom baseline the property tests
// assert.
type fifo struct{}

// FIFO returns the first-in-first-out policy.
func FIFO() Policy { return fifo{} }

// Name implements Policy.
func (fifo) Name() string { return "fifo" }

// Pick implements Policy.
func (fifo) Pick(pending []*Pending, idle []int, _ *View) (int, int) {
	return oldest(pending), idle[0]
}

// rr serves jobs in admission order but rotates placement across the
// partitions with a persistent cursor, spreading tenants over places
// instead of packing them — round-robin over partitions.
type rr struct {
	cursor int
}

// RoundRobin returns a round-robin-over-partitions policy. The cursor
// is per-run state: Run resets it, so sequential runs on one
// scheduler start placement from stream 0 like a fresh instance.
func RoundRobin() Policy { return &rr{} }

// Name implements Policy.
func (*rr) Name() string { return "rr" }

// reset implements resetter.
func (p *rr) reset() { p.cursor = 0 }

// resetter is implemented by stateful policies; Scheduler.Run calls
// it so every run starts from the same policy state.
type resetter interface{ reset() }

// Pick implements Policy.
func (p *rr) Pick(pending []*Pending, idle []int, v *View) (int, int) {
	// The idle stream whose partition comes soonest at or after the
	// cursor, wrapping around the partition ring; ties (two idle
	// streams on that partition) go to the lowest stream id. Rotating
	// over partitions rather than stream ids is what spreads work
	// when several streams share a place.
	np := v.Partitions
	best, bestDist := idle[0], np+1
	for _, s := range idle {
		d := (v.StreamPartition[s] - p.cursor + np) % np
		if d < bestDist {
			best, bestDist = s, d
		}
	}
	p.cursor = (v.StreamPartition[best] + 1) % np
	return oldest(pending), best
}

// sjf is the cost-aware policy: shortest-job-first over the admission
// queue, least-loaded placement over the idle streams. Short jobs
// overtake long ones, which minimizes mean latency but can starve
// heavy tenants under sustained light-job pressure — exactly the
// trade-off the fairness experiment quantifies.
type sjf struct{}

// SJF returns the shortest-job-first / least-loaded policy.
func SJF() Policy { return sjf{} }

// Name implements Policy.
func (sjf) Name() string { return "sjf" }

// Pick implements Policy.
func (sjf) Pick(pending []*Pending, idle []int, v *View) (int, int) {
	job := 0
	for i, p := range pending {
		if p.Est < pending[job].Est ||
			(p.Est == pending[job].Est && p.Seq < pending[job].Seq) {
			job = i
		}
	}
	stream := idle[0]
	for _, s := range idle[1:] {
		if v.StreamLoad[s] < v.StreamLoad[stream] {
			stream = s
		}
	}
	return job, stream
}

// oldest returns the index of the lowest admission sequence number.
// The scheduler appends in admission order, so this is index 0; the
// scan keeps the policies correct even if a future queue mutates
// order.
func oldest(pending []*Pending) int {
	at := 0
	for i, p := range pending {
		if p.Seq < pending[at].Seq {
			at = i
		}
	}
	return at
}

// Policies lists the built-in policy names in stable order.
func Policies() []string {
	names := make([]string, 0, len(policyFactories))
	for name := range policyFactories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// policyFactories maps names to fresh-instance constructors; RR and
// adaptive are stateful, so ByName must return a new value each call.
var policyFactories = map[string]func() Policy{
	"fifo":     FIFO,
	"rr":       RoundRobin,
	"sjf":      SJF,
	"adaptive": Adaptive,
}

// ByName returns a fresh instance of a built-in policy: "fifo", "rr",
// "sjf", or "adaptive".
func ByName(name string) (Policy, error) {
	f, ok := policyFactories[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown policy %q (have %v)", name, Policies())
	}
	return f(), nil
}
