package sched

import (
	"testing"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
)

// FuzzSubmit fuzzes online admission over the job shapes validation
// gates on — empty task lists, nil tasks, arbitrary dependency edges —
// under every slicing cap. The invariants: Submit never panics,
// structurally invalid jobs are rejected with a -1 index before
// admission, an active slicing cap additionally rejects any job whose
// dependency edges are not dependency-ordered, and a well-formed job
// is admitted, dispatched and completed by the engine.
func FuzzSubmit(f *testing.F) {
	f.Add(uint8(3), int8(-1), int8(0), uint8(9), uint8(2))
	f.Add(uint8(0), int8(-1), int8(0), uint8(9), uint8(0))  // no tasks
	f.Add(uint8(4), int8(2), int8(0), uint8(9), uint8(1))   // nil task
	f.Add(uint8(4), int8(-1), int8(3), uint8(1), uint8(1))  // forward dep
	f.Add(uint8(4), int8(-1), int8(0), uint8(1), uint8(2))  // backward dep
	f.Add(uint8(8), int8(-1), int8(-2), uint8(5), uint8(0)) // dangling dep, no slicing
	f.Fuzz(func(t *testing.T, nTasks uint8, nilAt, depTarget int8, depAt, sliceCap uint8) {
		n := int(nTasks) % 9
		tasks := make([]*core.Task, n)
		for k := range tasks {
			tasks[k] = &core.Task{
				ID:         k,
				Cost:       device.KernelCost{Name: "synthetic", Flops: 1e8},
				StreamHint: -1,
			}
		}
		if i := int(nilAt); i >= 0 && i < n {
			tasks[i] = nil
		}
		if i := int(depAt) % 9; i < n && tasks[i] != nil {
			tasks[i].DependsOn = []int{int(depTarget)}
		}
		job := Job{ID: 1, Tenant: "fuzz", Tasks: tasks}

		ctx, err := hstreams.Init(hstreams.Config{Partitions: 2})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(ctx, WithSlicing(int(sliceCap)%3))
		if err != nil {
			t.Fatal(err)
		}
		idx, err := s.Submit(&job)
		structurallyBad := n == 0 || (int(nilAt) >= 0 && int(nilAt) < n)
		switch {
		case structurallyBad:
			if err == nil || idx != -1 {
				t.Fatalf("Submit admitted a structurally invalid job: idx %d, err %v", idx, err)
			}
			return
		case s.sliceMax > 0 && Sliceable(tasks) != nil:
			if err == nil || idx != -1 {
				t.Fatalf("Submit admitted an unsliceable job under WithSlicing(%d): idx %d, err %v", s.sliceMax, idx, err)
			}
			return
		case err != nil:
			// Dependency edges the slicing gate does not police (cap 0)
			// can still be illegal at dispatch; rejection is fine, a
			// panic is not.
			return
		}
		if idx != 0 {
			t.Fatalf("first admitted job got outcome index %d", idx)
		}
		ctx.Engine().Run()
		o := s.Outcomes()[idx]
		if s.Err() != nil {
			return // failed at dispatch (e.g. dangling dependency), not a panic
		}
		if o.Failed || o.Done < o.Start {
			t.Fatalf("admitted job finished in a broken state: %+v", o)
		}
	})
}
