package sched

import (
	"reflect"
	"testing"

	"micstream/internal/model"
	"micstream/internal/sim"
)

// driftJobs builds a deterministic two-phase workload whose tenant mix
// shifts hard: tenant A dominates the first window with light jobs,
// tenant B floods the second with jobs heavy enough to cross the
// drift threshold.
func driftJobs() []Job {
	var jobs []Job
	id := 0
	for i := 0; i < 12; i++ {
		jobs = append(jobs, syntheticJob(id, "A", sim.Time(i)*1_000_000, 2e8))
		id++
	}
	for i := 0; i < 12; i++ {
		jobs = append(jobs, syntheticJob(id, "B", sim.Time(40+i)*1_000_000, 4e9))
		id++
	}
	return jobs
}

// The adaptive policy must re-divide the stream allocation when the
// observed tenant mix drifts: the A-only opening plan cannot survive
// B's heavy second phase.
func TestAdaptiveRepartitionsOnDrift(t *testing.T) {
	ctx := newCtx(t, 4)
	pol := Adaptive().(*adaptive)
	s, err := New(ctx, WithPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(driftJobs()); err != nil {
		t.Fatal(err)
	}
	if pol.plans < 2 {
		t.Errorf("adaptive re-planned %d times, want ≥ 2 (initial plan + drift re-plan)", pol.plans)
	}
	if shareB := pol.planned["B"]; shareB < 0.5 {
		t.Errorf("after the shift, B carries %.0f%% of the predicted work — final plan %v should reflect it",
			shareB*100, pol.planned)
	}
}

// Adaptive runs are a pure function of (platform, job list): repeated
// runs on fresh platforms are bit-identical, including timestamps.
// (The scenario-based determinism sweep in property_test.go covers
// adaptive too, via Policies(); this pins the drift workload.)
func TestAdaptiveBitIdenticalOnDriftWorkload(t *testing.T) {
	run := func() *Result {
		ctx := newCtx(t, 4)
		s, err := New(ctx, WithPolicy(Adaptive()))
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Run(driftJobs())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("adaptive runs are not bit-identical")
	}
}

// A calibrated model can be injected; the policy then never builds its
// own, so tuner and scheduler share one set of predictions.
func TestAdaptiveWithCalibratedModel(t *testing.T) {
	ctx := newCtx(t, 4)
	cfg := ctx.Config()
	m := model.New(cfg.Device, cfg.Link)
	m.ComputeScale = 1.1 // pretend Fit ran
	pol := AdaptiveWithModel(m).(*adaptive)
	s, err := New(ctx, WithPolicy(pol))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(driftJobs()); err != nil {
		t.Fatal(err)
	}
	if pol.m != m {
		t.Fatal("bind replaced the injected model")
	}
}

// The policy's model estimates rank a job list the same way the
// scheduler's own estimator does for uniform jobs, and every stream
// carries the tenant label while busy.
func TestStreamTenantView(t *testing.T) {
	ctx := newCtx(t, 2)
	var sawTenant bool
	probe := policyFunc(func(pending []*Pending, idle []int, v *View) (int, int) {
		for _, tn := range v.StreamTenant {
			if tn == "A" {
				sawTenant = true
			}
		}
		return oldest(pending), idle[0]
	})
	s, err := New(ctx, WithPolicy(probe))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		syntheticJob(0, "A", 0, 1e9),
		syntheticJob(1, "B", 0, 1e9),
		syntheticJob(2, "B", 0, 1e9),
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !sawTenant {
		t.Error("View.StreamTenant never exposed tenant A while its job was in flight")
	}
	if len(r.Jobs) != 3 {
		t.Fatalf("want 3 outcomes, got %d", len(r.Jobs))
	}
}

// policyFunc adapts a function to the Policy interface for probes.
type policyFunc func(pending []*Pending, idle []int, v *View) (int, int)

func (policyFunc) Name() string { return "probe" }

func (f policyFunc) Pick(pending []*Pending, idle []int, v *View) (int, int) {
	return f(pending, idle, v)
}
