package sched

import (
	"testing"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/sim"
)

// newCtx builds a timing-only platform with the given partition count
// (one stream per partition).
func newCtx(t *testing.T, partitions int) *hstreams.Context {
	t.Helper()
	ctx, err := hstreams.Init(hstreams.Config{Partitions: partitions, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// syntheticJob builds a one-task compute job with the given flops.
func syntheticJob(id int, tenant string, arrival sim.Time, flops float64) Job {
	return Job{
		ID:      id,
		Tenant:  tenant,
		Arrival: arrival,
		Tasks: []*core.Task{{
			ID:         0,
			Cost:       device.KernelCost{Name: "synthetic", Flops: flops},
			StreamHint: -1,
		}},
	}
}

func TestSchedulerBasics(t *testing.T) {
	ctx := newCtx(t, 4)
	s, err := New(ctx, WithPolicy(FIFO()))
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, syntheticJob(i, string(rune('A'+i%3)), sim.Time(i)*sim.Time(sim.Millisecond)/4, 5e8))
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != len(jobs) {
		t.Fatalf("got %d outcomes, want %d", len(r.Jobs), len(jobs))
	}
	for _, o := range r.Jobs {
		if o.Stream < 0 || o.Stream >= ctx.NumStreams() {
			t.Errorf("job %d ran on invalid stream %d", o.ID, o.Stream)
		}
		if o.Start < o.Arrival {
			t.Errorf("job %d started %v before its arrival %v", o.ID, o.Start, o.Arrival)
		}
		if o.Done <= o.Start {
			t.Errorf("job %d completed %v not after its start %v", o.ID, o.Done, o.Start)
		}
		if o.Slowdown() < 1 {
			t.Errorf("job %d slowdown %v < 1", o.ID, o.Slowdown())
		}
	}
	if len(r.Tenants) != 3 {
		t.Fatalf("got %d tenants, want 3", len(r.Tenants))
	}
	total := 0
	for _, ts := range r.Tenants {
		total += ts.Jobs
		if ts.P50 > ts.P95 || ts.P95 > ts.P99 {
			t.Errorf("tenant %s percentiles not ordered: %v %v %v", ts.Tenant, ts.P50, ts.P95, ts.P99)
		}
		if ts.Throughput <= 0 {
			t.Errorf("tenant %s throughput %v not positive", ts.Tenant, ts.Throughput)
		}
	}
	if total != len(jobs) {
		t.Errorf("tenant job counts sum to %d, want %d", total, len(jobs))
	}
	if r.Makespan <= 0 {
		t.Error("makespan should be positive")
	}
	if r.JainSlowdown <= 0 || r.JainSlowdown > 1+1e-12 {
		t.Errorf("Jain slowdown index %v out of (0,1]", r.JainSlowdown)
	}
	if r.Tenant("A") == nil || r.Tenant("nope") != nil {
		t.Error("Tenant lookup misbehaves")
	}
}

func TestSJFOrdersShortFirst(t *testing.T) {
	ctx := newCtx(t, 1)
	s, err := New(ctx, WithPolicy(SJF()))
	if err != nil {
		t.Fatal(err)
	}
	// A blocker occupies the single stream; a long and a short job
	// arrive while it runs. SJF must run the short one first even
	// though the long one arrived earlier.
	jobs := []Job{
		syntheticJob(0, "blocker", 0, 1e9),
		syntheticJob(1, "long", sim.Time(sim.Microsecond), 8e8),
		syntheticJob(2, "short", 2*sim.Time(sim.Microsecond), 1e8),
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.Jobs[2].Start < r.Jobs[1].Start) {
		t.Fatalf("SJF should start the short job (at %v) before the long one (at %v)",
			r.Jobs[2].Start, r.Jobs[1].Start)
	}
	// FIFO on the same workload must preserve arrival order.
	ctx2 := newCtx(t, 1)
	s2, _ := New(ctx2, WithPolicy(FIFO()))
	r2, err := s2.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !(r2.Jobs[1].Start < r2.Jobs[2].Start) {
		t.Fatal("FIFO should preserve arrival order")
	}
}

func TestRoundRobinRotatesPlacement(t *testing.T) {
	ctx := newCtx(t, 4)
	s, err := New(ctx, WithPolicy(RoundRobin()))
	if err != nil {
		t.Fatal(err)
	}
	// Jobs spaced far apart: every dispatch sees all four streams
	// idle, so placement is purely the cursor's choice.
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, syntheticJob(i, "t", sim.Time(i)*sim.Time(100*sim.Millisecond), 1e8))
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range r.Jobs {
		if o.Stream != i%4 {
			t.Errorf("job %d placed on stream %d, want %d", i, o.Stream, i%4)
		}
	}
}

func TestFIFOPacksLowestStream(t *testing.T) {
	ctx := newCtx(t, 4)
	s, _ := New(ctx, WithPolicy(FIFO()))
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, syntheticJob(i, "t", sim.Time(i)*sim.Time(100*sim.Millisecond), 1e8))
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range r.Jobs {
		if o.Stream != 0 {
			t.Errorf("job %d placed on stream %d; FIFO packs idle stream 0", i, o.Stream)
		}
	}
}

func TestSequentialRunsCompose(t *testing.T) {
	ctx := newCtx(t, 2)
	s, _ := New(ctx, WithPolicy(FIFO()))
	r1, err := s.Run([]Job{syntheticJob(0, "a", 0, 1e8)})
	if err != nil {
		t.Fatal(err)
	}
	// Second run: arrivals before ctx.Now() clamp to it.
	r2, err := s.Run([]Job{syntheticJob(1, "a", 0, 1e8)})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Jobs[0].Arrival < r1.Jobs[0].Done {
		t.Fatalf("second run admitted at %v, before first run finished at %v",
			r2.Jobs[0].Arrival, r1.Jobs[0].Done)
	}
}

func TestSchedulerErrors(t *testing.T) {
	ctx := newCtx(t, 1)
	if _, err := New(nil); err == nil {
		t.Error("nil context should error")
	}
	if _, err := New(ctx, WithPolicy(nil)); err == nil {
		t.Error("nil policy should error")
	}
	s, _ := New(ctx)
	if _, err := s.Run([]Job{{ID: 0, Tenant: "x"}}); err == nil {
		t.Error("job without tasks should error")
	}
	if _, err := s.Run([]Job{syntheticJob(0, "x", -5, 1e6)}); err == nil {
		t.Error("negative arrival should error")
	}
	if _, err := ByName("lifo"); err == nil {
		t.Error("unknown policy name should error")
	}
	for _, name := range Policies() {
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
}

func TestBuildScenario(t *testing.T) {
	ctx := newCtx(t, 4)
	jobs, err := BuildScenario(ctx, ScenarioConfig{Pattern: "severe", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 5+10+40+80 {
		t.Fatalf("severe scenario has %d jobs, want 135", len(jobs))
	}
	counts := map[string]int{}
	for _, j := range jobs {
		counts[j.Tenant]++
		if len(j.Tasks) != 2 {
			t.Fatalf("job %d has %d tasks, want default 2", j.ID, len(j.Tasks))
		}
		if j.Arrival < 0 {
			t.Fatalf("job %d has negative arrival", j.ID)
		}
	}
	want := map[string]int{"A": 5, "B": 10, "C": 40, "D": 80}
	for tenant, n := range want {
		if counts[tenant] != n {
			t.Errorf("tenant %s has %d jobs, want %d", tenant, counts[tenant], n)
		}
	}
	if _, err := BuildScenario(ctx, ScenarioConfig{Pattern: "catastrophic"}); err == nil {
		t.Error("unknown pattern should error")
	}
	if _, err := BuildScenario(ctx, ScenarioConfig{Arrival: "uniform"}); err == nil {
		t.Error("unknown arrival process should error")
	}
}

func TestScenarioEndToEnd(t *testing.T) {
	for _, arrival := range []string{"poisson", "bursty", "heavytail"} {
		ctx := newCtx(t, 4)
		jobs, err := BuildScenario(ctx, ScenarioConfig{Pattern: "moderate", Arrival: arrival, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		s, _ := New(ctx, WithPolicy(SJF()))
		r, err := s.Run(jobs)
		if err != nil {
			t.Fatalf("%s: %v", arrival, err)
		}
		if len(r.Jobs) != len(jobs) || r.Makespan <= 0 {
			t.Fatalf("%s: incomplete run", arrival)
		}
	}
}

func TestRoundRobinResetsBetweenRuns(t *testing.T) {
	// Sequential runs on one scheduler must place like fresh runs:
	// the RR cursor is per-run state.
	batch := func() []Job {
		return []Job{
			syntheticJob(0, "t", 0, 1e8),
			syntheticJob(1, "t", sim.Time(100*sim.Millisecond), 1e8),
			syntheticJob(2, "t", sim.Time(200*sim.Millisecond), 1e8),
		}
	}
	ctx := newCtx(t, 4)
	s, _ := New(ctx, WithPolicy(RoundRobin()))
	r1, err := s.Run(batch())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(batch())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Jobs {
		if r1.Jobs[i].Stream != r2.Jobs[i].Stream {
			t.Fatalf("job %d placed on stream %d in run 1 but %d in run 2; RR cursor not reset",
				i, r1.Jobs[i].Stream, r2.Jobs[i].Stream)
		}
	}
}

func TestScenarioRejectsNegativeSizes(t *testing.T) {
	ctx := newCtx(t, 2)
	if _, err := BuildScenario(ctx, ScenarioConfig{KernelFlops: -2e8}); err == nil {
		t.Error("negative KernelFlops should error")
	}
	if _, err := BuildScenario(ctx, ScenarioConfig{XferBytes: -1}); err == nil {
		t.Error("negative XferBytes should error")
	}
}

func TestRoundRobinRotatesOverPartitions(t *testing.T) {
	// 2 partitions × 2 streams: streams 0,1 share partition 0 and
	// streams 2,3 share partition 1. RR must alternate partitions —
	// 0,2,1,3 — not walk stream ids 0,1,2,3, which would co-schedule
	// consecutive jobs on a shared place while the other place idles.
	ctx, err := hstreams.Init(hstreams.Config{Partitions: 2, StreamsPerPartition: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := New(ctx, WithPolicy(RoundRobin()))
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, syntheticJob(i, "t", sim.Time(i)*sim.Time(100*sim.Millisecond), 1e8))
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Which stream of a partition's pair is irrelevant (they contend
	// for the same place); the property is that consecutive jobs land
	// on alternating partitions.
	for i, o := range r.Jobs {
		part := o.Stream / 2
		if part != i%2 {
			t.Errorf("job %d placed on stream %d (partition %d), want partition %d",
				i, o.Stream, part, i%2)
		}
	}
}

func TestScenarioOnFunctionalContext(t *testing.T) {
	// A functional context moves real data; scenario buffers must
	// have real backing instead of panicking on the first transfer.
	ctx, err := hstreams.Init(hstreams.Config{Partitions: 2, ExecuteKernels: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := BuildScenario(ctx, ScenarioConfig{Pattern: "balanced", Seed: 2, JobScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	// JobScale 0 defaults to 1 → 80 jobs; trim for speed.
	jobs = jobs[:8]
	s, _ := New(ctx)
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != 8 {
		t.Fatalf("completed %d jobs, want 8", len(r.Jobs))
	}
}

func TestRunRejectsNilTask(t *testing.T) {
	ctx := newCtx(t, 1)
	s, _ := New(ctx)
	if _, err := s.Run([]Job{{ID: 3, Tenant: "x", Tasks: []*core.Task{nil}}}); err == nil {
		t.Error("nil task should error, not panic in the event loop")
	}
}

func TestPolicyCannotCorruptView(t *testing.T) {
	ctx := newCtx(t, 4)
	s, _ := New(ctx, WithPolicy(vandalPolicy{}))
	jobs := []Job{
		syntheticJob(0, "t", 0, 1e8),
		syntheticJob(1, "t", sim.Time(100*sim.Millisecond), 1e8),
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range r.Jobs {
		if o.Stream != 0 {
			t.Errorf("job %d on stream %d; mutating the View must not corrupt scheduler state", i, o.Stream)
		}
	}
}

func TestWithStreamsSubset(t *testing.T) {
	// 2 devices × 2 partitions: streams 0,1 belong to device 0 and
	// streams 2,3 to device 1. A scheduler owning device 1's streams
	// must place only there, report global stream ids, and expose a
	// 2-partition view to its policy.
	ctx, err := hstreams.Init(hstreams.Config{Devices: 2, Partitions: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(ctx, WithStreams(2, 3), WithPolicy(RoundRobin()))
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, syntheticJob(i, "t", sim.Time(i)*sim.Time(100*sim.Millisecond), 1e8))
	}
	r, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range r.Jobs {
		if o.Stream != 2+i%2 {
			t.Errorf("job %d placed on stream %d, want %d", i, o.Stream, 2+i%2)
		}
	}
	if got := s.Streams(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Streams() = %v, want [2 3]", got)
	}

	if _, err := New(ctx, WithStreams()); err == nil {
		t.Error("empty stream set should error")
	}
	if _, err := New(ctx, WithStreams(0, 0)); err == nil {
		t.Error("duplicate stream id should error")
	}
	if _, err := New(ctx, WithStreams(9)); err == nil {
		t.Error("out-of-range stream id should error")
	}
}

func TestSubmitOnline(t *testing.T) {
	// The embedded mode: Reset + Submit at engine instants must match
	// the batch Run on the same arrivals.
	build := func() []Job {
		return []Job{
			syntheticJob(0, "a", 0, 5e8),
			syntheticJob(1, "b", sim.Time(sim.Millisecond), 2e8),
			syntheticJob(2, "a", 2*sim.Time(sim.Millisecond), 1e8),
		}
	}
	ctx1 := newCtx(t, 2)
	s1, _ := New(ctx1)
	batch, err := s1.Run(build())
	if err != nil {
		t.Fatal(err)
	}

	ctx2 := newCtx(t, 2)
	s2, _ := New(ctx2)
	s2.Reset()
	var completions []JobOutcome
	s2.SetOnDone(func(o JobOutcome) { completions = append(completions, o) })
	jobs := build()
	eng := ctx2.Engine()
	for i := range jobs {
		job := &jobs[i]
		eng.At(job.Arrival, func() {
			if _, err := s2.Submit(job); err != nil {
				t.Errorf("Submit: %v", err)
			}
		})
	}
	eng.Run()
	if err := s2.Err(); err != nil {
		t.Fatal(err)
	}
	online := s2.Outcomes()
	if len(online) != len(batch.Jobs) {
		t.Fatalf("online run completed %d jobs, want %d", len(online), len(batch.Jobs))
	}
	for i := range online {
		if online[i].Start != batch.Jobs[i].Start || online[i].Done != batch.Jobs[i].Done ||
			online[i].Stream != batch.Jobs[i].Stream {
			t.Errorf("job %d: online %+v != batch %+v", i, online[i], batch.Jobs[i])
		}
	}
	if len(completions) != len(jobs) {
		t.Errorf("OnDone fired %d times, want %d", len(completions), len(jobs))
	}
	if s2.QueueDepth() != 0 || s2.InFlight() != 0 {
		t.Errorf("drained scheduler reports queue %d, in-flight %d", s2.QueueDepth(), s2.InFlight())
	}

	if _, err := s2.Submit(&Job{ID: 9}); err == nil {
		t.Error("Submit of a task-less job should error")
	}
}

func TestEarliestFreeEstimates(t *testing.T) {
	ctx := newCtx(t, 1)
	s, _ := New(ctx)
	s.Reset()
	if got, now := s.EarliestFree(), ctx.Now(); got != now {
		t.Fatalf("idle scheduler EarliestFree = %v, want now %v", got, now)
	}
	job := syntheticJob(0, "t", 0, 5e8)
	if _, err := s.Submit(&job); err != nil {
		t.Fatal(err)
	}
	if got := s.EarliestFree(); got <= ctx.Now() {
		t.Fatalf("busy scheduler EarliestFree = %v, want after now %v", got, ctx.Now())
	}
	if s.PendingBacklog() != 0 {
		t.Errorf("no queued jobs but backlog %v", s.PendingBacklog())
	}
	job2 := syntheticJob(1, "t", 0, 5e8)
	if _, err := s.Submit(&job2); err != nil {
		t.Fatal(err)
	}
	if s.PendingBacklog() <= 0 {
		t.Error("queued job should contribute backlog")
	}
	ctx.Drain()
}

// vandalPolicy scribbles over every View slice before picking like
// FIFO; the scheduler must be immune.
type vandalPolicy struct{}

func (vandalPolicy) Name() string { return "vandal" }
func (vandalPolicy) Pick(pending []*Pending, idle []int, v *View) (int, int) {
	for i := range v.StreamPartition {
		v.StreamPartition[i] = -1
	}
	for i := range v.StreamLoad {
		v.StreamLoad[i] = -1
	}
	return 0, idle[0]
}

// saboteurPolicy behaves like FIFO for its first good picks, then
// returns an invalid stream — the mid-run policy failure the error
// path must survive without silently dropping admitted jobs.
type saboteurPolicy struct {
	good  int
	picks int
}

func (p *saboteurPolicy) Name() string { return "saboteur" }

func (p *saboteurPolicy) Pick(pending []*Pending, idle []int, _ *View) (int, int) {
	p.picks++
	if p.picks > p.good {
		return 0, -1
	}
	return 0, idle[0]
}

func TestPolicyErrorSurfacesPendingJobs(t *testing.T) {
	// Regression: a policy error mid-run used to strand every job still
	// in the admission queue — no outcome, no onDone, a nil Result.
	// Jobs arrive far enough apart that the first two complete before
	// the saboteur's third pick aborts the run.
	ctx := newCtx(t, 1)
	s, err := New(ctx, WithPolicy(&saboteurPolicy{good: 2}))
	if err != nil {
		t.Fatal(err)
	}
	var fired []JobOutcome
	s.SetOnDone(func(o JobOutcome) { fired = append(fired, o) })
	gap := sim.Time(20 * sim.Millisecond)
	jobs := []Job{
		syntheticJob(0, "a", 0, 5e8),
		syntheticJob(1, "b", gap, 5e8),
		syntheticJob(2, "a", 2*gap, 5e8),
		syntheticJob(3, "b", 2*gap, 5e8),
		syntheticJob(4, "a", 3*gap, 5e8),
	}
	r, err := s.Run(jobs)
	if err == nil {
		t.Fatal("saboteur policy should abort the run")
	}
	if r == nil {
		t.Fatal("aborted run should still return the partial result")
	}
	if len(r.Jobs) != len(jobs) {
		t.Fatalf("partial result lists %d jobs, want %d", len(r.Jobs), len(jobs))
	}
	ran, failed := 0, 0
	for _, o := range r.Jobs {
		switch {
		case o.Failed:
			failed++
			if o.Done != 0 {
				t.Errorf("failed job %d has completion time %v", o.ID, o.Done)
			}
		default:
			ran++
			if o.Done <= o.Start {
				t.Errorf("completed job %d has no lifecycle", o.ID)
			}
		}
	}
	if ran != 2 || failed != 3 {
		t.Fatalf("got %d completed + %d failed, want 2 + 3", ran, failed)
	}
	if r.Failed != failed {
		t.Errorf("Result.Failed = %d, want %d", r.Failed, failed)
	}
	if len(fired) != len(jobs) {
		t.Errorf("onDone fired %d times, want one per admitted job (%d)", len(fired), len(jobs))
	}
	// Failed jobs must not pollute the per-tenant latency aggregates.
	for _, ts := range r.Tenants {
		if ts.Jobs != 1 {
			t.Errorf("tenant %s aggregates %d jobs, want only the completed one", ts.Tenant, ts.Jobs)
		}
	}
}

func TestWithdrawRemovesPendingJob(t *testing.T) {
	// Embedded mode: one stream, three simultaneous submissions — the
	// first dispatches, the other two queue. Withdrawing the middle job
	// must remove exactly it, and a dispatched job must refuse.
	ctx := newCtx(t, 1)
	s, err := New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	jobs := []Job{
		syntheticJob(0, "a", 0, 5e8),
		syntheticJob(1, "b", 0, 5e8),
		syntheticJob(2, "c", 0, 5e8),
	}
	var idxs []int
	for i := range jobs {
		idx, err := s.Submit(&jobs[i])
		if err != nil {
			t.Fatal(err)
		}
		idxs = append(idxs, idx)
	}
	if got := s.PendingJobs(); len(got) != 2 || got[0].Index != idxs[1] || got[1].Index != idxs[2] {
		t.Fatalf("PendingJobs = %+v, want the two queued jobs in admission order", got)
	}
	if _, ok := s.Withdraw(idxs[0]); ok {
		t.Fatal("withdrawing a dispatched job should fail")
	}
	if job, ok := s.Withdraw(idxs[1]); !ok || job.ID != 1 {
		t.Fatalf("Withdraw(queued) = %v, %v; want job 1", job, ok)
	}
	if _, ok := s.Withdraw(idxs[1]); ok {
		t.Fatal("double withdraw should fail")
	}
	if s.QueueDepth() != 1 {
		t.Fatalf("queue depth %d after withdraw, want 1", s.QueueDepth())
	}
	ctx.Drain()
	done := 0
	for _, o := range s.Outcomes() {
		if o.Done > 0 {
			done++
		}
	}
	if done != 2 {
		t.Fatalf("%d jobs completed, want 2 (one withdrawn)", done)
	}
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
}
