package sched

import (
	"fmt"
	"math"
	"sort"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/sim"
	"micstream/internal/workload"
)

// Load-imbalance patterns: per-tenant offered load expressed as job
// counts, following the four-way taxonomy used by the streaming
// follow-up studies (balanced through severe skew). Tenant D offers
// 16× tenant A's load under "severe".
var patternWeights = map[string][]int{
	"balanced": {20, 20, 20, 20},
	"mild":     {10, 20, 30, 40},
	"moderate": {5, 15, 30, 50},
	"severe":   {5, 10, 40, 80},
}

// Patterns lists the built-in load-imbalance pattern names in stable
// order.
func Patterns() []string {
	names := make([]string, 0, len(patternWeights))
	for name := range patternWeights {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PatternWeights returns the per-tenant job-count weights of a
// built-in pattern.
func PatternWeights(name string) ([]int, error) {
	w, ok := patternWeights[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown pattern %q (have %v)", name, Patterns())
	}
	return append([]int(nil), w...), nil
}

// ScenarioConfig parameterizes a synthetic multi-tenant scenario:
// four tenants (A-D) submitting identical offload jobs at rates set by
// a load-imbalance pattern, with arrivals drawn from a deterministic
// arrival process over a fixed window.
type ScenarioConfig struct {
	// Pattern is the load-imbalance pattern name (default "balanced").
	Pattern string
	// Arrival is the arrival process: any name workload.Arrivals
	// accepts — "poisson", "bursty", "heavytail", "diurnal",
	// "correlated" (default "poisson").
	Arrival string
	// Seed drives every random draw (default 1).
	Seed uint64
	// JobScale multiplies the pattern's per-tenant job counts
	// (default 1).
	JobScale int
	// WindowNs is the arrival window; tenant rates are weight/window
	// (default 40 ms).
	WindowNs int64
	// TilesPerJob is how many H2D+kernel+D2H tasks one job carries
	// (default 2).
	TilesPerJob int
	// KernelFlops is the total useful work of one job (default 2e8 —
	// about a millisecond on a quarter-device partition).
	KernelFlops float64
	// XferBytes is the total per-direction transfer volume of one job
	// (default 1 MiB).
	XferBytes int64
	// SizeSpread makes job sizes heterogeneous: each job's kernel
	// work is KernelFlops scaled by SizeSpread^u for u uniform in
	// [-1, 1], so jobs span a SizeSpread² range with geometric mean
	// KernelFlops. 0 defaults to 4 (a 16× light-to-heavy range, the
	// mix that separates cost-aware from arrival-order policies); 1
	// makes every job identical.
	SizeSpread float64
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Pattern == "" {
		c.Pattern = "balanced"
	}
	if c.Arrival == "" {
		c.Arrival = "poisson"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.JobScale == 0 {
		c.JobScale = 1
	}
	if c.WindowNs == 0 {
		c.WindowNs = 40_000_000
	}
	if c.TilesPerJob == 0 {
		c.TilesPerJob = 2
	}
	if c.KernelFlops == 0 {
		c.KernelFlops = 2e8
	}
	if c.XferBytes == 0 {
		c.XferBytes = 1 << 20
	}
	if c.SizeSpread == 0 {
		c.SizeSpread = 4
	}
	return c
}

// TenantNames returns the scenario's tenant labels ("A".."D").
func TenantNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	return names
}

// BuildScenario allocates the scenario's shared virtual buffers on ctx
// and returns the full job list in tenant-major order, ready for
// Scheduler.Run. Everything is a pure function of the configuration,
// so the same config always produces the same jobs.
func BuildScenario(ctx *hstreams.Context, cfg ScenarioConfig) ([]Job, error) {
	cfg = cfg.withDefaults()
	weights, err := PatternWeights(cfg.Pattern)
	if err != nil {
		return nil, err
	}
	if cfg.JobScale < 0 || cfg.WindowNs <= 0 || cfg.TilesPerJob < 1 || cfg.SizeSpread < 1 ||
		cfg.KernelFlops < 0 || cfg.XferBytes < 0 {
		return nil, fmt.Errorf("sched: invalid scenario config %+v", cfg)
	}

	tileBytes := int(cfg.XferBytes) / cfg.TilesPerJob
	if tileBytes < 1 {
		tileBytes = 1
	}
	// A functional context moves real data on every transfer, so its
	// buffers need real backing; timing-only contexts use data-less
	// virtual buffers.
	var in, out *hstreams.Buffer
	if ctx.Config().ExecuteKernels {
		in = hstreams.Alloc1D(ctx, "scenario/in", make([]byte, tileBytes))
		out = hstreams.Alloc1D(ctx, "scenario/out", make([]byte, tileBytes))
	} else {
		in = hstreams.AllocVirtual(ctx, "scenario/in", tileBytes, 1)
		out = hstreams.AllocVirtual(ctx, "scenario/out", tileBytes, 1)
	}
	tileFlops := cfg.KernelFlops / float64(cfg.TilesPerJob)

	// One seed per tenant, drawn from the scenario seed so tenants
	// have independent but reproducible arrival streams.
	seeder := workload.NewRNG(cfg.Seed)
	tenants := TenantNames(len(weights))

	var jobs []Job
	id := 0
	for ti, tenant := range tenants {
		count := weights[ti] * cfg.JobScale
		tseed := seeder.Uint64()
		sizes := workload.NewRNG(seeder.Uint64())
		arrivals, err := buildArrivals(cfg.Arrival, tseed, count, float64(cfg.WindowNs)/float64(max(count, 1)))
		if err != nil {
			return nil, err
		}
		for j := 0; j < count; j++ {
			factor := math.Pow(cfg.SizeSpread, 2*sizes.Float64()-1)
			tasks := make([]*core.Task, cfg.TilesPerJob)
			for k := range tasks {
				tasks[k] = &core.Task{
					ID: k,
					H2D: []core.TransferSpec{
						core.Xfer(in, 0, tileBytes),
					},
					Cost: device.KernelCost{
						Name:  fmt.Sprintf("%s/job%d", tenant, id),
						Flops: tileFlops * factor,
						Bytes: float64(tileBytes) * 2,
					},
					D2H: []core.TransferSpec{
						core.Xfer(out, 0, tileBytes),
					},
					StreamHint: -1,
				}
			}
			jobs = append(jobs, Job{
				ID:      id,
				Tenant:  tenant,
				Arrival: sim.Time(arrivals[j]),
				Tasks:   tasks,
			})
			id++
		}
	}
	return jobs, nil
}

// buildArrivals dispatches to the named workload arrival generator
// with a mean inter-arrival gap.
func buildArrivals(kind string, seed uint64, n int, meanGapNs float64) ([]int64, error) {
	if n == 0 {
		return nil, nil
	}
	return workload.Arrivals(kind, seed, n, meanGapNs)
}
