package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanMedianStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean = %v, want 5", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2.138) > 0.01 {
		t.Fatalf("stddev = %v, want ≈2.138", sd)
	}
	if md := Median(xs); md != 4.5 {
		t.Fatalf("median = %v, want 4.5", md)
	}
	if md := Median([]float64{3, 1, 2}); md != 2 {
		t.Fatalf("odd median = %v, want 2", md)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty inputs should give 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-element stddev should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{5, 1, 9, 1}
	if v, i := Min(xs); v != 1 || i != 1 {
		t.Fatalf("Min = (%v,%d), want (1,1) — first occurrence", v, i)
	}
	if v, i := Max(xs); v != 9 || i != 2 {
		t.Fatalf("Max = (%v,%d), want (9,2)", v, i)
	}
	if _, i := Min(nil); i != -1 {
		t.Fatal("empty Min index should be -1")
	}
	if _, i := Max(nil); i != -1 {
		t.Fatal("empty Max index should be -1")
	}
}

func TestTrimmedMeanMatchesPaperProtocol(t *testing.T) {
	// 11 runs, first is warmup.
	runs := []float64{100, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10}
	if m := TrimmedMean(runs, 1); m != 10 {
		t.Fatalf("trimmed mean = %v, want 10", m)
	}
	if m := TrimmedMean(runs, 0); m != Mean(runs) {
		t.Fatalf("skip=0 should be plain mean")
	}
	if m := TrimmedMean([]float64{1}, 5); m != 0 {
		t.Fatalf("over-trim should give 0, got %v", m)
	}
	if m := TrimmedMean(runs, -3); m != Mean(runs) {
		t.Fatalf("negative skip clamps to 0, got %v", m)
	}
}

func TestLinearFitRecoversLine(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	a, b, r2, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Fatalf("fit = (%v, %v, %v), want (1, 2, 1)", a, b, r2)
	}
}

func TestLinearFitFlatSeries(t *testing.T) {
	_, b, r2, err := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 || r2 != 1 {
		t.Fatalf("flat fit = slope %v r2 %v, want 0 and 1", b, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, _, _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, _, _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestIsMonotone(t *testing.T) {
	up := []float64{1, 2, 3, 3, 4}
	if !IsMonotone(up, +1, 0) {
		t.Fatal("non-decreasing series rejected")
	}
	if IsMonotone(up, -1, 0) {
		t.Fatal("increasing series accepted as decreasing")
	}
	noisy := []float64{1, 2, 1.95, 3}
	if !IsMonotone(noisy, +1, 0.05) {
		t.Fatal("2.5% dip rejected at 5% tolerance")
	}
	if IsMonotone(noisy, +1, 0.01) {
		t.Fatal("2.5% dip accepted at 1% tolerance")
	}
}

func TestIsRoughlyConstant(t *testing.T) {
	if !IsRoughlyConstant([]float64{10, 10.4, 9.6}, 0.05) {
		t.Fatal("±4% series rejected at 5%")
	}
	if IsRoughlyConstant([]float64{10, 12}, 0.05) {
		t.Fatal("±10% series accepted at 5%")
	}
	if !IsRoughlyConstant(nil, 0.01) {
		t.Fatal("empty series should be constant")
	}
	if !IsRoughlyConstant([]float64{0, 0}, 0.01) {
		t.Fatal("all-zero series should be constant")
	}
	if IsRoughlyConstant([]float64{0, 1}, 0.01) {
		t.Fatal("zero-mean-ish nonzero series accepted")
	}
}

func TestIsUnimodalMin(t *testing.T) {
	if !IsUnimodalMin([]float64{9, 5, 3, 4, 8}, 0) {
		t.Fatal("clean V rejected")
	}
	if IsUnimodalMin([]float64{9, 3, 8, 2, 9}, 0) {
		t.Fatal("W accepted")
	}
	if !IsUnimodalMin([]float64{1, 2}, 0) {
		t.Fatal("short series should pass trivially")
	}
	// Monotone decreasing counts as unimodal (min at the end).
	if !IsUnimodalMin([]float64{5, 4, 3}, 0) {
		t.Fatal("monotone decreasing rejected")
	}
}

func TestSpeedupAndGFlops(t *testing.T) {
	if s := Speedup(10, 5); s != 2 {
		t.Fatalf("speedup = %v, want 2", s)
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("zero-after speedup should be +Inf")
	}
	if g := GFlops(2e9, 2); g != 1 {
		t.Fatalf("GFlops = %v, want 1", g)
	}
	if GFlops(1, 0) != 0 {
		t.Fatal("zero-time GFlops should be 0")
	}
}

// Property: mean is within [min, max]; stddev is non-negative; the
// least-squares line passes through the centroid.
func TestPropertySummaryInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Mean(xs)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		if m < lo-1e-9 || m > hi+1e-9 {
			return false
		}
		if StdDev(xs) < 0 {
			return false
		}
		idx := make([]float64, len(xs))
		for i := range idx {
			idx[i] = float64(i)
		}
		a, b, _, err := LinearFit(idx, xs)
		if err != nil {
			return true // degenerate inputs are fine
		}
		return math.Abs(a+b*Mean(idx)-m) < 1e-6*(1+math.Abs(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {25, 20}, {50, 35}, {75, 40}, {100, 50},
		{40, 29}, // 1.6 ranks in: 20 + 0.6·(35-20)
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty Percentile should be 0")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Error("single-element Percentile should be the element")
	}
	// Clamping.
	if Percentile(xs, -5) != 15 || Percentile(xs, 400) != 50 {
		t.Error("out-of-range p should clamp to min/max")
	}
	// Input must not be reordered.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentiles(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	p50, p95, p99 := Percentiles(xs)
	if p50 != 50 || p95 != 95 || p99 != 99 {
		t.Fatalf("Percentiles = (%v,%v,%v), want (50,95,99)", p50, p95, p99)
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{10, 10, 10, 10}); math.Abs(j-1) > 1e-12 {
		t.Errorf("equal shares Jain = %v, want 1", j)
	}
	// One of four entities monopolizing → 1/4.
	if j := JainIndex([]float64{100, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Errorf("monopoly Jain = %v, want 0.25", j)
	}
	// Textbook mixed case: (1+2+3)²/(3·(1+4+9)) = 36/42.
	if j := JainIndex([]float64{1, 2, 3}); math.Abs(j-36.0/42.0) > 1e-12 {
		t.Errorf("mixed Jain = %v, want %v", j, 36.0/42.0)
	}
	if JainIndex(nil) != 0 {
		t.Error("empty Jain should be 0")
	}
	if JainIndex([]float64{0, 0}) != 1 {
		t.Error("all-zero Jain should be 1")
	}
	if JainIndex([]float64{1, -1}) != 0 || JainIndex([]float64{1, math.NaN()}) != 0 {
		t.Error("invalid inputs should give 0")
	}
	// Scale invariance and range (0,1] on positive inputs.
	err := quick.Check(func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		j := JainIndex(xs)
		scaled := JainIndex([]float64{xs[0] * 7, xs[1] * 7, xs[2] * 7})
		return j > 1.0/3.0-1e-12 && j <= 1+1e-12 && math.Abs(j-scaled) < 1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestPercentileNaN(t *testing.T) {
	if got := Percentile([]float64{1, 2, 3}, math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Percentile(NaN) = %v, want NaN", got)
	}
}

func TestPercentileNaNSingleElement(t *testing.T) {
	if got := Percentile([]float64{7}, math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Percentile([7], NaN) = %v, want NaN", got)
	}
}

func TestJainIndexHugeValues(t *testing.T) {
	if j := JainIndex([]float64{1e200, 1e200}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("huge equal shares Jain = %v, want 1 (no overflow)", j)
	}
	if j := JainIndex([]float64{1e200, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("huge monopoly Jain = %v, want 0.25", j)
	}
}
