// Package stats provides the small statistical toolkit the experiment
// harness uses: summary statistics over repeated runs (the paper runs
// each benchmark for 11 iterations, drops the first and averages), a
// least-squares line fit (used to check the linearity of Fig. 5's IC
// and CD series), and shape predicates (monotonicity, unimodality,
// constancy) with which the test suite asserts that each regenerated
// figure has the same qualitative form as the paper's.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Median returns the median of xs, or 0 for an empty slice. It is
// Percentile at p = 50 (for even lengths the linear-interpolation
// estimator averages the middle pair, matching the textbook median).
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Min returns the smallest element and its index (-1 for empty input).
func Min(xs []float64) (float64, int) {
	if len(xs) == 0 {
		return 0, -1
	}
	best, at := xs[0], 0
	for i, x := range xs[1:] {
		if x < best {
			best, at = x, i+1
		}
	}
	return best, at
}

// Max returns the largest element and its index (-1 for empty input).
func Max(xs []float64) (float64, int) {
	if len(xs) == 0 {
		return 0, -1
	}
	best, at := xs[0], 0
	for i, x := range xs[1:] {
		if x > best {
			best, at = x, i+1
		}
	}
	return best, at
}

// TrimmedMean drops the first skip observations and averages the rest —
// the paper's measurement protocol ("run each benchmark for 11
// iterations, ignore the first and calculate the mean").
func TrimmedMean(xs []float64, skip int) float64 {
	if skip < 0 {
		skip = 0
	}
	if skip >= len(xs) {
		return 0
	}
	return Mean(xs[skip:])
}

// LinearFit fits y = a + b·x by least squares and returns the
// intercept a, slope b, and the coefficient of determination r².
// It returns an error when fewer than two distinct x values exist.
func LinearFit(x, y []float64) (a, b, r2 float64, err error) {
	if len(x) != len(y) {
		return 0, 0, 0, fmt.Errorf("stats: mismatched lengths %d vs %d", len(x), len(y))
	}
	n := float64(len(x))
	if len(x) < 2 {
		return 0, 0, 0, fmt.Errorf("stats: need at least 2 points, got %d", len(x))
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, fmt.Errorf("stats: degenerate fit, all x equal")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		// A perfectly flat series is perfectly explained.
		return a, b, 1, nil
	}
	r2 = sxy * sxy / (sxx * syy)
	_ = n
	return a, b, r2, nil
}

// IsMonotone reports whether xs is non-decreasing (dir > 0) or
// non-increasing (dir < 0) within a relative tolerance tol (each step
// may violate the direction by at most tol × |previous value|).
func IsMonotone(xs []float64, dir int, tol float64) bool {
	for i := 1; i < len(xs); i++ {
		slack := tol * math.Abs(xs[i-1])
		if dir > 0 && xs[i] < xs[i-1]-slack {
			return false
		}
		if dir < 0 && xs[i] > xs[i-1]+slack {
			return false
		}
	}
	return true
}

// IsRoughlyConstant reports whether every element is within rel
// (relative) of the series mean. Used for Fig. 5's CC and ID lines.
func IsRoughlyConstant(xs []float64, rel float64) bool {
	if len(xs) == 0 {
		return true
	}
	m := Mean(xs)
	if m == 0 {
		for _, x := range xs {
			if x != 0 {
				return false
			}
		}
		return true
	}
	for _, x := range xs {
		if math.Abs(x-m) > rel*math.Abs(m) {
			return false
		}
	}
	return true
}

// IsUnimodalMin reports whether the series decreases to a single
// minimum region and increases after it, within relative tolerance tol
// per step. This is the "first improves then degrades" shape of Figs. 7
// and 10.
func IsUnimodalMin(xs []float64, tol float64) bool {
	if len(xs) < 3 {
		return true
	}
	_, at := Min(xs)
	return IsMonotone(xs[:at+1], -1, tol) && IsMonotone(xs[at:], +1, tol)
}

// Percentile returns the p-th percentile of xs (p in [0, 100]) using
// linear interpolation between closest ranks, the same estimator
// NumPy's default ("linear") uses. It returns 0 for an empty slice,
// clamps p into [0, 100], and returns NaN for a NaN p. The input is
// not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	return percentileSorted(ys, p)
}

// percentileSorted is Percentile over an already-sorted, non-empty
// slice.
func percentileSorted(ys []float64, p float64) float64 {
	if math.IsNaN(p) {
		return math.NaN()
	}
	n := len(ys)
	if n == 1 {
		return ys[0]
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return ys[lo]
	}
	frac := rank - float64(lo)
	return ys[lo] + frac*(ys[hi]-ys[lo])
}

// Percentiles returns the p50, p95 and p99 of xs over a single sorted
// copy — the latency summary the scheduler reports per tenant.
func Percentiles(xs []float64) (p50, p95, p99 float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	return percentileSorted(ys, 50), percentileSorted(ys, 95), percentileSorted(ys, 99)
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) over the
// per-entity allocations xs: 1 when all shares are equal, approaching
// 1/n as one entity monopolizes the resource. Non-finite or negative
// inputs and the empty slice yield 0; an all-zero slice yields 1
// (nothing allocated is trivially fair).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	maxX := 0.0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return 0
		}
		if x > maxX {
			maxX = x
		}
	}
	if maxX == 0 {
		return 1
	}
	// The index is scale-invariant; normalizing by the largest share
	// keeps the sums finite for any finite input.
	var sum, sumSq float64
	for _, x := range xs {
		x /= maxX
		sum += x
		sumSq += x * x
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Speedup returns before/after: >1 means after is faster, for
// execution-time metrics.
func Speedup(before, after float64) float64 {
	if after == 0 {
		return math.Inf(1)
	}
	return before / after
}

// GFlops converts a flop count and seconds into GFLOPS.
func GFlops(flops, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return flops / seconds / 1e9
}
