package obs

import (
	"fmt"
	"io"

	"micstream/internal/sim"
	"micstream/internal/telemetry"
)

// DefaultFlightCap is the default ring capacity (events retained per
// dump).
const DefaultFlightCap = 256

// FlightDump is one triggered capture: the reason, the trigger
// instant, and the ring's contents at that moment in emission order.
type FlightDump struct {
	// Reason explains the trigger ("job 3 failed", `tenant "A" p95
	// 12.4ms over 10ms`).
	Reason string
	// At is the virtual instant of the triggering event or snapshot.
	At sim.Time
	// Events are the retained decisions leading up to the trigger,
	// oldest first.
	Events []telemetry.Event
}

// FlightRecorder keeps a bounded ring of the most recent telemetry
// events and snapshots it on triggers: any job failure, and — when a
// p95 threshold is set — the first drain-instant snapshot where a
// tenant's p95 latency breaches it (once per tenant, so a sustained
// breach yields one dump, not one per drain). Everything is
// deterministic: triggers key off virtual-time data only, the ring is
// cleared after each dump (consecutive dumps never overlap), and
// WriteText renders byte-identically for identical logs. Like the
// rest of the package it is a pure consumer — recording never feeds
// back into a decision.
type FlightRecorder struct {
	cap     int
	ring    []telemetry.Event
	next    int
	full    bool
	p95Max  sim.Duration
	tripped map[string]bool
	dumps   []FlightDump
}

// NewFlightRecorder returns a flight recorder retaining up to cap
// events (DefaultFlightCap if cap <= 0).
func NewFlightRecorder(cap int) *FlightRecorder {
	if cap <= 0 {
		cap = DefaultFlightCap
	}
	return &FlightRecorder{cap: cap, ring: make([]telemetry.Event, 0, cap), tripped: make(map[string]bool)}
}

// SetP95Threshold arms the latency trigger: a drain-instant snapshot
// reporting any tenant's p95 above max dumps the ring (0 disarms).
func (f *FlightRecorder) SetP95Threshold(max sim.Duration) { f.p95Max = max }

// Attach subscribes the recorder to a telemetry recorder's hooks. It
// claims both observer slots; to share them with other consumers
// (e.g. an Exporter), install composite hooks calling OnEvent and
// OnMetrics directly.
func (f *FlightRecorder) Attach(rec *telemetry.Recorder) {
	rec.SetOnEvent(f.OnEvent)
	rec.SetOnMetrics(f.OnMetrics)
}

// OnEvent records one event into the ring, dumping first if the event
// is a failure (so the dump ends just before the Fail, and the Fail
// itself seeds the next window).
func (f *FlightRecorder) OnEvent(e telemetry.Event) {
	if e.Kind == telemetry.Fail {
		f.dump(fmt.Sprintf("job %d (id %d) failed", e.Job, e.ID), e.At)
	}
	if len(f.ring) < f.cap {
		f.ring = append(f.ring, e)
		return
	}
	f.ring[f.next] = e
	f.next = (f.next + 1) % f.cap
	f.full = true
}

// OnMetrics checks one drain-instant snapshot against the armed p95
// threshold. Tenants are examined in the snapshot's own sorted order,
// so the first breacher is deterministic.
func (f *FlightRecorder) OnMetrics(s telemetry.MetricsSnapshot) {
	if f.p95Max <= 0 {
		return
	}
	for _, t := range s.Tenants {
		if t.P95 > f.p95Max && !f.tripped[t.Tenant] {
			f.tripped[t.Tenant] = true
			f.dump(fmt.Sprintf("tenant %q p95 %.3fms over %.3fms", t.Tenant, ms(t.P95), ms(f.p95Max)), s.At)
		}
	}
}

// Trigger dumps the ring on an externally detected anomaly — the hook
// the SLO layer fires when a tenant's error budget exhausts, so the
// ring captures the breach neighborhood exactly like a failure or p95
// trigger would. The reason string becomes the dump's label; at is the
// (virtual) trigger instant.
func (f *FlightRecorder) Trigger(reason string, at sim.Time) { f.dump(reason, at) }

// dump snapshots the ring (oldest first) and clears it.
func (f *FlightRecorder) dump(reason string, at sim.Time) {
	var events []telemetry.Event
	if f.full {
		events = make([]telemetry.Event, 0, f.cap)
		events = append(events, f.ring[f.next:]...)
		events = append(events, f.ring[:f.next]...)
	} else {
		events = append(events, f.ring...)
	}
	f.dumps = append(f.dumps, FlightDump{Reason: reason, At: at, Events: events})
	f.ring = f.ring[:0]
	f.next = 0
	f.full = false
}

// Dumps returns the captures so far, in trigger order.
func (f *FlightRecorder) Dumps() []FlightDump { return f.dumps }

// Pending reports how many events the ring currently holds (the
// window the next trigger would capture).
func (f *FlightRecorder) Pending() int { return len(f.ring) }

// WriteText renders every dump as aligned text, one event per line —
// the post-mortem artifact `miccluster -flight` writes.
func (f *FlightRecorder) WriteText(w io.Writer) error {
	if len(f.dumps) == 0 {
		_, err := fmt.Fprintln(w, "flight recorder: no triggers fired")
		return err
	}
	for i := range f.dumps {
		d := &f.dumps[i]
		if _, err := fmt.Fprintf(w, "dump %d at %.3fms: %s (%d events)\n", i, ms(sim.Duration(d.At)), d.Reason, len(d.Events)); err != nil {
			return err
		}
		for _, e := range d.Events {
			if _, err := fmt.Fprintf(w, "  %6d %12.3fms %-10s job=%-4d id=%-4d tenant=%-10s dev=%-3d from=%-3d stream=%-3d bytes=%-9d dur=%.3fms\n",
				e.Seq, ms(sim.Duration(e.At)), e.Kind, e.Job, e.ID, e.Tenant, e.Device, e.From, e.Stream, e.Bytes, ms(e.Dur)); err != nil {
				return err
			}
		}
	}
	return nil
}
