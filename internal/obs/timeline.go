// Package obs is the explanation layer over the telemetry event log:
// it answers "why was this job slow?" and "how wrong is the model?"
// from the decision stream alone, without touching the schedulers.
//
// Three consumers share the package. The timeline folder (this file)
// folds a run's events into per-job causal phase breakdowns — queue
// wait, commit wait, execution slices, slice waits, migration gaps —
// whose durations sum exactly to the job's observed end-to-end
// latency, so `miccluster -explain` is an identity, not an estimate
// (DESIGN.md §14). The drift audit (drift.go) compares the predicted
// completion scores recorded at Place instants and the service
// estimates recorded at grant instants against realized outcomes,
// quantifying where the closed forms are weak. The live exporters
// (openmetrics.go, flight.go, metricsjson.go) render MetricsSnapshot
// series and bounded event rings for scrapers and post-mortems.
//
// Everything here is a pure consumer of recorded data: folding,
// auditing and exporting never feed back into a scheduling decision,
// so an observed run's Result stays bit-identical to a bare one, and
// every renderer is byte-deterministic (sorted keys, fixed-point or
// shortest-round-trip numbers, no wall clock).
package obs

import (
	"fmt"
	"io"
	"sort"

	"micstream/internal/sim"
	"micstream/internal/telemetry"
)

// Phase names, in lifecycle order. PhasePlaceWait is the cluster-queue
// wait (admission → placement commitment); PhaseCommitWait the device
// queue wait (commitment → first stream grant); PhaseExec the summed
// stream-grant spans (staging transfers ride inside them, reported
// separately as Timeline.Staging); PhaseSliceWait the time a sliced
// job's remainder waited between grants on one device; PhaseMigration
// the boundary-to-grant gaps that crossed devices (a Preempt happened
// in between).
const (
	PhasePlaceWait  = "place-wait"
	PhaseCommitWait = "commit-wait"
	PhaseExec       = "exec"
	PhaseSliceWait  = "slice-wait"
	PhaseMigration  = "migration"
)

// Timeline is one job's folded causal history: its lifecycle instants,
// the exact phase partition of its latency, and the decision counts
// that shaped it.
type Timeline struct {
	// Job is the run's outcome index for the job; ID and Tenant echo
	// the caller-assigned labels.
	Job    int
	ID     int
	Tenant string
	// Device is the device the job last ran (or was last committed)
	// on; -1 if it never left the cluster queue.
	Device int
	// Admitted, Placed, Started and Done are the lifecycle instants.
	// Placed falls back to Admitted when the log has no Place event
	// (standalone scheduler runs); Done is zero while in flight.
	Admitted, Placed, Started, Done sim.Time
	// Failed marks a job whose log ends in a Fail event; its phase
	// partition is whatever had accrued and carries no sum invariant.
	Failed bool
	// Slices counts stream grants (Dispatch + Slice events); Steals
	// and Preempts count pre-dispatch re-bindings and mid-job
	// migrations.
	Slices, Steals, Preempts int
	// PlaceWait, CommitWait, Exec, SliceWait and Migration partition
	// the job's latency exactly: their sum equals Done − Admitted for
	// every completed job.
	PlaceWait, CommitWait, Exec, SliceWait, Migration sim.Duration
	// Staging is the modeled link occupancy of the job's staged
	// transfers that actually ran — a sub-attribution of Exec (the
	// stage task leads the job on its stream), not a sixth phase.
	// StagedBytes and HitBytes split the staging demand behind it.
	Staging     sim.Duration
	StagedBytes int64
	HitBytes    int64
}

// Latency is the job's observed end-to-end latency (Done − Admitted),
// 0 while in flight.
func (t *Timeline) Latency() sim.Duration {
	if t.Done == 0 && !t.Failed {
		return 0
	}
	return t.Done.Sub(t.Admitted)
}

// PhaseSum is the total of the five attributed phases — equal to
// Latency for every completed job (the folding invariant).
func (t *Timeline) PhaseSum() sim.Duration {
	return t.PlaceWait + t.CommitWait + t.Exec + t.SliceWait + t.Migration
}

// Phases lists the job's phase partition in lifecycle order.
func (t *Timeline) Phases() []Phase {
	return []Phase{
		{Name: PhasePlaceWait, Dur: t.PlaceWait},
		{Name: PhaseCommitWait, Dur: t.CommitWait},
		{Name: PhaseExec, Dur: t.Exec},
		{Name: PhaseSliceWait, Dur: t.SliceWait},
		{Name: PhaseMigration, Dur: t.Migration},
	}
}

// CriticalPhase names the phase that dominates the job's latency —
// the critical-path attribution. Ties break toward the earlier
// lifecycle phase, so a job that spent equal time queued and running
// is explained by its wait.
func (t *Timeline) CriticalPhase() string {
	best := Phase{Name: PhasePlaceWait, Dur: -1}
	for _, p := range t.Phases() {
		if p.Dur > best.Dur {
			best = p
		}
	}
	return best.Name
}

// Phase is one named slice of a job's latency.
type Phase struct {
	Name string
	Dur  sim.Duration
}

// foldState tracks one in-flight job while folding.
type foldState struct {
	t *Timeline
	// grantAt is the open grant's start instant; inGrant marks one
	// open.
	grantAt sim.Time
	inGrant bool
	// boundary is the last grant's end (the Requeue instant) — the
	// anchor the next grant's gap is measured from.
	boundary sim.Time
	// pendingPreempt marks that the gap in progress crossed devices.
	pendingPreempt bool
	placed         bool
	started        bool
	// curStaging/curStagedBytes/curHitBytes hold the staging charges
	// of the current commitment, flushed into the timeline at the next
	// grant (they ran) or discarded at a Steal (the withdraw
	// un-charged them — the thief's re-route re-emits its own).
	curStaging              sim.Duration
	curStagedBytes, curHits int64
}

func (f *foldState) flushStaging() {
	f.t.Staging += f.curStaging
	f.t.StagedBytes += f.curStagedBytes
	f.t.HitBytes += f.curHits
	f.curStaging, f.curStagedBytes, f.curHits = 0, 0, 0
}

// Fold reduces an event log to per-job causal timelines, in admission
// order. The log may span multiple runs of one recorder (job indices
// repeat): each Admit opens a fresh timeline for its index, so a
// two-run log yields two timelines per job. For every completed job
// the five phases partition the latency exactly: PlaceWait +
// CommitWait + Exec + SliceWait + Migration == Done − Admitted
// (DESIGN.md §14).
func Fold(events []telemetry.Event) []Timeline {
	out := make([]*Timeline, 0, 16)
	live := make(map[int]*foldState)
	// ref resolves the state for an event, ignoring events for jobs
	// the log never admitted (a truncated ring dump).
	ref := func(e telemetry.Event) *foldState {
		if e.Job < 0 {
			return nil
		}
		return live[e.Job]
	}
	for _, e := range events {
		switch e.Kind {
		case telemetry.Admit:
			t := &Timeline{Job: e.Job, ID: e.ID, Tenant: e.Tenant, Device: -1, Admitted: e.At}
			out = append(out, t)
			live[e.Job] = &foldState{t: t}
		case telemetry.Place:
			if f := ref(e); f != nil {
				if !f.placed {
					f.t.Placed = e.At
					f.placed = true
				}
				f.t.Device = e.Device
			}
		case telemetry.Steal:
			if f := ref(e); f != nil {
				f.t.Steals++
				f.t.Device = e.Device
				// The withdraw un-charged the victim-side staging;
				// the re-route emits the thief's own Hit/Stage next.
				f.curStaging, f.curStagedBytes, f.curHits = 0, 0, 0
			}
		case telemetry.Preempt:
			if f := ref(e); f != nil {
				f.t.Preempts++
				f.t.Device = e.Device
				f.pendingPreempt = true
			}
		case telemetry.Hit:
			if f := ref(e); f != nil {
				f.curHits += e.Bytes
			}
		case telemetry.Stage:
			if f := ref(e); f != nil {
				f.curStaging += e.Dur
				f.curStagedBytes += e.Bytes
			}
		case telemetry.Dispatch, telemetry.Slice:
			if f := ref(e); f != nil {
				if !f.started {
					f.t.Started = e.At
					f.started = true
					anchor := f.t.Admitted
					if f.placed {
						anchor = f.t.Placed
						f.t.PlaceWait = f.t.Placed.Sub(f.t.Admitted)
					}
					f.t.CommitWait = e.At.Sub(anchor)
				} else {
					gap := e.At.Sub(f.boundary)
					if f.pendingPreempt {
						f.t.Migration += gap
					} else {
						f.t.SliceWait += gap
					}
				}
				f.pendingPreempt = false
				if e.Device >= 0 {
					f.t.Device = e.Device
				}
				f.t.Slices++
				f.grantAt = e.At
				f.inGrant = true
				f.flushStaging()
			}
		case telemetry.Requeue:
			if f := ref(e); f != nil && f.inGrant {
				f.t.Exec += e.At.Sub(f.grantAt)
				f.boundary = e.At
				f.inGrant = false
			}
		case telemetry.Complete:
			if f := ref(e); f != nil {
				if f.inGrant {
					f.t.Exec += e.At.Sub(f.grantAt)
					f.inGrant = false
				}
				f.t.Done = e.At
				delete(live, e.Job)
			}
		case telemetry.Fail:
			if f := ref(e); f != nil {
				f.t.Failed = true
				f.t.Done = e.At
				delete(live, e.Job)
			}
		}
	}
	ts := make([]Timeline, len(out))
	for i, t := range out {
		ts[i] = *t
	}
	return ts
}

// PhaseBreakdown aggregates the phase partition over a group of jobs
// (one tenant, one device) — the "where time goes" row.
type PhaseBreakdown struct {
	// Key labels the group (tenant name, or "deviceN").
	Key string
	// Jobs counts the completed jobs aggregated (failed and in-flight
	// jobs are excluded — they carry no sum invariant).
	Jobs int
	// The five phase totals plus the staging sub-attribution and the
	// summed latency (== the phase totals' sum).
	PlaceWait, CommitWait, Exec, SliceWait, Migration, Staging, Latency sim.Duration
}

func (b *PhaseBreakdown) add(t *Timeline) {
	b.Jobs++
	b.PlaceWait += t.PlaceWait
	b.CommitWait += t.CommitWait
	b.Exec += t.Exec
	b.SliceWait += t.SliceWait
	b.Migration += t.Migration
	b.Staging += t.Staging
	b.Latency += t.Latency()
}

// ByTenant aggregates completed timelines per tenant, sorted by tenant
// label.
func ByTenant(ts []Timeline) []PhaseBreakdown {
	return aggregate(ts, func(t *Timeline) string { return t.Tenant })
}

// ByDevice aggregates completed timelines per final device, sorted by
// device index ("device0", "device1", ...; unplaced jobs never
// completed, so every key is a real device).
func ByDevice(ts []Timeline) []PhaseBreakdown {
	return aggregate(ts, func(t *Timeline) string { return fmt.Sprintf("device%d", t.Device) })
}

func aggregate(ts []Timeline, key func(*Timeline) string) []PhaseBreakdown {
	groups := make(map[string]*PhaseBreakdown)
	order := make([]string, 0, 8)
	for i := range ts {
		t := &ts[i]
		if t.Failed || t.Done == 0 {
			continue
		}
		k := key(t)
		g := groups[k]
		if g == nil {
			g = &PhaseBreakdown{Key: k}
			groups[k] = g
			order = append(order, k)
		}
		g.add(t)
	}
	sort.Strings(order)
	out := make([]PhaseBreakdown, 0, len(order))
	for _, k := range order {
		out = append(out, *groups[k])
	}
	return out
}

// WriteTimeline renders one job's causal timeline as aligned text —
// the body of `miccluster -explain <job>`.
func WriteTimeline(w io.Writer, t *Timeline) error {
	status := "completed"
	if t.Failed {
		status = "FAILED"
	} else if t.Done == 0 {
		status = "in flight"
	}
	if _, err := fmt.Fprintf(w, "job %d (id %d, tenant %s) — %s, device %d, %d slice(s), %d steal(s), %d preemption(s)\n",
		t.Job, t.ID, t.Tenant, status, t.Device, t.Slices, t.Steals, t.Preempts); err != nil {
		return err
	}
	fmt.Fprintf(w, "  admitted %12.3fms   placed %12.3fms   started %12.3fms   done %12.3fms\n",
		ms(sim.Duration(t.Admitted)), ms(sim.Duration(t.Placed)), ms(sim.Duration(t.Started)), ms(sim.Duration(t.Done)))
	lat := t.Latency()
	for _, p := range t.Phases() {
		pct := 0.0
		if lat > 0 {
			pct = 100 * float64(p.Dur) / float64(lat)
		}
		mark := "  "
		if p.Name == t.CriticalPhase() {
			mark = "* "
		}
		fmt.Fprintf(w, "  %s%-11s %12.3fms  %5.1f%%\n", mark, p.Name, ms(p.Dur), pct)
	}
	if t.Staging > 0 || t.HitBytes > 0 {
		fmt.Fprintf(w, "    staging     %12.3fms  (inside exec; %d B staged, %d B resident hits)\n",
			ms(t.Staging), t.StagedBytes, t.HitBytes)
	}
	_, err := fmt.Fprintf(w, "  latency       %12.3fms  (phase sum %12.3fms)\n", ms(lat), ms(t.PhaseSum()))
	return err
}

// WriteBreakdowns renders aggregate "where time goes" rows as an
// aligned table under a title.
func WriteBreakdowns(w io.Writer, title string, rows []PhaseBreakdown) error {
	if _, err := fmt.Fprintf(w, "%s\n  %-12s %5s %14s %14s %14s %14s %14s %14s\n",
		title, "group", "jobs", "place-wait", "commit-wait", "exec", "slice-wait", "migration", "latency"); err != nil {
		return err
	}
	for i := range rows {
		b := &rows[i]
		if _, err := fmt.Fprintf(w, "  %-12s %5d %12.3fms %12.3fms %12.3fms %12.3fms %12.3fms %12.3fms\n",
			b.Key, b.Jobs, ms(b.PlaceWait), ms(b.CommitWait), ms(b.Exec), ms(b.SliceWait), ms(b.Migration), ms(b.Latency)); err != nil {
			return err
		}
	}
	return nil
}

func ms(d sim.Duration) float64 { return float64(d) / 1e6 }
