package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"micstream/internal/sim"
	"micstream/internal/stats"
	"micstream/internal/telemetry"
)

// Drift sample kinds: a placement sample compares the policy's
// predicted completion for the chosen device (the Place event's score)
// against the job's realized completion; a service sample compares one
// stream grant's service estimate (the Dispatch/Slice event's Dur)
// against the grant's realized span (closed by the matching Requeue or
// Complete).
const (
	SamplePlacement = "placement"
	SampleService   = "service"
)

// Execution regimes a placement sample is classified into, by the
// decisions that happened between commitment and completion, highest
// priority first: a migrated job's score was voided by a mid-job
// preemption, a stolen job's by a pre-dispatch re-binding; staged and
// resident jobs exercise the Fig. 11 staging term and the residency
// discount; plain jobs ran on-origin with no data motion.
const (
	RegimeMigrated = "migrated"
	RegimeStolen   = "stolen"
	RegimeStaged   = "staged"
	RegimeResident = "resident"
	RegimePlain    = "plain"
)

// DriftSample is one predicted-vs-actual comparison extracted from the
// event log.
type DriftSample struct {
	// Kind is SamplePlacement or SampleService.
	Kind string
	// Job, ID and Tenant identify the job; Device is the device the
	// prediction targeted.
	Job    int
	ID     int
	Tenant string
	Device int
	// Regime classifies the job's execution (placement samples; service
	// samples inherit the job's regime so far).
	Regime string
	// Predicted and Actual are the compared durations.
	Predicted, Actual sim.Duration
}

// ErrPct is the sample's signed relative error in percent:
// (predicted − actual) / actual × 100. Positive means the model was
// pessimistic. Samples with zero Actual are excluded from groups.
func (s *DriftSample) ErrPct() float64 {
	return 100 * (float64(s.Predicted) - float64(s.Actual)) / float64(s.Actual)
}

// driftBuckets are the |error| histogram edges in percent.
var driftBuckets = [...]float64{5, 10, 25, 50}

// BucketLabels names the |error| histogram buckets of a DriftGroup.
func BucketLabels() []string {
	return []string{"<5%", "<10%", "<25%", "<50%", ">=50%"}
}

// DriftGroup is the error histogram and summary statistics of one
// sample group (per kind, per tenant, per regime).
type DriftGroup struct {
	// Key labels the group.
	Key string
	// Count is the group's sample count.
	Count int
	// Buckets histogram |error|: <5%, <10%, <25%, <50%, ≥50%.
	Buckets [5]int
	// MeanAbsPct and BiasPct are the mean |error| and mean signed
	// error; P50AbsPct and P95AbsPct the |error| percentiles.
	MeanAbsPct, BiasPct, P50AbsPct, P95AbsPct float64
}

func buildGroup(key string, samples []*DriftSample) DriftGroup {
	g := DriftGroup{Key: key, Count: len(samples)}
	abs := make([]float64, 0, len(samples))
	var sumAbs, sumSigned float64
	for _, s := range samples {
		e := s.ErrPct()
		a := e
		if a < 0 {
			a = -a
		}
		abs = append(abs, a)
		sumAbs += a
		sumSigned += e
		slot := len(driftBuckets)
		for i, edge := range driftBuckets {
			if a < edge {
				slot = i
				break
			}
		}
		g.Buckets[slot]++
	}
	if len(samples) > 0 {
		g.MeanAbsPct = sumAbs / float64(len(samples))
		g.BiasPct = sumSigned / float64(len(samples))
		p50, p95, _ := stats.Percentiles(abs)
		g.P50AbsPct = p50
		g.P95AbsPct = p95
	}
	return g
}

// DriftReport is the model-drift audit of one event log.
type DriftReport struct {
	// Samples lists every comparison in log order.
	Samples []DriftSample
	// Placement and Service summarize each sample kind overall.
	Placement, Service DriftGroup
	// ByTenant and ByRegime group the placement samples (sorted by
	// key); ByTenantService groups the service samples per tenant.
	ByTenant        []DriftGroup
	ByRegime        []DriftGroup
	ByTenantService []DriftGroup
}

// auditJob is the per-job state the audit tracks between commitment
// and completion.
type auditJob struct {
	placeAt   sim.Time
	predicted sim.Duration
	device    int
	hasPlace  bool
	stolen    bool
	migrated  bool
	staged    bool
	resident  bool

	grantAt  sim.Time
	grantEst sim.Duration
	inGrant  bool
}

func (a *auditJob) regime() string {
	switch {
	case a.migrated:
		return RegimeMigrated
	case a.stolen:
		return RegimeStolen
	case a.staged:
		return RegimeStaged
	case a.resident:
		return RegimeResident
	default:
		return RegimePlain
	}
}

// AuditDrift extracts predicted-vs-actual samples from an event log.
// Placement samples need Place events carrying Scores (the predicted
// and affinity policies record them; load-blind policies yield none);
// service samples need grants closed by Requeue/Complete, which every
// traced run has. Samples whose realized duration is zero are dropped
// (no meaningful relative error).
func AuditDrift(events []telemetry.Event) *DriftReport {
	r := &DriftReport{}
	live := make(map[int]*auditJob)
	add := func(s DriftSample) {
		if s.Actual > 0 {
			r.Samples = append(r.Samples, s)
		}
	}
	for _, e := range events {
		if e.Job < 0 {
			continue
		}
		switch e.Kind {
		case telemetry.Admit:
			live[e.Job] = &auditJob{device: -1}
		case telemetry.Place:
			a := live[e.Job]
			if a == nil {
				continue
			}
			if !a.hasPlace {
				a.placeAt = e.At
				a.device = e.Device
				for _, sc := range e.Scores {
					if sc.Device == e.Device {
						a.predicted = sc.Predicted.Sub(e.At)
						a.hasPlace = true
						break
					}
				}
			}
		case telemetry.Steal:
			if a := live[e.Job]; a != nil {
				a.stolen = true
			}
		case telemetry.Preempt:
			if a := live[e.Job]; a != nil {
				a.migrated = true
			}
		case telemetry.Stage:
			if a := live[e.Job]; a != nil {
				a.staged = true
			}
		case telemetry.Hit:
			if a := live[e.Job]; a != nil {
				a.resident = true
			}
		case telemetry.Dispatch, telemetry.Slice:
			if a := live[e.Job]; a != nil {
				a.grantAt = e.At
				a.grantEst = e.Dur
				a.inGrant = true
			}
		case telemetry.Requeue:
			if a := live[e.Job]; a != nil && a.inGrant {
				add(DriftSample{Kind: SampleService, Job: e.Job, ID: e.ID, Tenant: e.Tenant,
					Device: e.Device, Regime: a.regime(), Predicted: a.grantEst, Actual: e.At.Sub(a.grantAt)})
				a.inGrant = false
			}
		case telemetry.Complete:
			a := live[e.Job]
			if a == nil {
				continue
			}
			if a.inGrant {
				add(DriftSample{Kind: SampleService, Job: e.Job, ID: e.ID, Tenant: e.Tenant,
					Device: e.Device, Regime: a.regime(), Predicted: a.grantEst, Actual: e.At.Sub(a.grantAt)})
			}
			if a.hasPlace {
				add(DriftSample{Kind: SamplePlacement, Job: e.Job, ID: e.ID, Tenant: e.Tenant,
					Device: a.device, Regime: a.regime(), Predicted: a.predicted, Actual: e.At.Sub(a.placeAt)})
			}
			delete(live, e.Job)
		case telemetry.Fail:
			delete(live, e.Job)
		}
	}
	r.group()
	return r
}

// Summarize builds a report over an externally assembled sample
// population — e.g. samples pooled from several seeds of the same mix
// before grouping, so the histograms describe the pooled distribution
// rather than an average of per-seed summaries.
func Summarize(samples []DriftSample) *DriftReport {
	r := &DriftReport{Samples: samples}
	r.group()
	return r
}

func (r *DriftReport) group() {
	var placement, service []*DriftSample
	for i := range r.Samples {
		s := &r.Samples[i]
		if s.Kind == SamplePlacement {
			placement = append(placement, s)
		} else {
			service = append(service, s)
		}
	}
	r.Placement = buildGroup(SamplePlacement, placement)
	r.Service = buildGroup(SampleService, service)
	r.ByTenant = groupBy(placement, func(s *DriftSample) string { return s.Tenant })
	r.ByRegime = groupBy(placement, func(s *DriftSample) string { return s.Regime })
	r.ByTenantService = groupBy(service, func(s *DriftSample) string { return s.Tenant })
}

func groupBy(samples []*DriftSample, key func(*DriftSample) string) []DriftGroup {
	buckets := make(map[string][]*DriftSample)
	keys := make([]string, 0, 8)
	for _, s := range samples {
		k := key(s)
		if _, ok := buckets[k]; !ok {
			keys = append(keys, k)
		}
		buckets[k] = append(buckets[k], s)
	}
	sort.Strings(keys)
	out := make([]DriftGroup, 0, len(keys))
	for _, k := range keys {
		out = append(out, buildGroup(k, buckets[k]))
	}
	return out
}

// DriftMeta is the provenance block of a DRIFT_<run>.json artifact:
// enough to attribute an error histogram to a specific run and
// calibration state.
type DriftMeta struct {
	// Run labels the artifact (the CI run id, or a local tag).
	Run string
	// Seed and Placement echo the run's scenario seed and placement
	// policy.
	Seed      int64
	Placement string
	// TransferScale and ComputeScale are the pricing model's effective
	// calibration factors (1 uncalibrated).
	TransferScale, ComputeScale float64
}

// WriteDriftJSON renders the audit as the DRIFT_<run>.json artifact —
// handcrafted, key-ordered, shortest-round-trip floats, so repeated
// audits of the same log are byte-identical.
func WriteDriftJSON(w io.Writer, r *DriftReport, meta DriftMeta) error {
	jw := &textSink{w: w}
	jw.printf("{\n  \"schema\": \"micstream-drift-v1\",\n")
	jw.printf("  \"run\": %s,\n  \"seed\": %d,\n  \"policy\": %s,\n", jsonStr(meta.Run), meta.Seed, jsonStr(meta.Placement))
	jw.printf("  \"transfer_scale\": %s,\n  \"compute_scale\": %s,\n", jsonFloat(meta.TransferScale), jsonFloat(meta.ComputeScale))
	jw.printf("  \"samples\": %d,\n", len(r.Samples))
	jw.printf("  \"buckets\": [\"<5%%\", \"<10%%\", \"<25%%\", \"<50%%\", \">=50%%\"],\n")
	jw.printf("  \"placement\": ")
	writeGroup(jw, &r.Placement)
	jw.printf(",\n  \"service\": ")
	writeGroup(jw, &r.Service)
	writeGroupList(jw, "by_tenant", r.ByTenant)
	writeGroupList(jw, "by_regime", r.ByRegime)
	writeGroupList(jw, "by_tenant_service", r.ByTenantService)
	jw.printf("\n}\n")
	return jw.err
}

func writeGroupList(jw *textSink, name string, groups []DriftGroup) {
	jw.printf(",\n  \"%s\": [", name)
	for i := range groups {
		if i > 0 {
			jw.printf(",")
		}
		jw.printf("\n    ")
		writeGroup(jw, &groups[i])
	}
	if len(groups) > 0 {
		jw.printf("\n  ")
	}
	jw.printf("]")
}

func writeGroup(jw *textSink, g *DriftGroup) {
	jw.printf("{\"key\": %s, \"count\": %d, \"hist\": [%d, %d, %d, %d, %d], \"mean_abs_pct\": %s, \"bias_pct\": %s, \"p50_abs_pct\": %s, \"p95_abs_pct\": %s}",
		jsonStr(g.Key), g.Count,
		g.Buckets[0], g.Buckets[1], g.Buckets[2], g.Buckets[3], g.Buckets[4],
		jsonFloat(g.MeanAbsPct), jsonFloat(g.BiasPct), jsonFloat(g.P50AbsPct), jsonFloat(g.P95AbsPct))
}

// textSink is a printf sink with a sticky error, shared by the
// deterministic JSON renderers in this package.
type textSink struct {
	w   io.Writer
	err error
}

func (jw *textSink) printf(format string, args ...any) {
	if jw.err != nil {
		return
	}
	_, jw.err = fmt.Fprintf(jw.w, format, args...)
}

// jsonStr quotes a string for JSON (the labels here are tenant names
// and policy ids — escape the structural characters, reject control
// bytes by escaping them numerically).
func jsonStr(s string) string {
	b := make([]byte, 0, len(s)+2)
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, fmt.Sprintf(`\u%04x`, c)...)
		default:
			b = append(b, c)
		}
	}
	return string(append(b, '"'))
}

// jsonFloat renders a float deterministically (shortest round-trip
// form, same across platforms).
func jsonFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
