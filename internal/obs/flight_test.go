package obs

import (
	"bytes"
	"strings"
	"testing"

	"micstream/internal/sim"
	"micstream/internal/telemetry"
)

func flEvent(at int64, kind telemetry.Kind, job int) telemetry.Event {
	return telemetry.Event{At: sim.Time(at), Kind: kind, Job: job, ID: 100 + job, Tenant: "A", Device: 0, From: -1}
}

// TestFlightFailTriggerDumpsPriorEvents checks that a Fail dumps the
// events leading up to it — the failure itself is the trigger, not
// part of the captured window — and that the ring resets afterwards.
func TestFlightFailTriggerDumpsPriorEvents(t *testing.T) {
	fl := NewFlightRecorder(8)
	for i := 0; i < 3; i++ {
		fl.OnEvent(flEvent(int64(i), telemetry.Dispatch, i))
	}
	fl.OnEvent(flEvent(9, telemetry.Fail, 2))
	dumps := fl.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("got %d dumps, want 1", len(dumps))
	}
	d := dumps[0]
	if !strings.Contains(d.Reason, "job 2") || !strings.Contains(d.Reason, "id 102") {
		t.Errorf("reason %q does not identify the failed job", d.Reason)
	}
	if d.At != sim.Time(9) {
		t.Errorf("dump stamped at %v, want 9", d.At)
	}
	if len(d.Events) != 3 {
		t.Fatalf("dump captured %d events, want the 3 preceding the failure", len(d.Events))
	}
	for i, e := range d.Events {
		if e.Kind != telemetry.Dispatch || e.Job != i {
			t.Errorf("event %d = %v job %d, want oldest-first dispatches", i, e.Kind, e.Job)
		}
	}
	// Ring restarts after a dump: only the Fail itself is pending.
	if fl.Pending() != 1 {
		t.Errorf("pending %d after dump, want 1 (the Fail event)", fl.Pending())
	}
}

// TestFlightRingWraps fills a small ring past capacity and confirms a
// trigger captures only the newest cap events, oldest first.
func TestFlightRingWraps(t *testing.T) {
	fl := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fl.OnEvent(flEvent(int64(i), telemetry.Dispatch, i))
	}
	fl.OnEvent(flEvent(10, telemetry.Fail, 9))
	d := fl.Dumps()[0]
	if len(d.Events) != 4 {
		t.Fatalf("captured %d events, want ring cap 4", len(d.Events))
	}
	for i, e := range d.Events {
		if e.Job != 6+i {
			t.Errorf("event %d is job %d, want %d (newest 4, oldest first)", i, e.Job, 6+i)
		}
	}
}

func p95Snap(tenant string, p95 sim.Duration) telemetry.MetricsSnapshot {
	return telemetry.MetricsSnapshot{
		At:      sim.Time(1000),
		Tenants: []telemetry.TenantMetrics{{Tenant: tenant, P95: p95}},
	}
}

// TestFlightP95TriggerOncePerTenant checks the latency trigger fires
// on the first breach per tenant and stays quiet on repeats.
func TestFlightP95TriggerOncePerTenant(t *testing.T) {
	fl := NewFlightRecorder(8)
	fl.SetP95Threshold(sim.Duration(5 * sim.Millisecond))
	fl.OnEvent(flEvent(1, telemetry.Dispatch, 0))

	fl.OnMetrics(p95Snap("A", sim.Duration(4*sim.Millisecond))) // under
	if len(fl.Dumps()) != 0 {
		t.Fatal("dumped below threshold")
	}
	fl.OnMetrics(p95Snap("A", sim.Duration(6*sim.Millisecond))) // breach
	fl.OnMetrics(p95Snap("A", sim.Duration(9*sim.Millisecond))) // repeat: quiet
	fl.OnMetrics(p95Snap("B", sim.Duration(7*sim.Millisecond))) // new tenant: fires
	dumps := fl.Dumps()
	if len(dumps) != 2 {
		t.Fatalf("got %d dumps, want one per breaching tenant", len(dumps))
	}
	if !strings.Contains(dumps[0].Reason, `"A"`) || !strings.Contains(dumps[1].Reason, `"B"`) {
		t.Errorf("reasons %q / %q do not name the breaching tenants", dumps[0].Reason, dumps[1].Reason)
	}
	if len(dumps[0].Events) != 1 || dumps[0].Events[0].Job != 0 {
		t.Errorf("first dump should capture the one pending event, got %v", dumps[0].Events)
	}
	// Threshold unset → no metrics trigger at all.
	quiet := NewFlightRecorder(8)
	quiet.OnMetrics(p95Snap("A", sim.Duration(sim.Second)))
	if len(quiet.Dumps()) != 0 {
		t.Error("recorder with no threshold dumped on metrics")
	}
}

// TestFlightWriteText locks the report shape: deterministic text, one
// header per dump, and an explicit line when nothing fired.
func TestFlightWriteText(t *testing.T) {
	fl := NewFlightRecorder(4)
	fl.OnEvent(flEvent(1, telemetry.Dispatch, 0))
	fl.OnEvent(flEvent(2, telemetry.Fail, 0))
	render := func() string {
		var buf bytes.Buffer
		if err := fl.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	out := render()
	if out != render() {
		t.Error("report not deterministic across renders")
	}
	if !strings.Contains(out, "failed") || !strings.Contains(out, "dispatch") {
		t.Errorf("report missing trigger reason or captured event:\n%s", out)
	}

	var empty bytes.Buffer
	if err := NewFlightRecorder(4).WriteText(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no triggers fired") {
		t.Errorf("empty report = %q", empty.String())
	}
}
