package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"micstream/internal/telemetry"
)

// openMetricsContentType is the OpenMetrics text exposition media
// type Prometheus negotiates.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Exporter renders the latest MetricsSnapshot in the OpenMetrics text
// exposition format — a zero-dependency Prometheus endpoint for
// `miccluster -serve`. Feed it snapshots with Observe (or wire it to
// a recorder's snapshot hook via Attach); Render and ServeHTTP expose
// the latest one. The exporter is a pure consumer on the far side of
// the recorder: observing never perturbs a run, and rendering the
// same snapshot twice is byte-identical (device order is positional,
// tenant order is the snapshot's own sorted order, floats render in
// shortest round-trip form).
type Exporter struct {
	mu   sync.Mutex
	snap telemetry.MetricsSnapshot
	seen bool
	aux  func(io.Writer) error
}

// NewExporter returns an exporter with no snapshot yet (Render emits
// only the trailing # EOF until one arrives).
func NewExporter() *Exporter { return &Exporter{} }

// Observe replaces the exporter's current snapshot. Safe for
// concurrent use with Render/ServeHTTP.
func (x *Exporter) Observe(s telemetry.MetricsSnapshot) {
	x.mu.Lock()
	x.snap = s
	x.seen = true
	x.mu.Unlock()
}

// Attach subscribes the exporter to a recorder's drain-instant
// snapshots. It claims the recorder's single snapshot observer; to
// fan out to several consumers, install a composite hook instead.
func (x *Exporter) Attach(rec *telemetry.Recorder) {
	rec.SetOnMetrics(x.Observe)
}

// SetAux installs (or clears, with nil) an auxiliary renderer invoked
// on every Render between the snapshot families and the trailing
// # EOF marker — the seam through which other layers (the SLO
// evaluator's mic_slo_* families) join the same exposition without
// the exporter importing them. The function must emit well-formed
// OpenMetrics text and must be safe to call whenever Render is.
func (x *Exporter) SetAux(fn func(io.Writer) error) {
	x.mu.Lock()
	x.aux = fn
	x.mu.Unlock()
}

// Render writes the latest snapshot as OpenMetrics text, terminated
// by the mandatory # EOF marker.
func (x *Exporter) Render(w io.Writer) error {
	x.mu.Lock()
	snap, seen, aux := x.snap, x.seen, x.aux
	x.mu.Unlock()
	mw := &textSink{w: w}
	if seen {
		renderSnapshot(mw, &snap)
	}
	if aux != nil && mw.err == nil {
		mw.err = aux(w)
	}
	mw.printf("# EOF\n")
	return mw.err
}

// ServeHTTP implements http.Handler for the /metrics endpoint.
func (x *Exporter) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", openMetricsContentType)
	_ = x.Render(w)
}

func renderSnapshot(w *textSink, s *telemetry.MetricsSnapshot) {
	family(w, "micstream_jobs_done", "counter", "Jobs completed this run.")
	w.printf("micstream_jobs_done_total %d\n", s.Done)
	family(w, "micstream_steals", "counter", "Drain-instant re-bindings this run.")
	w.printf("micstream_steals_total %d\n", s.Steals)
	family(w, "micstream_cluster_queue_depth", "gauge", "Cluster-level admission queue depth.")
	w.printf("micstream_cluster_queue_depth %d\n", s.ClusterQueue)
	family(w, "micstream_fairness_jain", "gauge", "Jain's fairness index over per-tenant throughputs.")
	w.printf("micstream_fairness_jain %s\n", omFloat(s.Fairness))
	family(w, "micstream_elapsed_virtual_seconds", "gauge", "Virtual time elapsed since the run started.")
	w.printf("micstream_elapsed_virtual_seconds %s\n", omFloat(s.Elapsed.Seconds()))
	family(w, "micstream_residency_hit_ratio", "gauge", "Resident bytes served over total staging demand (0 when no demand).")
	ratio := 0.0
	if total := s.HitBytes + s.MissBytes; total > 0 {
		ratio = float64(s.HitBytes) / float64(total)
	}
	w.printf("micstream_residency_hit_ratio %s\n", omFloat(ratio))

	family(w, "micstream_device_utilization", "gauge", "Per-device kernel occupancy over elapsed time and partitions.")
	for i := range s.Devices {
		d := &s.Devices[i]
		w.printf("micstream_device_utilization{device=\"%d\"} %s\n", d.Device, omFloat(d.Utilization))
	}
	family(w, "micstream_device_queue_depth", "gauge", "Per-device committed-but-undispatched jobs.")
	for i := range s.Devices {
		d := &s.Devices[i]
		w.printf("micstream_device_queue_depth{device=\"%d\"} %d\n", d.Device, d.Queued)
	}
	family(w, "micstream_device_inflight", "gauge", "Per-device dispatched-but-unfinished jobs.")
	for i := range s.Devices {
		d := &s.Devices[i]
		w.printf("micstream_device_inflight{device=\"%d\"} %d\n", d.Device, d.InFlight)
	}
	family(w, "micstream_device_staged_bytes", "gauge", "Per-device staging volume charged this run.")
	for i := range s.Devices {
		d := &s.Devices[i]
		w.printf("micstream_device_staged_bytes{device=\"%d\"} %d\n", d.Device, d.StagedBytes)
	}
	family(w, "micstream_device_resident_bytes", "gauge", "Per-device residency-cache footprint.")
	for i := range s.Devices {
		d := &s.Devices[i]
		w.printf("micstream_device_resident_bytes{device=\"%d\"} %d\n", d.Device, d.ResidentBytes)
	}

	family(w, "micstream_tenant_jobs_done", "counter", "Per-tenant jobs completed this run.")
	for i := range s.Tenants {
		t := &s.Tenants[i]
		w.printf("micstream_tenant_jobs_done_total{tenant=%s} %d\n", omLabel(t.Tenant), t.Done)
	}
	family(w, "micstream_tenant_throughput_jobs_per_second", "gauge", "Per-tenant completions per virtual second.")
	for i := range s.Tenants {
		t := &s.Tenants[i]
		w.printf("micstream_tenant_throughput_jobs_per_second{tenant=%s} %s\n", omLabel(t.Tenant), omFloat(t.Throughput))
	}
	family(w, "micstream_tenant_p95_latency_seconds", "gauge", "Per-tenant 95th-percentile response time so far.")
	for i := range s.Tenants {
		t := &s.Tenants[i]
		w.printf("micstream_tenant_p95_latency_seconds{tenant=%s} %s\n", omLabel(t.Tenant), omFloat(t.P95.Seconds()))
	}
}

func family(w *textSink, name, typ, help string) {
	w.printf("# TYPE %s %s\n# HELP %s %s\n", name, typ, name, help)
}

// omFloat renders a float in the shortest round-trip decimal form —
// deterministic across runs and platforms.
func omFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// omLabel quotes a label value per the exposition format (backslash,
// quote and newline escaped).
func omLabel(s string) string {
	b := make([]byte, 0, len(s)+2)
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\', '"':
			b = append(b, '\\', c)
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, c)
		}
	}
	return string(append(b, '"'))
}

// ListenAndServe exposes the exporter at /metrics (plus a minimal /)
// on addr, blocking until the server fails. `miccluster -serve` calls
// it after the run so a scraper can read the final state; tests hit
// ServeHTTP directly.
func (x *Exporter) ListenAndServe(addr string) error {
	mux := http.NewServeMux()
	mux.Handle("/metrics", x)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "micstream metrics: scrape /metrics")
	})
	return http.ListenAndServe(addr, mux)
}
