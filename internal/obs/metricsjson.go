package obs

import (
	"io"

	"micstream/internal/telemetry"
)

// WriteMetricsJSON renders a drain-instant snapshot series as
// machine-readable JSON — the `miccluster -metrics-json` artifact.
// The rendering is handcrafted and key-ordered like the other
// artifact writers, so identical series are byte-identical files:
// integers verbatim, durations in nanoseconds of virtual time, floats
// in shortest round-trip form.
func WriteMetricsJSON(w io.Writer, snaps []telemetry.MetricsSnapshot) error {
	jw := &textSink{w: w}
	jw.printf("{\n  \"schema\": \"micstream-metrics-v1\",\n  \"snapshots\": [")
	for i := range snaps {
		s := &snaps[i]
		if i > 0 {
			jw.printf(",")
		}
		jw.printf("\n    {\"at_ns\": %d, \"elapsed_ns\": %d, \"done\": %d, \"steals\": %d, \"cluster_queue\": %d, \"fairness\": %s, \"hit_bytes\": %d, \"miss_bytes\": %d,\n",
			int64(s.At), int64(s.Elapsed), s.Done, s.Steals, s.ClusterQueue, jsonFloat(s.Fairness), s.HitBytes, s.MissBytes)
		jw.printf("     \"devices\": [")
		for j := range s.Devices {
			d := &s.Devices[j]
			if j > 0 {
				jw.printf(",")
			}
			jw.printf("\n      {\"device\": %d, \"queued\": %d, \"inflight\": %d, \"backlog_ns\": %d, \"kernel_busy_ns\": %d, \"link_busy_ns\": %d, \"utilization\": %s, \"staged_bytes\": %d, \"resident_bytes\": %d}",
				d.Device, d.Queued, d.InFlight, int64(d.Backlog), int64(d.KernelBusy), int64(d.LinkBusy), jsonFloat(d.Utilization), d.StagedBytes, d.ResidentBytes)
		}
		if len(s.Devices) > 0 {
			jw.printf("\n     ")
		}
		jw.printf("],\n     \"tenants\": [")
		for j := range s.Tenants {
			t := &s.Tenants[j]
			if j > 0 {
				jw.printf(",")
			}
			jw.printf("\n      {\"tenant\": %s, \"done\": %d, \"throughput\": %s, \"mean_latency_ns\": %d, \"p95_ns\": %d}",
				jsonStr(t.Tenant), t.Done, jsonFloat(t.Throughput), int64(t.MeanLatency), int64(t.P95))
		}
		if len(s.Tenants) > 0 {
			jw.printf("\n     ")
		}
		jw.printf("]}")
	}
	if len(snaps) > 0 {
		jw.printf("\n  ")
	}
	jw.printf("]\n}\n")
	return jw.err
}
