package obs

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"micstream/internal/sim"
	"micstream/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the golden artifacts")

// goldenSnapshot is a handcrafted MetricsSnapshot exercising every
// rendered family: two devices, two tenants (one with an escapable
// label), residency split, fractional rates.
func goldenSnapshot() telemetry.MetricsSnapshot {
	ms := sim.Duration(sim.Millisecond)
	return telemetry.MetricsSnapshot{
		At: 40 * sim.Time(ms), Elapsed: 40 * ms,
		Done: 12, Steals: 3, ClusterQueue: 2, Fairness: 0.9375,
		HitBytes: 3 << 20, MissBytes: 1 << 20,
		Devices: []telemetry.DeviceMetrics{
			{Device: 0, Queued: 1, InFlight: 2, Backlog: 5 * ms, KernelBusy: 30 * ms, LinkBusy: 10 * ms,
				Utilization: 0.75, StagedBytes: 1 << 20, ResidentBytes: 3 << 20},
			{Device: 1, Queued: 0, InFlight: 1, Backlog: 0, KernelBusy: 20 * ms, LinkBusy: 5 * ms,
				Utilization: 0.5},
		},
		Tenants: []telemetry.TenantMetrics{
			{Tenant: `A"quoted`, Done: 7, Throughput: 175, MeanLatency: 3 * ms, P95: 9 * ms},
			{Tenant: "B", Done: 5, Throughput: 125, MeanLatency: 4 * ms, P95: 12 * ms},
		},
	}
}

// TestOpenMetricsGolden locks the exposition format byte-for-byte.
func TestOpenMetricsGolden(t *testing.T) {
	x := NewExporter()
	x.Observe(goldenSnapshot())
	var buf bytes.Buffer
	if err := x.Render(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "openmetrics_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden %s (regenerate with -update if deliberate)\ngot:\n%s", path, buf.String())
	}
}

// TestOpenMetricsDeterministic renders the same snapshot repeatedly
// and from a fresh exporter — byte-identical every time.
func TestOpenMetricsDeterministic(t *testing.T) {
	render := func() []byte {
		x := NewExporter()
		x.Observe(goldenSnapshot())
		var buf bytes.Buffer
		if err := x.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := render()
	for i := 0; i < 3; i++ {
		if !bytes.Equal(first, render()) {
			t.Fatal("repeated renders differ")
		}
	}
}

// TestOpenMetricsExposition checks the structural contract: every
// line is a comment or a sample, the required families appear, label
// escaping holds, and the text ends with the mandatory # EOF.
func TestOpenMetricsExposition(t *testing.T) {
	x := NewExporter()
	x.Observe(goldenSnapshot())
	var buf bytes.Buffer
	if err := x.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("exposition does not end with # EOF")
	}
	for _, want := range []string{
		"micstream_jobs_done_total 12",
		"micstream_steals_total 3",
		"micstream_fairness_jain 0.9375",
		"micstream_residency_hit_ratio 0.75",
		`micstream_device_utilization{device="0"} 0.75`,
		`micstream_tenant_jobs_done_total{tenant="A\"quoted"} 7`,
		`micstream_tenant_p95_latency_seconds{tenant="B"} 0.012`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "micstream_") {
			t.Errorf("malformed line %q", line)
		}
	}
}

// TestOpenMetricsHTTP serves the endpoint and checks the negotiated
// content type.
func TestOpenMetricsHTTP(t *testing.T) {
	x := NewExporter()
	x.Observe(goldenSnapshot())
	rr := httptest.NewRecorder()
	x.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "micstream_jobs_done_total") {
		t.Errorf("body missing metrics:\n%s", rr.Body.String())
	}
}

// TestOpenMetricsEmpty renders an exporter that never saw a snapshot:
// just the EOF marker, still valid exposition.
func TestOpenMetricsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewExporter().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "# EOF\n" {
		t.Errorf("empty exposition = %q, want \"# EOF\\n\"", buf.String())
	}
}

// TestDisabledTelemetryPathStaysZeroAlloc is the observability alloc
// guard: with telemetry off (nil recorder) the emission pattern the
// schedulers use — Enabled guard, Emit, AddMetrics, hook setters —
// allocates nothing, hooks included.
func TestDisabledTelemetryPathStaysZeroAlloc(t *testing.T) {
	var rec *telemetry.Recorder
	fl := NewFlightRecorder(8)
	// Hook wiring is one-time setup; on a nil recorder it must be an
	// accepted no-op.
	rec.SetOnEvent(fl.OnEvent)
	rec.SetOnMetrics(fl.OnMetrics)
	allocs := testing.AllocsPerRun(1000, func() {
		// The disabled fast path: a nil recorder drops everything
		// before touching observer hooks.
		if rec.Enabled() {
			t.Fatal("nil recorder reported enabled")
		}
		rec.Emit(telemetry.Event{Kind: telemetry.Dispatch, Job: 1, Device: 0})
		rec.AddMetrics(telemetry.MetricsSnapshot{Done: 1})
	})
	if allocs != 0 {
		t.Errorf("disabled telemetry path allocates %.1f per op, want 0", allocs)
	}
}
