package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"micstream/internal/sim"
	"micstream/internal/telemetry"
)

func metricsSeries() []telemetry.MetricsSnapshot {
	ms := sim.Duration(sim.Millisecond)
	first := goldenSnapshot()
	second := telemetry.MetricsSnapshot{
		At: 80 * sim.Time(ms), Elapsed: 80 * ms,
		Done: 24, Steals: 5, Fairness: 1,
		HitBytes: 6 << 20, MissBytes: 2 << 20,
		Devices: []telemetry.DeviceMetrics{
			{Device: 0, KernelBusy: 60 * ms, Utilization: 0.75},
			{Device: 1, KernelBusy: 50 * ms, Utilization: 0.625},
		},
		Tenants: []telemetry.TenantMetrics{
			{Tenant: `A"quoted`, Done: 13, Throughput: 162.5, MeanLatency: 3 * ms, P95: 8 * ms},
			{Tenant: "B", Done: 11, Throughput: 137.5, MeanLatency: 4 * ms, P95: 11 * ms},
		},
	}
	return []telemetry.MetricsSnapshot{first, second}
}

// TestMetricsJSONGolden locks the -metrics-json artifact byte-for-byte
// and confirms it parses as JSON with the expected envelope.
func TestMetricsJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, metricsSeries()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema    string `json:"schema"`
		Snapshots []struct {
			Done    int `json:"done"`
			Devices []struct {
				Device int `json:"device"`
			} `json:"devices"`
			Tenants []struct {
				Tenant string `json:"tenant"`
			} `json:"tenants"`
		} `json:"snapshots"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Schema != "micstream-metrics-v1" || len(doc.Snapshots) != 2 {
		t.Fatalf("envelope schema=%q snapshots=%d", doc.Schema, len(doc.Snapshots))
	}
	if doc.Snapshots[1].Done != 24 || doc.Snapshots[1].Tenants[0].Tenant != `A"quoted` {
		t.Errorf("second snapshot decoded wrong: %+v", doc.Snapshots[1])
	}

	path := filepath.Join("testdata", "metrics_golden.json")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("artifact differs from golden %s (regenerate with -update if deliberate)\ngot:\n%s", path, buf.String())
	}
}

// TestMetricsJSONEmpty: a run with no snapshots still yields a valid,
// stable document.
func TestMetricsJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty artifact invalid: %v\n%s", err, buf.String())
	}
}
