package obs_test

// Integration properties of the explanation layer against real
// cluster runs, driven through the micstream facade (the external
// test package breaks the import cycle: micstream re-exports obs).
// The load-bearing one is the folding identity — for every completed
// job the five attributed phases sum exactly to the observed latency,
// so `-explain` is an accounting identity, not an estimate.

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	micstream "micstream"
	"micstream/internal/obs"
	"micstream/internal/telemetry"
)

type mix struct {
	name string
	cfg  micstream.ClusterScenarioConfig
	opts func(rec *micstream.Telemetry) []micstream.ClusterOption
}

// obsMixes covers the three decision regimes: plain placement,
// slicing+stealing (Slice/Requeue/Preempt events), and residency
// (Hit/Stage with affinity placement).
func obsMixes() []mix {
	return []mix{
		{
			name: "placement",
			cfg: micstream.ClusterScenarioConfig{
				Jobs: 24, Seed: 7, SizeSpread: 4,
				AffinityFraction: 0.5, Origins: []int{0, 1},
			},
			opts: func(rec *micstream.Telemetry) []micstream.ClusterOption {
				return []micstream.ClusterOption{
					micstream.WithPlacement(micstream.PredictedPlacement()),
					micstream.WithClusterTelemetry(rec),
				}
			},
		},
		{
			name: "sliced-stealing",
			cfg: micstream.ClusterScenarioConfig{
				Jobs: 24, Seed: 11, SizeSpread: 6, TilesPerJob: 4,
				AffinityFraction: 0.5, Origins: []int{0},
			},
			opts: func(rec *micstream.Telemetry) []micstream.ClusterOption {
				return []micstream.ClusterOption{
					micstream.WithPlacement(micstream.PredictedPlacement()),
					micstream.WithClusterStealing(time.Nanosecond),
					micstream.WithClusterSlicing(1),
					micstream.WithClusterQueueDepth(16),
					micstream.WithClusterTelemetry(rec),
				}
			},
		},
		{
			name: "residency",
			cfg: micstream.ClusterScenarioConfig{
				Jobs: 24, Seed: 5, Arrival: "bursty", Datasets: 4,
				WriteFraction: 0.25, XferBytes: 8 << 20,
				AffinityFraction: 0.75, Origins: []int{0, 1},
			},
			opts: func(rec *micstream.Telemetry) []micstream.ClusterOption {
				return []micstream.ClusterOption{
					micstream.WithPlacement(micstream.AffinityPlacement()),
					micstream.WithResidency(12 << 20),
					micstream.WithClusterTelemetry(rec),
				}
			},
		},
	}
}

func runMix(t *testing.T, m mix, rec *micstream.Telemetry) *micstream.ClusterResult {
	t.Helper()
	var opts []micstream.ClusterOption
	if m.opts != nil {
		opts = m.opts(rec)
	}
	opts = append(opts, micstream.WithClusterDevices(2), micstream.WithClusterPartitions(2), micstream.WithClusterStreams(2))
	c, err := micstream.NewCluster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := micstream.BuildClusterScenario(c, m.cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestTimelinePhaseSumIsExact is the acceptance property: for every
// completed job across every mix, the folded phases partition the
// job's latency exactly, and the folded instants agree with the
// cluster's own Outcome record.
func TestTimelinePhaseSumIsExact(t *testing.T) {
	for _, m := range obsMixes() {
		t.Run(m.name, func(t *testing.T) {
			rec := micstream.NewTelemetry()
			r := runMix(t, m, rec)
			ts := obs.Fold(rec.Events())
			if len(ts) != len(r.Jobs) {
				t.Fatalf("folded %d timelines for %d jobs", len(ts), len(r.Jobs))
			}
			completed := 0
			for i := range ts {
				tl := &ts[i]
				o := &r.Jobs[tl.Job]
				if tl.Failed || o.Failed {
					continue
				}
				completed++
				if tl.PhaseSum() != tl.Latency() {
					t.Errorf("job %d: phase sum %v != latency %v (%+v)", tl.Job, tl.PhaseSum(), tl.Latency(), *tl)
				}
				if tl.Admitted != o.Arrival || tl.Done != o.Done {
					t.Errorf("job %d: folded instants [%v,%v] disagree with outcome [%v,%v]",
						tl.Job, tl.Admitted, tl.Done, o.Arrival, o.Done)
				}
				if got, want := tl.Latency(), o.Done.Sub(o.Arrival); got != want {
					t.Errorf("job %d: folded latency %v != outcome latency %v", tl.Job, got, want)
				}
				if tl.Slices != o.Slices {
					t.Errorf("job %d: folded %d slices, outcome says %d", tl.Job, tl.Slices, o.Slices)
				}
			}
			if completed == 0 {
				t.Fatal("mix completed no jobs; property vacuous")
			}
			// The aggregates carry the same identity: summed latency ==
			// summed phases per group.
			for _, b := range append(obs.ByTenant(ts), obs.ByDevice(ts)...) {
				if sum := b.PlaceWait + b.CommitWait + b.Exec + b.SliceWait + b.Migration; sum != b.Latency {
					t.Errorf("group %s: phase totals %v != latency total %v", b.Key, sum, b.Latency)
				}
			}
		})
	}
}

// TestGrantClosure checks the Requeue contract: on a clean run every
// stream grant (Dispatch or Slice) is closed by exactly one Requeue
// or Complete.
func TestGrantClosure(t *testing.T) {
	for _, m := range obsMixes() {
		t.Run(m.name, func(t *testing.T) {
			rec := micstream.NewTelemetry()
			runMix(t, m, rec)
			grants := rec.Count(telemetry.Dispatch) + rec.Count(telemetry.Slice)
			closes := rec.Count(telemetry.Requeue) + rec.Count(telemetry.Complete)
			if grants == 0 || grants != closes {
				t.Errorf("%d grants, %d closes — every grant must close with one Requeue or Complete", grants, closes)
			}
			if m.name == "sliced-stealing" && rec.Count(telemetry.Requeue) == 0 {
				t.Error("sliced mix emitted no Requeue events; slicing coverage vacuous")
			}
		})
	}
}

// TestObserversNeverPerturbResult is the acceptance bit-identity: a
// run observed by telemetry + a live OpenMetrics exporter + a flight
// recorder (composite hooks) yields a Result deeply equal to a bare
// run of the same scenario.
func TestObserversNeverPerturbResult(t *testing.T) {
	for _, m := range obsMixes() {
		t.Run(m.name, func(t *testing.T) {
			// A nil recorder through WithClusterTelemetry is the
			// disabled idiom, so this is the bare run.
			bare := runMix(t, m, nil)

			rec := micstream.NewTelemetry()
			exp := micstream.NewOpenMetricsExporter()
			fl := micstream.NewFlightRecorder(64)
			fl.SetP95Threshold(micstream.Duration(1)) // trips on every snapshot's first breach
			rec.SetOnEvent(fl.OnEvent)
			rec.SetOnMetrics(func(s micstream.MetricsSnapshot) {
				exp.Observe(s)
				fl.OnMetrics(s)
			})
			observed := runMix(t, m, rec)

			if !reflect.DeepEqual(bare, observed) {
				t.Errorf("observed run's Result differs from bare run")
			}
			if rec.Len() == 0 {
				t.Fatal("observed run recorded nothing; comparison vacuous")
			}
			var buf bytes.Buffer
			if err := exp.Render(&buf); err != nil || !bytes.Contains(buf.Bytes(), []byte("micstream_jobs_done_total")) {
				t.Errorf("exporter saw no snapshots (err %v):\n%s", err, buf.String())
			}
			if len(fl.Dumps()) == 0 && fl.Pending() == 0 {
				t.Error("flight recorder observed nothing")
			}
		})
	}
}

// TestDriftAuditOnClusterRuns checks the audit extracts the expected
// sample population and that the artifact renders byte-identically
// across repeated identical runs.
func TestDriftAuditOnClusterRuns(t *testing.T) {
	for _, m := range obsMixes() {
		t.Run(m.name, func(t *testing.T) {
			rec := micstream.NewTelemetry()
			r := runMix(t, m, rec)
			report := micstream.AuditDrift(rec.Events())
			if report.Placement.Count == 0 {
				t.Error("predicted/affinity run yielded no placement samples")
			}
			if report.Service.Count == 0 {
				t.Error("no service samples")
			}
			done := 0
			for i := range r.Jobs {
				if !r.Jobs[i].Failed {
					done++
				}
			}
			if report.Placement.Count > done {
				t.Errorf("%d placement samples exceed %d completions", report.Placement.Count, done)
			}
			var hist int
			for _, n := range report.Placement.Buckets {
				hist += n
			}
			if hist != report.Placement.Count {
				t.Errorf("histogram total %d != count %d", hist, report.Placement.Count)
			}

			meta := micstream.DriftMeta{Run: "test", Seed: int64(m.cfg.Seed), Placement: "predicted", TransferScale: 1, ComputeScale: 1}
			var first bytes.Buffer
			if err := micstream.WriteDriftJSON(&first, report, meta); err != nil {
				t.Fatal(err)
			}
			rec2 := micstream.NewTelemetry()
			runMix(t, m, rec2)
			var second bytes.Buffer
			if err := micstream.WriteDriftJSON(&second, micstream.AuditDrift(rec2.Events()), meta); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Errorf("drift artifact not byte-deterministic across identical runs:\n%s\n---\n%s", first.String(), second.String())
			}
		})
	}
}
