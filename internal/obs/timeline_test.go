package obs

import (
	"bytes"
	"strings"
	"testing"

	"micstream/internal/sim"
	"micstream/internal/telemetry"
)

const tms = sim.Time(sim.Millisecond)

// TestFoldSingleShot folds the minimal lifecycle: admit → place →
// dispatch → complete, with a staging commitment in between.
func TestFoldSingleShot(t *testing.T) {
	events := []telemetry.Event{
		{At: 0, Kind: telemetry.Admit, Job: 0, ID: 7, Tenant: "A", Device: -1},
		{At: 1 * tms, Kind: telemetry.Place, Job: 0, ID: 7, Tenant: "A", Device: 1},
		{At: 1 * tms, Kind: telemetry.Hit, Job: 0, Device: 1, Bytes: 100},
		{At: 1 * tms, Kind: telemetry.Stage, Job: 0, Device: 1, Bytes: 900, Dur: sim.Duration(tms)},
		{At: 3 * tms, Kind: telemetry.Dispatch, Job: 0, ID: 7, Tenant: "A", Device: 1, Stream: 2, Dur: sim.Duration(5 * tms)},
		{At: 9 * tms, Kind: telemetry.Complete, Job: 0, ID: 7, Tenant: "A", Device: 1, Stream: 2, Dur: sim.Duration(6 * tms)},
	}
	ts := Fold(events)
	if len(ts) != 1 {
		t.Fatalf("got %d timelines, want 1", len(ts))
	}
	tl := ts[0]
	if tl.PlaceWait != sim.Duration(tms) || tl.CommitWait != sim.Duration(2*tms) || tl.Exec != sim.Duration(6*tms) {
		t.Errorf("phases = %+v, want place-wait 1ms commit-wait 2ms exec 6ms", tl)
	}
	if tl.SliceWait != 0 || tl.Migration != 0 {
		t.Errorf("unexpected gap phases: %+v", tl)
	}
	if tl.PhaseSum() != tl.Latency() || tl.Latency() != sim.Duration(9*tms) {
		t.Errorf("phase sum %v != latency %v", tl.PhaseSum(), tl.Latency())
	}
	if tl.Staging != sim.Duration(tms) || tl.StagedBytes != 900 || tl.HitBytes != 100 {
		t.Errorf("staging attribution wrong: %+v", tl)
	}
	if tl.Device != 1 || tl.Slices != 1 || tl.CriticalPhase() != PhaseExec {
		t.Errorf("metadata wrong: device %d slices %d critical %s", tl.Device, tl.Slices, tl.CriticalPhase())
	}
}

// TestFoldSlicedWithMigration exercises the full phase vocabulary: a
// job sliced into three grants, the second gap crossing devices via a
// preemption, so exec spans, slice waits and migration gaps all
// accrue — and still partition the latency exactly.
func TestFoldSlicedWithMigration(t *testing.T) {
	events := []telemetry.Event{
		{At: 0, Kind: telemetry.Admit, Job: 3, ID: 30, Tenant: "B", Device: -1},
		{At: 2 * tms, Kind: telemetry.Place, Job: 3, Device: 0},
		{At: 4 * tms, Kind: telemetry.Dispatch, Job: 3, Device: 0, Stream: 0, Dur: sim.Duration(3 * tms)},
		{At: 7 * tms, Kind: telemetry.Requeue, Job: 3, Device: 0, Stream: 0, Dur: sim.Duration(3 * tms)},
		{At: 8 * tms, Kind: telemetry.Slice, Job: 3, Device: 0, Stream: 0, Dur: sim.Duration(2 * tms)},
		{At: 10 * tms, Kind: telemetry.Requeue, Job: 3, Device: 0, Stream: 0, Dur: sim.Duration(2 * tms)},
		{At: 12 * tms, Kind: telemetry.Preempt, Job: 3, Device: 1, From: 0, Dur: sim.Duration(tms)},
		{At: 12 * tms, Kind: telemetry.Stage, Job: 3, Device: 1, Bytes: 50, Dur: sim.Duration(tms / 2)},
		{At: 13 * tms, Kind: telemetry.Slice, Job: 3, Device: 1, Stream: 4, Dur: sim.Duration(2 * tms)},
		{At: 15 * tms, Kind: telemetry.Complete, Job: 3, Device: 1, Stream: 4, Dur: sim.Duration(11 * tms)},
	}
	tl := Fold(events)[0]
	if tl.PlaceWait != sim.Duration(2*tms) || tl.CommitWait != sim.Duration(2*tms) {
		t.Errorf("waits wrong: %+v", tl)
	}
	if tl.Exec != sim.Duration(7*tms) { // 3 + 2 + 2
		t.Errorf("exec = %v, want 7ms", tl.Exec)
	}
	if tl.SliceWait != sim.Duration(tms) { // 7→8 on-device
		t.Errorf("slice-wait = %v, want 1ms", tl.SliceWait)
	}
	if tl.Migration != sim.Duration(3*tms) { // 10→13 across the preempt
		t.Errorf("migration = %v, want 3ms", tl.Migration)
	}
	if tl.PhaseSum() != tl.Latency() {
		t.Errorf("phase sum %v != latency %v", tl.PhaseSum(), tl.Latency())
	}
	if tl.Slices != 3 || tl.Preempts != 1 || tl.Device != 1 {
		t.Errorf("counts wrong: %+v", tl)
	}
	if tl.Staging != sim.Duration(tms/2) || tl.StagedBytes != 50 {
		t.Errorf("migrated staging not flushed: %+v", tl)
	}
}

// TestFoldStealDiscardsWithdrawnStaging checks the commitment
// discipline: a Stage recorded before a pre-dispatch Steal was
// un-charged by the withdraw and must not appear in the timeline,
// while the thief's re-staging must.
func TestFoldStealDiscardsWithdrawnStaging(t *testing.T) {
	events := []telemetry.Event{
		{At: 0, Kind: telemetry.Admit, Job: 1, ID: 11, Tenant: "A", Device: -1},
		{At: 1 * tms, Kind: telemetry.Place, Job: 1, Device: 0},
		{At: 1 * tms, Kind: telemetry.Stage, Job: 1, Device: 0, Bytes: 1000, Dur: sim.Duration(2 * tms)},
		{At: 5 * tms, Kind: telemetry.Steal, Job: 1, Device: 1, From: 0, Dur: sim.Duration(4 * tms)},
		{At: 5 * tms, Kind: telemetry.Stage, Job: 1, Device: 1, Bytes: 400, Dur: sim.Duration(tms)},
		{At: 6 * tms, Kind: telemetry.Dispatch, Job: 1, Device: 1, Stream: 3, Dur: sim.Duration(2 * tms)},
		{At: 8 * tms, Kind: telemetry.Complete, Job: 1, Device: 1, Stream: 3, Dur: sim.Duration(2 * tms)},
	}
	tl := Fold(events)[0]
	if tl.StagedBytes != 400 || tl.Staging != sim.Duration(tms) {
		t.Errorf("withdrawn staging leaked into the timeline: %+v", tl)
	}
	if tl.Steals != 1 || tl.Device != 1 {
		t.Errorf("steal not recorded: %+v", tl)
	}
	// The steal happened during the commit wait: placement → dispatch
	// is all commit wait, no migration gap (the job never ran on the
	// victim).
	if tl.CommitWait != sim.Duration(5*tms) || tl.Migration != 0 {
		t.Errorf("steal misattributed: %+v", tl)
	}
	if tl.PhaseSum() != tl.Latency() {
		t.Errorf("phase sum %v != latency %v", tl.PhaseSum(), tl.Latency())
	}
}

// TestFoldMultiRunReopensIndices folds a two-run log (the recorder is
// append-only across runs): each run's Admit for job 0 opens a fresh
// timeline.
func TestFoldMultiRunReopensIndices(t *testing.T) {
	one := []telemetry.Event{
		{At: 0, Kind: telemetry.Admit, Job: 0, ID: 1, Tenant: "A", Device: -1},
		{At: 1 * tms, Kind: telemetry.Dispatch, Job: 0, Device: -1, Stream: 0, Dur: sim.Duration(tms)},
		{At: 2 * tms, Kind: telemetry.Complete, Job: 0, Device: -1, Stream: 0, Dur: sim.Duration(tms)},
	}
	two := []telemetry.Event{
		{At: 10 * tms, Kind: telemetry.Admit, Job: 0, ID: 2, Tenant: "A", Device: -1},
		{At: 11 * tms, Kind: telemetry.Dispatch, Job: 0, Device: -1, Stream: 0, Dur: sim.Duration(tms)},
		{At: 13 * tms, Kind: telemetry.Complete, Job: 0, Device: -1, Stream: 0, Dur: sim.Duration(3 * tms)},
	}
	ts := Fold(append(append([]telemetry.Event{}, one...), two...))
	if len(ts) != 2 {
		t.Fatalf("got %d timelines, want 2", len(ts))
	}
	if ts[0].ID != 1 || ts[1].ID != 2 {
		t.Errorf("runs not split: %+v", ts)
	}
	if ts[0].Latency() != sim.Duration(2*tms) || ts[1].Latency() != sim.Duration(3*tms) {
		t.Errorf("latencies wrong: %v %v", ts[0].Latency(), ts[1].Latency())
	}
	// Standalone scheduler logs have no Place event: the commit wait
	// anchors on admission and place-wait stays zero.
	if ts[0].PlaceWait != 0 || ts[0].CommitWait != sim.Duration(tms) {
		t.Errorf("standalone anchor wrong: %+v", ts[0])
	}
}

// TestFoldFailedJob marks failures and excludes them from aggregates.
func TestFoldFailedJob(t *testing.T) {
	events := []telemetry.Event{
		{At: 0, Kind: telemetry.Admit, Job: 0, ID: 1, Tenant: "A", Device: -1},
		{At: 1 * tms, Kind: telemetry.Fail, Job: 0, ID: 1, Tenant: "A", Device: -1},
		{At: 0, Kind: telemetry.Admit, Job: 1, ID: 2, Tenant: "A", Device: -1},
		{At: 1 * tms, Kind: telemetry.Dispatch, Job: 1, Device: -1, Stream: 0, Dur: sim.Duration(tms)},
		{At: 2 * tms, Kind: telemetry.Complete, Job: 1, Device: -1, Stream: 0, Dur: sim.Duration(tms)},
	}
	ts := Fold(events)
	if !ts[0].Failed || ts[1].Failed {
		t.Fatalf("failure flags wrong: %+v", ts)
	}
	byTenant := ByTenant(ts)
	if len(byTenant) != 1 || byTenant[0].Jobs != 1 {
		t.Errorf("failed job leaked into aggregates: %+v", byTenant)
	}
}

// TestBreakdownAggregation checks grouping keys, ordering and sums.
func TestBreakdownAggregation(t *testing.T) {
	ts := []Timeline{
		{Job: 0, Tenant: "B", Device: 1, Done: 10 * tms, Exec: sim.Duration(4 * tms), CommitWait: sim.Duration(6 * tms), Admitted: 0},
		{Job: 1, Tenant: "A", Device: 0, Done: 8 * tms, Exec: sim.Duration(8 * tms), Admitted: 0},
		{Job: 2, Tenant: "B", Device: 0, Done: 6 * tms, Exec: sim.Duration(6 * tms), Admitted: 0},
	}
	byTenant := ByTenant(ts)
	if len(byTenant) != 2 || byTenant[0].Key != "A" || byTenant[1].Key != "B" {
		t.Fatalf("tenant grouping wrong: %+v", byTenant)
	}
	if byTenant[1].Jobs != 2 || byTenant[1].Exec != sim.Duration(10*tms) || byTenant[1].Latency != sim.Duration(16*tms) {
		t.Errorf("tenant B aggregate wrong: %+v", byTenant[1])
	}
	byDev := ByDevice(ts)
	if len(byDev) != 2 || byDev[0].Key != "device0" || byDev[0].Jobs != 2 {
		t.Errorf("device grouping wrong: %+v", byDev)
	}
}

// TestWriteTimelineRenders smoke-checks the -explain rendering: the
// critical phase is starred and the phase sum line is present.
func TestWriteTimelineRenders(t *testing.T) {
	events := []telemetry.Event{
		{At: 0, Kind: telemetry.Admit, Job: 0, ID: 9, Tenant: "A", Device: -1},
		{At: 6 * tms, Kind: telemetry.Place, Job: 0, Device: 0},
		{At: 6 * tms, Kind: telemetry.Dispatch, Job: 0, Device: 0, Stream: 0, Dur: sim.Duration(tms)},
		{At: 7 * tms, Kind: telemetry.Complete, Job: 0, Device: 0, Stream: 0, Dur: sim.Duration(tms)},
	}
	tl := Fold(events)[0]
	var buf bytes.Buffer
	if err := WriteTimeline(&buf, &tl); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "* place-wait") {
		t.Errorf("critical phase not starred:\n%s", out)
	}
	if !strings.Contains(out, "phase sum") || !strings.Contains(out, "job 0 (id 9, tenant A)") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
	var tbl bytes.Buffer
	if err := WriteBreakdowns(&tbl, "by tenant", ByTenant([]Timeline{tl})); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "A") {
		t.Errorf("breakdown table missing group:\n%s", tbl.String())
	}
}
