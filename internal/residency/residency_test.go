package residency

import (
	"reflect"
	"strings"
	"testing"

	"micstream/internal/workload"
)

func reg(ds string, first, tiles int, tileBytes int64) Region {
	return Region{Dataset: ds, First: first, Tiles: tiles, TileBytes: tileBytes}
}

func newTracker(t *testing.T, devices int, capacity int64) *Tracker {
	t.Helper()
	tr, err := New(devices, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1<<20); err == nil {
		t.Error("device count 0 accepted")
	}
	if _, err := New(2, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	tr := newTracker(t, 3, 0)
	if tr.Devices() != 3 || tr.Capacity() != 0 {
		t.Errorf("Devices/Capacity = %d/%d, want 3/0", tr.Devices(), tr.Capacity())
	}
}

func TestRegionValidation(t *testing.T) {
	cases := []struct {
		name    string
		regions []Region
		bad     string
	}{
		{"ok", []Region{reg("a", 0, 4, 256), reg("a", 4, 2, 256), reg("b", 0, 4, 128)}, ""},
		{"unnamed", []Region{reg("", 0, 1, 1)}, "no dataset"},
		{"negative-first", []Region{reg("a", -1, 1, 1)}, "negative first"},
		{"no-tiles", []Region{reg("a", 0, 0, 1)}, "covers no tiles"},
		{"no-bytes", []Region{reg("a", 0, 1, 0)}, "non-positive tile size"},
		{"self-overlap", []Region{reg("a", 0, 4, 1), reg("a", 3, 2, 1)}, "overlaps tile 3"},
		{"mixed-tile-size", []Region{reg("a", 0, 2, 256), reg("a", 2, 2, 512)}, "declares 512-byte tiles"},
	}
	for _, tc := range cases {
		err := Validate(tc.regions)
		if tc.bad == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.bad) {
			t.Errorf("%s: error = %v, want mention of %q", tc.name, err, tc.bad)
		}
	}
}

// TestCommitAccounting is the cold-miss-only contract: the hit/miss
// split always sums to the demanded bytes, Lookup agrees with the
// Commit that follows it, and a repeated read is all hits.
func TestCommitAccounting(t *testing.T) {
	tr := newTracker(t, 2, 0)
	reads := []Region{reg("panel", 0, 8, 1024), reg("halo", 2, 3, 512)}
	demand := TotalBytes(reads)
	if demand != 8*1024+3*512 {
		t.Fatalf("TotalBytes = %d", demand)
	}

	lh, lm := tr.Lookup(1, reads)
	hit, miss, rcpt := tr.Commit(1, reads)
	if lh != hit || lm != miss {
		t.Errorf("Lookup split (%d,%d) disagrees with Commit (%d,%d)", lh, lm, hit, miss)
	}
	if hit != 0 || miss != demand {
		t.Errorf("cold commit: hit=%d miss=%d, want 0/%d", hit, miss, demand)
	}
	if rcpt.InstalledBytes() != demand {
		t.Errorf("receipt installed %d bytes, want %d", rcpt.InstalledBytes(), demand)
	}
	if got := tr.ResidentBytes(1); got != demand {
		t.Errorf("ResidentBytes = %d, want %d", got, demand)
	}

	// Warm repeat: all hits, nothing newly installed.
	hit, miss, rcpt = tr.Commit(1, reads)
	if hit != demand || miss != 0 || rcpt.InstalledBytes() != 0 {
		t.Errorf("warm commit: hit=%d miss=%d installed=%d, want %d/0/0", hit, miss, rcpt.InstalledBytes(), demand)
	}

	// Partial overlap: only the new tiles miss.
	wider := []Region{reg("panel", 4, 8, 1024)} // tiles 4..11, 0..7 resident
	hit, miss, _ = tr.Commit(1, wider)
	if hit != 4*1024 || miss != 4*1024 {
		t.Errorf("overlapping commit: hit=%d miss=%d, want 4096/4096", hit, miss)
	}

	// The other device is untouched.
	if got := tr.ResidentBytes(0); got != 0 {
		t.Errorf("device 0 holds %d bytes, want 0", got)
	}
	st := tr.Stats()
	if st.HitBytes+st.MissBytes != 2*demand+8*1024 {
		t.Errorf("stats hit+miss = %d, want %d", st.HitBytes+st.MissBytes, 2*demand+8*1024)
	}
}

// TestAccountingProperty drives a seeded random op mix and checks the
// invariants the pricing layer depends on: every commit's split sums
// to its demand, Lookup always agrees with an immediately following
// Commit, and resident bytes never go negative or exceed capacity
// after enforcement.
func TestAccountingProperty(t *testing.T) {
	rng := workload.NewRNG(42)
	tr := newTracker(t, 3, 96<<10)
	datasets := []string{"a", "b", "c", "d"}
	for op := 0; op < 2000; op++ {
		dev := rng.Intn(3)
		reads := []Region{reg(datasets[rng.Intn(len(datasets))], rng.Intn(32), 1+rng.Intn(8), 1<<10)}
		switch rng.Intn(10) {
		case 0:
			tr.Invalidate(dev, reads, rng.Intn(2) == 0)
		case 1:
			if ev := tr.Enforce(dev); ev < 0 {
				t.Fatalf("op %d: negative eviction %d", op, ev)
			}
			if got := tr.ResidentBytes(dev); got > tr.Capacity() {
				t.Fatalf("op %d: device %d holds %d > capacity %d after Enforce", op, dev, got, tr.Capacity())
			}
		default:
			lh, lm := tr.Lookup(dev, reads)
			hit, miss, _ := tr.Commit(dev, reads)
			if hit != lh || miss != lm {
				t.Fatalf("op %d: Lookup (%d,%d) != Commit (%d,%d)", op, lh, lm, hit, miss)
			}
			if hit+miss != TotalBytes(reads) {
				t.Fatalf("op %d: hit %d + miss %d != demand %d", op, hit, miss, TotalBytes(reads))
			}
		}
		for d := 0; d < 3; d++ {
			if tr.ResidentBytes(d) < 0 {
				t.Fatalf("op %d: device %d negative residency", op, d)
			}
		}
	}
	st := tr.Stats()
	if st.HitBytes+st.MissBytes == 0 || st.Evictions == 0 {
		t.Fatalf("property run exercised too little: %+v", st)
	}
}

// TestBitIdenticalRepeats replays one seeded op sequence on two fresh
// trackers and demands identical observable state — the determinism
// rule every cluster feature inherits (DESIGN.md §6).
func TestBitIdenticalRepeats(t *testing.T) {
	run := func() (Stats, []int64) {
		rng := workload.NewRNG(7)
		tr, err := New(2, 64<<10)
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 1000; op++ {
			dev := rng.Intn(2)
			reads := []Region{reg("ds"+string(rune('0'+rng.Intn(3))), rng.Intn(16), 1+rng.Intn(6), 2<<10)}
			switch rng.Intn(8) {
			case 0:
				tr.Invalidate(dev, reads, true)
			case 1:
				tr.EnforceAll()
			default:
				tr.Commit(dev, reads)
			}
		}
		resident := []int64{tr.ResidentBytes(0), tr.ResidentBytes(1)}
		return tr.Stats(), resident
	}
	s1, r1 := run()
	s2, r2 := run()
	if !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(r1, r2) {
		t.Fatalf("repeats diverge: %+v/%v vs %+v/%v", s1, r1, s2, r2)
	}
}

// TestLRUEvictionDeterministicUnderTies installs tiles that share one
// commit tick (an LRU tie) and checks eviction drops them in
// insertion-sequence order, not map order.
func TestLRUEvictionDeterministicUnderTies(t *testing.T) {
	tr := newTracker(t, 1, 3<<10)
	// One commit, four 1 KiB tiles — same tick, ascending seq 1..4.
	tr.Commit(0, []Region{reg("tied", 0, 4, 1<<10)})
	if got := tr.ResidentBytes(0); got != 4<<10 {
		t.Fatalf("ResidentBytes = %d, want %d", got, 4<<10)
	}
	if ev := tr.Enforce(0); ev != 1<<10 {
		t.Fatalf("Enforce evicted %d, want %d", ev, 1<<10)
	}
	// Tile 0 (lowest seq) must be the casualty: re-reading tile 0
	// misses, tiles 1..3 hit.
	hit, miss := tr.Lookup(0, []Region{reg("tied", 0, 4, 1<<10)})
	if hit != 3<<10 || miss != 1<<10 {
		t.Fatalf("after tied eviction: hit=%d miss=%d, want %d/%d", hit, miss, 3<<10, 1<<10)
	}
	if h, _ := tr.Lookup(0, []Region{reg("tied", 0, 1, 1<<10)}); h != 0 {
		t.Error("tile 0 survived; eviction order is not insertion order")
	}

	// Recency beats insertion order when ticks differ: touch tile 1,
	// add a new tile to overflow again — tile 2 (oldest untouched,
	// lowest seq) must go next.
	tr.Commit(0, []Region{reg("tied", 1, 1, 1<<10)}) // refresh tile 1
	tr.Commit(0, []Region{reg("fresh", 0, 1, 1<<10)})
	if ev := tr.Enforce(0); ev != 1<<10 {
		t.Fatalf("second Enforce evicted %d, want %d", ev, 1<<10)
	}
	if h, _ := tr.Lookup(0, []Region{reg("tied", 2, 1, 1<<10)}); h != 0 {
		t.Error("tile 2 survived; LRU ignored the refresh of tile 1")
	}
	if h, _ := tr.Lookup(0, []Region{reg("tied", 1, 1, 1<<10)}); h != 1<<10 {
		t.Error("refreshed tile 1 was evicted before older tiles")
	}
}

// TestInvalidationOnWrite checks the write protocol: a writer drops
// every other device's copy; its own copy survives only when the
// fresh bytes really live in its cache (off-origin writer).
func TestInvalidationOnWrite(t *testing.T) {
	tr := newTracker(t, 3, 0)
	d := []Region{reg("grid", 0, 4, 4<<10)}
	for dev := 0; dev < 3; dev++ {
		tr.Commit(dev, d)
	}

	// Off-origin writer on device 1: devices 0 and 2 invalidate,
	// device 1 keeps (and refreshes) its copy.
	tr.Invalidate(1, d, true)
	for dev, want := range []int64{0, d[0].Bytes(), 0} {
		hit, _ := tr.Lookup(dev, d)
		if hit != want {
			t.Errorf("after off-origin write: device %d hit %d, want %d", dev, hit, want)
		}
	}

	// Origin writer (resident=false): even the writer's own staged
	// copy is stale — the fresh bytes are in origin memory.
	for dev := 0; dev < 3; dev++ {
		tr.Commit(dev, d)
	}
	tr.Invalidate(1, d, false)
	for dev := 0; dev < 3; dev++ {
		if hit, _ := tr.Lookup(dev, d); hit != 0 {
			t.Errorf("after origin write: device %d still hits %d bytes", dev, hit)
		}
	}
	if tr.Stats().InvalidatedBytes == 0 {
		t.Error("no invalidated bytes counted")
	}
}

// TestRollbackRemovesOnlyUntouchedInstalls mirrors the steal-withdraw
// path: rolling back a commit removes what it installed, except tiles
// a later commit refreshed (that job's pricing already relied on
// them).
func TestRollbackRemovesOnlyUntouchedInstalls(t *testing.T) {
	tr := newTracker(t, 2, 0)
	_, _, rcpt := tr.Commit(0, []Region{reg("panel", 0, 4, 1<<10)})
	// A later job reads tiles 2..3 (refreshing their tick) before the
	// first job is withdrawn.
	tr.Commit(0, []Region{reg("panel", 2, 2, 1<<10)})
	tr.Rollback(rcpt)
	hit, miss := tr.Lookup(0, []Region{reg("panel", 0, 4, 1<<10)})
	if hit != 2<<10 || miss != 2<<10 {
		t.Fatalf("after rollback: hit=%d miss=%d, want refreshed tiles kept, others gone", hit, miss)
	}
	if tr.Stats().RolledBackBytes != 2<<10 {
		t.Errorf("RolledBackBytes = %d, want %d", tr.Stats().RolledBackBytes, 2<<10)
	}
	// Rolling back a zero receipt is a no-op.
	tr.Rollback(Receipt{})
}

// TestRollbackRegionsScopesToRemainder mirrors the mid-job migration
// path (DESIGN.md §13): the victim keeps the tiles the completed
// slices consumed — their transfer really ran — and only the migrated
// remainder's still-needed tiles roll back.
func TestRollbackRegionsScopesToRemainder(t *testing.T) {
	tr := newTracker(t, 2, 0)
	_, _, rcpt := tr.Commit(0, []Region{reg("panel", 0, 8, 1<<10)})
	// The job migrates after consuming tiles 0..3; tiles 4..7 back the
	// remainder and leave with it.
	removed := tr.RollbackRegions(rcpt, []Region{reg("panel", 4, 4, 1<<10)})
	if removed != 4<<10 {
		t.Fatalf("RollbackRegions removed %d bytes, want %d", removed, 4<<10)
	}
	hit, miss := tr.Lookup(0, []Region{reg("panel", 0, 8, 1<<10)})
	if hit != 4<<10 || miss != 4<<10 {
		t.Fatalf("after region rollback: hit=%d miss=%d, want consumed tiles kept, remainder gone", hit, miss)
	}
	if tr.Stats().RolledBackBytes != 4<<10 {
		t.Errorf("RolledBackBytes = %d, want %d", tr.Stats().RolledBackBytes, 4<<10)
	}
	// Tiles a later commit refreshed stay even inside the remainder
	// scope — the same protection plain Rollback gives.
	_, _, rcpt2 := tr.Commit(1, []Region{reg("panel", 0, 4, 1<<10)})
	tr.Commit(1, []Region{reg("panel", 0, 2, 1<<10)})
	if removed := tr.RollbackRegions(rcpt2, []Region{reg("panel", 0, 4, 1<<10)}); removed != 2<<10 {
		t.Fatalf("refreshed tiles rolled back: removed %d, want %d", removed, 2<<10)
	}
	// Empty scope and zero receipt are no-ops.
	if removed := tr.RollbackRegions(rcpt, nil); removed != 0 {
		t.Errorf("nil-scope rollback removed %d bytes", removed)
	}
	if removed := tr.RollbackRegions(Receipt{}, []Region{reg("panel", 0, 1, 1<<10)}); removed != 0 {
		t.Errorf("zero-receipt rollback removed %d bytes", removed)
	}
}

// TestResetColdsTheTracker checks Reset really restores a fresh
// tracker.
func TestResetColdsTheTracker(t *testing.T) {
	tr := newTracker(t, 2, 8<<10)
	tr.Commit(0, []Region{reg("x", 0, 16, 1<<10)})
	tr.EnforceAll()
	tr.Reset()
	if tr.ResidentBytes(0) != 0 || tr.ResidentBytes(1) != 0 {
		t.Error("Reset left resident bytes")
	}
	if got := tr.Stats(); got != (Stats{}) {
		t.Errorf("Reset left stats %+v", got)
	}
	hit, _, _ := func() (int64, int64, Receipt) { return tr.Commit(0, []Region{reg("x", 0, 1, 1<<10)}) }()
	if hit != 0 {
		t.Error("tracker not cold after Reset")
	}
}

// TestEnforceUnbounded: capacity 0 never evicts.
func TestEnforceUnbounded(t *testing.T) {
	tr := newTracker(t, 1, 0)
	tr.Commit(0, []Region{reg("big", 0, 1024, 1<<20)})
	if ev := tr.EnforceAll(); ev != 0 {
		t.Fatalf("unbounded tracker evicted %d bytes", ev)
	}
}

func BenchmarkResidencyLookup(b *testing.B) {
	tr, err := New(4, 0)
	if err != nil {
		b.Fatal(err)
	}
	for ds := 0; ds < 16; ds++ {
		tr.Commit(ds%4, []Region{reg("ds"+string(rune('a'+ds)), 0, 64, 1<<20)})
	}
	probe := []Region{reg("dsc", 16, 32, 1<<20), reg("dsq", 0, 8, 1<<20)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(i%4, probe)
	}
}
