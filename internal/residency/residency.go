// Package residency tracks which tiles of which datasets are resident
// in each device's memory across cluster jobs — the bookkeeping that
// turns the Fig. 11 staging charge into a cold-miss-only cost.
//
// The paper's §VI loses to linear scaling because every off-origin job
// stages its whole input through the host; the authors' companion
// streaming work and the CPU+MIC CFD scaling study both attribute
// their multi-device wins to keeping partitioned data resident across
// kernel invocations. This package supplies the missing ledger: a
// deterministic per-device cache of (dataset, tile) regions already
// shipped to a device. The cluster consults it before charging
// staging — resident bytes are free, only the cold-miss remainder
// moves on the link — and the affinity placement policy reads it to
// break near-ties toward the device already holding a job's tiles.
//
// The tracker is a model, not a memory manager: it never owns real
// backing store, it only answers "would this transfer be redundant?".
// Every operation is a pure function of the call sequence, so cluster
// runs stay bit-identical across repeats (DESIGN.md §6, §11):
//
//   - Lookup is read-only — pricing probes (placement scoring, steal
//     gain estimates) cannot perturb the cache state, no matter how
//     many devices a policy scores.
//   - Commit installs a job's read tiles at its commitment instant and
//     stamps them with a logical clock tick; the returned Receipt lets
//     a steal's withdraw roll the install back (the staged transfer
//     never ran).
//   - Writes invalidate every other device's copy at the writer's
//     completion instant (the drain instant — before that, readers
//     legitimately price the old copy).
//   - Capacity is enforced per device at drain instants: least
//     recently used tiles evict first, ties on the use tick break by
//     insertion sequence, so eviction order never depends on map
//     iteration order.
package residency

import (
	"fmt"
	"sort"
)

// Region declares one (dataset, tile-range) a job reads or writes:
// Tiles tiles of TileBytes each, starting at tile First of the named
// dataset. Regions are the cache's unit of declaration; tiles are its
// unit of residency, so two jobs reading overlapping ranges of one
// dataset share whatever tiles they have in common.
type Region struct {
	// Dataset names the logical allocation the tiles belong to.
	Dataset string
	// First is the index of the region's first tile within the
	// dataset.
	First int
	// Tiles is how many consecutive tiles the region covers.
	Tiles int
	// TileBytes is the size of each tile. Declarations for one
	// dataset must agree on it: Validate rejects disagreement within
	// one job's list, and agreement across jobs is the caller's
	// contract — a job declaring a different tile size than an
	// earlier resident declaration has its hits credited (and the
	// entries resized) at its own TileBytes, degrading the byte
	// accounting.
	TileBytes int64
}

// Bytes is the region's total volume.
func (r Region) Bytes() int64 { return int64(r.Tiles) * r.TileBytes }

// String renders the region for errors and logs.
func (r Region) String() string {
	return fmt.Sprintf("%s[%d:%d)×%dB", r.Dataset, r.First, r.First+r.Tiles, r.TileBytes)
}

// TotalBytes sums the regions' volumes — the staging demand a job
// declares through its read set.
func TotalBytes(regions []Region) int64 {
	var n int64
	for _, r := range regions {
		n += r.Bytes()
	}
	return n
}

// Validate checks one job's region list: every region well-formed
// (named dataset, non-negative start, at least one tile of at least
// one byte), no tile covered twice within the list (a self-overlap
// would double-count the job's demand), and every region of one
// dataset agreeing on TileBytes (mixed sizes would make the hit/miss
// byte split meaningless).
func Validate(regions []Region) error {
	seen := make(map[tileKey]struct{})
	sizes := make(map[string]int64)
	for i, r := range regions {
		switch {
		case r.Dataset == "":
			return fmt.Errorf("residency: region %d has no dataset name", i)
		case r.First < 0:
			return fmt.Errorf("residency: region %d (%s) has negative first tile", i, r)
		case r.Tiles < 1:
			return fmt.Errorf("residency: region %d (%s) covers no tiles", i, r)
		case r.TileBytes < 1:
			return fmt.Errorf("residency: region %d (%s) has non-positive tile size", i, r)
		}
		if prev, ok := sizes[r.Dataset]; ok && prev != r.TileBytes {
			return fmt.Errorf("residency: region %d (%s) declares %d-byte tiles where an earlier region of %q declared %d", i, r, r.TileBytes, r.Dataset, prev)
		}
		sizes[r.Dataset] = r.TileBytes
		for tile := r.First; tile < r.First+r.Tiles; tile++ {
			k := tileKey{dataset: r.Dataset, tile: tile}
			if _, dup := seen[k]; dup {
				return fmt.Errorf("residency: region %d (%s) overlaps tile %d of %q declared earlier in the list", i, r, tile, r.Dataset)
			}
			seen[k] = struct{}{}
		}
	}
	return nil
}

// tileKey identifies one resident tile.
type tileKey struct {
	dataset string
	tile    int
}

// entry is one resident tile on one device.
type entry struct {
	bytes int64
	// used is the logical clock tick of the last commit that touched
	// the tile — the LRU recency signal.
	used uint64
	// seq is the tile's global insertion sequence number; it breaks
	// LRU ties deterministically (tiles installed by one commit share
	// a tick but never a sequence number).
	seq uint64
}

// deviceCache is one device's resident set.
type deviceCache struct {
	entries map[tileKey]entry
	used    int64
}

// Stats are the tracker's cumulative counters. They span the
// tracker's lifetime (across cluster runs — a warm second run shows
// up as hits here); per-run accounting lives in the cluster's Result.
type Stats struct {
	// Lookups and Commits count the respective calls.
	Lookups, Commits int
	// HitBytes and MissBytes split the demand Commit saw: bytes
	// already resident on the commitment device versus bytes that had
	// to stage. They sum to the total committed demand.
	HitBytes, MissBytes int64
	// EvictedBytes is the volume LRU eviction dropped at drain
	// instants; Evictions counts dropped tiles.
	EvictedBytes int64
	Evictions    int
	// InvalidatedBytes is the volume writes invalidated on devices
	// other than the writer's; Invalidations counts dropped tiles.
	InvalidatedBytes int64
	Invalidations    int
	// RolledBackBytes is the volume withdrawn commits removed again
	// (a stolen job's staged transfer never ran).
	RolledBackBytes int64
}

// Receipt records what one Commit installed, so a withdraw can roll
// the installation back. The zero Receipt rolls back nothing.
type Receipt struct {
	dev       int
	tick      uint64
	installed []tileKey
	bytes     int64
}

// InstalledBytes is the volume the commit newly installed (its miss
// share).
func (r Receipt) InstalledBytes() int64 { return r.bytes }

// Tracker is the per-device tile-residency cache. It is not safe for
// concurrent use; the cluster drives it from single-threaded engine
// callbacks.
type Tracker struct {
	devs     []deviceCache
	capacity int64
	clock    uint64
	seq      uint64
	stats    Stats
}

// New builds a tracker for the given device count with a per-device
// byte capacity; capacity 0 means unbounded.
func New(devices int, capacityBytes int64) (*Tracker, error) {
	if devices < 1 {
		return nil, fmt.Errorf("residency: device count %d must be positive", devices)
	}
	if capacityBytes < 0 {
		return nil, fmt.Errorf("residency: negative capacity %d bytes", capacityBytes)
	}
	t := &Tracker{devs: make([]deviceCache, devices), capacity: capacityBytes}
	for d := range t.devs {
		t.devs[d].entries = make(map[tileKey]entry)
	}
	return t, nil
}

// Devices reports the tracked device count.
func (t *Tracker) Devices() int { return len(t.devs) }

// Capacity reports the per-device byte capacity (0 = unbounded).
func (t *Tracker) Capacity() int64 { return t.capacity }

// Stats returns the cumulative counters.
func (t *Tracker) Stats() Stats { return t.stats }

// ResidentBytes reports how many bytes device dev currently holds.
func (t *Tracker) ResidentBytes(dev int) int64 { return t.cache(dev).used }

// Reset drops every resident tile and zeroes the counters — a cold
// tracker, as if freshly built.
func (t *Tracker) Reset() {
	for d := range t.devs {
		t.devs[d] = deviceCache{entries: make(map[tileKey]entry)}
	}
	t.clock, t.seq = 0, 0
	t.stats = Stats{}
}

func (t *Tracker) cache(dev int) *deviceCache {
	if dev < 0 || dev >= len(t.devs) {
		panic(fmt.Sprintf("residency: device %d out of range [0,%d)", dev, len(t.devs)))
	}
	return &t.devs[dev]
}

// Lookup splits the regions' demand into the bytes already resident
// on dev and the cold-miss remainder. It is read-only: pricing probes
// never perturb recency, so scoring many devices is side-effect-free.
// Regions must not self-overlap (see Validate); the split then
// satisfies hit+miss == TotalBytes(regions).
func (t *Tracker) Lookup(dev int, regions []Region) (hit, miss int64) {
	dc := t.cache(dev)
	t.stats.Lookups++
	for _, r := range regions {
		for tile := r.First; tile < r.First+r.Tiles; tile++ {
			if _, ok := dc.entries[tileKey{dataset: r.Dataset, tile: tile}]; ok {
				hit += r.TileBytes
			} else {
				miss += r.TileBytes
			}
		}
	}
	return hit, miss
}

// Commit binds a job's read set to device dev at its commitment
// instant: resident tiles refresh their recency (the hit share),
// missing tiles install (the miss share — the bytes the job's staging
// transfer actually ships). The returned Receipt identifies the
// installed tiles so a later withdraw can roll them back. The split
// equals what Lookup reported immediately before on the same device.
func (t *Tracker) Commit(dev int, reads []Region) (hit, miss int64, rcpt Receipt) {
	dc := t.cache(dev)
	t.stats.Commits++
	t.clock++
	rcpt = Receipt{dev: dev, tick: t.clock}
	for _, r := range reads {
		for tile := r.First; tile < r.First+r.Tiles; tile++ {
			k := tileKey{dataset: r.Dataset, tile: tile}
			if e, ok := dc.entries[k]; ok {
				hit += r.TileBytes
				dc.used += r.TileBytes - e.bytes
				e.bytes = r.TileBytes
				e.used = t.clock
				dc.entries[k] = e
				continue
			}
			miss += r.TileBytes
			t.seq++
			dc.entries[k] = entry{bytes: r.TileBytes, used: t.clock, seq: t.seq}
			dc.used += r.TileBytes
			rcpt.installed = append(rcpt.installed, k)
			rcpt.bytes += r.TileBytes
		}
	}
	t.stats.HitBytes += hit
	t.stats.MissBytes += miss
	return hit, miss, rcpt
}

// Rollback undoes a Commit's installations after the committed job
// was withdrawn (stolen) before dispatch: its staging transfer never
// ran, so the tiles it would have shipped are not resident. Tiles a
// later commit has touched since stay — another job refreshed them,
// and its own staging decision already treated them as resident.
func (t *Tracker) Rollback(rcpt Receipt) {
	if len(rcpt.installed) == 0 {
		return
	}
	dc := t.cache(rcpt.dev)
	for _, k := range rcpt.installed {
		e, ok := dc.entries[k]
		if !ok || e.used != rcpt.tick {
			continue
		}
		delete(dc.entries, k)
		dc.used -= e.bytes
		t.stats.RolledBackBytes += e.bytes
	}
}

// RollbackRegions is the partial, region-scoped form of Rollback the
// cluster's mid-job migration uses (DESIGN.md §13): when a partially-
// run job's undispatched remainder leaves a device, only the tiles the
// remainder still needed leave with it — the receipt's other installs
// (tiles the completed slices already consumed) stay resident, because
// their transfer really ran and later jobs may hit them. The same
// recency guard as Rollback applies: tiles a later commit touched
// since stay. Returns the removed volume.
func (t *Tracker) RollbackRegions(rcpt Receipt, regions []Region) int64 {
	if len(rcpt.installed) == 0 || len(regions) == 0 {
		return 0
	}
	want := make(map[tileKey]struct{})
	for _, r := range regions {
		for tile := r.First; tile < r.First+r.Tiles; tile++ {
			want[tileKey{dataset: r.Dataset, tile: tile}] = struct{}{}
		}
	}
	dc := t.cache(rcpt.dev)
	var removed int64
	for _, k := range rcpt.installed {
		if _, scoped := want[k]; !scoped {
			continue
		}
		e, ok := dc.entries[k]
		if !ok || e.used != rcpt.tick {
			continue
		}
		delete(dc.entries, k)
		dc.used -= e.bytes
		t.stats.RolledBackBytes += e.bytes
		removed += e.bytes
	}
	return removed
}

// Invalidate applies a job's write set at its completion instant (the
// drain instant): every other device's copy of the written tiles is
// dropped — it now holds stale data. When resident is true (the
// writer ran off the dataset's origin, so the fresh bytes live in its
// cache, not the origin's memory) the written tiles install or
// refresh on dev; otherwise dev's own staged copies drop too, because
// the write landed in origin memory and even the writer's cache is
// stale.
func (t *Tracker) Invalidate(dev int, writes []Region, resident bool) {
	if len(writes) == 0 {
		return
	}
	t.clock++
	for d := range t.devs {
		if d == dev && resident {
			continue
		}
		dc := &t.devs[d]
		for _, r := range writes {
			for tile := r.First; tile < r.First+r.Tiles; tile++ {
				k := tileKey{dataset: r.Dataset, tile: tile}
				if e, ok := dc.entries[k]; ok {
					delete(dc.entries, k)
					dc.used -= e.bytes
					t.stats.InvalidatedBytes += e.bytes
					t.stats.Invalidations++
				}
			}
		}
	}
	if !resident {
		return
	}
	dc := t.cache(dev)
	for _, r := range writes {
		for tile := r.First; tile < r.First+r.Tiles; tile++ {
			k := tileKey{dataset: r.Dataset, tile: tile}
			if e, ok := dc.entries[k]; ok {
				dc.used += r.TileBytes - e.bytes
				e.bytes = r.TileBytes
				e.used = t.clock
				dc.entries[k] = e
				continue
			}
			t.seq++
			dc.entries[k] = entry{bytes: r.TileBytes, used: t.clock, seq: t.seq}
			dc.used += r.TileBytes
		}
	}
}

// Enforce evicts least-recently-used tiles from device dev until it
// fits the capacity, returning the evicted volume. The cluster calls
// it at drain instants only — between them a device may transiently
// exceed capacity, mirroring how a real runtime frees staged tiles
// when a kernel completes, not mid-enqueue. Eviction order is total:
// oldest use tick first, ties by insertion sequence, so it never
// depends on map iteration order.
func (t *Tracker) Enforce(dev int) int64 {
	dc := t.cache(dev)
	if t.capacity <= 0 || dc.used <= t.capacity {
		return 0
	}
	// Collect and order the candidates once; evict from the front
	// until under capacity.
	type victim struct {
		key tileKey
		entry
	}
	victims := make([]victim, 0, len(dc.entries))
	for k, e := range dc.entries {
		victims = append(victims, victim{key: k, entry: e})
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].used != victims[j].used {
			return victims[i].used < victims[j].used
		}
		return victims[i].seq < victims[j].seq
	})
	var evicted int64
	for _, v := range victims {
		if dc.used <= t.capacity {
			break
		}
		delete(dc.entries, v.key)
		dc.used -= v.bytes
		evicted += v.bytes
		t.stats.EvictedBytes += v.bytes
		t.stats.Evictions++
	}
	return evicted
}

// EnforceAll runs Enforce on every device in device order and returns
// the total evicted volume.
func (t *Tracker) EnforceAll() int64 {
	var evicted int64
	for d := range t.devs {
		evicted += t.Enforce(d)
	}
	return evicted
}
