// Package schedtest factors the scheduling invariants the sched and
// cluster property suites both assert — work conservation, bit-identical
// repeats, unique completion, admission-order fairness — into one shared
// harness (DESIGN.md §6, §9).
//
// The helpers are deliberately representation-agnostic: both layers
// project their outcome types onto Span, a flat record of one job's
// realized lifecycle, so the same checker verifies a single-device
// sched.Result and a multi-device cluster.Result. The package imports
// neither scheduler (they import it from their tests), only the sim
// clock types.
package schedtest

import (
	"reflect"
	"sort"

	"micstream/internal/sim"
)

// T is the slice of testing.TB the checkers need. Taking an interface
// instead of *testing.T lets the harness negative-test its own
// checkers with a recording fake.
type T interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Span is one job's realized lifecycle as the invariants see it.
//
// Wait[0:2] is the interval during which the job was held back by the
// scheduler under test — arrival→dispatch for a device scheduler,
// arrival→placement for the cluster — and Busy[0:2] the interval the
// job occupied Stream. Marks lists the lifecycle instants in the order
// the layer promises them (e.g. arrival ≤ placed ≤ start ≤ done);
// MarkNames labels them for failure messages.
type Span struct {
	// ID is the job's user-visible label, Index its submission slot.
	ID, Index int
	// Stream is the context-wide stream the job occupied.
	Stream int
	// Wait is the scheduler-attributable delay interval [from, to).
	Wait [2]sim.Time
	// Busy is the stream occupancy interval [start, end).
	Busy [2]sim.Time
	// Marks are the lifecycle instants, in promised order.
	Marks []sim.Time
}

// MarkNames labels Span.Marks positions in failure messages. Suites
// with richer lifecycles (the cluster adds a placement instant) pass
// their own; nil falls back to positional labels.
var MarkNames = []string{"arrival", "start", "done"}

// WorkConserving asserts the core scheduling invariant: while any job
// is inside its Wait interval, no stream in streams is idle. The busy
// timeline is reconstructed from the spans themselves — each stream's
// occupancy is the union of its jobs' Busy intervals — so the check
// needs no scheduler internals.
func WorkConserving(t T, label string, spans []Span, streams []int) {
	t.Helper()
	type iv struct{ start, end sim.Time }
	busy := make(map[int][]iv, len(streams))
	for _, s := range streams {
		busy[s] = nil
	}
	for _, sp := range spans {
		busy[sp.Stream] = append(busy[sp.Stream], iv{sp.Busy[0], sp.Busy[1]})
	}
	for s := range busy {
		sort.Slice(busy[s], func(i, j int) bool { return busy[s][i].start < busy[s][j].start })
	}
	// covered reports whether [from, to) is inside the union of a
	// stream's busy intervals. Sliced jobs can contribute overlapping
	// per-device intervals, so the sweep merges as it goes.
	covered := func(s int, from, to sim.Time) bool {
		at := from
		for _, i := range busy[s] {
			if i.start > at {
				return false
			}
			if i.end > at {
				at = i.end
			}
			if at >= to {
				return true
			}
		}
		return at >= to
	}
	violations := 0
	for _, sp := range spans {
		if sp.Wait[1] <= sp.Wait[0] {
			continue
		}
		for _, s := range streams {
			if !covered(s, sp.Wait[0], sp.Wait[1]) {
				violations++
				if violations <= 3 {
					t.Errorf("%s: job %d waited [%v,%v) while stream %d was idle",
						label, sp.ID, sp.Wait[0], sp.Wait[1], s)
				}
			}
		}
	}
	if violations > 3 {
		t.Errorf("%s: %d further work-conservation violations suppressed", label, violations-3)
	}
}

// UniqueCompletion asserts completeness: exactly want jobs completed,
// each submission Index exactly once, and every span's lifecycle marks
// are non-decreasing in their promised order.
func UniqueCompletion(t T, label string, spans []Span, want int, markNames []string) {
	t.Helper()
	if markNames == nil {
		markNames = MarkNames
	}
	name := func(i int) string {
		if i < len(markNames) {
			return markNames[i]
		}
		return "mark"
	}
	seen := make(map[int]bool, len(spans))
	for _, sp := range spans {
		if seen[sp.Index] {
			t.Fatalf("%s: job index %d appears twice", label, sp.Index)
		}
		seen[sp.Index] = true
		for i := 1; i < len(sp.Marks); i++ {
			if sp.Marks[i] < sp.Marks[i-1] {
				t.Fatalf("%s: job %d has inverted lifecycle: %s %v before %s %v",
					label, sp.ID, name(i), sp.Marks[i], name(i-1), sp.Marks[i-1])
			}
		}
	}
	if len(seen) != want {
		t.Fatalf("%s: %d unique jobs completed, want %d", label, len(seen), want)
	}
}

// admissionOrder sorts spans by arrival (Marks[0]), ties by submission
// Index — the order FIFO admission promises to serve.
func admissionOrder(spans []Span) []Span {
	jobs := append([]Span(nil), spans...)
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].Marks[0] != jobs[j].Marks[0] {
			return jobs[i].Marks[0] < jobs[j].Marks[0]
		}
		return jobs[i].Index < jobs[j].Index
	})
	return jobs
}

// NoOvertaking asserts FIFO's starvation-freedom: dispatch order
// (Busy[0]) equals admission order, so every job's wait is bounded by
// the service of the finite set of jobs ahead of it.
func NoOvertaking(t T, label string, spans []Span) {
	t.Helper()
	jobs := admissionOrder(spans)
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Busy[0] < jobs[i-1].Busy[0] {
			t.Fatalf("%s: FIFO overtaking: job %d (arrived %v) started %v before job %d (arrived %v) started %v",
				label, jobs[i].ID, jobs[i].Marks[0], jobs[i].Busy[0],
				jobs[i-1].ID, jobs[i-1].Marks[0], jobs[i-1].Busy[0])
		}
	}
}

// BoundedWait asserts a concrete starvation bound for FIFO admission:
// a job's wait never exceeds the summed service of all jobs admitted
// before it (the worst case drains the entire backlog through one
// stream).
func BoundedWait(t T, label string, spans []Span) {
	t.Helper()
	var backlog sim.Duration
	for _, sp := range admissionOrder(spans) {
		if wait := sp.Wait[1].Sub(sp.Wait[0]); wait > backlog {
			t.Fatalf("%s: job %d waited %v, more than the %v of service admitted before it",
				label, sp.ID, wait, backlog)
		}
		backlog += sp.Busy[1].Sub(sp.Busy[0])
	}
}

// BitIdentical asserts the determinism contract (DESIGN.md §6): run
// must be a pure function of its seed. Two runs at seed produce deeply
// equal results; a run at otherSeed produces a different one (guarding
// against a checker that trivially passes because run ignores its
// seed). run typically returns a full *Result so every per-job
// timestamp participates in the comparison.
func BitIdentical(t T, label string, run func(seed uint64) any, seed, otherSeed uint64) {
	t.Helper()
	a := run(seed)
	b := run(seed)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: repeated runs with seed %d differ", label, seed)
	}
	c := run(otherSeed)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("%s: seeds %d and %d produced identical schedules", label, seed, otherSeed)
	}
}
