package schedtest

import (
	"fmt"
	"strings"
	"testing"

	"micstream/internal/sim"
)

// fakeT records checker failures instead of failing the real test, so
// the suite can assert each checker actually detects its violation.
type fakeT struct {
	errors []string
	fatals []string
}

func (f *fakeT) Helper() {}
func (f *fakeT) Errorf(format string, args ...any) {
	f.errors = append(f.errors, fmt.Sprintf(format, args...))
}
func (f *fakeT) Fatalf(format string, args ...any) {
	f.fatals = append(f.fatals, fmt.Sprintf(format, args...))
}
func (f *fakeT) failed() bool { return len(f.errors)+len(f.fatals) > 0 }

// span builds a consistent lifecycle: arrives at a, starts at s on
// stream st, done at d.
func span(id, st int, a, s, d sim.Time) Span {
	return Span{
		ID: id, Index: id, Stream: st,
		Wait:  [2]sim.Time{a, s},
		Busy:  [2]sim.Time{s, d},
		Marks: []sim.Time{a, s, d},
	}
}

func TestWorkConservingAcceptsCoveredWaits(t *testing.T) {
	// Job 1 waits [0,10) on stream 0 while stream 0 runs job 0 and
	// stream 1 runs job 2: both streams busy for the whole wait.
	spans := []Span{
		span(0, 0, 0, 0, 10),
		span(1, 0, 0, 10, 20),
		span(2, 1, 0, 0, 12),
	}
	ft := &fakeT{}
	WorkConserving(ft, "covered", spans, []int{0, 1})
	if ft.failed() {
		t.Fatalf("flagged a fully covered wait: %v %v", ft.errors, ft.fatals)
	}
}

func TestWorkConservingDetectsIdleStream(t *testing.T) {
	// Job 1 waits [0,10) but stream 1 is idle the whole time.
	spans := []Span{
		span(0, 0, 0, 0, 10),
		span(1, 0, 0, 10, 20),
		span(2, 1, 0, 15, 20),
	}
	ft := &fakeT{}
	WorkConserving(ft, "idle", spans, []int{0, 1})
	if !ft.failed() {
		t.Fatal("missed a wait spanning an idle stream")
	}
}

func TestWorkConservingMergesSlicedBusyIntervals(t *testing.T) {
	// A sliced job can contribute overlapping busy intervals on one
	// stream (remainder re-dispatched while the checker sees whole-job
	// spans); the union must still cover a waiter.
	spans := []Span{
		{ID: 0, Index: 0, Stream: 0, Busy: [2]sim.Time{0, 6}, Marks: []sim.Time{0, 0, 6}},
		{ID: 1, Index: 1, Stream: 0, Busy: [2]sim.Time{4, 10}, Marks: []sim.Time{0, 4, 10}},
		span(2, 0, 0, 10, 12),
	}
	ft := &fakeT{}
	WorkConserving(ft, "merge", spans, []int{0})
	if ft.failed() {
		t.Fatalf("flagged a wait covered by merged intervals: %v", ft.errors)
	}
}

func TestUniqueCompletion(t *testing.T) {
	good := []Span{span(0, 0, 0, 0, 5), span(1, 0, 1, 5, 9)}
	ft := &fakeT{}
	UniqueCompletion(ft, "good", good, 2, nil)
	if ft.failed() {
		t.Fatalf("flagged a valid outcome set: %v", ft.fatals)
	}

	dup := []Span{span(0, 0, 0, 0, 5), span(0, 0, 1, 5, 9)}
	ft = &fakeT{}
	UniqueCompletion(ft, "dup", dup, 2, nil)
	if !ft.failed() {
		t.Fatal("missed a duplicated job index")
	}

	ft = &fakeT{}
	UniqueCompletion(ft, "count", good, 3, nil)
	if !ft.failed() {
		t.Fatal("missed a missing job")
	}

	inverted := []Span{{ID: 0, Index: 0, Marks: []sim.Time{5, 3, 9}}}
	ft = &fakeT{}
	UniqueCompletion(ft, "inverted", inverted, 1, []string{"arrival", "placed", "done"})
	if !ft.failed() {
		t.Fatal("missed an inverted lifecycle")
	}
	if !strings.Contains(ft.fatals[0], "placed") {
		t.Fatalf("lifecycle failure does not name the marks: %q", ft.fatals[0])
	}
}

func TestNoOvertaking(t *testing.T) {
	ordered := []Span{span(0, 0, 0, 0, 5), span(1, 0, 1, 5, 9)}
	ft := &fakeT{}
	NoOvertaking(ft, "ordered", ordered)
	if ft.failed() {
		t.Fatalf("flagged an admission-ordered schedule: %v", ft.fatals)
	}

	overtaken := []Span{span(0, 0, 0, 6, 9), span(1, 0, 1, 2, 5)}
	ft = &fakeT{}
	NoOvertaking(ft, "overtaken", overtaken)
	if !ft.failed() {
		t.Fatal("missed a later arrival starting first")
	}
}

func TestBoundedWait(t *testing.T) {
	// Job 1 waits 5 against a backlog of 5 (job 0's service): allowed.
	bounded := []Span{span(0, 0, 0, 0, 5), span(1, 0, 0, 5, 9)}
	ft := &fakeT{}
	BoundedWait(ft, "bounded", bounded)
	if ft.failed() {
		t.Fatalf("flagged a bounded wait: %v", ft.fatals)
	}

	// Job 1 waits 8 against a backlog of only 5: starvation.
	starved := []Span{span(0, 0, 0, 0, 5), span(1, 0, 0, 8, 12)}
	ft = &fakeT{}
	BoundedWait(ft, "starved", starved)
	if !ft.failed() {
		t.Fatal("missed a wait exceeding the admitted backlog")
	}
}

func TestBitIdentical(t *testing.T) {
	ft := &fakeT{}
	BitIdentical(ft, "pure", func(seed uint64) any { return seed * 3 }, 7, 8)
	if ft.failed() {
		t.Fatalf("flagged a pure function of the seed: %v", ft.fatals)
	}

	// Nondeterminism: result varies across calls with the same seed.
	calls := 0
	ft = &fakeT{}
	BitIdentical(ft, "impure", func(seed uint64) any { calls++; return calls }, 7, 8)
	if !ft.failed() {
		t.Fatal("missed a run that varies across repeats")
	}

	// Seed-blindness: identical output for every seed.
	ft = &fakeT{}
	BitIdentical(ft, "blind", func(seed uint64) any { return 42 }, 7, 8)
	if !ft.failed() {
		t.Fatal("missed a run that ignores its seed")
	}
}
