// Package pcie models the host↔coprocessor interconnect of the
// reproduced platform: the PCIe link plus the MPSS DMA engine that
// hStreams drives on a real Xeon Phi system.
//
// The paper's first microbenchmark finding (§IV-A-1, Fig. 5) is that
// data transfers in the two directions are performed *serially* on the
// Phi — the link behaves as half-duplex even though PCIe itself is
// full-duplex, because the DMA path through MPSS serializes them. This
// package therefore defaults to a single shared DMA server for both
// directions, with an optional full-duplex mode (two independent
// servers) kept as an ablation so the experiment can show what the
// figure would look like on hardware with concurrent bidirectional DMA.
//
// Transfer cost is the usual latency + size/bandwidth affine model,
// calibrated against the paper's absolute measurements: 32 × 1 MB
// blocks ≈ 5.2 ms and 16 × 1 MB ≈ 2.5 ms give ≈ 6.5 GB/s with ≈ 10 µs
// of per-transfer setup latency.
package pcie

import (
	"fmt"

	"micstream/internal/sim"
	"micstream/internal/trace"
)

// Direction of a transfer, named after the paper's stage labels.
type Direction uint8

const (
	// H2D moves a block from host memory to device memory.
	H2D Direction = iota
	// D2H moves a block from device memory to host memory.
	D2H
)

// String returns the paper's stage label for the direction.
func (d Direction) String() string {
	if d == H2D {
		return "H2D"
	}
	return "D2H"
}

// Kind converts the direction into the equivalent trace span class.
func (d Direction) Kind() trace.Kind {
	if d == H2D {
		return trace.H2D
	}
	return trace.D2H
}

// Config describes a link.
type Config struct {
	// BandwidthBps is the sustained DMA bandwidth in bytes/second.
	BandwidthBps float64
	// LatencyNs is the fixed per-transfer setup cost in nanoseconds
	// (descriptor setup, doorbell, completion interrupt).
	LatencyNs int64
	// FullDuplex lets H2D and D2H proceed concurrently. The real
	// MIC platform measured by the paper is half-duplex; full-duplex
	// exists for the ablation benchmark.
	FullDuplex bool
}

// DefaultConfig returns the link calibrated to the paper's platform
// (Intel MPSS 3.5.2 over PCIe gen2 x16 to a Xeon Phi 31SP).
func DefaultConfig() Config {
	return Config{
		BandwidthBps: 6.5e9,
		LatencyNs:    10_000,
		FullDuplex:   false,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BandwidthBps <= 0 {
		return fmt.Errorf("pcie: bandwidth must be positive, got %g", c.BandwidthBps)
	}
	if c.LatencyNs < 0 {
		return fmt.Errorf("pcie: latency must be non-negative, got %d", c.LatencyNs)
	}
	return nil
}

// TransferTime returns the modeled duration of moving n bytes.
func (c Config) TransferTime(n int64) sim.Duration {
	if n < 0 {
		n = 0
	}
	return sim.Duration(c.LatencyNs) + sim.DurationOf(float64(n)/c.BandwidthBps)
}

// Link is a DMA engine attached to one device.
type Link struct {
	cfg  Config
	name string
	rec  *trace.Recorder
	h2d  *sim.Server
	d2h  *sim.Server // == h2d when half-duplex
}

// NewLink builds a link on the engine. name scopes trace resources
// (e.g. "mic0"); rec may be nil to disable tracing.
func NewLink(eng *sim.Engine, cfg Config, name string, rec *trace.Recorder) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &Link{cfg: cfg, name: name, rec: rec}
	l.h2d = sim.NewServer(eng, name+"/pcie")
	if cfg.FullDuplex {
		l.d2h = sim.NewServer(eng, name+"/pcie-d2h")
	} else {
		l.d2h = l.h2d
	}
	return l, nil
}

// Config returns the link's configuration.
func (l *Link) Config() Config { return l.cfg }

// Transfer schedules a DMA of n bytes in the given direction, becoming
// eligible at ready. done (optional) fires at completion with the
// scheduled bounds. The stream and task ids annotate the trace.
func (l *Link) Transfer(dir Direction, n int64, ready sim.Time, stream, task int, done func(start, end sim.Time)) (start, end sim.Time) {
	srv := l.h2d
	if dir == D2H {
		srv = l.d2h
	}
	start, end = srv.Reserve(ready, l.cfg.TransferTime(n), done)
	l.rec.Add(trace.Span{
		Resource: srv.Name(),
		Stream:   stream,
		Task:     task,
		Kind:     dir.Kind(),
		Label:    fmt.Sprintf("%s %dB", dir, n),
		Start:    start,
		End:      end,
	})
	return start, end
}

// TotalBusy reports the link's cumulative DMA occupancy across both
// directions without double counting: the half-duplex link serializes
// both directions through one server, the full-duplex one sums its
// two. This is the sim.Server accounting the cluster surfaces as
// per-device link utilization.
func (l *Link) TotalBusy() sim.Duration {
	if l.cfg.FullDuplex {
		return l.h2d.Busy() + l.d2h.Busy()
	}
	return l.h2d.Busy()
}

// BusyTime reports cumulative DMA occupancy in the given direction.
func (l *Link) BusyTime(dir Direction) sim.Duration {
	if dir == D2H && l.cfg.FullDuplex {
		return l.d2h.Busy()
	}
	if l.cfg.FullDuplex {
		return l.h2d.Busy()
	}
	// Half-duplex: one server carries both directions; per-direction
	// split comes from the trace, total from the server.
	return l.h2d.Busy()
}
