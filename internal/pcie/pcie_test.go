package pcie

import (
	"testing"
	"testing/quick"

	"micstream/internal/sim"
	"micstream/internal/trace"
)

const MB = int64(1 << 20)

func newLink(t *testing.T, cfg Config) (*sim.Engine, *Link, *trace.Recorder) {
	t.Helper()
	eng := sim.NewEngine()
	rec := trace.NewRecorder()
	l, err := NewLink(eng, cfg, "mic0", rec)
	if err != nil {
		t.Fatal(err)
	}
	return eng, l, rec
}

func TestDefaultConfigMatchesPaperCalibration(t *testing.T) {
	cfg := DefaultConfig()
	// Paper §IV-A-1: 32 × 1MB blocks ≈ 5.2 ms, 16 × 1MB ≈ 2.5 ms.
	t32 := sim.Duration(0)
	for i := 0; i < 32; i++ {
		t32 += cfg.TransferTime(MB)
	}
	if ms := t32.Milliseconds(); ms < 4.7 || ms > 5.7 {
		t.Fatalf("32x1MB = %.2fms, want ≈5.2ms", ms)
	}
	t16 := sim.Duration(0)
	for i := 0; i < 16; i++ {
		t16 += cfg.TransferTime(MB)
	}
	if ms := t16.Milliseconds(); ms < 2.2 || ms > 2.9 {
		t.Fatalf("16x1MB = %.2fms, want ≈2.5ms", ms)
	}
}

func TestTransferTimeAffine(t *testing.T) {
	cfg := Config{BandwidthBps: 1e9, LatencyNs: 1000}
	if got := cfg.TransferTime(0); got != 1000 {
		t.Fatalf("zero-byte transfer = %v, want latency only (1µs)", got)
	}
	if got := cfg.TransferTime(1e9); got != sim.Duration(1000)+sim.Second {
		t.Fatalf("1GB transfer = %v, want 1s + 1µs", got)
	}
	if got := cfg.TransferTime(-5); got != 1000 {
		t.Fatalf("negative size clamps to latency, got %v", got)
	}
}

func TestHalfDuplexSerializesDirections(t *testing.T) {
	_, l, _ := newLink(t, Config{BandwidthBps: 1e9, LatencyNs: 0})
	_, end1 := l.Transfer(H2D, 1000, 0, 0, 0, nil)
	start2, _ := l.Transfer(D2H, 1000, 0, 1, 1, nil)
	if start2 != end1 {
		t.Fatalf("D2H started at %v while H2D busy until %v: directions overlapped on half-duplex link", start2, end1)
	}
}

func TestFullDuplexOverlapsDirections(t *testing.T) {
	_, l, _ := newLink(t, Config{BandwidthBps: 1e9, LatencyNs: 0, FullDuplex: true})
	_, end1 := l.Transfer(H2D, 1000, 0, 0, 0, nil)
	start2, end2 := l.Transfer(D2H, 1000, 0, 1, 1, nil)
	if start2 != 0 {
		t.Fatalf("full-duplex D2H start = %v, want 0 (concurrent)", start2)
	}
	if end2 != end1 {
		t.Fatalf("symmetric transfers should finish together: %v vs %v", end1, end2)
	}
}

// The ID experiment of Fig. 5: with hd+dh = 16 constant, a half-duplex
// link yields constant total time regardless of the split — this is
// exactly how the paper concludes serialization.
func TestFig5IDSweepConstantOnHalfDuplex(t *testing.T) {
	cfg := DefaultConfig()
	var ref sim.Time
	for hd := 0; hd <= 16; hd++ {
		eng := sim.NewEngine()
		l, err := NewLink(eng, cfg, "mic0", nil)
		if err != nil {
			t.Fatal(err)
		}
		var last sim.Time
		for i := 0; i < hd; i++ {
			_, last2 := l.Transfer(H2D, MB, 0, 0, i, nil)
			if last2 > last {
				last = last2
			}
		}
		for i := 0; i < 16-hd; i++ {
			_, last2 := l.Transfer(D2H, MB, 0, 0, i, nil)
			if last2 > last {
				last = last2
			}
		}
		if hd == 0 {
			ref = last
			continue
		}
		if last != ref {
			t.Fatalf("ID split hd=%d total=%v differs from ref %v: link not serializing", hd, last, ref)
		}
	}
}

// On a full-duplex link the ID sweep is NOT constant: time is dominated
// by the busier direction. This distinguishes the two modes and shows
// the ablation works.
func TestFig5IDSweepVariesOnFullDuplex(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FullDuplex = true
	total := func(hd int) sim.Time {
		eng := sim.NewEngine()
		l, _ := NewLink(eng, cfg, "mic0", nil)
		var last sim.Time
		for i := 0; i < hd; i++ {
			_, e := l.Transfer(H2D, MB, 0, 0, i, nil)
			if e > last {
				last = e
			}
		}
		for i := 0; i < 16-hd; i++ {
			_, e := l.Transfer(D2H, MB, 0, 0, i, nil)
			if e > last {
				last = e
			}
		}
		return last
	}
	if total(8) >= total(0) {
		t.Fatalf("full-duplex balanced split (%v) should beat one-sided (%v)", total(8), total(0))
	}
}

func TestTransfersAreTraced(t *testing.T) {
	_, l, rec := newLink(t, DefaultConfig())
	l.Transfer(H2D, MB, 0, 3, 7, nil)
	l.Transfer(D2H, MB, 0, 4, 8, nil)
	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("traced %d spans, want 2", len(spans))
	}
	if spans[0].Kind != trace.H2D || spans[0].Stream != 3 || spans[0].Task != 7 {
		t.Fatalf("bad H2D span: %+v", spans[0])
	}
	if spans[1].Kind != trace.D2H {
		t.Fatalf("bad D2H span: %+v", spans[1])
	}
}

func TestCompletionCallback(t *testing.T) {
	eng, l, _ := newLink(t, Config{BandwidthBps: 1e9, LatencyNs: 0})
	var doneAt sim.Time = -1
	l.Transfer(H2D, 1000, 0, 0, 0, func(start, end sim.Time) { doneAt = eng.Now() })
	eng.Run()
	if doneAt != sim.Time(1000) {
		t.Fatalf("completion at %v, want 1µs", doneAt)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewLink(eng, Config{BandwidthBps: 0}, "x", nil); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := NewLink(eng, Config{BandwidthBps: 1, LatencyNs: -1}, "x", nil); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestDirectionString(t *testing.T) {
	if H2D.String() != "H2D" || D2H.String() != "D2H" {
		t.Fatal("direction labels wrong")
	}
	if H2D.Kind() != trace.H2D || D2H.Kind() != trace.D2H {
		t.Fatal("direction→kind mapping wrong")
	}
}

// Property: total link busy time equals the sum of individual transfer
// times (work conservation: serialization never loses or creates work).
func TestPropertyWorkConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.NewEngine()
		cfg := Config{BandwidthBps: 1e6, LatencyNs: 100}
		l, _ := NewLink(eng, cfg, "m", nil)
		var want sim.Duration
		for i, s := range sizes {
			dir := H2D
			if i%2 == 1 {
				dir = D2H
			}
			l.Transfer(dir, int64(s), 0, 0, i, nil)
			want += cfg.TransferTime(int64(s))
		}
		return l.BusyTime(H2D) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
