package hbench

import "micstream/internal/model"

// Model describes the streamed microbenchmark to the analytic
// performance model: RunStreamed's single phase of tiles tasks, each
// shipping its float32 slice in, iterating the addition, and shipping
// the result back. The tiles argument of the description matches
// RunStreamed's tile count.
func (a *App) Model() model.Workload {
	e, iters := a.p.Elements, a.p.Iterations
	return model.Workload{
		Name:  "hbench",
		Flops: float64(e) * float64(iters),
		Phases: func(tiles int) []model.Phase {
			if tiles < 1 {
				tiles = 1
			}
			if tiles > e {
				tiles = e
			}
			n := e / tiles
			return []model.Phase{{
				Tiles:           tiles,
				H2DBytesPerTile: int64(4 * n),
				D2HBytesPerTile: int64(4 * n),
				HasKernel:       true,
				Cost:            Cost(n, iters),
			}}
		},
	}
}
