// Package hbench is the paper's microbenchmark (§III-B-1): the kernel
// B[i] = A[i] + α whose compute intensity is dialed by repeating the
// addition for a configurable number of iterations. It drives the three
// microbenchmark experiments:
//
//   - Fig. 5: overlap of H2D and D2H transfers (patterns CC/IC/CD/ID);
//   - Fig. 6: overlap of transfers with kernel execution, sweeping the
//     iteration count through the transfer/compute crossover;
//   - Fig. 7: spatial sharing — kernel-only time across partition
//     counts with the array pre-split into 128 blocks.
package hbench

import (
	"fmt"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/sim"
	"micstream/internal/workload"
)

// Efficiency is the kernel's arithmetic efficiency relative to device
// peak. B[i] = A[i] + α is a scalar, memory-latency-bound loop; the
// calibrated value reproduces the paper's ≈40-iteration crossover in
// Fig. 6: kernel time equals the ≈5 ms transfer time of the two 16 MB
// arrays at 40 iterations, i.e. 1.68e8 element-ops in 5 ms on 224
// threads ≈ 3.6% of the 31SP's peak.
const Efficiency = 0.0364

// Params configures the microbenchmark.
type Params struct {
	// Elements is the length of arrays A and B (float32).
	Elements int
	// Iterations is the number of times the addition is repeated —
	// the compute-intensity dial.
	Iterations int
	// Alpha is the added constant.
	Alpha float32
	// Functional enables real data and kernel execution.
	Functional bool
	// Seed seeds the input generator in functional mode.
	Seed uint64
}

// DefaultParams returns the paper's Fig. 6 setup: 16 MB arrays.
func DefaultParams() Params {
	return Params{Elements: 4 << 20, Iterations: 40, Alpha: 1.5}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Elements <= 0 {
		return fmt.Errorf("hbench: elements must be positive, got %d", p.Elements)
	}
	if p.Iterations < 1 {
		return fmt.Errorf("hbench: iterations must be ≥ 1, got %d", p.Iterations)
	}
	return nil
}

// Cost returns the timing-model cost of one kernel invocation covering
// n elements for the given iteration count.
func Cost(n, iterations int) device.KernelCost {
	return device.KernelCost{
		Name:       "hbench",
		Flops:      float64(n) * float64(iterations),
		Bytes:      float64(n) * 8, // read A, write B, float32 each
		Efficiency: Efficiency,
	}
}

// App is an instantiated microbenchmark.
type App struct {
	p Params
	a []float32 // input, functional mode only
	b []float32 // output, functional mode only
}

// New builds the microbenchmark.
func New(p Params) (*App, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	app := &App{p: p}
	if p.Functional {
		rng := workload.NewRNG(p.Seed)
		app.a = make([]float32, p.Elements)
		for i := range app.a {
			app.a[i] = rng.Float32()
		}
		app.b = make([]float32, p.Elements)
	}
	return app, nil
}

// Params returns the benchmark's parameters.
func (a *App) Params() Params { return a.p }

func (a *App) newContext(partitions int) (*hstreams.Context, error) {
	return hstreams.Init(hstreams.Config{
		Partitions:     partitions,
		ExecuteKernels: a.p.Functional,
		Trace:          true,
	})
}

func (a *App) buffers(ctx *hstreams.Context) (bufA, bufB *hstreams.Buffer) {
	if a.p.Functional {
		return hstreams.Alloc1D(ctx, "A", a.a), hstreams.Alloc1D(ctx, "B", a.b)
	}
	return hstreams.AllocVirtual(ctx, "A", a.p.Elements, 4),
		hstreams.AllocVirtual(ctx, "B", a.p.Elements, 4)
}

// body returns the functional kernel over [off, off+n).
func (a *App) body(bufA, bufB *hstreams.Buffer, off, n int) func(*hstreams.KernelCtx) {
	if !a.p.Functional {
		return nil
	}
	alpha := a.p.Alpha
	return func(k *hstreams.KernelCtx) {
		src := hstreams.DeviceSlice[float32](bufA, k.DeviceIndex)
		dst := hstreams.DeviceSlice[float32](bufB, k.DeviceIndex)
		for i := off; i < off+n; i++ {
			dst[i] = src[i] + alpha
		}
	}
}

// TransferPattern measures Fig. 5's transfer scenarios: hd blocks move
// host→device followed by dh blocks device→host, each of blockBytes
// bytes, all enqueued at time zero on one stream pair. It returns the
// total transfer time.
func TransferPattern(hd, dh int, blockBytes int64) (sim.Duration, error) {
	if hd < 0 || dh < 0 || blockBytes <= 0 {
		return 0, fmt.Errorf("hbench: invalid transfer pattern hd=%d dh=%d block=%d", hd, dh, blockBytes)
	}
	ctx, err := hstreams.Init(hstreams.Config{Partitions: 2, Trace: true})
	if err != nil {
		return 0, err
	}
	elems := int(blockBytes) // 1-byte elements
	buf := hstreams.AllocVirtual(ctx, "blocks", elems, 1)
	// Two streams so that the H2D and D2H queues are independent:
	// any serialization observed comes from the link, not FIFO order.
	s0, s1 := ctx.Stream(0), ctx.Stream(1)
	for i := 0; i < hd; i++ {
		if _, err := s0.EnqueueH2D(buf, 0, elems, i); err != nil {
			return 0, err
		}
	}
	for i := 0; i < dh; i++ {
		if _, err := s1.EnqueueD2H(buf, 0, elems, hd+i); err != nil {
			return 0, err
		}
	}
	return ctx.Barrier().Sub(0), nil
}

// DataTime measures the pure transfer time of the benchmark's arrays:
// A host→device plus B device→host, no kernel (Fig. 6's "Data" line).
func (a *App) DataTime() (sim.Duration, error) {
	ctx, err := a.newContext(1)
	if err != nil {
		return 0, err
	}
	bufA, bufB := a.buffers(ctx)
	s := ctx.Stream(0)
	if _, err := s.EnqueueH2D(bufA, 0, a.p.Elements, 0); err != nil {
		return 0, err
	}
	if _, err := s.EnqueueD2H(bufB, 0, a.p.Elements, 0); err != nil {
		return 0, err
	}
	return ctx.Barrier().Sub(0), nil
}

// KernelTime measures the pure kernel time on the whole device
// (Fig. 6's "Kernel" line).
func (a *App) KernelTime() (sim.Duration, error) {
	ctx, err := a.newContext(1)
	if err != nil {
		return 0, err
	}
	bufA, bufB := a.buffers(ctx)
	s := ctx.Stream(0)
	s.EnqueueKernel(Cost(a.p.Elements, a.p.Iterations), 0, a.body(bufA, bufB, 0, a.p.Elements))
	return ctx.Barrier().Sub(0), nil
}

// RunSerial measures the non-streamed, non-tiled offload: H2D, one
// kernel, D2H, strictly sequential (Fig. 6's "Data+Kernel" expectation
// and Fig. 7's "ref" bar).
func (a *App) RunSerial() (core.Result, error) {
	ctx, err := a.newContext(1)
	if err != nil {
		return core.Result{}, err
	}
	bufA, bufB := a.buffers(ctx)
	tasks := []*core.Task{{
		ID:         0,
		H2D:        []core.TransferSpec{core.Xfer(bufA, 0, a.p.Elements)},
		Cost:       Cost(a.p.Elements, a.p.Iterations),
		Body:       a.body(bufA, bufB, 0, a.p.Elements),
		D2H:        []core.TransferSpec{core.Xfer(bufB, 0, a.p.Elements)},
		StreamHint: -1,
	}}
	return core.Run(ctx, tasks, float64(a.p.Elements)*float64(a.p.Iterations))
}

// RunStreamed measures the tiled, multi-stream offload: the arrays are
// split into tiles tasks pipelined over partitions streams — Fig. 6's
// "Streamed" line.
func (a *App) RunStreamed(partitions, tiles int) (core.Result, error) {
	if tiles < 1 || tiles > a.p.Elements {
		return core.Result{}, fmt.Errorf("hbench: tile count %d out of range", tiles)
	}
	ctx, err := a.newContext(partitions)
	if err != nil {
		return core.Result{}, err
	}
	bufA, bufB := a.buffers(ctx)
	tasks := make([]*core.Task, 0, tiles)
	for i := 0; i < tiles; i++ {
		off := i * a.p.Elements / tiles
		end := (i + 1) * a.p.Elements / tiles
		n := end - off
		tasks = append(tasks, &core.Task{
			ID:         i,
			H2D:        []core.TransferSpec{core.Xfer(bufA, off, n)},
			Cost:       Cost(n, a.p.Iterations),
			Body:       a.body(bufA, bufB, off, n),
			D2H:        []core.TransferSpec{core.Xfer(bufB, off, n)},
			StreamHint: -1,
		})
	}
	return core.Run(ctx, tasks, float64(a.p.Elements)*float64(a.p.Iterations))
}

// KernelPhase measures only the kernel phase of a tiled run at the
// given resource granularity, with transfers fully synchronized before
// the kernels start — the paper's Fig. 7 protocol ("we explicitly make
// a synchronization between data transfers and kernel execution", so
// the application is non-overlappable by construction).
func (a *App) KernelPhase(partitions, tiles int) (sim.Duration, error) {
	if tiles < 1 {
		return 0, fmt.Errorf("hbench: tile count %d out of range", tiles)
	}
	ctx, err := a.newContext(partitions)
	if err != nil {
		return 0, err
	}
	bufA, bufB := a.buffers(ctx)
	// Phase 1: ship the whole input, then synchronize.
	if _, err := ctx.Stream(0).EnqueueH2D(bufA, 0, a.p.Elements, -1); err != nil {
		return 0, err
	}
	start := ctx.Barrier()
	// Phase 2: tiled kernels across all streams.
	var tasks []*core.Task
	for i := 0; i < tiles; i++ {
		off := i * a.p.Elements / tiles
		n := (i+1)*a.p.Elements/tiles - off
		tasks = append(tasks, &core.Task{
			ID:         i,
			Cost:       Cost(n, a.p.Iterations),
			Body:       a.body(bufA, bufB, off, n),
			StreamHint: -1,
		})
	}
	if _, err := core.EnqueuePhase(ctx, tasks); err != nil {
		return 0, err
	}
	return ctx.Barrier().Sub(start), nil
}

// Verify checks the functional output B == A + α. It fails in
// timing-only mode.
func (a *App) Verify() error {
	if !a.p.Functional {
		return fmt.Errorf("hbench: Verify requires functional mode")
	}
	for i := range a.b {
		want := a.a[i] + a.p.Alpha
		if a.b[i] != want {
			return fmt.Errorf("hbench: b[%d] = %v, want %v", i, a.b[i], want)
		}
	}
	return nil
}
