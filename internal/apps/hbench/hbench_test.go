package hbench

import (
	"testing"

	"micstream/internal/sim"
	"micstream/internal/stats"
)

func TestValidation(t *testing.T) {
	if _, err := New(Params{Elements: 0, Iterations: 1}); err == nil {
		t.Fatal("zero elements accepted")
	}
	if _, err := New(Params{Elements: 10, Iterations: 0}); err == nil {
		t.Fatal("zero iterations accepted")
	}
	if _, err := TransferPattern(-1, 0, 1); err == nil {
		t.Fatal("negative block count accepted")
	}
	if _, err := TransferPattern(1, 1, 0); err == nil {
		t.Fatal("zero block size accepted")
	}
}

func TestFunctionalCorrectness(t *testing.T) {
	app, err := New(Params{Elements: 1 << 12, Iterations: 3, Alpha: 2.5, Functional: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.RunStreamed(4, 8); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRequiresFunctional(t *testing.T) {
	app, _ := New(Params{Elements: 16, Iterations: 1})
	if err := app.Verify(); err == nil {
		t.Fatal("Verify in timing-only mode accepted")
	}
}

func TestFunctionalSerialRun(t *testing.T) {
	app, err := New(Params{Elements: 1 << 10, Iterations: 2, Alpha: -1, Functional: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.RunSerial(); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Fig. 5 shapes: CC (16+16 blocks) constant ≈ 2× ID (16 split blocks);
// IC grows linearly with hd; CD shrinks linearly; ID constant.
func TestFig5TransferShapes(t *testing.T) {
	const MB = 1 << 20
	cc, err := TransferPattern(16, 16, MB)
	if err != nil {
		t.Fatal(err)
	}
	if ms := cc.Milliseconds(); ms < 4.7 || ms > 5.7 {
		t.Fatalf("CC = %.2fms, want ≈5.2ms (paper §IV-A-1)", ms)
	}
	var ic, cd, id []float64
	for hd := 0; hd <= 16; hd++ {
		v, err := TransferPattern(hd, 16, MB)
		if err != nil {
			t.Fatal(err)
		}
		ic = append(ic, v.Milliseconds())
		v, err = TransferPattern(16, 16-hd, MB)
		if err != nil {
			t.Fatal(err)
		}
		cd = append(cd, v.Milliseconds())
		v, err = TransferPattern(hd, 16-hd, MB)
		if err != nil {
			t.Fatal(err)
		}
		id = append(id, v.Milliseconds())
	}
	if !stats.IsMonotone(ic, +1, 0) {
		t.Fatalf("IC not increasing: %v", ic)
	}
	if !stats.IsMonotone(cd, -1, 0) {
		t.Fatalf("CD not decreasing: %v", cd)
	}
	if !stats.IsRoughlyConstant(id, 0.01) {
		t.Fatalf("ID not constant (serialized link): %v", id)
	}
	// Linearity of IC: slope ≈ one block time, r² ≈ 1.
	xs := make([]float64, len(ic))
	for i := range xs {
		xs[i] = float64(i)
	}
	_, slope, r2, err := stats.LinearFit(xs, ic)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.999 {
		t.Fatalf("IC not linear: r²=%v", r2)
	}
	if slope < 0.13 || slope > 0.20 {
		t.Fatalf("IC slope %.3f ms/block, want ≈0.16 (1MB at 6.5GB/s + latency)", slope)
	}
	// ID ≈ half of CC (16 vs 32 blocks over a serial link).
	if ratio := cc.Milliseconds() / stats.Mean(id); ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("CC/ID = %.2f, want ≈2", ratio)
	}
}

// Fig. 6 shapes: data time constant across iteration counts, kernel
// time linear, crossover near 40 iterations, and the streamed
// measurement sits between the ideal and the serial sum.
func TestFig6OverlapShapes(t *testing.T) {
	base := DefaultParams()
	var data, kernel, streamed, serialSum, ideal []float64
	for iters := 20; iters <= 60; iters += 5 {
		p := base
		p.Iterations = iters
		app, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		d, err := app.DataTime()
		if err != nil {
			t.Fatal(err)
		}
		k, err := app.KernelTime()
		if err != nil {
			t.Fatal(err)
		}
		s, err := app.RunStreamed(4, 8)
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, d.Milliseconds())
		kernel = append(kernel, k.Milliseconds())
		streamed = append(streamed, s.Wall.Milliseconds())
		serialSum = append(serialSum, d.Milliseconds()+k.Milliseconds())
		ideal = append(ideal, maxf(d.Milliseconds(), k.Milliseconds()))
	}
	if !stats.IsRoughlyConstant(data, 0.01) {
		t.Fatalf("data line not constant: %v", data)
	}
	if !stats.IsMonotone(kernel, +1, 0) {
		t.Fatalf("kernel line not increasing: %v", kernel)
	}
	// Crossover: kernel below data at 20 iterations, above at 60.
	if kernel[0] >= data[0] {
		t.Fatalf("at 20 iters kernel (%v) should be below data (%v)", kernel[0], data[0])
	}
	last := len(kernel) - 1
	if kernel[last] <= data[last] {
		t.Fatalf("at 60 iters kernel (%v) should be above data (%v)", kernel[last], data[last])
	}
	for i := range streamed {
		if streamed[i] >= serialSum[i] {
			t.Fatalf("iters point %d: streamed %.2fms not below serial %.2fms", i, streamed[i], serialSum[i])
		}
		if streamed[i] <= ideal[i] {
			t.Fatalf("iters point %d: streamed %.2fms at or below ideal %.2fms — full overlap should be unattainable on a half-duplex link", i, streamed[i], ideal[i])
		}
	}
}

// Fig. 7 shape: kernel-phase time over partitions is high at P=1,
// reaches a minimum at intermediate P, rises again toward P=128, and
// the non-tiled non-streamed reference beats every tiled point.
func TestFig7PartitionShapes(t *testing.T) {
	p := DefaultParams()
	p.Iterations = 100
	app, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	partitions := []int{1, 2, 4, 8, 16, 32, 64, 128}
	var times []float64
	for _, parts := range partitions {
		d, err := app.KernelPhase(parts, 128)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, d.Milliseconds())
	}
	_, minAt := stats.Min(times)
	if minAt == 0 || minAt == len(times)-1 {
		t.Fatalf("minimum at edge (P=%d): %v", partitions[minAt], times)
	}
	if times[0] <= times[minAt]*1.4 {
		t.Fatalf("P=1 (%v) should be well above the minimum (%v)", times[0], times[minAt])
	}
	if times[len(times)-1] <= times[minAt] {
		t.Fatalf("P=128 (%v) should be above the minimum (%v)", times[len(times)-1], times[minAt])
	}
	// ref: the non-streamed non-tiled kernel is faster than every
	// tiled configuration (spatial sharing alone gives no win).
	ref, err := app.KernelTime()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range times {
		if ref.Milliseconds() >= v {
			t.Fatalf("ref %.2fms not below tiled P=%d %.2fms", ref.Milliseconds(), partitions[i], v)
		}
	}
}

// The streamed run must beat the serial run for this overlappable
// microbenchmark at the paper's crossover point.
func TestStreamedBeatsSerialAtCrossover(t *testing.T) {
	app, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := app.RunSerial()
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := app.RunStreamed(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Wall >= serial.Wall {
		t.Fatalf("streamed %v not faster than serial %v", streamed.Wall, serial.Wall)
	}
	if streamed.OverlapFraction <= 0.2 {
		t.Fatalf("overlap fraction %.2f suspiciously low for a pipelined run", streamed.OverlapFraction)
	}
}

func TestRunStreamedValidatesTiles(t *testing.T) {
	app, err := New(Params{Elements: 64, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.RunStreamed(2, 0); err == nil {
		t.Fatal("zero tiles accepted")
	}
	if _, err := app.RunStreamed(2, 65); err == nil {
		t.Fatal("more tiles than elements accepted")
	}
	if _, err := app.KernelPhase(2, 0); err == nil {
		t.Fatal("zero tiles accepted by KernelPhase")
	}
}

func TestDurationsArePositive(t *testing.T) {
	app, err := New(Params{Elements: 1 << 16, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	d, err := app.DataTime()
	if err != nil {
		t.Fatal(err)
	}
	k, err := app.KernelTime()
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || k <= 0 {
		t.Fatalf("non-positive times: data=%v kernel=%v", d, k)
	}
	if sim.Duration(d) == 0 {
		t.Fatal("zero data time")
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
