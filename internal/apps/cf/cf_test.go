package cf

import (
	"testing"

	"micstream/internal/stats"
)

func TestValidation(t *testing.T) {
	if _, err := New(Params{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	app, err := New(Params{N: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(1, 4, 5); err == nil {
		t.Fatal("non-dividing grid accepted")
	}
	if _, err := app.Run(0, 4, 4); err == nil {
		t.Fatal("zero devices accepted")
	}
}

func TestTileIndexing(t *testing.T) {
	// Lower-triangle row-major: (0,0)=0, (1,0)=1, (1,1)=2, (2,0)=3...
	want := map[[2]int]int{{0, 0}: 0, {1, 0}: 1, {1, 1}: 2, {2, 0}: 3, {2, 1}: 4, {2, 2}: 5}
	for k, v := range want {
		if tileIndex(k[0], k[1]) != v {
			t.Fatalf("tileIndex(%d,%d) = %d, want %d", k[0], k[1], tileIndex(k[0], k[1]), v)
		}
	}
	if numTiles(4) != 10 {
		t.Fatalf("numTiles(4) = %d, want 10", numTiles(4))
	}
}

func TestFunctionalFactorizationTiled(t *testing.T) {
	app, err := New(Params{N: 96, Functional: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(1, 4, 4); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionalFactorizationNonStreamed(t *testing.T) {
	app, err := New(Params{N: 48, Functional: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionalFactorizationMultiDevice(t *testing.T) {
	app, err := New(Params{N: 96, Functional: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(2, 2, 4); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyGuards(t *testing.T) {
	app, _ := New(Params{N: 16})
	if err := app.Verify(); err == nil {
		t.Fatal("Verify in timing-only mode accepted")
	}
	fn, _ := New(Params{N: 16, Functional: true})
	if err := fn.Verify(); err == nil {
		t.Fatal("Verify before Run accepted")
	}
}

// Paper §V-A: streamed CF beats non-streamed by ≈24.1% on average.
func TestStreamedBeatsNonStreamedAtPaperScale(t *testing.T) {
	app, err := New(Params{N: 9600})
	if err != nil {
		t.Fatal(err)
	}
	base, err := app.Run(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := app.Run(1, 4, 12) // tile 800×800, the Fig. 9b setup
	if err != nil {
		t.Fatal(err)
	}
	gain := streamed.GFlops/base.GFlops - 1
	if gain < 0.10 || gain > 0.45 {
		t.Fatalf("streamed gain %.1f%% (%.1f vs %.1f GFLOPS), want ≈24%%", gain*100, streamed.GFlops, base.GFlops)
	}
	// Calibration: paper reaches ≈350 GFLOPS at D=9600.
	if streamed.GFlops < 250 || streamed.GFlops > 450 {
		t.Fatalf("streamed CF = %.1f GFLOPS, want ≈350", streamed.GFlops)
	}
}

// Fig. 9b: divisor partition counts beat non-divisor neighbours.
func TestDivisorPartitionsWin(t *testing.T) {
	app, err := New(Params{N: 4800})
	if err != nil {
		t.Fatal(err)
	}
	run := func(p int) float64 {
		r, err := app.Run(1, p, 6)
		if err != nil {
			t.Fatal(err)
		}
		return r.GFlops
	}
	for _, tc := range []struct{ div, nondiv int }{{4, 5}, {8, 9}} {
		if d, nd := run(tc.div), run(tc.nondiv); d <= nd {
			t.Errorf("P=%d (divisor, %.1f GF) did not beat P=%d (%.1f GF)", tc.div, d, tc.nondiv, nd)
		}
	}
}

// Fig. 10b: performance over tile counts rises from coarse tiling to an
// interior optimum (the paper's T=100 at D=9600) and falls again for
// very fine tiling.
func TestTileSweepHasInteriorOptimum(t *testing.T) {
	app, err := New(Params{N: 9600})
	if err != nil {
		t.Fatal(err)
	}
	grids := []int{2, 4, 8, 12, 24, 48, 96}
	var gf []float64
	for _, g := range grids {
		r, err := app.Run(1, 4, g)
		if err != nil {
			t.Fatal(err)
		}
		gf = append(gf, r.GFlops)
	}
	_, peak := stats.Max(gf)
	if peak == 0 || peak == len(gf)-1 {
		t.Fatalf("no interior optimum: %v (grids %v)", gf, grids)
	}
	if grids[peak] < 4 || grids[peak] > 48 {
		t.Fatalf("peak at grid %d, expected an intermediate grid (paper: T=100 ⇒ grid 10): %v", grids[peak], gf)
	}
}

// Fig. 11: two MICs beat one but fall short of the projected 2×.
func TestMultiMICScaling(t *testing.T) {
	app, err := New(Params{N: 14000})
	if err != nil {
		t.Fatal(err)
	}
	one, err := app.Run(1, 4, 14)
	if err != nil {
		t.Fatal(err)
	}
	two, err := app.Run(2, 4, 14)
	if err != nil {
		t.Fatal(err)
	}
	if two.GFlops <= one.GFlops*1.05 {
		t.Fatalf("2 MICs (%.1f GF) should clearly beat 1 MIC (%.1f GF)", two.GFlops, one.GFlops)
	}
	if two.GFlops >= one.GFlops*2 {
		t.Fatalf("2 MICs (%.1f GF) should fall short of projected 2× (%.1f GF): extra transfers and sync", two.GFlops, one.GFlops*2)
	}
}

func TestTotalFlops(t *testing.T) {
	app, _ := New(Params{N: 300})
	if got, want := app.TotalFlops(), 300.0*300*300/3; got != want {
		t.Fatalf("TotalFlops = %g, want %g", got, want)
	}
}
