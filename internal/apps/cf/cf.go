// Package cf is the paper's Cholesky Factorization application (from
// the hStreams SDK): a tiled right-looking factorization A = L·Lᵀ of a
// symmetric positive-definite matrix, expressed as the classic
// POTRF/TRSM/SYRK/GEMM task DAG over the lower-triangular tiles. CF is
// the paper's richest workload: tasks have real cross-stream
// dependencies, several kernel types, and (in the multi-device runs of
// Fig. 11) cross-MIC data staging. It drives Figs. 8b, 9b, 10b and 11.
//
// The matrix is stored tile-blocked: lower-triangle tile (i,j), i ≥ j,
// occupies the contiguous range tileIndex(i,j)·b² of the buffer, which
// makes every tile a single transfer.
package cf

import (
	"fmt"
	"math"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/workload"
)

// Efficiency is the arithmetic efficiency of the Level-3 tile kernels
// relative to peak, calibrated so the best streamed configuration of
// Fig. 9b lands near the paper's ≈350 GFLOPS at D = 9600.
const Efficiency = 0.40

// ScalingPenalty mirrors mm: barrier-heavy dense kernels lose
// efficiency as they span more threads.
const ScalingPenalty = 0.10

// Params configures the application.
type Params struct {
	// N is the matrix dimension.
	N int
	// Functional enables real data and kernels.
	Functional bool
	// Seed seeds the SPD matrix generator in functional mode.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("cf: N must be positive, got %d", p.N)
	}
	return nil
}

// App is an instantiated Cholesky workload.
type App struct {
	p     Params
	orig  []float64 // dense row-major copy of A for verification
	tiles []float64 // tile-blocked lower triangle, host side
	grid  int       // tiles per dimension of the last Build
}

// New builds the workload. In functional mode the input is a random
// SPD matrix of dimension N.
func New(p Params) (*App, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	app := &App{p: p}
	if p.Functional {
		app.orig = workload.SPDMatrix(p.Seed, p.N)
	}
	return app, nil
}

// Params returns the workload parameters.
func (a *App) Params() Params { return a.p }

// TotalFlops reports the useful work of the factorization: N³/3.
func (a *App) TotalFlops() float64 {
	n := float64(a.p.N)
	return n * n * n / 3
}

// tileIndex maps lower-triangle coordinates to the blocked layout.
func tileIndex(i, j int) int { return i*(i+1)/2 + j }

// numTiles reports the lower-triangle tile count for a g×g grid.
func numTiles(g int) int { return g * (g + 1) / 2 }

// kernelCost builds the cost of one tile kernel with the given flop
// count and traffic for tile size b.
func kernelCost(name string, flops float64, b int) device.KernelCost {
	bs := float64(b)
	return device.KernelCost{
		Name:           name,
		Flops:          flops,
		Bytes:          3 * bs * bs * 8,
		Efficiency:     Efficiency * bs / (bs + 50),
		ScalingPenalty: ScalingPenalty,
	}
}

// costs for the four tile kernels of the right-looking algorithm.
// POTRF's column-by-column dependency chain caps its efficiency below
// the Level-3 updates'; in the tiled run POTRF is <1% of the flops, but
// the non-streamed baseline pays this rate for the whole factorization,
// which is a large part of why the paper's streamed CF wins 24% (§V-A).
func potrfCost(b int) device.KernelCost {
	bs := float64(b)
	c := kernelCost("cf.potrf", bs*bs*bs/3, b)
	c.Efficiency *= 0.85
	return c
}
func trsmCost(b int) device.KernelCost {
	bs := float64(b)
	return kernelCost("cf.trsm", bs*bs*bs, b)
}
func syrkCost(b int) device.KernelCost {
	bs := float64(b)
	return kernelCost("cf.syrk", bs*bs*bs, b)
}
func gemmCost(b int) device.KernelCost {
	bs := float64(b)
	return kernelCost("cf.gemm", 2*bs*bs*bs, b)
}

// Run factors the matrix with a grid×grid tiling (T = grid(grid+1)/2
// lower tiles; the paper counts T = grid² as if the full square were
// tiled) on partitions partitions per device across devices devices.
// grid must divide N. partitions=1, grid=1, devices=1 is the
// non-streamed baseline.
func (a *App) Run(devices, partitions, grid int) (core.Result, error) {
	if grid < 1 || a.p.N%grid != 0 {
		return core.Result{}, fmt.Errorf("cf: tile grid %d must divide N=%d", grid, a.p.N)
	}
	if devices < 1 {
		return core.Result{}, fmt.Errorf("cf: need at least one device")
	}
	ctx, err := hstreams.Init(hstreams.Config{
		Devices:        devices,
		Partitions:     partitions,
		ExecuteKernels: a.p.Functional,
		Trace:          true,
	})
	if err != nil {
		return core.Result{}, err
	}
	b := a.p.N / grid
	nt := numTiles(grid)
	var buf *hstreams.Buffer
	if a.p.Functional {
		a.grid = grid
		a.tiles = make([]float64, nt*b*b)
		a.packTiles(grid, b)
		buf = hstreams.Alloc1D(ctx, "A", a.tiles)
	} else {
		buf = hstreams.AllocVirtual(ctx, "A", nt*b*b, 8)
	}

	tasks, err := a.buildDAG(ctx, buf, grid, b)
	if err != nil {
		return core.Result{}, err
	}
	res, err := core.Run(ctx, tasks, a.TotalFlops())
	if err != nil {
		return core.Result{}, err
	}
	if a.p.Functional {
		a.unpackTiles(grid, b)
	}
	return res, nil
}

// buildDAG emits the right-looking factorization task graph. Tasks are
// pinned to streams by tile ownership (round-robin over the context's
// streams by tile index) so repeated writers of a tile share a FIFO,
// and cross-device consumers stage tiles through the host.
func (a *App) buildDAG(ctx *hstreams.Context, buf *hstreams.Buffer, grid, b int) ([]*core.Task, error) {
	nstreams := ctx.NumStreams()
	spp := ctx.Config().StreamsPerPartition
	perDev := ctx.Config().Partitions * spp
	bb := b * b

	owner := func(i, j int) int { return tileIndex(i, j) % nstreams }
	devOf := func(stream int) int { return stream / perDev }

	// lastWriter[tile] is the task id of the tile's latest producer;
	// tileHome[tile] is the device holding the authoritative copy.
	lastWriter := make(map[int]int)
	tileHome := make(map[int]int)
	var tasks []*core.Task
	id := 0

	// newTask assembles one tile kernel writing tile (i,j) and
	// reading the listed input tiles (beyond the output tile itself).
	newTask := func(cost device.KernelCost, i, j int, reads [][2]int, body func(*hstreams.KernelCtx), final bool) {
		s := owner(i, j)
		dev := devOf(s)
		out := tileIndex(i, j)
		t := &core.Task{ID: id, Cost: cost, Body: body, StreamHint: s}

		use := func(tile int) {
			if w, ok := lastWriter[tile]; ok {
				t.DependsOn = append(t.DependsOn, w)
				if tileHome[tile] != dev {
					// Stage the producer's tile to this task's
					// device through the host: the producer
					// already wrote it back (see below); gate
					// our H2D on the producer's completion.
					t.H2D = append(t.H2D, core.XferAfter(buf, tile*bb, bb, w))
				}
			} else {
				// First touch: ship the original tile.
				t.H2D = append(t.H2D, core.Xfer(buf, tile*bb, bb))
				tileHome[tile] = dev
			}
		}
		use(out)
		for _, r := range reads {
			use(tileIndex(r[0], r[1]))
		}
		// Write the result back whenever another device may need it
		// or this is the tile's final form. Single-device runs only
		// write back finals (L tiles); multi-device runs also
		// publish intermediates, which is exactly the extra traffic
		// the paper blames for the sub-2× scaling of Fig. 11.
		if final || ctx.NumDevices() > 1 {
			t.D2H = append(t.D2H, core.Xfer(buf, out*bb, bb))
		}
		lastWriter[out] = id
		tileHome[out] = dev
		tasks = append(tasks, t)
		id++
	}

	for k := 0; k < grid; k++ {
		k := k
		var potrfBody func(*hstreams.KernelCtx)
		if a.p.Functional {
			potrfBody = func(kc *hstreams.KernelCtx) { a.potrf(kc, buf, k, b, grid) }
		}
		newTask(potrfCost(b), k, k, nil, potrfBody, true)

		for i := k + 1; i < grid; i++ {
			i := i
			var trsmBody func(*hstreams.KernelCtx)
			if a.p.Functional {
				trsmBody = func(kc *hstreams.KernelCtx) { a.trsm(kc, buf, i, k, b, grid) }
			}
			newTask(trsmCost(b), i, k, [][2]int{{k, k}}, trsmBody, true)
		}
		for i := k + 1; i < grid; i++ {
			i := i
			for j := k + 1; j <= i; j++ {
				j := j
				if i == j {
					var syrkBody func(*hstreams.KernelCtx)
					if a.p.Functional {
						syrkBody = func(kc *hstreams.KernelCtx) { a.syrk(kc, buf, i, k, b, grid) }
					}
					newTask(syrkCost(b), i, i, [][2]int{{i, k}}, syrkBody, false)
					continue
				}
				var gemmBody func(*hstreams.KernelCtx)
				if a.p.Functional {
					gemmBody = func(kc *hstreams.KernelCtx) { a.gemm(kc, buf, i, j, k, b, grid) }
				}
				newTask(gemmCost(b), i, j, [][2]int{{i, k}, {j, k}}, gemmBody, false)
			}
		}
	}
	return tasks, nil
}

// --- functional tile kernels -------------------------------------------

func tileAt(v []float64, i, j, bb int) []float64 {
	base := tileIndex(i, j) * bb
	return v[base : base+bb]
}

// potrf factors tile (k,k) in place: A = L·Lᵀ (unblocked Cholesky).
func (a *App) potrf(kc *hstreams.KernelCtx, buf *hstreams.Buffer, k, b, grid int) {
	v := hstreams.DeviceSlice[float64](buf, kc.DeviceIndex)
	t := tileAt(v, k, k, b*b)
	for c := 0; c < b; c++ {
		s := t[c*b+c]
		for x := 0; x < c; x++ {
			s -= t[c*b+x] * t[c*b+x]
		}
		d := math.Sqrt(s)
		t[c*b+c] = d
		for r := c + 1; r < b; r++ {
			s := t[r*b+c]
			for x := 0; x < c; x++ {
				s -= t[r*b+x] * t[c*b+x]
			}
			t[r*b+c] = s / d
		}
		// Zero the strictly upper part for a clean L.
		for x := c + 1; x < b; x++ {
			t[c*b+x] = 0
		}
	}
}

// trsm solves tile (i,k) ← tile(i,k) · L(k,k)⁻ᵀ.
func (a *App) trsm(kc *hstreams.KernelCtx, buf *hstreams.Buffer, i, k, b, grid int) {
	v := hstreams.DeviceSlice[float64](buf, kc.DeviceIndex)
	l := tileAt(v, k, k, b*b)
	t := tileAt(v, i, k, b*b)
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			s := t[r*b+c]
			for x := 0; x < c; x++ {
				s -= t[r*b+x] * l[c*b+x]
			}
			t[r*b+c] = s / l[c*b+c]
		}
	}
}

// syrk updates the diagonal tile: A(i,i) -= L(i,k)·L(i,k)ᵀ.
func (a *App) syrk(kc *hstreams.KernelCtx, buf *hstreams.Buffer, i, k, b, grid int) {
	v := hstreams.DeviceSlice[float64](buf, kc.DeviceIndex)
	l := tileAt(v, i, k, b*b)
	t := tileAt(v, i, i, b*b)
	for r := 0; r < b; r++ {
		for c := 0; c <= r; c++ {
			s := 0.0
			for x := 0; x < b; x++ {
				s += l[r*b+x] * l[c*b+x]
			}
			t[r*b+c] -= s
			if c != r {
				t[c*b+r] -= s
			}
		}
	}
}

// gemm updates an off-diagonal tile: A(i,j) -= L(i,k)·L(j,k)ᵀ.
func (a *App) gemm(kc *hstreams.KernelCtx, buf *hstreams.Buffer, i, j, k, b, grid int) {
	v := hstreams.DeviceSlice[float64](buf, kc.DeviceIndex)
	li := tileAt(v, i, k, b*b)
	lj := tileAt(v, j, k, b*b)
	t := tileAt(v, i, j, b*b)
	for r := 0; r < b; r++ {
		for c := 0; c < b; c++ {
			s := 0.0
			for x := 0; x < b; x++ {
				s += li[r*b+x] * lj[c*b+x]
			}
			t[r*b+c] -= s
		}
	}
}

// packTiles copies the dense matrix into the blocked lower triangle.
func (a *App) packTiles(grid, b int) {
	n := a.p.N
	for i := 0; i < grid; i++ {
		for j := 0; j <= i; j++ {
			base := tileIndex(i, j) * b * b
			for r := 0; r < b; r++ {
				copy(a.tiles[base+r*b:base+(r+1)*b], a.orig[(i*b+r)*n+j*b:(i*b+r)*n+(j+1)*b])
			}
		}
	}
}

// unpackTiles is a no-op placeholder kept for symmetry: verification
// reads the blocked layout directly.
func (a *App) unpackTiles(grid, b int) {}

// Verify checks L·Lᵀ ≈ A on the host (functional mode, after Run).
func (a *App) Verify() error {
	if !a.p.Functional {
		return fmt.Errorf("cf: Verify requires functional mode")
	}
	if a.tiles == nil {
		return fmt.Errorf("cf: Verify before Run")
	}
	n, grid := a.p.N, a.grid
	b := n / grid
	l := func(r, c int) float64 {
		if c > r {
			return 0
		}
		i, j := r/b, c/b
		return a.tiles[tileIndex(i, j)*b*b+(r%b)*b+(c%b)]
	}
	tol := 1e-8 * float64(n) * float64(n)
	for r := 0; r < n; r++ {
		for c := 0; c <= r; c++ {
			s := 0.0
			for x := 0; x <= c; x++ {
				s += l(r, x) * l(c, x)
			}
			if d := math.Abs(s - a.orig[r*n+c]); d > tol {
				return fmt.Errorf("cf: (L·Lᵀ)[%d,%d] = %g, want %g (Δ=%g)", r, c, s, a.orig[r*n+c], d)
			}
		}
	}
	return nil
}
