package cf

import "micstream/internal/model"

// Model describes the tiled Cholesky factorization to the analytic
// performance model. The tiles argument of the description is the grid
// edge (Run's grid parameter). The right-looking algorithm serializes
// on the diagonal, so each step is modeled as three dependent phases —
// factor the diagonal tile, solve the panel below it, update the
// trailing submatrix — with each tile's single inbound and outbound
// transfer attributed to the first phase that touches it. The DAG's
// real cross-step overlap is not captured, so the model is biased
// pessimistic for CF; the modelval experiment reports the error.
func (a *App) Model() model.Workload {
	n := a.p.N
	return model.Workload{
		Name:  "cf",
		Flops: a.TotalFlops(),
		Phases: func(grid int) []model.Phase {
			if grid < 1 {
				grid = 1
			}
			b := n / grid
			tileBytes := int64(8 * b * b)
			var phases []model.Phase
			for k := 0; k < grid; k++ {
				potrf := model.Phase{
					Tiles: 1, HasKernel: true, Cost: potrfCost(b),
					D2HBytesPerTile: tileBytes,
				}
				if k == 0 {
					potrf.H2DBytesPerTile = tileBytes
				}
				phases = append(phases, potrf)
				if m := grid - k - 1; m > 0 {
					trsm := model.Phase{
						Tiles: m, HasKernel: true, Cost: trsmCost(b),
						D2HBytesPerTile: tileBytes,
					}
					upd := model.Phase{
						Tiles: m * (m + 1) / 2, HasKernel: true, Cost: gemmCost(b),
					}
					if k == 0 {
						trsm.H2DBytesPerTile = tileBytes
						upd.H2DBytesPerTile = tileBytes
					}
					phases = append(phases, trsm, upd)
				}
			}
			return phases
		},
	}
}
