package srad

import (
	"testing"

	"micstream/internal/stats"
)

func TestValidation(t *testing.T) {
	bad := []Params{
		{Dim: 0, Iterations: 1, Lambda: 0.5},
		{Dim: 8, Iterations: 0, Lambda: 0.5},
		{Dim: 8, Iterations: 1, Lambda: 0},
		{Dim: 8, Iterations: 1, Lambda: 1.5},
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	app, _ := New(Params{Dim: 16, Iterations: 1, Lambda: 0.5})
	if _, err := app.Run(2, 0); err == nil {
		t.Fatal("zero tasks accepted")
	}
	if _, err := app.Run(2, 17); err == nil {
		t.Fatal("more tasks than rows accepted")
	}
}

func TestTiledMatchesSingleTask(t *testing.T) {
	app, err := New(Params{Dim: 32, Iterations: 4, Lambda: 0.5, Functional: true, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(4, 8); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSpeckleReduced(t *testing.T) {
	app, err := New(Params{Dim: 48, Iterations: 20, Lambda: 0.5, Functional: true, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	before := SpeckleIndex(app.Image())
	if _, err := app.Run(2, 4); err != nil {
		t.Fatal(err)
	}
	after := SpeckleIndex(app.Image())
	if after >= before {
		t.Fatalf("speckle index did not decrease: %.4f -> %.4f", before, after)
	}
	if after > before*0.8 {
		t.Fatalf("speckle barely reduced: %.4f -> %.4f", before, after)
	}
}

func TestVerifyRequiresFunctional(t *testing.T) {
	app, _ := New(Params{Dim: 8, Iterations: 1, Lambda: 0.5})
	if err := app.Verify(); err == nil {
		t.Fatal("Verify in timing-only mode accepted")
	}
}

// Paper §V-A / Fig. 8f: streamed SRAD is slower on small images...
func TestStreamedSlowerOnSmallImage(t *testing.T) {
	app, err := New(Params{Dim: 1000, Iterations: 100, Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	base, err := app.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := app.Run(4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Wall <= base.Wall {
		t.Fatalf("streamed (%v) should be slower than non-streamed (%v) on a small image", streamed.Wall, base.Wall)
	}
}

// ...and faster on large ones (the paper's unexplained case; here it is
// L2 residency of small tiles across the two stencil phases).
func TestStreamedFasterOnLargeImage(t *testing.T) {
	app, err := New(Params{Dim: 10000, Iterations: 100, Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	base, err := app.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := app.Run(4, 400) // the paper's optimum T=400
	if err != nil {
		t.Fatal(err)
	}
	gain := stats.Speedup(base.Wall.Seconds(), streamed.Wall.Seconds()) - 1
	if gain < 0.10 || gain > 0.90 {
		t.Fatalf("streamed gain on large image %.1f%% (%.1fs vs %.1fs), want a clear win",
			gain*100, streamed.Wall.Seconds(), base.Wall.Seconds())
	}
}

// Fig. 9f: time over partitions falls to an interior minimum and rises
// again (load balance and L2 fit against management overhead).
func TestPartitionSweepUnimodalish(t *testing.T) {
	app, err := New(Params{Dim: 10000, Iterations: 5, Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	parts := []int{1, 2, 4, 8, 14, 28, 56}
	var times []float64
	for _, p := range parts {
		r, err := app.Run(p, 400)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, r.Wall.Seconds())
	}
	_, minAt := stats.Min(times)
	if minAt == 0 {
		t.Fatalf("P=1 should not be optimal: %v", times)
	}
	if minAt == len(times)-1 {
		t.Fatalf("P=56 should not be optimal: %v", times)
	}
	if times[0] <= times[minAt] {
		t.Fatalf("P=1 should lose to the optimum: %v", times)
	}
}

// Fig. 10f: at P=4 the optimum task count is large (the paper's T=400):
// tiles must shrink until they fit the partition L2, then launch
// overhead takes over.
func TestTaskSweepOptimumIsFineGrained(t *testing.T) {
	app, err := New(Params{Dim: 10000, Iterations: 5, Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{1, 4, 25, 100, 400, 2500, 10000}
	var times []float64
	for _, tc := range counts {
		r, err := app.Run(4, tc)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, r.Wall.Seconds())
	}
	_, minAt := stats.Min(times)
	if counts[minAt] < 100 || counts[minAt] > 2500 {
		t.Fatalf("optimum at T=%d, paper finds T=400: %v", counts[minAt], times)
	}
	if times[0] <= times[minAt]*1.5 {
		t.Fatalf("T=1 (%v) should be far above the optimum (%v)", times[0], times[minAt])
	}
	if times[len(times)-1] <= times[minAt] {
		t.Fatalf("T=10000 should lose to the optimum: %v", times)
	}
}
