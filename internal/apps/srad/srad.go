// Package srad is the paper's SRAD application (Rodinia): Speckle
// Reducing Anisotropic Diffusion, a PDE-based denoiser for ultrasonic
// and radar images. Every iteration runs three device phases with
// explicit synchronization between them — a statistics reduction that
// yields the speckle scale q0², a diffusion-coefficient stencil, and an
// image-update stencil — so transfers (tiny per-iteration partials)
// cannot overlap kernels and streams provide only spatial sharing
// (Fig. 4(f), §V-B).
//
// The paper observes that streamed SRAD loses on small images yet —
// unexpectedly, for a non-overlappable code — wins on large ones
// (§V-A, "the reason is still under investigation"). In this model the
// win emerges from L2 residency: the coefficient grid a tile wrote in
// phase 2 is re-read in phase 3, so tiles small enough to sit in a
// partition's aggregate L2 (KernelCost.FitBonus) run the second stencil
// faster, while the non-streamed whole-image kernels never hit. SRAD
// drives Figs. 8f, 9f and 10f.
package srad

import (
	"fmt"
	"math"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/sim"
	"micstream/internal/workload"
)

// BytesPerCell is the effective memory traffic per cell of each stencil
// phase (image + coefficient reads with 4-neighbour misses, one write).
const BytesPerCell = 160

// FlopsPerCell approximates each stencil phase's arithmetic including
// the divisions in the diffusion coefficient.
const FlopsPerCell = 30

// Efficiency is the stencil phases' arithmetic efficiency.
const Efficiency = 0.05

// FitBonus is the speedup of a stencil phase whose tile stayed resident
// in the partition's L2 since the previous phase of the same iteration.
const FitBonus = 0.3

// HostStatsNs is the host-side combination of per-task statistics
// partials into q0² each iteration.
const HostStatsNs = 30_000

// Params configures the application.
type Params struct {
	// Dim is the square image edge length.
	Dim int
	// Iterations is the diffusion step count (the paper runs 100).
	Iterations int
	// Lambda is the update weight (the paper uses 0.5).
	Lambda float64
	// Functional enables real data and kernels.
	Functional bool
	// Seed seeds the speckled-image generator.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Dim <= 0:
		return fmt.Errorf("srad: dim must be positive, got %d", p.Dim)
	case p.Iterations <= 0:
		return fmt.Errorf("srad: iterations must be positive, got %d", p.Iterations)
	case p.Lambda <= 0 || p.Lambda > 1:
		return fmt.Errorf("srad: lambda %g out of (0,1]", p.Lambda)
	}
	return nil
}

// App is an instantiated denoising workload.
type App struct {
	p   Params
	img []float64 // current image, functional only
	c   []float64 // diffusion coefficients, functional only
}

// New builds the workload.
func New(p Params) (*App, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	app := &App{p: p}
	if p.Functional {
		app.img = workload.UltrasoundImage(p.Seed, p.Dim, p.Dim)
		app.c = make([]float64, p.Dim*p.Dim)
	}
	return app, nil
}

// Params returns the workload parameters.
func (a *App) Params() Params { return a.p }

// Image returns the image after the last functional Run.
func (a *App) Image() []float64 { return a.img }

// reduceCost models the per-task statistics reduction over n cells.
func reduceCost(n int) device.KernelCost {
	return device.KernelCost{
		Name:       "srad.reduce",
		Flops:      2 * float64(n),
		Bytes:      8 * float64(n),
		Efficiency: Efficiency,
	}
}

// stencilCost models one diffusion stencil phase over n cells; ws is
// the tile working set carried between the two phases.
func stencilCost(name string, n int, ws int64) device.KernelCost {
	return device.KernelCost{
		Name:            name,
		Flops:           FlopsPerCell * float64(n),
		Bytes:           BytesPerCell * float64(n),
		WorkingSetBytes: ws,
		CacheSensitive:  true,
		FitBonus:        FitBonus,
		Efficiency:      Efficiency,
	}
}

// Run denoises with the image split into tasks horizontal stripes on
// partitions partitions. partitions=1, tasks=1 is the non-streamed
// baseline.
func (a *App) Run(partitions, tasks int) (core.Result, error) {
	if tasks < 1 || tasks > a.p.Dim {
		return core.Result{}, fmt.Errorf("srad: task count %d out of range [1,%d]", tasks, a.p.Dim)
	}
	ctx, err := hstreams.Init(hstreams.Config{
		Partitions:     partitions,
		ExecuteKernels: a.p.Functional,
		Trace:          true,
	})
	if err != nil {
		return core.Result{}, err
	}
	d := a.p.Dim
	var bufImg, bufC, bufDeriv, bufStats *hstreams.Buffer
	var statsHost []float64
	if a.p.Functional {
		bufImg = hstreams.Alloc1D(ctx, "img", a.img)
		bufC = hstreams.Alloc1D(ctx, "c", a.c)
		// Directional derivatives dN,dS,dW,dE stored by phase 2 and
		// consumed by phase 3, exactly as Rodinia's srad kernels do;
		// device-resident, never transferred.
		bufDeriv = hstreams.Alloc1D(ctx, "deriv", make([]float64, 4*d*d))
		statsHost = make([]float64, 2*tasks)
		bufStats = hstreams.Alloc1D(ctx, "stats", statsHost)
	} else {
		bufImg = hstreams.AllocVirtual(ctx, "img", d*d, 8)
		bufC = hstreams.AllocVirtual(ctx, "c", d*d, 8)
		bufDeriv = hstreams.AllocVirtual(ctx, "deriv", 4*d*d, 8)
		bufStats = hstreams.AllocVirtual(ctx, "stats", 2*tasks, 8)
	}

	start := ctx.Now()
	// The image is extracted to the device once and stays resident.
	if _, err := ctx.Stream(0).EnqueueH2D(bufImg, 0, d*d, -1); err != nil {
		return core.Result{}, err
	}
	ctx.Barrier()

	rowOf := func(t int) (lo, hi int) { return t * d / tasks, (t + 1) * d / tasks }
	cells := func(lo, hi int) int { return (hi - lo) * d }
	tileWS := func(lo, hi int) int64 { return int64(cells(lo, hi)) * 16 } // img + c

	q0sqr := 0.0
	for iter := 0; iter < a.p.Iterations; iter++ {
		// Phase 1: statistics reduction; D2H per-task partials; sync.
		red := make([]*core.Task, 0, tasks)
		for t := 0; t < tasks; t++ {
			lo, hi := rowOf(t)
			var body func(*hstreams.KernelCtx)
			if a.p.Functional {
				t, lo, hi := t, lo, hi
				body = func(k *hstreams.KernelCtx) { a.reduce(k, bufImg, bufStats, t, lo, hi) }
			}
			red = append(red, &core.Task{
				ID:         t,
				Cost:       reduceCost(cells(lo, hi)),
				Body:       body,
				D2H:        []core.TransferSpec{core.Xfer(bufStats, 2*t, 2)},
				StreamHint: -1,
			})
		}
		if _, err := core.EnqueuePhase(ctx, red); err != nil {
			return core.Result{}, err
		}
		ctx.Barrier()
		// Host combines partials into the speckle scale q0².
		if a.p.Functional {
			var sum, sum2 float64
			for t := 0; t < tasks; t++ {
				sum += statsHost[2*t]
				sum2 += statsHost[2*t+1]
			}
			n := float64(d * d)
			mean := sum / n
			variance := sum2/n - mean*mean
			q0sqr = variance / (mean * mean)
		}
		ctx.HostWork(sim.Duration(HostStatsNs), "srad.stats")

		// Phase 2: diffusion-coefficient stencil; sync (halo).
		phase2 := make([]*core.Task, 0, tasks)
		for t := 0; t < tasks; t++ {
			lo, hi := rowOf(t)
			var body func(*hstreams.KernelCtx)
			if a.p.Functional {
				lo, hi := lo, hi
				q := q0sqr
				body = func(k *hstreams.KernelCtx) { a.coefficients(k, bufImg, bufC, bufDeriv, q, lo, hi) }
			}
			phase2 = append(phase2, &core.Task{
				ID:         t,
				Cost:       stencilCost("srad.coeff", cells(lo, hi), tileWS(lo, hi)),
				Body:       body,
				StreamHint: -1,
			})
		}
		if _, err := core.EnqueuePhase(ctx, phase2); err != nil {
			return core.Result{}, err
		}
		ctx.Barrier()

		// Phase 3: image update stencil; sync.
		phase3 := make([]*core.Task, 0, tasks)
		for t := 0; t < tasks; t++ {
			lo, hi := rowOf(t)
			var body func(*hstreams.KernelCtx)
			if a.p.Functional {
				lo, hi := lo, hi
				body = func(k *hstreams.KernelCtx) { a.update(k, bufImg, bufC, bufDeriv, lo, hi) }
			}
			phase3 = append(phase3, &core.Task{
				ID:         t,
				Cost:       stencilCost("srad.update", cells(lo, hi), tileWS(lo, hi)),
				Body:       body,
				StreamHint: -1,
			})
		}
		if _, err := core.EnqueuePhase(ctx, phase3); err != nil {
			return core.Result{}, err
		}
		ctx.Barrier()
	}

	// Image compression: the result returns to the host once.
	if _, err := ctx.Stream(0).EnqueueD2H(bufImg, 0, d*d, -1); err != nil {
		return core.Result{}, err
	}
	ctx.Barrier()
	wall := ctx.Now().Sub(start)
	flops := float64(a.p.Iterations) * float64(d) * float64(d) * (2 + 2*FlopsPerCell)
	return core.Summarize(ctx, flops, wall), nil
}

// reduce computes per-task sum and sum of squares.
func (a *App) reduce(k *hstreams.KernelCtx, bufImg, bufStats *hstreams.Buffer, task, lo, hi int) {
	d := a.p.Dim
	img := hstreams.DeviceSlice[float64](bufImg, k.DeviceIndex)
	st := hstreams.DeviceSlice[float64](bufStats, k.DeviceIndex)
	var sum, sum2 float64
	for i := lo * d; i < hi*d; i++ {
		sum += img[i]
		sum2 += img[i] * img[i]
	}
	st[2*task] = sum
	st[2*task+1] = sum2
}

// coefficients computes the diffusion coefficient and stores the four
// directional derivatives for rows [lo, hi) — Rodinia's first SRAD
// kernel. Storing the derivatives is what makes the in-place phase-3
// update safe and deterministic: phase 3 never re-reads image halos.
func (a *App) coefficients(k *hstreams.KernelCtx, bufImg, bufC, bufDeriv *hstreams.Buffer, q0sqr float64, lo, hi int) {
	d := a.p.Dim
	img := hstreams.DeviceSlice[float64](bufImg, k.DeviceIndex)
	cv := hstreams.DeviceSlice[float64](bufC, k.DeviceIndex)
	dv := hstreams.DeviceSlice[float64](bufDeriv, k.DeviceIndex)
	at := func(r, c int) float64 {
		if r < 0 {
			r = 0
		}
		if r >= d {
			r = d - 1
		}
		if c < 0 {
			c = 0
		}
		if c >= d {
			c = d - 1
		}
		return img[r*d+c]
	}
	nn := d * d
	for r := lo; r < hi; r++ {
		for c := 0; c < d; c++ {
			i := r*d + c
			j := img[i]
			dN := at(r-1, c) - j
			dS := at(r+1, c) - j
			dW := at(r, c-1) - j
			dE := at(r, c+1) - j
			dv[i] = dN
			dv[nn+i] = dS
			dv[2*nn+i] = dW
			dv[3*nn+i] = dE
			g2 := (dN*dN + dS*dS + dW*dW + dE*dE) / (j * j)
			l := (dN + dS + dW + dE) / j
			num := 0.5*g2 - (1.0/16.0)*l*l
			den := 1 + 0.25*l
			qsqr := num / (den * den)
			den = (qsqr - q0sqr) / (q0sqr * (1 + q0sqr))
			coeff := 1.0 / (1.0 + den)
			if coeff < 0 {
				coeff = 0
			}
			if coeff > 1 {
				coeff = 1
			}
			cv[i] = coeff
		}
	}
}

// update applies the diffusion step to rows [lo, hi) — Rodinia's second
// SRAD kernel. It reads the coefficient grid (south/east halos, stable
// since the phase-2 barrier) and the stored derivatives of its own
// cells, then updates the image in place; tasks write disjoint rows.
func (a *App) update(k *hstreams.KernelCtx, bufImg, bufC, bufDeriv *hstreams.Buffer, lo, hi int) {
	d := a.p.Dim
	img := hstreams.DeviceSlice[float64](bufImg, k.DeviceIndex)
	cv := hstreams.DeviceSlice[float64](bufC, k.DeviceIndex)
	dv := hstreams.DeviceSlice[float64](bufDeriv, k.DeviceIndex)
	cAt := func(r, c int) float64 {
		if r >= d {
			r = d - 1
		}
		if c >= d {
			c = d - 1
		}
		return cv[r*d+c]
	}
	lambda := a.p.Lambda
	nn := d * d
	for r := lo; r < hi; r++ {
		for c := 0; c < d; c++ {
			i := r*d + c
			cN := cv[i]
			cS := cAt(r+1, c)
			cW := cv[i]
			cE := cAt(r, c+1)
			div := cN*dv[i] + cS*dv[nn+i] + cW*dv[2*nn+i] + cE*dv[3*nn+i]
			img[i] += (lambda / 4) * div
		}
	}
}

// Reference runs the same diffusion on the host for verification.
func (a *App) Reference() ([]float64, error) {
	if !a.p.Functional {
		return nil, fmt.Errorf("srad: Reference requires functional mode")
	}
	ref, err := New(Params{Dim: a.p.Dim, Iterations: a.p.Iterations, Lambda: a.p.Lambda, Functional: true, Seed: a.p.Seed})
	if err != nil {
		return nil, err
	}
	// Single task, single partition: the same kernels, no tiling.
	if _, err := ref.Run(1, 1); err != nil {
		return nil, err
	}
	return ref.img, nil
}

// Verify checks that the tiled result matches the single-task result
// and that speckle actually decreased.
func (a *App) Verify() error {
	if !a.p.Functional {
		return fmt.Errorf("srad: Verify requires functional mode")
	}
	want, err := a.Reference()
	if err != nil {
		return err
	}
	for i := range want {
		if math.Abs(a.img[i]-want[i]) > 1e-9 {
			return fmt.Errorf("srad: img[%d] = %g, want %g", i, a.img[i], want[i])
		}
	}
	return nil
}

// SpeckleIndex reports variance/mean² of an image — the noise measure
// SRAD reduces.
func SpeckleIndex(img []float64) float64 {
	n := float64(len(img))
	var sum, sum2 float64
	for _, v := range img {
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	return (sum2/n - mean*mean) / (mean * mean)
}
