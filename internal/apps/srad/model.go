package srad

import "micstream/internal/model"

// Model describes the despeckling iteration to the analytic
// performance model: the image ships once each way (prolog/epilog),
// and every iteration runs the statistics reduction (with its tiny
// per-task readback and host combine) followed by the two stencil
// phases, all barrier-separated. The tiles argument matches Run's
// stripe count.
func (a *App) Model() model.Workload {
	p := a.p
	d := p.Dim
	return model.Workload{
		Name:           "srad",
		Flops:          float64(p.Iterations) * float64(d) * float64(d) * (2 + 2*FlopsPerCell),
		Rounds:         p.Iterations,
		PrologH2DBytes: int64(8 * d * d),
		EpilogD2HBytes: int64(8 * d * d),
		Phases: func(tiles int) []model.Phase {
			if tiles < 1 {
				tiles = 1
			}
			if tiles > d {
				tiles = d
			}
			cells := (d / tiles) * d
			ws := int64(cells) * 16
			return []model.Phase{
				{
					Tiles:           tiles,
					D2HBytesPerTile: 16,
					HasKernel:       true,
					Cost:            reduceCost(cells),
					SerialNs:        HostStatsNs,
				},
				{Tiles: tiles, HasKernel: true, Cost: stencilCost("srad.coeff", cells, ws)},
				{Tiles: tiles, HasKernel: true, Cost: stencilCost("srad.update", cells, ws)},
			}
		},
	}
}
