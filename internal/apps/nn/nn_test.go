package nn

import (
	"testing"

	"micstream/internal/stats"
)

func TestValidation(t *testing.T) {
	if _, err := New(Params{N: 0, K: 1}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := New(Params{N: 5, K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := New(Params{N: 5, K: 6}); err == nil {
		t.Fatal("K>N accepted")
	}
	app, _ := New(Params{N: 100, K: 3})
	if _, err := app.Run(2, 0); err == nil {
		t.Fatal("zero tasks accepted")
	}
	if _, err := app.Run(2, 101); err == nil {
		t.Fatal("more tasks than records accepted")
	}
}

func TestFunctionalMatchesReferenceTiled(t *testing.T) {
	app, err := New(Params{N: 5000, K: 10, TargetLat: 40, TargetLon: 120, Functional: true, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(4, 8); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(app.Nearest()) != 10 {
		t.Fatalf("got %d neighbours", len(app.Nearest()))
	}
}

func TestFunctionalMatchesReferenceNonStreamed(t *testing.T) {
	app, err := New(Params{N: 2000, K: 5, TargetLat: 10, TargetLon: 20, Functional: true, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsSortedAscending(t *testing.T) {
	app, err := New(Params{N: 3000, K: 7, Functional: true, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(2, 4); err != nil {
		t.Fatal(err)
	}
	ns := app.Nearest()
	for i := 1; i < len(ns); i++ {
		if ns[i].Distance < ns[i-1].Distance {
			t.Fatalf("neighbours not sorted: %+v", ns)
		}
	}
}

func TestVerifyBeforeRunFails(t *testing.T) {
	app, _ := New(Params{N: 10, K: 2, Functional: true})
	if err := app.Verify(); err == nil {
		t.Fatal("Verify before Run accepted")
	}
}

// Paper §V-A: NN gains ≈9.2% from streams — modest, because it is
// bounded by transfers.
func TestStreamedBeatsNonStreamedAtPaperScale(t *testing.T) {
	app, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	base, err := app.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := app.Run(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	gain := stats.Speedup(base.Wall.Seconds(), streamed.Wall.Seconds()) - 1
	if gain < 0.02 || gain > 0.30 {
		t.Fatalf("streamed gain %.1f%% (%.2fms vs %.2fms), want positive (paper: 9.2%%; our link model caps the hideable fraction lower)",
			gain*100, streamed.Wall.Milliseconds(), base.Wall.Milliseconds())
	}
}

// Fig. 9e: execution time drops sharply until P=4 and stays flat after
// (the PCIe link, not the device, is the bottleneck).
func TestPartitionSweepFlattensAtFour(t *testing.T) {
	app, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	run := func(p int) float64 {
		r, err := app.Run(p, 512)
		if err != nil {
			t.Fatal(err)
		}
		return r.Wall.Milliseconds()
	}
	p1, p2, p4 := run(1), run(2), run(4)
	if !(p1 > p2 && p2 > p4) {
		t.Fatalf("time should drop until P=4: %v %v %v", p1, p2, p4)
	}
	var flat []float64
	for _, p := range []int{4, 8, 14, 28, 56} {
		flat = append(flat, run(p))
	}
	if !stats.IsRoughlyConstant(flat, 0.10) {
		t.Fatalf("P≥4 region not flat: %v", flat)
	}
	if p1 < flat[0]*1.3 {
		t.Fatalf("P=1 (%.2fms) should be well above the flat region (%.2fms)", p1, flat[0])
	}
}

// Fig. 10e: T=1 and T=4 perform similarly (transfer-bound); very fine
// task grids lose to per-transfer latency.
func TestTaskSweepShape(t *testing.T) {
	app, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	run := func(tasks int) float64 {
		r, err := app.Run(4, tasks)
		if err != nil {
			t.Fatal(err)
		}
		return r.Wall.Milliseconds()
	}
	t1, t4 := run(1), run(4)
	if ratio := t1 / t4; ratio < 0.80 || ratio > 1.45 {
		t.Fatalf("T=1 (%.2fms) and T=4 (%.2fms) should be similar (paper §V-B-2)", t1, t4)
	}
	coarseBest := t4
	if t1 < coarseBest {
		coarseBest = t1
	}
	t2048 := run(2048)
	if t2048 <= coarseBest*1.5 {
		t.Fatalf("T=2048 (%.2fms) should lose clearly to coarse tiling (%.2fms): per-transfer latency", t2048, coarseBest)
	}
}
