// Package nn is the paper's Nearest Neighbor application (Rodinia):
// find the k records closest to a target coordinate in an unstructured
// set of (latitude, longitude) records. The device computes Euclidean
// distances for a chunk of records per task; the host maintains the
// running k-nearest list as task results arrive.
//
// NN streams chunks through the device with the same flow as MM
// (Fig. 4(e)): fully overlappable, and — because the distance kernel is
// trivial — bounded by data transfers, which is why the paper sees the
// execution time flatten once P ≥ 4 (Fig. 9e) and only a 9.2% average
// gain from streams (§V-A). NN drives Figs. 8e, 9e and 10e.
package nn

import (
	"fmt"
	"math"
	"sort"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/workload"
)

// FlopsPerRecord counts the distance arithmetic: two subtractions, two
// multiplies, one add, one square root.
const FlopsPerRecord = 6

// Efficiency is the kernel's arithmetic efficiency: a short
// memory-streaming loop.
const Efficiency = 0.035

// Params configures the application.
type Params struct {
	// N is the record count.
	N int
	// K is the number of nearest neighbours to find (paper: 10).
	K int
	// TargetLat and TargetLon are the query point (paper: 40, 120).
	TargetLat, TargetLon float32
	// Functional enables real data and kernels.
	Functional bool
	// Seed seeds the record generator.
	Seed uint64
}

// DefaultParams returns the paper's Fig. 9e configuration.
func DefaultParams() Params {
	return Params{N: 5_242_880, K: 10, TargetLat: 40, TargetLon: 120}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("nn: N must be positive, got %d", p.N)
	}
	if p.K <= 0 || p.K > p.N {
		return fmt.Errorf("nn: K=%d out of range (N=%d)", p.K, p.N)
	}
	return nil
}

// Neighbor is one query result.
type Neighbor struct {
	// Index is the record's position in the input.
	Index int
	// Distance is the Euclidean distance to the target.
	Distance float32
}

// App is an instantiated nearest-neighbour search.
type App struct {
	p        Params
	lat, lon []float32 // records, functional only
	dist     []float32 // computed distances, functional only
	nearest  []Neighbor
}

// New builds the workload.
func New(p Params) (*App, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	app := &App{p: p}
	if p.Functional {
		app.lat, app.lon = workload.Records(p.Seed, p.N)
		app.dist = make([]float32, p.N)
	}
	return app, nil
}

// Params returns the workload parameters.
func (a *App) Params() Params { return a.p }

// Nearest returns the k-nearest list of the last functional Run.
func (a *App) Nearest() []Neighbor { return a.nearest }

// taskCost models one distance kernel over n records.
func taskCost(n int) device.KernelCost {
	return device.KernelCost{
		Name:       "nn.dist",
		Flops:      FlopsPerRecord * float64(n),
		Bytes:      12 * float64(n), // read 8 B, write 4 B
		Efficiency: Efficiency,
	}
}

// Run searches with the records split into tasks chunks on partitions
// partitions. partitions=1, tasks=1 is the non-streamed baseline.
func (a *App) Run(partitions, tasks int) (core.Result, error) {
	if tasks < 1 || tasks > a.p.N {
		return core.Result{}, fmt.Errorf("nn: task count %d out of range", tasks)
	}
	ctx, err := hstreams.Init(hstreams.Config{
		Partitions:     partitions,
		ExecuteKernels: a.p.Functional,
		Trace:          true,
	})
	if err != nil {
		return core.Result{}, err
	}
	var bufLat, bufLon, bufDist *hstreams.Buffer
	if a.p.Functional {
		bufLat = hstreams.Alloc1D(ctx, "lat", a.lat)
		bufLon = hstreams.Alloc1D(ctx, "lon", a.lon)
		bufDist = hstreams.Alloc1D(ctx, "dist", a.dist)
	} else {
		bufLat = hstreams.AllocVirtual(ctx, "lat", a.p.N, 4)
		bufLon = hstreams.AllocVirtual(ctx, "lon", a.p.N, 4)
		bufDist = hstreams.AllocVirtual(ctx, "dist", a.p.N, 4)
	}

	list := make([]*core.Task, 0, tasks)
	for t := 0; t < tasks; t++ {
		lo := t * a.p.N / tasks
		hi := (t + 1) * a.p.N / tasks
		var body func(*hstreams.KernelCtx)
		if a.p.Functional {
			lo, hi := lo, hi
			body = func(k *hstreams.KernelCtx) {
				a.distances(k, bufLat, bufLon, bufDist, lo, hi)
			}
		}
		list = append(list, &core.Task{
			ID: t,
			H2D: []core.TransferSpec{
				core.Xfer(bufLat, lo, hi-lo),
				core.Xfer(bufLon, lo, hi-lo),
			},
			Cost:       taskCost(hi - lo),
			Body:       body,
			D2H:        []core.TransferSpec{core.Xfer(bufDist, lo, hi-lo)},
			StreamHint: -1,
		})
	}
	res, err := core.Run(ctx, list, FlopsPerRecord*float64(a.p.N))
	if err != nil {
		return core.Result{}, err
	}
	if a.p.Functional {
		a.nearest = topK(a.dist, a.p.K)
	}
	return res, nil
}

// distances is the functional kernel over records [lo, hi).
func (a *App) distances(k *hstreams.KernelCtx, bufLat, bufLon, bufDist *hstreams.Buffer, lo, hi int) {
	lat := hstreams.DeviceSlice[float32](bufLat, k.DeviceIndex)
	lon := hstreams.DeviceSlice[float32](bufLon, k.DeviceIndex)
	dst := hstreams.DeviceSlice[float32](bufDist, k.DeviceIndex)
	tla, tlo := a.p.TargetLat, a.p.TargetLon
	for i := lo; i < hi; i++ {
		dla := lat[i] - tla
		dlo := lon[i] - tlo
		dst[i] = float32(math.Sqrt(float64(dla*dla + dlo*dlo)))
	}
}

// topK selects the k smallest distances (host-side master merge).
func topK(dist []float32, k int) []Neighbor {
	all := make([]Neighbor, len(dist))
	for i, d := range dist {
		all[i] = Neighbor{Index: i, Distance: d}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Distance != all[j].Distance {
			return all[i].Distance < all[j].Distance
		}
		return all[i].Index < all[j].Index
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// Reference computes the k-nearest list entirely on the host.
func (a *App) Reference() ([]Neighbor, error) {
	if !a.p.Functional {
		return nil, fmt.Errorf("nn: Reference requires functional mode")
	}
	dist := make([]float32, a.p.N)
	for i := range dist {
		dla := a.lat[i] - a.p.TargetLat
		dlo := a.lon[i] - a.p.TargetLon
		dist[i] = float32(math.Sqrt(float64(dla*dla + dlo*dlo)))
	}
	return topK(dist, a.p.K), nil
}

// Verify compares the device-computed k-nearest list with the host
// reference.
func (a *App) Verify() error {
	if a.nearest == nil {
		return fmt.Errorf("nn: Verify before functional Run")
	}
	want, err := a.Reference()
	if err != nil {
		return err
	}
	if len(a.nearest) != len(want) {
		return fmt.Errorf("nn: got %d neighbours, want %d", len(a.nearest), len(want))
	}
	for i := range want {
		if a.nearest[i] != want[i] {
			return fmt.Errorf("nn: neighbour %d = %+v, want %+v", i, a.nearest[i], want[i])
		}
	}
	return nil
}
