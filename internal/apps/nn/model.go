package nn

import "micstream/internal/model"

// Model describes the nearest-neighbor search to the analytic
// performance model: one phase of tiles tasks, each shipping its
// latitude and longitude slices in (two transfers) and its distance
// slice out. The tiles argument matches Run's task count.
func (a *App) Model() model.Workload {
	n := a.p.N
	return model.Workload{
		Name:  "nn",
		Flops: FlopsPerRecord * float64(n),
		Phases: func(tiles int) []model.Phase {
			if tiles < 1 {
				tiles = 1
			}
			if tiles > n {
				tiles = n
			}
			per := n / tiles
			return []model.Phase{{
				Tiles:           tiles,
				H2DBytesPerTile: int64(8 * per),
				H2DXfersPerTile: 2,
				D2HBytesPerTile: int64(4 * per),
				HasKernel:       true,
				Cost:            taskCost(per),
			}}
		},
	}
}
