package kmeans

import "micstream/internal/model"

// Model describes the clustering iteration to the analytic performance
// model: the points ship once (prolog), then every iteration
// broadcasts the centroids, runs the assignment kernels with their
// per-task partial readbacks, and reduces on the host. The tiles
// argument matches Run's task count.
func (a *App) Model() model.Workload {
	p := a.p
	kf := p.K * p.Features
	partialLen := kf + p.K
	return model.Workload{
		Name:           "kmeans",
		Flops:          a.TotalFlops(),
		Rounds:         p.Iterations,
		PrologH2DBytes: int64(8 * p.N * p.Features),
		Phases: func(tiles int) []model.Phase {
			if tiles < 1 {
				tiles = 1
			}
			if tiles > p.N {
				tiles = p.N
			}
			return []model.Phase{
				{Tiles: 1, H2DBytesPerTile: int64(8 * kf)},
				{
					Tiles:           tiles,
					D2HBytesPerTile: int64(8 * partialLen),
					HasKernel:       true,
					Cost:            a.taskCost(p.N / tiles),
					SerialNs:        HostUpdateNs,
				},
			}
		},
	}
}
