package kmeans

import (
	"testing"

	"micstream/internal/stats"
)

func TestValidation(t *testing.T) {
	bad := []Params{
		{N: 0, Features: 2, K: 1, Iterations: 1},
		{N: 10, Features: 0, K: 1, Iterations: 1},
		{N: 10, Features: 2, K: 0, Iterations: 1},
		{N: 10, Features: 2, K: 11, Iterations: 1},
		{N: 10, Features: 2, K: 2, Iterations: 0},
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	app, err := New(Params{N: 100, Features: 2, K: 2, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(2, 0); err == nil {
		t.Fatal("zero tasks accepted")
	}
	if _, err := app.Run(2, 101); err == nil {
		t.Fatal("more tasks than points accepted")
	}
}

func TestFunctionalMatchesReferenceTiled(t *testing.T) {
	app, err := New(Params{N: 600, Features: 3, K: 4, Iterations: 6, Functional: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(4, 8); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionalMatchesReferenceNonStreamed(t *testing.T) {
	app, err := New(Params{N: 300, Features: 2, K: 3, Iterations: 4, Functional: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestObjectiveImproves(t *testing.T) {
	// Lloyd's algorithm never increases the within-cluster sum of
	// squares: the final centroids must score no worse than the
	// first-K initialization. (Recovering the exact generating
	// centers is not guaranteed — first-K init can start two
	// centroids inside one cluster and converge to a local optimum.)
	app, err := New(Params{N: 800, Features: 2, K: 3, Iterations: 10, Functional: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(2, 4); err != nil {
		t.Fatal(err)
	}
	wcss := func(centroids []float64) float64 {
		total := 0.0
		for i := 0; i < 800; i++ {
			pt := app.points[i*2 : i*2+2]
			best := 1e18
			for c := 0; c < 3; c++ {
				dx := pt[0] - centroids[c*2]
				dy := pt[1] - centroids[c*2+1]
				if d := dx*dx + dy*dy; d < best {
					best = d
				}
			}
			total += best
		}
		return total
	}
	initial := wcss(app.points[:6])
	final := wcss(app.Centroids())
	if final > initial {
		t.Fatalf("WCSS increased: %.3f -> %.3f", initial, final)
	}
	if final >= initial*0.9 {
		t.Fatalf("WCSS barely improved (%.3f -> %.3f); clustering did nothing", initial, final)
	}
}

func TestVerifyBeforeRunFails(t *testing.T) {
	app, _ := New(Params{N: 10, Features: 2, K: 2, Iterations: 1, Functional: true})
	if err := app.Verify(); err == nil {
		t.Fatal("Verify before Run accepted")
	}
	timing, _ := New(Params{N: 10, Features: 2, K: 2, Iterations: 1})
	if _, err := timing.Reference(); err == nil {
		t.Fatal("Reference in timing-only mode accepted")
	}
}

// Paper §V-A: Kmeans gains ≈24.1% from streams despite being
// non-overlappable, via reduced allocation overhead.
func TestStreamedBeatsNonStreamedAtPaperScale(t *testing.T) {
	p := DefaultParams()
	app, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := app.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := app.Run(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	gain := stats.Speedup(base.Wall.Seconds(), streamed.Wall.Seconds()) - 1
	if gain < 0.12 || gain > 0.40 {
		t.Fatalf("streamed gain %.1f%% (%.3fs vs %.3fs), want ≈24%%", gain*100, streamed.Wall.Seconds(), base.Wall.Seconds())
	}
}

// Fig. 9c: execution time falls monotonically as partitions increase
// (allocation cost per launch shrinks with partition width).
func TestPartitionSweepMonotoneDecreasing(t *testing.T) {
	p := DefaultParams()
	app, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var times []float64
	for _, parts := range []int{1, 2, 4, 8, 14, 28, 56} {
		r, err := app.Run(parts, 56) // T=56 tasks ⇒ 20000 points each, the Fig. 9c setup
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, r.Wall.Seconds())
	}
	if !stats.IsMonotone(times, -1, 0.02) {
		t.Fatalf("Kmeans time not decreasing over partitions: %v", times)
	}
	if times[0] < times[len(times)-1]*2 {
		t.Fatalf("P=1 (%.2fs) should be at least 2× slower than P=56 (%.2fs)", times[0], times[len(times)-1])
	}
}

// Fig. 10c: at P=4 the best task count is small (the paper's T=4);
// very fine task grids lose to per-launch overhead.
func TestTaskSweepShape(t *testing.T) {
	p := DefaultParams()
	p.Iterations = 20 // keep the sweep cheap; shape is per-iteration
	app, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{1, 2, 4, 8, 16, 56, 112, 224}
	var times []float64
	for _, tc := range counts {
		r, err := app.Run(4, tc)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, r.Wall.Seconds())
	}
	_, minAt := stats.Min(times)
	if counts[minAt] > 16 {
		t.Fatalf("optimum at T=%d, expected a small task count: %v", counts[minAt], times)
	}
	if times[len(times)-1] <= times[minAt] {
		t.Fatalf("T=224 should lose to the optimum: %v", times)
	}
	// T=1 wastes 3 of 4 partitions: clearly worse than T=4.
	if times[0] <= times[2] {
		t.Fatalf("T=1 (%v) should be slower than T=4 (%v)", times[0], times[2])
	}
}

func TestTotalFlops(t *testing.T) {
	app, _ := New(Params{N: 1000, Features: 10, K: 4, Iterations: 5})
	if got, want := app.TotalFlops(), 3.0*1000*4*10*5; got != want {
		t.Fatalf("TotalFlops = %g, want %g", got, want)
	}
}
