// Package kmeans is the paper's Kmeans clustering application (ported
// from Northwestern MineBench via Rodinia): iterative Lloyd's algorithm
// where each iteration ships the current centroids to the device,
// assigns every point to its nearest centroid in parallel tasks,
// returns per-task partial sums, and recomputes centroids on the host.
//
// Kmeans is non-overlappable — the host must reduce the partials of
// iteration k before the centroids of iteration k+1 can be shipped —
// yet the paper measures a ≈24% gain from multiple streams (§V-A,
// Fig. 8c). The cause (§V-B-1) is the per-launch temporary-memory
// allocation whose cost grows with the partition's thread count:
// narrower partitions allocate less per launch, and partitions allocate
// in parallel. The model reproduces this through
// KernelCost.AllocBytesPerThread. Kmeans drives Figs. 8c, 9c and 10c.
package kmeans

import (
	"fmt"
	"math"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/sim"
	"micstream/internal/workload"
)

// Efficiency is the assignment kernel's arithmetic efficiency: scalar,
// branch-heavy distance comparisons, latency-bound on the 31SP.
const Efficiency = 0.0465

// AllocBytesPerThread is the per-thread scratch the MineBench port
// allocates (and first-touches) at every kernel launch: private
// centroid partial arrays, membership staging, and alignment padding.
// Calibrated so the non-streamed run loses ≈24% to allocation, as the
// paper reports.
const AllocBytesPerThread = 128 << 10

// HostUpdateNs is the host-side centroid recomputation time per
// iteration (tiny: K·F accumulations over T partials).
const HostUpdateNs = 50_000

// Params configures the application.
type Params struct {
	// N is the number of points.
	N int
	// Features is the dimensionality (MineBench uses 34).
	Features int
	// K is the number of centroids (the paper uses 8).
	K int
	// Iterations is the fixed iteration count (the paper runs 100).
	Iterations int
	// Functional enables real data and kernels.
	Functional bool
	// Seed seeds the point generator.
	Seed uint64
}

// DefaultParams returns the paper's Fig. 9c configuration.
func DefaultParams() Params {
	return Params{N: 1_120_000, Features: 34, K: 8, Iterations: 100}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.N <= 0:
		return fmt.Errorf("kmeans: N must be positive, got %d", p.N)
	case p.Features <= 0:
		return fmt.Errorf("kmeans: features must be positive, got %d", p.Features)
	case p.K <= 0 || p.K > p.N:
		return fmt.Errorf("kmeans: K=%d out of range (N=%d)", p.K, p.N)
	case p.Iterations <= 0:
		return fmt.Errorf("kmeans: iterations must be positive, got %d", p.Iterations)
	}
	return nil
}

// App is an instantiated clustering workload.
type App struct {
	p         Params
	points    []float64 // N×F row-major, functional only
	centroids []float64 // K×F, final result, functional only
}

// New builds the workload.
func New(p Params) (*App, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	app := &App{p: p}
	if p.Functional {
		app.points, _ = workload.ClusteredPoints(p.Seed, p.N, p.Features, p.K)
	}
	return app, nil
}

// Params returns the workload parameters.
func (a *App) Params() Params { return a.p }

// Centroids returns the final centroids of the last functional Run.
func (a *App) Centroids() []float64 { return a.centroids }

// TotalFlops reports the assignment work: 3·N·K·F per iteration.
func (a *App) TotalFlops() float64 {
	return 3 * float64(a.p.N) * float64(a.p.K) * float64(a.p.Features) * float64(a.p.Iterations)
}

// taskCost models one assignment kernel over n points.
func (a *App) taskCost(n int) device.KernelCost {
	return device.KernelCost{
		Name:                "kmeans.assign",
		Flops:               3 * float64(n) * float64(a.p.K) * float64(a.p.Features),
		Bytes:               float64(n) * float64(a.p.Features) * 8,
		AllocBytesPerThread: AllocBytesPerThread,
		Efficiency:          Efficiency,
	}
}

// Run clusters with the points split into tasks tiles on partitions
// partitions. partitions=1, tasks=1 is the non-streamed baseline.
func (a *App) Run(partitions, tasks int) (core.Result, error) {
	if tasks < 1 || tasks > a.p.N {
		return core.Result{}, fmt.Errorf("kmeans: task count %d out of range", tasks)
	}
	ctx, err := hstreams.Init(hstreams.Config{
		Partitions:     partitions,
		ExecuteKernels: a.p.Functional,
		Trace:          true,
	})
	if err != nil {
		return core.Result{}, err
	}
	p := a.p
	kf := p.K * p.Features
	// Partials per task: K×F sums followed by K counts.
	partialLen := kf + p.K

	var bufPoints, bufCentroids, bufPartials *hstreams.Buffer
	var centroids, partials []float64
	if p.Functional {
		centroids = make([]float64, kf)
		copy(centroids, a.points[:kf]) // standard first-K init
		partials = make([]float64, tasks*partialLen)
		bufPoints = hstreams.Alloc1D(ctx, "points", a.points)
		bufCentroids = hstreams.Alloc1D(ctx, "centroids", centroids)
		bufPartials = hstreams.Alloc1D(ctx, "partials", partials)
	} else {
		bufPoints = hstreams.AllocVirtual(ctx, "points", p.N*p.Features, 8)
		bufCentroids = hstreams.AllocVirtual(ctx, "centroids", kf, 8)
		bufPartials = hstreams.AllocVirtual(ctx, "partials", tasks*partialLen, 8)
	}

	start := ctx.Now()
	// Ship the points once; they stay resident.
	if _, err := ctx.Stream(0).EnqueueH2D(bufPoints, 0, p.N*p.Features, -1); err != nil {
		return core.Result{}, err
	}
	ctx.Barrier()

	for iter := 0; iter < p.Iterations; iter++ {
		phase := make([]*core.Task, 0, tasks+1)
		// Broadcast the centroids (one transfer; kernels gate on it).
		const centroidTask = 0
		phase = append(phase, &core.Task{
			ID:           centroidTask,
			H2D:          []core.TransferSpec{core.Xfer(bufCentroids, 0, kf)},
			StreamHint:   -1,
			TransferOnly: true,
		})
		for t := 0; t < tasks; t++ {
			lo := t * p.N / tasks
			hi := (t + 1) * p.N / tasks
			var body func(*hstreams.KernelCtx)
			if p.Functional {
				t, lo, hi := t, lo, hi
				body = func(k *hstreams.KernelCtx) {
					a.assign(k, bufPoints, bufCentroids, bufPartials, t, lo, hi, partialLen)
				}
			}
			phase = append(phase, &core.Task{
				ID:         t + 1,
				Cost:       a.taskCost(hi - lo),
				Body:       body,
				D2H:        []core.TransferSpec{core.Xfer(bufPartials, t*partialLen, partialLen)},
				DependsOn:  []int{centroidTask},
				StreamHint: -1,
			})
		}
		if _, err := core.EnqueuePhase(ctx, phase); err != nil {
			return core.Result{}, err
		}
		ctx.Barrier()
		// Host: reduce partials into new centroids.
		if p.Functional {
			reduce(centroids, partials, tasks, p.K, p.Features)
		}
		ctx.HostWork(sim.Duration(HostUpdateNs), "kmeans.update")
	}
	wall := ctx.Now().Sub(start)
	if p.Functional {
		a.centroids = centroids
	}
	return core.Summarize(ctx, a.TotalFlops(), wall), nil
}

// assign is the functional kernel: for points [lo, hi), find the
// nearest centroid and accumulate per-task partial sums and counts.
func (a *App) assign(k *hstreams.KernelCtx, bufPoints, bufCentroids, bufPartials *hstreams.Buffer, task, lo, hi, partialLen int) {
	p := a.p
	pts := hstreams.DeviceSlice[float64](bufPoints, k.DeviceIndex)
	cs := hstreams.DeviceSlice[float64](bufCentroids, k.DeviceIndex)
	out := hstreams.DeviceSlice[float64](bufPartials, k.DeviceIndex)
	base := task * partialLen
	for i := base; i < base+partialLen; i++ {
		out[i] = 0
	}
	f := p.Features
	for i := lo; i < hi; i++ {
		pt := pts[i*f : (i+1)*f]
		best, bestD := 0, math.Inf(1)
		for c := 0; c < p.K; c++ {
			cen := cs[c*f : (c+1)*f]
			d := 0.0
			for x := 0; x < f; x++ {
				diff := pt[x] - cen[x]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		for x := 0; x < f; x++ {
			out[base+best*f+x] += pt[x]
		}
		out[base+p.K*f+best]++
	}
}

// reduce folds the per-task partials into new centroids; empty clusters
// keep their previous centroid (MineBench behaviour).
func reduce(centroids, partials []float64, tasks, k, f int) {
	kf := k * f
	partialLen := kf + k
	for c := 0; c < k; c++ {
		count := 0.0
		sum := make([]float64, f)
		for t := 0; t < tasks; t++ {
			base := t * partialLen
			count += partials[base+kf+c]
			for x := 0; x < f; x++ {
				sum[x] += partials[base+c*f+x]
			}
		}
		if count == 0 {
			continue
		}
		for x := 0; x < f; x++ {
			centroids[c*f+x] = sum[x] / count
		}
	}
}

// Reference runs the same fixed-iteration Lloyd's algorithm entirely on
// the host, for verification.
func (a *App) Reference() ([]float64, error) {
	if !a.p.Functional {
		return nil, fmt.Errorf("kmeans: Reference requires functional mode")
	}
	p := a.p
	f := p.Features
	centroids := make([]float64, p.K*f)
	copy(centroids, a.points[:p.K*f])
	sum := make([]float64, p.K*f)
	count := make([]float64, p.K)
	for iter := 0; iter < p.Iterations; iter++ {
		for i := range sum {
			sum[i] = 0
		}
		for i := range count {
			count[i] = 0
		}
		for i := 0; i < p.N; i++ {
			pt := a.points[i*f : (i+1)*f]
			best, bestD := 0, math.Inf(1)
			for c := 0; c < p.K; c++ {
				cen := centroids[c*f : (c+1)*f]
				d := 0.0
				for x := 0; x < f; x++ {
					diff := pt[x] - cen[x]
					d += diff * diff
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			count[best]++
			for x := 0; x < f; x++ {
				sum[best*f+x] += pt[x]
			}
		}
		for c := 0; c < p.K; c++ {
			if count[c] == 0 {
				continue
			}
			for x := 0; x < f; x++ {
				centroids[c*f+x] = sum[c*f+x] / count[c]
			}
		}
	}
	return centroids, nil
}

// Verify compares the device-computed centroids with the host
// reference.
func (a *App) Verify() error {
	if a.centroids == nil {
		return fmt.Errorf("kmeans: Verify before functional Run")
	}
	want, err := a.Reference()
	if err != nil {
		return err
	}
	for i := range want {
		if math.Abs(a.centroids[i]-want[i]) > 1e-9 {
			return fmt.Errorf("kmeans: centroid[%d] = %g, want %g", i, a.centroids[i], want[i])
		}
	}
	return nil
}
