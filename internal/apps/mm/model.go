package mm

import "micstream/internal/model"

// Model describes the tiled matrix multiplication to the analytic
// performance model. The tiles argument of the description is the grid
// edge (Run's second parameter); the phase holds grid² compute tiles.
// Panel shipments pipeline with the compute tasks that gate on them,
// so their bytes are attributed evenly to the compute tiles: the full
// 8·N² of input spread over grid² tasks.
func (a *App) Model() model.Workload {
	n := a.p.N
	return model.Workload{
		Name:  "mm",
		Flops: a.TotalFlops(),
		Phases: func(grid int) []model.Phase {
			if grid < 1 {
				grid = 1
			}
			bs := n / grid
			return []model.Phase{{
				Tiles:           grid * grid,
				H2DBytesPerTile: int64(8 * bs * n / grid),
				D2HBytesPerTile: int64(4 * bs * bs),
				HasKernel:       true,
				Cost:            a.TileCost(grid),
			}}
		},
	}
}
