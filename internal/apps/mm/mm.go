// Package mm is the paper's Matrix Multiplication application (from the
// hStreams SDK): C = A·B with C divided into a grid of square tiles,
// one task per tile. Each task ships the A row-panel and B column-panel
// it needs, multiplies on the device, and returns its C tile — the
// fully overlappable flow of Fig. 4(a). MM drives Figs. 8a, 9a and 10a.
//
// Data is float32 (the SDK's sgemm-style demo); B is stored transposed
// so both panels are contiguous transfer ranges, and C uses a
// tile-blocked layout so each task's output is one contiguous range.
package mm

import (
	"fmt"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/workload"
)

// Efficiency is the kernel's arithmetic efficiency relative to peak —
// a well-blocked single-precision GEMM on the 31SP, calibrated so the
// best streamed configuration of Fig. 9a lands near the paper's
// ≈550-600 GFLOPS at D = 6000.
const Efficiency = 0.62

// Params configures the application.
type Params struct {
	// N is the matrix dimension (N×N).
	N int
	// Functional enables real data and kernels.
	Functional bool
	// Seed seeds the matrix generator in functional mode.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("mm: N must be positive, got %d", p.N)
	}
	return nil
}

// App is an instantiated matrix-multiplication workload.
type App struct {
	p  Params
	a  []float32 // row-major A, functional only
	bt []float32 // transposed B (row-major Bᵀ), functional only
	c  []float32 // tile-blocked C, functional only
}

// New builds the workload.
func New(p Params) (*App, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	app := &App{p: p}
	if p.Functional {
		rng := workload.NewRNG(p.Seed)
		n := p.N
		app.a = make([]float32, n*n)
		app.bt = make([]float32, n*n)
		for i := range app.a {
			app.a[i] = float32(rng.Range(-1, 1))
			app.bt[i] = float32(rng.Range(-1, 1))
		}
		app.c = make([]float32, n*n)
	}
	return app, nil
}

// Params returns the workload parameters.
func (a *App) Params() Params { return a.p }

// TotalFlops reports the useful work: 2·N³.
func (a *App) TotalFlops() float64 {
	n := float64(a.p.N)
	return 2 * n * n * n
}

// TileCost returns the timing-model cost of one tile task for a grid
// of g×g tiles: a (N/g)×(N/g) output tile accumulated over N terms.
// Small tiles lose blocking efficiency (fringe handling, less register
// and L2 reuse), modeled by the bs/(bs+10) factor — the gentle decline
// of Fig. 10a's right half.
func (a *App) TileCost(g int) device.KernelCost {
	n, bs := float64(a.p.N), float64(a.p.N/g)
	return device.KernelCost{
		Name:           "mm.tile",
		Flops:          2 * bs * bs * n,
		Bytes:          (2*bs*n + bs*bs) * 4,
		Efficiency:     Efficiency * bs / (bs + 10),
		ScalingPenalty: 0.10,
	}
}

// Run executes the workload with C tiled into grid×grid tasks on
// partitions streams; grid = 1, partitions = 1 is the non-streamed
// baseline. grid must divide N.
func (a *App) Run(partitions, grid int) (core.Result, error) {
	if grid < 1 || a.p.N%grid != 0 {
		return core.Result{}, fmt.Errorf("mm: tile grid %d must divide N=%d", grid, a.p.N)
	}
	ctx, err := hstreams.Init(hstreams.Config{
		Partitions:     partitions,
		ExecuteKernels: a.p.Functional,
		Trace:          true,
	})
	if err != nil {
		return core.Result{}, err
	}
	n, bs := a.p.N, a.p.N/grid
	var bufA, bufBt, bufC *hstreams.Buffer
	if a.p.Functional {
		bufA = hstreams.Alloc1D(ctx, "A", a.a)
		bufBt = hstreams.Alloc1D(ctx, "Bt", a.bt)
		bufC = hstreams.Alloc1D(ctx, "C", a.c)
	} else {
		bufA = hstreams.AllocVirtual(ctx, "A", n*n, 4)
		bufBt = hstreams.AllocVirtual(ctx, "Bt", n*n, 4)
		bufC = hstreams.AllocVirtual(ctx, "C", n*n, 4)
	}

	cost := a.TileCost(grid)
	// Each A row-panel and B column-panel is shipped exactly once as
	// a transfer-only task; the grid² compute tasks gate on the two
	// panels they consume. Total H2D traffic therefore equals the
	// matrix sizes — the same bytes the non-streamed version moves —
	// and overlap, not transfer avoidance, is what streams buy.
	tasks := make([]*core.Task, 0, grid*(grid+2))
	panelA := func(i int) int { return i }
	panelB := func(j int) int { return grid + j }
	// Interleave the A and B panel shipments so the first compute
	// task (which needs A₀ and B₀) unlocks after two transfers, not
	// after the entire A matrix has crossed the link.
	for i := 0; i < grid; i++ {
		tasks = append(tasks,
			&core.Task{
				ID:           panelA(i),
				H2D:          []core.TransferSpec{core.Xfer(bufA, i*bs*n, bs*n)},
				StreamHint:   -1,
				TransferOnly: true,
			},
			&core.Task{
				ID:           panelB(i),
				H2D:          []core.TransferSpec{core.Xfer(bufBt, i*bs*n, bs*n)},
				StreamHint:   -1,
				TransferOnly: true,
			})
	}
	for ti := 0; ti < grid; ti++ {
		for tj := 0; tj < grid; tj++ {
			id := 2*grid + ti*grid + tj
			tile := ti*grid + tj
			var body func(*hstreams.KernelCtx)
			if a.p.Functional {
				ti, tj := ti, tj
				body = func(k *hstreams.KernelCtx) {
					a.multiplyTile(k, bufA, bufBt, bufC, ti, tj, bs)
				}
			}
			tasks = append(tasks, &core.Task{
				ID:         id,
				DependsOn:  []int{panelA(ti), panelB(tj)},
				Cost:       cost,
				Body:       body,
				D2H:        []core.TransferSpec{core.Xfer(bufC, tile*bs*bs, bs*bs)},
				StreamHint: -1,
			})
		}
	}
	return core.Run(ctx, tasks, a.TotalFlops())
}

// multiplyTile computes C tile (ti, tj) = A panel × B panel on the
// device shadows. C is tile-blocked: tile (ti,tj) occupies the
// contiguous range [(ti·g+tj)·bs², ...).
func (a *App) multiplyTile(k *hstreams.KernelCtx, bufA, bufBt, bufC *hstreams.Buffer, ti, tj, bs int) {
	n := a.p.N
	grid := n / bs
	av := hstreams.DeviceSlice[float32](bufA, k.DeviceIndex)
	btv := hstreams.DeviceSlice[float32](bufBt, k.DeviceIndex)
	cv := hstreams.DeviceSlice[float32](bufC, k.DeviceIndex)
	cbase := (ti*grid + tj) * bs * bs
	for r := 0; r < bs; r++ {
		arow := av[(ti*bs+r)*n : (ti*bs+r+1)*n]
		for c := 0; c < bs; c++ {
			btrow := btv[(tj*bs+c)*n : (tj*bs+c+1)*n]
			var sum float32
			for x := range arow {
				sum += arow[x] * btrow[x]
			}
			cv[cbase+r*bs+c] = sum
		}
	}
}

// VerifyGrid recomputes C on the host for the tile grid used in the
// last Run and compares it with the device result (functional mode
// only; C's blocked layout depends on the grid). Tolerance covers
// float32 accumulation-order differences.
func (a *App) VerifyGrid(grid int) error {
	if !a.p.Functional {
		return fmt.Errorf("mm: VerifyGrid requires functional mode")
	}
	if grid < 1 || a.p.N%grid != 0 {
		return fmt.Errorf("mm: bad grid %d", grid)
	}
	n, bs := a.p.N, a.p.N/grid
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for x := 0; x < n; x++ {
				want += float64(a.a[i*n+x]) * float64(a.bt[j*n+x])
			}
			ti, tj := i/bs, j/bs
			got := float64(a.c[(ti*grid+tj)*bs*bs+(i%bs)*bs+(j%bs)])
			if diff := got - want; diff > tol(n) || diff < -tol(n) {
				return fmt.Errorf("mm: C[%d,%d] = %g, want %g", i, j, got, want)
			}
		}
	}
	return nil
}

func tol(n int) float64 { return 1e-4 * float64(n) }
