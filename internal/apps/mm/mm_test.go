package mm

import (
	"testing"

	"micstream/internal/stats"
)

func TestValidation(t *testing.T) {
	if _, err := New(Params{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	app, err := New(Params{N: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(4, 3); err == nil {
		t.Fatal("non-dividing grid accepted")
	}
	if _, err := app.Run(4, 0); err == nil {
		t.Fatal("zero grid accepted")
	}
}

func TestFunctionalCorrectnessTiled(t *testing.T) {
	app, err := New(Params{N: 48, Functional: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(4, 4); err != nil {
		t.Fatal(err)
	}
	if err := app.VerifyGrid(4); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionalCorrectnessNonStreamed(t *testing.T) {
	app, err := New(Params{N: 32, Functional: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := app.VerifyGrid(1); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRequiresFunctional(t *testing.T) {
	app, _ := New(Params{N: 16})
	if err := app.VerifyGrid(1); err == nil {
		t.Fatal("VerifyGrid in timing-only mode accepted")
	}
	fn, _ := New(Params{N: 16, Functional: true})
	if err := fn.VerifyGrid(3); err == nil {
		t.Fatal("bad grid accepted")
	}
}

func TestTotalFlops(t *testing.T) {
	app, _ := New(Params{N: 100})
	if got := app.TotalFlops(); got != 2e6 {
		t.Fatalf("TotalFlops = %g, want 2e6", got)
	}
}

// Paper §V-A: streamed MM beats non-streamed by ≈8.3% on average; at
// paper scale the streamed configuration must win clearly.
func TestStreamedBeatsNonStreamedAtPaperScale(t *testing.T) {
	app, err := New(Params{N: 6000})
	if err != nil {
		t.Fatal(err)
	}
	base, err := app.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := app.Run(4, 2) // the tuned optimum: T = 4 tiles (Fig. 10a)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.GFlops <= base.GFlops {
		t.Fatalf("streamed %.1f GFLOPS not above non-streamed %.1f", streamed.GFlops, base.GFlops)
	}
	gain := streamed.GFlops/base.GFlops - 1
	if gain < 0.03 || gain > 0.60 {
		t.Fatalf("streamed gain %.1f%%, want a modest paper-like gain (3-60%%)", gain*100)
	}
	// Calibration: best streamed throughput in the paper's ballpark.
	if streamed.GFlops < 400 || streamed.GFlops > 800 {
		t.Fatalf("streamed = %.1f GFLOPS, want ≈550-600 (paper Fig. 9a)", streamed.GFlops)
	}
}

// Fig. 9a: GFLOPS over partitions spikes on divisors of 56 — a divisor
// P must beat its non-divisor neighbours (core splitting).
func TestDivisorPartitionsWin(t *testing.T) {
	app, err := New(Params{N: 6000})
	if err != nil {
		t.Fatal(err)
	}
	run := func(p int) float64 {
		r, err := app.Run(p, 12)
		if err != nil {
			t.Fatal(err)
		}
		return r.GFlops
	}
	for _, tc := range []struct{ div, nondiv int }{{4, 5}, {8, 9}, {14, 15}, {28, 27}} {
		d, nd := run(tc.div), run(tc.nondiv)
		if d <= nd {
			t.Errorf("P=%d (divisor, %.1f GF) did not beat P=%d (%.1f GF)", tc.div, d, tc.nondiv, nd)
		}
	}
}

// Fig. 10a: over tile counts at P=4, throughput peaks at a small grid
// and declines for very fine grids.
func TestTileSweepUnimodal(t *testing.T) {
	app, err := New(Params{N: 6000})
	if err != nil {
		t.Fatal(err)
	}
	grids := []int{1, 2, 3, 4, 6, 10, 15, 20}
	var gf []float64
	for _, g := range grids {
		r, err := app.Run(4, g)
		if err != nil {
			t.Fatal(err)
		}
		gf = append(gf, r.GFlops)
	}
	_, peak := stats.Max(gf)
	if peak == 0 {
		t.Fatalf("peak at T=1 (no tiling wins?): %v", gf)
	}
	if grids[peak] > 6 {
		t.Fatalf("peak at grid %d (T=%d), paper peaks at T=4 (grid 2): %v", grids[peak], grids[peak]*grids[peak], gf)
	}
	if gf[len(gf)-1] >= gf[peak] {
		t.Fatalf("finest grid should lose to the peak: %v", gf)
	}
}

func TestOverlapAchieved(t *testing.T) {
	app, err := New(Params{N: 3000})
	if err != nil {
		t.Fatal(err)
	}
	r, err := app.Run(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r.OverlapFraction < 0.3 {
		t.Fatalf("MM is overlappable; overlap fraction %.2f too low", r.OverlapFraction)
	}
}
