package apps_test

// Cross-configuration equivalence: an application's functional result
// must be identical regardless of how many partitions and tasks the
// runtime uses — scheduling must never change program meaning. These
// tests sweep randomized (P, T) configurations for each application
// and compare against the single-stream result.

import (
	"testing"

	"micstream/internal/apps/hbench"
	"micstream/internal/apps/hotspot"
	"micstream/internal/apps/kmeans"
	"micstream/internal/apps/nn"
	"micstream/internal/apps/srad"
	"micstream/internal/workload"
)

func TestPropertyHBenchConfigInvariance(t *testing.T) {
	rng := workload.NewRNG(101)
	for trial := 0; trial < 10; trial++ {
		app, err := hbench.New(hbench.Params{
			Elements: 512 + rng.Intn(4096), Iterations: 1 + rng.Intn(4),
			Alpha: float32(rng.Range(-2, 2)), Functional: true, Seed: uint64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		p := 1 + rng.Intn(16)
		tiles := 1 + rng.Intn(32)
		if _, err := app.RunStreamed(p, tiles); err != nil {
			t.Fatal(err)
		}
		if err := app.Verify(); err != nil {
			t.Fatalf("trial %d (P=%d T=%d): %v", trial, p, tiles, err)
		}
	}
}

func TestPropertyNNConfigInvariance(t *testing.T) {
	rng := workload.NewRNG(202)
	for trial := 0; trial < 8; trial++ {
		app, err := nn.New(nn.Params{
			N: 500 + rng.Intn(3000), K: 1 + rng.Intn(20),
			TargetLat: float32(rng.Range(0, 90)), TargetLon: float32(rng.Range(0, 180)),
			Functional: true, Seed: uint64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := app.Run(1+rng.Intn(8), 1+rng.Intn(16)); err != nil {
			t.Fatal(err)
		}
		if err := app.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPropertyKmeansConfigInvariance(t *testing.T) {
	rng := workload.NewRNG(303)
	for trial := 0; trial < 6; trial++ {
		app, err := kmeans.New(kmeans.Params{
			N: 200 + rng.Intn(500), Features: 2 + rng.Intn(4),
			K: 2 + rng.Intn(3), Iterations: 1 + rng.Intn(5),
			Functional: true, Seed: uint64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := app.Run(1+rng.Intn(8), 1+rng.Intn(8)); err != nil {
			t.Fatal(err)
		}
		if err := app.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPropertyHotspotConfigInvariance(t *testing.T) {
	rng := workload.NewRNG(404)
	for trial := 0; trial < 6; trial++ {
		dim := 12 + rng.Intn(20)
		app, err := hotspot.New(hotspot.Params{
			Dim: dim, Iterations: 1 + rng.Intn(4),
			Functional: true, Seed: uint64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		tasks := 1 + rng.Intn(dim-1)
		if rng.Intn(2) == 0 {
			if _, err := app.Run(1+rng.Intn(6), tasks); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := app.RunPipelined(1+rng.Intn(6), tasks); err != nil {
				t.Fatal(err)
			}
		}
		if err := app.Verify(); err != nil {
			t.Fatalf("trial %d (dim=%d tasks=%d): %v", trial, dim, tasks, err)
		}
	}
}

func TestPropertySRADConfigInvariance(t *testing.T) {
	rng := workload.NewRNG(505)
	for trial := 0; trial < 5; trial++ {
		dim := 16 + rng.Intn(24)
		app, err := srad.New(srad.Params{
			Dim: dim, Iterations: 1 + rng.Intn(3), Lambda: 0.5,
			Functional: true, Seed: uint64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := app.Run(1+rng.Intn(6), 1+rng.Intn(dim-1)); err != nil {
			t.Fatal(err)
		}
		if err := app.Verify(); err != nil {
			t.Fatalf("trial %d (dim=%d): %v", trial, dim, err)
		}
	}
}
