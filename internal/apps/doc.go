// Package apps groups the seven workloads of the paper's evaluation
// (§III-B), each in its own sub-package. The table mirrors the paper's
// Fig. 4 flow characterization — which stage transitions are
// asynchronous decides whether an application can profit from temporal
// sharing (overlap) or only from spatial sharing (partitioning):
//
//	app      flow (per Fig. 4)                              class
//	-------  ---------------------------------------------  ----------------
//	hbench   H2D → EXE → D2H, configurable intensity        microbenchmark
//	mm       panel H2D ⇢ tile EXE ⇢ tile D2H (async)        overlappable
//	cf       tile DAG: POTRF/TRSM/SYRK/GEMM with events     overlappable
//	nn       chunk H2D ⇢ EXE ⇢ D2H, host top-k merge        overlappable
//	kmeans   per-iter: centroids H2D → EXE → partial D2H →  non-overlappable
//	         host reduce (sync)
//	hotspot  per-iter: grid H2D → EXE → grid D2H (sync)     non-overlappable
//	srad     per-iter: reduce → host q0² → 2 stencils       non-overlappable
//	         (sync between kernels)
//
// Every application provides a functional model (real Go kernels over
// device buffers, validated against a host reference by Verify) and an
// analytic cost model driving the simulated timing; a Run method
// executes the non-streamed baseline with partitions = tasks = 1 and
// the streamed variant otherwise. hotspot additionally provides
// RunPipelined, the §VII future-work transformation to an overlappable
// flow.
package apps
