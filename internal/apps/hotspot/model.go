package hotspot

import "micstream/internal/model"

// Model describes the thermal simulation to the analytic performance
// model: the power grid ships once (prolog), then every iteration runs
// the paper's synchronized H2D→EXE→D2H sequence as three
// barrier-separated phases. The tiles argument matches Run's stripe
// count.
func (a *App) Model() model.Workload {
	p := a.p
	d := p.Dim
	return model.Workload{
		Name:           "hotspot",
		Flops:          FlopsPerCell * float64(d) * float64(d) * float64(p.Iterations),
		Rounds:         p.Iterations,
		PrologH2DBytes: int64(8 * d * d),
		Phases: func(tiles int) []model.Phase {
			if tiles < 1 {
				tiles = 1
			}
			if tiles > d {
				tiles = d
			}
			rows := d / tiles
			stripeBytes := int64(8 * rows * d)
			return []model.Phase{
				{Tiles: tiles, H2DBytesPerTile: stripeBytes},
				{Tiles: tiles, HasKernel: true, Cost: a.taskCost(rows)},
				{Tiles: tiles, D2HBytesPerTile: stripeBytes},
			}
		},
	}
}
