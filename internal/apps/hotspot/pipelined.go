package hotspot

import (
	"fmt"

	"micstream/internal/core"
	"micstream/internal/hstreams"
)

// RunPipelined is the paper's §VII future-work item made concrete:
// "transform the non-overlappable applications to overlappable
// applications". The barrier version (Run) synchronizes the whole
// device between the H2D, EXE and D2H stages of every iteration, so
// nothing overlaps. But the stencil's true dependency is local: tile t
// of iteration k+1 needs only tiles t-1, t, t+1 of iteration k. This
// variant builds the complete cross-iteration task graph with exactly
// those dependencies, so iteration k+1's transfers ride the link while
// iteration k's kernels still run — a software-pipelined wavefront.
//
// Per-tile chains keep the double-buffer reuse safe without any global
// barrier: tile t's iteration-k+1 H2D gates on its iteration-k D2H
// (host swap), and the same-tile chain orders any write against the
// transfers that read the previous contents.
func (a *App) RunPipelined(partitions, tasks int) (core.Result, error) {
	if tasks < 1 || tasks > a.p.Dim {
		return core.Result{}, fmt.Errorf("hotspot: task count %d out of range [1,%d]", tasks, a.p.Dim)
	}
	ctx, err := hstreams.Init(hstreams.Config{
		Partitions:     partitions,
		ExecuteKernels: a.p.Functional,
		Trace:          true,
	})
	if err != nil {
		return core.Result{}, err
	}
	d := a.p.Dim
	var bufA, bufB, bufPower *hstreams.Buffer
	if a.p.Functional {
		bufA = hstreams.Alloc1D(ctx, "temp", a.temp)
		bufB = hstreams.Alloc1D(ctx, "tempOut", a.out)
		bufPower = hstreams.Alloc1D(ctx, "power", a.power)
	} else {
		bufA = hstreams.AllocVirtual(ctx, "temp", d*d, 8)
		bufB = hstreams.AllocVirtual(ctx, "tempOut", d*d, 8)
		bufPower = hstreams.AllocVirtual(ctx, "power", d*d, 8)
	}

	start := ctx.Now()
	if _, err := ctx.Stream(0).EnqueueH2D(bufPower, 0, d*d, -1); err != nil {
		return core.Result{}, err
	}
	ctx.Barrier()

	rowOf := func(t int) (lo, hi int) { return t * d / tasks, (t + 1) * d / tasks }
	// Task ids: iteration-major. Per iteration and tile there are two
	// tasks: an input-shipping task and a compute(+writeback) task.
	inID := func(iter, t int) int { return iter*2*tasks + t }
	exID := func(iter, t int) int { return iter*2*tasks + tasks + t }

	iters := a.p.Iterations
	graph := make([]*core.Task, 0, 2*tasks*iters)
	for iter := 0; iter < iters; iter++ {
		// Double buffers alternate by iteration parity.
		in, out := bufA, bufB
		if iter%2 == 1 {
			in, out = bufB, bufA
		}
		for t := 0; t < tasks; t++ {
			lo, hi := rowOf(t)
			h2d := &core.Task{
				ID:           inID(iter, t),
				StreamHint:   t % ctx.NumStreams(),
				TransferOnly: true,
			}
			if iter == 0 {
				h2d.H2D = []core.TransferSpec{core.Xfer(in, lo*d, (hi-lo)*d)}
			} else {
				// This iteration's input is the previous
				// iteration's output: gate the shipment on the
				// producing tile's writeback.
				h2d.H2D = []core.TransferSpec{core.XferAfter(in, lo*d, (hi-lo)*d, exID(iter-1, t))}
			}
			graph = append(graph, h2d)
		}
		for t := 0; t < tasks; t++ {
			lo, hi := rowOf(t)
			deps := []int{inID(iter, t)}
			if t > 0 {
				deps = append(deps, inID(iter, t-1))
			}
			if t < tasks-1 {
				deps = append(deps, inID(iter, t+1))
			}
			var body func(*hstreams.KernelCtx)
			if a.p.Functional {
				in, out, lo, hi := in, out, lo, hi
				body = func(k *hstreams.KernelCtx) {
					a.stencil(k, in, out, bufPower, lo, hi)
				}
			}
			graph = append(graph, &core.Task{
				ID:         exID(iter, t),
				DependsOn:  deps,
				Cost:       a.taskCost(hi - lo),
				Body:       body,
				D2H:        []core.TransferSpec{core.Xfer(out, lo*d, (hi-lo)*d)},
				StreamHint: t % ctx.NumStreams(),
			})
		}
	}
	if _, err := core.EnqueuePhase(ctx, graph); err != nil {
		return core.Result{}, err
	}
	ctx.Barrier()
	wall := ctx.Now().Sub(start)

	if a.p.Functional && iters%2 == 1 {
		// The final temperature landed in the out-parity host
		// buffer; keep a.temp pointing at it, as Run does.
		a.temp, a.out = a.out, a.temp
	}
	flops := FlopsPerCell * float64(d) * float64(d) * float64(iters)
	return core.Summarize(ctx, flops, wall), nil
}
