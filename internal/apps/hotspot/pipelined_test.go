package hotspot

import (
	"testing"
)

func TestPipelinedMatchesReference(t *testing.T) {
	app, err := New(Params{Dim: 24, Iterations: 6, Functional: true, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.RunPipelined(4, 6); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatalf("pipelined variant diverged from reference: %v", err)
	}
}

func TestPipelinedMatchesReferenceOddIterations(t *testing.T) {
	// Odd iteration counts exercise the final buffer-parity swap.
	app, err := New(Params{Dim: 16, Iterations: 5, Functional: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.RunPipelined(2, 4); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedSingleTile(t *testing.T) {
	// Degenerate tiling: the cross-iteration chain alone must still
	// order everything correctly.
	app, err := New(Params{Dim: 12, Iterations: 4, Functional: true, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.RunPipelined(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedValidation(t *testing.T) {
	app, _ := New(Params{Dim: 8, Iterations: 1})
	if _, err := app.RunPipelined(1, 0); err == nil {
		t.Fatal("zero tasks accepted")
	}
	if _, err := app.RunPipelined(1, 9); err == nil {
		t.Fatal("more tasks than rows accepted")
	}
}

// The transformation's point: the pipelined variant overlaps iteration
// k+1's transfers with iteration k's kernels, beating the barrier
// version at paper scale — the paper's §VII future-work item realized.
func TestPipelinedBeatsBarrierVersion(t *testing.T) {
	app, err := New(Params{Dim: 8192, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	barrier, err := app.Run(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	pipelined, err := app.RunPipelined(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	gain := barrier.Wall.Seconds()/pipelined.Wall.Seconds() - 1
	if gain < 0.05 {
		t.Fatalf("pipelined (%v) should beat barrier (%v) by ≥5%%, got %.1f%%",
			pipelined.Wall, barrier.Wall, gain*100)
	}
	// And it must now actually overlap transfers with kernels.
	if pipelined.OverlapFraction <= barrier.OverlapFraction {
		t.Fatalf("pipelined overlap %.2f not above barrier %.2f",
			pipelined.OverlapFraction, barrier.OverlapFraction)
	}
}
