package hotspot

import (
	"testing"

	"micstream/internal/stats"
)

func TestValidation(t *testing.T) {
	if _, err := New(Params{Dim: 0, Iterations: 1}); err == nil {
		t.Fatal("dim=0 accepted")
	}
	if _, err := New(Params{Dim: 8, Iterations: 0}); err == nil {
		t.Fatal("iterations=0 accepted")
	}
	app, err := New(Params{Dim: 8, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(1, 0); err == nil {
		t.Fatal("zero tasks accepted")
	}
	if _, err := app.Run(1, 9); err == nil {
		t.Fatal("more tasks than rows accepted")
	}
}

func TestFunctionalMatchesReferenceTiled(t *testing.T) {
	app, err := New(Params{Dim: 24, Iterations: 5, Functional: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(4, 6); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionalMatchesReferenceNonStreamed(t *testing.T) {
	app, err := New(Params{Dim: 16, Iterations: 3, Functional: true, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := app.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestHotSpotsHeatUp(t *testing.T) {
	// Cells with high power must end hotter than the ambient mean —
	// the simulation is actually simulating something.
	app, err := New(Params{Dim: 32, Iterations: 10, Functional: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(2, 4); err != nil {
		t.Fatal(err)
	}
	temp := app.Temperature()
	mean := stats.Mean(temp)
	// Find the hottest power cell from a fresh grid (same seed).
	fresh, _ := New(Params{Dim: 32, Iterations: 1, Functional: true, Seed: 13})
	maxPower, at := stats.Max(fresh.power)
	if maxPower < 5 {
		t.Skip("no hot block generated for this seed")
	}
	if temp[at] <= mean {
		t.Fatalf("hot cell %d (power %.1f) at %.2f not above mean %.2f", at, maxPower, temp[at], mean)
	}
}

// Paper §V-A / Fig. 8d: streaming brings no performance change for
// Hotspot (non-overlappable, no allocation overhead); on large grids
// streamed and non-streamed are within a few percent.
func TestStreamedRoughlyEqualAtPaperScale(t *testing.T) {
	app, err := New(Params{Dim: 16384, Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	base, err := app.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := app.Run(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	ratio := streamed.Wall.Seconds() / base.Wall.Seconds()
	if ratio < 0.85 || ratio > 1.10 {
		t.Fatalf("streamed/non-streamed = %.3f, want ≈1 (paper: no change)", ratio)
	}
}

// Fig. 8d (small datasets): the streamed code is slightly slower than
// non-streamed because of stream management overhead.
func TestStreamedSlowerOnSmallGrid(t *testing.T) {
	app, err := New(Params{Dim: 1024, Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	base, err := app.Run(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := app.Run(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Wall <= base.Wall {
		t.Fatalf("streamed (%v) should be slower than non-streamed (%v) on a small grid", streamed.Wall, base.Wall)
	}
}

// Fig. 9d: the kernel-phase time over partitions dips in the paper's
// P ∈ [33, 37] region (good cache utilization at ≤2 cores/partition,
// balanced waves) — we assert the minimum falls in a window around it.
func TestPartitionSweepDipLocation(t *testing.T) {
	app, err := New(Params{Dim: 16384, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ps []int
	var times []float64
	for p := 4; p <= 56; p += 1 {
		r, err := app.Run(p, 256)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
		times = append(times, r.Wall.Seconds())
	}
	_, minAt := stats.Min(times)
	if ps[minAt] < 28 || ps[minAt] > 45 {
		t.Fatalf("minimum at P=%d, paper dips at P∈[33,37]: %v", ps[minAt], times)
	}
}

// Fig. 10d: over task counts at P=4, T=1 is sharply worse (3 of 4
// partitions idle), a small T is optimal, and very large T loses to
// launch overhead.
func TestTaskSweepShape(t *testing.T) {
	app, err := New(Params{Dim: 4096, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{1, 4, 16, 64, 256, 1024, 4096}
	var times []float64
	for _, tc := range counts {
		r, err := app.Run(4, tc)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, r.Wall.Seconds())
	}
	_, minAt := stats.Min(times)
	if minAt == 0 {
		t.Fatalf("T=1 should not be optimal: %v", times)
	}
	if counts[minAt] > 64 {
		t.Fatalf("optimum at T=%d, expected small T (paper: 4): %v", counts[minAt], times)
	}
	// With per-iteration grid shipping, transfers dominate, so the
	// T=1 penalty (idle partitions during the kernel phase) is
	// visible but bounded.
	if times[0] < times[minAt]*1.15 {
		t.Fatalf("T=1 (%v) should be clearly above the optimum (%v)", times[0], times[minAt])
	}
	if times[len(times)-1] <= times[minAt] {
		t.Fatalf("T=4096 should lose to the optimum: %v", times)
	}
}
