// Package hotspot is the paper's Hotspot application (Rodinia): a 2D
// transient thermal simulation that iteratively solves the block-
// temperature differential equations with a 5-point stencil over the
// chip grid, given per-cell power dissipation.
//
// The hStreams port follows Fig. 4(c): every iteration ships the
// temperature grid to the device, runs the stencil, and ships the
// result back, with explicit synchronization between the stages
// (iteration k+1's halo cells require every tile of iteration k).
// The application is therefore non-overlappable: streams provide only
// spatial sharing, and the paper measures no benefit from streaming
// (Fig. 8d) with a slight loss on small grids from stream-management
// overhead. Hotspot drives Figs. 8d, 9d and 10d.
package hotspot

import (
	"fmt"
	"math"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/workload"
)

// Stencil physics constants (Rodinia's defaults, simplified to a fixed
// explicit update).
const (
	stepWeight = 0.1  // integration factor for the power term
	diffWeight = 0.25 // conduction averaging weight
	ambient    = 80.0 // sink temperature pull, scaled
)

// BytesPerCell is the effective memory traffic of one stencil update:
// temperature in/out, power, and halo/conflict-miss overhead on the
// 31SP's ring.
const BytesPerCell = 48

// FlopsPerCell counts the stencil arithmetic (adds, multiplies).
const FlopsPerCell = 10

// Efficiency is the stencil's arithmetic efficiency; the kernel is
// memory-bound, so this only matters for tiny grids.
const Efficiency = 0.15

// Params configures the application.
type Params struct {
	// Dim is the square grid edge length.
	Dim int
	// Iterations is the simulation step count (the paper runs 50).
	Iterations int
	// Functional enables real data and kernels.
	Functional bool
	// Seed seeds the thermal grid generator.
	Seed uint64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Dim <= 0 {
		return fmt.Errorf("hotspot: dim must be positive, got %d", p.Dim)
	}
	if p.Iterations <= 0 {
		return fmt.Errorf("hotspot: iterations must be positive, got %d", p.Iterations)
	}
	return nil
}

// App is an instantiated thermal simulation.
type App struct {
	p     Params
	temp  []float64 // current temperature, functional only
	power []float64 // per-cell power, functional only
	out   []float64 // scratch output grid, functional only
}

// New builds the workload.
func New(p Params) (*App, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	app := &App{p: p}
	if p.Functional {
		app.temp, app.power = workload.ThermalGrid(p.Seed, p.Dim, p.Dim)
		app.out = make([]float64, p.Dim*p.Dim)
	}
	return app, nil
}

// Params returns the workload parameters.
func (a *App) Params() Params { return a.p }

// Temperature returns the final grid of the last functional Run.
func (a *App) Temperature() []float64 { return a.temp }

// taskCost models one stencil kernel over rows [lo, hi) of the grid.
func (a *App) taskCost(rows int) device.KernelCost {
	cells := float64(rows) * float64(a.p.Dim)
	return device.KernelCost{
		Name:            "hotspot.stencil",
		Flops:           FlopsPerCell * cells,
		Bytes:           BytesPerCell * cells,
		WorkingSetBytes: int64(cells) * 16,
		CacheSensitive:  true,
		Efficiency:      Efficiency,
	}
}

// Run simulates with the grid split into tasks horizontal stripes on
// partitions partitions. partitions=1, tasks=1 is the non-streamed
// baseline. Each iteration performs the paper's synchronized
// H2D→EXE→D2H sequence.
func (a *App) Run(partitions, tasks int) (core.Result, error) {
	if tasks < 1 || tasks > a.p.Dim {
		return core.Result{}, fmt.Errorf("hotspot: task count %d out of range [1,%d]", tasks, a.p.Dim)
	}
	ctx, err := hstreams.Init(hstreams.Config{
		Partitions:     partitions,
		ExecuteKernels: a.p.Functional,
		Trace:          true,
	})
	if err != nil {
		return core.Result{}, err
	}
	d := a.p.Dim
	var bufIn, bufOut, bufPower *hstreams.Buffer
	if a.p.Functional {
		bufIn = hstreams.Alloc1D(ctx, "temp", a.temp)
		bufOut = hstreams.Alloc1D(ctx, "tempOut", a.out)
		bufPower = hstreams.Alloc1D(ctx, "power", a.power)
	} else {
		bufIn = hstreams.AllocVirtual(ctx, "temp", d*d, 8)
		bufOut = hstreams.AllocVirtual(ctx, "tempOut", d*d, 8)
		bufPower = hstreams.AllocVirtual(ctx, "power", d*d, 8)
	}

	start := ctx.Now()
	// Power is shipped once and stays resident.
	if _, err := ctx.Stream(0).EnqueueH2D(bufPower, 0, d*d, -1); err != nil {
		return core.Result{}, err
	}
	ctx.Barrier()

	rowOf := func(t int) (lo, hi int) { return t * d / tasks, (t + 1) * d / tasks }

	for iter := 0; iter < a.p.Iterations; iter++ {
		// Stage 1: ship the current grid, tiled; synchronize.
		in := make([]*core.Task, 0, tasks)
		for t := 0; t < tasks; t++ {
			lo, hi := rowOf(t)
			in = append(in, &core.Task{
				ID:           t,
				H2D:          []core.TransferSpec{core.Xfer(bufIn, lo*d, (hi-lo)*d)},
				StreamHint:   -1,
				TransferOnly: true,
			})
		}
		if _, err := core.EnqueuePhase(ctx, in); err != nil {
			return core.Result{}, err
		}
		ctx.Barrier()

		// Stage 2: stencil kernels; synchronize (halo dependency).
		exe := make([]*core.Task, 0, tasks)
		for t := 0; t < tasks; t++ {
			lo, hi := rowOf(t)
			var body func(*hstreams.KernelCtx)
			if a.p.Functional {
				lo, hi := lo, hi
				body = func(k *hstreams.KernelCtx) {
					a.stencil(k, bufIn, bufOut, bufPower, lo, hi)
				}
			}
			exe = append(exe, &core.Task{
				ID:         t,
				Cost:       a.taskCost(hi - lo),
				Body:       body,
				StreamHint: -1,
			})
		}
		if _, err := core.EnqueuePhase(ctx, exe); err != nil {
			return core.Result{}, err
		}
		ctx.Barrier()

		// Stage 3: ship the result back, tiled; synchronize.
		for t := 0; t < tasks; t++ {
			lo, hi := rowOf(t)
			s := ctx.Stream(t % ctx.NumStreams())
			if _, err := s.EnqueueD2H(bufOut, lo*d, (hi-lo)*d, t); err != nil {
				return core.Result{}, err
			}
		}
		ctx.Barrier()

		// Host swaps the buffers for the next iteration.
		if a.p.Functional {
			a.temp, a.out = a.out, a.temp
			bufIn, bufOut = bufOut, bufIn
		} else {
			bufIn, bufOut = bufOut, bufIn
		}
	}
	wall := ctx.Now().Sub(start)
	flops := FlopsPerCell * float64(d) * float64(d) * float64(a.p.Iterations)
	return core.Summarize(ctx, flops, wall), nil
}

// stencil is the functional kernel: explicit 5-point thermal update
// over rows [lo, hi), reading the full input grid (halo rows included).
func (a *App) stencil(k *hstreams.KernelCtx, bufIn, bufOut, bufPower *hstreams.Buffer, lo, hi int) {
	d := a.p.Dim
	in := hstreams.DeviceSlice[float64](bufIn, k.DeviceIndex)
	out := hstreams.DeviceSlice[float64](bufOut, k.DeviceIndex)
	pw := hstreams.DeviceSlice[float64](bufPower, k.DeviceIndex)
	at := func(r, c int) float64 {
		if r < 0 {
			r = 0
		}
		if r >= d {
			r = d - 1
		}
		if c < 0 {
			c = 0
		}
		if c >= d {
			c = d - 1
		}
		return in[r*d+c]
	}
	for r := lo; r < hi; r++ {
		for c := 0; c < d; c++ {
			center := in[r*d+c]
			conduction := diffWeight * (at(r-1, c) + at(r+1, c) + at(r, c-1) + at(r, c+1) - 4*center)
			out[r*d+c] = center + stepWeight*pw[r*d+c] + conduction - stepWeight*(center-ambient)/1000
		}
	}
}

// Reference runs the same simulation on the host for verification.
func (a *App) Reference() ([]float64, error) {
	if !a.p.Functional {
		return nil, fmt.Errorf("hotspot: Reference requires functional mode")
	}
	d := a.p.Dim
	temp, power := workload.ThermalGrid(a.p.Seed, d, d)
	next := make([]float64, d*d)
	at := func(g []float64, r, c int) float64 {
		if r < 0 {
			r = 0
		}
		if r >= d {
			r = d - 1
		}
		if c < 0 {
			c = 0
		}
		if c >= d {
			c = d - 1
		}
		return g[r*d+c]
	}
	for iter := 0; iter < a.p.Iterations; iter++ {
		for r := 0; r < d; r++ {
			for c := 0; c < d; c++ {
				center := temp[r*d+c]
				conduction := diffWeight * (at(temp, r-1, c) + at(temp, r+1, c) + at(temp, r, c-1) + at(temp, r, c+1) - 4*center)
				next[r*d+c] = center + stepWeight*power[r*d+c] + conduction - stepWeight*(center-ambient)/1000
			}
		}
		temp, next = next, temp
	}
	return temp, nil
}

// Verify compares the device result with the host reference.
func (a *App) Verify() error {
	want, err := a.Reference()
	if err != nil {
		return err
	}
	if a.temp == nil {
		return fmt.Errorf("hotspot: Verify before Run")
	}
	for i := range want {
		if math.Abs(a.temp[i]-want[i]) > 1e-9 {
			return fmt.Errorf("hotspot: temp[%d] = %g, want %g", i, a.temp[i], want[i])
		}
	}
	return nil
}
