package core

import (
	"testing"

	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/sim"
)

func ctx(t *testing.T, cfg hstreams.Config) *hstreams.Context {
	t.Helper()
	c, err := hstreams.Init(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func simpleTask(id int, buf *hstreams.Buffer, flops float64) *Task {
	return &Task{
		ID:         id,
		H2D:        []TransferSpec{Xfer(buf, 0, buf.Len())},
		Cost:       device.KernelCost{Name: "k", Flops: flops},
		D2H:        []TransferSpec{Xfer(buf, 0, buf.Len())},
		StreamHint: -1,
	}
}

func TestEnqueuePhaseRoundRobin(t *testing.T) {
	c := ctx(t, hstreams.Config{Partitions: 4, Trace: true})
	buf := hstreams.AllocVirtual(c, "b", 1<<20, 4)
	var tasks []*Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, simpleTask(i, buf, 1e9))
	}
	ev, err := EnqueuePhase(c, tasks)
	if err != nil {
		t.Fatal(err)
	}
	c.Barrier()
	if len(ev.Kernel) != 8 || len(ev.Done) != 8 {
		t.Fatalf("events: %d kernel, %d done; want 8 each", len(ev.Kernel), len(ev.Done))
	}
	for id, e := range ev.Done {
		if !e.Done() {
			t.Fatalf("task %d not completed", id)
		}
	}
}

func TestStreamHintPinsTask(t *testing.T) {
	c := ctx(t, hstreams.Config{Partitions: 4, Trace: true})
	cost := device.KernelCost{Name: "k", Flops: 2e9}
	// Pin two heavy kernels to the same stream: they must serialize.
	tasks := []*Task{
		{ID: 0, Cost: cost, StreamHint: 2},
		{ID: 1, Cost: cost, StreamHint: 2},
		{ID: 2, Cost: cost, StreamHint: 3},
	}
	ev, err := EnqueuePhase(c, tasks)
	if err != nil {
		t.Fatal(err)
	}
	c.Barrier()
	if ev.Done[1].CompletedAt() <= ev.Done[0].CompletedAt() {
		t.Fatal("pinned tasks did not serialize")
	}
	if ev.Done[2].CompletedAt() != ev.Done[0].CompletedAt() {
		t.Fatal("task on different partition should finish with task 0")
	}
}

func TestDependencyGatesKernel(t *testing.T) {
	c := ctx(t, hstreams.Config{Partitions: 2, Trace: true})
	cost := device.KernelCost{Name: "k", Flops: 2e9}
	tasks := []*Task{
		{ID: 0, Cost: cost, StreamHint: 0},
		{ID: 1, Cost: cost, StreamHint: 1, DependsOn: []int{0}},
	}
	ev, err := EnqueuePhase(c, tasks)
	if err != nil {
		t.Fatal(err)
	}
	c.Barrier()
	if ev.Kernel[1].CompletedAt() <= ev.Kernel[0].CompletedAt() {
		t.Fatal("dependent kernel ran concurrently with its dependency")
	}
}

// A gated H2D (XferAfter) must wait for the producer task's final
// event — the cross-device staging pattern used by multi-MIC CF.
func TestGatedTransferWaitsForProducer(t *testing.T) {
	c := ctx(t, hstreams.Config{Devices: 2, Trace: true})
	buf := hstreams.AllocVirtual(c, "tile", 1<<20, 8)
	producer := &Task{
		ID:         0,
		Cost:       device.KernelCost{Name: "produce", Flops: 5e9},
		D2H:        []TransferSpec{Xfer(buf, 0, buf.Len())},
		StreamHint: 0, // device 0
	}
	consumer := &Task{
		ID:         1,
		H2D:        []TransferSpec{XferAfter(buf, 0, buf.Len(), 0)},
		Cost:       device.KernelCost{Name: "consume", Flops: 1e6},
		StreamHint: 1, // device 1
	}
	ev, err := EnqueuePhase(c, []*Task{producer, consumer})
	if err != nil {
		t.Fatal(err)
	}
	c.Barrier()
	// Consumer kernel must start after producer's D2H plus its own
	// H2D: strictly after producer completion plus one transfer.
	gap := ev.Kernel[1].CompletedAt().Sub(ev.Done[0].CompletedAt())
	if gap < c.Config().Link.TransferTime(buf.Bytes()) {
		t.Fatalf("consumer not gated on producer: gap %v", gap)
	}

	// Gating on a not-yet-enqueued task is an error.
	if _, err := EnqueuePhase(c, []*Task{
		{ID: 7, H2D: []TransferSpec{XferAfter(buf, 0, 1, 99)}, Cost: device.KernelCost{Flops: 1}, StreamHint: -1},
	}); err == nil {
		t.Fatal("gate on unknown task accepted")
	}
}

func TestEnqueuePhaseErrors(t *testing.T) {
	c := ctx(t, hstreams.Config{Partitions: 2})
	cost := device.KernelCost{Flops: 1}
	if _, err := EnqueuePhase(c, []*Task{
		{ID: 0, Cost: cost, StreamHint: -1},
		{ID: 0, Cost: cost, StreamHint: -1},
	}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := EnqueuePhase(c, []*Task{
		{ID: 0, Cost: cost, StreamHint: 99},
	}); err == nil {
		t.Fatal("bad stream hint accepted")
	}
	if _, err := EnqueuePhase(c, []*Task{
		{ID: 0, Cost: cost, DependsOn: []int{5}, StreamHint: -1},
	}); err == nil {
		t.Fatal("forward/unknown dependency accepted")
	}
	buf := hstreams.AllocVirtual(c, "b", 4, 4)
	if _, err := EnqueuePhase(c, []*Task{
		{ID: 0, Cost: cost, H2D: []TransferSpec{Xfer(buf, 2, 8)}, StreamHint: -1},
	}); err == nil {
		t.Fatal("out-of-range transfer accepted")
	}
}

func TestRunProducesMetrics(t *testing.T) {
	c := ctx(t, hstreams.Config{Partitions: 2, Trace: true})
	buf := hstreams.AllocVirtual(c, "b", 1<<20, 4)
	var tasks []*Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, simpleTask(i, buf, 1e9))
	}
	res, err := Run(c, tasks, 4e9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wall <= 0 {
		t.Fatal("zero wall time")
	}
	if res.GFlops <= 0 {
		t.Fatal("zero GFLOPS")
	}
	if res.KernelBusy <= 0 || res.H2DBusy <= 0 || res.D2HBusy <= 0 {
		t.Fatalf("missing busy times: %+v", res)
	}
	// 4 tasks on 2 streams: some transfer/compute overlap must occur.
	if res.OverlapFraction <= 0 {
		t.Fatal("no overlap achieved in pipelined run")
	}
	if res.Partitions != 2 || res.Streams != 2 {
		t.Fatalf("granularity not recorded: %+v", res)
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

// More streams must not make a pipelined workload slower, and must beat
// the single stream for overlappable work (paper Fig. 1, §V-A).
func TestStreamedBeatsNonStreamed(t *testing.T) {
	run := func(parts, tiles int) sim.Duration {
		c := ctx(t, hstreams.Config{Partitions: parts, Trace: true})
		buf := hstreams.AllocVirtual(c, "b", 4<<20, 4)
		per := buf.Len() / tiles
		var tasks []*Task
		for i := 0; i < tiles; i++ {
			tasks = append(tasks, &Task{
				ID:         i,
				H2D:        []TransferSpec{Xfer(buf, i*per, per)},
				Cost:       device.KernelCost{Name: "k", Flops: 40e9 / float64(tiles)},
				D2H:        []TransferSpec{Xfer(buf, i*per, per)},
				StreamHint: -1,
			})
		}
		res, err := Run(c, tasks, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Wall
	}
	single := run(1, 1)
	streamed := run(4, 8)
	if streamed >= single {
		t.Fatalf("streamed %v not faster than non-streamed %v", streamed, single)
	}
}

func TestCandidatePartitionsAreDivisors(t *testing.T) {
	got := CandidatePartitions(device.Xeon31SP())
	want := []int{1, 2, 4, 7, 8, 14, 28, 56}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
}

func TestCandidateTilesAreMultiplesOfP(t *testing.T) {
	for _, p := range []int{2, 4, 7, 14} {
		tiles := CandidateTiles(p, 400)
		if len(tiles) == 0 {
			t.Fatalf("no tile candidates for P=%d", p)
		}
		for _, tt := range tiles[:len(tiles)-1] { // last entry is maxTiles itself
			if tt%p != 0 {
				t.Fatalf("P=%d: tile candidate %d not a multiple", p, tt)
			}
			if tt > 400 {
				t.Fatalf("P=%d: tile candidate %d exceeds max", p, tt)
			}
		}
	}
	if CandidateTiles(0, 10) != nil || CandidateTiles(4, 0) != nil {
		t.Fatal("degenerate inputs should give nil")
	}
}

func TestHeuristicSpaceMuchSmallerThanExhaustive(t *testing.T) {
	ex := ExhaustiveSpace(56, 400)
	he := HeuristicSpace(56, 400)
	if ex.Size() != 56*400 {
		t.Fatalf("exhaustive size = %d", ex.Size())
	}
	if he.Size() >= ex.Size()/50 {
		t.Fatalf("heuristic space %d not ≪ exhaustive %d", he.Size(), ex.Size())
	}
	// Pruned P values exclude 1 (the degenerate non-streamed case).
	for _, p := range he.Partitions {
		if p < 2 || 56%p != 0 {
			t.Fatalf("bad pruned partition %d", p)
		}
	}
}

func TestTuneFindsMinimum(t *testing.T) {
	// Synthetic landscape with a unique optimum at P=8, T=32.
	eval := func(p, tiles int) (float64, error) {
		dp := float64(p - 8)
		dt := float64(tiles - 32)
		return 1 + dp*dp + dt*dt/100, nil
	}
	space := SearchSpace{
		Partitions: []int{2, 4, 8, 16},
		TilesFor:   func(p int) []int { return []int{8, 16, 32, 64} },
	}
	res, err := Tune(space, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 8 || res.Tiles != 32 {
		t.Fatalf("tuner found (%d,%d), want (8,32)", res.Partitions, res.Tiles)
	}
	if res.Evaluations != space.Size() {
		t.Fatalf("evaluations = %d, want %d", res.Evaluations, space.Size())
	}
}

func TestTuneClusterJointOptimum(t *testing.T) {
	// Synthetic landscape over (D, P, T): per-device time shrinks with
	// D but a staging penalty grows with it, putting the optimum at
	// D=2 rather than the largest device count; (P, T) optimum at
	// (8, 32) as in the single-device landscape.
	eval := func(d, p, tiles int) (float64, error) {
		dp := float64(p - 8)
		dt := float64(tiles - 32)
		per := (10 + dp*dp + dt*dt/100) / float64(d)
		staging := 3 * float64(d-1)
		return per + staging, nil
	}
	space := SearchSpace{
		Partitions: []int{2, 4, 8, 16},
		TilesFor:   func(int) []int { return []int{8, 16, 32, 64} },
	}
	res, err := TuneCluster([]int{1, 2, 4}, space, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Devices != 2 || res.Partitions != 8 || res.Tiles != 32 {
		t.Fatalf("cluster tuner found (D=%d,P=%d,T=%d), want (2,8,32)", res.Devices, res.Partitions, res.Tiles)
	}
	if res.Evaluations != 3*space.Size() {
		t.Fatalf("evaluations = %d, want %d", res.Evaluations, 3*space.Size())
	}

	// The guided search with a perfect predictor needs only one
	// simulated point to land on the same optimum.
	guided, err := TuneClusterGuided([]int{1, 2, 4}, space, eval, eval, 1)
	if err != nil {
		t.Fatal(err)
	}
	if guided.Devices != res.Devices || guided.Partitions != res.Partitions || guided.Tiles != res.Tiles {
		t.Fatalf("guided cluster tuner found (D=%d,P=%d,T=%d), want (D=%d,P=%d,T=%d)",
			guided.Devices, guided.Partitions, guided.Tiles, res.Devices, res.Partitions, res.Tiles)
	}
	if guided.Evaluations != 1 {
		t.Fatalf("guided evaluations = %d, want 1", guided.Evaluations)
	}

	if _, err := TuneCluster(nil, space, eval); err == nil {
		t.Error("empty device list should error")
	}
	if _, err := TuneCluster([]int{0}, space, eval); err == nil {
		t.Error("non-positive device count should error")
	}
	if _, err := TuneClusterGuided([]int{-1}, space, eval, eval, 1); err == nil {
		t.Error("guided non-positive device count should error")
	}
}

func TestCoordinateDescentFindsUnimodalOptimum(t *testing.T) {
	// Separable bowl: coordinate descent must find the exact optimum
	// with far fewer evaluations than the 16-point product space.
	eval := func(p, tiles int) (float64, error) {
		dp := float64(p - 8)
		dt := float64(tiles - 32)
		return 1 + dp*dp + dt*dt/100, nil
	}
	space := SearchSpace{
		Partitions: []int{2, 4, 8, 16},
		TilesFor:   func(int) []int { return []int{8, 16, 32, 64} },
	}
	res, err := TuneCoordinateDescent(space, eval, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 8 || res.Tiles != 32 {
		t.Fatalf("found (%d,%d), want (8,32)", res.Partitions, res.Tiles)
	}
	full, err := Tune(space, eval)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations >= full.Evaluations {
		t.Fatalf("descent used %d evals, exhaustive %d — no saving", res.Evaluations, full.Evaluations)
	}
	if res.Seconds != full.Seconds {
		t.Fatalf("descent optimum %v != exhaustive %v", res.Seconds, full.Seconds)
	}
}

func TestCoordinateDescentCachesRepeats(t *testing.T) {
	calls := 0
	eval := func(p, tiles int) (float64, error) {
		calls++
		return float64(p + tiles), nil
	}
	space := SearchSpace{
		Partitions: []int{1, 2},
		TilesFor:   func(int) []int { return []int{1, 2} },
	}
	res, err := TuneCoordinateDescent(space, eval, 5)
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Evaluations {
		t.Fatalf("eval called %d times but %d evaluations reported (cache broken)", calls, res.Evaluations)
	}
	if calls > 4 {
		t.Fatalf("tiny space needed %d calls; caching should bound it by the space size", calls)
	}
}

func TestCoordinateDescentEmptySpaceFails(t *testing.T) {
	if _, err := TuneCoordinateDescent(SearchSpace{TilesFor: func(int) []int { return nil }}, nil, 1); err == nil {
		t.Fatal("empty space accepted")
	}
}

func TestTuneEmptySpaceFails(t *testing.T) {
	if _, err := Tune(SearchSpace{TilesFor: func(int) []int { return nil }}, nil); err == nil {
		t.Fatal("empty space accepted")
	}
}

func TestTunePropagatesEvalError(t *testing.T) {
	space := SearchSpace{Partitions: []int{1}, TilesFor: func(int) []int { return []int{1} }}
	_, err := Tune(space, func(int, int) (float64, error) {
		return 0, errBoom
	})
	if err == nil {
		t.Fatal("eval error swallowed")
	}
}

var errBoom = &boomError{}

type boomError struct{}

func (*boomError) Error() string { return "boom" }

func TestPipelineIdealAndSerial(t *testing.T) {
	stages := []sim.Duration{10, 30, 20}
	if got := PipelineSerial(stages, 4); got != 240 {
		t.Fatalf("serial = %v, want 240", got)
	}
	// fill 60 + 3 more × bottleneck 30 = 150.
	if got := PipelineIdeal(stages, 4); got != 150 {
		t.Fatalf("ideal = %v, want 150", got)
	}
	if PipelineIdeal(stages, 0) != 0 || PipelineSerial(nil, 5) != 0 {
		t.Fatal("degenerate cases wrong")
	}
	if PipelineIdeal(stages, 1) != 60 {
		t.Fatal("single task should cost the stage sum")
	}
}

func TestHalfDuplexIdealBounds(t *testing.T) {
	// Link-bound: transfers dominate.
	lb := HalfDuplexIdeal(10, 5, 10, 4)
	if lb != 4*20+5 {
		t.Fatalf("link-bound = %v, want 85", lb)
	}
	// Kernel-bound: compute dominates.
	kb := HalfDuplexIdeal(5, 40, 5, 4)
	if kb != 4*40+10 {
		t.Fatalf("kernel-bound = %v, want 170", kb)
	}
	if HalfDuplexIdeal(1, 1, 1, 0) != 0 {
		t.Fatal("zero tasks should cost zero")
	}
	// The half-duplex ideal is never below the full-overlap ideal.
	for _, n := range []int{1, 2, 5, 16} {
		hd := HalfDuplexIdeal(10, 30, 20, n)
		id := PipelineIdeal([]sim.Duration{10, 30, 20}, n)
		if hd < id {
			t.Fatalf("n=%d: half-duplex ideal %v below full ideal %v", n, hd, id)
		}
	}
}
