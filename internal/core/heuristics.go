package core

import (
	"sort"

	"micstream/internal/device"
)

// CandidatePartitions returns the paper's pruned resource-granularity
// search space (§V-C): partition counts that divide the device's usable
// core count, so that no physical core's hardware threads are split
// across two partitions. For the 31SP's 56 usable cores this is
// {1, 2, 4, 7, 8, 14, 28, 56}; the paper's recommended set is the same
// without 1 (a single partition is the non-streamed degenerate case,
// kept here because the tuner may still want to evaluate it).
func CandidatePartitions(cfg device.Config) []int {
	cores := cfg.UsableCores()
	var out []int
	for p := 1; p <= cores; p++ {
		if cores%p == 0 {
			out = append(out, p)
		}
	}
	return out
}

// CandidateTiles returns the paper's pruned task-granularity space for
// a given partition count: multiples of P (load balance: T = m·P for
// integer m, §V-C) up to maxTiles, thinned geometrically so the tuner
// evaluates O(log) candidates instead of every multiple. The paper's
// further guidance — T not too large (control overhead) and not too
// small (no pipelining) — is left to the tuner's measurements.
func CandidateTiles(p, maxTiles int) []int {
	if p < 1 || maxTiles < 1 {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	add := func(t int) {
		if t >= 1 && t <= maxTiles && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	// m = 1..8 exactly, then geometric growth: small multiples
	// matter most (most apps peak at T = P or small multiples).
	for m := 1; m <= 8; m++ {
		add(m * p)
	}
	for m := 12; m*p <= maxTiles; m += m / 2 {
		add(m * p)
	}
	add(maxTiles)
	sort.Ints(out)
	return out
}

// FullPartitionSpace returns every partition count in [1, max] — the
// unpruned resource-granularity axis.
func FullPartitionSpace(max int) []int {
	if max < 1 {
		return nil
	}
	out := make([]int, max)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// FullTileSpace returns every tile count in [1, max] — the unpruned
// task-granularity axis.
func FullTileSpace(max int) []int { return FullPartitionSpace(max) }
