package core

import (
	"fmt"
	"math"
	"sort"
)

// EvalFunc measures one (P, T) configuration and returns its execution
// time in seconds (lower is better). The tuner treats errors as fatal:
// an unevaluable point means the space was constructed wrongly.
type EvalFunc func(partitions, tiles int) (seconds float64, err error)

// SearchSpace is the cross product of candidate partition counts and
// candidate tile counts. Tiles may depend on P (the paper's T = m·P
// rule), hence the generator form.
type SearchSpace struct {
	// Partitions lists candidate resource granularities.
	Partitions []int
	// TilesFor returns the candidate task granularities for a given
	// partition count.
	TilesFor func(p int) []int
}

// ExhaustiveSpace searches every combination in [1,maxP] × [1,maxT].
// Its size is what the paper calls the "huge search space".
func ExhaustiveSpace(maxP, maxT int) SearchSpace {
	return SearchSpace{
		Partitions: FullPartitionSpace(maxP),
		TilesFor:   func(int) []int { return FullTileSpace(maxT) },
	}
}

// HeuristicSpace applies the paper's §V-C pruning rules: P restricted
// to divisors of the usable core count, T restricted to multiples of P.
func HeuristicSpace(usableCores, maxT int) SearchSpace {
	var parts []int
	for p := 2; p <= usableCores; p++ {
		if usableCores%p == 0 {
			parts = append(parts, p)
		}
	}
	return SearchSpace{
		Partitions: parts,
		TilesFor:   func(p int) []int { return CandidateTiles(p, maxT) },
	}
}

// Size reports the number of (P, T) points in the space.
func (s SearchSpace) Size() int {
	n := 0
	for _, p := range s.Partitions {
		n += len(s.TilesFor(p))
	}
	return n
}

// TuneResult is the outcome of a search.
type TuneResult struct {
	// Partitions and Tiles are the best configuration found.
	Partitions int
	Tiles      int
	// Seconds is the best configuration's measured time.
	Seconds float64
	// Evaluations counts measured points (the search cost the
	// paper's heuristics exist to reduce).
	Evaluations int
}

// TuneCoordinateDescent searches the space one axis at a time instead
// of exhaustively: it fixes a representative tile count per partition
// candidate to pick the best P, then sweeps T at that P, optionally
// iterating until the choice stabilizes. Cost is O(|P| + |T|) per round
// instead of O(|P| × |T|) — the "further reduce the search space"
// direction the paper sketches in §V-C. On unimodal-ish landscapes
// (every application in the paper) it finds the exhaustive optimum or
// lands within a few percent; the tests quantify this on the MM
// landscape.
func TuneCoordinateDescent(space SearchSpace, eval EvalFunc, rounds int) (TuneResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	if len(space.Partitions) == 0 {
		return TuneResult{}, fmt.Errorf("core: empty search space")
	}
	res := TuneResult{Seconds: math.Inf(1)}
	cache := map[[2]int]float64{}
	measure := func(p, t int) (float64, error) {
		if v, ok := cache[[2]int{p, t}]; ok {
			return v, nil
		}
		v, err := eval(p, t)
		if err != nil {
			return 0, fmt.Errorf("core: evaluating P=%d T=%d: %w", p, t, err)
		}
		res.Evaluations++
		cache[[2]int{p, t}] = v
		return v, nil
	}
	// Representative tile for a partition count: the middle pruned
	// candidate, so each P is judged under a plausible T.
	repTile := func(p int) int {
		ts := space.TilesFor(p)
		if len(ts) == 0 {
			return p
		}
		return ts[len(ts)/2]
	}

	bestP, bestT := space.Partitions[0], repTile(space.Partitions[0])
	for round := 0; round < rounds; round++ {
		prevP, prevT := bestP, bestT
		// Axis 1: partitions, tiles fixed.
		bestSec := math.Inf(1)
		for _, p := range space.Partitions {
			t := bestT
			if round == 0 {
				t = repTile(p)
			}
			sec, err := measure(p, t)
			if err != nil {
				return TuneResult{}, err
			}
			if sec < bestSec {
				bestSec, bestP = sec, p
			}
		}
		// Axis 2: tiles, partitions fixed.
		bestSec = math.Inf(1)
		for _, t := range space.TilesFor(bestP) {
			sec, err := measure(bestP, t)
			if err != nil {
				return TuneResult{}, err
			}
			if sec < bestSec {
				bestSec, bestT = sec, t
			}
		}
		res.Partitions, res.Tiles, res.Seconds = bestP, bestT, bestSec
		if bestP == prevP && bestT == prevT {
			break
		}
	}
	return res, nil
}

// TuneGuided prunes the search with a cheap predictor: every point of
// the space is scored with predict (an analytic model — microseconds
// per point), the topK best-predicted candidates are measured with
// eval, and the best measurement wins. Evaluations counts only eval
// calls, so the search cost drops from |space| to topK simulations;
// prediction ties break by (partitions, tiles) so the candidate set is
// deterministic. The model needs to rank well, not predict exactly:
// the true optimum merely has to land in the top k.
func TuneGuided(space SearchSpace, predict, eval EvalFunc, topK int) (TuneResult, error) {
	type scored struct {
		p, t int
		sec  float64
	}
	var cands []scored
	for _, p := range space.Partitions {
		for _, t := range space.TilesFor(p) {
			sec, err := predict(p, t)
			if err != nil {
				return TuneResult{}, fmt.Errorf("core: predicting P=%d T=%d: %w", p, t, err)
			}
			cands = append(cands, scored{p, t, sec})
		}
	}
	if len(cands) == 0 {
		return TuneResult{}, fmt.Errorf("core: empty search space")
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sec != cands[j].sec {
			return cands[i].sec < cands[j].sec
		}
		if cands[i].p != cands[j].p {
			return cands[i].p < cands[j].p
		}
		return cands[i].t < cands[j].t
	})
	if topK < 1 {
		topK = 1
	}
	if topK > len(cands) {
		topK = len(cands)
	}
	best := TuneResult{Seconds: math.Inf(1)}
	for _, c := range cands[:topK] {
		sec, err := eval(c.p, c.t)
		if err != nil {
			return TuneResult{}, fmt.Errorf("core: evaluating P=%d T=%d: %w", c.p, c.t, err)
		}
		best.Evaluations++
		if sec < best.Seconds {
			best.Partitions, best.Tiles, best.Seconds = c.p, c.t, sec
		}
	}
	return best, nil
}

// ClusterEvalFunc measures one (devices, partitions, tiles)
// configuration — partitions and tiles are per device — and returns
// its execution time in seconds (lower is better).
type ClusterEvalFunc func(devices, partitions, tiles int) (seconds float64, err error)

// ClusterTuneResult is the outcome of a joint device-count and
// granularity search.
type ClusterTuneResult struct {
	// Devices, Partitions and Tiles are the best configuration found
	// (partitions and tiles per device).
	Devices, Partitions, Tiles int
	// Seconds is the best configuration's measured time.
	Seconds float64
	// Evaluations counts measured points.
	Evaluations int
}

// TuneCluster searches device count and per-device granularity
// jointly: every d in devices crossed with every (P, T) point of the
// space. This is the multi-MIC extension of Tune — the paper's §VI
// fixes the device count by hand; here the tuner discovers whether the
// second (or fourth) device pays for its staging traffic.
func TuneCluster(devices []int, space SearchSpace, eval ClusterEvalFunc) (ClusterTuneResult, error) {
	best := ClusterTuneResult{Seconds: math.Inf(1)}
	for _, d := range devices {
		if d < 1 {
			return ClusterTuneResult{}, fmt.Errorf("core: device count %d must be positive", d)
		}
		for _, p := range space.Partitions {
			for _, t := range space.TilesFor(p) {
				sec, err := eval(d, p, t)
				if err != nil {
					return ClusterTuneResult{}, fmt.Errorf("core: evaluating D=%d P=%d T=%d: %w", d, p, t, err)
				}
				best.Evaluations++
				if sec < best.Seconds {
					best.Devices, best.Partitions, best.Tiles, best.Seconds = d, p, t, sec
				}
			}
		}
	}
	if math.IsInf(best.Seconds, 1) {
		return ClusterTuneResult{}, fmt.Errorf("core: empty cluster search space")
	}
	return best, nil
}

// TuneClusterGuided prunes the joint search with a cheap predictor:
// every (devices, partitions, tiles) point is scored with predict, the
// topK best-predicted candidates are measured with eval, and the best
// measurement wins — TuneGuided lifted to the multi-device space.
// Prediction ties break by (devices, partitions, tiles) so the
// candidate set is deterministic.
func TuneClusterGuided(devices []int, space SearchSpace, predict, eval ClusterEvalFunc, topK int) (ClusterTuneResult, error) {
	type scored struct {
		d, p, t int
		sec     float64
	}
	var cands []scored
	for _, d := range devices {
		if d < 1 {
			return ClusterTuneResult{}, fmt.Errorf("core: device count %d must be positive", d)
		}
		for _, p := range space.Partitions {
			for _, t := range space.TilesFor(p) {
				sec, err := predict(d, p, t)
				if err != nil {
					return ClusterTuneResult{}, fmt.Errorf("core: predicting D=%d P=%d T=%d: %w", d, p, t, err)
				}
				cands = append(cands, scored{d, p, t, sec})
			}
		}
	}
	if len(cands) == 0 {
		return ClusterTuneResult{}, fmt.Errorf("core: empty cluster search space")
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sec != cands[j].sec {
			return cands[i].sec < cands[j].sec
		}
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		if cands[i].p != cands[j].p {
			return cands[i].p < cands[j].p
		}
		return cands[i].t < cands[j].t
	})
	if topK < 1 {
		topK = 1
	}
	if topK > len(cands) {
		topK = len(cands)
	}
	best := ClusterTuneResult{Seconds: math.Inf(1)}
	for _, c := range cands[:topK] {
		sec, err := eval(c.d, c.p, c.t)
		if err != nil {
			return ClusterTuneResult{}, fmt.Errorf("core: evaluating D=%d P=%d T=%d: %w", c.d, c.p, c.t, err)
		}
		best.Evaluations++
		if sec < best.Seconds {
			best.Devices, best.Partitions, best.Tiles, best.Seconds = c.d, c.p, c.t, sec
		}
	}
	return best, nil
}

// Tune evaluates every point of the space and returns the fastest.
func Tune(space SearchSpace, eval EvalFunc) (TuneResult, error) {
	best := TuneResult{Seconds: math.Inf(1)}
	for _, p := range space.Partitions {
		for _, t := range space.TilesFor(p) {
			sec, err := eval(p, t)
			if err != nil {
				return TuneResult{}, fmt.Errorf("core: evaluating P=%d T=%d: %w", p, t, err)
			}
			best.Evaluations++
			if sec < best.Seconds {
				best.Partitions, best.Tiles, best.Seconds = p, t, sec
			}
		}
	}
	if math.IsInf(best.Seconds, 1) {
		return TuneResult{}, fmt.Errorf("core: empty search space")
	}
	return best, nil
}
