package core

import "micstream/internal/sim"

// PipelineIdeal computes the execution time of n identical tasks under
// perfect software pipelining, where each task consists of the given
// sequential stages and unlimited copies of distinct stages may run
// concurrently (Fig. 1's idealized picture, and the "Ideal" line of
// Fig. 6): the first task fills the pipe, every further task costs only
// the bottleneck stage.
func PipelineIdeal(stages []sim.Duration, n int) sim.Duration {
	if n <= 0 || len(stages) == 0 {
		return 0
	}
	var fill, bottleneck sim.Duration
	for _, s := range stages {
		fill += s
		if s > bottleneck {
			bottleneck = s
		}
	}
	return fill + sim.Duration(n-1)*bottleneck
}

// PipelineSerial computes the same n tasks with no overlap at all (the
// single-stream baseline of Fig. 1).
func PipelineSerial(stages []sim.Duration, n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	var sum sim.Duration
	for _, s := range stages {
		sum += s
	}
	return sum * sim.Duration(n)
}

// HalfDuplexIdeal computes the best achievable time for n tasks whose
// transfer stages share one half-duplex link while the kernel stage
// runs on a separate resource: the link carries (h2d + d2h) per task
// serially, so the makespan is bounded below by both the total link
// occupancy and the total kernel occupancy, plus the unavoidable fill
// and drain. This is the tight bound for the measured "Streamed" line
// of Fig. 6 — the gap between it and PipelineIdeal is the paper's
// "full overlap seems not achievable" observation (§IV-A-2).
func HalfDuplexIdeal(h2d, exe, d2h sim.Duration, n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	link := (h2d + d2h) * sim.Duration(n)
	kernel := exe * sim.Duration(n)
	// Fill: first H2D before any kernel; drain: last D2H after the
	// last kernel.
	if link+0 >= kernel {
		return link + exe // link-bound: one kernel sticks out
	}
	return kernel + h2d + d2h // kernel-bound: first H2D and last D2H stick out
}
