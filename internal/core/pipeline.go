// Package core is the paper's contribution layer: it turns a tiled
// offload workload — tasks with H2D, kernel-execution and D2H stages —
// into enqueues on an hstreams context, measures the outcome, and
// implements the task/resource-granularity tuner with the
// search-space-reduction heuristics of §V-C.
//
// The package separates three concerns:
//
//   - pipeline.go: executing a task DAG over the streams of a context
//     (temporal + spatial sharing);
//   - tuner.go / heuristics.go: choosing the number of partitions P and
//     tiles T, either exhaustively or with the paper's pruned space;
//   - analyze.go: quantifying overlap from traces and computing the
//     ideal fully-overlapped pipeline time the paper plots in Fig. 6.
package core

import (
	"fmt"

	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/sim"
	"micstream/internal/trace"
)

// TransferSpec names a contiguous element range of a buffer to move.
type TransferSpec struct {
	// Buf is the buffer to transfer from/to.
	Buf *hstreams.Buffer
	// Off is the first element of the range.
	Off int
	// N is the element count.
	N int
	// AfterTask, when ≥ 0, gates the transfer on the completion
	// (kernel plus outputs) of the referenced task — the staging
	// pattern for moving a producer's tile to a consumer on another
	// device (Fig. 11's multi-MIC runs). Only H2D transfers honour
	// it; a task's D2H outputs are already ordered after its kernel
	// by stream FIFO. Use Xfer for the common ungated case; the zero
	// value of this field is task 0, not "none".
	AfterTask int
}

// Xfer builds an ungated TransferSpec.
func Xfer(buf *hstreams.Buffer, off, n int) TransferSpec {
	return TransferSpec{Buf: buf, Off: off, N: n, AfterTask: -1}
}

// XferAfter builds a TransferSpec gated on another task's completion.
func XferAfter(buf *hstreams.Buffer, off, n, afterTask int) TransferSpec {
	return TransferSpec{Buf: buf, Off: off, N: n, AfterTask: afterTask}
}

// Task is one unit of offloaded work: input transfers, one kernel, and
// output transfers, as in the paper's flow diagrams (Fig. 4).
type Task struct {
	// ID identifies the task; DependsOn references these IDs. IDs
	// must be unique within one EnqueuePhase call.
	ID int
	// H2D lists input transfers; they precede the kernel in the
	// task's stream.
	H2D []TransferSpec
	// Cost drives the timing model for the kernel.
	Cost device.KernelCost
	// Body is the kernel's functional implementation (may be nil).
	Body func(*hstreams.KernelCtx)
	// D2H lists output transfers; they follow the kernel.
	D2H []TransferSpec
	// DependsOn lists tasks whose kernels must complete before this
	// task's kernel starts (device-resident data dependencies, as
	// between Cholesky tiles). Referenced tasks must appear earlier
	// in the slice passed to EnqueuePhase.
	DependsOn []int
	// StreamHint pins the task to a specific stream; -1 (or any
	// negative value) selects round-robin placement.
	StreamHint int
	// TransferOnly marks a task that ships data but launches no
	// kernel (e.g. a shared input panel used by many compute tasks).
	// Its "kernel" event — what dependents gate on — is the
	// completion of its last H2D. Cost, Body and D2H must be empty.
	TransferOnly bool
}

// PhaseEvents indexes the completion events of an enqueued phase.
type PhaseEvents struct {
	// Kernel maps task ID to its kernel-completion event.
	Kernel map[int]*hstreams.Event
	// Done maps task ID to its final event (last D2H, or the kernel
	// when the task has no outputs).
	Done map[int]*hstreams.Event
}

// EnqueuePhase enqueues tasks onto the context's streams without
// synchronizing: round-robin across all streams unless a task carries a
// StreamHint. Within a stream the enqueue order of a task is H2D*,
// kernel, D2H*, so a task's own stages are FIFO-ordered; cross-task
// dependencies gate kernels via events. Tasks must be listed in
// topological order of DependsOn.
func EnqueuePhase(ctx *hstreams.Context, tasks []*Task) (*PhaseEvents, error) {
	ev := &PhaseEvents{
		Kernel: make(map[int]*hstreams.Event, len(tasks)),
		Done:   make(map[int]*hstreams.Event, len(tasks)),
	}
	n := ctx.NumStreams()
	rr := 0
	for i, t := range tasks {
		if _, dup := ev.Kernel[t.ID]; dup {
			return nil, fmt.Errorf("core: duplicate task id %d", t.ID)
		}
		var s *hstreams.Stream
		if t.StreamHint >= 0 {
			if t.StreamHint >= n {
				return nil, fmt.Errorf("core: task %d stream hint %d out of range [0,%d)", t.ID, t.StreamHint, n)
			}
			s = ctx.Stream(t.StreamHint)
		} else {
			s = ctx.Stream(rr % n)
			rr++
		}
		var deps []*hstreams.Event
		for _, d := range t.DependsOn {
			kev, ok := ev.Kernel[d]
			if !ok {
				return nil, fmt.Errorf("core: task %d depends on %d which is not enqueued yet (tasks %d positions in)", t.ID, d, i)
			}
			deps = append(deps, kev)
		}
		var lastH2D *hstreams.Event
		for xi, x := range t.H2D {
			var xdeps []*hstreams.Event
			if t.TransferOnly && xi == 0 {
				// With no kernel to gate, the task's declared
				// dependencies gate its first transfer (stream
				// FIFO orders the rest).
				xdeps = append(xdeps, deps...)
			}
			if x.AfterTask >= 0 {
				gate, ok := ev.Done[x.AfterTask]
				if !ok {
					return nil, fmt.Errorf("core: task %d H2D gated on %d which is not enqueued yet", t.ID, x.AfterTask)
				}
				xdeps = append(xdeps, gate)
			}
			hev, err := s.EnqueueH2D(x.Buf, x.Off, x.N, t.ID, xdeps...)
			if err != nil {
				return nil, fmt.Errorf("core: task %d H2D: %w", t.ID, err)
			}
			lastH2D = hev
		}
		if t.TransferOnly {
			if t.Body != nil || len(t.D2H) > 0 {
				return nil, fmt.Errorf("core: transfer-only task %d carries a body or outputs", t.ID)
			}
			if lastH2D == nil {
				return nil, fmt.Errorf("core: transfer-only task %d has no transfers", t.ID)
			}
			// Honour declared dependencies even without a kernel:
			// a pathological graph could gate a pure transfer.
			ev.Kernel[t.ID] = lastH2D
			ev.Done[t.ID] = lastH2D
			continue
		}
		kev := s.EnqueueKernel(t.Cost, t.ID, t.Body, deps...)
		ev.Kernel[t.ID] = kev
		last := kev
		for _, x := range t.D2H {
			dev, err := s.EnqueueD2H(x.Buf, x.Off, x.N, t.ID)
			if err != nil {
				return nil, fmt.Errorf("core: task %d D2H: %w", t.ID, err)
			}
			last = dev
		}
		ev.Done[t.ID] = last
	}
	return ev, nil
}

// Run enqueues tasks, waits for completion, and summarizes the run.
// flops is the workload's total useful floating-point work, used for
// the GFLOPS metric. The wall-clock window starts at the context's
// current virtual time, so Run composes with prior phases.
func Run(ctx *hstreams.Context, tasks []*Task, flops float64) (Result, error) {
	start := ctx.Now()
	if _, err := EnqueuePhase(ctx, tasks); err != nil {
		return Result{}, err
	}
	end := ctx.Barrier()
	return Summarize(ctx, flops, end.Sub(start)), nil
}

// Summarize assembles a Result from the context's trace and the
// measured wall time.
func Summarize(ctx *hstreams.Context, flops float64, wall sim.Duration) Result {
	r := Result{
		Wall:       wall,
		Flops:      flops,
		Partitions: ctx.Config().Partitions,
		Streams:    ctx.NumStreams(),
	}
	if wall > 0 && flops > 0 {
		r.GFlops = flops / wall.Seconds() / 1e9
	}
	if rec := ctx.Recorder(); rec != nil {
		r.H2DBusy = rec.BusyTime(trace.H2D)
		r.D2HBusy = rec.BusyTime(trace.D2H)
		r.KernelBusy = rec.BusyTime(trace.Kernel)
		r.OverlapFraction = rec.TransferComputeOverlap()
	}
	return r
}

// Result summarizes one experiment run.
type Result struct {
	// Wall is the virtual wall-clock duration of the run.
	Wall sim.Duration
	// Flops is the useful floating-point work attributed to the run.
	Flops float64
	// GFlops is the achieved throughput (0 when Flops unknown).
	GFlops float64
	// Partitions and Streams record the resource granularity used.
	Partitions int
	Streams    int
	// H2DBusy, D2HBusy and KernelBusy are per-stage busy times from
	// the trace (zero when tracing was disabled).
	H2DBusy, D2HBusy, KernelBusy sim.Duration
	// OverlapFraction is the fraction of transfer time hidden behind
	// kernel execution (temporal sharing achieved).
	OverlapFraction float64
}

// String renders the result compactly for logs and CLIs.
func (r Result) String() string {
	if r.Flops > 0 {
		return fmt.Sprintf("%.3fms (%.1f GFLOPS, overlap %.0f%%)",
			r.Wall.Milliseconds(), r.GFlops, r.OverlapFraction*100)
	}
	return fmt.Sprintf("%.3fms (overlap %.0f%%)", r.Wall.Milliseconds(), r.OverlapFraction*100)
}
