package core

import (
	"testing"

	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/sim"
	"micstream/internal/workload"
)

// randomDAG builds a topologically ordered random task graph: each
// task may depend on up to two earlier tasks and may carry transfers.
func randomDAG(rng *workload.RNG, buf *hstreams.Buffer, n int) []*Task {
	tasks := make([]*Task, 0, n)
	for i := 0; i < n; i++ {
		t := &Task{
			ID:         i,
			Cost:       device.KernelCost{Name: "k", Flops: float64(1 + rng.Intn(2e7))},
			StreamHint: -1,
		}
		for d := 0; d < 2 && i > 0; d++ {
			if rng.Intn(2) == 0 {
				t.DependsOn = append(t.DependsOn, rng.Intn(i))
			}
		}
		if rng.Intn(3) == 0 {
			t.H2D = append(t.H2D, Xfer(buf, 0, 1+rng.Intn(buf.Len()-1)))
		}
		if rng.Intn(3) == 0 {
			t.D2H = append(t.D2H, Xfer(buf, 0, 1+rng.Intn(buf.Len()-1)))
		}
		tasks = append(tasks, t)
	}
	return tasks
}

// Property: every dependency is honoured — a task's kernel completes
// strictly after each dependency's kernel.
func TestPropertyRandomDAGRespectsDependencies(t *testing.T) {
	rng := workload.NewRNG(2024)
	for trial := 0; trial < 30; trial++ {
		ctx, err := hstreams.Init(hstreams.Config{Partitions: 1 + int(rng.Intn(8)), Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		buf := hstreams.AllocVirtual(ctx, "b", 1<<20, 4)
		tasks := randomDAG(rng, buf, 40)
		ev, err := EnqueuePhase(ctx, tasks)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Barrier()
		for _, task := range tasks {
			for _, dep := range task.DependsOn {
				if ev.Kernel[task.ID].CompletedAt() <= ev.Kernel[dep].CompletedAt() {
					t.Fatalf("trial %d: task %d (done %v) did not wait for dep %d (done %v)",
						trial, task.ID, ev.Kernel[task.ID].CompletedAt(),
						dep, ev.Kernel[dep].CompletedAt())
				}
			}
		}
	}
}

// Property: the makespan is bounded below by the DAG's critical path
// through kernel durations (scheduling can add waiting, never remove
// work from the longest chain).
func TestPropertyMakespanAtLeastCriticalPath(t *testing.T) {
	rng := workload.NewRNG(77)
	for trial := 0; trial < 20; trial++ {
		parts := 1 + int(rng.Intn(8))
		ctx, err := hstreams.Init(hstreams.Config{Partitions: parts, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		buf := hstreams.AllocVirtual(ctx, "b", 1<<20, 4)
		tasks := randomDAG(rng, buf, 30)
		// Critical path over kernel durations alone (transfers and
		// queueing only lengthen the schedule). Kernel durations
		// depend on the partition; use the fastest partition as the
		// lower bound.
		durOf := func(c device.KernelCost) sim.Duration {
			d := ctx.Device(0).Partition(0).KernelTime(c)
			for _, p := range ctx.Device(0).Partitions() {
				if v := p.KernelTime(c); v < d {
					d = v
				}
			}
			return d
		}
		longest := make([]sim.Duration, len(tasks))
		var critical sim.Duration
		for i, task := range tasks {
			d := durOf(task.Cost)
			best := sim.Duration(0)
			for _, dep := range task.DependsOn {
				if longest[dep] > best {
					best = longest[dep]
				}
			}
			longest[i] = best + d
			if longest[i] > critical {
				critical = longest[i]
			}
		}
		start := ctx.Now()
		if _, err := EnqueuePhase(ctx, tasks); err != nil {
			t.Fatal(err)
		}
		makespan := ctx.Barrier().Sub(start)
		if makespan < critical {
			t.Fatalf("trial %d: makespan %v below critical path %v", trial, makespan, critical)
		}
	}
}

// Property: for a uniform tiled pipeline the simulated makespan lies
// between the analytic bounds — at least the half-duplex ideal (the
// link must carry every byte serially) and at most the fully serial
// schedule. This cross-validates the analyzer in analyze.go against
// the discrete-event engine.
func TestPropertySimulationWithinAnalyticBounds(t *testing.T) {
	rng := workload.NewRNG(31)
	for trial := 0; trial < 30; trial++ {
		tiles := 2 + rng.Intn(24)
		parts := 1 + rng.Intn(8)
		bytes := (1 + rng.Intn(64)) << 16
		flops := float64(1+rng.Intn(50)) * 1e8

		ctx, err := hstreams.Init(hstreams.Config{Partitions: parts, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		buf := hstreams.AllocVirtual(ctx, "b", bytes*tiles, 1)
		cost := device.KernelCost{Name: "k", Flops: flops}
		var tasks []*Task
		for i := 0; i < tiles; i++ {
			tasks = append(tasks, &Task{
				ID:         i,
				H2D:        []TransferSpec{Xfer(buf, i*bytes, bytes)},
				Cost:       cost,
				D2H:        []TransferSpec{Xfer(buf, i*bytes, bytes)},
				StreamHint: -1,
			})
		}
		res, err := Run(ctx, tasks, 0)
		if err != nil {
			t.Fatal(err)
		}

		xfer := ctx.Config().Link.TransferTime(int64(bytes))
		// The slowest partition bounds the per-tile kernel time.
		var kern sim.Duration
		for _, p := range ctx.Device(0).Partitions() {
			if v := p.KernelTime(cost); v > kern {
				kern = v
			}
		}
		fastKern := kern
		for _, p := range ctx.Device(0).Partitions() {
			if v := p.KernelTime(cost); v < fastKern {
				fastKern = v
			}
		}
		lower := HalfDuplexIdeal(xfer, fastKern, xfer, tiles)
		// With P partitions, kernels run at most P at a time:
		// the serial bound uses one stream's worth of every stage.
		upper := PipelineSerial([]sim.Duration{xfer, kern, xfer}, tiles)
		if parts > 1 {
			// Lower bound must also ignore kernel parallelism
			// beyond the link constraint; HalfDuplexIdeal's
			// kernel-bound branch assumes one kernel at a time,
			// so relax it to the link-only bound for multi-
			// partition runs.
			lower = 2 * xfer * sim.Duration(tiles)
		}
		if res.Wall < lower {
			t.Fatalf("trial %d (T=%d P=%d): wall %v below lower bound %v", trial, tiles, parts, res.Wall, lower)
		}
		if res.Wall > upper {
			t.Fatalf("trial %d (T=%d P=%d): wall %v above serial bound %v", trial, tiles, parts, res.Wall, upper)
		}
	}
}

// Property: Run's wall time equals the barrier-to-barrier window and
// its GFLOPS metric is consistent with it.
func TestPropertyResultConsistency(t *testing.T) {
	rng := workload.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		ctx, err := hstreams.Init(hstreams.Config{Partitions: 2, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		buf := hstreams.AllocVirtual(ctx, "b", 1<<20, 4)
		tasks := randomDAG(rng, buf, 10)
		flops := float64(1 + rng.Intn(1e9))
		res, err := Run(ctx, tasks, flops)
		if err != nil {
			t.Fatal(err)
		}
		want := flops / res.Wall.Seconds() / 1e9
		if diff := res.GFlops/want - 1; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: GFLOPS %v inconsistent with wall %v", trial, res.GFlops, res.Wall)
		}
		if res.OverlapFraction < 0 || res.OverlapFraction > 1 {
			t.Fatalf("trial %d: overlap fraction %v out of [0,1]", trial, res.OverlapFraction)
		}
	}
}
