package hstreams

import (
	"testing"

	"micstream/internal/device"
	"micstream/internal/sim"
)

func TestBufferAccessors(t *testing.T) {
	c := newCtx(t, Config{ExecuteKernels: true})
	host := []float32{1, 2, 3}
	b := Alloc1D(c, "vec", host)
	if b.Name() != "vec" {
		t.Fatalf("name = %q", b.Name())
	}
	if b.Len() != 3 || b.Bytes() != 12 {
		t.Fatalf("len=%d bytes=%d", b.Len(), b.Bytes())
	}
	hs := HostSlice[float32](b)
	if &hs[0] != &host[0] {
		t.Fatal("HostSlice does not alias the caller's slice")
	}
}

func TestHostSlicePanicsOnVirtualAndMismatch(t *testing.T) {
	c := newCtx(t, Config{})
	v := AllocVirtual(c, "v", 4, 8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("HostSlice on virtual buffer did not panic")
			}
		}()
		HostSlice[float64](v)
	}()
	real := Alloc1D(c, "r", []int32{1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("HostSlice type mismatch did not panic")
			}
		}()
		HostSlice[float64](real)
	}()
}

func TestAllocVirtualRejectsBadShape(t *testing.T) {
	c := newCtx(t, Config{})
	for _, bad := range [][2]int{{-1, 4}, {4, 0}, {4, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AllocVirtual(%v) did not panic", bad)
				}
			}()
			AllocVirtual(c, "x", bad[0], bad[1])
		}()
	}
}

func TestBufferElementSizes(t *testing.T) {
	c := newCtx(t, Config{})
	cases := []struct {
		b    *Buffer
		want int64
	}{
		{Alloc1D(c, "f64", make([]float64, 2)), 16},
		{Alloc1D(c, "f32", make([]float32, 2)), 8},
		{Alloc1D(c, "i64", make([]int64, 2)), 16},
		{Alloc1D(c, "i32", make([]int32, 2)), 8},
		{Alloc1D(c, "i16", make([]int16, 2)), 4},
		{Alloc1D(c, "u16", make([]uint16, 2)), 4},
		{Alloc1D(c, "u8", make([]uint8, 2)), 2},
		{Alloc1D(c, "i8", make([]int8, 2)), 2},
		{Alloc1D(c, "b", make([]bool, 2)), 2},
		{Alloc1D(c, "int", make([]int, 2)), 16},
		{Alloc1D(c, "uint", make([]uint, 2)), 16},
		{Alloc1D(c, "u32", make([]uint32, 2)), 8},
		{Alloc1D(c, "u64", make([]uint64, 2)), 16},
		{Alloc1D(c, "c64", make([]complex64, 2)), 16},
	}
	for _, tc := range cases {
		if tc.b.Bytes() != tc.want {
			t.Errorf("%s: bytes = %d, want %d", tc.b.Name(), tc.b.Bytes(), tc.want)
		}
	}
}

func TestUnsupportedElementTypePanics(t *testing.T) {
	c := newCtx(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("struct element type accepted")
		}
	}()
	type weird struct{ a, b float64 }
	Alloc1D(c, "w", make([]weird, 1))
}

func TestContextAccessors(t *testing.T) {
	c := newCtx(t, Config{Partitions: 2})
	if c.Engine() == nil {
		t.Fatal("nil engine")
	}
	if c.Link(0) == nil {
		t.Fatal("nil link")
	}
	s := c.Stream(1)
	if s.Partition() == nil || s.Partition().Index() != 1 {
		t.Fatal("stream/partition wiring broken")
	}
	// Drain runs everything to quiescence.
	s.EnqueueKernel(device.KernelCost{Flops: 1e6}, 0, nil)
	end := c.Drain()
	if end <= 0 {
		t.Fatalf("drain ended at %v", end)
	}
	if c.Engine().Pending() != 0 {
		t.Fatal("events left after drain")
	}
}

func TestStreamSyncBlocksOnlyThatStream(t *testing.T) {
	c := newCtx(t, Config{Partitions: 2})
	slow := device.KernelCost{Name: "slow", Flops: 5e9}
	fast := device.KernelCost{Name: "fast", Flops: 1e6}
	c.Stream(0).EnqueueKernel(slow, 0, nil)
	evFast := c.Stream(1).EnqueueKernel(fast, 1, nil)
	c.Stream(1).Sync()
	if !evFast.Done() {
		t.Fatal("Sync did not complete the fast stream")
	}
	// The slow stream may still be running: host time equals the
	// fast completion, not the slow one.
	if c.Now() != evFast.CompletedAt() {
		t.Fatalf("host at %v, want %v (fast stream's completion)", c.Now(), evFast.CompletedAt())
	}
	if sim.Duration(c.Now()) >= c.Device(0).Partition(0).KernelTime(slow) {
		t.Fatal("stream sync appears to have waited for the slow stream too")
	}
}
