package hstreams

import (
	"testing"

	"micstream/internal/device"
	"micstream/internal/pcie"
	"micstream/internal/sim"
	"micstream/internal/trace"
)

func newCtx(t *testing.T, cfg Config) *Context {
	t.Helper()
	c, err := Init(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInitDefaults(t *testing.T) {
	c := newCtx(t, Config{})
	if c.NumDevices() != 1 {
		t.Fatalf("devices = %d, want 1", c.NumDevices())
	}
	if c.NumStreams() != 1 {
		t.Fatalf("streams = %d, want 1", c.NumStreams())
	}
	if c.Config().Device.Name != "Xeon Phi 31SP" {
		t.Fatalf("default device = %q", c.Config().Device.Name)
	}
	if c.Config().Link.BandwidthBps != pcie.DefaultConfig().BandwidthBps {
		t.Fatal("default link config not applied")
	}
}

func TestInitTopology(t *testing.T) {
	c := newCtx(t, Config{Devices: 2, Partitions: 4, StreamsPerPartition: 2})
	if c.NumStreams() != 16 {
		t.Fatalf("streams = %d, want 16", c.NumStreams())
	}
	// Stream enumeration is device-major, partition-major.
	s := c.StreamAt(1, 3, 1)
	if s.DeviceIndex() != 1 || s.Partition().Index() != 3 {
		t.Fatalf("StreamAt(1,3,1) bound to dev %d part %d", s.DeviceIndex(), s.Partition().Index())
	}
	if s.ID() != 15 {
		t.Fatalf("StreamAt(1,3,1).ID = %d, want 15", s.ID())
	}
	// Streams sharing a partition reference the same object.
	if c.StreamAt(0, 2, 0).Partition() != c.StreamAt(0, 2, 1).Partition() {
		t.Fatal("streams of one place should share the partition")
	}
}

func TestInitRejectsBadConfig(t *testing.T) {
	if _, err := Init(Config{Devices: -1}); err == nil {
		t.Fatal("negative device count accepted")
	}
	if _, err := Init(Config{StreamsPerPartition: -2}); err == nil {
		t.Fatal("negative streams per partition accepted")
	}
	bad := Config{}
	bad.Device = device.Xeon31SP()
	bad.Device.ClockHz = -1
	if _, err := Init(bad); err == nil {
		t.Fatal("invalid device config accepted")
	}
}

func TestStreamFIFOOrdering(t *testing.T) {
	c := newCtx(t, Config{Trace: true})
	s := c.Stream(0)
	cost := device.KernelCost{Name: "k", Flops: 1e8}
	e1 := s.EnqueueKernel(cost, 0, nil)
	e2 := s.EnqueueKernel(cost, 1, nil)
	c.Barrier()
	if !e1.Done() || !e2.Done() {
		t.Fatal("events not resolved after barrier")
	}
	if e2.CompletedAt() <= e1.CompletedAt() {
		t.Fatalf("FIFO violated: %v then %v", e1.CompletedAt(), e2.CompletedAt())
	}
}

func TestKernelsOnDifferentPartitionsOverlap(t *testing.T) {
	c := newCtx(t, Config{Partitions: 2, Trace: true})
	cost := device.KernelCost{Name: "k", Flops: 5e9}
	e0 := c.Stream(0).EnqueueKernel(cost, 0, nil)
	e1 := c.Stream(1).EnqueueKernel(cost, 1, nil)
	c.Barrier()
	// Both kernels are identical and started together on disjoint
	// partitions: completion must be simultaneous, i.e. spatial
	// sharing worked.
	if e0.CompletedAt() != e1.CompletedAt() {
		t.Fatalf("parallel kernels finished at %v and %v", e0.CompletedAt(), e1.CompletedAt())
	}
}

func TestStreamsSharingPartitionSerialize(t *testing.T) {
	c := newCtx(t, Config{Partitions: 1, StreamsPerPartition: 2, Trace: true})
	cost := device.KernelCost{Name: "k", Flops: 5e9}
	e0 := c.Stream(0).EnqueueKernel(cost, 0, nil)
	e1 := c.Stream(1).EnqueueKernel(cost, 1, nil)
	c.Barrier()
	if e1.CompletedAt() <= e0.CompletedAt() {
		t.Fatal("streams sharing a place must serialize kernels")
	}
}

// The core temporal-sharing behaviour (paper Fig. 1): with two streams,
// the H2D of task 1 overlaps the kernel of task 0, so two pipelined
// tasks finish sooner than 2× one task, but the two H2D transfers still
// serialize on the link.
func TestPipelineOverlapsTransferWithCompute(t *testing.T) {
	mkrun := func(streams int) sim.Time {
		c := newCtx(t, Config{Partitions: streams, Trace: true})
		buf := AllocVirtual(c, "a", 1<<22, 4) // 16 MB
		cost := device.KernelCost{Name: "k", Flops: 3e9}
		for task := 0; task < 2; task++ {
			s := c.Stream(task % streams)
			h, err := s.EnqueueH2D(buf, 0, buf.Len(), task)
			if err != nil {
				t.Fatal(err)
			}
			_ = h
			s.EnqueueKernel(cost, task, nil)
			if _, err := s.EnqueueD2H(buf, 0, buf.Len(), task); err != nil {
				t.Fatal(err)
			}
		}
		return c.Barrier()
	}
	serial := mkrun(1)
	streamed := mkrun(2)
	if streamed >= serial {
		t.Fatalf("2-stream pipeline (%v) not faster than single stream (%v)", streamed, serial)
	}
}

func TestTransfersOfDifferentStreamsSerializeOnLink(t *testing.T) {
	c := newCtx(t, Config{Partitions: 2, Trace: true})
	buf := AllocVirtual(c, "a", 1<<20, 1)
	e0, err := c.Stream(0).EnqueueH2D(buf, 0, buf.Len(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := c.Stream(1).EnqueueH2D(buf, 0, buf.Len(), 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Barrier()
	want := e0.CompletedAt().Add(c.Config().Link.TransferTime(int64(buf.Len())))
	if e1.CompletedAt() != want {
		t.Fatalf("second transfer completed at %v, want %v (serialized after first)", e1.CompletedAt(), want)
	}
}

func TestCrossStreamDependency(t *testing.T) {
	c := newCtx(t, Config{Partitions: 2, Trace: true})
	cost := device.KernelCost{Name: "k", Flops: 1e9}
	e0 := c.Stream(0).EnqueueKernel(cost, 0, nil)
	// Stream 1's kernel must wait for stream 0's even though the
	// partitions are disjoint.
	e1 := c.Stream(1).EnqueueKernel(cost, 1, nil, e0)
	c.Barrier()
	if e1.CompletedAt() <= e0.CompletedAt() {
		t.Fatal("dependency across streams not honoured")
	}
	// Without the dep they would have completed simultaneously; with
	// it the gap is at least a full kernel duration.
	gap := e1.CompletedAt().Sub(e0.CompletedAt())
	kt := c.Device(0).Partition(1).KernelTime(cost)
	if gap < kt {
		t.Fatalf("gap %v < kernel time %v", gap, kt)
	}
}

func TestFunctionalH2DKernelD2H(t *testing.T) {
	c := newCtx(t, Config{ExecuteKernels: true, Trace: true})
	host := []float64{1, 2, 3, 4}
	buf := Alloc1D(c, "v", host)
	s := c.Stream(0)
	if _, err := s.EnqueueH2D(buf, 0, 4, 0); err != nil {
		t.Fatal(err)
	}
	s.EnqueueKernel(device.KernelCost{Name: "inc", Flops: 4}, 0, func(k *KernelCtx) {
		dev := DeviceSlice[float64](buf, k.DeviceIndex)
		for i := range dev {
			dev[i] += 10
		}
	})
	if _, err := s.EnqueueD2H(buf, 0, 4, 0); err != nil {
		t.Fatal(err)
	}
	c.Barrier()
	want := []float64{11, 12, 13, 14}
	for i := range want {
		if host[i] != want[i] {
			t.Fatalf("host[%d] = %v, want %v", i, host[i], want[i])
		}
	}
}

func TestPartialTransfers(t *testing.T) {
	c := newCtx(t, Config{ExecuteKernels: true})
	host := []float32{1, 2, 3, 4, 5, 6}
	buf := Alloc1D(c, "v", host)
	s := c.Stream(0)
	if _, err := s.EnqueueH2D(buf, 2, 2, 0); err != nil {
		t.Fatal(err)
	}
	c.Barrier()
	dev := DeviceSlice[float32](buf, 0)
	if dev[2] != 3 || dev[3] != 4 {
		t.Fatalf("partial H2D wrong: %v", dev)
	}
	if dev[0] != 0 || dev[5] != 0 {
		t.Fatalf("partial H2D touched out-of-range elements: %v", dev)
	}
	// Mutate device, pull back only one element.
	dev[2] = 42
	dev[3] = 43
	if _, err := s.EnqueueD2H(buf, 3, 1, 0); err != nil {
		t.Fatal(err)
	}
	c.Barrier()
	if host[3] != 43 {
		t.Fatalf("partial D2H missed: %v", host)
	}
	if host[2] != 3 {
		t.Fatalf("partial D2H overwrote out-of-range element: %v", host)
	}
}

func TestTimingOnlyModeMovesNoData(t *testing.T) {
	c := newCtx(t, Config{ExecuteKernels: false})
	host := []float64{1, 2}
	buf := Alloc1D(c, "v", host)
	s := c.Stream(0)
	ran := false
	if _, err := s.EnqueueH2D(buf, 0, 2, 0); err != nil {
		t.Fatal(err)
	}
	s.EnqueueKernel(device.KernelCost{Flops: 10}, 0, func(*KernelCtx) { ran = true })
	c.Barrier()
	if ran {
		t.Fatal("kernel body ran in timing-only mode")
	}
	dev := DeviceSlice[float64](buf, 0)
	if dev[0] != 0 {
		t.Fatal("H2D moved data in timing-only mode")
	}
}

func TestTransferValidation(t *testing.T) {
	c := newCtx(t, Config{})
	buf := AllocVirtual(c, "v", 10, 4)
	s := c.Stream(0)
	if _, err := s.EnqueueH2D(buf, 8, 4, 0); err == nil {
		t.Fatal("out-of-range transfer accepted")
	}
	if _, err := s.EnqueueD2H(buf, -1, 2, 0); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := s.EnqueueH2D(nil, 0, 0, 0); err == nil {
		t.Fatal("nil buffer accepted")
	}
}

func TestVirtualBufferPanicsOnAccess(t *testing.T) {
	c := newCtx(t, Config{})
	buf := AllocVirtual(c, "v", 10, 8)
	if buf.Bytes() != 80 {
		t.Fatalf("Bytes = %d, want 80", buf.Bytes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DeviceSlice on virtual buffer did not panic")
		}
	}()
	DeviceSlice[float64](buf, 0)
}

func TestTypeMismatchPanics(t *testing.T) {
	c := newCtx(t, Config{ExecuteKernels: true})
	buf := Alloc1D(c, "v", []float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("DeviceSlice type mismatch did not panic")
		}
	}()
	DeviceSlice[float32](buf, 0)
}

func TestHostWorkAdvancesClockWithoutBlockingDevice(t *testing.T) {
	c := newCtx(t, Config{Trace: true})
	s := c.Stream(0)
	cost := device.KernelCost{Name: "k", Flops: 5e9}
	ev := s.EnqueueKernel(cost, 0, nil)
	// Host does 1 s of work while the kernel runs.
	c.HostWork(sim.Second, "host-side prep")
	if c.Now() != sim.Time(sim.Second) {
		t.Fatalf("host clock = %v, want 1s", c.Now())
	}
	// The kernel completed during the host window (it takes ≪ 1s).
	if !ev.Done() {
		t.Fatal("device did not progress during host work")
	}
	if ev.CompletedAt() >= sim.Time(sim.Second) {
		t.Fatalf("kernel completed at %v, should have finished during host window", ev.CompletedAt())
	}
}

func TestBarrierIdempotent(t *testing.T) {
	c := newCtx(t, Config{})
	s := c.Stream(0)
	s.EnqueueKernel(device.KernelCost{Flops: 1e6}, 0, nil)
	t1 := c.Barrier()
	t2 := c.Barrier()
	if t1 != t2 {
		t.Fatalf("second barrier moved time: %v -> %v", t1, t2)
	}
	if s.Last() == nil || !s.Last().Done() {
		t.Fatal("stream last event not resolved")
	}
}

func TestWaitNilEventIsNoop(t *testing.T) {
	c := newCtx(t, Config{})
	c.Wait(nil)
	if c.Now() != 0 {
		t.Fatal("Wait(nil) advanced the clock")
	}
}

func TestEventAccessors(t *testing.T) {
	var nilEv *Event
	if nilEv.Done() {
		t.Fatal("nil event reports done")
	}
	c := newCtx(t, Config{})
	ev := c.Stream(0).EnqueueKernel(device.KernelCost{Flops: 1e6}, 0, nil)
	if ev.Done() {
		t.Fatal("event done before simulation ran")
	}
	c.Wait(ev)
	if !ev.Done() || ev.CompletedAt() <= 0 {
		t.Fatalf("event not resolved properly: done=%v at=%v", ev.Done(), ev.CompletedAt())
	}
}

func TestMultiDeviceIndependentLinks(t *testing.T) {
	c := newCtx(t, Config{Devices: 2, Trace: true})
	buf := AllocVirtual(c, "v", 1<<20, 1)
	e0, err := c.Stream(0).EnqueueH2D(buf, 0, buf.Len(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := c.Stream(1).EnqueueH2D(buf, 0, buf.Len(), 1)
	if err != nil {
		t.Fatal(err)
	}
	c.Barrier()
	// Different devices have independent PCIe links: the transfers
	// run concurrently and finish together.
	if e0.CompletedAt() != e1.CompletedAt() {
		t.Fatalf("transfers on separate devices serialized: %v vs %v", e0.CompletedAt(), e1.CompletedAt())
	}
}

func TestTraceRecordsAllStages(t *testing.T) {
	c := newCtx(t, Config{Trace: true})
	buf := AllocVirtual(c, "v", 1<<20, 4)
	s := c.Stream(0)
	if _, err := s.EnqueueH2D(buf, 0, buf.Len(), 0); err != nil {
		t.Fatal(err)
	}
	s.EnqueueKernel(device.KernelCost{Name: "k", Flops: 1e8}, 0, nil)
	if _, err := s.EnqueueD2H(buf, 0, buf.Len(), 0); err != nil {
		t.Fatal(err)
	}
	c.Barrier()
	rec := c.Recorder()
	if rec.BusyTime(trace.H2D) == 0 || rec.BusyTime(trace.D2H) == 0 || rec.BusyTime(trace.Kernel) == 0 {
		t.Fatal("missing stage spans in trace")
	}
	// The three stages of a single task are strictly sequential:
	// zero overlap between any pair.
	if rec.Overlap(trace.H2D, trace.Kernel) != 0 || rec.Overlap(trace.Kernel, trace.D2H) != 0 {
		t.Fatal("single-task stages overlapped")
	}
}
