// Package hstreams reimplements the programming model of Intel's
// hStreams library (the paper's multi-stream runtime, v3.5.2) on top of
// the simulated platform: logical streams are bound to partitions
// ("places") of a partitioned coprocessor, every stream executes its
// enqueued actions in FIFO order, actions in different streams run
// concurrently subject to resource contention (the PCIe DMA engine, the
// partition's cores), and explicit events express cross-stream
// dependencies.
//
// As in hStreams, a context owns one or more devices ("domains"), each
// split into partitions; the logical stream view is what applications
// program against, while the physical mapping is handled here. The two
// deliberate simplifications relative to the C library are (1) buffers
// are typed Go slices rather than raw pointers and (2) kernels are Go
// closures invoked at their scheduled start time (the functional model)
// with an analytic device.KernelCost driving their simulated duration
// (the timing model). Timing-only runs — used for paper-scale inputs
// where functional execution in pure Go would be infeasible — skip the
// closure and the data movement but preserve every timing interaction.
package hstreams

import (
	"fmt"

	"micstream/internal/device"
	"micstream/internal/pcie"
	"micstream/internal/sim"
	"micstream/internal/trace"
)

// Config assembles a platform.
type Config struct {
	// Device is the coprocessor model; zero value means Xeon31SP.
	Device device.Config
	// Link is the PCIe model; zero value means pcie.DefaultConfig.
	Link pcie.Config
	// Devices is the number of coprocessors (domains); 0 means 1.
	Devices int
	// Partitions is the number of places each device is split into;
	// 0 means 1.
	Partitions int
	// StreamsPerPartition is the number of logical streams bound to
	// each place; 0 means 1. Streams sharing a place contend for it.
	StreamsPerPartition int
	// ExecuteKernels enables the functional model: kernel closures
	// run and buffer transfers move real data. Disable for
	// paper-scale timing-only experiments.
	ExecuteKernels bool
	// Trace enables span recording (required by the overlap
	// analyses and cmd/micgantt).
	Trace bool
}

func (c Config) withDefaults() Config {
	if c.Device.Cores == 0 {
		c.Device = device.Xeon31SP()
	}
	if c.Link.BandwidthBps == 0 {
		c.Link = pcie.DefaultConfig()
	}
	if c.Devices == 0 {
		c.Devices = 1
	}
	if c.Partitions == 0 {
		c.Partitions = 1
	}
	if c.StreamsPerPartition == 0 {
		c.StreamsPerPartition = 1
	}
	return c
}

// Context is an initialized platform: the hStreams "app context".
type Context struct {
	cfg     Config
	eng     *sim.Engine
	rec     *trace.Recorder
	devs    []*device.Device
	links   []*pcie.Link
	streams []*Stream
}

// Init builds the platform: Devices coprocessors, each partitioned into
// Partitions places with StreamsPerPartition streams per place —
// the analogue of hStreams_app_init(places, streams_per_place).
func Init(cfg Config) (*Context, error) {
	cfg = cfg.withDefaults()
	if cfg.Devices < 0 {
		return nil, fmt.Errorf("hstreams: negative device count %d", cfg.Devices)
	}
	if cfg.StreamsPerPartition < 1 {
		return nil, fmt.Errorf("hstreams: streams per partition %d < 1", cfg.StreamsPerPartition)
	}
	c := &Context{cfg: cfg, eng: sim.NewEngine()}
	if cfg.Trace {
		c.rec = trace.NewRecorder()
	}
	for i := 0; i < cfg.Devices; i++ {
		name := fmt.Sprintf("mic%d", i)
		dev, err := device.New(c.eng, cfg.Device, name, c.rec)
		if err != nil {
			return nil, err
		}
		if err := dev.SetPartitions(cfg.Partitions); err != nil {
			return nil, err
		}
		link, err := pcie.NewLink(c.eng, cfg.Link, name, c.rec)
		if err != nil {
			return nil, err
		}
		c.devs = append(c.devs, dev)
		c.links = append(c.links, link)
		for p := 0; p < cfg.Partitions; p++ {
			for s := 0; s < cfg.StreamsPerPartition; s++ {
				st := &Stream{
					ctx:    c,
					id:     len(c.streams),
					devIdx: i,
					part:   dev.Partition(p),
					link:   link,
				}
				c.streams = append(c.streams, st)
			}
		}
	}
	return c, nil
}

// Config returns the effective (defaulted) configuration.
func (c *Context) Config() Config { return c.cfg }

// Engine exposes the underlying simulation engine.
func (c *Context) Engine() *sim.Engine { return c.eng }

// Recorder returns the trace recorder, or nil when tracing is off.
func (c *Context) Recorder() *trace.Recorder { return c.rec }

// Now reports the current virtual time (host clock).
func (c *Context) Now() sim.Time { return c.eng.Now() }

// NumDevices reports the number of coprocessors.
func (c *Context) NumDevices() int { return len(c.devs) }

// Device returns coprocessor i.
func (c *Context) Device(i int) *device.Device { return c.devs[i] }

// Link returns the PCIe link of coprocessor i.
func (c *Context) Link(i int) *pcie.Link { return c.links[i] }

// NumStreams reports the total logical stream count across devices.
func (c *Context) NumStreams() int { return len(c.streams) }

// Stream returns logical stream i. Streams are enumerated device-major
// then partition-major, so stream 0 is (device 0, partition 0).
func (c *Context) Stream(i int) *Stream { return c.streams[i] }

// StreamAt returns the k-th stream bound to (device dev, partition p).
func (c *Context) StreamAt(dev, p, k int) *Stream {
	base := dev*c.cfg.Partitions*c.cfg.StreamsPerPartition + p*c.cfg.StreamsPerPartition
	return c.streams[base+k]
}

// HostWork advances the host clock by d, modeling CPU-side computation
// between synchronization points (device work already scheduled keeps
// running during the window).
func (c *Context) HostWork(d sim.Duration, label string) {
	start := c.eng.Now()
	c.eng.Advance(d)
	c.rec.Add(trace.Span{
		Resource: "host",
		Stream:   -1,
		Task:     -1,
		Kind:     trace.Host,
		Label:    label,
		Start:    start,
		End:      c.eng.Now(),
	})
}

// Wait blocks the host until ev completes, advancing virtual time.
func (c *Context) Wait(ev *Event) {
	if ev == nil {
		return
	}
	c.eng.RunUntil(func() bool { return ev.done })
}

// Barrier synchronizes the host with every stream (the analogue of
// hStreams_app_thread_sync) and returns the virtual time afterwards.
func (c *Context) Barrier() sim.Time {
	for _, s := range c.streams {
		c.Wait(s.last)
	}
	return c.eng.Now()
}

// Drain runs the simulation until no scheduled events remain.
func (c *Context) Drain() sim.Time {
	c.eng.Run()
	return c.eng.Now()
}

// Stream is one logical FIFO pipeline bound to a partition.
type Stream struct {
	ctx    *Context
	id     int
	devIdx int
	part   *device.Partition
	link   *pcie.Link
	last   *Event
}

// ID reports the stream's context-wide index.
func (s *Stream) ID() int { return s.id }

// DeviceIndex reports which coprocessor the stream is bound to.
func (s *Stream) DeviceIndex() int { return s.devIdx }

// Partition reports the place the stream is bound to.
func (s *Stream) Partition() *device.Partition { return s.part }

// Last returns the stream's most recently enqueued event (nil if none);
// waiting on it is a stream-level sync.
func (s *Stream) Last() *Event { return s.last }

// Sync blocks the host until everything enqueued on the stream so far
// has completed (hStreams_app_stream_sync).
func (s *Stream) Sync() { s.ctx.Wait(s.last) }

// Event marks the completion of one enqueued action. Events resolve at
// a definite virtual time and can gate actions in other streams.
type Event struct {
	done bool
	at   sim.Time
	subs []func()
}

// Done reports whether the event has completed.
func (e *Event) Done() bool { return e != nil && e.done }

// CompletedAt reports the completion time; valid only once Done.
func (e *Event) CompletedAt() sim.Time { return e.at }

func (e *Event) resolve(at sim.Time) {
	e.done = true
	e.at = at
	subs := e.subs
	e.subs = nil
	for _, fn := range subs {
		fn()
	}
}

// OnDone registers fn to run at the event's resolution instant (or
// immediately when already resolved). Callbacks run in registration
// order inside the simulation's event dispatch, so they observe the
// completion time as Context.Now() and may enqueue further work — this
// is the hook the online scheduler (internal/sched) uses to make
// dispatch decisions at job-completion instants.
func (e *Event) OnDone(fn func()) { e.onDone(fn) }

// onDone runs fn immediately if resolved, else at resolution.
func (e *Event) onDone(fn func()) {
	if e == nil || e.done {
		fn()
		return
	}
	e.subs = append(e.subs, fn)
}

// enqueue appends an action to the stream: it becomes ready when the
// stream's previous action and all explicit deps have completed, then
// calls exec with the ready time; exec must arrange for complete() to
// be invoked at the action's completion instant.
func (s *Stream) enqueue(deps []*Event, exec func(ready sim.Time, complete func())) *Event {
	ev := &Event{}
	all := make([]*Event, 0, len(deps)+1)
	if s.last != nil {
		all = append(all, s.last)
	}
	for _, d := range deps {
		if d != nil {
			all = append(all, d)
		}
	}
	s.last = ev

	pending := 0
	fire := func() {
		exec(s.ctx.eng.Now(), func() { ev.resolve(s.ctx.eng.Now()) })
	}
	dec := func() {
		pending--
		if pending == 0 {
			fire()
		}
	}
	for _, d := range all {
		if !d.done {
			pending++
		}
	}
	if pending == 0 {
		fire()
		return ev
	}
	for _, d := range all {
		if !d.done {
			d.onDone(dec)
		}
	}
	return ev
}

// EnqueueH2D asynchronously moves elements [off, off+n) of b from host
// to the stream's device (hStreams_app_xfer_memory HSTR_SRC_TO_SINK).
// task annotates the trace; deps gate the transfer on other events.
func (s *Stream) EnqueueH2D(b *Buffer, off, n int, task int, deps ...*Event) (*Event, error) {
	return s.enqueueXfer(pcie.H2D, b, off, n, task, deps)
}

// EnqueueD2H asynchronously moves elements [off, off+n) of b from the
// stream's device to the host (HSTR_SINK_TO_SRC).
func (s *Stream) EnqueueD2H(b *Buffer, off, n int, task int, deps ...*Event) (*Event, error) {
	return s.enqueueXfer(pcie.D2H, b, off, n, task, deps)
}

func (s *Stream) enqueueXfer(dir pcie.Direction, b *Buffer, off, n, task int, deps []*Event) (*Event, error) {
	if b == nil {
		return nil, fmt.Errorf("hstreams: transfer on nil buffer")
	}
	if off < 0 || n < 0 || off+n > b.elems {
		return nil, fmt.Errorf("hstreams: transfer range [%d,%d) out of buffer %q (%d elements)", off, off+n, b.name, b.elems)
	}
	bytes := int64(n) * int64(b.elemSize)
	devIdx := s.devIdx
	exec := func(ready sim.Time, complete func()) {
		s.link.Transfer(dir, bytes, ready, s.id, task, func(start, end sim.Time) {
			if s.ctx.cfg.ExecuteKernels {
				b.move(devIdx, off, n, dir == pcie.H2D)
			}
			complete()
		})
	}
	return s.enqueue(deps, exec), nil
}

// KernelCtx is passed to kernel closures in the functional model.
type KernelCtx struct {
	// Ctx is the owning context.
	Ctx *Context
	// DeviceIndex identifies the device the kernel runs on, for
	// DeviceSlice lookups.
	DeviceIndex int
	// Stream is the stream executing the kernel.
	Stream *Stream
	// Task is the application task id.
	Task int
}

// EnqueueKernel asynchronously launches a kernel on the stream's
// partition (hStreams_app_invoke). cost drives the timing model; body
// (optional) is the functional implementation, invoked at the kernel's
// scheduled start when the context executes kernels.
func (s *Stream) EnqueueKernel(cost device.KernelCost, task int, body func(*KernelCtx), deps ...*Event) *Event {
	exec := func(ready sim.Time, complete func()) {
		var fn func()
		if body != nil && s.ctx.cfg.ExecuteKernels {
			fn = func() {
				body(&KernelCtx{Ctx: s.ctx, DeviceIndex: s.devIdx, Stream: s, Task: task})
			}
		}
		s.part.Launch(ready, cost, s.id, task, fn, func(start, end sim.Time) { complete() })
	}
	return s.enqueue(deps, exec)
}
