package hstreams

import "fmt"

// Buffer is a typed allocation visible to both host and devices, the
// analogue of an hStreams buffer created with hStreams_app_create_buf.
// The host side aliases the caller's slice; each device holds a lazily
// allocated shadow copy that kernels operate on in the functional
// model. Virtual buffers (AllocVirtual) carry only a size and move no
// data — they exist for paper-scale timing-only experiments.
type Buffer struct {
	name     string
	elems    int
	elemSize int

	// move copies elements [off, off+n) between host and the given
	// device shadow (h2d chooses the direction). nil for virtual
	// buffers.
	move func(devIdx, off, n int, h2d bool)
	// devAny returns the device shadow slice for DeviceSlice.
	devAny func(devIdx int) interface{}
	// hostAny returns the host slice for HostSlice.
	hostAny interface{}
}

// Name reports the buffer's diagnostic name.
func (b *Buffer) Name() string { return b.name }

// Len reports the element count.
func (b *Buffer) Len() int { return b.elems }

// Bytes reports the buffer size in bytes.
func (b *Buffer) Bytes() int64 { return int64(b.elems) * int64(b.elemSize) }

// Alloc1D registers a host slice as a buffer usable by every device in
// the context. The buffer aliases host: D2H transfers write back into
// it. The element size is derived from T.
func Alloc1D[T any](c *Context, name string, host []T) *Buffer {
	var zero T
	shadows := make([][]T, c.NumDevices())
	b := &Buffer{
		name:     name,
		elems:    len(host),
		elemSize: int(sizeOf(zero)),
		hostAny:  host,
	}
	ensure := func(devIdx int) []T {
		if shadows[devIdx] == nil {
			shadows[devIdx] = make([]T, len(host))
		}
		return shadows[devIdx]
	}
	b.move = func(devIdx, off, n int, h2d bool) {
		shadow := ensure(devIdx)
		if h2d {
			copy(shadow[off:off+n], host[off:off+n])
		} else {
			copy(host[off:off+n], shadow[off:off+n])
		}
	}
	b.devAny = func(devIdx int) interface{} { return ensure(devIdx) }
	return b
}

// AllocVirtual registers a data-less buffer of the given element count
// and element size. Transfers of virtual buffers cost the modeled time
// but move nothing; kernels must not dereference them.
func AllocVirtual(c *Context, name string, elems, elemSize int) *Buffer {
	if elems < 0 || elemSize <= 0 {
		panic(fmt.Sprintf("hstreams: invalid virtual buffer %q (%d x %dB)", name, elems, elemSize))
	}
	return &Buffer{name: name, elems: elems, elemSize: elemSize}
}

// DeviceSlice returns the device-resident shadow of b on device devIdx,
// allocating it on first use. It panics when the buffer's element type
// is not T or the buffer is virtual — both programming errors.
func DeviceSlice[T any](b *Buffer, devIdx int) []T {
	if b.devAny == nil {
		panic(fmt.Sprintf("hstreams: DeviceSlice on virtual buffer %q", b.name))
	}
	s, ok := b.devAny(devIdx).([]T)
	if !ok {
		panic(fmt.Sprintf("hstreams: DeviceSlice type mismatch on buffer %q", b.name))
	}
	return s
}

// HostSlice returns the host-side slice of b. It panics for virtual
// buffers or a type mismatch.
func HostSlice[T any](b *Buffer) []T {
	if b.hostAny == nil {
		panic(fmt.Sprintf("hstreams: HostSlice on virtual buffer %q", b.name))
	}
	s, ok := b.hostAny.([]T)
	if !ok {
		panic(fmt.Sprintf("hstreams: HostSlice type mismatch on buffer %q", b.name))
	}
	return s
}

// sizeOf reports the in-memory size of v's type for the element sizes
// the platform uses. Supporting a closed set keeps the buffer model
// free of reflection on hot paths while covering every application in
// the repository.
func sizeOf(v interface{}) uintptr {
	switch v.(type) {
	case float64, int64, uint64, complex64:
		return 8
	case float32, int32, uint32:
		return 4
	case int16, uint16:
		return 2
	case int8, uint8, bool:
		return 1
	case int, uint:
		return 8
	default:
		panic(fmt.Sprintf("hstreams: unsupported buffer element type %T", v))
	}
}
