package hstreams

import (
	"testing"

	"micstream/internal/device"
	"micstream/internal/sim"
	"micstream/internal/trace"
	"micstream/internal/workload"
)

// randomPipeline enqueues a randomized mix of transfers and kernels
// across the context's streams and returns the per-action completion
// events grouped by stream.
func randomPipeline(t *testing.T, ctx *Context, rng *workload.RNG, actions int) [][]*Event {
	t.Helper()
	buf := AllocVirtual(ctx, "b", 1<<22, 4)
	perStream := make([][]*Event, ctx.NumStreams())
	for i := 0; i < actions; i++ {
		s := ctx.Stream(rng.Intn(ctx.NumStreams()))
		var ev *Event
		switch rng.Intn(3) {
		case 0:
			e, err := s.EnqueueH2D(buf, 0, 1+rng.Intn(buf.Len()-1), i)
			if err != nil {
				t.Fatal(err)
			}
			ev = e
		case 1:
			e, err := s.EnqueueD2H(buf, 0, 1+rng.Intn(buf.Len()-1), i)
			if err != nil {
				t.Fatal(err)
			}
			ev = e
		default:
			cost := device.KernelCost{
				Name:  "k",
				Flops: float64(1 + rng.Intn(1e7)),
				Bytes: float64(rng.Intn(1 << 20)),
			}
			ev = s.EnqueueKernel(cost, i, nil)
		}
		perStream[s.ID()] = append(perStream[s.ID()], ev)
	}
	ctx.Barrier()
	return perStream
}

// Property: per-stream FIFO — every action completes no earlier than
// the action enqueued before it on the same stream.
func TestPropertyPerStreamFIFO(t *testing.T) {
	rng := workload.NewRNG(99)
	for trial := 0; trial < 25; trial++ {
		ctx, err := Init(Config{Partitions: 1 + int(rng.Intn(8)), StreamsPerPartition: 1 + int(rng.Intn(2)), Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		perStream := randomPipeline(t, ctx, rng, 60)
		for sid, evs := range perStream {
			for i := 1; i < len(evs); i++ {
				if !evs[i].Done() || !evs[i-1].Done() {
					t.Fatalf("trial %d stream %d: unresolved events after barrier", trial, sid)
				}
				if evs[i].CompletedAt() < evs[i-1].CompletedAt() {
					t.Fatalf("trial %d stream %d: FIFO violated (%v before %v)",
						trial, sid, evs[i].CompletedAt(), evs[i-1].CompletedAt())
				}
			}
		}
	}
}

// Property: resource capacity — the makespan is never less than the
// busiest single resource's total occupancy (nothing runs on a
// resource "for free").
func TestPropertyMakespanBoundsResourceBusy(t *testing.T) {
	rng := workload.NewRNG(7)
	for trial := 0; trial < 25; trial++ {
		parts := 1 + int(rng.Intn(6))
		ctx, err := Init(Config{Partitions: parts, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		randomPipeline(t, ctx, rng, 80)
		makespan := ctx.Now()
		// Link occupancy (half-duplex: one server).
		rec := ctx.Recorder()
		linkBusy := rec.TotalTime(trace.H2D) + rec.TotalTime(trace.D2H)
		if sim.Duration(makespan) < linkBusy {
			t.Fatalf("trial %d: makespan %v < link busy %v", trial, makespan, linkBusy)
		}
		for _, p := range ctx.Device(0).Partitions() {
			if sim.Duration(makespan) < p.BusyTime() {
				t.Fatalf("trial %d: makespan %v < partition busy %v", trial, makespan, p.BusyTime())
			}
		}
	}
}

// Property: determinism — identical programs produce identical
// schedules, span for span.
func TestPropertyDeterministicReplay(t *testing.T) {
	build := func() *Context {
		ctx, err := Init(Config{Partitions: 4, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		rng := workload.NewRNG(1234)
		randomPipeline(t, ctx, rng, 100)
		return ctx
	}
	a, b := build(), build()
	sa, sb := a.Recorder().Spans(), b.Recorder().Spans()
	if len(sa) != len(sb) {
		t.Fatalf("span counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("span %d differs:\n%+v\n%+v", i, sa[i], sb[i])
		}
	}
	if a.Now() != b.Now() {
		t.Fatalf("makespans differ: %v vs %v", a.Now(), b.Now())
	}
}

// Property: monotone loads — adding one more kernel to a stream never
// lets the platform finish earlier.
func TestPropertyMoreWorkNeverFinishesEarlier(t *testing.T) {
	run := func(kernels int) sim.Time {
		ctx, err := Init(Config{Partitions: 3, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		cost := device.KernelCost{Name: "k", Flops: 5e8}
		for i := 0; i < kernels; i++ {
			ctx.Stream(i%3).EnqueueKernel(cost, i, nil)
		}
		return ctx.Barrier()
	}
	prev := run(1)
	for k := 2; k <= 20; k++ {
		cur := run(k)
		if cur < prev {
			t.Fatalf("%d kernels finished earlier (%v) than %d (%v)", k, cur, k-1, prev)
		}
		prev = cur
	}
}

// Property: transfers never overlap on the half-duplex link — the
// trace must show pairwise-disjoint H2D/D2H spans.
func TestPropertyHalfDuplexSpansDisjoint(t *testing.T) {
	rng := workload.NewRNG(55)
	ctx, err := Init(Config{Partitions: 8, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	randomPipeline(t, ctx, rng, 120)
	var xfers []trace.Span
	for _, s := range ctx.Recorder().Spans() {
		if s.Kind == trace.H2D || s.Kind == trace.D2H {
			xfers = append(xfers, s)
		}
	}
	for i := 0; i < len(xfers); i++ {
		for j := i + 1; j < len(xfers); j++ {
			a, b := xfers[i], xfers[j]
			if a.Start < b.End && b.Start < a.End {
				t.Fatalf("link spans overlap: %+v and %+v", a, b)
			}
		}
	}
}
