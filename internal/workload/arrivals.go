package workload

import (
	"fmt"
	"math"
)

// Arrival processes for the online scheduler (internal/sched): each
// generator returns n absolute arrival offsets in nanoseconds,
// non-decreasing, starting at or after 0. Like every workload
// generator they are pure functions of their seed, so scheduler runs
// are bit-identical across machines and Go versions.

// PoissonArrivals returns n arrivals of a homogeneous Poisson process
// with the given mean inter-arrival gap: gaps are i.i.d. Exp(1/mean)
// drawn by inverse transform from the splitmix64 stream.
func PoissonArrivals(seed uint64, n int, meanGapNs float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative arrival count %d", n)
	}
	if meanGapNs <= 0 {
		return nil, fmt.Errorf("workload: mean gap must be positive, got %g", meanGapNs)
	}
	rng := NewRNG(seed)
	out := make([]int64, n)
	t := 0.0
	for i := range out {
		t += expGap(rng, meanGapNs)
		out[i] = int64(t)
	}
	return out, nil
}

// BurstyArrivals returns n arrivals of an on/off process: bursts of
// burstLen jobs separated by short Exp(withinGapNs) gaps, with
// Exp(betweenGapNs) silences between bursts — the flash-crowd pattern
// that stresses admission queues far more than a Poisson stream of the
// same average rate.
func BurstyArrivals(seed uint64, n, burstLen int, withinGapNs, betweenGapNs float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative arrival count %d", n)
	}
	if burstLen < 1 {
		return nil, fmt.Errorf("workload: burst length must be ≥ 1, got %d", burstLen)
	}
	if withinGapNs <= 0 || betweenGapNs <= 0 {
		return nil, fmt.Errorf("workload: gaps must be positive, got %g and %g", withinGapNs, betweenGapNs)
	}
	rng := NewRNG(seed)
	out := make([]int64, n)
	t := 0.0
	for i := range out {
		if i%burstLen == 0 {
			t += expGap(rng, betweenGapNs)
		} else {
			t += expGap(rng, withinGapNs)
		}
		out[i] = int64(t)
	}
	return out, nil
}

// HeavyTailArrivals returns n arrivals whose inter-arrival gaps follow
// a Pareto(minGapNs, alpha) distribution: mostly tight gaps with rare
// very long silences. alpha in (1, 2] gives a finite mean but high
// variance — the self-similar traffic shape measured on real request
// streams. Gaps are capped at 1000× the minimum so a single draw
// cannot blow up an experiment's virtual horizon.
func HeavyTailArrivals(seed uint64, n int, minGapNs, alpha float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative arrival count %d", n)
	}
	if minGapNs <= 0 {
		return nil, fmt.Errorf("workload: min gap must be positive, got %g", minGapNs)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("workload: alpha must be positive, got %g", alpha)
	}
	rng := NewRNG(seed)
	out := make([]int64, n)
	t := 0.0
	for i := range out {
		u := rng.Float64()
		gap := minGapNs / math.Pow(1-u, 1/alpha)
		if cap := minGapNs * 1000; gap > cap {
			gap = cap
		}
		t += gap
		out[i] = int64(t)
	}
	return out, nil
}

// expGap draws one exponential inter-arrival gap with the given mean.
func expGap(rng *RNG, mean float64) float64 {
	// 1-u is in (0, 1], so the log argument never hits zero.
	return -mean * math.Log(1-rng.Float64())
}
