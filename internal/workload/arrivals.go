package workload

import (
	"fmt"
	"math"
	"sort"
)

// Arrival processes for the online scheduler (internal/sched): each
// generator returns n absolute arrival offsets in nanoseconds,
// non-decreasing, starting at or after 0. Like every workload
// generator they are pure functions of their seed, so scheduler runs
// are bit-identical across machines and Go versions.

// PoissonArrivals returns n arrivals of a homogeneous Poisson process
// with the given mean inter-arrival gap: gaps are i.i.d. Exp(1/mean)
// drawn by inverse transform from the splitmix64 stream.
func PoissonArrivals(seed uint64, n int, meanGapNs float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative arrival count %d", n)
	}
	if meanGapNs <= 0 {
		return nil, fmt.Errorf("workload: mean gap must be positive, got %g", meanGapNs)
	}
	rng := NewRNG(seed)
	out := make([]int64, n)
	t := 0.0
	for i := range out {
		t += expGap(rng, meanGapNs)
		out[i] = int64(t)
	}
	return out, nil
}

// BurstyArrivals returns n arrivals of an on/off process: bursts of
// burstLen jobs separated by short Exp(withinGapNs) gaps, with
// Exp(betweenGapNs) silences between bursts — the flash-crowd pattern
// that stresses admission queues far more than a Poisson stream of the
// same average rate.
func BurstyArrivals(seed uint64, n, burstLen int, withinGapNs, betweenGapNs float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative arrival count %d", n)
	}
	if burstLen < 1 {
		return nil, fmt.Errorf("workload: burst length must be ≥ 1, got %d", burstLen)
	}
	if withinGapNs <= 0 || betweenGapNs <= 0 {
		return nil, fmt.Errorf("workload: gaps must be positive, got %g and %g", withinGapNs, betweenGapNs)
	}
	rng := NewRNG(seed)
	out := make([]int64, n)
	t := 0.0
	for i := range out {
		if i%burstLen == 0 {
			t += expGap(rng, betweenGapNs)
		} else {
			t += expGap(rng, withinGapNs)
		}
		out[i] = int64(t)
	}
	return out, nil
}

// HeavyTailArrivals returns n arrivals whose inter-arrival gaps follow
// a Pareto(minGapNs, alpha) distribution: mostly tight gaps with rare
// very long silences. alpha in (1, 2] gives a finite mean but high
// variance — the self-similar traffic shape measured on real request
// streams. Gaps are capped at 1000× the minimum so a single draw
// cannot blow up an experiment's virtual horizon.
func HeavyTailArrivals(seed uint64, n int, minGapNs, alpha float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative arrival count %d", n)
	}
	if minGapNs <= 0 {
		return nil, fmt.Errorf("workload: min gap must be positive, got %g", minGapNs)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("workload: alpha must be positive, got %g", alpha)
	}
	rng := NewRNG(seed)
	out := make([]int64, n)
	t := 0.0
	for i := range out {
		u := rng.Float64()
		gap := minGapNs / math.Pow(1-u, 1/alpha)
		if cap := minGapNs * 1000; gap > cap {
			gap = cap
		}
		t += gap
		out[i] = int64(t)
	}
	return out, nil
}

// DiurnalArrivals returns n arrivals of an inhomogeneous Poisson
// process whose rate swings sinusoidally around the base rate 1/mean:
// rate(t) = (1 + amplitude·sin(2πt/period)) / meanGapNs. Amplitude in
// [0, 1) keeps the rate positive; 0.8 gives the 9:1 peak-to-trough
// swing of a day/night request cycle compressed into one period.
//
// The n arrivals are the order statistics of the process conditioned
// on n points in the window [0, n·meanGapNs] — each point drawn from
// the normalized intensity by inverting the cumulative rate Λ(t) with
// deterministic bisection, then sorted. Conditioning pins the offered
// load: n arrivals really span the window whose length the mean gap
// implies. The earlier stretched-gap approximation ran up to 7% fast
// on short windows (it evaluated the rate only at each gap's start,
// and a phase-0 start front-loads the cycle's fast half). The process
// remains a pure function of its seed.
func DiurnalArrivals(seed uint64, n int, meanGapNs, periodNs, amplitude float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative arrival count %d", n)
	}
	if meanGapNs <= 0 || periodNs <= 0 {
		return nil, fmt.Errorf("workload: mean gap and period must be positive, got %g and %g", meanGapNs, periodNs)
	}
	if amplitude < 0 || amplitude >= 1 {
		return nil, fmt.Errorf("workload: amplitude must be in [0,1), got %g", amplitude)
	}
	// Cumulative rate normalized by the base rate: Λ(t)·meanGapNs.
	cum := func(t float64) float64 {
		return t + amplitude*periodNs/(2*math.Pi)*(1-math.Cos(2*math.Pi*t/periodNs))
	}
	rng := NewRNG(seed)
	window := float64(n) * meanGapNs
	total := cum(window)
	ts := make([]float64, n)
	for i := range ts {
		target := rng.Float64() * total
		// Λ is strictly increasing, so a fixed-iteration bisection is
		// exact enough (sub-nanosecond after ~60 halvings) and, unlike
		// Newton, bit-identical regardless of how flat the trough is.
		lo, hi := 0.0, window
		for k := 0; k < 64; k++ {
			mid := (lo + hi) / 2
			if cum(mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		ts[i] = (lo + hi) / 2
	}
	sort.Float64s(ts)
	out := make([]int64, n)
	for i, t := range ts {
		out[i] = int64(t)
	}
	return out, nil
}

// CorrelatedBurstArrivals returns n arrivals of a bursty process whose
// successive burst lengths are AR(1)-correlated: a big flash crowd
// tends to be followed by another big one (rho near 1) instead of the
// independent bursts of BurstyArrivals. Burst k's length is
// max(1, round(rho·L[k-1] + (1-rho)·2u·meanLen)) for u uniform in
// [0, 1); within-burst gaps are Exp(withinGapNs).
//
// The process is rate-matched to meanGapNs: each burst's preceding
// silence is Exp(L·meanGapNs − (L−1)·withinGapNs) for the burst's
// realized length L, so every burst spans L·meanGapNs in expectation
// regardless of how the AR(1) chain wanders — a fixed silence would
// drift the offered rate with the burst-length distribution (Jensen's
// inequality over 1/L, up to +8% mean gap on short streams). The last
// burst is clipped to the remaining arrival count before its silence
// is drawn, so a truncated burst is not charged a full-length one.
func CorrelatedBurstArrivals(seed uint64, n int, meanLen, rho, withinGapNs, meanGapNs float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative arrival count %d", n)
	}
	if meanLen < 1 {
		return nil, fmt.Errorf("workload: mean burst length must be ≥ 1, got %g", meanLen)
	}
	if rho < 0 || rho >= 1 {
		return nil, fmt.Errorf("workload: correlation must be in [0,1), got %g", rho)
	}
	if withinGapNs <= 0 || meanGapNs <= 0 {
		return nil, fmt.Errorf("workload: gaps must be positive, got %g and %g", withinGapNs, meanGapNs)
	}
	if withinGapNs >= meanGapNs {
		return nil, fmt.Errorf("workload: within-burst gap %g must be below the mean gap %g", withinGapNs, meanGapNs)
	}
	rng := NewRNG(seed)
	out := make([]int64, n)
	t := 0.0
	prev := meanLen
	i := 0
	for i < n {
		length := rho*prev + (1-rho)*2*rng.Float64()*meanLen
		prev = length
		burst := int(math.Round(length))
		if burst < 1 {
			burst = 1
		}
		if burst > n-i {
			burst = n - i
		}
		t += expGap(rng, float64(burst)*meanGapNs-float64(burst-1)*withinGapNs)
		for k := 0; k < burst; k++ {
			if k > 0 {
				t += expGap(rng, withinGapNs)
			}
			out[i] = int64(t)
			i++
		}
	}
	return out, nil
}

// Names lists the arrival-process names Arrivals accepts, in stable
// order.
func Names() []string {
	return []string{"bursty", "correlated", "diurnal", "heavytail", "poisson"}
}

// Arrivals dispatches to a named arrival process parameterized only by
// a mean inter-arrival gap — the common interface the scenario
// builders and the -arrival CLI flags use. Shape parameters are fixed
// per process: bursty runs bursts of 4 with 10× tighter intra-burst
// spacing, heavytail is a capped Pareto(·, 1.5), diurnal swings ±0.8
// around the base rate over one window-length period, and correlated
// chains bursts of mean length 6 with rho = 0.7.
//
// Every kind is rate-matched: its expected mean inter-arrival gap is
// meanGapNs, so "-arrival" comparisons in micsched/miccluster compare
// the same offered load under different burstiness shapes (asserted
// within 5% by TestArrivalsRateMatched).
func Arrivals(kind string, seed uint64, n int, meanGapNs float64) ([]int64, error) {
	// The per-process validators reject non-positive gaps, but NaN and
	// +Inf slip through a `<= 0` test and would break the documented
	// non-negative, non-decreasing output contract (int64(NaN) is
	// negative on amd64).
	if !(meanGapNs > 0) || math.IsInf(meanGapNs, 1) {
		return nil, fmt.Errorf("workload: mean gap must be positive and finite, got %g", meanGapNs)
	}
	switch kind {
	case "poisson":
		return PoissonArrivals(seed, n, meanGapNs)
	case "bursty":
		// Bursts of 4 with tight intra-burst spacing; the silence
		// between bursts restores the configured average rate.
		within := meanGapNs / 10
		between := 4*meanGapNs - 3*within
		return BurstyArrivals(seed, n, 4, within, between)
	case "heavytail":
		// HeavyTailArrivals caps gaps at 1000× the minimum, which
		// trims the Pareto tail: E[min(X, 1000·min)] for alpha = 1.5
		// is min·(1 + 2·(1 − 1000^{-1/2})) ≈ 2.9368·min, not the
		// uncapped 3·min. Derive min from the capped mean or the
		// offered load runs ~2% light.
		const alpha, cap = 1.5, 1000.0
		capped := 1 + (1-math.Pow(cap, 1-alpha))/(alpha-1)
		return HeavyTailArrivals(seed, n, meanGapNs/capped, alpha)
	case "diurnal":
		// One full day/night cycle across the n-arrival window.
		return DiurnalArrivals(seed, n, meanGapNs, float64(n)*meanGapNs, 0.8)
	case "correlated":
		// Mean burst of 6 at 10× tighter spacing; the per-burst
		// silence restores the configured average rate.
		const meanLen, rho = 6, 0.7
		return CorrelatedBurstArrivals(seed, n, meanLen, rho, meanGapNs/10, meanGapNs)
	default:
		return nil, fmt.Errorf("workload: unknown arrival process %q (have %v)", kind, Names())
	}
}

// expGap draws one exponential inter-arrival gap with the given mean.
func expGap(rng *RNG, mean float64) float64 {
	// 1-u is in (0, 1], so the log argument never hits zero.
	return -mean * math.Log(1-rng.Float64())
}
