package workload

import (
	"fmt"
	"math"
)

// Arrival processes for the online scheduler (internal/sched): each
// generator returns n absolute arrival offsets in nanoseconds,
// non-decreasing, starting at or after 0. Like every workload
// generator they are pure functions of their seed, so scheduler runs
// are bit-identical across machines and Go versions.

// PoissonArrivals returns n arrivals of a homogeneous Poisson process
// with the given mean inter-arrival gap: gaps are i.i.d. Exp(1/mean)
// drawn by inverse transform from the splitmix64 stream.
func PoissonArrivals(seed uint64, n int, meanGapNs float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative arrival count %d", n)
	}
	if meanGapNs <= 0 {
		return nil, fmt.Errorf("workload: mean gap must be positive, got %g", meanGapNs)
	}
	rng := NewRNG(seed)
	out := make([]int64, n)
	t := 0.0
	for i := range out {
		t += expGap(rng, meanGapNs)
		out[i] = int64(t)
	}
	return out, nil
}

// BurstyArrivals returns n arrivals of an on/off process: bursts of
// burstLen jobs separated by short Exp(withinGapNs) gaps, with
// Exp(betweenGapNs) silences between bursts — the flash-crowd pattern
// that stresses admission queues far more than a Poisson stream of the
// same average rate.
func BurstyArrivals(seed uint64, n, burstLen int, withinGapNs, betweenGapNs float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative arrival count %d", n)
	}
	if burstLen < 1 {
		return nil, fmt.Errorf("workload: burst length must be ≥ 1, got %d", burstLen)
	}
	if withinGapNs <= 0 || betweenGapNs <= 0 {
		return nil, fmt.Errorf("workload: gaps must be positive, got %g and %g", withinGapNs, betweenGapNs)
	}
	rng := NewRNG(seed)
	out := make([]int64, n)
	t := 0.0
	for i := range out {
		if i%burstLen == 0 {
			t += expGap(rng, betweenGapNs)
		} else {
			t += expGap(rng, withinGapNs)
		}
		out[i] = int64(t)
	}
	return out, nil
}

// HeavyTailArrivals returns n arrivals whose inter-arrival gaps follow
// a Pareto(minGapNs, alpha) distribution: mostly tight gaps with rare
// very long silences. alpha in (1, 2] gives a finite mean but high
// variance — the self-similar traffic shape measured on real request
// streams. Gaps are capped at 1000× the minimum so a single draw
// cannot blow up an experiment's virtual horizon.
func HeavyTailArrivals(seed uint64, n int, minGapNs, alpha float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative arrival count %d", n)
	}
	if minGapNs <= 0 {
		return nil, fmt.Errorf("workload: min gap must be positive, got %g", minGapNs)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("workload: alpha must be positive, got %g", alpha)
	}
	rng := NewRNG(seed)
	out := make([]int64, n)
	t := 0.0
	for i := range out {
		u := rng.Float64()
		gap := minGapNs / math.Pow(1-u, 1/alpha)
		if cap := minGapNs * 1000; gap > cap {
			gap = cap
		}
		t += gap
		out[i] = int64(t)
	}
	return out, nil
}

// DiurnalArrivals returns n arrivals of an inhomogeneous Poisson
// process whose rate swings sinusoidally around the base rate 1/mean:
// rate(t) = (1 + amplitude·sin(2πt/period)) / meanGapNs. Amplitude in
// [0, 1) keeps the rate positive; 0.8 gives the 9:1 peak-to-trough
// swing of a day/night request cycle compressed into one period. Gaps
// are exponential draws stretched by the instantaneous rate, so the
// process stays a pure function of its seed.
func DiurnalArrivals(seed uint64, n int, meanGapNs, periodNs, amplitude float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative arrival count %d", n)
	}
	if meanGapNs <= 0 || periodNs <= 0 {
		return nil, fmt.Errorf("workload: mean gap and period must be positive, got %g and %g", meanGapNs, periodNs)
	}
	if amplitude < 0 || amplitude >= 1 {
		return nil, fmt.Errorf("workload: amplitude must be in [0,1), got %g", amplitude)
	}
	rng := NewRNG(seed)
	out := make([]int64, n)
	t := 0.0
	for i := range out {
		rate := 1 + amplitude*math.Sin(2*math.Pi*t/periodNs)
		t += expGap(rng, meanGapNs) / rate
		out[i] = int64(t)
	}
	return out, nil
}

// CorrelatedBurstArrivals returns n arrivals of a bursty process whose
// successive burst lengths are AR(1)-correlated: a big flash crowd
// tends to be followed by another big one (rho near 1) instead of the
// independent bursts of BurstyArrivals. Burst k's length is
// max(1, round(rho·L[k-1] + (1-rho)·2u·meanLen)) for u uniform in
// [0, 1); within-burst gaps are Exp(withinGapNs) and bursts are
// separated by Exp(betweenGapNs) silences.
func CorrelatedBurstArrivals(seed uint64, n int, meanLen, rho, withinGapNs, betweenGapNs float64) ([]int64, error) {
	if n < 0 {
		return nil, fmt.Errorf("workload: negative arrival count %d", n)
	}
	if meanLen < 1 {
		return nil, fmt.Errorf("workload: mean burst length must be ≥ 1, got %g", meanLen)
	}
	if rho < 0 || rho >= 1 {
		return nil, fmt.Errorf("workload: correlation must be in [0,1), got %g", rho)
	}
	if withinGapNs <= 0 || betweenGapNs <= 0 {
		return nil, fmt.Errorf("workload: gaps must be positive, got %g and %g", withinGapNs, betweenGapNs)
	}
	rng := NewRNG(seed)
	out := make([]int64, n)
	t := 0.0
	prev := meanLen
	i := 0
	for i < n {
		length := rho*prev + (1-rho)*2*rng.Float64()*meanLen
		prev = length
		burst := int(math.Round(length))
		if burst < 1 {
			burst = 1
		}
		t += expGap(rng, betweenGapNs)
		for k := 0; k < burst && i < n; k++ {
			if k > 0 {
				t += expGap(rng, withinGapNs)
			}
			out[i] = int64(t)
			i++
		}
	}
	return out, nil
}

// Names lists the arrival-process names Arrivals accepts, in stable
// order.
func Names() []string {
	return []string{"bursty", "correlated", "diurnal", "heavytail", "poisson"}
}

// Arrivals dispatches to a named arrival process parameterized only by
// a mean inter-arrival gap — the common interface the scenario
// builders and the -arrival CLI flags use. Shape parameters are fixed
// per process: bursty runs bursts of 4 with 10× tighter intra-burst
// spacing, heavytail is Pareto(mean/3, 1.5), diurnal swings ±0.8
// around the base rate over one window-length period, and correlated
// chains bursts of mean length 6 with rho = 0.7.
func Arrivals(kind string, seed uint64, n int, meanGapNs float64) ([]int64, error) {
	switch kind {
	case "poisson":
		return PoissonArrivals(seed, n, meanGapNs)
	case "bursty":
		// Bursts of 4 with tight intra-burst spacing; the silence
		// between bursts restores the configured average rate.
		within := meanGapNs / 10
		between := 4*meanGapNs - 3*within
		return BurstyArrivals(seed, n, 4, within, between)
	case "heavytail":
		// Pareto(min, 1.5) has mean 3·min, so min = mean/3.
		return HeavyTailArrivals(seed, n, meanGapNs/3, 1.5)
	case "diurnal":
		// One full day/night cycle across the n-arrival window.
		return DiurnalArrivals(seed, n, meanGapNs, float64(n)*meanGapNs, 0.8)
	case "correlated":
		// Mean burst of 6 at 10× tighter spacing; the inter-burst
		// silence restores the configured average rate.
		const meanLen, rho = 6, 0.7
		within := meanGapNs / 10
		between := meanLen*meanGapNs - (meanLen-1)*within
		return CorrelatedBurstArrivals(seed, n, meanLen, rho, within, between)
	default:
		return nil, fmt.Errorf("workload: unknown arrival process %q (have %v)", kind, Names())
	}
}

// expGap draws one exponential inter-arrival gap with the given mean.
func expGap(rng *RNG, mean float64) float64 {
	// 1-u is in (0, 1], so the log argument never hits zero.
	return -mean * math.Log(1-rng.Float64())
}
