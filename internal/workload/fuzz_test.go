package workload

import (
	"math"
	"testing"
)

// FuzzArrivals fuzzes the arrival-process dispatcher over every kind
// name (valid or not), seed, count and gap — including the NaN/Inf
// gaps a `<= 0` validator would wave through. The invariants are the
// package contract: no panic, and on success exactly n non-negative,
// non-decreasing offsets; on rejection a nil slice.
func FuzzArrivals(f *testing.F) {
	for i, kind := range Names() {
		f.Add(kind, uint64(i+1), 64, 1e6)
	}
	f.Add("nope", uint64(7), 8, 1e5)
	f.Add("poisson", uint64(1), -3, 1e6)
	f.Add("poisson", uint64(1), 8, math.NaN())
	f.Add("bursty", uint64(2), 8, math.Inf(1))
	f.Add("heavytail", uint64(3), 8, -1.0)
	f.Fuzz(func(t *testing.T, kind string, seed uint64, n int, meanGapNs float64) {
		if n > 1<<12 {
			n %= 1 << 12 // bound the work, keep negatives reachable
		}
		out, err := Arrivals(kind, seed, n, meanGapNs)
		if err != nil {
			if out != nil {
				t.Fatalf("Arrivals(%q, %d, %d, %g) returned both a slice and %v", kind, seed, n, meanGapNs, err)
			}
			return
		}
		if !(meanGapNs > 0) || math.IsInf(meanGapNs, 1) {
			t.Fatalf("Arrivals(%q, %d, %d, %g) accepted a non-positive or non-finite gap", kind, seed, n, meanGapNs)
		}
		if len(out) != n {
			t.Fatalf("Arrivals(%q, %d, %d, %g) returned %d offsets", kind, seed, n, meanGapNs, len(out))
		}
		prev := int64(0)
		for i, at := range out {
			if at < prev {
				t.Fatalf("Arrivals(%q, %d, %d, %g)[%d] = %d decreases from %d", kind, seed, n, meanGapNs, i, at, prev)
			}
			prev = at
		}
	})
}
