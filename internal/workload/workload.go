// Package workload generates the deterministic synthetic inputs that
// substitute for the paper's datasets (Rodinia inputs, MineBench point
// sets, hStreams SDK matrices). The paper's observations depend on the
// sizes and shapes of the data — matrix dimensions, grid sizes, record
// counts — not on its provenance, so reproducible synthetic data
// preserves every experiment while keeping the repository hermetic.
//
// All generators are seeded explicitly and use a splitmix64 generator,
// so every test, bench, and example sees identical data on every run
// and platform.
package workload

import "math"

// RNG is a small, fast, deterministic generator (splitmix64). It is
// intentionally not math/rand: we want stable streams across Go
// versions and the ability to embed the generator in property tests.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Matrix generates an n×n row-major float64 matrix with entries in
// [-1, 1).
func Matrix(seed uint64, n int) []float64 {
	rng := NewRNG(seed)
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.Range(-1, 1)
	}
	return m
}

// SPDMatrix generates an n×n symmetric positive-definite matrix, the
// input class Cholesky factorization requires. It builds B·Bᵀ + n·I,
// which is SPD by construction.
func SPDMatrix(seed uint64, n int) []float64 {
	rng := NewRNG(seed)
	b := make([]float64, n*n)
	for i := range b {
		b[i] = rng.Range(-1, 1)
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += b[i*n+k] * b[j*n+k]
			}
			if i == j {
				s += float64(n)
			}
			a[i*n+j] = s
			a[j*n+i] = s
		}
	}
	return a
}

// Points generates n points of dim features each (row-major), uniform
// in [0, 10) — the Kmeans input shape used by MineBench.
func Points(seed uint64, n, dim int) []float64 {
	rng := NewRNG(seed)
	p := make([]float64, n*dim)
	for i := range p {
		p[i] = rng.Range(0, 10)
	}
	return p
}

// ClusteredPoints generates n points of dim features drawn from k
// well-separated spherical clusters; returns the points and the true
// centers. Useful for validating that Kmeans actually converges to
// sensible clusters.
func ClusteredPoints(seed uint64, n, dim, k int) (points, centers []float64) {
	rng := NewRNG(seed)
	centers = make([]float64, k*dim)
	for c := 0; c < k; c++ {
		for d := 0; d < dim; d++ {
			centers[c*dim+d] = float64(c*20) + rng.Range(0, 2)
		}
	}
	points = make([]float64, n*dim)
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		for d := 0; d < dim; d++ {
			points[i*dim+d] = centers[c*dim+d] + rng.Range(-0.5, 0.5)
		}
	}
	return points, centers
}

// ThermalGrid generates rows×cols initial temperature and power grids
// for the Hotspot stencil: ambient temperature plus a few hot blocks.
func ThermalGrid(seed uint64, rows, cols int) (temp, power []float64) {
	rng := NewRNG(seed)
	temp = make([]float64, rows*cols)
	power = make([]float64, rows*cols)
	for i := range temp {
		temp[i] = 323.0 + rng.Range(-1, 1) // ≈ 50°C ambient
		power[i] = rng.Range(0, 0.5)
	}
	// A handful of hot functional units.
	for b := 0; b < 4; b++ {
		r0, c0 := rng.Intn(max(1, rows-8)), rng.Intn(max(1, cols-8))
		for r := r0; r < min(rows, r0+8); r++ {
			for c := c0; c < min(cols, c0+8); c++ {
				power[r*cols+c] = 5 + rng.Range(0, 1)
			}
		}
	}
	return temp, power
}

// Records generates n (latitude, longitude) records for the NN
// benchmark, uniformly spread over the globe-ish box the Rodinia
// generator uses.
func Records(seed uint64, n int) (lat, lon []float32) {
	rng := NewRNG(seed)
	lat = make([]float32, n)
	lon = make([]float32, n)
	for i := 0; i < n; i++ {
		lat[i] = float32(rng.Range(0, 90))
		lon[i] = float32(rng.Range(0, 180))
	}
	return lat, lon
}

// UltrasoundImage generates a rows×cols speckled image in (0, 255] of
// the kind SRAD denoises: a smooth field multiplied by exponential
// speckle noise.
func UltrasoundImage(seed uint64, rows, cols int) []float64 {
	rng := NewRNG(seed)
	img := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			base := 128 + 64*math.Sin(float64(r)/17)*math.Cos(float64(c)/23)
			speckle := -math.Log(1 - rng.Float64() + 1e-12) // Exp(1)
			v := base * speckle
			if v < 1 {
				v = 1
			}
			if v > 255 {
				v = 255
			}
			img[r*cols+c] = v
		}
	}
	return img
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
