package workload

import (
	"reflect"
	"testing"
)

// Golden values lock the exact byte-for-byte arrival streams: the
// scheduler's determinism guarantee (DESIGN.md §6) rests on these
// generators producing identical output on every platform.
func TestPoissonArrivalsGolden(t *testing.T) {
	got, err := PoissonArrivals(42, 5, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1353110, 1527357, 1853920, 2275805, 2314577}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PoissonArrivals(42, 5, 1e6) = %v, want %v", got, want)
	}
}

func TestBurstyArrivalsGolden(t *testing.T) {
	got, err := BurstyArrivals(42, 6, 3, 1e5, 5e6)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{6765552, 6782977, 6815633, 8925060, 8928937, 9131605}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BurstyArrivals(42, 6, 3, 1e5, 5e6) = %v, want %v", got, want)
	}
	// The burst structure must be visible: within-burst gaps are an
	// order of magnitude tighter than the between-burst silences.
	if gap := got[3] - got[2]; gap < 10*(got[2]-got[1]) {
		t.Errorf("between-burst gap %d not much larger than within-burst gap %d", gap, got[2]-got[1])
	}
}

func TestHeavyTailArrivalsGolden(t *testing.T) {
	got, err := HeavyTailArrivals(42, 5, 1e5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{246470, 358788, 483111, 615590, 718209}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HeavyTailArrivals(42, 5, 1e5, 1.5) = %v, want %v", got, want)
	}
}

func TestArrivalsInvariants(t *testing.T) {
	type gen func(seed uint64) ([]int64, error)
	gens := map[string]gen{
		"poisson": func(s uint64) ([]int64, error) { return PoissonArrivals(s, 200, 5e5) },
		"bursty":  func(s uint64) ([]int64, error) { return BurstyArrivals(s, 200, 8, 1e4, 2e6) },
		"heavy":   func(s uint64) ([]int64, error) { return HeavyTailArrivals(s, 200, 5e4, 1.3) },
	}
	for name, g := range gens {
		for seed := uint64(1); seed <= 5; seed++ {
			xs, err := g(seed)
			if err != nil {
				t.Fatalf("%s(seed=%d): %v", name, seed, err)
			}
			if len(xs) != 200 {
				t.Fatalf("%s(seed=%d): got %d arrivals, want 200", name, seed, len(xs))
			}
			for i := 1; i < len(xs); i++ {
				if xs[i] < xs[i-1] {
					t.Fatalf("%s(seed=%d): arrivals not sorted at %d: %d < %d", name, seed, i, xs[i], xs[i-1])
				}
			}
			if xs[0] < 0 {
				t.Fatalf("%s(seed=%d): negative first arrival %d", name, seed, xs[0])
			}
			again, _ := g(seed)
			if !reflect.DeepEqual(xs, again) {
				t.Fatalf("%s(seed=%d): not reproducible", name, seed)
			}
		}
	}
}

func TestArrivalsErrors(t *testing.T) {
	if _, err := PoissonArrivals(1, -1, 1e6); err == nil {
		t.Error("negative n should error")
	}
	if _, err := PoissonArrivals(1, 5, 0); err == nil {
		t.Error("zero mean gap should error")
	}
	if _, err := BurstyArrivals(1, 5, 0, 1e5, 1e6); err == nil {
		t.Error("zero burst length should error")
	}
	if _, err := BurstyArrivals(1, 5, 2, -1, 1e6); err == nil {
		t.Error("negative within gap should error")
	}
	if _, err := HeavyTailArrivals(1, 5, 1e5, 0); err == nil {
		t.Error("zero alpha should error")
	}
	if _, err := HeavyTailArrivals(1, 5, 0, 1.5); err == nil {
		t.Error("zero min gap should error")
	}
	if xs, err := PoissonArrivals(1, 0, 1e6); err != nil || len(xs) != 0 {
		t.Error("n=0 should return an empty slice without error")
	}
}
