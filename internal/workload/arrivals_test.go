package workload

import (
	"reflect"
	"testing"
)

// Golden values lock the exact byte-for-byte arrival streams: the
// scheduler's determinism guarantee (DESIGN.md §6) rests on these
// generators producing identical output on every platform.
func TestPoissonArrivalsGolden(t *testing.T) {
	got, err := PoissonArrivals(42, 5, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1353110, 1527357, 1853920, 2275805, 2314577}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PoissonArrivals(42, 5, 1e6) = %v, want %v", got, want)
	}
}

func TestBurstyArrivalsGolden(t *testing.T) {
	got, err := BurstyArrivals(42, 6, 3, 1e5, 5e6)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{6765552, 6782977, 6815633, 8925060, 8928937, 9131605}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BurstyArrivals(42, 6, 3, 1e5, 5e6) = %v, want %v", got, want)
	}
	// The burst structure must be visible: within-burst gaps are an
	// order of magnitude tighter than the between-burst silences.
	if gap := got[3] - got[2]; gap < 10*(got[2]-got[1]) {
		t.Errorf("between-burst gap %d not much larger than within-burst gap %d", gap, got[2]-got[1])
	}
}

func TestHeavyTailArrivalsGolden(t *testing.T) {
	got, err := HeavyTailArrivals(42, 5, 1e5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{246470, 358788, 483111, 615590, 718209}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("HeavyTailArrivals(42, 5, 1e5, 1.5) = %v, want %v", got, want)
	}
}

func TestDiurnalArrivalsGolden(t *testing.T) {
	got, err := DiurnalArrivals(42, 6, 1e6, 6e6, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{209815, 740856, 1167968, 1389446, 2923924, 4239935}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DiurnalArrivals(42, 6, 1e6, 6e6, 0.8) = %v, want %v", got, want)
	}
	// The rate modulation must be visible across the cycle: arrivals
	// bunch on the rising half-period and thin on the falling one.
	dense, err := DiurnalArrivals(7, 400, 1e6, 4e8, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	peak, trough := 0, 0
	for _, a := range dense {
		phase := float64(a) / 4e8
		switch {
		case phase-float64(int(phase)) < 0.5:
			peak++
		default:
			trough++
		}
	}
	if peak <= trough {
		t.Errorf("diurnal peak half-cycles got %d arrivals, troughs %d; modulation invisible", peak, trough)
	}
}

func TestCorrelatedBurstArrivalsGolden(t *testing.T) {
	got, err := CorrelatedBurstArrivals(42, 8, 3, 0.7, 1e5, 5e6)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2578851, 2611507, 2653696, 22717855, 22742496, 28890579, 28986938, 29009867}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CorrelatedBurstArrivals(42, 8, 3, 0.7, 1e5, 5e6) = %v, want %v", got, want)
	}
	// The burst structure must be visible: the first burst's three
	// within-gaps are tight, then a long inter-burst silence.
	if gap := got[3] - got[2]; gap < 10*(got[2]-got[1]) {
		t.Errorf("inter-burst gap %d not much larger than within-burst gap %d", gap, got[2]-got[1])
	}
}

func TestArrivalsDispatcherGolden(t *testing.T) {
	// The dispatcher's fixed shape parameters are part of the
	// determinism contract: scenario arrival streams must never move
	// under a refactor.
	cases := map[string][]int64{
		"diurnal":    {80672, 1284743, 1459736, 1845100, 4225050},
		"correlated": {77881, 308903, 396354, 456582, 485275},
		"heavytail":  {473331, 817708, 2406290, 3016286, 3525045},
	}
	for kind, want := range cases {
		got, err := Arrivals(kind, 7, 5, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Arrivals(%q, 7, 5, 1e6) = %v, want %v", kind, got, want)
		}
	}
	for _, kind := range Names() {
		if _, err := Arrivals(kind, 1, 10, 1e6); err != nil {
			t.Errorf("Arrivals(%q): %v", kind, err)
		}
	}
	if _, err := Arrivals("uniform", 1, 10, 1e6); err == nil {
		t.Error("unknown arrival kind should error")
	}
}

func TestNewArrivalErrors(t *testing.T) {
	if _, err := DiurnalArrivals(1, -1, 1e6, 6e6, 0.5); err == nil {
		t.Error("negative count should error")
	}
	if _, err := DiurnalArrivals(1, 5, 0, 6e6, 0.5); err == nil {
		t.Error("zero mean gap should error")
	}
	if _, err := DiurnalArrivals(1, 5, 1e6, 0, 0.5); err == nil {
		t.Error("zero period should error")
	}
	if _, err := DiurnalArrivals(1, 5, 1e6, 6e6, 1); err == nil {
		t.Error("amplitude 1 should error")
	}
	if _, err := CorrelatedBurstArrivals(1, -1, 3, 0.5, 1e5, 5e6); err == nil {
		t.Error("negative count should error")
	}
	if _, err := CorrelatedBurstArrivals(1, 5, 0.5, 0.5, 1e5, 5e6); err == nil {
		t.Error("mean burst < 1 should error")
	}
	if _, err := CorrelatedBurstArrivals(1, 5, 3, 1, 1e5, 5e6); err == nil {
		t.Error("rho 1 should error")
	}
	if _, err := CorrelatedBurstArrivals(1, 5, 3, 0.5, 0, 5e6); err == nil {
		t.Error("zero within gap should error")
	}
	if _, err := CorrelatedBurstArrivals(1, 5, 3, 0.5, 5e6, 5e6); err == nil {
		t.Error("within gap at or above the mean gap should error")
	}
}

// TestArrivalsRateMatched asserts the offered-load contract of the
// Arrivals dispatcher: every kind's empirical mean inter-arrival gap
// is within 5% of the requested meanGapNs, at the short stream lengths
// the CLI scenarios actually use, averaged over seeds. Before the
// generators were rate-matched, "correlated" ran 8% slow (a fixed
// inter-burst silence over AR(1)-drifting burst lengths) and "diurnal"
// 7% fast (gap stretching instead of exact thinning) at n = 48 — so
// -arrival comparisons compared different offered loads.
func TestArrivalsRateMatched(t *testing.T) {
	const (
		n     = 48
		mean  = 1e6
		seeds = 400
	)
	for _, kind := range Names() {
		var total float64
		for seed := uint64(1); seed <= seeds; seed++ {
			xs, err := Arrivals(kind, seed, n, mean)
			if err != nil {
				t.Fatal(err)
			}
			total += float64(xs[n-1]) / n
		}
		got := total / seeds
		if ratio := got / mean; ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%s: empirical mean gap %.0f ns is %.1f%% off the requested %.0f ns",
				kind, got, (ratio-1)*100, mean)
		}
	}
}

func TestArrivalsInvariants(t *testing.T) {
	type gen func(seed uint64) ([]int64, error)
	gens := map[string]gen{
		"poisson":    func(s uint64) ([]int64, error) { return PoissonArrivals(s, 200, 5e5) },
		"bursty":     func(s uint64) ([]int64, error) { return BurstyArrivals(s, 200, 8, 1e4, 2e6) },
		"heavy":      func(s uint64) ([]int64, error) { return HeavyTailArrivals(s, 200, 5e4, 1.3) },
		"diurnal":    func(s uint64) ([]int64, error) { return DiurnalArrivals(s, 200, 5e5, 5e7, 0.8) },
		"correlated": func(s uint64) ([]int64, error) { return CorrelatedBurstArrivals(s, 200, 6, 0.7, 1e4, 2e6) },
	}
	for name, g := range gens {
		for seed := uint64(1); seed <= 5; seed++ {
			xs, err := g(seed)
			if err != nil {
				t.Fatalf("%s(seed=%d): %v", name, seed, err)
			}
			if len(xs) != 200 {
				t.Fatalf("%s(seed=%d): got %d arrivals, want 200", name, seed, len(xs))
			}
			for i := 1; i < len(xs); i++ {
				if xs[i] < xs[i-1] {
					t.Fatalf("%s(seed=%d): arrivals not sorted at %d: %d < %d", name, seed, i, xs[i], xs[i-1])
				}
			}
			if xs[0] < 0 {
				t.Fatalf("%s(seed=%d): negative first arrival %d", name, seed, xs[0])
			}
			again, _ := g(seed)
			if !reflect.DeepEqual(xs, again) {
				t.Fatalf("%s(seed=%d): not reproducible", name, seed)
			}
		}
	}
}

func TestArrivalsErrors(t *testing.T) {
	if _, err := PoissonArrivals(1, -1, 1e6); err == nil {
		t.Error("negative n should error")
	}
	if _, err := PoissonArrivals(1, 5, 0); err == nil {
		t.Error("zero mean gap should error")
	}
	if _, err := BurstyArrivals(1, 5, 0, 1e5, 1e6); err == nil {
		t.Error("zero burst length should error")
	}
	if _, err := BurstyArrivals(1, 5, 2, -1, 1e6); err == nil {
		t.Error("negative within gap should error")
	}
	if _, err := HeavyTailArrivals(1, 5, 1e5, 0); err == nil {
		t.Error("zero alpha should error")
	}
	if _, err := HeavyTailArrivals(1, 5, 0, 1.5); err == nil {
		t.Error("zero min gap should error")
	}
	if xs, err := PoissonArrivals(1, 0, 1e6); err != nil || len(xs) != 0 {
		t.Error("n=0 should return an empty slice without error")
	}
}
