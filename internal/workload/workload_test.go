package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestFloat64InUnitInterval(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRangeWithinBounds(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range(-3,5) = %v", v)
		}
	}
}

func TestMatrixShapeAndRange(t *testing.T) {
	m := Matrix(1, 16)
	if len(m) != 256 {
		t.Fatalf("len = %d, want 256", len(m))
	}
	for _, v := range m {
		if v < -1 || v >= 1 {
			t.Fatalf("entry %v out of [-1,1)", v)
		}
	}
}

// An SPD matrix must be symmetric with positive diagonal and, by the
// Gershgorin-like dominance we build in, positive-definite. We check
// symmetry exactly and definiteness via a Cholesky-style elimination.
func TestSPDMatrixIsSymmetricPositiveDefinite(t *testing.T) {
	n := 24
	a := SPDMatrix(3, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a[i*n+j] != a[j*n+i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
	// In-place LDLᵀ-ish check: all pivots positive.
	c := append([]float64(nil), a...)
	for k := 0; k < n; k++ {
		if c[k*n+k] <= 0 {
			t.Fatalf("non-positive pivot %v at %d: not positive-definite", c[k*n+k], k)
		}
		for i := k + 1; i < n; i++ {
			f := c[i*n+k] / c[k*n+k]
			for j := k; j < n; j++ {
				c[i*n+j] -= f * c[k*n+j]
			}
		}
	}
}

func TestClusteredPointsNearCenters(t *testing.T) {
	pts, centers := ClusteredPoints(5, 200, 3, 4)
	if len(pts) != 600 || len(centers) != 12 {
		t.Fatalf("sizes: %d points, %d centers", len(pts), len(centers))
	}
	for i := 0; i < 200; i++ {
		best := math.Inf(1)
		for c := 0; c < 4; c++ {
			d := 0.0
			for k := 0; k < 3; k++ {
				diff := pts[i*3+k] - centers[c*3+k]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		if best > 3*0.25+1e-9 { // each coordinate within ±0.5
			t.Fatalf("point %d is %.3f² away from every center", i, math.Sqrt(best))
		}
	}
}

func TestThermalGridHasHotSpots(t *testing.T) {
	temp, power := ThermalGrid(2, 64, 64)
	if len(temp) != 64*64 || len(power) != 64*64 {
		t.Fatal("wrong grid size")
	}
	hot := 0
	for _, p := range power {
		if p >= 5 {
			hot++
		}
	}
	if hot == 0 {
		t.Fatal("no hot blocks generated")
	}
	for _, v := range temp {
		if v < 320 || v > 326 {
			t.Fatalf("ambient temperature %v out of range", v)
		}
	}
}

func TestRecordsInBox(t *testing.T) {
	lat, lon := Records(4, 1000)
	if len(lat) != 1000 || len(lon) != 1000 {
		t.Fatal("wrong record count")
	}
	for i := range lat {
		if lat[i] < 0 || lat[i] >= 90 || lon[i] < 0 || lon[i] >= 180 {
			t.Fatalf("record %d = (%v,%v) out of box", i, lat[i], lon[i])
		}
	}
}

func TestUltrasoundImageInRange(t *testing.T) {
	img := UltrasoundImage(6, 32, 48)
	if len(img) != 32*48 {
		t.Fatal("wrong image size")
	}
	for _, v := range img {
		if v < 1 || v > 255 {
			t.Fatalf("pixel %v out of (0,255]", v)
		}
	}
	// Speckle must actually vary the image.
	minV, maxV := img[0], img[0]
	for _, v := range img {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV-minV < 10 {
		t.Fatalf("image suspiciously flat: [%v, %v]", minV, maxV)
	}
}

// Property: all generators are pure functions of their seed.
func TestPropertyGeneratorsDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		m1, m2 := Matrix(seed, 8), Matrix(seed, 8)
		for i := range m1 {
			if m1[i] != m2[i] {
				return false
			}
		}
		l1, o1 := Records(seed, 16)
		l2, o2 := Records(seed, 16)
		for i := range l1 {
			if l1[i] != l2[i] || o1[i] != o2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
