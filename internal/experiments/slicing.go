package experiments

import (
	"fmt"

	"micstream/internal/cluster"
	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/sched"
	"micstream/internal/sim"
	"micstream/internal/stats"
	"micstream/internal/workload"
)

func init() {
	register("slicing", Slicing)
}

// The convoy mix: a batch tenant's long multi-task jobs land first and
// monopolize both devices, then an interactive tenant's one-task jobs
// trickle in behind them. Without slicing a light job can only start
// when a whole heavy job drains; with slicing it wins the next slice
// boundary. The study compares whole-job stealing against stealing
// with slicing enabled, both under the size-aware (SJF) device policy,
// and reports the interactive tenant's p95 response time.
const (
	convoyHeavies    = 12   // batch jobs
	convoyHeavyTasks = 16   // tasks per batch job
	convoyHeavyFlops = 5e8  // flops per batch task
	convoyLights     = 40   // interactive jobs
	convoyLightFlops = 1e8  // flops per interactive job
	convoySliceCap   = 2    // tasks per stream grant under slicing
	convoyGapNs      = 1e6  // mean interactive inter-arrival [ns]
	convoyStaggerNs  = 5e05 // batch arrival stagger [ns]
)

// convoyJobs builds one seeded convoy instance: the batch jobs arrive
// in a tight stagger from t=0, the interactive jobs as a Poisson
// process across the batch service window.
func convoyJobs(seed uint64) ([]cluster.Job, error) {
	mk := func(id int, tenant string, arrival sim.Time, tasks int, flops float64) cluster.Job {
		ts := make([]*core.Task, tasks)
		for i := range ts {
			ts[i] = &core.Task{
				ID:         i,
				Cost:       device.KernelCost{Name: "synthetic", Flops: flops},
				StreamHint: -1,
			}
		}
		return cluster.Job{ID: id, Tenant: tenant, Arrival: arrival, Tasks: ts, Origin: -1}
	}
	jobs := make([]cluster.Job, 0, convoyHeavies+convoyLights)
	for i := 0; i < convoyHeavies; i++ {
		jobs = append(jobs, mk(i, "batch",
			sim.Time(int64(i)*int64(convoyStaggerNs)), convoyHeavyTasks, convoyHeavyFlops))
	}
	gaps, err := workload.Arrivals("poisson", seed, convoyLights, convoyGapNs)
	if err != nil {
		return nil, err
	}
	for i, at := range gaps {
		jobs = append(jobs, mk(convoyHeavies+i, "interactive", sim.Time(at), 1, convoyLightFlops))
	}
	return jobs, nil
}

// runConvoyCell executes one seeded convoy run on the 2-MIC platform.
// Both arms run whole-job stealing under the SJF device policy; the
// treatment arm additionally slices (cap 0 disables).
func runConvoyCell(seed uint64, sliceCap int) (*cluster.Result, error) {
	ctx, err := hstreams.Init(hstreams.Config{Devices: 2, Partitions: 2, StreamsPerPartition: 2})
	if err != nil {
		return nil, err
	}
	jobs, err := convoyJobs(seed)
	if err != nil {
		return nil, err
	}
	opts := []cluster.Option{
		cluster.WithPlacement(cluster.Predicted()),
		cluster.WithQueueDepth(16),
		cluster.WithStealing(0),
		cluster.WithDevicePolicy(func() sched.Policy { return sched.SJF() }),
	}
	if sliceCap > 0 {
		opts = append(opts, cluster.WithSlicing(sliceCap))
	}
	c, err := cluster.New(ctx, opts...)
	if err != nil {
		return nil, err
	}
	return c.Run(jobs)
}

// slicingGuards re-runs earlier studies' mixes with slicing toggled
// on: the no-regression half of the slicing contract. Each keeps its
// study's contention shape, placement, depth and options (FIFO device
// policy) but carries 4-tile jobs sliced at cap 2, so every job truly
// splits in half while each slice still pipelines two tiles' H2D and
// kernel phases — cap 1 on the studies' 2-tile default would measure
// the lost intra-job overlap, not the slicing machinery.
var slicingGuards = []struct {
	name string
	run  func(seed uint64, sliceCap int) (*cluster.Result, error)
}{
	{"placement-moderate", func(seed uint64, cap int) (*cluster.Result, error) {
		return runGuardCell(2, 8, cluster.ScenarioConfig{
			Seed: seed, Arrival: "bursty", TilesPerJob: 4, SizeSpread: 8, AffinityFraction: 0.5,
			Origins: []int{0, 1}, XferBytes: 4 << 20, WindowNs: 10_000_000,
		}, cap)
	}},
	{"placement-severe", func(seed uint64, cap int) (*cluster.Result, error) {
		return runGuardCell(2, 8, cluster.ScenarioConfig{
			Seed: seed, Arrival: "bursty", TilesPerJob: 4, SizeSpread: 8, AffinityFraction: 0.7,
			Origins: []int{0, 1}, XferBytes: 8 << 20, WindowNs: 15_000_000,
		}, cap)
	}},
	{"stealing-stranded", func(seed uint64, cap int) (*cluster.Result, error) {
		return runGuardCell(2, 16, cluster.ScenarioConfig{
			Seed: seed, Arrival: "bursty", TilesPerJob: 4, SizeSpread: 4, AffinityFraction: 1,
			Origins: []int{0}, XferBytes: 8 << 20, WindowNs: 10_000_000,
		}, cap, cluster.WithStealing(0))
	}},
	{"residency-affinity", func(seed uint64, cap int) (*cluster.Result, error) {
		return runGuardCell(4, 8, cluster.ScenarioConfig{
			Seed: seed, Arrival: "bursty", TilesPerJob: 4, SizeSpread: 4, AffinityFraction: 1,
			Origins: []int{0}, Datasets: 4, XferBytes: 8 << 20, WindowNs: 10_000_000,
		}, cap, cluster.WithResidency(0))
	}},
}

// runGuardCell executes one guard mix with or without slicing. The
// placement mixes use Predicted; the residency guard swaps in Affinity
// via devices==4 (matching the residency study's winning config).
func runGuardCell(devices, depth int, cfg cluster.ScenarioConfig, sliceCap int, extra ...cluster.Option) (*cluster.Result, error) {
	ctx, err := hstreams.Init(hstreams.Config{Devices: devices, Partitions: 2, StreamsPerPartition: 2})
	if err != nil {
		return nil, err
	}
	jobs, err := cluster.BuildScenario(ctx, cfg)
	if err != nil {
		return nil, err
	}
	place := cluster.Predicted()
	if devices == 4 {
		place = cluster.Affinity()
	}
	opts := append([]cluster.Option{
		cluster.WithPlacement(place), cluster.WithQueueDepth(depth),
	}, extra...)
	if sliceCap > 0 {
		opts = append(opts, cluster.WithSlicing(sliceCap))
	}
	c, err := cluster.New(ctx, opts...)
	if err != nil {
		return nil, err
	}
	return c.Run(jobs)
}

// slicingRow is one (scenario, metric) comparison, seed-averaged.
type slicingRow struct {
	scenario, metric string
	base, sliced     float64 // mean metric value [ms]
	delta            float64 // (sliced − base) / base; negative is an improvement
	preempts         float64 // mean mid-job migrations per sliced run
}

// runSlicingStudy measures the convoy mix (response time and makespan)
// and every guard mix (makespan only), seed-averaged; the experiments
// tests assert the acceptance contract on these rows.
func runSlicingStudy() ([]slicingRow, error) {
	const seeds = 5
	mean := func(xs []float64) float64 { return stats.Mean(xs) }
	row := func(scenario, metric string, base, sliced, preempts []float64) slicingRow {
		r := slicingRow{
			scenario: scenario, metric: metric,
			base: mean(base), sliced: mean(sliced), preempts: mean(preempts),
		}
		if r.base > 0 {
			r.delta = (r.sliced - r.base) / r.base
		}
		return r
	}

	var p95b, p95s, mkb, mks, npre []float64
	for s := uint64(0); s < seeds; s++ {
		seed := clusterSeed + s
		rb, err := runConvoyCell(seed, 0)
		if err != nil {
			return nil, err
		}
		rs, err := runConvoyCell(seed, convoySliceCap)
		if err != nil {
			return nil, err
		}
		tb, ts := rb.Tenant("interactive"), rs.Tenant("interactive")
		if tb == nil || ts == nil {
			return nil, fmt.Errorf("convoy run lost the interactive tenant")
		}
		p95b = append(p95b, tb.P95.Milliseconds())
		p95s = append(p95s, ts.P95.Milliseconds())
		mkb = append(mkb, rb.Makespan.Milliseconds())
		mks = append(mks, rs.Makespan.Milliseconds())
		npre = append(npre, float64(rs.Preempts))
	}
	rows := []slicingRow{
		row("convoy", "interactive p95", p95b, p95s, npre),
		row("convoy", "makespan", mkb, mks, npre),
	}

	for _, g := range slicingGuards {
		var base, sliced, pre []float64
		for s := uint64(0); s < seeds; s++ {
			seed := clusterSeed + s
			rb, err := g.run(seed, 0)
			if err != nil {
				return nil, err
			}
			rs, err := g.run(seed, 2)
			if err != nil {
				return nil, err
			}
			base = append(base, rb.Makespan.Milliseconds())
			sliced = append(sliced, rs.Makespan.Milliseconds())
			pre = append(pre, float64(rs.Preempts))
		}
		rows = append(rows, row(g.name, "makespan", base, sliced, pre))
	}
	return rows, nil
}

// Slicing regenerates the preemptive-slicing study: the convoy mix
// where slicing exists to win (an interactive tenant's p95 response
// time trapped behind a batch tenant's multi-task jobs), plus the
// earlier placement/stealing/residency mixes re-run with slicing
// toggled on to show it never costs more than noise when it has
// nothing to win. Mid-job migrations (Preempts) only fire where a
// parked remainder meets another device's drain instant — the convoy
// mix under the SJF device policy; the guard mixes re-dispatch
// remainders immediately and stay preempt-free.
func Slicing() (*Table, error) {
	rows, err := runSlicingStudy()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "slicing",
		Title:   "Preemptive job slicing: tenant response times and makespan with task-granularity stealing",
		Columns: []string{"scenario", "metric", "whole-job", "+slicing", "delta", "preempts/run"},
		Notes: []string{
			fmt.Sprintf("convoy: 2 MICs × 2 partitions × 2 streams, %d batch jobs (%d tasks × %.0e flops) vs %d interactive 1-task jobs (poisson), predicted placement, stealing, SJF device policy; slicing cap %d tasks/grant",
				convoyHeavies, convoyHeavyTasks, convoyHeavyFlops, convoyLights, convoySliceCap),
			"guard rows re-run the placement (moderate/severe), stranded-stealing and residency (affinity+cache, 4 MICs) mixes with 4-tile jobs sliced at cap 2: every job splits in half, each slice still pipelines two tiles",
			"delta = (sliced − whole-job) / whole-job: negative improves; the contract is ≥20% p95 relief on the convoy and ≤1% makespan drift on every guard row",
			"each cell averages 5 seeded runs; repeats are bit-identical",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.scenario, r.metric + " [ms]", fmtMS(r.base), fmtMS(r.sliced),
			fmt.Sprintf("%+.1f%%", r.delta*100), fmt.Sprintf("%.1f", r.preempts),
		})
	}
	return t, nil
}
