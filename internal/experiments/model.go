package experiments

import (
	"fmt"
	"math"

	"micstream/internal/apps/cf"
	"micstream/internal/apps/hbench"
	"micstream/internal/apps/hotspot"
	"micstream/internal/apps/kmeans"
	"micstream/internal/apps/mm"
	"micstream/internal/apps/nn"
	"micstream/internal/apps/srad"
	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/model"
	"micstream/internal/pcie"
)

func init() {
	register("modelval", ModelVal)
	register("guided", Guided)
}

// ModelApp couples one application's analytic description with its
// simulated evaluation, so validation sweeps and CLIs compare the two
// over the same (P, T) points.
type ModelApp struct {
	// Name labels the application.
	Name string
	// Workload is the application's analytic self-description.
	Workload model.Workload
	// Eval runs the simulation at one configuration.
	Eval core.EvalFunc
	// Partitions lists the validation sweep's partition counts.
	Partitions []int
	// TilesFor lists the sweep's tile axis for a partition count; the
	// values carry each app's own tile meaning (task count for the
	// stripe/chunk apps, grid edge for MM and CF).
	TilesFor func(p int) []int
}

// resultEval adapts an application Run method to core.EvalFunc.
func resultEval(run func(p, t int) (core.Result, error)) core.EvalFunc {
	return func(p, t int) (float64, error) {
		res, err := run(p, t)
		if err != nil {
			return 0, err
		}
		return res.Wall.Seconds(), nil
	}
}

// tileList returns the stripe/chunk apps' shared tile axis.
func tileList(p int) []int { return []int{p, 4 * p, 8 * p} }

// gridList returns the tile-grid apps' sweep axis (grid edges that
// divide the validation problem sizes).
func gridList(int) []int { return []int{2, 4, 8} }

// ModelApps instantiates every application of the suite at validation
// scale — small enough that the full predicted-vs-simulated sweep
// regenerates in seconds, large enough that both transfer-bound
// (hbench, nn) and compute-bound (mm, cf, srad) regimes appear.
func ModelApps() ([]ModelApp, error) {
	divisors := []int{2, 4, 8, 14, 28, 56}

	hb, err := hbench.New(hbench.DefaultParams())
	if err != nil {
		return nil, err
	}
	mmApp, err := mm.New(mm.Params{N: 2048})
	if err != nil {
		return nil, err
	}
	nnApp, err := nn.New(nn.DefaultParams())
	if err != nil {
		return nil, err
	}
	kmParams := kmeans.DefaultParams()
	kmParams.Iterations = 5
	km, err := kmeans.New(kmParams)
	if err != nil {
		return nil, err
	}
	hs, err := hotspot.New(hotspot.Params{Dim: 2048, Iterations: 5})
	if err != nil {
		return nil, err
	}
	sr, err := srad.New(srad.Params{Dim: 2048, Iterations: 3, Lambda: 0.5})
	if err != nil {
		return nil, err
	}
	cfApp, err := cf.New(cf.Params{N: 2048})
	if err != nil {
		return nil, err
	}

	return []ModelApp{
		{
			Name: "hbench", Workload: hb.Model(),
			Eval:       resultEval(hb.RunStreamed),
			Partitions: divisors, TilesFor: tileList,
		},
		{
			Name: "mm", Workload: mmApp.Model(),
			Eval:       resultEval(mmApp.Run),
			Partitions: divisors, TilesFor: gridList,
		},
		{
			Name: "nn", Workload: nnApp.Model(),
			Eval:       resultEval(nnApp.Run),
			Partitions: divisors, TilesFor: tileList,
		},
		{
			Name: "kmeans", Workload: km.Model(),
			Eval:       resultEval(km.Run),
			Partitions: divisors, TilesFor: tileList,
		},
		{
			Name: "hotspot", Workload: hs.Model(),
			Eval:       resultEval(hs.Run),
			Partitions: divisors, TilesFor: tileList,
		},
		{
			Name: "srad", Workload: sr.Model(),
			Eval:       resultEval(sr.Run),
			Partitions: divisors, TilesFor: tileList,
		},
		{
			Name: "cf", Workload: cfApp.Model(),
			Eval: resultEval(func(p, g int) (core.Result, error) {
				return cfApp.Run(1, p, g)
			}),
			Partitions: divisors, TilesFor: gridList,
		},
	}, nil
}

// SweepModel compares prediction against simulation over one app's
// validation plane and reports per-point relative errors.
func SweepModel(m *model.Model, app ModelApp) (points int, meanErr, maxErr float64, err error) {
	var sum float64
	for _, p := range app.Partitions {
		for _, t := range app.TilesFor(p) {
			pred, perr := m.Predict(app.Workload, p, t)
			if perr != nil {
				return 0, 0, 0, perr
			}
			meas, merr := app.Eval(p, t)
			if merr != nil {
				return 0, 0, 0, merr
			}
			if meas <= 0 {
				continue
			}
			e := math.Abs(pred.Seconds()-meas) / meas
			sum += e
			if e > maxErr {
				maxErr = e
			}
			points++
		}
	}
	if points > 0 {
		meanErr = sum / float64(points)
	}
	return points, meanErr, maxErr, nil
}

// ModelVal regenerates the performance-model validation study: for
// every application, the mean and maximum relative error of the
// analytic prediction against full simulation across the (P, T)
// validation plane (DESIGN.md §8).
func ModelVal() (*Table, error) {
	apps, err := ModelApps()
	if err != nil {
		return nil, err
	}
	m := model.New(device.Xeon31SP(), pcie.DefaultConfig())
	t := &Table{
		ID:      "modelval",
		Title:   "Analytic model vs simulation: relative prediction error per app",
		Columns: []string{"app", "points", "mean err[%]", "max err[%]"},
	}
	for _, app := range apps {
		points, meanErr, maxErr, err := SweepModel(m, app)
		if err != nil {
			return nil, fmt.Errorf("modelval %s: %w", app.Name, err)
		}
		t.Rows = append(t.Rows, []string{
			app.Name,
			fmt.Sprintf("%d", points),
			fmt.Sprintf("%.1f", meanErr*100),
			fmt.Sprintf("%.1f", maxErr*100),
		})
	}
	t.Notes = append(t.Notes,
		"uncalibrated model (TransferScale = ComputeScale = 1); Fit against probe runs tightens per-workload bias",
		"CF's right-looking DAG overlaps across steps the model serializes, so its error bound is the loosest")
	return t, nil
}

// SynthWorkload is the generic overlappable workload of cmd/mictune:
// flops of kernel work and bytes/2 in each transfer direction, split
// evenly over tiles.
func SynthWorkload(flops float64, bytes int64) model.Workload {
	return model.Uniform("synthetic", bytes/2, bytes/2,
		device.KernelCost{Name: "work", Flops: flops})
}

// SynthEval simulates the synthetic workload at one configuration —
// the measurement the model-guided search tries to avoid.
func SynthEval(flops float64, bytes int64) core.EvalFunc {
	return func(partitions, tiles int) (float64, error) {
		ctx, err := hstreams.Init(hstreams.Config{Partitions: partitions, Trace: true})
		if err != nil {
			return 0, err
		}
		elems := int(bytes / 2)
		if elems < 1 {
			elems = 1 // a 1-byte workload still needs a non-empty buffer
		}
		buf := hstreams.AllocVirtual(ctx, "data", elems, 1)
		per := buf.Len() / tiles
		if per == 0 {
			per = 1
		}
		tasks := make([]*core.Task, 0, tiles)
		for i := 0; i < tiles; i++ {
			off := (i * per) % buf.Len()
			n := per
			if off+n > buf.Len() {
				n = buf.Len() - off
			}
			tasks = append(tasks, &core.Task{
				ID:         i,
				H2D:        []core.TransferSpec{core.Xfer(buf, off, n)},
				Cost:       device.KernelCost{Name: "work", Flops: flops / float64(tiles)},
				D2H:        []core.TransferSpec{core.Xfer(buf, off, n)},
				StreamHint: -1,
			})
		}
		res, err := core.Run(ctx, tasks, 0)
		if err != nil {
			return 0, err
		}
		return res.Wall.Seconds(), nil
	}
}

// Guided regenerates the search-cost study: exhaustive, pruned,
// coordinate-descent and model-guided searches of the synthetic
// (P, T) plane, with each method's evaluation count and its optimum's
// gap to the exhaustive one.
func Guided() (*Table, error) {
	const (
		flops = 4e10
		bytes = int64(256 << 20)
		maxP  = 56
		maxT  = 128
		topK  = 16
	)
	eval := SynthEval(flops, bytes)
	exhaustive := core.ExhaustiveSpace(maxP, maxT)
	pruned := core.HeuristicSpace(56, maxT)

	ex, err := core.Tune(exhaustive, eval)
	if err != nil {
		return nil, err
	}
	pr, err := core.Tune(pruned, eval)
	if err != nil {
		return nil, err
	}
	cd, err := core.TuneCoordinateDescent(pruned, eval, 3)
	if err != nil {
		return nil, err
	}
	m := model.New(device.Xeon31SP(), pcie.DefaultConfig())
	gd, err := core.TuneGuided(exhaustive, m.EvalFunc(SynthWorkload(flops, bytes)), eval, topK)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "guided",
		Title:   "Search cost vs optimum quality: exhaustive, pruned, descent, model-guided",
		Columns: []string{"method", "evaluations", "best P", "best T", "time[ms]", "gap[%]"},
	}
	row := func(name string, r core.TuneResult) {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d", r.Evaluations),
			fmt.Sprintf("%d", r.Partitions),
			fmt.Sprintf("%d", r.Tiles),
			fmtMS(r.Seconds * 1e3),
			fmt.Sprintf("%.2f", (r.Seconds/ex.Seconds-1)*100),
		})
	}
	row("exhaustive", ex)
	row("pruned", pr)
	row("descent", cd)
	row(fmt.Sprintf("guided k=%d", topK), gd)
	t.Notes = append(t.Notes,
		"the model ranks all points analytically; only its top k are simulated (core.TuneGuided)")
	return t, nil
}
