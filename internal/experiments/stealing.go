package experiments

import (
	"fmt"

	"micstream/internal/cluster"
	"micstream/internal/hstreams"
	"micstream/internal/sim"
	"micstream/internal/stats"
)

func init() {
	register("stealing", Stealing)
}

// stealingScenarios extends the placement study's imbalance grid with
// the "stranded" mix — the Fig. 11 shape pushed to where eager
// commitment visibly hurts: every job's inputs live on device 0,
// staging is expensive, and a deep committed queue (depth 16) freezes
// placement decisions long before the mix's imbalance has played out.
var stealingScenarios = []struct {
	name             string
	spread, affinity float64
	origins          []int
	xfer             int64
	windowNs         int64
	depth            int
}{
	{"moderate", 8, 0.5, []int{0, 1}, 4 << 20, 10_000_000, 8},
	{"severe", 8, 0.7, []int{0, 1}, 8 << 20, 15_000_000, 8},
	{"stranded", 4, 1, []int{0}, 8 << 20, 10_000_000, 16},
}

// stealingRow is one scenario's seed-averaged measurements.
type stealingRow struct {
	name                  string
	pred, steal, static2x float64 // mean makespan [ms]
	steals                float64 // mean steals per run
	projected             float64 // static-best / devices: the linear projection
	gapClosed             float64 // share of (pred − projected) recovered; NaN when pred ≤ projected
}

// runStealingCell executes one (configuration, seed) cell on the same
// 2-device platform as the placement study.
func runStealingCell(scIdx int, seed uint64, place cluster.Policy, steal bool) (*cluster.Result, error) {
	sc := stealingScenarios[scIdx]
	ctx, err := hstreams.Init(hstreams.Config{Devices: 2, Partitions: 2, StreamsPerPartition: 2})
	if err != nil {
		return nil, err
	}
	jobs, err := cluster.BuildScenario(ctx, cluster.ScenarioConfig{
		Seed:             seed,
		Arrival:          "bursty",
		SizeSpread:       sc.spread,
		AffinityFraction: sc.affinity,
		Origins:          sc.origins,
		XferBytes:        sc.xfer,
		WindowNs:         sc.windowNs,
	})
	if err != nil {
		return nil, err
	}
	opts := []cluster.Option{cluster.WithPlacement(place), cluster.WithQueueDepth(sc.depth)}
	if steal {
		opts = append(opts, cluster.WithStealing(0))
	}
	c, err := cluster.New(ctx, opts...)
	if err != nil {
		return nil, err
	}
	return c.Run(jobs)
}

// runStealingStudy measures every scenario, seed-averaged; the
// experiments tests assert the acceptance contract on these rows.
func runStealingStudy() ([]stealingRow, error) {
	const seeds = 5
	rows := make([]stealingRow, 0, len(stealingScenarios))
	for scIdx, sc := range stealingScenarios {
		var pred, steal, static, nsteals []float64
		for s := uint64(0); s < seeds; s++ {
			seed := clusterSeed + s
			rp, err := runStealingCell(scIdx, seed, cluster.Predicted(), false)
			if err != nil {
				return nil, err
			}
			rs, err := runStealingCell(scIdx, seed, cluster.Predicted(), true)
			if err != nil {
				return nil, err
			}
			best := sim.Duration(0)
			for d := 0; d < 2; d++ {
				rst, err := runStealingCell(scIdx, seed, cluster.Static(d), false)
				if err != nil {
					return nil, err
				}
				if best == 0 || rst.Makespan < best {
					best = rst.Makespan
				}
			}
			pred = append(pred, rp.Makespan.Milliseconds())
			steal = append(steal, rs.Makespan.Milliseconds())
			static = append(static, best.Milliseconds())
			nsteals = append(nsteals, float64(rs.Steals))
		}
		row := stealingRow{
			name:     sc.name,
			pred:     stats.Mean(pred),
			steal:    stats.Mean(steal),
			static2x: stats.Mean(static),
			steals:   stats.Mean(nsteals),
		}
		row.projected = row.static2x / 2
		if gap := row.pred - row.projected; gap > 0 {
			row.gapClosed = (row.pred - row.steal) / gap
		} else {
			row.gapClosed = -1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Stealing regenerates the work-stealing study: predicted placement
// with drain-instant re-binding against predicted-only and the best
// static single-device pinning, on the placement study's imbalanced
// mixes plus the stranded Fig. 11 mix. "projected" is the best static
// pinning's linear two-device projection — the scaling the paper's §VI
// would predict without staging or placement mistakes — and
// "gap-closed" is the share of predicted placement's remaining
// distance to that projection which stealing recovers. On the
// stranded mix, commitment freezes work behind device 0's queue while
// device 1 drains, and re-binding at drain instants (with the staging
// term re-charged on the new link) closes over half the remaining gap;
// on the milder mixes predicted placement already beats the projection
// and stealing safely idles (the ROADMAP's "gap placement mistakes
// leave", measured).
func Stealing() (*Table, error) {
	rows, err := runStealingStudy()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "stealing",
		Title:   "Work stealing: mean makespan [ms] with drain-instant re-binding of committed jobs",
		Columns: []string{"scenario", "predicted", "+stealing", "steals/run", "static-best", "projected", "gap-closed"},
		Notes: []string{
			"2 MICs × 2 partitions × 2 streams, bursty arrivals; moderate/severe use queue depth 8, stranded (all inputs on device 0, 8 MiB staging) depth 16",
			"projected = best static single-device pinning / 2 devices (the linear Fig. 11 projection); gap-closed = (predicted − stealing) / (predicted − projected)",
			"— means predicted placement already beats the projection, so there is no gap left to close",
		},
	}
	for _, r := range rows {
		closed := "—"
		if r.gapClosed >= 0 {
			closed = fmt.Sprintf("%.0f%%", r.gapClosed*100)
		}
		t.Rows = append(t.Rows, []string{
			r.name, fmtMS(r.pred), fmtMS(r.steal), fmt.Sprintf("%.1f", r.steals),
			fmtMS(r.static2x), fmtMS(r.projected), closed,
		})
	}
	t.Notes = append(t.Notes, "each cell averages 5 seeded runs; repeats are bit-identical")
	return t, nil
}
