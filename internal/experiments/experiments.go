// Package experiments regenerates every figure of the paper's
// evaluation (Figs. 5-11) plus the §V-C search-space study, printing
// the same rows/series the paper plots. Each generator returns a Table
// whose columns mirror the figure's axes; cmd/micbench renders them and
// bench_test.go wraps each one in a testing.B benchmark.
//
// Absolute numbers come from the calibrated platform model and are not
// expected to equal the paper's testbed measurements; the shapes —
// who wins, where crossovers and optima fall — are asserted by this
// package's tests and recorded against the paper in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is one regenerated figure.
type Table struct {
	// ID is the experiment key, e.g. "fig9a".
	ID string
	// Title describes the experiment, quoting the paper's caption.
	Title string
	// Columns are the header labels; column 0 is the x axis.
	Columns []string
	// Rows are the formatted data points.
	Rows [][]string
	// Notes documents protocol deviations (e.g. reduced iteration
	// counts for sweep experiments, with the scaling applied).
	Notes []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// FprintCSV renders the table as RFC-4180-style CSV (header row first,
// notes as trailing comment lines) for plotting tools.
func (t *Table) FprintCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Column returns the numeric values of column i (parsed from the
// formatted cells); non-numeric cells are skipped.
func (t *Table) Column(i int) []float64 {
	var out []float64
	for _, row := range t.Rows {
		if i >= len(row) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(row[i], "%g", &v); err == nil {
			out = append(out, v)
		}
	}
	return out
}

// Generator produces one figure.
type Generator func() (*Table, error)

// registry maps experiment IDs to generators, populated by init
// functions in the per-figure files.
var registry = map[string]Generator{}

func register(id string, g Generator) { registry[id] = g }

// IDs lists every registered experiment in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the generator for an experiment ID.
func Lookup(id string) (Generator, bool) {
	g, ok := registry[id]
	return g, ok
}

// fmtMS formats a millisecond value.
func fmtMS(ms float64) string { return fmt.Sprintf("%.3f", ms) }

// fmtS formats a second value.
func fmtS(s float64) string { return fmt.Sprintf("%.3f", s) }

// fmtGF formats a GFLOPS value.
func fmtGF(gf float64) string { return fmt.Sprintf("%.1f", gf) }
