package experiments

import (
	"fmt"

	"micstream/internal/cluster"
	"micstream/internal/hstreams"
	"micstream/internal/stats"
)

func init() {
	register("residency", Residency)
}

// residencyMix is the repeated-dataset version of the Fig. 11 shape:
// every job's inputs are device-resident and cycle through four shared
// datasets homed on device 0, so most of the staging traffic a
// cache-less cluster pays re-ships bytes an earlier job already moved.
// The study runs it on a 4-MIC platform: with three off-origin devices
// to choose from, where a dataset's readers land is a real decision —
// the dimension the affinity tie-break exists to win.
func residencyMix(seed uint64) cluster.ScenarioConfig {
	return cluster.ScenarioConfig{
		Seed:             seed,
		Arrival:          "bursty",
		SizeSpread:       4,
		AffinityFraction: 1,
		Origins:          []int{0},
		Datasets:         4,
		XferBytes:        8 << 20,
		WindowNs:         10_000_000,
	}
}

// residencyRow is one configuration's seed-averaged measurements.
type residencyRow struct {
	name       string
	makespan   float64 // mean makespan [ms]
	stagedMB   float64 // mean staged (charged) volume [MiB]
	hitMB      float64 // mean demand served resident [MiB]
	missMB     float64 // mean demand staged cold [MiB]
	vsBaseline float64 // makespan improvement over the cache-less baseline
}

// runResidencyCell executes one (policy, cache, seed) cell on the
// study's 4-MIC platform (see residencyMix).
func runResidencyCell(place cluster.Policy, cache bool, seed uint64) (*cluster.Result, error) {
	ctx, err := hstreams.Init(hstreams.Config{Devices: 4, Partitions: 2, StreamsPerPartition: 2})
	if err != nil {
		return nil, err
	}
	jobs, err := cluster.BuildScenario(ctx, residencyMix(seed))
	if err != nil {
		return nil, err
	}
	opts := []cluster.Option{cluster.WithPlacement(place), cluster.WithQueueDepth(8)}
	if cache {
		opts = append(opts, cluster.WithResidency(0))
	}
	c, err := cluster.New(ctx, opts...)
	if err != nil {
		return nil, err
	}
	return c.Run(jobs)
}

// runResidencyStudy measures the three configurations the experiment
// compares, seed-averaged; the experiments tests assert the acceptance
// contract on these rows.
func runResidencyStudy() ([]residencyRow, error) {
	const seeds = 5
	configs := []struct {
		name  string
		place func() cluster.Policy
		cache bool
	}{
		{"predicted (no cache)", cluster.Predicted, false},
		{"predicted + cache", cluster.Predicted, true},
		{"affinity + cache", cluster.Affinity, true},
	}
	rows := make([]residencyRow, 0, len(configs))
	for _, cfg := range configs {
		var ms, staged, hit, miss []float64
		for s := uint64(0); s < seeds; s++ {
			r, err := runResidencyCell(cfg.place(), cfg.cache, clusterSeed+s)
			if err != nil {
				return nil, err
			}
			ms = append(ms, r.Makespan.Milliseconds())
			staged = append(staged, float64(r.StagedBytes)/float64(1<<20))
			hit = append(hit, float64(r.HitBytes)/float64(1<<20))
			miss = append(miss, float64(r.MissBytes)/float64(1<<20))
		}
		rows = append(rows, residencyRow{
			name:     cfg.name,
			makespan: stats.Mean(ms),
			stagedMB: stats.Mean(staged),
			hitMB:    stats.Mean(hit),
			missMB:   stats.Mean(miss),
		})
	}
	base := rows[0].makespan
	for i := range rows {
		if base > 0 {
			rows[i].vsBaseline = 1 - rows[i].makespan/base
		}
	}
	return rows, nil
}

// Residency regenerates the staging-cache study: the repeated-dataset
// Fig. 11 mix under cache-less predicted placement, residency-enabled
// predicted (cold-miss-only staging, residual-priced scores), and the
// affinity policy (near-ties broken toward the device holding the
// job's tiles). The cache-less row re-stages every off-origin job in
// full; the cached rows' staged volume collapses to the cold misses —
// each (dataset, device) pair ships at most once — and affinity herds
// each dataset's readers onto one device, cutting the cold misses and
// the makespan further. This is the ROADMAP's "cross-job staging
// reuse" item measured end to end: the Fig. 11 staging charge priced
// as a cache, not a tax.
func Residency() (*Table, error) {
	rows, err := runResidencyStudy()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "residency",
		Title:   "Device-resident staging cache: mean makespan and staging traffic on the repeated-dataset mix",
		Columns: []string{"configuration", "makespan", "staged[MiB]", "hit[MiB]", "cold-miss[MiB]", "vs-no-cache"},
		Notes: []string{
			"4 MICs × 2 partitions × 2 streams, queue depth 8, bursty arrivals; 48 jobs cycle through 4 shared 8 MiB datasets homed on device 0",
			"staged = charged transfer volume (2× the cold misses); hit/cold-miss split the off-origin staging demand against the residency cache",
			"affinity scores like predicted but breaks near-ties toward the device holding the largest resident fraction of the job's tiles",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.name, fmtMS(r.makespan), fmt.Sprintf("%.0f", r.stagedMB),
			fmt.Sprintf("%.0f", r.hitMB), fmt.Sprintf("%.0f", r.missMB),
			fmt.Sprintf("%.0f%%", r.vsBaseline*100),
		})
	}
	t.Notes = append(t.Notes, "each cell averages 5 seeded runs; repeats are bit-identical")
	return t, nil
}
