package experiments

import (
	"reflect"
	"testing"
)

// TestSlicingConvoyRelief asserts the headline of the slicing study —
// the ISSUE's acceptance contract: on the convoy mix, slicing with
// task-granularity stealing improves the interactive tenant's p95
// response time by ≥ 20% over whole-job stealing, and the relief is
// bought with mid-job migrations actually firing on at least one seed.
func TestSlicingConvoyRelief(t *testing.T) {
	rows, err := runSlicingStudy()
	if err != nil {
		t.Fatal(err)
	}
	p95 := rows[0]
	if p95.scenario != "convoy" || p95.metric != "interactive p95" {
		t.Fatalf("row 0 is %s/%s, want the convoy p95 row", p95.scenario, p95.metric)
	}
	if p95.delta > -0.20 {
		t.Errorf("convoy interactive p95 delta %+.1f%%, want ≤ −20%% (%.3f → %.3f ms)",
			p95.delta*100, p95.base, p95.sliced)
	}
	if p95.preempts <= 0 {
		t.Error("no convoy seed recorded a mid-job migration")
	}
}

// TestSlicingNeverLoses asserts the no-regression half of the
// contract: with slicing toggled on, none of the earlier studies'
// mixes loses more than 1% of mean makespan — including the convoy
// mix's own makespan, which buys its p95 relief without trading away
// throughput.
func TestSlicingNeverLoses(t *testing.T) {
	rows, err := runSlicingStudy()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 + len(slicingGuards); len(rows) != want {
		t.Fatalf("slicing study has %d rows, want %d", len(rows), want)
	}
	for _, r := range rows[1:] {
		if r.metric != "makespan" {
			t.Fatalf("%s: unexpected metric %q past row 0", r.scenario, r.metric)
		}
		if r.delta > 0.01 {
			t.Errorf("%s: slicing regresses mean makespan %+.2f%% (%.3f → %.3f ms), want ≤ +1%%",
				r.scenario, r.delta*100, r.base, r.sliced)
		}
	}
}

// TestSlicingBitIdenticalRepeats asserts the determinism contract on
// the sliced convoy cell: the full Result — slice counts, migration
// history, telemetry-visible decisions included — is byte-for-byte
// identical across repeats of one seed, and seeds do differ.
func TestSlicingBitIdenticalRepeats(t *testing.T) {
	run := func(seed uint64) any {
		r, err := runConvoyCell(seed, convoySliceCap)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if !reflect.DeepEqual(run(clusterSeed), run(clusterSeed)) {
		t.Error("sliced convoy repeats diverge for one seed")
	}
	if reflect.DeepEqual(run(clusterSeed), run(clusterSeed+1)) {
		t.Error("different seeds produce identical sliced convoy results")
	}
}

// TestSlicingRegistered asserts the registry wiring and table shape.
func TestSlicingRegistered(t *testing.T) {
	if _, ok := Lookup("slicing"); !ok {
		t.Fatal("experiment \"slicing\" not registered")
	}
	tab, err := Slicing()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 6 || len(tab.Rows) != 2+len(slicingGuards) {
		t.Fatalf("slicing table is %d×%d, want %d×6", len(tab.Rows), len(tab.Columns), 2+len(slicingGuards))
	}
}
