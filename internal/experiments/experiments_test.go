package experiments

import (
	"strings"
	"testing"

	"micstream/internal/stats"
)

func gen(t *testing.T, id string) *Table {
	t.Helper()
	g, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tab, err := g()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return tab
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig5", "fig6", "fig7",
		"fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f",
		"fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f",
		"fig10a", "fig10b", "fig10c", "fig10d", "fig10e", "fig10f",
		"fig11", "heuristics",
		"ablation-duplex", "ablation-contention", "ablation-alloc",
		"ext-hotspot-pipe", "ext-multimic", "ext-taxonomy",
		"fairness", "imbalance",
		"modelval", "guided",
		"placement", "cluster-scaling", "stealing", "residency",
		"slicing", "drift", "slo",
	}
	ids := IDs()
	got := map[string]bool{}
	for _, id := range ids {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2.5"}},
		Notes:   []string{"n"},
	}
	var sb strings.Builder
	if err := tab.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# x — demo", "a", "2.5", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	col := tab.Column(1)
	if len(col) != 1 || col[0] != 2.5 {
		t.Errorf("Column(1) = %v", col)
	}
	sb.Reset()
	if err := tab.FprintCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "a,b\n1,2.5\n# n\n" {
		t.Errorf("CSV rendering = %q", sb.String())
	}
}

func TestFig5Shapes(t *testing.T) {
	tab := gen(t, "fig5")
	if len(tab.Rows) != 17 {
		t.Fatalf("fig5 has %d rows, want 17", len(tab.Rows))
	}
	cc, ic, cd, id := tab.Column(1), tab.Column(2), tab.Column(3), tab.Column(4)
	if !stats.IsRoughlyConstant(cc, 0.01) || !stats.IsRoughlyConstant(id, 0.01) {
		t.Fatalf("CC/ID not constant: %v / %v", cc, id)
	}
	if !stats.IsMonotone(ic, +1, 0) || !stats.IsMonotone(cd, -1, 0) {
		t.Fatal("IC/CD not monotone")
	}
	// The paper's absolute calibration: CC ≈ 5.2 ms, ID ≈ 2.5 ms.
	if m := stats.Mean(cc); m < 4.7 || m > 5.7 {
		t.Fatalf("CC mean %.2f ms, want ≈5.2", m)
	}
	if m := stats.Mean(id); m < 2.2 || m > 2.9 {
		t.Fatalf("ID mean %.2f ms, want ≈2.5", m)
	}
}

func TestFig6Shapes(t *testing.T) {
	tab := gen(t, "fig6")
	data, kernel := tab.Column(1), tab.Column(2)
	streamed, ideal := tab.Column(4), tab.Column(5)
	serial := tab.Column(3)
	// Crossover within the sweep: kernel starts below data, ends above.
	if kernel[0] >= data[0] || kernel[len(kernel)-1] <= data[len(data)-1] {
		t.Fatalf("no transfer/compute crossover: data=%v kernel=%v", data, kernel)
	}
	for i := range streamed {
		if !(ideal[i] < streamed[i] && streamed[i] < serial[i]) {
			t.Fatalf("row %d: want ideal %v < streamed %v < serial %v", i, ideal[i], streamed[i], serial[i])
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	tab := gen(t, "fig7")
	times := tab.Column(1)
	ref := times[len(times)-1]
	tiled := times[:len(times)-1]
	_, minAt := stats.Min(tiled)
	if minAt == 0 || minAt == len(tiled)-1 {
		t.Fatalf("fig7 minimum at an edge: %v", tiled)
	}
	for i, v := range tiled {
		if ref >= v {
			t.Fatalf("ref %.2f not below tiled point %d (%.2f)", ref, i, v)
		}
	}
}

func TestFig8GainDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale Fig. 8 sweep")
	}
	// MM and CF report GFLOPS: streamed (col 2) must beat base (col 1).
	for _, id := range []string{"fig8a", "fig8b"} {
		tab := gen(t, id)
		base, streamed := tab.Column(1), tab.Column(2)
		for i := range base {
			if streamed[i] <= base[i] {
				t.Errorf("%s row %d: streamed %.1f not above base %.1f", id, i, streamed[i], base[i])
			}
		}
	}
	// Kmeans reports time: streamed must be faster everywhere.
	tab := gen(t, "fig8c")
	base, streamed := tab.Column(1), tab.Column(2)
	for i := range base {
		if streamed[i] >= base[i] {
			t.Errorf("fig8c row %d: streamed %.2fs not below base %.2fs", i, streamed[i], base[i])
		}
	}
	// Hotspot: no change (within 10%), slight loss allowed on small.
	tab = gen(t, "fig8d")
	base, streamed = tab.Column(1), tab.Column(2)
	for i := range base {
		ratio := streamed[i] / base[i]
		if ratio < 0.90 || ratio > 1.15 {
			t.Errorf("fig8d row %d: ratio %.2f, want ≈1", i, ratio)
		}
	}
	// SRAD: slower on the smallest image, faster on the largest.
	tab = gen(t, "fig8f")
	base, streamed = tab.Column(1), tab.Column(2)
	if streamed[0] <= base[0] {
		t.Errorf("fig8f smallest: streamed %.2f should lose to base %.2f", streamed[0], base[0])
	}
	last := len(base) - 1
	if streamed[last] >= base[last] {
		t.Errorf("fig8f largest: streamed %.2f should beat base %.2f", streamed[last], base[last])
	}
}

func TestFig9DivisorSpikes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale Fig. 9 sweep")
	}
	for _, id := range []string{"fig9a", "fig9b"} {
		tab := gen(t, id)
		gf := tab.Column(1)
		if len(gf) != 56 {
			t.Fatalf("%s has %d points, want 56", id, len(gf))
		}
		// Every recommended divisor beats its non-divisor neighbours
		// (7 and 8 are adjacent divisors, so only the outer
		// neighbour applies to each).
		for _, c := range []struct{ div, neighbor int }{
			{4, 3}, {4, 5}, {7, 6}, {8, 9}, {14, 13}, {14, 15}, {28, 27}, {28, 29},
		} {
			if gf[c.div-1] <= gf[c.neighbor-1] {
				t.Errorf("%s: P=%d (%.1f) does not beat non-divisor P=%d (%.1f)",
					id, c.div, gf[c.div-1], c.neighbor, gf[c.neighbor-1])
			}
		}
	}
}

func TestFig9KmeansMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale Fig. 9 sweep")
	}
	tab := gen(t, "fig9c")
	times := tab.Column(1)
	// The decline is an envelope: divisor P values sit on a falling
	// floor while non-divisors spike above it (core-splitting
	// contention). Assert the envelope (running minimum) falls and
	// the total drop is large.
	runMin := times[0]
	for _, v := range times {
		if v < runMin {
			runMin = v
		}
		if v < runMin*0.98 {
			t.Fatalf("fig9c envelope rose: %v", times)
		}
	}
	if times[0] < times[len(times)-1]*5 {
		t.Fatalf("fig9c should fall steeply: first %.2fs vs last %.2fs", times[0], times[len(times)-1])
	}
}

func TestFig9HotspotDip(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale Fig. 9 sweep")
	}
	tab := gen(t, "fig9d")
	times := tab.Column(1)
	_, minAt := stats.Min(times)
	p := minAt + 1
	if p < 28 || p > 45 {
		t.Fatalf("fig9d minimum at P=%d, paper dips at 33-37", p)
	}
}

func TestFig9NNFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale Fig. 9 sweep")
	}
	tab := gen(t, "fig9e")
	times := tab.Column(1)
	if times[0] < times[3]*1.3 {
		t.Fatalf("fig9e: P=1 (%.1f) should be well above P=4 (%.1f)", times[0], times[3])
	}
	if !stats.IsRoughlyConstant(times[3:], 0.12) {
		t.Fatalf("fig9e not flat for P≥4: %v", times[3:])
	}
}

func TestFig10Optima(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale Fig. 10 sweep")
	}
	// MM: GFLOPS peak at T=4 (row 1), T=1 far below.
	tab := gen(t, "fig10a")
	gf := tab.Column(1)
	_, peak := stats.Max(gf)
	if peak == 0 || peak > 3 {
		t.Errorf("fig10a peak at row %d, want small T: %v", peak, gf)
	}
	if gf[0] > gf[peak]*0.5 {
		t.Errorf("fig10a: T=1 (%.1f) should be far below the peak (%.1f)", gf[0], gf[peak])
	}
	// CF: interior optimum.
	tab = gen(t, "fig10b")
	gf = tab.Column(1)
	_, peak = stats.Max(gf)
	if peak == 0 || peak == len(gf)-1 {
		t.Errorf("fig10b optimum at an edge: %v", gf)
	}
	// SRAD: optimum at large T (paper 400).
	tab = gen(t, "fig10f")
	times := tab.Column(1)
	_, minAt := stats.Min(times)
	x := tab.Column(0)
	if x[minAt] < 100 || x[minAt] > 2500 {
		t.Errorf("fig10f optimum at T=%.0f, paper: 400 (%v)", x[minAt], times)
	}
}

func TestFig11Scaling(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale Fig. 11 run")
	}
	tab := gen(t, "fig11")
	for i, row := range tab.Rows {
		one, two, proj := tab.Column(1)[i], tab.Column(2)[i], tab.Column(3)[i]
		if !(one < two && two < proj) {
			t.Errorf("fig11 row %v: want 1-mic %.1f < 2-mics %.1f < projected %.1f", row[0], one, two, proj)
		}
	}
}

func TestHeuristicsReduceSearchSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("tuner study")
	}
	tab := gen(t, "heuristics")
	points := tab.Column(1)
	if len(points) != 3 {
		t.Fatalf("heuristics table malformed: %+v", tab.Rows)
	}
	if points[1] >= points[0]/4 {
		t.Fatalf("pruned space %v not ≪ exhaustive %v", points[1], points[0])
	}
	if points[2] >= points[1] {
		t.Fatalf("coordinate descent (%v evals) should beat the pruned scan (%v)", points[2], points[1])
	}
	best := tab.Column(4)
	if best[1] > best[0]*1.10 {
		t.Fatalf("pruned optimum %.2fms more than 10%% worse than exhaustive %.2fms", best[1], best[0])
	}
	if best[2] > best[0]*1.10 {
		t.Fatalf("descent optimum %.2fms more than 10%% worse than exhaustive %.2fms", best[2], best[0])
	}
}
