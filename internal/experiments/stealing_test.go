package experiments

import "testing"

// TestStealingClosesGap asserts the headline of the work-stealing
// study — the ISSUE's acceptance contract: on at least one imbalanced
// mix, drain-instant re-binding closes ≥ 50% of the remaining gap
// between predicted placement and the best static single-device
// pinning's linear projection, and on every mix stealing never loses
// to predicted-only.
func TestStealingClosesGap(t *testing.T) {
	rows, err := runStealingStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(stealingScenarios) {
		t.Fatalf("stealing study has %d rows, want %d", len(rows), len(stealingScenarios))
	}
	bestClosed := -1.0
	stole := false
	for _, r := range rows {
		if r.steal > r.pred {
			t.Errorf("%s: stealing mean makespan %.3f ms loses to predicted-only %.3f ms", r.name, r.steal, r.pred)
		}
		if r.gapClosed > bestClosed {
			bestClosed = r.gapClosed
		}
		if r.steals > 0 {
			stole = true
		}
	}
	if bestClosed < 0.5 {
		t.Errorf("best gap closure %.0f%%, want ≥ 50%% on at least one mix", bestClosed*100)
	}
	if !stole {
		t.Error("no scenario recorded any steals")
	}
}

// TestStealingRegistered asserts the registry wiring and table shape.
func TestStealingRegistered(t *testing.T) {
	if _, ok := Lookup("stealing"); !ok {
		t.Fatal("experiment \"stealing\" not registered")
	}
	tab, err := Stealing()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 7 || len(tab.Rows) != len(stealingScenarios) {
		t.Fatalf("stealing table is %d×%d, want %d×7", len(tab.Rows), len(tab.Columns), len(stealingScenarios))
	}
}
