package experiments

import (
	"fmt"

	"micstream/internal/cluster"
	"micstream/internal/hstreams"
	"micstream/internal/obs"
	"micstream/internal/telemetry"
)

func init() {
	register("drift", Drift)
}

// driftMix names one telemetry-recorded workload whose predictions the
// audit scores. The three mixes cover the decision regimes with
// distinct drift signatures: pure placement (the model's latency score
// is the whole decision), slicing+stealing (migration invalidates the
// admission-time estimate), and residency (staging charges the model
// priced may be served from cache).
type driftMix struct {
	name string
	run  func(seed uint64) (*telemetry.Recorder, error)
}

func driftMixes() []driftMix {
	record := func(cfg cluster.ScenarioConfig, opts ...cluster.Option) func(uint64) (*telemetry.Recorder, error) {
		return func(seed uint64) (*telemetry.Recorder, error) {
			ctx, err := hstreams.Init(hstreams.Config{Devices: 2, Partitions: 2, StreamsPerPartition: 2})
			if err != nil {
				return nil, err
			}
			cfg.Seed = seed
			jobs, err := cluster.BuildScenario(ctx, cfg)
			if err != nil {
				return nil, err
			}
			rec := telemetry.NewRecorder()
			c, err := cluster.New(ctx, append(opts, cluster.WithTelemetry(rec))...)
			if err != nil {
				return nil, err
			}
			if _, err := c.Run(jobs); err != nil {
				return nil, err
			}
			return rec, nil
		}
	}
	return []driftMix{
		{"placement", record(
			cluster.ScenarioConfig{SizeSpread: 4, AffinityFraction: 0.5, Origins: []int{0, 1}},
			cluster.WithPlacement(cluster.Predicted()))},
		{"sliced-stealing", record(
			cluster.ScenarioConfig{SizeSpread: 6, TilesPerJob: 4, AffinityFraction: 0.5, Origins: []int{0}},
			cluster.WithPlacement(cluster.Predicted()),
			cluster.WithStealing(1), cluster.WithSlicing(1), cluster.WithQueueDepth(16))},
		{"residency", record(
			cluster.ScenarioConfig{Arrival: "bursty", Datasets: 4, WriteFraction: 0.25,
				XferBytes: 8 << 20, AffinityFraction: 0.75, Origins: []int{0, 1}},
			cluster.WithPlacement(cluster.Affinity()), cluster.WithResidency(12<<20))},
	}
}

// Drift regenerates the model-drift audit table: each mix's event log
// is replayed through obs.AuditDrift and summarised per sample kind —
// placement samples score the admission-time completion estimate for
// the chosen device against the job's realised latency; service
// samples score each grant's slice estimate against the span the
// grant actually held the stream. Columns report the population, the
// error distribution (mean |err|, signed bias, p50/p95 |err|), and
// the share of samples inside 10% — the calibration headline. Large
// migrated-regime error with small resident-regime error is expected:
// the admission estimate cannot see future steals.
func Drift() (*Table, error) {
	const seeds = 3
	t := &Table{
		ID:    "drift",
		Title: "model-drift audit: predicted vs realised, by mix and sample kind",
		Columns: []string{"mix", "kind", "samples",
			"mean|err|%", "bias%", "p50|err|%", "p95|err|%", "<10%"},
		Notes: []string{
			fmt.Sprintf("%d seeds per mix; errors pooled across seeds before summarising", seeds),
			"placement: admission completion estimate vs realised latency; service: per-grant slice estimate vs realised stream span",
		},
	}
	for _, m := range driftMixes() {
		var pooled []obs.DriftSample
		for s := uint64(0); s < seeds; s++ {
			rec, err := m.run(clusterSeed + s)
			if err != nil {
				return nil, err
			}
			rep := obs.AuditDrift(rec.Events())
			pooled = append(pooled, rep.Samples...)
		}
		rep := obs.Summarize(pooled)
		for _, g := range []*obs.DriftGroup{&rep.Placement, &rep.Service} {
			if g.Count == 0 {
				return nil, fmt.Errorf("drift: mix %q produced no %s samples", m.name, g.Key)
			}
			within := g.Buckets[0] + g.Buckets[1]
			t.Rows = append(t.Rows, []string{
				m.name, g.Key, fmt.Sprintf("%d", g.Count),
				fmt.Sprintf("%.1f", g.MeanAbsPct),
				fmt.Sprintf("%+.1f", g.BiasPct),
				fmt.Sprintf("%.1f", g.P50AbsPct),
				fmt.Sprintf("%.1f", g.P95AbsPct),
				fmt.Sprintf("%.0f%%", 100*float64(within)/float64(g.Count)),
			})
		}
	}
	return t, nil
}
