package experiments

import (
	"reflect"
	"testing"
)

// TestResidencyAcceptance asserts the ISSUE's acceptance contract on
// the staging-cache study: with a warm cache the staged volume drops
// to the cold misses only (a fraction of the cache-less traffic), the
// affinity policy's makespan beats cache-blind predicted by a real
// margin, and affinity never stages more cold bytes than cached
// predicted.
func TestResidencyAcceptance(t *testing.T) {
	rows, err := runResidencyStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("residency study has %d rows, want 3", len(rows))
	}
	base, pred, aff := rows[0], rows[1], rows[2]

	// The cache-less baseline pays full staging and sees no hits.
	if base.hitMB != 0 {
		t.Errorf("cache-less row reports %g MiB of hits", base.hitMB)
	}
	if base.stagedMB <= 0 {
		t.Fatalf("cache-less row staged %g MiB; the mix carries no staging to save", base.stagedMB)
	}

	// Cold-miss-only staging: the cached rows ship a fraction of the
	// cache-less volume, and everything they ship is a cold miss
	// (staged ≈ staging factor × misses, modulo MiB rounding).
	for _, r := range []residencyRow{pred, aff} {
		if r.stagedMB > 0.5*base.stagedMB {
			t.Errorf("%s: staged %g MiB, want ≤ half the cache-less %g MiB", r.name, r.stagedMB, base.stagedMB)
		}
		if r.hitMB <= 0 {
			t.Errorf("%s: no cache hits on the repeated-dataset mix", r.name)
		}
		if ratio := r.stagedMB / r.missMB; ratio < 1.9 || ratio > 2.1 {
			t.Errorf("%s: staged %g MiB vs %g MiB cold misses; want the 2× staging-factor relation", r.name, r.stagedMB, r.missMB)
		}
	}

	// The headline margins: cached predicted and affinity both beat
	// the cache-less baseline clearly, affinity by at least 15%.
	if pred.makespan >= base.makespan {
		t.Errorf("cached predicted %.3f ms does not beat cache-less %.3f ms", pred.makespan, base.makespan)
	}
	if aff.vsBaseline < 0.15 {
		t.Errorf("affinity beats cache-blind predicted by %.0f%%, want ≥ 15%%", aff.vsBaseline*100)
	}

	// The tie-break earns its keep: affinity herds each dataset's
	// readers, so it never stages more cold bytes than cached
	// predicted.
	if aff.missMB > pred.missMB {
		t.Errorf("affinity cold misses %g MiB exceed cached predicted's %g MiB", aff.missMB, pred.missMB)
	}
}

// TestResidencyBitIdentical: the whole seed-averaged study is a pure
// function of its configuration.
func TestResidencyBitIdentical(t *testing.T) {
	a, err := runResidencyStudy()
	if err != nil {
		t.Fatal(err)
	}
	b, err := runResidencyStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated studies diverge:\n%+v\nvs\n%+v", a, b)
	}
}

// TestResidencyRegistered asserts the registry wiring and table shape.
func TestResidencyRegistered(t *testing.T) {
	if _, ok := Lookup("residency"); !ok {
		t.Fatal("experiment \"residency\" not registered")
	}
	tab, err := Residency()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 6 || len(tab.Rows) != 3 {
		t.Fatalf("residency table is %d×%d, want 3×6", len(tab.Rows), len(tab.Columns))
	}
}
