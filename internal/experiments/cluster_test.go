package experiments

import (
	"testing"
)

// TestPlacementPredictedWins asserts the headline of the placement
// study: on the moderate and severe imbalance rows the predicted
// policy's mean makespan beats least-loaded, and on every row it beats
// the best static single-device pinning.
func TestPlacementPredictedWins(t *testing.T) {
	tab, err := Placement()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("placement table has %d rows, want 4", len(tab.Rows))
	}
	const (
		colRR = 1 + iota
		colLL
		colPred
		colStatic
	)
	for i, row := range tab.Rows {
		name := row[0]
		ll := cell(t, tab, i, colLL)
		pred := cell(t, tab, i, colPred)
		static := cell(t, tab, i, colStatic)
		switch name {
		case "moderate", "severe":
			if pred > ll {
				t.Errorf("%s: predicted %.3f ms should beat least-loaded %.3f ms", name, pred, ll)
			}
		case "balanced":
			// Homogeneous host-resident jobs: every dynamic policy
			// ties within a few percent.
			if pred > 1.05*ll {
				t.Errorf("balanced: predicted %.3f ms strays more than 5%% from least-loaded %.3f ms", pred, ll)
			}
		}
		if pred > static {
			t.Errorf("%s: predicted %.3f ms should beat the best static pinning %.3f ms", name, pred, static)
		}
	}
	// Imbalance must actually bite: the severe row is slower than the
	// balanced row for every policy.
	for col := colRR; col <= colStatic; col++ {
		if cell(t, tab, 3, col) <= cell(t, tab, 0, col) {
			t.Errorf("column %s: severe row should be slower than balanced", tab.Columns[col])
		}
	}
}

// TestClusterScalingSubLinear asserts the Fig. 11 shape through the
// scheduler: each device count beats the previous, every multi-device
// point stays below its linear projection, and the 2-device point
// lands in the paper's above-1×-below-2× band with real staged jobs.
func TestClusterScalingSubLinear(t *testing.T) {
	tab, err := ClusterScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("cluster-scaling table has %d rows, want 3", len(tab.Rows))
	}
	prevGF := 0.0
	for i := range tab.Rows {
		devs := cell(t, tab, i, 0)
		gf := cell(t, tab, i, 1)
		speedup := cell(t, tab, i, 2)
		staged := cell(t, tab, i, 4)
		if gf <= prevGF {
			t.Errorf("%g devices: GFLOPS %.1f should exceed the previous row's %.1f", devs, gf, prevGF)
		}
		prevGF = gf
		if devs > 1 {
			if speedup >= devs {
				t.Errorf("%g devices: speedup %.2f should stay below the %g× projection", devs, speedup, devs)
			}
			if speedup <= 1 {
				t.Errorf("%g devices: speedup %.2f should exceed 1×", devs, speedup)
			}
			if staged <= 0 {
				t.Errorf("%g devices: off-origin placements should stage jobs", devs)
			}
		} else if staged != 0 {
			t.Errorf("1 device: nothing should stage, got %g jobs", staged)
		}
	}
}

// TestClusterExperimentsRegistered asserts the registry wiring.
func TestClusterExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"placement", "cluster-scaling"} {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
}
