package experiments

import (
	"fmt"

	"micstream/internal/apps/cf"
	"micstream/internal/apps/hotspot"
	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/pcie"
)

func init() {
	register("ablation-duplex", AblationDuplex)
	register("ablation-contention", AblationContention)
	register("ablation-alloc", AblationAlloc)
	register("ext-hotspot-pipe", ExtHotspotPipelined)
	register("ext-multimic", ExtMultiMIC)
}

// AblationDuplex reruns Fig. 5's ID pattern (hd+dh = 16) on a
// full-duplex link: the constant line the paper uses to conclude
// serialization turns into a tent that dips when traffic balances —
// what the figure would look like on hardware with concurrent
// bidirectional DMA.
func AblationDuplex() (*Table, error) {
	const block = 1 << 20
	run := func(full bool, hd, dh int) (float64, error) {
		link := pcie.DefaultConfig()
		link.FullDuplex = full
		ctx, err := hstreams.Init(hstreams.Config{Partitions: 2, Link: link, Trace: true})
		if err != nil {
			return 0, err
		}
		buf := hstreams.AllocVirtual(ctx, "b", block, 1)
		for i := 0; i < hd; i++ {
			if _, err := ctx.Stream(0).EnqueueH2D(buf, 0, block, i); err != nil {
				return 0, err
			}
		}
		for i := 0; i < dh; i++ {
			if _, err := ctx.Stream(1).EnqueueD2H(buf, 0, block, hd+i); err != nil {
				return 0, err
			}
		}
		return ctx.Barrier().Sub(0).Milliseconds(), nil
	}
	t := &Table{
		ID:      "ablation-duplex",
		Title:   "Fig. 5 ID pattern under half- vs full-duplex DMA",
		Columns: []string{"hd", "half-duplex[ms]", "full-duplex[ms]"},
	}
	for hd := 0; hd <= 16; hd++ {
		half, err := run(false, hd, 16-hd)
		if err != nil {
			return nil, err
		}
		full, err := run(true, hd, 16-hd)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", hd), fmtMS(half), fmtMS(full)})
	}
	t.Notes = append(t.Notes,
		"half-duplex is constant (the paper's observed platform); full-duplex dips to half at a balanced split — the experiment distinguishes the two designs")
	return t, nil
}

// computeSweep measures a generic compute-bound tiled workload across
// partition counts under a given device model.
func computeSweep(dev device.Config, parts []int) ([]float64, error) {
	var out []float64
	for _, p := range parts {
		ctx, err := hstreams.Init(hstreams.Config{Partitions: p, Device: dev, Trace: true})
		if err != nil {
			return nil, err
		}
		var tasks []*core.Task
		for t := 0; t < 56; t++ {
			tasks = append(tasks, &core.Task{
				ID:         t,
				Cost:       device.KernelCost{Name: "work", Flops: 2e9, Efficiency: 0.5, ScalingPenalty: 0.1},
				StreamHint: -1,
			})
		}
		res, err := core.Run(ctx, tasks, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Wall.Milliseconds())
	}
	return out, nil
}

// AblationContention removes the shared-core contention penalty: the
// divisor-of-56 sawtooth of Figs. 9a/9b flattens, isolating the model
// term responsible for the paper's partition-count guideline.
func AblationContention() (*Table, error) {
	parts := []int{4, 5, 7, 9, 14, 15, 28, 29}
	withPenalty, err := computeSweep(device.Xeon31SP(), parts)
	if err != nil {
		return nil, err
	}
	smooth := device.Xeon31SP()
	smooth.ContentionPenalty = 1.0
	withoutPenalty, err := computeSweep(smooth, parts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-contention",
		Title:   "divisor-of-56 effect with and without shared-core contention",
		Columns: []string{"partitions", "default[ms]", "no-contention[ms]"},
	}
	for i, p := range parts {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", p), fmtMS(withPenalty[i]), fmtMS(withoutPenalty[i])})
	}
	t.Notes = append(t.Notes,
		"without the penalty, non-divisor partition counts stop losing: the guideline P ∈ {2,4,7,8,14,28,56} exists because of core splitting")
	return t, nil
}

// AblationAlloc removes per-launch temporary allocation: Kmeans'
// monotone improvement with partitions (Fig. 9c) flattens, isolating
// the paper's §V-B-1 explanation.
func AblationAlloc() (*Table, error) {
	run := func(alloc int64, p int) (float64, error) {
		ctx, err := hstreams.Init(hstreams.Config{Partitions: p, Trace: true})
		if err != nil {
			return 0, err
		}
		var tasks []*core.Task
		for t := 0; t < 56; t++ {
			tasks = append(tasks, &core.Task{
				ID: t,
				Cost: device.KernelCost{
					Name:                "assign",
					Flops:               16.3e6,
					AllocBytesPerThread: alloc,
					Efficiency:          0.0465,
				},
				StreamHint: -1,
			})
		}
		res, err := core.Run(ctx, tasks, 0)
		if err != nil {
			return 0, err
		}
		return res.Wall.Milliseconds(), nil
	}
	t := &Table{
		ID:      "ablation-alloc",
		Title:   "Kmeans-shaped workload with and without per-launch allocation",
		Columns: []string{"partitions", "with-alloc[ms]", "no-alloc[ms]"},
	}
	for _, p := range []int{1, 2, 4, 8, 14, 28, 56} {
		with, err := run(128<<10, p)
		if err != nil {
			return nil, err
		}
		without, err := run(0, p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", p), fmtMS(with), fmtMS(without)})
	}
	t.Notes = append(t.Notes,
		"the with-alloc column falls steeply over P (Fig. 9c's shape); without allocation the sweep is nearly flat — streams help Kmeans through allocation, not overlap")
	return t, nil
}

// ExtHotspotPipelined measures the §VII future-work transformation:
// Hotspot rebuilt with fine-grained per-tile dependencies instead of
// global barriers, turning the paper's canonical non-overlappable
// application into an overlappable one.
func ExtHotspotPipelined() (*Table, error) {
	t := &Table{
		ID:      "ext-hotspot-pipe",
		Title:   "Hotspot: barrier version vs fine-grained pipelined version (P=4, T=16)",
		Columns: []string{"dataset", "barrier[s]", "pipelined[s]", "gain", "overlap"},
	}
	const iters, paperIters = 5, 50
	for _, d := range []int{4096, 8192, 16384} {
		app, err := hotspot.New(hotspot.Params{Dim: d, Iterations: iters})
		if err != nil {
			return nil, err
		}
		barrier, err := app.Run(4, 16)
		if err != nil {
			return nil, err
		}
		pipe, err := app.RunPipelined(4, 16)
		if err != nil {
			return nil, err
		}
		scale := float64(paperIters) / float64(iters)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d^2", d),
			fmtS(barrier.Wall.Seconds() * scale),
			fmtS(pipe.Wall.Seconds() * scale),
			fmt.Sprintf("%+.1f%%", (barrier.Wall.Seconds()/pipe.Wall.Seconds()-1)*100),
			fmt.Sprintf("%.0f%%", pipe.OverlapFraction*100),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("run with %d iterations, scaled ×%d to the paper's %d", iters, paperIters/iters, paperIters),
		"identical numerical results (tested); the stencil's halo dependency is local, so global barriers were never necessary")
	return t, nil
}

// ExtMultiMIC extends Fig. 11 beyond two devices: CF at D=16000 on
// 1..4 MICs, with the projected linear scaling for comparison.
func ExtMultiMIC() (*Table, error) {
	app, err := cf.New(cf.Params{N: 16000})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-multimic",
		Title:   "CF scaling on 1..4 MICs (D=16000)",
		Columns: []string{"devices", "GFLOPS", "projected", "efficiency"},
	}
	var base float64
	for devs := 1; devs <= 4; devs++ {
		r, err := app.Run(devs, 4, 16)
		if err != nil {
			return nil, err
		}
		if devs == 1 {
			base = r.GFlops
		}
		projected := base * float64(devs)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", devs), fmtGF(r.GFlops), fmtGF(projected),
			fmt.Sprintf("%.0f%%", r.GFlops/projected*100),
		})
	}
	t.Notes = append(t.Notes,
		"parallel efficiency decays with device count: every cross-device tile staging crosses two PCIe links and the host")
	return t, nil
}
