package experiments

import (
	"fmt"

	"micstream/internal/hstreams"
	"micstream/internal/sched"
	"micstream/internal/stats"
)

func init() {
	register("fairness", Fairness)
	register("imbalance", Imbalance)
}

// schedSeed fixes the arrival streams of both scheduler experiments;
// with it, every cell below is a pure function of the code.
const schedSeed = 2016

// runSchedScenario executes one (policy, pattern, seed) cell on a
// fresh platform of 4 partitions × 2 streams under bursty arrivals —
// the arrival process that stresses the admission queue hardest. Two
// streams per partition is what separates the placement policies:
// FIFO packs the lowest-numbered idle streams and so co-schedules
// jobs on a shared partition while other partitions idle; RR spreads
// placement across partitions.
func runSchedScenario(policy, pattern string, seed uint64) (*sched.Result, error) {
	// No trace: the scheduler accounts from its own outcome record,
	// so span recording would only cost allocation across the ~84
	// scenario runs.
	ctx, err := hstreams.Init(hstreams.Config{Partitions: 4, StreamsPerPartition: 2})
	if err != nil {
		return nil, err
	}
	jobs, err := sched.BuildScenario(ctx, sched.ScenarioConfig{
		Pattern: pattern,
		Arrival: "bursty",
		Seed:    seed,
		// 20 ms window: the severe pattern offers ~135 ms of service
		// against ~160 ms of stream capacity, deep in the queueing
		// regime where policy choice matters.
		WindowNs: 20_000_000,
	})
	if err != nil {
		return nil, err
	}
	p, err := sched.ByName(policy)
	if err != nil {
		return nil, err
	}
	s, err := sched.New(ctx, sched.WithPolicy(p))
	if err != nil {
		return nil, err
	}
	return s.Run(jobs)
}

// Fairness regenerates the multi-tenant fairness study: Jain's index
// over per-tenant mean slowdowns for every (load-imbalance pattern ×
// policy) cell, four tenants on four partitions under bursty
// arrivals. The balanced row stays near 1 for every policy; skewed
// rows separate the policies — the scheduling analogue of the
// follow-up work's "Jain index vs load imbalance" study.
func Fairness() (*Table, error) {
	t := &Table{
		ID:      "fairness",
		Title:   "Jain fairness index over per-tenant slowdown, by load-imbalance pattern and policy",
		Columns: []string{"pattern", "fifo", "rr", "sjf"},
		Notes: []string{
			"4 tenants on 4 partitions × 2 streams, bursty arrivals; 1 = every tenant suffers equal queueing degradation",
		},
	}
	const seeds = 7
	for _, pattern := range sched.Patterns() {
		row := []string{pattern}
		for _, policy := range []string{"fifo", "rr", "sjf"} {
			var jains []float64
			for s := uint64(0); s < seeds; s++ {
				r, err := runSchedScenario(policy, pattern, schedSeed+s)
				if err != nil {
					return nil, err
				}
				jains = append(jains, r.JainSlowdown)
			}
			row = append(row, fmt.Sprintf("%.3f", stats.Mean(jains)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("each cell averages %d seeded arrival streams", seeds))
	return t, nil
}

// Imbalance regenerates the per-tenant load-imbalance study: under
// FIFO, each pattern's per-tenant throughput, latency percentiles and
// mean slowdown, showing how a heavy tenant's burst inflates the tail
// latency of the light tenants sharing the platform.
func Imbalance() (*Table, error) {
	t := &Table{
		ID:      "imbalance",
		Title:   "Per-tenant accounting under load imbalance (FIFO, bursty arrivals)",
		Columns: []string{"pattern", "tenant", "jobs", "thrpt[job/s]", "p50[ms]", "p99[ms]", "slowdown"},
	}
	for _, pattern := range sched.Patterns() {
		r, err := runSchedScenario("fifo", pattern, schedSeed)
		if err != nil {
			return nil, err
		}
		for _, ts := range r.Tenants {
			t.Rows = append(t.Rows, []string{
				pattern,
				ts.Tenant,
				fmt.Sprintf("%d", ts.Jobs),
				fmt.Sprintf("%.0f", ts.Throughput),
				fmtMS(ts.P50.Milliseconds()),
				fmtMS(ts.P99.Milliseconds()),
				fmt.Sprintf("%.2f", ts.MeanSlowdown),
			})
		}
	}
	t.Notes = append(t.Notes,
		"weights per pattern: balanced 20/20/20/20, mild 10/20/30/40, moderate 5/15/30/50, severe 5/10/40/80 jobs per tenant")
	return t, nil
}
