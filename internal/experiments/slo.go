package experiments

import (
	"bytes"
	"fmt"

	"micstream/internal/cluster"
	"micstream/internal/hstreams"
	"micstream/internal/obs"
	"micstream/internal/sched"
	"micstream/internal/sim"
	"micstream/internal/slo"
	"micstream/internal/telemetry"
)

func init() {
	register("slo", SLO)
}

// The SLO study evaluates tight and loose objectives over two stress
// mixes. The convoy mix (the slicing study's whole-job arm: an
// interactive tenant trapped behind a batch tenant's multi-task jobs)
// breaches the interactive tenant's latency objectives; the imbalance
// mix (every job's data stranded on device 0, no stealing) breaches
// through place-wait instead. The tight objective must alert before
// the loose one on the same tenant — the burn-rate ordering the alert
// design promises.
var sloStudySpec = slo.Spec{Objectives: []slo.Objective{
	{Tenant: "interactive", Name: "int-tight", Kind: slo.KindLatency, Target: 0.9, Threshold: 2 * sim.Millisecond, FastBurn: 8, SlowBurn: 4},
	{Tenant: "batch", Name: "batch-loose", Kind: slo.KindLatency, Target: 0.9, Threshold: 40 * sim.Millisecond, FastBurn: 4, SlowBurn: 2},
	{Tenant: "batch", Name: "batch-deadline", Kind: slo.KindDeadline, Target: 0.8, Threshold: 45 * sim.Millisecond},
	{Tenant: "interactive", Name: "int-floor", Kind: slo.KindThroughput, Target: 0.5, Floor: 200},
}}

// sloImbalanceSpec judges the imbalance mix's tenants (the scenario
// generator's cyclic labels).
var sloImbalanceSpec = slo.Spec{Objectives: []slo.Objective{
	{Tenant: "A", Name: "a-tight", Kind: slo.KindLatency, Target: 0.9, Threshold: 5 * sim.Millisecond, FastBurn: 8, SlowBurn: 4},
	{Tenant: "A", Name: "a-loose", Kind: slo.KindLatency, Target: 0.9, Threshold: 20 * sim.Millisecond, FastBurn: 8, SlowBurn: 4},
}}

// sloCell is one instrumented run's full observable output.
type sloCell struct {
	result *cluster.Result
	eval   *slo.Evaluator
	flight *obs.FlightRecorder
}

// runSLOCell executes one mix with the full SLO stack attached: the
// evaluator and flight recorder share the recorder's observer slots
// through composite hooks, and a budget exhaustion triggers a flight
// dump — the same wiring the serve layer installs.
func runSLOCell(mix string, seed uint64, spec slo.Spec) (*sloCell, error) {
	ctx, err := hstreams.Init(hstreams.Config{Devices: 2, Partitions: 2, StreamsPerPartition: 2})
	if err != nil {
		return nil, err
	}
	var jobs []cluster.Job
	opts := []cluster.Option{
		cluster.WithPlacement(cluster.Predicted()),
		cluster.WithQueueDepth(16),
	}
	switch mix {
	case "convoy":
		jobs, err = convoyJobs(seed)
		opts = append(opts,
			cluster.WithStealing(0),
			cluster.WithDevicePolicy(func() sched.Policy { return sched.SJF() }))
	case "imbalance":
		jobs, err = cluster.BuildScenario(ctx, cluster.ScenarioConfig{
			Seed: seed, Arrival: "bursty", Tenants: 2, TilesPerJob: 4, SizeSpread: 4,
			AffinityFraction: 1, Origins: []int{0}, XferBytes: 8 << 20, WindowNs: 10_000_000,
		})
	default:
		return nil, fmt.Errorf("slo study: unknown mix %q", mix)
	}
	if err != nil {
		return nil, err
	}
	// Deadline objectives judge each job's own declared budget: stamp
	// the spec's deadline-kind threshold onto the matching tenant's
	// jobs, as `miccluster -slo` does.
	StampDeadlines(jobs, spec)

	ev, err := slo.New(spec)
	if err != nil {
		return nil, err
	}
	fl := obs.NewFlightRecorder(64)
	ev.SetOnExhausted(func(o slo.Objective, at sim.Time) {
		fl.Trigger(fmt.Sprintf("slo %q (tenant %q) error budget exhausted", o.Name, o.TenantLabel()), at)
	})
	rec := telemetry.NewRecorder()
	rec.SetOnEvent(func(e telemetry.Event) {
		ev.OnEvent(e)
		fl.OnEvent(e)
	})
	rec.SetOnMetrics(func(m telemetry.MetricsSnapshot) {
		ev.OnMetrics(m)
		fl.OnMetrics(m)
	})
	opts = append(opts, cluster.WithTelemetry(rec))
	c, err := cluster.New(ctx, opts...)
	if err != nil {
		return nil, err
	}
	r, err := c.Run(jobs)
	if err != nil {
		return nil, err
	}
	return &sloCell{result: r, eval: ev, flight: fl}, nil
}

// StampDeadlines copies each deadline-kind objective's threshold onto
// its tenant's jobs as their declared relative deadline (first
// matching objective wins; jobs that already declare one keep it).
func StampDeadlines(jobs []cluster.Job, spec slo.Spec) {
	for i := range jobs {
		if jobs[i].Deadline != 0 {
			continue
		}
		tenant := jobs[i].Tenant
		if tenant == "" {
			tenant = "default"
		}
		for _, o := range spec.Objectives {
			if o.Kind == slo.KindDeadline && o.TenantLabel() == tenant && o.Threshold > 0 {
				jobs[i].Deadline = o.Threshold
				break
			}
		}
	}
}

// sloReportBytes renders a cell's SLO report — the byte-identity
// artifact the determinism tests compare.
func sloReportBytes(cell *sloCell, seed uint64) ([]byte, error) {
	var buf bytes.Buffer
	err := cell.eval.WriteJSON(&buf, slo.Meta{Run: "study", Seed: int64(seed), Policy: cell.result.Placement})
	return buf.Bytes(), err
}

// SLO regenerates the SLO observability study: both mixes run with the
// full evaluator attached, and each objective's verdict — samples,
// violations, remaining budget, burn rates, alert instants, exhaustion
// — lands in one row. The contract (asserted by the tests): verdicts
// are byte-deterministic, instrumentation never perturbs the runs, a
// tight objective alerts before its loose sibling, and an exhausted
// budget fires a flight-recorder dump.
func SLO() (*Table, error) {
	t := &Table{
		ID:    "slo",
		Title: "SLO objectives under convoy and imbalance stress: budgets, burn rates, alerts",
		Columns: []string{"mix", "objective", "tenant", "kind", "samples", "violations",
			"budget", "burn-fast", "first-alert", "exhausted"},
		Notes: []string{
			"convoy: the slicing study's whole-job arm (12 batch 16-task jobs vs 40 interactive 1-task jobs, SJF, stealing); imbalance: 48 4-tile jobs all stranded on device 0, no stealing",
			"tight vs loose: the interactive tenant promises 2ms, the batch tenant 40ms (convoy); the imbalance mix puts 5ms and 20ms objectives on one tenant; burn-rate alerts at 8x fast / 4x slow (batch-loose at 4x/2x; 20ms/100ms windows — a 0.9 target caps burn at 10x, so the SRE 14x default cannot fire)",
			"budget = fraction of the error budget left at the end of the run (1 untouched, <=0 exhausted); first-alert/exhausted are virtual instants [ms], - when never",
			"batch-deadline stamps its 45ms threshold onto the batch jobs as per-job deadlines; int-floor is a windowed throughput floor in jobs per virtual second",
		},
	}
	for _, mix := range []struct {
		name string
		spec slo.Spec
	}{
		{"convoy", sloStudySpec},
		{"imbalance", sloImbalanceSpec},
	} {
		cell, err := runSLOCell(mix.name, clusterSeed, mix.spec)
		if err != nil {
			return nil, err
		}
		for _, st := range cell.eval.States() {
			firstAlert, exhausted := "-", "-"
			if st.FirstAlertAt > 0 {
				firstAlert = fmtMS(st.FirstAlertAt.Milliseconds())
			}
			if st.Exhausted {
				exhausted = fmtMS(st.ExhaustedAt.Milliseconds())
			}
			t.Rows = append(t.Rows, []string{
				mix.name, st.Objective.Name, st.Objective.TenantLabel(), st.Objective.Kind,
				fmt.Sprintf("%d", st.Samples), fmt.Sprintf("%d", st.Violations),
				fmt.Sprintf("%.2f", st.BudgetRemaining), fmt.Sprintf("%.1f", st.BurnFast),
				firstAlert, exhausted,
			})
		}
	}
	return t, nil
}
