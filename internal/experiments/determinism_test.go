package experiments

import (
	"reflect"
	"testing"

	"micstream/internal/cluster"
)

// TestExperimentsDeterministicAcrossRepeats is the determinism
// regression suite: every registered experiment runs twice and the
// full tables must be byte-for-byte identical — any hidden map
// iteration, wall-clock read or shared-state leak in a generator
// shows up here (and, under CI's -race run, as a race). Table-level
// equality alone can mask compensating divergence inside a run, so
// TestStudyCellResultsDeterministic additionally diffs complete
// Result structs for one cell of each study.
func TestExperimentsDeterministicAcrossRepeats(t *testing.T) {
	for _, id := range IDs() {
		id := id
		g, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %q vanished from the registry", id)
		}
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			first, err := g()
			if err != nil {
				t.Fatal(err)
			}
			second, err := g()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, second) {
				t.Errorf("experiment %q diverges across repeats", id)
			}
		})
	}
}

// TestStudyCellResultsDeterministic repeats one representative cell of
// each named study and diffs the complete Result struct — per-job
// outcomes, migration histories, device aggregates, tenant stats —
// not the formatted summary rows.
func TestStudyCellResultsDeterministic(t *testing.T) {
	cells := []struct {
		name string
		run  func(seed uint64) (any, error)
	}{
		{"fairness", func(seed uint64) (any, error) {
			return runSchedScenario("adaptive", "severe", seed)
		}},
		{"placement", func(seed uint64) (any, error) {
			return runPlacementCell("predicted", 2, seed)
		}},
		{"stealing", func(seed uint64) (any, error) {
			return runStealingCell(2, seed, cluster.Predicted(), true)
		}},
		{"residency", func(seed uint64) (any, error) {
			return runResidencyCell(cluster.Affinity(), true, seed)
		}},
		{"slicing", func(seed uint64) (any, error) {
			return runConvoyCell(seed, convoySliceCap)
		}},
	}
	for _, c := range cells {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			first, err := c.run(clusterSeed)
			if err != nil {
				t.Fatal(err)
			}
			second, err := c.run(clusterSeed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, second) {
				t.Errorf("%s cell diverges across repeats of seed %d", c.name, clusterSeed)
			}
			other, err := c.run(clusterSeed + 1)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(first, other) {
				t.Errorf("%s cell is seed-blind: seeds %d and %d coincide", c.name, clusterSeed, clusterSeed+1)
			}
		})
	}
}
