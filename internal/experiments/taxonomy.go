package experiments

import (
	"fmt"

	"micstream/internal/apps/cf"
	"micstream/internal/apps/hotspot"
	"micstream/internal/apps/kmeans"
	"micstream/internal/apps/mm"
	"micstream/internal/apps/nn"
	"micstream/internal/apps/srad"
	"micstream/internal/core"
)

func init() {
	register("ext-taxonomy", ExtTaxonomy)
}

// ExtTaxonomy measures the paper's Fig. 4 classification instead of
// asserting it: for every application's streamed run, the fraction of
// transfer time hidden behind kernel execution, taken from the trace.
// Overlappable applications (MM, CF, NN) show substantial overlap;
// non-overlappable ones (Kmeans, Hotspot, SRAD) show little — their
// iteration barriers leave transfers exposed regardless of streams.
func ExtTaxonomy() (*Table, error) {
	t := &Table{
		ID:      "ext-taxonomy",
		Title:   "measured transfer/compute overlap per application (streamed runs)",
		Columns: []string{"application", "class (paper Fig. 4)", "overlap"},
	}
	add := func(name, class string, res core.Result, err error) error {
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{name, class, fmt.Sprintf("%.0f%%", res.OverlapFraction*100)})
		return nil
	}

	mmApp, err := mm.New(mm.Params{N: 4000})
	if err != nil {
		return nil, err
	}
	res, err := mmApp.Run(4, 8)
	if err := add("mm", "overlappable", res, err); err != nil {
		return nil, err
	}

	cfApp, err := cf.New(cf.Params{N: 4800})
	if err != nil {
		return nil, err
	}
	res, err = cfApp.Run(1, 4, 8)
	if err := add("cf", "overlappable", res, err); err != nil {
		return nil, err
	}

	nnApp, err := nn.New(nn.Params{N: 1 << 20, K: 10, TargetLat: 40, TargetLon: 120})
	if err != nil {
		return nil, err
	}
	res, err = nnApp.Run(4, 16)
	if err := add("nn", "overlappable", res, err); err != nil {
		return nil, err
	}

	kmApp, err := kmeans.New(kmeans.Params{N: 200_000, Features: 34, K: 8, Iterations: 10})
	if err != nil {
		return nil, err
	}
	res, err = kmApp.Run(4, 4)
	if err := add("kmeans", "non-overlappable", res, err); err != nil {
		return nil, err
	}

	hsApp, err := hotspot.New(hotspot.Params{Dim: 4096, Iterations: 5})
	if err != nil {
		return nil, err
	}
	res, err = hsApp.Run(4, 16)
	if err := add("hotspot", "non-overlappable", res, err); err != nil {
		return nil, err
	}

	srApp, err := srad.New(srad.Params{Dim: 2000, Iterations: 5, Lambda: 0.5})
	if err != nil {
		return nil, err
	}
	res, err = srApp.Run(4, 16)
	if err := add("srad", "non-overlappable", res, err); err != nil {
		return nil, err
	}

	// The transformation of ext-hotspot-pipe, for contrast.
	res, err = hsApp.RunPipelined(4, 16)
	if err := add("hotspot-pipelined", "transformed (§VII)", res, err); err != nil {
		return nil, err
	}

	t.Notes = append(t.Notes,
		"overlap = fraction of link busy time concurrent with kernel execution; the paper's taxonomy (being overlappable is a must for stream benefits) is measurable in the traces")
	return t, nil
}
