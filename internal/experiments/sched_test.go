package experiments

import (
	"bytes"
	"strconv"
	"testing"
)

// regenerate runs a registered experiment and returns its table.
func regenerate(t *testing.T, id string) *Table {
	t.Helper()
	g, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tab, err := g()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSchedExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"fairness", "imbalance"} {
		found := false
		for _, have := range IDs() {
			if have == id {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q missing from IDs()", id)
		}
	}
}

func TestFairnessShape(t *testing.T) {
	tab := regenerate(t, "fairness")
	if len(tab.Rows) != 4 {
		t.Fatalf("fairness has %d rows, want one per pattern", len(tab.Rows))
	}
	cells := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		cells[row[0]] = map[string]float64{}
		for i, policy := range []string{"fifo", "rr", "sjf"} {
			v, err := strconv.ParseFloat(row[i+1], 64)
			if err != nil {
				t.Fatalf("row %v cell %d: %v", row, i+1, err)
			}
			if v <= 0 || v > 1 {
				t.Errorf("%s/%s Jain index %v outside (0,1]", row[0], policy, v)
			}
			cells[row[0]][policy] = v
		}
	}
	// The headline qualitative shapes: contention degrades fairness
	// from balanced to severe for every policy, and under severe skew
	// SJF's job-size bias costs fairness relative to FIFO.
	for _, policy := range []string{"fifo", "rr", "sjf"} {
		if cells["balanced"][policy] <= cells["severe"][policy] {
			t.Errorf("%s: balanced Jain %v not above severe %v",
				policy, cells["balanced"][policy], cells["severe"][policy])
		}
	}
	if cells["severe"]["sjf"] >= cells["severe"]["fifo"] {
		t.Errorf("severe: SJF Jain %v should be below FIFO %v (short-job bias)",
			cells["severe"]["sjf"], cells["severe"]["fifo"])
	}
}

func TestImbalanceShape(t *testing.T) {
	tab := regenerate(t, "imbalance")
	if len(tab.Rows) != 16 {
		t.Fatalf("imbalance has %d rows, want 4 patterns × 4 tenants", len(tab.Rows))
	}
	perPattern := map[string][]float64{} // mean slowdown samples
	jobs := map[string]int{}
	for _, row := range tab.Rows {
		pattern := row[0]
		n, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		jobs[pattern] += n
		slow, err := strconv.ParseFloat(row[6], 64)
		if err != nil {
			t.Fatal(err)
		}
		if slow < 1 {
			t.Errorf("%s/%s slowdown %v below 1", pattern, row[1], slow)
		}
		perPattern[pattern] = append(perPattern[pattern], slow)
	}
	if jobs["balanced"] != 80 || jobs["severe"] != 135 {
		t.Errorf("job totals %v don't match the pattern weights", jobs)
	}
	// Severe imbalance must hurt someone much more than balance hurts
	// anyone.
	maxOf := func(xs []float64) float64 {
		m := xs[0]
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	if maxOf(perPattern["severe"]) <= maxOf(perPattern["balanced"]) {
		t.Errorf("worst severe slowdown %v not above worst balanced %v",
			maxOf(perPattern["severe"]), maxOf(perPattern["balanced"]))
	}
}

func TestSchedExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"fairness", "imbalance"} {
		var a, b bytes.Buffer
		if err := regenerateTo(t, id, &a); err != nil {
			t.Fatal(err)
		}
		if err := regenerateTo(t, id, &b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s: repeated regeneration differs", id)
		}
	}
}

func regenerateTo(t *testing.T, id string, buf *bytes.Buffer) error {
	t.Helper()
	g, _ := Lookup(id)
	tab, err := g()
	if err != nil {
		return err
	}
	return tab.Fprint(buf)
}
