package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestDriftTable checks the audit table's contract: every mix
// contributes both sample kinds, the error statistics are internally
// consistent (p50 ≤ p95, |bias| ≤ mean|err|), and the table renders.
func TestDriftTable(t *testing.T) {
	tbl, err := Drift()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("got %d rows, want 3 mixes x 2 kinds", len(tbl.Rows))
	}
	f := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%"), 64)
		if err != nil {
			t.Fatalf("cell %q not numeric: %v", cell, err)
		}
		return v
	}
	for _, row := range tbl.Rows {
		if f(row[2]) <= 0 {
			t.Errorf("%s/%s: no samples", row[0], row[1])
		}
		mean, bias, p50, p95 := f(row[3]), f(row[4]), f(row[5]), f(row[6])
		if p50 > p95 {
			t.Errorf("%s/%s: p50 %.1f > p95 %.1f", row[0], row[1], p50, p95)
		}
		if bias < 0 {
			bias = -bias
		}
		if bias > mean+1e-9 {
			t.Errorf("%s/%s: |bias| %.1f exceeds mean|err| %.1f", row[0], row[1], bias, mean)
		}
		if within := f(row[7]); within < 0 || within > 100 {
			t.Errorf("%s/%s: within-10%% share %.0f out of range", row[0], row[1], within)
		}
	}
	var buf bytes.Buffer
	if err := tbl.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sliced-stealing") {
		t.Errorf("rendered table missing mix rows:\n%s", buf.String())
	}
}
