package experiments

import (
	"fmt"

	"micstream/internal/apps/cf"
	"micstream/internal/apps/hotspot"
	"micstream/internal/apps/kmeans"
	"micstream/internal/apps/mm"
	"micstream/internal/apps/nn"
	"micstream/internal/apps/srad"
	"micstream/internal/core"
)

func init() {
	register("fig10a", Fig10aMM)
	register("fig10b", Fig10bCF)
	register("fig10c", Fig10cKmeans)
	register("fig10d", Fig10dHotspot)
	register("fig10e", Fig10eNN)
	register("fig10f", Fig10fSRAD)
}

// tileSweep drives one application across task counts with P fixed.
func tileSweep(id, title, metric string, tiles []int, run func(tiles int) (core.Result, error), format func(core.Result) string, notes ...string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"tiles", metric},
		Notes:   notes,
	}
	for _, n := range tiles {
		r, err := run(n)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), format(r)})
	}
	return t, nil
}

// Fig10aMM regenerates Fig. 10(a): MM GFLOPS vs tiles (D=6000, P=4);
// the paper's x axis is T = grid² ∈ {1,4,9,...,400}.
func Fig10aMM() (*Table, error) {
	app, err := mm.New(mm.Params{N: 6000})
	if err != nil {
		return nil, err
	}
	grids := []int{1, 2, 3, 4, 5, 6, 10, 12, 15, 20}
	var tiles []int
	for _, g := range grids {
		tiles = append(tiles, g*g)
	}
	i := 0
	return tileSweep("fig10a", "MM GFLOPS vs tiles (D=6000, P=4)", "GFLOPS", tiles,
		func(int) (core.Result, error) {
			g := grids[i]
			i++
			return app.Run(4, g)
		}, asGF,
		"T=1 wastes 3 of 4 partitions; the optimum is T=4; finer grids decline gently")
}

// Fig10bCF regenerates Fig. 10(b): CF GFLOPS vs tiles (D=9600, P=4).
func Fig10bCF() (*Table, error) {
	app, err := cf.New(cf.Params{N: 9600})
	if err != nil {
		return nil, err
	}
	grids := []int{2, 3, 4, 5, 6, 8, 10, 12, 15, 16, 20}
	var tiles []int
	for _, g := range grids {
		tiles = append(tiles, g*g)
	}
	i := 0
	return tileSweep("fig10b", "CF GFLOPS vs tiles (D=9600, P=4)", "GFLOPS", tiles,
		func(int) (core.Result, error) {
			g := grids[i]
			i++
			return app.Run(1, 4, g)
		}, asGF,
		"optimum at an intermediate grid (paper: T=100): the DAG needs enough tiles for parallelism, small tiles lose efficiency")
}

// Fig10cKmeans regenerates Fig. 10(c): Kmeans time vs tasks
// (D=1120000, P=4, 100 iterations).
func Fig10cKmeans() (*Table, error) {
	app, err := kmeans.New(kmeans.Params{N: 1_120_000, Features: 34, K: 8, Iterations: 100})
	if err != nil {
		return nil, err
	}
	return tileSweep("fig10c", "Kmeans time vs tasks (D=1120000, P=4, 100 iters)", "time[s]",
		[]int{1, 2, 4, 8, 16, 20, 28, 32, 56, 112, 224},
		func(n int) (core.Result, error) { return app.Run(4, n) }, asS,
		"optimum at small T (paper: 4); fine tasks multiply per-launch allocation")
}

// Fig10dHotspot regenerates Fig. 10(d): Hotspot time vs tiles
// (16384², P=4, 50 iterations; paper x axis 1²..256²). Iterations
// reduced to 5 and scaled as in Fig. 9(d).
func Fig10dHotspot() (*Table, error) {
	const iters, paperIters = 5, 50
	app, err := hotspot.New(hotspot.Params{Dim: 16384, Iterations: iters})
	if err != nil {
		return nil, err
	}
	scale := float64(paperIters) / float64(iters)
	return tileSweep("fig10d", "Hotspot time vs tiles (16384^2, P=4, 50 iters)", "time[s]",
		[]int{1, 4, 16, 64, 256, 1024, 4096, 16384},
		func(n int) (core.Result, error) { return app.Run(4, n) },
		func(r core.Result) string { return fmtS(r.Wall.Seconds() * scale) },
		fmt.Sprintf("run with %d iterations, scaled ×%.0f to the paper's %d", iters, scale, paperIters),
		"T=1 leaves partitions idle; optimum at small T (paper: 4); very fine tiles drown in launches")
}

// Fig10eNN regenerates Fig. 10(e): NN time vs tiles (D=5242880,
// P=4, T ∈ 2⁰..2¹¹). The paper's caption says "P = 512", which cannot
// be a partition count on a 224-thread device; we read it as a typo
// for the Fig. 9(e) task granularity and sweep T at P=4.
func Fig10eNN() (*Table, error) {
	app, err := nn.New(nn.DefaultParams())
	if err != nil {
		return nil, err
	}
	var tiles []int
	for e := 0; e <= 11; e++ {
		tiles = append(tiles, 1<<e)
	}
	return tileSweep("fig10e", "NN time vs tiles (D=5242880, P=4)", "time[ms]", tiles,
		func(n int) (core.Result, error) { return app.Run(4, n) }, asMS,
		"T=1 and T=4 perform similarly (transfer-bound); fine tiles pay per-transfer latency")
}

// Fig10fSRAD regenerates Fig. 10(f): SRAD time vs tiles (10000²,
// P=4, λ=0.5, 100 iterations; paper x axis 1²..100²). Iterations
// reduced to 5 and scaled.
func Fig10fSRAD() (*Table, error) {
	const iters, paperIters = 5, 100
	app, err := srad.New(srad.Params{Dim: 10000, Iterations: iters, Lambda: 0.5})
	if err != nil {
		return nil, err
	}
	scale := float64(paperIters) / float64(iters)
	return tileSweep("fig10f", "SRAD time vs tiles (10000^2, P=4, 100 iters)", "time[s]",
		[]int{1, 4, 9, 16, 25, 100, 169, 400, 625, 2500, 10000},
		func(n int) (core.Result, error) { return app.Run(4, n) },
		func(r core.Result) string { return fmtS(r.Wall.Seconds() * scale) },
		fmt.Sprintf("run with %d iterations, scaled ×%.0f to the paper's %d", iters, scale, paperIters),
		"optimum at large T (paper: 400): tiles must shrink until they fit the partition L2 across the two stencil phases")
}
