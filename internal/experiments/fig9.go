package experiments

import (
	"fmt"

	"micstream/internal/apps/cf"
	"micstream/internal/apps/hotspot"
	"micstream/internal/apps/kmeans"
	"micstream/internal/apps/mm"
	"micstream/internal/apps/nn"
	"micstream/internal/apps/srad"
	"micstream/internal/core"
)

func init() {
	register("fig9a", Fig9aMM)
	register("fig9b", Fig9bCF)
	register("fig9c", Fig9cKmeans)
	register("fig9d", Fig9dHotspot)
	register("fig9e", Fig9eNN)
	register("fig9f", Fig9fSRAD)
}

// partitionSweep drives one application across P = 1..56 with its
// Fig. 9 task granularity fixed, formatting one row per P.
func partitionSweep(id, title, metric string, run func(p int) (core.Result, error), format func(core.Result) string, notes ...string) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"partitions", metric},
		Notes:   notes,
	}
	for p := 1; p <= 56; p++ {
		r, err := run(p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", p), format(r)})
	}
	return t, nil
}

func asGF(r core.Result) string { return fmtGF(r.GFlops) }
func asS(r core.Result) string  { return fmtS(r.Wall.Seconds()) }
func asMS(r core.Result) string { return fmtMS(r.Wall.Milliseconds()) }

// Fig9aMM regenerates Fig. 9(a): MM GFLOPS vs partitions
// (D=6000, T=500×500 tiles).
func Fig9aMM() (*Table, error) {
	app, err := mm.New(mm.Params{N: 6000})
	if err != nil {
		return nil, err
	}
	return partitionSweep("fig9a", "MM GFLOPS vs partitions (D=6000, 500x500 tiles)", "GFLOPS",
		func(p int) (core.Result, error) { return app.Run(p, 12) }, asGF,
		"peaks at P ∈ {2,4,7,8,14,28,56}: divisors of 56 avoid splitting a core's threads across streams")
}

// Fig9bCF regenerates Fig. 9(b): CF GFLOPS vs partitions
// (D=9600, tile 800×800).
func Fig9bCF() (*Table, error) {
	app, err := cf.New(cf.Params{N: 9600})
	if err != nil {
		return nil, err
	}
	return partitionSweep("fig9b", "CF GFLOPS vs partitions (D=9600, 800x800 tiles)", "GFLOPS",
		func(p int) (core.Result, error) { return app.Run(1, p, 12) }, asGF,
		"same divisor-of-56 spikes as MM")
}

// Fig9cKmeans regenerates Fig. 9(c): Kmeans time vs partitions
// (D=1120000, T=20000 points/task ⇒ 56 tasks, 100 iterations).
func Fig9cKmeans() (*Table, error) {
	app, err := kmeans.New(kmeans.Params{N: 1_120_000, Features: 34, K: 8, Iterations: 100})
	if err != nil {
		return nil, err
	}
	return partitionSweep("fig9c", "Kmeans time vs partitions (D=1120000, T=56 tasks, 100 iters)", "time[s]",
		func(p int) (core.Result, error) { return app.Run(p, 56) }, asS,
		"monotone improvement: per-launch allocation cost shrinks with partition width")
}

// Fig9dHotspot regenerates Fig. 9(d): Hotspot time vs partitions
// (16384² grid, 1024² tiles ⇒ 256 tasks). The iteration count is
// reduced from the paper's 50 to 5 and scaled in the output — the
// per-iteration cost is independent of P, so the shape is identical.
func Fig9dHotspot() (*Table, error) {
	const iters, paperIters = 5, 50
	app, err := hotspot.New(hotspot.Params{Dim: 16384, Iterations: iters})
	if err != nil {
		return nil, err
	}
	scale := float64(paperIters) / float64(iters)
	return partitionSweep("fig9d", "Hotspot time vs partitions (16384^2, 256 tasks, 50 iters)", "time[s]",
		func(p int) (core.Result, error) { return app.Run(p, 256) },
		func(r core.Result) string { return fmtS(r.Wall.Seconds() * scale) },
		fmt.Sprintf("run with %d iterations, scaled ×%.0f to the paper's %d", iters, scale, paperIters),
		"lowest region at P≈33-37: ≤2 cores per partition (cache locality) with balanced task waves")
}

// Fig9eNN regenerates Fig. 9(e): NN time vs partitions
// (D=5242880 records, T=512).
func Fig9eNN() (*Table, error) {
	app, err := nn.New(nn.DefaultParams())
	if err != nil {
		return nil, err
	}
	return partitionSweep("fig9e", "NN time vs partitions (D=5242880, T=512)", "time[ms]",
		func(p int) (core.Result, error) { return app.Run(p, 512) }, asMS,
		"drops sharply until P=4, then flat ≈25ms: the PCIe link is the bottleneck")
}

// Fig9fSRAD regenerates Fig. 9(f): SRAD time vs partitions
// (10000² image, 20×20 task grid ⇒ 400 tasks, λ=0.5). Iterations
// reduced from 100 to 5 and scaled, as for Fig. 9(d).
func Fig9fSRAD() (*Table, error) {
	const iters, paperIters = 5, 100
	app, err := srad.New(srad.Params{Dim: 10000, Iterations: iters, Lambda: 0.5})
	if err != nil {
		return nil, err
	}
	scale := float64(paperIters) / float64(iters)
	return partitionSweep("fig9f", "SRAD time vs partitions (10000^2, 400 tasks, 100 iters)", "time[s]",
		func(p int) (core.Result, error) { return app.Run(p, 400) },
		func(r core.Result) string { return fmtS(r.Wall.Seconds() * scale) },
		fmt.Sprintf("run with %d iterations, scaled ×%.0f to the paper's %d", iters, scale, paperIters),
		"spatial sharing only: time falls to an interior optimum, then management overhead wins")
}
