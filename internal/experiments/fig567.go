package experiments

import (
	"fmt"

	"micstream/internal/apps/hbench"
)

func init() {
	register("fig5", Fig5)
	register("fig6", Fig6)
	register("fig7", Fig7)
}

// Fig5 regenerates "How the data transfer time over the number of
// transferred blocks" (§IV-A-1): the CC, IC, CD and ID transfer
// patterns with 1 MB blocks, hd/dh ∈ 0..16.
func Fig5() (*Table, error) {
	const block = 1 << 20
	t := &Table{
		ID:      "fig5",
		Title:   "Data transfer time vs #blocks (CC/IC/CD/ID, 1MB blocks)",
		Columns: []string{"#blocks", "CC[ms]", "IC[ms]", "CD[ms]", "ID[ms]"},
	}
	for b := 0; b <= 16; b++ {
		cc, err := hbench.TransferPattern(16, 16, block)
		if err != nil {
			return nil, err
		}
		ic, err := hbench.TransferPattern(b, 16, block)
		if err != nil {
			return nil, err
		}
		cd, err := hbench.TransferPattern(16, 16-b, block)
		if err != nil {
			return nil, err
		}
		id, err := hbench.TransferPattern(b, 16-b, block)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", b),
			fmtMS(cc.Milliseconds()), fmtMS(ic.Milliseconds()),
			fmtMS(cd.Milliseconds()), fmtMS(id.Milliseconds()),
		})
	}
	t.Notes = append(t.Notes,
		"CC constant and ID constant at half of CC ⇒ H2D and D2H serialize on the link (paper finding 1)")
	return t, nil
}

// Fig6 regenerates "The overlapping extent of data transfers and
// computation when changing the number of kernel iterations"
// (§IV-A-2): 16 MB arrays, iterations 20..60, streamed with 4
// partitions × 8 tiles, against the serial sum and the full-overlap
// ideal.
func Fig6() (*Table, error) {
	t := &Table{
		ID:      "fig6",
		Title:   "Transfer/compute overlap vs kernel iterations (16MB arrays)",
		Columns: []string{"#iterations", "Data[ms]", "Kernel[ms]", "Data+Kernel[ms]", "Streamed[ms]", "Ideal[ms]"},
	}
	for iters := 20; iters <= 60; iters += 5 {
		p := hbench.DefaultParams()
		p.Iterations = iters
		app, err := hbench.New(p)
		if err != nil {
			return nil, err
		}
		data, err := app.DataTime()
		if err != nil {
			return nil, err
		}
		kernel, err := app.KernelTime()
		if err != nil {
			return nil, err
		}
		streamed, err := app.RunStreamed(4, 8)
		if err != nil {
			return nil, err
		}
		// The paper's "Ideal" is the aggregate full-overlap bound:
		// transfers completely hidden behind compute or vice versa.
		ideal := data
		if kernel > ideal {
			ideal = kernel
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", iters),
			fmtMS(data.Milliseconds()),
			fmtMS(kernel.Milliseconds()),
			fmtMS((data + kernel).Milliseconds()),
			fmtMS(streamed.Wall.Milliseconds()),
			fmtMS(ideal.Milliseconds()),
		})
	}
	t.Notes = append(t.Notes,
		"Streamed sits between Ideal and Data+Kernel: overlap works but a full overlap is unattainable on the half-duplex link (paper finding 2)")
	return t, nil
}

// Fig7 regenerates "How resource granularity impacts the overall
// performance" (§IV-B): kernel-phase time of the 128-tile, 100-
// iteration microbenchmark across partition counts, with the
// non-streamed non-tiled kernel as ref.
func Fig7() (*Table, error) {
	p := hbench.DefaultParams()
	p.Iterations = 100
	app, err := hbench.New(p)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig7",
		Title:   "Kernel time vs #partitions (128 tiles, 100 iterations)",
		Columns: []string{"#partitions", "Execution time[ms]"},
	}
	for _, parts := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		d, err := app.KernelPhase(parts, 128)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", parts), fmtMS(d.Milliseconds())})
	}
	ref, err := app.KernelTime()
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"ref", fmtMS(ref.Milliseconds())})
	t.Notes = append(t.Notes,
		"ref (non-streamed, non-tiled) beats every tiled point: spatial sharing alone brings no gain for a non-overlappable code (paper finding 3)")
	return t, nil
}
