package experiments

import (
	"fmt"

	"micstream/internal/cluster"
	"micstream/internal/hstreams"
	"micstream/internal/sim"
	"micstream/internal/stats"
)

func init() {
	register("placement", Placement)
	register("cluster-scaling", ClusterScaling)
}

// clusterSeed fixes the arrival and size streams of both cluster
// experiments.
const clusterSeed = 2016

// placementScenarios is the imbalance grid of the placement study:
// from a homogeneous host-resident bag to a heavily skewed mix where
// most jobs are device-resident and expensive to move. Spread is the
// geometric job-size range, affinity the device-resident fraction,
// xfer the per-job transfer (and staging) volume, window the arrival
// span.
var placementScenarios = []struct {
	name     string
	spread   float64
	affinity float64
	xfer     int64
	windowNs int64
}{
	{"balanced", 1, 0, 1 << 20, 20_000_000},
	{"mild", 4, 0.25, 2 << 20, 15_000_000},
	{"moderate", 8, 0.5, 4 << 20, 10_000_000},
	{"severe", 8, 0.7, 8 << 20, 15_000_000},
}

// runPlacementCell executes one (placement, scenario, seed) cell on a
// fresh 2-device platform of 2 partitions × 2 streams each, queue
// depth 8 — deep enough commitment that a load-blind placement's
// mistakes show, shallow enough that late binding still happens.
func runPlacementCell(place string, scIdx int, seed uint64) (*cluster.Result, error) {
	sc := placementScenarios[scIdx]
	ctx, err := hstreams.Init(hstreams.Config{Devices: 2, Partitions: 2, StreamsPerPartition: 2})
	if err != nil {
		return nil, err
	}
	jobs, err := cluster.BuildScenario(ctx, cluster.ScenarioConfig{
		Seed:             seed,
		Arrival:          "bursty",
		SizeSpread:       sc.spread,
		AffinityFraction: sc.affinity,
		Origins:          []int{0, 1},
		XferBytes:        sc.xfer,
		WindowNs:         sc.windowNs,
	})
	if err != nil {
		return nil, err
	}
	pol, err := cluster.ByName(place)
	if err != nil {
		return nil, err
	}
	c, err := cluster.New(ctx, cluster.WithPlacement(pol), cluster.WithQueueDepth(8))
	if err != nil {
		return nil, err
	}
	return c.Run(jobs)
}

// runStaticBest runs the scenario pinned whole to each device in turn
// and returns the better makespan — the bound the predicted policy's
// contract is stated against.
func runStaticBest(scIdx int, seed uint64) (sim.Duration, error) {
	sc := placementScenarios[scIdx]
	var best sim.Duration
	for d := 0; d < 2; d++ {
		ctx, err := hstreams.Init(hstreams.Config{Devices: 2, Partitions: 2, StreamsPerPartition: 2})
		if err != nil {
			return 0, err
		}
		jobs, err := cluster.BuildScenario(ctx, cluster.ScenarioConfig{
			Seed:             seed,
			Arrival:          "bursty",
			SizeSpread:       sc.spread,
			AffinityFraction: sc.affinity,
			Origins:          []int{0, 1},
			XferBytes:        sc.xfer,
			WindowNs:         sc.windowNs,
		})
		if err != nil {
			return 0, err
		}
		c, err := cluster.New(ctx, cluster.WithPlacement(cluster.Static(d)), cluster.WithQueueDepth(8))
		if err != nil {
			return 0, err
		}
		r, err := c.Run(jobs)
		if err != nil {
			return 0, err
		}
		if best == 0 || r.Makespan < best {
			best = r.Makespan
		}
	}
	return best, nil
}

// Placement regenerates the placement-policy study: mean makespan of
// every built-in placement policy (plus the best static single-device
// pinning) over the imbalance grid, averaged across seeded arrival
// streams. On the balanced row every dynamic policy ties within noise;
// as size spread and device affinity grow, the load-blind policies
// commit heavy or misplaced jobs to the wrong device and "predicted" —
// routing by model-predicted completion including the staging term —
// pulls ahead. This is the placement analogue of the follow-up work's
// predicted-performance-driven configuration claim (arXiv:2003.04294).
func Placement() (*Table, error) {
	t := &Table{
		ID:      "placement",
		Title:   "Cluster placement policies: mean makespan [ms] by load-imbalance scenario",
		Columns: []string{"scenario", "round-robin", "least-loaded", "predicted", "static-best"},
		Notes: []string{
			"2 MICs × 2 partitions × 2 streams, queue depth 8, bursty arrivals; spread/affinity/staging grow down the rows",
			"predicted routes by model-predicted completion incl. the Fig. 11 staging term; static-best pins all jobs to the single best device",
		},
	}
	const seeds = 5
	for scIdx, sc := range placementScenarios {
		row := []string{sc.name}
		for _, place := range []string{"round-robin", "least-loaded", "predicted"} {
			var ms []float64
			for s := uint64(0); s < seeds; s++ {
				r, err := runPlacementCell(place, scIdx, clusterSeed+s)
				if err != nil {
					return nil, err
				}
				ms = append(ms, r.Makespan.Milliseconds())
			}
			row = append(row, fmtMS(stats.Mean(ms)))
		}
		var ms []float64
		for s := uint64(0); s < seeds; s++ {
			best, err := runStaticBest(scIdx, clusterSeed+s)
			if err != nil {
				return nil, err
			}
			ms = append(ms, best.Milliseconds())
		}
		row = append(row, fmtMS(stats.Mean(ms)))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("each cell averages %d seeded runs", seeds))
	return t, nil
}

// ClusterScaling regenerates the Fig. 11 shape through the online
// scheduler instead of a hand-partitioned factorization: a bag of
// identical jobs whose inputs all live on device 0 runs on clusters of
// 1, 2 and 4 MICs under predicted placement. Every job placed off
// device 0 stages its input through the host on the target link, so
// throughput scales above 1× but below the projected linear speedup —
// the paper's §VI finding, produced by the scheduler's own placement
// decisions.
func ClusterScaling() (*Table, error) {
	t := &Table{
		ID:      "cluster-scaling",
		Title:   "Multi-MIC scaling through the cluster scheduler (predicted placement)",
		Columns: []string{"devices", "GFLOPS", "speedup", "projected", "staged-jobs"},
		Notes: []string{
			"32 identical jobs, inputs resident on device 0; off-origin placement stages 2× the input through the host (paper §VI, Fig. 11)",
		},
	}
	var base float64
	for _, devs := range []int{1, 2, 4} {
		ctx, err := hstreams.Init(hstreams.Config{Devices: devs, Partitions: 4})
		if err != nil {
			return nil, err
		}
		jobs, err := cluster.BuildScenario(ctx, cluster.ScenarioConfig{
			Jobs:             32,
			Seed:             clusterSeed,
			SizeSpread:       1,
			AffinityFraction: 1,
			Origins:          []int{0},
			KernelFlops:      6e9,
			XferBytes:        8 << 20,
			WindowNs:         1_000_000,
		})
		if err != nil {
			return nil, err
		}
		c, err := cluster.New(ctx, cluster.WithPlacement(cluster.Predicted()))
		if err != nil {
			return nil, err
		}
		r, err := c.Run(jobs)
		if err != nil {
			return nil, err
		}
		if devs == 1 {
			base = r.GFlops
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", devs),
			fmtGF(r.GFlops),
			fmt.Sprintf("%.2f", r.GFlops/base),
			fmt.Sprintf("%.2f", float64(devs)),
			fmt.Sprintf("%d", r.StagedJobs),
		})
	}
	t.Notes = append(t.Notes,
		"speedup lands above 1 but below the projection: the second device's gain is partly spent re-staging tiles (Fig. 11)")
	return t, nil
}
