package experiments

import (
	"fmt"
	"math"

	"micstream/internal/apps/cf"
	"micstream/internal/apps/hotspot"
	"micstream/internal/apps/kmeans"
	"micstream/internal/apps/mm"
	"micstream/internal/apps/nn"
	"micstream/internal/apps/srad"
	"micstream/internal/core"
)

func init() {
	register("fig8a", Fig8aMM)
	register("fig8b", Fig8bCF)
	register("fig8c", Fig8cKmeans)
	register("fig8d", Fig8dHotspot)
	register("fig8e", Fig8eNN)
	register("fig8f", Fig8fSRAD)
}

// bestOf runs every configuration and keeps the fastest result — the
// paper's protocol for the streamed side of Fig. 8 ("we empirically
// enumerate all the possible values of task granularity and resource
// granularity to obtain the optimal performance"), restricted to the
// §V-C pruned candidates to keep regeneration quick.
func bestOf(run func(p, t int) (core.Result, error), configs [][2]int) (core.Result, error) {
	var best core.Result
	bestTime := math.Inf(1)
	for _, c := range configs {
		r, err := run(c[0], c[1])
		if err != nil {
			return core.Result{}, err
		}
		if s := r.Wall.Seconds(); s < bestTime {
			bestTime = s
			best = r
		}
	}
	return best, nil
}

// Fig8aMM regenerates Fig. 8(a): MM GFLOPS, w/o vs w/, over matrix
// dimensions 2000..12000.
func Fig8aMM() (*Table, error) {
	t := &Table{
		ID:      "fig8a",
		Title:   "MM: single stream vs multiple streams (GFLOPS)",
		Columns: []string{"dataset", "w/o[GFLOPS]", "w/[GFLOPS]", "gain"},
	}
	sumGain := 0.0
	dims := []int{2000, 4000, 6000, 8000, 10000, 12000}
	for _, d := range dims {
		app, err := mm.New(mm.Params{N: d})
		if err != nil {
			return nil, err
		}
		base, err := app.Run(1, 1)
		if err != nil {
			return nil, err
		}
		streamed, err := bestOf(app.Run, [][2]int{{2, 2}, {4, 2}, {4, 4}, {8, 4}, {4, 8}})
		if err != nil {
			return nil, err
		}
		gain := streamed.GFlops/base.GFlops - 1
		sumGain += gain
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d^2", d), fmtGF(base.GFlops), fmtGF(streamed.GFlops),
			fmt.Sprintf("%+.1f%%", gain*100),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("average gain %.1f%% (paper: 8.3%%)", sumGain/float64(len(dims))*100))
	return t, nil
}

// Fig8bCF regenerates Fig. 8(b): CF GFLOPS over 7200..19200.
func Fig8bCF() (*Table, error) {
	t := &Table{
		ID:      "fig8b",
		Title:   "CF: single stream vs multiple streams (GFLOPS)",
		Columns: []string{"dataset", "w/o[GFLOPS]", "w/[GFLOPS]", "gain"},
	}
	sumGain := 0.0
	dims := []int{7200, 9600, 12000, 14400, 16800, 19200}
	for _, d := range dims {
		app, err := cf.New(cf.Params{N: d})
		if err != nil {
			return nil, err
		}
		base, err := app.Run(1, 1, 1)
		if err != nil {
			return nil, err
		}
		streamed, err := bestOf(func(p, grid int) (core.Result, error) {
			return app.Run(1, p, grid)
		}, [][2]int{{4, 8}, {4, 12}, {8, 12}, {4, 24}})
		if err != nil {
			return nil, err
		}
		gain := streamed.GFlops/base.GFlops - 1
		sumGain += gain
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d^2", d), fmtGF(base.GFlops), fmtGF(streamed.GFlops),
			fmt.Sprintf("%+.1f%%", gain*100),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("average gain %.1f%% (paper: 24.1%%)", sumGain/float64(len(dims))*100))
	return t, nil
}

// Fig8cKmeans regenerates Fig. 8(c): Kmeans execution time over
// 140K..2240K points (k=8, 100 iterations).
func Fig8cKmeans() (*Table, error) {
	t := &Table{
		ID:      "fig8c",
		Title:   "Kmeans: single stream vs multiple streams (execution time)",
		Columns: []string{"dataset", "w/o[s]", "w/[s]", "gain"},
	}
	sumGain := 0.0
	sizes := []int{140_000, 280_000, 560_000, 1_120_000, 2_240_000}
	for _, n := range sizes {
		app, err := kmeans.New(kmeans.Params{N: n, Features: 34, K: 8, Iterations: 100})
		if err != nil {
			return nil, err
		}
		base, err := app.Run(1, 1)
		if err != nil {
			return nil, err
		}
		streamed, err := bestOf(app.Run, [][2]int{{4, 4}, {8, 8}, {28, 28}, {56, 56}})
		if err != nil {
			return nil, err
		}
		gain := base.Wall.Seconds()/streamed.Wall.Seconds() - 1
		sumGain += gain
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dK", n/1000), fmtS(base.Wall.Seconds()), fmtS(streamed.Wall.Seconds()),
			fmt.Sprintf("%+.1f%%", gain*100),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("average speedup %.1f%% (paper: 24.1%%) — from reduced per-launch allocation, not overlap", sumGain/float64(len(sizes))*100))
	t.Notes = append(t.Notes, "model limitation: the per-launch allocation term is fixed, so gains shrink with dataset size; at the reference 1120K dataset (Figs. 9c/10c) the gain matches the paper")
	return t, nil
}

// Fig8dHotspot regenerates Fig. 8(d): Hotspot execution time over grid
// sizes 1024²..16384² (50 iterations).
func Fig8dHotspot() (*Table, error) {
	t := &Table{
		ID:      "fig8d",
		Title:   "Hotspot: single stream vs multiple streams (execution time)",
		Columns: []string{"dataset", "w/o[s]", "w/[s]", "change"},
	}
	for _, d := range []int{1024, 2048, 4096, 8192, 16384} {
		app, err := hotspot.New(hotspot.Params{Dim: d, Iterations: 50})
		if err != nil {
			return nil, err
		}
		base, err := app.Run(1, 1)
		if err != nil {
			return nil, err
		}
		// Like SRAD, the streamed port runs its production tiling
		// rather than degenerating to near-non-streamed shapes,
		// which is what exposes the small-grid overhead loss.
		streamed, err := bestOf(app.Run, [][2]int{{4, 16}, {8, 16}})
		if err != nil {
			return nil, err
		}
		change := base.Wall.Seconds()/streamed.Wall.Seconds() - 1
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d^2", d), fmtS(base.Wall.Seconds()), fmtS(streamed.Wall.Seconds()),
			fmt.Sprintf("%+.1f%%", change*100),
		})
	}
	t.Notes = append(t.Notes, "no benefit from streams (paper: no change; slightly slower on small grids)")
	return t, nil
}

// Fig8eNN regenerates Fig. 8(e): NN execution time over 128k..2048k
// records (k=10, target (40,120)).
func Fig8eNN() (*Table, error) {
	t := &Table{
		ID:      "fig8e",
		Title:   "NN: single stream vs multiple streams (execution time)",
		Columns: []string{"dataset", "w/o[ms]", "w/[ms]", "gain"},
	}
	sumGain := 0.0
	sizes := []int{131072, 262144, 524288, 1048576, 2097152}
	for _, n := range sizes {
		app, err := nn.New(nn.Params{N: n, K: 10, TargetLat: 40, TargetLon: 120})
		if err != nil {
			return nil, err
		}
		base, err := app.Run(1, 1)
		if err != nil {
			return nil, err
		}
		streamed, err := bestOf(app.Run, [][2]int{{4, 4}, {4, 8}, {8, 8}, {4, 16}})
		if err != nil {
			return nil, err
		}
		gain := base.Wall.Seconds()/streamed.Wall.Seconds() - 1
		sumGain += gain
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dk", n/1024), fmtMS(base.Wall.Milliseconds()), fmtMS(streamed.Wall.Milliseconds()),
			fmt.Sprintf("%+.1f%%", gain*100),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("average gain %.1f%% (paper: 9.2%%); NN is transfer-bound, so the hideable fraction is small", sumGain/float64(len(sizes))*100))
	return t, nil
}

// Fig8fSRAD regenerates Fig. 8(f): SRAD execution time over image sizes
// 1000²..10000² (λ=0.5, 100 iterations).
func Fig8fSRAD() (*Table, error) {
	t := &Table{
		ID:      "fig8f",
		Title:   "SRAD: single stream vs multiple streams (execution time)",
		Columns: []string{"dataset", "w/o[s]", "w/[s]", "change"},
	}
	for _, d := range []int{1000, 2000, 4000, 5000, 10000} {
		app, err := srad.New(srad.Params{Dim: d, Iterations: 100, Lambda: 0.5})
		if err != nil {
			return nil, err
		}
		base, err := app.Run(1, 1)
		if err != nil {
			return nil, err
		}
		// The streamed SRAD port uses its production tiling (the
		// fine grids that win on large images, cf. Fig. 10f); it is
		// not re-degenerated to near-non-streamed shapes per
		// dataset, which is why small images lose.
		streamed, err := bestOf(app.Run, [][2]int{{4, 100}, {4, 400}, {8, 400}})
		if err != nil {
			return nil, err
		}
		change := base.Wall.Seconds()/streamed.Wall.Seconds() - 1
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d^2", d), fmtS(base.Wall.Seconds()), fmtS(streamed.Wall.Seconds()),
			fmt.Sprintf("%+.1f%%", change*100),
		})
	}
	t.Notes = append(t.Notes,
		"streamed loses on small images (overheads) and wins on large ones (L2-resident tiles across the two stencil phases) — the paper's 'under investigation' case")
	return t, nil
}
