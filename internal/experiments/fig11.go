package experiments

import (
	"fmt"

	"micstream/internal/apps/cf"
	"micstream/internal/apps/mm"
	"micstream/internal/core"
)

func init() {
	register("fig11", Fig11)
	register("heuristics", Heuristics)
}

// Fig11 regenerates Fig. 11: Cholesky Factorization on one and two
// MICs against the projected 2× for datasets 14000² and 16000²
// (§VI). The 2-MIC run pays cross-device tile staging and extra
// intermediate write-backs, which is why it lands below the projection.
func Fig11() (*Table, error) {
	t := &Table{
		ID:      "fig11",
		Title:   "CF on multiple MICs (GFLOPS)",
		Columns: []string{"dataset", "1-mic", "2-mics", "projected"},
	}
	for _, d := range []int{14000, 16000} {
		app, err := cf.New(cf.Params{N: d})
		if err != nil {
			return nil, err
		}
		grid := d / 1000 // ≈1000×1000 tiles
		one, err := app.Run(1, 4, grid)
		if err != nil {
			return nil, err
		}
		two, err := app.Run(2, 4, grid)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d), fmtGF(one.GFlops), fmtGF(two.GFlops), fmtGF(2 * one.GFlops),
		})
	}
	t.Notes = append(t.Notes,
		"2 MICs beat 1 but fall short of 2×: partitioned workloads move more tiles and synchronize across devices (paper §VI)")
	return t, nil
}

// Heuristics regenerates the §V-C search-space study: the exhaustive
// (P, T) space against the paper's pruned space (P a divisor of 56,
// T a multiple of P), and the quality of the pruned optimum, using MM
// at D = 6000 as the workload.
func Heuristics() (*Table, error) {
	app, err := mm.New(mm.Params{N: 6000})
	if err != nil {
		return nil, err
	}
	// The tuner works on (P, grid) where T = grid²; grid must divide
	// 6000. Grids up to 40 approximate the paper's T ≤ 400·4.
	divGrids := []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 16, 20, 24, 25, 30, 40}
	eval := func(p, grid int) (float64, error) {
		r, err := app.Run(p, grid)
		if err != nil {
			return 0, err
		}
		return r.Wall.Seconds(), nil
	}

	exhaustive := core.SearchSpace{
		Partitions: core.FullPartitionSpace(56),
		TilesFor:   func(int) []int { return divGrids },
	}
	exBest, err := core.Tune(exhaustive, eval)
	if err != nil {
		return nil, err
	}

	var prunedP []int
	for p := 2; p <= 56; p++ {
		if 56%p == 0 {
			prunedP = append(prunedP, p)
		}
	}
	pruned := core.SearchSpace{
		Partitions: prunedP,
		TilesFor: func(p int) []int {
			// T = m·P ⇒ grid² multiple of P, approximated by
			// grids whose square is divisible by p.
			var out []int
			for _, g := range divGrids {
				if (g*g)%p == 0 {
					out = append(out, g)
				}
			}
			if len(out) == 0 {
				// No grid satisfies T = m·P exactly (e.g. P=7
				// with grids dividing 6000); fall back to a
				// balanced small grid.
				out = []int{4}
			}
			return out
		},
	}
	prBest, err := core.Tune(pruned, eval)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "heuristics",
		Title:   "§V-C search-space reduction (MM, D=6000)",
		Columns: []string{"space", "points", "best P", "best T", "best time[ms]"},
	}
	t.Rows = append(t.Rows, []string{
		"exhaustive", fmt.Sprintf("%d", exBest.Evaluations),
		fmt.Sprintf("%d", exBest.Partitions), fmt.Sprintf("%d", exBest.Tiles*exBest.Tiles),
		fmtMS(exBest.Seconds * 1000),
	})
	t.Rows = append(t.Rows, []string{
		"pruned", fmt.Sprintf("%d", prBest.Evaluations),
		fmt.Sprintf("%d", prBest.Partitions), fmt.Sprintf("%d", prBest.Tiles*prBest.Tiles),
		fmtMS(prBest.Seconds * 1000),
	})
	// The paper's future-work direction: search the pruned space one
	// axis at a time instead of exhaustively.
	cdBest, err := core.TuneCoordinateDescent(pruned, eval, 3)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"descent", fmt.Sprintf("%d", cdBest.Evaluations),
		fmt.Sprintf("%d", cdBest.Partitions), fmt.Sprintf("%d", cdBest.Tiles*cdBest.Tiles),
		fmtMS(cdBest.Seconds * 1000),
	})
	t.Notes = append(t.Notes, fmt.Sprintf(
		"pruning cuts the space %.1f× and keeps the optimum within %.1f%%; coordinate descent needs only %d evaluations (within %.1f%%)",
		float64(exBest.Evaluations)/float64(prBest.Evaluations),
		(prBest.Seconds/exBest.Seconds-1)*100,
		cdBest.Evaluations,
		(cdBest.Seconds/exBest.Seconds-1)*100))
	return t, nil
}
