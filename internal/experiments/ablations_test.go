package experiments

import (
	"testing"

	"micstream/internal/stats"
)

func TestAblationDuplexDistinguishesLinkDesigns(t *testing.T) {
	tab := gen(t, "ablation-duplex")
	half, full := tab.Column(1), tab.Column(2)
	if !stats.IsRoughlyConstant(half, 0.01) {
		t.Fatalf("half-duplex ID not constant: %v", half)
	}
	if stats.IsRoughlyConstant(full, 0.05) {
		t.Fatalf("full-duplex ID should not be constant: %v", full)
	}
	// Balanced split on full duplex approaches half the serial time.
	mid := full[8]
	if ratio := half[8] / mid; ratio < 1.8 || ratio > 2.1 {
		t.Fatalf("balanced full-duplex should be ≈2x faster: %v vs %v", half[8], mid)
	}
	// Edges (one-directional traffic) are identical in both designs.
	if d := full[0]/half[0] - 1; d > 0.01 || d < -0.01 {
		t.Fatalf("one-directional traffic should not care about duplexity: %v vs %v", full[0], half[0])
	}
}

func TestAblationContentionIsolatesDivisorEffect(t *testing.T) {
	tab := gen(t, "ablation-contention")
	// Rows alternate divisor, non-divisor: {4,5,7,9,14,15,28,29}.
	withP, without := tab.Column(1), tab.Column(2)
	for i := 0; i+1 < len(withP); i += 2 {
		div, nondiv := withP[i], withP[i+1]
		if nondiv <= div*1.05 {
			t.Errorf("with contention, non-divisor row %d (%.2f) should be clearly slower than divisor (%.2f)", i+1, nondiv, div)
		}
	}
	// Without the penalty the sawtooth flattens: each non-divisor is
	// within a few percent of its preceding divisor (residual
	// differences come from load imbalance only).
	for i := 0; i+1 < len(without); i += 2 {
		div, nondiv := without[i], without[i+1]
		if nondiv > div*1.40 {
			t.Errorf("without contention, non-divisor row %d (%.2f) still spikes vs divisor (%.2f)", i+1, nondiv, div)
		}
	}
}

func TestAblationAllocIsolatesKmeansEffect(t *testing.T) {
	tab := gen(t, "ablation-alloc")
	with, without := tab.Column(1), tab.Column(2)
	// With allocation: steep monotone-envelope fall.
	if with[0] < with[len(with)-1]*3 {
		t.Fatalf("with-alloc sweep should fall steeply: %v", with)
	}
	// Without: the spread across P is small compared to the
	// with-alloc spread.
	maxW, _ := stats.Max(without)
	minW, _ := stats.Min(without)
	if (maxW-minW)/minW > 0.5*(with[0]-with[len(with)-1])/with[len(with)-1] {
		t.Fatalf("no-alloc sweep should be much flatter: with=%v without=%v", with, without)
	}
}

func TestExtHotspotPipelinedGains(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale extension run")
	}
	tab := gen(t, "ext-hotspot-pipe")
	barrier, pipe := tab.Column(1), tab.Column(2)
	for i := range barrier {
		if pipe[i] >= barrier[i] {
			t.Errorf("row %d: pipelined %.2fs not below barrier %.2fs", i, pipe[i], barrier[i])
		}
	}
}

// The taxonomy experiment must separate the classes cleanly: every
// overlappable application shows far more measured overlap than every
// non-overlappable one, and the §VII transformation moves Hotspot from
// the second group toward the first.
func TestExtTaxonomySeparatesClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale extension run")
	}
	tab := gen(t, "ext-taxonomy")
	overlap := map[string]float64{}
	for i, row := range tab.Rows {
		overlap[row[0]] = tab.Column(2)[i]
	}
	for _, a := range []string{"mm", "cf", "nn"} {
		for _, b := range []string{"kmeans", "hotspot", "srad"} {
			if overlap[a] <= overlap[b]+20 {
				t.Errorf("overlappable %s (%.0f%%) not clearly above non-overlappable %s (%.0f%%)",
					a, overlap[a], b, overlap[b])
			}
		}
	}
	if overlap["hotspot-pipelined"] <= overlap["hotspot"]+20 {
		t.Errorf("transformation did not move hotspot's overlap: %.0f%% vs %.0f%%",
			overlap["hotspot-pipelined"], overlap["hotspot"])
	}
}

func TestExtMultiMICEfficiencyDecays(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale extension run")
	}
	tab := gen(t, "ext-multimic")
	gf := tab.Column(1)
	if len(gf) != 4 {
		t.Fatalf("want 4 device counts, got %v", gf)
	}
	if !stats.IsMonotone(gf, +1, 0.02) {
		t.Fatalf("throughput should grow with devices: %v", gf)
	}
	// Efficiency strictly below 100% beyond one device, and no
	// super-linear artifacts.
	proj := tab.Column(2)
	for i := 1; i < 4; i++ {
		if gf[i] >= proj[i] {
			t.Errorf("%d devices: %.1f GF at or above projected %.1f", i+1, gf[i], proj[i])
		}
	}
}
