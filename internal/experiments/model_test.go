package experiments

import (
	"strconv"
	"testing"
)

// cell parses one numeric table cell.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s[%d][%d] = %q is not numeric: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

// The validation study covers every app and keeps the pipeline apps'
// mean error in single digits; CF is the stated outlier.
func TestModelValShape(t *testing.T) {
	tab := gen(t, "modelval")
	if len(tab.Rows) != 7 {
		t.Fatalf("modelval has %d rows, want one per app (7)", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		app := row[0]
		if points := cell(t, tab, i, 1); points <= 0 {
			t.Errorf("%s: empty validation plane", app)
		}
		mean := cell(t, tab, i, 2)
		limit := 10.0
		if app == "cf" {
			limit = 40.0
		}
		if mean > limit {
			t.Errorf("%s: mean error %.1f%% exceeds %.0f%%", app, mean, limit)
		}
	}
}

// The guided search must be the cheapest method and land within 5% of
// the exhaustive optimum; every method's gap is non-negative by
// construction.
func TestGuidedShape(t *testing.T) {
	tab := gen(t, "guided")
	if len(tab.Rows) != 4 {
		t.Fatalf("guided has %d rows, want 4 methods", len(tab.Rows))
	}
	exEvals := cell(t, tab, 0, 1)
	gdEvals := cell(t, tab, 3, 1)
	if gdEvals*4 > exEvals {
		t.Errorf("guided evaluated %.0f of %.0f points — not a ≥4x reduction", gdEvals, exEvals)
	}
	for i := range tab.Rows {
		gap := cell(t, tab, i, 5)
		if gap < -1e-9 {
			t.Errorf("%s: negative gap %.2f%% — exhaustive row is not the optimum", tab.Rows[i][0], gap)
		}
	}
	if gap := cell(t, tab, 3, 5); gap > 5 {
		t.Errorf("guided gap %.2f%% exceeds 5%%", gap)
	}
}

// Both studies are deterministic: regenerating gives identical tables.
func TestModelExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"modelval", "guided"} {
		a, b := gen(t, id), gen(t, id)
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: row counts differ", id)
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j] != b.Rows[i][j] {
					t.Fatalf("%s: cell [%d][%d] differs: %q vs %q", id, i, j, a.Rows[i][j], b.Rows[i][j])
				}
			}
		}
	}
}
