package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"micstream/internal/cluster"
	"micstream/internal/hstreams"
	"micstream/internal/sched"
	"micstream/internal/slo"
)

// findState pulls one objective's final state out of a cell.
func findState(t *testing.T, cell *sloCell, name string) slo.ObjectiveState {
	t.Helper()
	for _, st := range cell.eval.States() {
		if st.Objective.Name == name {
			return st
		}
	}
	t.Fatalf("objective %q missing from evaluator states", name)
	return slo.ObjectiveState{}
}

// The alert-ordering contract: on the convoy mix the tight-objective
// tenant (interactive, 2ms) alerts strictly before the loose-objective
// tenant (batch, 40ms); on the imbalance mix the tight objective of
// one tenant alerts strictly before its loose sibling.
func TestSLOTightAlertsBeforeLoose(t *testing.T) {
	convoy, err := runSLOCell("convoy", clusterSeed, sloStudySpec)
	if err != nil {
		t.Fatal(err)
	}
	tight := findState(t, convoy, "int-tight")
	loose := findState(t, convoy, "batch-loose")
	if tight.FirstAlertAt == 0 || loose.FirstAlertAt == 0 {
		t.Fatalf("convoy alerts missing: tight %v, loose %v", tight.FirstAlertAt, loose.FirstAlertAt)
	}
	if tight.FirstAlertAt >= loose.FirstAlertAt {
		t.Fatalf("tight tenant alerted at %v, not before loose tenant at %v", tight.FirstAlertAt, loose.FirstAlertAt)
	}

	imb, err := runSLOCell("imbalance", clusterSeed, sloImbalanceSpec)
	if err != nil {
		t.Fatal(err)
	}
	aTight := findState(t, imb, "a-tight")
	aLoose := findState(t, imb, "a-loose")
	if aTight.FirstAlertAt == 0 || aLoose.FirstAlertAt == 0 {
		t.Fatalf("imbalance alerts missing: tight %v, loose %v", aTight.FirstAlertAt, aLoose.FirstAlertAt)
	}
	if aTight.FirstAlertAt >= aLoose.FirstAlertAt {
		t.Fatalf("imbalance tight alerted at %v, not before loose at %v", aTight.FirstAlertAt, aLoose.FirstAlertAt)
	}
}

// Budget exhaustion triggers the flight recorder: the convoy run's
// dump list carries an exhaustion-labeled capture whose instant
// matches the evaluator's own exhaustion instant.
func TestSLOExhaustionFiresFlightRecorder(t *testing.T) {
	cell, err := runSLOCell("convoy", clusterSeed, sloStudySpec)
	if err != nil {
		t.Fatal(err)
	}
	tight := findState(t, cell, "int-tight")
	if !tight.Exhausted {
		t.Fatal("convoy tight objective never exhausted its budget")
	}
	found := false
	for _, d := range cell.flight.Dumps() {
		if strings.Contains(d.Reason, `slo "int-tight"`) && strings.Contains(d.Reason, "error budget exhausted") {
			found = true
			if d.At != tight.ExhaustedAt {
				t.Fatalf("dump at %v, evaluator exhausted at %v", d.At, tight.ExhaustedAt)
			}
			if len(d.Events) == 0 {
				t.Fatal("exhaustion dump captured no events")
			}
		}
	}
	if !found {
		t.Fatalf("no exhaustion dump for int-tight among %d dumps", len(cell.flight.Dumps()))
	}
}

// Violations are attributed through the causal timeline: the convoy's
// interactive breaches are wait-dominated (the tenant is trapped
// behind the batch convoy, not slow to execute).
func TestSLOViolationsAttributeToWait(t *testing.T) {
	cell, err := runSLOCell("convoy", clusterSeed, sloStudySpec)
	if err != nil {
		t.Fatal(err)
	}
	waits := 0
	var total int
	for _, v := range cell.eval.Violations() {
		if v.Objective != "int-tight" {
			continue
		}
		total++
		if v.Phase == "place-wait" || v.Phase == "commit-wait" {
			waits++
		}
	}
	if total == 0 {
		t.Fatal("no int-tight violations recorded")
	}
	if waits*2 < total {
		t.Fatalf("only %d/%d interactive breaches attributed to wait phases", waits, total)
	}
}

// Same seed, same spec: the SLO_<run>.json artifact is byte-identical
// across repeated runs.
func TestSLOReportByteIdentical(t *testing.T) {
	for _, mix := range []string{"convoy", "imbalance"} {
		spec := sloStudySpec
		if mix == "imbalance" {
			spec = sloImbalanceSpec
		}
		a, err := runSLOCell(mix, clusterSeed, spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := runSLOCell(mix, clusterSeed, spec)
		if err != nil {
			t.Fatal(err)
		}
		ja, err := sloReportBytes(a, clusterSeed)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := sloReportBytes(b, clusterSeed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ja, jb) {
			t.Fatalf("%s SLO report differs across identical runs:\n%s\n---\n%s", mix, ja, jb)
		}
	}
}

// The whole SLO stack is an observer: the instrumented convoy run's
// Result is deep-equal to a bare run of the same stamped job list.
func TestSLOInstrumentationNeverPerturbs(t *testing.T) {
	instrumented, err := runSLOCell("convoy", clusterSeed, sloStudySpec)
	if err != nil {
		t.Fatal(err)
	}

	ctx, err := hstreams.Init(hstreams.Config{Devices: 2, Partitions: 2, StreamsPerPartition: 2})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := convoyJobs(clusterSeed)
	if err != nil {
		t.Fatal(err)
	}
	StampDeadlines(jobs, sloStudySpec)
	c, err := cluster.New(ctx,
		cluster.WithPlacement(cluster.Predicted()),
		cluster.WithQueueDepth(16),
		cluster.WithStealing(0),
		cluster.WithDevicePolicy(func() sched.Policy { return sched.SJF() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(instrumented.result, bare) {
		t.Fatal("SLO instrumentation perturbed the run's Result")
	}
}

// The registered table carries one row per objective per mix, with the
// verdict columns populated.
func TestSLOTableShape(t *testing.T) {
	tbl, err := SLO()
	if err != nil {
		t.Fatal(err)
	}
	want := len(sloStudySpec.Objectives) + len(sloImbalanceSpec.Objectives)
	if len(tbl.Rows) != want {
		t.Fatalf("table has %d rows, want %d", len(tbl.Rows), want)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(tbl.Columns))
		}
	}
	// Deadline stamping reaches the batch Result accounting too.
	cell, err := runSLOCell("convoy", clusterSeed, sloStudySpec)
	if err != nil {
		t.Fatal(err)
	}
	if cell.result.DeadlineMisses == 0 {
		t.Fatal("convoy run recorded no deadline misses despite stamped 45ms deadlines")
	}
	dl := findState(t, cell, "batch-deadline")
	if dl.Bad != cell.result.DeadlineMisses {
		t.Fatalf("evaluator saw %d deadline breaches, Result counted %d", dl.Bad, cell.result.DeadlineMisses)
	}
}
