// Package trace records what happened on each simulated resource and
// when. The paper reasons about stream performance through the overlap
// (or lack of overlap) of three stage classes — H2D transfers, kernel
// execution, and D2H transfers — so the tracer's main analysis products
// are per-class busy time and pairwise overlap between classes. It also
// renders ASCII Gantt charts (cmd/micgantt) that make the temporal
// sharing of Fig. 1 directly visible.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"micstream/internal/sim"
)

// Kind classifies a span by pipeline stage.
type Kind uint8

// Span classes. H2D/D2H/Kernel mirror the paper's three offload stages;
// Host covers CPU-side work between syncs, Alloc covers device memory
// management overhead that the paper identifies in Kmeans.
const (
	H2D Kind = iota
	D2H
	Kernel
	Host
	Alloc
	Sync
)

var kindNames = [...]string{"H2D", "D2H", "EXE", "HOST", "ALLOC", "SYNC"}

// String returns the short stage label used in paper-style flow charts.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Span is one contiguous occupancy of a resource.
type Span struct {
	Resource string   // e.g. "mic0/pcie", "mic0/part3"
	Stream   int      // logical stream id, -1 if not stream-bound
	Task     int      // application task id, -1 if not task-bound
	Kind     Kind     // stage class
	Label    string   // free-form, e.g. kernel name
	Start    sim.Time // inclusive
	End      sim.Time // exclusive
}

// Duration reports the span length.
func (s Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// Recorder accumulates spans. A nil *Recorder is a valid no-op sink, so
// hot paths can record unconditionally.
type Recorder struct {
	spans []Span
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add appends a span. Calls on a nil recorder are dropped.
func (r *Recorder) Add(s Span) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, s)
}

// Reset discards all recorded spans but keeps the recorder usable.
func (r *Recorder) Reset() {
	if r != nil {
		r.spans = r.spans[:0]
	}
}

// Spans returns the recorded spans in insertion order. The returned
// slice aliases the recorder's storage; callers must not mutate it.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Len reports the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Makespan reports the end of the latest span.
func (r *Recorder) Makespan() sim.Time {
	var m sim.Time
	for _, s := range r.Spans() {
		if s.End > m {
			m = s.End
		}
	}
	return m
}

// BusyTime reports the union length of all spans of the given kind —
// i.e. wall time during which at least one span of that kind was
// active. Overlapping spans (different partitions computing at once)
// are not double counted.
func (r *Recorder) BusyTime(kind Kind) sim.Duration {
	return unionLength(r.intervals(func(s Span) bool { return s.Kind == kind }))
}

// TotalTime reports the summed lengths of all spans of the given kind,
// counting concurrent spans multiply (resource-seconds).
func (r *Recorder) TotalTime(kind Kind) sim.Duration {
	var t sim.Duration
	for _, s := range r.Spans() {
		if s.Kind == kind {
			t += s.Duration()
		}
	}
	return t
}

// Overlap reports the wall time during which at least one span of kind
// a and one span of kind b were simultaneously active. This is the
// paper's "temporal sharing": Overlap(H2D, Kernel) > 0 means transfers
// were hidden behind compute.
func (r *Recorder) Overlap(a, b Kind) sim.Duration {
	ia := r.intervals(func(s Span) bool { return s.Kind == a })
	ib := r.intervals(func(s Span) bool { return s.Kind == b })
	return intersectionLength(mergeIntervals(ia), mergeIntervals(ib))
}

// TransferComputeOverlap reports overlap of any transfer (H2D or D2H)
// with kernel execution, as a fraction of total transfer busy time.
// Returns 0 when there were no transfers.
func (r *Recorder) TransferComputeOverlap() float64 {
	xfer := mergeIntervals(r.intervals(func(s Span) bool { return s.Kind == H2D || s.Kind == D2H }))
	exe := mergeIntervals(r.intervals(func(s Span) bool { return s.Kind == Kernel }))
	total := unionLength(xfer)
	if total == 0 {
		return 0
	}
	return intersectionLength(xfer, exe).Seconds() / total.Seconds()
}

type interval struct{ lo, hi sim.Time }

func (r *Recorder) intervals(keep func(Span) bool) []interval {
	var out []interval
	for _, s := range r.Spans() {
		if keep(s) && s.End > s.Start {
			out = append(out, interval{s.Start, s.End})
		}
	}
	return out
}

// mergeIntervals sorts and coalesces overlapping intervals.
func mergeIntervals(in []interval) []interval {
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool { return in[i].lo < in[j].lo })
	out := in[:1]
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv.lo <= last.hi {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

func unionLength(in []interval) sim.Duration {
	var t sim.Duration
	for _, iv := range mergeIntervals(in) {
		t += iv.hi.Sub(iv.lo)
	}
	return t
}

// intersectionLength computes the total length of the intersection of
// two already-merged interval sets.
func intersectionLength(a, b []interval) sim.Duration {
	var t sim.Duration
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].lo
		if b[j].lo > lo {
			lo = b[j].lo
		}
		hi := a[i].hi
		if b[j].hi < hi {
			hi = b[j].hi
		}
		if hi > lo {
			t += hi.Sub(lo)
		}
		if a[i].hi < b[j].hi {
			i++
		} else {
			j++
		}
	}
	return t
}

// Gantt renders the trace as an ASCII chart, one row per resource,
// width columns wide. Each cell shows the stage class active at that
// virtual instant ('H' H2D, 'D' D2H, '#' kernel, 'h' host, 'a' alloc),
// '.' for idle. Rows are sorted by resource name for stable output.
func (r *Recorder) Gantt(w io.Writer, width int) error {
	if width < 10 {
		width = 10
	}
	spans := r.Spans()
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	makespan := r.Makespan()
	if makespan == 0 {
		makespan = 1
	}
	byRes := map[string][]Span{}
	for _, s := range spans {
		byRes[s.Resource] = append(byRes[s.Resource], s)
	}
	names := make([]string, 0, len(byRes))
	nameW := 0
	for n := range byRes {
		names = append(names, n)
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	sort.Strings(names)
	glyph := map[Kind]byte{H2D: 'H', D2H: 'D', Kernel: '#', Host: 'h', Alloc: 'a', Sync: 's'}
	for _, n := range names {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range byRes[n] {
			lo := int(int64(s.Start) * int64(width) / int64(makespan))
			hi := int(int64(s.End) * int64(width) / int64(makespan))
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			g := glyph[s.Kind]
			if g == 0 {
				g = '?'
			}
			for i := lo; i < hi; i++ {
				row[i] = g
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", nameW, n, row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  0%s%v\n", nameW, "", strings.Repeat(" ", width-len(makespan.String())), makespan)
	return err
}
