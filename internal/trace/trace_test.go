package trace

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"micstream/internal/sim"
)

func span(res string, kind Kind, start, end sim.Time) Span {
	return Span{Resource: res, Stream: -1, Task: -1, Kind: kind, Start: start, End: end}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(span("x", H2D, 0, 10)) // must not panic
	r.Reset()
	if r.Len() != 0 || r.Spans() != nil {
		t.Fatal("nil recorder should report empty")
	}
	if r.BusyTime(H2D) != 0 {
		t.Fatal("nil recorder busy time should be 0")
	}
}

func TestBusyTimeCoalescesOverlaps(t *testing.T) {
	r := NewRecorder()
	r.Add(span("p0", Kernel, 0, 100))
	r.Add(span("p1", Kernel, 50, 150)) // overlaps the first
	r.Add(span("p2", Kernel, 200, 250))
	if got := r.BusyTime(Kernel); got != 200 {
		t.Fatalf("BusyTime = %v, want 200 (union of [0,150] and [200,250])", got)
	}
	if got := r.TotalTime(Kernel); got != 250 {
		t.Fatalf("TotalTime = %v, want 250 (sum)", got)
	}
}

func TestOverlapBetweenKinds(t *testing.T) {
	r := NewRecorder()
	r.Add(span("link", H2D, 0, 100))
	r.Add(span("p0", Kernel, 60, 160))
	if got := r.Overlap(H2D, Kernel); got != 40 {
		t.Fatalf("Overlap = %v, want 40", got)
	}
	if got := r.Overlap(D2H, Kernel); got != 0 {
		t.Fatalf("Overlap(D2H, Kernel) = %v, want 0", got)
	}
}

func TestTransferComputeOverlapFraction(t *testing.T) {
	r := NewRecorder()
	r.Add(span("link", H2D, 0, 100))
	r.Add(span("link", D2H, 100, 200))
	r.Add(span("p0", Kernel, 50, 150))
	// transfers busy [0,200]=200; kernel [50,150]; intersection=100.
	if got := r.TransferComputeOverlap(); got != 0.5 {
		t.Fatalf("TransferComputeOverlap = %v, want 0.5", got)
	}
	// No transfers -> 0, not NaN.
	empty := NewRecorder()
	empty.Add(span("p0", Kernel, 0, 10))
	if got := empty.TransferComputeOverlap(); got != 0 {
		t.Fatalf("overlap with no transfers = %v, want 0", got)
	}
}

func TestMakespanAndReset(t *testing.T) {
	r := NewRecorder()
	r.Add(span("a", H2D, 0, 10))
	r.Add(span("b", Kernel, 5, 42))
	if r.Makespan() != 42 {
		t.Fatalf("makespan = %v, want 42", r.Makespan())
	}
	r.Reset()
	if r.Len() != 0 || r.Makespan() != 0 {
		t.Fatal("reset did not clear recorder")
	}
}

func TestZeroLengthSpansIgnoredInAnalysis(t *testing.T) {
	r := NewRecorder()
	r.Add(span("a", Kernel, 10, 10))
	if r.BusyTime(Kernel) != 0 {
		t.Fatalf("zero-length span contributed busy time")
	}
	if r.Len() != 1 {
		t.Fatalf("zero-length span should still be recorded")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{H2D: "H2D", D2H: "D2H", Kernel: "EXE", Host: "HOST", Alloc: "ALLOC", Sync: "SYNC"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestGanttRendersAllResources(t *testing.T) {
	r := NewRecorder()
	r.Add(span("mic0/pcie", H2D, 0, 50))
	r.Add(span("mic0/part0", Kernel, 50, 100))
	var sb strings.Builder
	if err := r.Gantt(&sb, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "mic0/pcie") || !strings.Contains(out, "mic0/part0") {
		t.Fatalf("Gantt missing resources:\n%s", out)
	}
	if !strings.Contains(out, "H") || !strings.Contains(out, "#") {
		t.Fatalf("Gantt missing glyphs:\n%s", out)
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	var sb strings.Builder
	if err := NewRecorder().Gantt(&sb, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Fatalf("empty gantt output = %q", sb.String())
	}
}

// Property: overlap is symmetric, bounded by each class's busy time,
// and busy time is bounded by total time.
func TestPropertyOverlapBounds(t *testing.T) {
	f := func(raw []struct {
		Res   uint8
		Kind  uint8
		Start uint16
		Len   uint8
	}) bool {
		r := NewRecorder()
		for _, x := range raw {
			k := Kind(x.Kind % 3)
			start := sim.Time(x.Start)
			r.Add(Span{
				Resource: string(rune('a' + x.Res%4)),
				Kind:     k,
				Start:    start,
				End:      start.Add(sim.Duration(x.Len)),
				Stream:   -1, Task: -1,
			})
		}
		for a := H2D; a <= Kernel; a++ {
			if r.BusyTime(a) > r.TotalTime(a) {
				return false
			}
			for b := H2D; b <= Kernel; b++ {
				ov, vo := r.Overlap(a, b), r.Overlap(b, a)
				if ov != vo {
					return false // asymmetric
				}
				if ov > r.BusyTime(a) || ov > r.BusyTime(b) {
					return false // overlap exceeds a side
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Overlap(k, k) equals BusyTime(k).
func TestPropertySelfOverlapIsBusyTime(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		r := NewRecorder()
		for i := 0; i < 30; i++ {
			s := sim.Time(rng.Intn(1000))
			r.Add(span("x", Kernel, s, s.Add(sim.Duration(rng.Intn(100)))))
		}
		if r.Overlap(Kernel, Kernel) != r.BusyTime(Kernel) {
			t.Fatalf("self overlap %v != busy %v", r.Overlap(Kernel, Kernel), r.BusyTime(Kernel))
		}
	}
}
