package sim

import (
	"fmt"
)

// event is a scheduled callback. Events with equal timestamps dispatch
// in scheduling order (seq), which makes the whole simulation
// deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq), maintained by the
// hand-rolled sift routines below instead of container/heap: the
// standard interface forces every Push and Pop through an interface{}
// box, which allocates one event-sized heap object per scheduled
// event. In service mode the engine is a steady-state hot loop that
// schedules and dispatches events forever, so the heap operates
// in-place on the backing array — once the array has grown to the
// session's high-water mark, scheduling is allocation-free
// (DESIGN.md §15; BenchmarkEngineSteadyState guards this).
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends ev and restores the heap order (sift-up).
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event (sift-down). The vacated
// slot's callback is cleared so the backing array does not pin the
// closure (and whatever it captures) until the slot is overwritten.
func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	ev := q[0]
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	*h = q
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && q.less(right, left) {
			child = right
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; the platform drives it from one goroutine and
// parallelizes only *inside* kernel callbacks (which execute at a fixed
// virtual instant and therefore cannot perturb the schedule).
type Engine struct {
	now    Time
	heap   eventHeap
	seq    uint64
	nsteps uint64
}

// NewEngine returns an engine with the virtual clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been dispatched so far; useful for
// tests and for detecting runaway simulations.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Pending reports the number of scheduled-but-undelivered events.
func (e *Engine) Pending() int { return len(e.heap) }

// Quiescent reports whether no events remain — the epoch boundary of a
// long-running session: an engine driven by a persistent server is
// quiescent between ingest batches, not finished (DESIGN.md §15).
func (e *Engine) Quiescent() bool { return len(e.heap) == 0 }

// NextAt reports the timestamp of the earliest pending event; ok is
// false when the engine is quiescent.
func (e *Engine) NextAt() (at Time, ok bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// At schedules fn to run at the given virtual time. Scheduling in the
// past is a programming error in the platform layers and panics, since
// a causality violation would silently corrupt every measurement.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.heap.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Step dispatches the single earliest pending event, advancing the
// clock to its timestamp. It reports whether an event was dispatched.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.heap.pop()
	e.now = ev.at
	e.nsteps++
	ev.fn()
	return true
}

// Run dispatches events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// StepUntil dispatches every event scheduled at or before t (including
// events those dispatches schedule inside the window) and then advances
// the clock to t, reporting how many events ran. A t at or before the
// current time dispatches nothing and leaves the clock alone. This is
// the incremental session form of Run: a persistent server steps the
// engine epoch by epoch instead of running it to exhaustion, and the
// clock landing exactly on the boundary keeps successive epochs'
// admission instants deterministic (DESIGN.md §15).
func (e *Engine) StepUntil(t Time) int {
	if t <= e.now {
		return 0
	}
	n := 0
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
		n++
	}
	e.now = t
	return n
}

// RunUntil dispatches events until done reports true or no events
// remain; it returns the final value of done. This is what lets the
// hstreams layer implement blocking synchronization (stream sync,
// device sync) lazily: the program enqueues work imperatively and the
// simulation advances only as far as each sync point requires.
func (e *Engine) RunUntil(done func() bool) bool {
	for !done() {
		if !e.Step() {
			return done()
		}
	}
	return true
}

// Advance moves the clock forward by d, dispatching any events that
// fall within the window. It models host-side work performed between
// device synchronization points (e.g. Kmeans' centroid recomputation on
// the CPU): device-side events scheduled inside the window still fire
// at their proper times, because host work does not block the DMA
// engine or the coprocessor.
func (e *Engine) Advance(d Duration) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	deadline := e.now.Add(d)
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	e.now = deadline
}
