package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events with equal timestamps dispatch
// in scheduling order (seq), which makes the whole simulation
// deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; the platform drives it from one goroutine and
// parallelizes only *inside* kernel callbacks (which execute at a fixed
// virtual instant and therefore cannot perturb the schedule).
type Engine struct {
	now    Time
	heap   eventHeap
	seq    uint64
	nsteps uint64
}

// NewEngine returns an engine with the virtual clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been dispatched so far; useful for
// tests and for detecting runaway simulations.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Pending reports the number of scheduled-but-undelivered events.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at the given virtual time. Scheduling in the
// past is a programming error in the platform layers and panics, since
// a causality violation would silently corrupt every measurement.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.heap, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Step dispatches the single earliest pending event, advancing the
// clock to its timestamp. It reports whether an event was dispatched.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.at
	e.nsteps++
	ev.fn()
	return true
}

// Run dispatches events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events until done reports true or no events
// remain; it returns the final value of done. This is what lets the
// hstreams layer implement blocking synchronization (stream sync,
// device sync) lazily: the program enqueues work imperatively and the
// simulation advances only as far as each sync point requires.
func (e *Engine) RunUntil(done func() bool) bool {
	for !done() {
		if !e.Step() {
			return done()
		}
	}
	return true
}

// Advance moves the clock forward by d, dispatching any events that
// fall within the window. It models host-side work performed between
// device synchronization points (e.g. Kmeans' centroid recomputation on
// the CPU): device-side events scheduled inside the window still fire
// at their proper times, because host work does not block the DMA
// engine or the coprocessor.
func (e *Engine) Advance(d Duration) {
	if d < 0 {
		panic("sim: negative Advance")
	}
	deadline := e.now.Add(d)
	for len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	e.now = deadline
}
