// Package sim implements the deterministic discrete-event simulation
// kernel that underlies the reproduced MIC platform.
//
// All performance results in this repository are expressed in virtual
// time produced by this engine, which makes every experiment exactly
// reproducible on any machine. The engine is intentionally small: a
// virtual clock, an ordered event heap, and exclusive FIFO "servers"
// that model contended hardware resources (a PCIe DMA engine, a core
// partition). Higher layers (internal/pcie, internal/device,
// internal/hstreams) compose these primitives into the full platform.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of
// the simulation. Virtual time has no relation to wall-clock time; it
// only advances when the engine dispatches events.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration but lives in the simulated clock domain so that the two
// cannot be mixed accidentally.
type Duration int64

// Convenient duration units, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Milliseconds returns the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1e6 }

// Add returns the time shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time with an adaptive unit, e.g. "12.5ms".
func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Milliseconds returns the duration as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e6 }

// Microseconds returns the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / 1e3 }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fµs", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.4fs", d.Seconds())
	}
}

// DurationOf converts a floating-point number of seconds into a
// Duration, rounding to the nearest nanosecond. Negative inputs are
// clamped to zero: the model never produces negative costs, and
// clamping keeps calibration arithmetic robust against tiny negative
// round-off.
func DurationOf(seconds float64) Duration {
	if seconds <= 0 {
		return 0
	}
	return Duration(seconds*1e9 + 0.5)
}
