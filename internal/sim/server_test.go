package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestServerServesIdleRequestImmediately(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "link")
	start, end := s.Reserve(100, 50, nil)
	if start != 100 || end != 150 {
		t.Fatalf("reservation = [%v,%v], want [100,150]", start, end)
	}
}

func TestServerSerializesBackToBackRequests(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "link")
	_, end1 := s.Reserve(0, 100, nil)
	start2, end2 := s.Reserve(0, 100, nil)
	if start2 != end1 {
		t.Fatalf("second reservation starts at %v, want %v", start2, end1)
	}
	if end2 != 200 {
		t.Fatalf("second reservation ends at %v, want 200", end2)
	}
}

func TestServerIdleGapWhenRequestArrivesLate(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "link")
	s.Reserve(0, 10, nil)
	start, _ := s.Reserve(100, 10, nil)
	if start != 100 {
		t.Fatalf("late request start = %v, want 100 (server should sit idle)", start)
	}
}

func TestServerCompletionCallbackFiresAtEnd(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "link")
	var at Time = -1
	s.Reserve(5, 20, func(start, end Time) {
		at = e.Now()
		if start != 5 || end != 25 {
			t.Errorf("callback bounds = [%v,%v], want [5,25]", start, end)
		}
	})
	e.Run()
	if at != 25 {
		t.Fatalf("callback fired at %v, want 25", at)
	}
}

func TestServerZeroDurationReservation(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "link")
	start, end := s.Reserve(10, 0, nil)
	if start != 10 || end != 10 {
		t.Fatalf("zero reservation = [%v,%v], want [10,10]", start, end)
	}
	// Negative durations clamp to zero.
	start, end = s.Reserve(10, -5, nil)
	if start != end {
		t.Fatalf("negative-duration reservation has nonzero span [%v,%v]", start, end)
	}
}

func TestServerAccounting(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "link")
	s.Reserve(0, 30, nil)
	s.Reserve(0, 70, nil)
	if s.Busy() != 100 {
		t.Fatalf("busy = %v, want 100", s.Busy())
	}
	if s.Reservations() != 2 {
		t.Fatalf("reservations = %d, want 2", s.Reservations())
	}
	if got := s.Utilization(200); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	if got := s.Utilization(0); got != 0 {
		t.Fatalf("utilization at t=0 = %v, want 0", got)
	}
	if s.Name() != "link" {
		t.Fatalf("name = %q", s.Name())
	}
}

// Property: no two reservations on one server ever overlap, the server
// never runs before a request is ready, and total busy time equals the
// sum of requested durations.
func TestPropertyServerReservationsNeverOverlap(t *testing.T) {
	type req struct {
		Ready uint16
		Dur   uint16
	}
	f := func(reqs []req) bool {
		e := NewEngine()
		s := NewServer(e, "r")
		var prevEnd Time
		var total Duration
		for _, r := range reqs {
			start, end := s.Reserve(Time(r.Ready), Duration(r.Dur), nil)
			if start < prevEnd {
				return false // overlap with previous reservation
			}
			if start < Time(r.Ready) {
				return false // started before ready
			}
			if end.Sub(start) != Duration(r.Dur) {
				return false
			}
			prevEnd = end
			total += Duration(r.Dur)
		}
		return s.Busy() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a server's makespan is at least its busy time (work
// conservation) and at least the last ready time.
func TestPropertyServerMakespanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		e := NewEngine()
		s := NewServer(e, "r")
		var busy Duration
		var lastEnd Time
		n := 1 + rng.Intn(50)
		for i := 0; i < n; i++ {
			d := Duration(rng.Intn(1000))
			_, end := s.Reserve(Time(rng.Intn(1000)), d, nil)
			busy += d
			lastEnd = end
		}
		if Duration(lastEnd) < busy {
			t.Fatalf("makespan %v < busy %v: resource over-committed", lastEnd, busy)
		}
	}
}
