package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine pending = %d, want 0", e.Pending())
	}
}

func TestEventsDispatchInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events dispatched out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("dispatched %d events, want 5", len(got))
	}
	if e.Now() != 50 {
		t.Fatalf("clock after run = %v, want 50", e.Now())
	}
}

func TestEqualTimestampsDispatchInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken dispatch order = %v, want 0..9 in order", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling before now did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestAfterNegativeDurationClampsToNow(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		e.After(-5, func() {})
	})
	e.Run() // must not panic
	if e.Now() != 10 {
		t.Fatalf("clock = %v, want 10", e.Now())
	}
}

func TestEventsCanScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(7, recurse)
		}
	}
	e.At(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if want := Time(99 * 7); e.Now() != want {
		t.Fatalf("clock = %v, want %v", e.Now(), want)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i*10), func() { fired++ })
	}
	ok := e.RunUntil(func() bool { return fired >= 3 })
	if !ok {
		t.Fatal("RunUntil reported failure with satisfiable predicate")
	}
	if fired != 3 {
		t.Fatalf("fired = %d, want exactly 3", fired)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
	// The rest of the schedule must still be intact.
	e.Run()
	if fired != 10 {
		t.Fatalf("after full run fired = %d, want 10", fired)
	}
}

func TestRunUntilUnsatisfiablePredicateDrainsAndReportsFalse(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	if e.RunUntil(func() bool { return false }) {
		t.Fatal("RunUntil reported true for unsatisfiable predicate")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0 after drain", e.Pending())
	}
}

func TestAdvanceDispatchesWindowedEventsAndMovesClock(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.Advance(20)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [5 15]", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want 20", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("event at 25 lost after Advance")
	}
}

func TestAdvanceZeroIsNoop(t *testing.T) {
	e := NewEngine()
	e.Advance(0)
	if e.Now() != 0 {
		t.Fatalf("clock = %v, want 0", e.Now())
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	e.Advance(-1)
}

// Property: for any batch of events with arbitrary timestamps, dispatch
// order is a stable sort by timestamp.
func TestPropertyDispatchIsStableSortByTime(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, r := range raw {
			i, at := i, Time(r)
			e.At(at, func() { got = append(got, rec{at, i}) })
		}
		e.Run()
		if len(got) != len(raw) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false // unstable tie-break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock never goes backwards across any interleaving of
// Step and Advance operations.
func TestPropertyClockMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		for i := 0; i < 100; i++ {
			e.At(Time(rng.Intn(10000)), func() {})
		}
		last := e.Now()
		for i := 0; i < 200; i++ {
			if rng.Intn(2) == 0 {
				e.Step()
			} else {
				e.Advance(Duration(rng.Intn(50)))
			}
			if e.Now() < last {
				t.Fatalf("clock went backwards: %v -> %v", last, e.Now())
			}
			last = e.Now()
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{1500, "1.50µs"},
		{2500000, "2.500ms"},
		{3 * Second, "3.0000s"},
		{-1500, "-1.50µs"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationOf(t *testing.T) {
	if got := DurationOf(1.5e-3); got != 1500*Microsecond {
		t.Fatalf("DurationOf(1.5ms) = %v", got)
	}
	if got := DurationOf(-1); got != 0 {
		t.Fatalf("DurationOf(-1) = %v, want 0", got)
	}
	if got := DurationOf(0); got != 0 {
		t.Fatalf("DurationOf(0) = %v, want 0", got)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(2_500_000)
	if tm.Milliseconds() != 2.5 {
		t.Fatalf("Milliseconds = %v", tm.Milliseconds())
	}
	if tm.Add(500_000) != Time(3_000_000) {
		t.Fatalf("Add failed")
	}
	if tm.Sub(Time(500_000)) != Duration(2_000_000) {
		t.Fatalf("Sub failed")
	}
}
