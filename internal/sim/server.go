package sim

// Server models an exclusive hardware resource that serves one request
// at a time in arrival order: the PCIe DMA engine, or one core
// partition of the coprocessor. Requests arriving while the server is
// busy queue up implicitly: a reservation starts at the later of its
// ready time and the end of the previous reservation.
//
// Because the platform layers always call Reserve at the virtual
// instant a request becomes ready (from inside an event callback),
// FIFO-by-call-order equals FIFO-by-ready-time and the schedule is a
// deterministic list schedule.
type Server struct {
	eng  *Engine
	name string

	free  Time     // end of the last reservation
	busy  Duration // total reserved time (for utilization)
	count int      // number of reservations
}

// NewServer returns an idle server bound to the engine.
func NewServer(eng *Engine, name string) *Server {
	return &Server{eng: eng, name: name}
}

// Name reports the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Reserve books the server exclusively for dur starting no earlier than
// ready, returning the scheduled start and end times. If done is
// non-nil it is invoked at the end time with the reservation bounds.
// A zero-length reservation is legal and completes at its start time.
func (s *Server) Reserve(ready Time, dur Duration, done func(start, end Time)) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	start = ready
	if s.free > start {
		start = s.free
	}
	end = start.Add(dur)
	s.free = end
	s.busy += dur
	s.count++
	if done != nil {
		s.eng.At(end, func() { done(start, end) })
	}
	return start, end
}

// FreeAt reports the earliest time a new reservation could start.
func (s *Server) FreeAt() Time { return s.free }

// Busy reports the cumulative reserved time.
func (s *Server) Busy() Duration { return s.busy }

// Reservations reports how many reservations have been made.
func (s *Server) Reservations() int { return s.count }

// Utilization reports busy time as a fraction of the window [0, at].
func (s *Server) Utilization(at Time) float64 {
	if at <= 0 {
		return 0
	}
	return s.busy.Seconds() / at.Seconds()
}
