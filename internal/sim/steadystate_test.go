package sim

import (
	"testing"
)

func TestQuiescentAndNextAt(t *testing.T) {
	e := NewEngine()
	if !e.Quiescent() {
		t.Fatal("new engine is not quiescent")
	}
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt reported an event on a quiescent engine")
	}
	e.At(40, func() {})
	e.At(10, func() {})
	if e.Quiescent() {
		t.Fatal("engine with pending events reported quiescent")
	}
	if at, ok := e.NextAt(); !ok || at != 10 {
		t.Fatalf("NextAt = (%v, %v), want (10, true)", at, ok)
	}
	e.Run()
	if !e.Quiescent() {
		t.Fatal("engine not quiescent after Run")
	}
}

func TestStepUntilDispatchesWindowAndLandsOnBoundary(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	if n := e.StepUntil(20); n != 2 {
		t.Fatalf("StepUntil(20) dispatched %d events, want 2", n)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want the boundary 20", e.Now())
	}
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [5 15]", fired)
	}
	// A boundary at or before now is a no-op, not a clock rewind.
	if n := e.StepUntil(20); n != 0 {
		t.Fatalf("StepUntil(now) dispatched %d events, want 0", n)
	}
	if n := e.StepUntil(10); n != 0 || e.Now() != 20 {
		t.Fatalf("StepUntil(past) = %d, clock %v; want 0, 20", n, e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatal("event at 25 lost after StepUntil")
	}
}

func TestStepUntilDispatchesCascadesInsideWindow(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 10 {
			e.After(1, recurse)
		}
	}
	e.At(0, recurse)
	if n := e.StepUntil(5); n != 6 {
		t.Fatalf("StepUntil(5) dispatched %d events, want 6 (t=0..5)", n)
	}
	if depth != 6 {
		t.Fatalf("depth = %d, want 6", depth)
	}
}

// The steady-state scheduling path must be allocation-free: once the
// heap's backing array has grown to the loop's high-water mark,
// At+Step cycles reuse it. This is the alloc guard behind the service
// mode's hot loop (DESIGN.md §15); the telemetry recorder's disabled
// path has the same style of guard.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	// Pre-allocate the closure once; the engine must not add to it.
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 1<<20 {
			e.After(3, tick)
		}
	}
	e.At(0, tick)
	e.Step() // warm the heap's backing array
	allocs := testing.AllocsPerRun(10000, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocated %.1f objects/event, want 0", allocs)
	}
}

// BenchmarkEngineSteadyState measures the pooled event path: one
// self-rescheduling event per iteration — the exact shape of the
// service-mode hot loop, where every dispatch schedules a successor.
// The 0 allocs/op report is the perf-trajectory guard for the heap
// refactor.
func BenchmarkEngineSteadyState(b *testing.B) {
	e := NewEngine()
	var tick func()
	tick = func() { e.After(3, tick) }
	e.At(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineChurn measures schedule/dispatch pairs across a fan
// of pending events (heap depth 1024), the shape of a loaded cluster:
// many in-flight completions racing one dispatch loop.
func BenchmarkEngineChurn(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	for i := 0; i < 1024; i++ {
		e.At(Time(i), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now().Add(1024), nop)
		e.Step()
	}
}
