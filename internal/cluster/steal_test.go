package cluster

import (
	"reflect"
	"testing"

	"micstream/internal/schedtest"
	"micstream/internal/sim"
)

// stealCluster builds a 2×2×2 cluster with stealing enabled.
func stealCluster(t *testing.T, cfg ScenarioConfig, opts ...Option) *Result {
	t.Helper()
	ctx := newCtx(t, 2, 2, 2)
	jobs, err := BuildScenario(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, append([]Option{WithPlacement(Predicted()), WithStealing(0)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// strandedMix is the Fig. 11-shaped scenario where eager commitment
// visibly strands work: every job's inputs live on device 0, staging
// is expensive, and a deep committed queue freezes placement mistakes
// until drain-instant re-binding undoes them.
func strandedMix(seed uint64) ScenarioConfig {
	return ScenarioConfig{
		Seed:             seed,
		Arrival:          "bursty",
		SizeSpread:       4,
		AffinityFraction: 1,
		Origins:          []int{0},
		XferBytes:        8 << 20,
		WindowNs:         10_000_000,
	}
}

func TestStealRechargesStagingOnNewTarget(t *testing.T) {
	// Three device-0-resident jobs pinned to device 0, one stream per
	// device: j0 dispatches, j1 and j2 commit. At j0's drain the idle
	// device 1 steals j2 — its predicted win (skipping j1's long wait)
	// beats the staging re-charge — and must pay the staged transfer
	// on device 1's link. j1's gain is negative (staging with nothing
	// to skip), so it must stay home unstaged.
	ctx := newCtx(t, 2, 1, 1)
	mk := func(id int, flops float64) Job {
		j := syntheticJob(id, "t", 0, flops)
		j.Origin = 0
		j.StagingBytes = 1 << 20
		return j
	}
	c, err := New(ctx, WithPlacement(Static(0)), WithStealing(0), WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run([]Job{mk(0, 5e8), mk(1, 8e9), mk(2, 5e8)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Steals != 1 {
		t.Fatalf("got %d steals, want 1", r.Steals)
	}
	j1, j2 := r.Jobs[1], r.Jobs[2]
	if j1.Stolen || j1.Device != 0 || j1.Staged {
		t.Errorf("j1 = %+v, want unstolen and unstaged on device 0", j1)
	}
	if !j2.Stolen || j2.StolenFrom != 0 || j2.Device != 1 {
		t.Fatalf("j2 = %+v, want stolen 0→1", j2)
	}
	if !j2.Staged || j2.StagedBytes != int64(float64(1<<20)*DefaultStagingFactor) {
		t.Errorf("stolen j2 staged=%v bytes=%d, want the re-charged staging transfer", j2.Staged, j2.StagedBytes)
	}
	if j2.Origin != 0 {
		t.Errorf("j2 origin = %d, want 0", j2.Origin)
	}
}

func TestStealUnchargesStagingOnOriginReturn(t *testing.T) {
	// The inverse: device-1-resident jobs pinned off-origin to device 0
	// carry a staging charge; stealing one home to its drained origin
	// must drop the charge (the staged transfer never started).
	ctx := newCtx(t, 2, 1, 1)
	mk := func(id int, flops float64) Job {
		j := syntheticJob(id, "t", 0, flops)
		j.Origin = 1
		j.StagingBytes = 1 << 20
		return j
	}
	c, err := New(ctx, WithPlacement(Static(0)), WithStealing(0), WithQueueDepth(4))
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run([]Job{mk(0, 5e8), mk(1, 8e9), mk(2, 5e8)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Steals < 1 {
		t.Fatal("expected at least one steal back to the origin")
	}
	stolen := 0
	for _, o := range r.Jobs {
		if !o.Stolen {
			continue
		}
		stolen++
		if o.Device != 1 || o.StolenFrom != 0 {
			t.Errorf("job %d stolen %d→%d, want 0→1 (home)", o.ID, o.StolenFrom, o.Device)
		}
		if o.Staged {
			t.Errorf("job %d stolen home still carries a staging charge", o.ID)
		}
	}
	if stolen == 0 {
		t.Fatal("no stolen outcome recorded despite Steals > 0")
	}
}

func TestStealingThresholdGates(t *testing.T) {
	// An absurdly high threshold must disable every steal; the runs
	// must then match plain predicted placement bit for bit.
	cfg := strandedMix(2016)
	low := stealCluster(t, cfg, WithQueueDepth(16))
	high := stealCluster(t, cfg, WithQueueDepth(16), WithStealing(sim.Duration(1e15)))
	ctx := newCtx(t, 2, 2, 2)
	jobs, err := BuildScenario(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, WithPlacement(Predicted()), WithQueueDepth(16))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if low.Steals == 0 {
		t.Error("zero threshold should steal on the stranded mix")
	}
	if high.Steals != 0 {
		t.Errorf("threshold 1e15ns still stole %d jobs", high.Steals)
	}
	if high.Makespan != plain.Makespan {
		t.Errorf("gated stealing makespan %v != plain predicted %v", high.Makespan, plain.Makespan)
	}
	if _, err := New(ctx, WithStealing(-1)); err == nil {
		t.Error("negative steal threshold should be rejected")
	}
}

func TestStealingNoJobLostOrDuplicated(t *testing.T) {
	for _, cfg := range []ScenarioConfig{imbalanced(42), strandedMix(42)} {
		cfg.Jobs = 60
		r := stealCluster(t, cfg, WithQueueDepth(16))
		seen := map[int]bool{}
		for _, o := range r.Jobs {
			if seen[o.Index] {
				t.Fatalf("job index %d appears twice", o.Index)
			}
			seen[o.Index] = true
			if o.Failed {
				t.Fatalf("job %d failed in a healthy run", o.ID)
			}
			if o.Done < o.Start || o.Start < o.Placed || o.Placed < o.Arrival {
				t.Fatalf("job %d has inverted lifecycle %v/%v/%v/%v",
					o.ID, o.Arrival, o.Placed, o.Start, o.Done)
			}
			if o.Stolen && o.StolenFrom == o.Device {
				t.Fatalf("job %d stolen from its own final device %d", o.ID, o.Device)
			}
			if !o.Stolen && o.StolenFrom != -1 {
				t.Fatalf("unstolen job %d has StolenFrom %d", o.ID, o.StolenFrom)
			}
		}
		if len(seen) != 60 {
			t.Fatalf("%d unique jobs completed, want 60", len(seen))
		}
	}
}

func TestStealingBitIdenticalRepeats(t *testing.T) {
	a := stealCluster(t, strandedMix(7), WithQueueDepth(16))
	b := stealCluster(t, strandedMix(7), WithQueueDepth(16))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated stealing runs differ")
	}
	if a.Steals == 0 {
		t.Fatal("determinism check exercised zero steals")
	}
	c := stealCluster(t, strandedMix(8), WithQueueDepth(16))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestStealingWorkConserving(t *testing.T) {
	for _, seed := range []uint64{5, 11, 23} {
		cfg := imbalanced(seed)
		cfg.Jobs = 64
		r := stealCluster(t, cfg)
		schedtest.WorkConserving(t, "predicted+steal", clusterSpans(r), []int{0, 1, 2, 3, 4, 5, 6, 7})
	}
}

// TestStealingNeverLosesOnImbalancedMixes asserts the steal decision's
// safety contract on the placement study's imbalanced mixes: enabling
// stealing never worsens the makespan predicted-only placement
// achieves, across mixes and seeds.
func TestStealingNeverLosesOnImbalancedMixes(t *testing.T) {
	mixes := []struct {
		name             string
		spread, affinity float64
		xfer             int64
		windowNs         int64
	}{
		{"mild", 4, 0.25, 2 << 20, 15_000_000},
		{"moderate", 8, 0.5, 4 << 20, 10_000_000},
		{"severe", 8, 0.7, 8 << 20, 15_000_000},
	}
	for _, mix := range mixes {
		for _, seed := range []uint64{2016, 2017, 2018, 2019, 2020} {
			cfg := ScenarioConfig{
				Seed: seed, Arrival: "bursty", SizeSpread: mix.spread,
				AffinityFraction: mix.affinity, Origins: []int{0, 1},
				XferBytes: mix.xfer, WindowNs: mix.windowNs,
			}
			ctx := newCtx(t, 2, 2, 2)
			jobs, err := BuildScenario(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			c, err := New(ctx, WithPlacement(Predicted()), WithQueueDepth(8))
			if err != nil {
				t.Fatal(err)
			}
			pred, err := c.Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			st := stealCluster(t, cfg, WithQueueDepth(8))
			if st.Makespan > pred.Makespan {
				t.Errorf("%s seed %d: stealing makespan %v worse than predicted-only %v",
					mix.name, seed, st.Makespan, pred.Makespan)
			}
		}
	}
}

// TestStealingRecoversStrandedWork asserts the headline win: on the
// stranded mix (deep committed queues, all inputs on device 0),
// drain-instant re-binding recovers a large share of the makespan
// eager commitment wastes.
func TestStealingRecoversStrandedWork(t *testing.T) {
	for _, seed := range []uint64{2016, 2017, 2018} {
		cfg := strandedMix(seed)
		ctx := newCtx(t, 2, 2, 2)
		jobs, err := BuildScenario(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(ctx, WithPlacement(Predicted()), WithQueueDepth(16))
		if err != nil {
			t.Fatal(err)
		}
		pred, err := c.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		st := stealCluster(t, cfg, WithQueueDepth(16))
		if st.Steals == 0 {
			t.Fatalf("seed %d: no steals on the stranded mix", seed)
		}
		if float64(st.Makespan) > 0.9*float64(pred.Makespan) {
			t.Errorf("seed %d: stealing makespan %v should beat predicted-only %v by ≥10%%",
				seed, st.Makespan, pred.Makespan)
		}
	}
}

func TestStealRespectsStagingFactor(t *testing.T) {
	// The steal decision must price staging at the cluster's configured
	// factor, not the model's default 2×: with an enormous factor the
	// re-charge dwarfs any queueing win, so nothing may steal and the
	// schedule must match the no-stealing run exactly.
	run := func(steal bool) *Result {
		ctx := newCtx(t, 2, 1, 1)
		mk := func(id int, flops float64) Job {
			j := syntheticJob(id, "t", 0, flops)
			j.Origin = 0
			j.StagingBytes = 1 << 20
			return j
		}
		opts := []Option{WithPlacement(Static(0)), WithStagingFactor(400), WithQueueDepth(4)}
		if steal {
			opts = append(opts, WithStealing(0))
		}
		c, err := New(ctx, opts...)
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Run([]Job{mk(0, 5e8), mk(1, 8e9), mk(2, 5e8)})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain, stealing := run(false), run(true)
	if stealing.Steals != 0 {
		t.Fatalf("factor-400 staging still stole %d jobs", stealing.Steals)
	}
	if stealing.Makespan != plain.Makespan {
		t.Errorf("stealing makespan %v differs from plain %v despite zero steals",
			stealing.Makespan, plain.Makespan)
	}
}

func TestStealingOverridesPinnedBacklog(t *testing.T) {
	// A deferring (pinning) policy keeps the cluster queue non-empty
	// while the other device idles — the one regime late binding does
	// not cover. With stealing enabled the idle device must still
	// re-bind the pinned committed backlog (host-resident jobs move
	// free), instead of letting device 1 sit idle for the whole run.
	run := func(steal bool) *Result {
		ctx := newCtx(t, 2, 1, 1)
		opts := []Option{WithPlacement(Static(0)), WithQueueDepth(2)}
		if steal {
			opts = append(opts, WithStealing(0))
		}
		c, err := New(ctx, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var jobs []Job
		for i := 0; i < 12; i++ {
			jobs = append(jobs, syntheticJob(i, "t", 0, 2e9))
		}
		r, err := c.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain, stealing := run(false), run(true)
	if stealing.Steals == 0 {
		t.Fatal("stealing should re-bind jobs pinned behind a deferring policy")
	}
	if stealing.Device(1).Jobs == 0 {
		t.Fatal("the idle device never ran a stolen job")
	}
	if float64(stealing.Makespan) > 0.75*float64(plain.Makespan) {
		t.Errorf("stealing makespan %v should substantially beat the pinned %v",
			stealing.Makespan, plain.Makespan)
	}
}
