package cluster

import (
	"micstream/internal/sim"
	"micstream/internal/telemetry"
)

// Work stealing re-binds committed-but-undispatched jobs at drain
// instants (DESIGN.md §10). Placement commits a job to a device when it
// is admitted; under an imbalanced mix one device can drain while
// another still holds a deep committed queue — the Fig. 11 shape where
// multi-MIC scaling is lost. With WithStealing enabled, every drain
// instant runs a steal pass: an idle device scans the deepest-backlog
// device for a queued job whose predicted completion improves by
// moving, re-charges the Fig. 11 staging term against the new link
// (and un-charges the old one — the withdrawn job never started its
// staged transfer), withdraws it and re-routes it.
//
// With WithSlicing also enabled, the candidate set extends to
// *dispatched* jobs: a partially-run job's undispatched remainder,
// re-queued at a slice boundary, is in the victim's pending queue like
// any never-started job and may migrate mid-job (DESIGN.md §13). A
// remainder's move is priced at its *remaining* service plus the
// staging residual for only the tiles its remaining tasks still need;
// on migration the victim keeps the tiles the completed slices
// consumed (their transfer really ran) while the remainder's unused
// tiles roll back region-scoped, and the migration is logged as a
// Preempt event and counted in Result.Preempts.
//
// Determinism: steal passes run only at drain instants (job-completion
// events), scan thieves in ascending device order, pick the strictly
// deepest victim backlog (ties keep the lowest device index), and pick
// the strictly largest predicted gain (ties keep the earliest queued
// job) — the same tie-break discipline as the rest of the scheduler,
// so runs stay bit-identical across repeats (DESIGN.md §6).

// trySteals runs steal passes until no idle device can improve any
// committed job by re-binding it. Under the work-conserving built-in
// policies a non-empty cluster queue implies no idle stream anywhere,
// so no thief exists and the pass is a cheap no-op; under a deferring
// (pinning) policy idle devices and a backed-up queue can coexist,
// and stealing deliberately overrides the pin — enabling WithStealing
// opts the cluster into re-binding. Each successful pass re-runs the
// dispatch loop: a withdraw frees committed capacity the cluster
// queue may late-bind into.
func (c *Cluster) trySteals() {
	if !c.stealing || c.runErr != nil {
		return
	}
	for moved := true; moved && c.runErr == nil; {
		moved = false
		for thief, s := range c.scheds {
			if s.InFlight() >= s.NumStreams() {
				continue
			}
			if c.stealInto(thief) {
				moved = true
			}
		}
		if moved {
			c.dispatch()
		}
	}
}

// stealInto attempts one steal for an idle thief device: choose the
// victim with the deepest committed backlog above the threshold, then
// the queued job with the largest predicted win from moving now rather
// than waiting out the victim's queue. Returns whether a job moved.
func (c *Cluster) stealInto(thief int) bool {
	victim := -1
	var victimBacklog sim.Duration
	for d, s := range c.scheds {
		if d == thief {
			continue
		}
		if b := s.PendingBacklog(); b > c.stealThreshold && b > victimBacklog {
			victim, victimBacklog = d, b
		}
	}
	if victim < 0 {
		return false
	}

	now := c.ctx.Now()
	ready := c.scheds[victim].EarliestFree()
	if ready < now {
		ready = now
	}
	streams := sim.Duration(c.scheds[victim].NumStreams())
	best := -1
	var bestGain sim.Duration
	var bestNext int
	var bestEst sim.Duration
	var ahead sim.Duration
	for _, pv := range c.scheds[victim].PendingJobs() {
		idx := c.submitted[victim][pv.Index]
		if idx < 0 {
			continue
		}
		q := c.admitted[idx]
		// Predicted completion if the job waits out the queue ahead of
		// it on the victim: next drain, the backlog spread over the
		// victim's streams, then its own service (pv.Est already
		// includes any staging charged at the original commitment, and
		// for a mid-job remainder covers only the remaining tasks).
		stay := ready.Add(ahead / streams).Add(pv.Est)
		var move sim.Time
		if pv.Next > 0 {
			// A mid-job remainder (WithSlicing): moving re-runs only the
			// remaining tasks — pv.Est, re-estimated at the slice
			// boundary — plus the staging residual for only the tiles
			// those tasks still need on the thief.
			move = now.Add(pv.Est).Add(c.stealRemainderStagingEst(q, pv.Next, thief))
		} else {
			// Predicted completion if it moves now: service from scratch
			// plus the staging re-charge against the thief's link —
			// residency-adjusted, so a thief already holding the job's
			// tiles prices the move without the redundant transfer.
			move = now.Add(q.Est).Add(c.stealStagingEst(q, thief))
		}
		ahead += pv.Est
		// Only strictly positive predicted gains steal. A zero gain is
		// almost always the estimate clamp of an overrunning in-flight
		// job (EarliestFree floors at now) — a coin flip in reality,
		// because the move estimate cannot see the partition and link
		// contention the stolen job adds on the thief.
		if gain := stay.Sub(move); gain > 0 && (best < 0 || gain > bestGain) {
			best, bestGain, bestNext, bestEst = idx, gain, pv.Next, pv.Est
		}
	}
	if best < 0 {
		return false
	}

	q := c.admitted[best]
	if _, ok := c.scheds[victim].Withdraw(q.devIdx); !ok {
		// Cannot happen: the job was listed as pending this instant.
		return false
	}
	c.submitted[victim][q.devIdx] = -1
	o := &c.outcomes[q.idx]
	if bestNext > 0 {
		c.preemptRemainder(q, victim, thief, bestNext, bestEst, bestGain)
		return c.runErr == nil
	}
	// The withdrawn job's staged transfer never ran on the victim's
	// link; un-charge what this commitment added from the per-device
	// staging metric and the outcome (route() below re-charges against
	// the thief; for a never-migrated job this zeroes the fields route
	// resets anyway, for a re-stolen remainder it keeps the earlier
	// devices' real charges).
	c.telStaged[victim] -= q.stagedBytes
	o.StagedBytes -= q.stagedBytes
	o.StagingEst -= q.stagingEst
	o.HitBytes -= q.hitBytes
	o.MissBytes -= q.missBytes
	c.telHit -= q.hitBytes
	c.telMiss -= q.missBytes
	o.Staged = o.StagedBytes > 0
	if c.resident != nil {
		// The withdrawn job's staged transfer never ran: roll back the
		// tiles its commitment installed on the victim (tiles a later
		// job refreshed since stay — that job's pricing relied on
		// them). route() below re-commits against the thief.
		c.resident.Rollback(q.rcpt)
	}
	o.Stolen = true
	o.StolenFrom = q.dev
	c.steals++
	if c.tel.Enabled() {
		c.tel.Emit(telemetry.Event{At: now, Kind: telemetry.Steal,
			Job: q.idx, ID: q.Job.ID, Tenant: tenantOf(q.Job),
			Device: thief, From: q.dev, Stream: -1, Dur: bestGain})
	}
	c.route(q, thief)
	return c.runErr == nil
}

// preemptRemainder migrates a partially-run job's undispatched
// remainder from victim to thief — the mid-job steal (DESIGN.md §13).
// The remainder was already withdrawn from the victim's pending queue;
// pvNext is its first undispatched task index in the victim's
// *submitted* task list (which leads with a stage task when the last
// commitment staged), remEst the sched-re-estimated remaining service.
// Unlike a pre-dispatch steal nothing is un-charged: the victim's
// staged transfer really ran, so its link traffic and the consumed
// tiles stay; only the remainder's still-needed tiles roll back,
// region-scoped, and route() re-prices exactly those against the
// thief.
func (c *Cluster) preemptRemainder(q *Queued, victim, thief, pvNext int, remEst, gain sim.Duration) {
	now := c.ctx.Now()
	o := &c.outcomes[q.idx]
	origNext := q.next + pvNext
	if q.staged {
		origNext-- // the stage task held slot 0 of the submitted list
	}
	reads, demand := remainderNeeds(q.Job, origNext)
	if c.resident != nil {
		c.resident.RollbackRegions(q.rcpt, reads)
	}
	// Capture the victim's realized lifecycle before the slot goes
	// stale: the job's dispatch instant is its first slice's, wherever
	// that ran, and its slice count spans every device.
	vo := c.scheds[victim].Outcomes()[q.devIdx]
	if o.Slices == 0 {
		o.Start = vo.Start
	}
	o.Slices += vo.Slices
	o.Stolen = true
	o.StolenFrom = victim
	o.Migrations = append(o.Migrations, Migration{From: victim, To: thief, At: now, NextTask: origNext})
	q.next = origNext
	q.reads = reads
	q.demand = demand
	q.Est = remEst
	c.preempts++
	if c.tel.Enabled() {
		c.tel.Emit(telemetry.Event{At: now, Kind: telemetry.Preempt,
			Job: q.idx, ID: q.Job.ID, Tenant: tenantOf(q.Job),
			Device: thief, From: victim, Stream: -1, Dur: gain})
	}
	c.route(q, thief)
}

// stealStagingEst prices the staging a steal would re-charge, through
// the shared stagingPrice path (model.StagingOnly evaluated by
// PredictCluster), so the estimate carries the same calibrated link
// scales and shared-host contention as every other Fig. 11 staging
// prediction. The price is re-consulted against the residency cache
// at the steal instant: a thief already holding some of the job's
// tiles pays only the cold-miss remainder, and a thief holding all of
// them moves the job for free — the same discount an origin return
// gets. Zero when the job would land on its origin or carries no
// device-resident data.
func (c *Cluster) stealStagingEst(q *Queued, dev int) sim.Duration {
	job := q.Job
	if job.Origin < 0 || job.Origin == dev || q.demand <= 0 {
		return 0
	}
	bytes := q.demand
	if c.resident != nil && len(q.reads) > 0 {
		_, bytes = c.resident.Lookup(dev, q.reads)
	}
	return c.stagingPrice(c.stealModel, bytes)
}

// stealRemainderStagingEst prices the staging a mid-job migration
// would charge: the residual demand of only the tiles the remainder's
// remaining tasks still need, looked up read-only against the thief.
// pvNext indexes the victim's submitted task list (stage task
// included when the commitment staged).
func (c *Cluster) stealRemainderStagingEst(q *Queued, pvNext, thief int) sim.Duration {
	job := q.Job
	if job.Origin < 0 || job.Origin == thief {
		return 0
	}
	origNext := q.next + pvNext
	if q.staged {
		origNext--
	}
	reads, demand := remainderNeeds(job, origNext)
	if demand <= 0 {
		return 0
	}
	bytes := demand
	if c.resident != nil && len(reads) > 0 {
		_, bytes = c.resident.Lookup(thief, reads)
	}
	return c.stagingPrice(c.stealModel, bytes)
}
