package cluster

import (
	"reflect"
	"strings"
	"testing"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/sched"
	"micstream/internal/schedtest"
	"micstream/internal/sim"
	"micstream/internal/telemetry"
)

// slicedJob builds an n-task host-resident compute job, the shape the
// slicing scheduler cuts at task boundaries.
func slicedJob(id int, tenant string, arrival sim.Time, n int, flopsPerTask float64) Job {
	tasks := make([]*core.Task, n)
	for i := range tasks {
		tasks[i] = &core.Task{
			ID:         i,
			Cost:       device.KernelCost{Name: "synthetic", Flops: flopsPerTask},
			StreamHint: -1,
		}
	}
	return Job{ID: id, Tenant: tenant, Arrival: arrival, Tasks: tasks, Origin: -1}
}

// sjfDevices is the device-policy override the slicing tests use:
// FIFO would re-dispatch a re-queued remainder immediately (it keeps
// the oldest admission sequence), so slice boundaries only matter
// under a size- or share-aware device policy.
func sjfDevices() Option {
	return WithDevicePolicy(func() sched.Policy { return sched.SJF() })
}

func TestSlicingOptionValidation(t *testing.T) {
	ctx := newCtx(t, 2, 1, 1)
	if _, err := New(ctx, WithSlicing(-1)); err == nil {
		t.Error("negative slice cap accepted")
	}
	if _, err := New(ctx, WithSlicing(0)); err != nil {
		t.Errorf("cap 0 (off) rejected: %v", err)
	}
}

func TestSlicingRunRejectsUnsliceableJobs(t *testing.T) {
	ctx := newCtx(t, 2, 1, 1)
	c, err := New(ctx, WithSlicing(2))
	if err != nil {
		t.Fatal(err)
	}
	j := slicedJob(0, "t", 0, 2, 1e8)
	j.Tasks[0].DependsOn = []int{1} // forward reference
	if _, err := c.Run([]Job{j}); err == nil || !strings.Contains(err.Error(), "dependency-ordered") {
		t.Fatalf("cluster Run accepted an unsliceable job under WithSlicing: %v", err)
	}
}

// TestClusterSlicingWholeJobEquivalence asserts the compatibility
// contract at the cluster layer: a cap at least as large as every task
// list must reproduce the unsliced cluster bit for bit, stealing
// included.
func TestClusterSlicingWholeJobEquivalence(t *testing.T) {
	run := func(opts ...Option) *Result {
		cfg := strandedMix(7)
		return stealCluster(t, cfg, append([]Option{WithQueueDepth(16)}, opts...)...)
	}
	plain := run()
	wide := run(WithSlicing(64))
	if !reflect.DeepEqual(plain, wide) {
		t.Error("cap 64 (≥ every task list) diverges from the unsliced cluster")
	}
	if plain.Preempts != 0 || wide.Preempts != 0 {
		t.Errorf("whole-job dispatches counted preempts: %d/%d", plain.Preempts, wide.Preempts)
	}
}

// convoyRun is the scripted convoy the mid-job migration tests share:
// everything is pinned to device 0 (Static placement), a 6-task heavy
// job dispatches alone, and four staggered light jobs arrive inside
// its first slice. Under SJF the lights win every slice boundary, so
// the heavy remainder parks in the pending queue; the idle device 1
// first steals a light pre-dispatch, and at that light's drain instant
// migrates the heavy remainder mid-job.
func convoyRun(t *testing.T, threshold sim.Duration, rec *telemetry.Recorder) *Result {
	t.Helper()
	ctx := newCtx(t, 2, 1, 1)
	opts := []Option{
		WithPlacement(Static(0)), WithQueueDepth(8),
		WithStealing(threshold), WithSlicing(1), sjfDevices(),
	}
	if rec != nil {
		opts = append(opts, WithTelemetry(rec))
	}
	c, err := New(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	// U is the measured single-task slice estimate, so arrival offsets
	// stay inside slice boundaries whatever the calibrated model says.
	u := c.Scheduler(0).Estimate(slicedJob(0, "", 0, 1, 2e9).Tasks)
	inSlice1 := sim.Time(0).Add(u / 3)
	jobs := []Job{
		slicedJob(0, "heavy", 0, 6, 2e9),
		slicedJob(1, "light", inSlice1, 1, 2.0e8),
		slicedJob(2, "light", inSlice1, 1, 2.4e8),
		slicedJob(3, "light", inSlice1, 1, 2.8e8),
		slicedJob(4, "light", inSlice1, 1, 3.2e8),
	}
	r, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestMidJobStealMigratesRemainder is the tentpole's end-to-end
// scenario: a partially-run job's undispatched remainder, parked at a
// slice boundary behind lighter work, migrates to the drained device
// and completes there, with the migration history recording the cut.
func TestMidJobStealMigratesRemainder(t *testing.T) {
	r := convoyRun(t, 0, nil)
	if r.Preempts == 0 {
		t.Fatal("convoy produced no mid-job migration")
	}
	heavy := r.Jobs[0]
	if !heavy.Stolen || heavy.Device != 1 {
		t.Fatalf("heavy job = %+v, want migrated to device 1", heavy)
	}
	if len(heavy.Migrations) == 0 {
		t.Fatal("migrated job has no migration history")
	}
	m := heavy.Migrations[0]
	if m.From != 0 || m.To != 1 {
		t.Errorf("migration %+v, want 0→1", m)
	}
	if m.NextTask < 1 || m.NextTask >= 6 {
		t.Errorf("migration NextTask %d outside the mid-job range [1,6)", m.NextTask)
	}
	if heavy.Slices != 6 {
		t.Errorf("heavy job took %d slices across devices, want 6 (cap 1, 6 tasks)", heavy.Slices)
	}
	if heavy.Start.Sub(0) >= heavy.Migrations[0].At.Sub(0) {
		t.Errorf("migration at %v not after first dispatch %v", m.At, heavy.Start)
	}
	// The convoy relief: every light job finishes before the heavy job
	// it arrived behind.
	for _, o := range r.Jobs[1:] {
		if o.Done >= heavy.Done {
			t.Errorf("light job %d done %v after the heavy job's %v", o.ID, o.Done, heavy.Done)
		}
	}
	// Device accounting follows the migration: both devices ran slices
	// of the heavy job, but its outcome is attributed to the final
	// device.
	if r.Device(1).Jobs == 0 {
		t.Error("device 1 recorded no jobs despite the migration")
	}
}

// TestStealThresholdReadsRemainingBacklog is the cluster half of the
// backlog regression test: the steal threshold compares against the
// victim's *remaining* backlog. The convoy's heavy job has 2 tasks
// (2 slice-estimates) left when the drain instant fires; pre-fix the
// pending remainder still carried the whole 6-task estimate, so a
// threshold between the two would have stolen a mostly-consumed job.
func TestStealThresholdReadsRemainingBacklog(t *testing.T) {
	ctx := newCtx(t, 2, 1, 1)
	c, err := New(ctx, WithPlacement(Static(0)), WithQueueDepth(8),
		WithStealing(0), WithSlicing(1), sjfDevices())
	if err != nil {
		t.Fatal(err)
	}
	u := c.Scheduler(0).Estimate(slicedJob(0, "", 0, 1, 1e9).Tasks)
	at := func(f float64) sim.Time {
		return sim.Time(0).Add(sim.Duration(f * float64(u)))
	}
	build := func() []Job {
		return []Job{
			// Runs slices back-to-back until the lights arrive: tasks
			// 0-3 consume [0,4u); l0 wins the 4u boundary, parking a
			// 2-task remainder; l1 wins the next dispatch at l0's
			// drain, the instant the steal pass prices the remainder.
			slicedJob(0, "heavy", 0, 6, 1e9),
			slicedJob(1, "light", at(3.2), 1, 3e8),
			slicedJob(2, "light", at(3.9), 1, 2e8),
		}
	}
	run := func(threshold sim.Duration) *Result {
		ctx := newCtx(t, 2, 1, 1)
		c, err := New(ctx, WithPlacement(Static(0)), WithQueueDepth(8),
			WithStealing(threshold), WithSlicing(1), sjfDevices())
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Run(build())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// Control: with a zero threshold the 2-task remainder is worth
	// stealing at the drain instant.
	control := run(0)
	if control.Preempts == 0 {
		t.Fatal("control run produced no migration; the scripted drain instant no longer fires")
	}
	// A threshold of 3 slice-estimates sits between the true remaining
	// backlog (2u) and the pre-fix whole-job estimate (6u): the fixed
	// accounting must leave the nearly-done job home.
	fixed := run(3 * u)
	if fixed.Preempts != 0 || fixed.Steals != 0 {
		t.Fatalf("threshold 3u still moved work (steals %d, preempts %d): backlog counts consumed slices",
			fixed.Steals, fixed.Preempts)
	}
	if fixed.Jobs[0].Device != 0 || fixed.Jobs[0].Stolen {
		t.Errorf("heavy job left its device despite the gated threshold: %+v", fixed.Jobs[0])
	}
}

// TestSlicingTelemetryEvents checks the observability half of the
// slice protocol on the convoy: every stream grant after a job's first
// emits a Slice event, every mid-job migration a Preempt event, and
// the counts reconcile with the Result's aggregates.
func TestSlicingTelemetryEvents(t *testing.T) {
	rec := telemetry.NewRecorder()
	r := convoyRun(t, 0, rec)
	if r.Preempts == 0 {
		t.Fatal("convoy produced no mid-job migration")
	}
	if got := rec.Count(telemetry.Preempt); got != r.Preempts {
		t.Errorf("preempt events: got %d, want %d", got, r.Preempts)
	}
	if got := rec.Count(telemetry.Steal); got != r.Steals {
		t.Errorf("steal events: got %d, want %d", got, r.Steals)
	}
	var slices int
	for _, o := range r.Jobs {
		slices += o.Slices
	}
	if got := rec.Count(telemetry.Dispatch) + rec.Count(telemetry.Slice); got != slices {
		t.Errorf("dispatch+slice events: got %d, want %d (the jobs' summed slice counts)", got, slices)
	}
	if rec.Count(telemetry.Slice) == 0 {
		t.Error("no Slice events despite cap-1 slicing")
	}
	for _, e := range rec.Events() {
		if e.Kind != telemetry.Preempt {
			continue
		}
		if e.Device == e.From || e.Device < 0 || e.From < 0 {
			t.Errorf("preempt event has thief %d victim %d", e.Device, e.From)
		}
		if e.Dur <= 0 {
			t.Errorf("preempt event has non-positive predicted gain %v", e.Dur)
		}
		if len(r.Jobs[e.Job].Migrations) == 0 {
			t.Errorf("preempt event for job %d but its outcome has no migrations", e.Job)
		}
	}
}

// TestSlicingPropertyInvariants runs the scenario generator under
// slicing + stealing and asserts the cross-cutting invariants through
// the shared harness, plus the migration-history consistency rules.
func TestSlicingPropertyInvariants(t *testing.T) {
	const jobs = 48
	run := func(seed uint64) *Result {
		ctx := newCtx(t, 2, 2, 2)
		cfg := imbalanced(seed)
		cfg.TilesPerJob = 6
		built, err := BuildScenario(ctx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(ctx, WithPlacement(Predicted()), WithQueueDepth(16),
			WithStealing(0), WithSlicing(2), sjfDevices())
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Run(built)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	schedtest.BitIdentical(t, "slicing+stealing", func(seed uint64) any {
		return run(seed)
	}, 99, 100)

	preempts := 0
	for _, seed := range []uint64{5, 11, 23, 42} {
		r := run(seed)
		schedtest.UniqueCompletion(t, "slicing", clusterSpans(r), jobs, clusterMarkNames)
		preempts += r.Preempts
		migrations := 0
		for _, o := range r.Jobs {
			migrations += len(o.Migrations)
			if o.Slices < 1 {
				t.Fatalf("job %d completed with %d slices", o.ID, o.Slices)
			}
			if o.Slices < len(o.Migrations)+1 {
				t.Fatalf("job %d: %d slices across %d migrations", o.ID, o.Slices, len(o.Migrations))
			}
			if len(o.Migrations) > 0 && !o.Stolen {
				t.Fatalf("job %d migrated but is not marked stolen", o.ID)
			}
			prev := 0
			prevAt := o.Start
			for _, m := range o.Migrations {
				if m.From == m.To {
					t.Fatalf("job %d migration %+v moves nowhere", o.ID, m)
				}
				if m.NextTask <= prev {
					t.Fatalf("job %d migration NextTask %d did not advance past %d — no slice ran between migrations",
						o.ID, m.NextTask, prev)
				}
				if m.At < prevAt {
					t.Fatalf("job %d migrations go back in time (%v < %v)", o.ID, m.At, prevAt)
				}
				prev, prevAt = m.NextTask, m.At
			}
			if n := len(o.Migrations); n > 0 && o.Migrations[n-1].To != o.Device {
				// A remainder can still be stolen pre-dispatch after a
				// migration, so the final device may differ — but then
				// the job must be marked stolen from that later victim.
				if o.StolenFrom == o.Migrations[n-1].To {
					continue
				}
				if !o.Stolen {
					t.Fatalf("job %d ended on device %d, last migration went to %d, and no steal explains it",
						o.ID, o.Device, o.Migrations[n-1].To)
				}
			}
		}
		if migrations != r.Preempts {
			t.Fatalf("seed %d: outcomes record %d migrations, Result.Preempts says %d", seed, migrations, r.Preempts)
		}
	}
	if preempts == 0 {
		t.Error("no seed produced a mid-job migration; the mix no longer exercises slicing+stealing")
	}
}
