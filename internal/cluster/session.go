package cluster

import (
	"fmt"

	"micstream/internal/sim"
)

// Session is the cluster's embedded service mode: a persistent run
// that accepts batched admissions at epoch boundaries instead of one
// job slice up front, and streams each job's Outcome the instant it
// completes instead of accumulating a terminal Result.
//
// The epoch protocol (DESIGN.md §15): the engine quiescing — no
// pending events — is an epoch *boundary*, not completion. Between
// boundaries the session behaves exactly like a batch Run over the
// jobs admitted so far; at a boundary the owner may Submit another
// batch and RunEpoch again. Device schedulers, the placement policy,
// the steal model and the residency cache all stay warm across
// epochs — a repeated dataset admitted in epoch k runs against the
// tiles epoch k-1 staged, which is the whole point of a long-running
// server over repeated batch runs.
//
// Determinism survives service mode because wall-clock time never
// crosses this boundary: callers race only over *which batch* a job
// lands in (the serve layer's admission frontier), and a given batch
// sequence replays bit-identically — every admitted job's arrival is
// the virtual instant of its epoch boundary, and everything after
// admission is the same deterministic event cascade as a batch run
// (DESIGN.md §6).
//
// A Session borrows its Cluster exclusively: interleaving Run calls
// or a second session with an open session corrupts both. Close the
// session (or just abandon it) and the cluster is reusable — Run
// resets everything a session touched.
type Session struct {
	c        *Cluster
	runStart sim.Time
	total    int
	epochs   int
	running  bool
	closed   bool
}

// NewSession opens service mode on the cluster: resets the per-run
// state exactly like Run, then leaves the session open for batched
// Submit/RunEpoch cycles. onOutcome (optional) receives every job's
// terminal Outcome — completed or failed — exactly once, in virtual
// completion order, from inside the engine's event cascade; it must
// not call back into the session or the cluster.
func (c *Cluster) NewSession(onOutcome func(Outcome)) (*Session, error) {
	for _, s := range c.scheds {
		s.Reset()
	}
	if b, ok := c.place.(clusterBinder); ok {
		b.bind(c)
	}
	if r, ok := c.place.(resetter); ok {
		r.reset()
	}
	c.bindStealModel()
	c.queue = nil
	c.admitted = nil
	c.outcomes = nil
	c.notified = nil
	c.nterminal = 0
	c.onOutcome = onOutcome
	c.submitted = make([][]int, len(c.scheds))
	c.runFlops = 0
	c.done = 0
	c.steals = 0
	c.preempts = 0
	c.seq = 0
	c.runErr = nil
	if c.resident != nil {
		c.resStart = c.resident.Stats()
	}
	c.linkBusy0 = make([]sim.Duration, len(c.scheds))
	c.kernBusy0 = make([]sim.Duration, len(c.scheds))
	c.telStaged = make([]int64, len(c.scheds))
	c.telHit, c.telMiss = 0, 0
	for d := range c.scheds {
		c.linkBusy0[d] = c.ctx.Link(d).TotalBusy()
		c.kernBusy0[d] = c.kernelBusy(d)
	}
	if c.tel.Enabled() {
		c.tenantLat = make(map[string]*tenantAccum)
		c.tenantSeen = nil
	}
	return &Session{c: c, runStart: c.ctx.Engine().Now()}, nil
}

// Submit admits one batch at the current epoch boundary and returns
// the cluster index of the batch's first job (indices run densely
// across the session, so batch job i is outcome base+i). Every job's
// arrival clamps to the boundary's virtual instant — the session's
// clock, not the caller's. The batch is copied; the caller may reuse
// the slice. Several batches may stack at one boundary (each keeps
// admission order); submitting mid-epoch — from inside an onOutcome
// callback while RunEpoch is live — or after a scheduling error is
// rejected without admitting anything.
func (s *Session) Submit(jobs []Job) (base int, err error) {
	if s.closed {
		return 0, fmt.Errorf("cluster: session is closed")
	}
	if s.running {
		return 0, fmt.Errorf("cluster: session submit mid-epoch")
	}
	if s.c.runErr != nil {
		return 0, fmt.Errorf("cluster: session failed: %w", s.c.runErr)
	}
	if err := s.c.validate(jobs); err != nil {
		return 0, err
	}
	eng := s.c.ctx.Engine()
	batch := append([]Job(nil), jobs...)
	base = len(s.c.outcomes)
	s.c.outcomes = append(s.c.outcomes, make([]Outcome, len(batch))...)
	s.c.admitted = append(s.c.admitted, make([]*Queued, len(batch))...)
	s.c.notified = append(s.c.notified, make([]bool, len(batch))...)
	now := eng.Now()
	for i := range batch {
		job := &batch[i]
		for _, t := range job.Tasks {
			if !t.TransferOnly {
				s.c.runFlops += t.Cost.Flops
			}
		}
		idx := base + i
		at := job.Arrival
		if at < now {
			at = now
		}
		eng.At(at, func() { s.c.admit(job, idx) })
	}
	s.total += len(batch)
	return base, nil
}

// RunEpoch drives the engine to the next quiescent boundary, draining
// every job admitted so far (outcomes stream to the session's sink as
// they complete). It returns how many jobs reached a terminal state
// this epoch and the session's first scheduling error, if any; after
// an error the remaining outcomes have already streamed as Failed and
// the session accepts no further batches.
func (s *Session) RunEpoch() (completed int, err error) {
	if s.closed {
		return 0, fmt.Errorf("cluster: session is closed")
	}
	before := s.c.nterminal
	s.running = true
	s.c.ctx.Engine().Run()
	s.running = false
	s.epochs++
	if s.c.runErr == nil {
		for _, sc := range s.c.scheds {
			if err := sc.Err(); err != nil {
				s.c.runErr = err
				break
			}
		}
	}
	if s.c.runErr == nil && s.c.nterminal != s.total {
		s.c.runErr = fmt.Errorf("cluster: internal error: %d of %d jobs terminal at epoch boundary", s.c.nterminal, s.total)
	}
	return s.c.nterminal - before, s.c.runErr
}

// Now reports the session's virtual clock.
func (s *Session) Now() sim.Time { return s.c.ctx.Now() }

// Epochs reports how many RunEpoch calls have completed.
func (s *Session) Epochs() int { return s.epochs }

// Submitted reports the total jobs admitted across every batch.
func (s *Session) Submitted() int { return s.total }

// Terminal reports how many jobs have reached a terminal outcome.
func (s *Session) Terminal() int { return s.c.nterminal }

// Pending reports admitted jobs not yet terminal — zero at every
// epoch boundary of a healthy session.
func (s *Session) Pending() int { return s.total - s.c.nterminal }

// Err reports the session's first scheduling error, if any.
func (s *Session) Err() error { return s.c.runErr }

// Outcome returns terminal outcome idx (a Submit base plus the job's
// batch offset); ok is false while the job is still in flight.
func (s *Session) Outcome(idx int) (o Outcome, ok bool) {
	if idx < 0 || idx >= len(s.c.outcomes) || !s.c.notified[idx] {
		return Outcome{}, false
	}
	return s.c.outcomes[idx], true
}

// Result summarizes everything the session has run so far — the same
// aggregate accounting a batch Run returns, computed over all epochs.
// Valid at any epoch boundary; the session stays open.
func (s *Session) Result() *Result {
	return s.c.summarize(s.runStart)
}

// Close ends the session. The cluster is reusable afterwards (Run
// resets all session state); the session itself rejects further use.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.c.onOutcome = nil
}
