package cluster

import (
	"reflect"
	"strings"
	"testing"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/residency"
	"micstream/internal/sched"
	"micstream/internal/sim"
)

// placeByID pins each job to the device its ID maps to, deferring
// while the target is saturated — the steering harness the residency
// tests use to put tiles exactly where a scenario needs them.
type placeByID struct{ m map[int]int }

func (p placeByID) Name() string { return "by-id" }

func (p placeByID) Place(q *Queued, eligible []DeviceView) int {
	want := p.m[q.Job.ID]
	for i, v := range eligible {
		if v.Device == want {
			return i
		}
	}
	return -1
}

// readerJob is a one-kernel job whose input is the given region of a
// device-resident dataset.
func readerJob(id int, arrival sim.Time, origin int, flops float64, reads ...residency.Region) Job {
	j := syntheticJob(id, "t", arrival, flops)
	j.Origin = origin
	j.Reads = reads
	j.StagingBytes = residency.TotalBytes(reads)
	return j
}

// transferJob is a job dominated by one H2D transfer of n bytes —
// used to hold a device busy for a link-denominated span.
func transferJob(ctx *hstreams.Context, id int, arrival sim.Time, n int) Job {
	buf := hstreams.AllocVirtual(ctx, "residency-test/hold", n, 1)
	return Job{
		ID:      id,
		Tenant:  "t",
		Arrival: arrival,
		Tasks: []*core.Task{{
			ID:         0,
			H2D:        []core.TransferSpec{core.Xfer(buf, 0, n)},
			Cost:       device.KernelCost{Name: "hold", Flops: 1e8},
			StreamHint: -1,
		}},
		Origin: -1,
	}
}

func TestWithResidencyValidation(t *testing.T) {
	ctx := newCtx(t, 2, 1, 1)
	if _, err := New(ctx, WithResidency(-1)); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("negative capacity: err = %v, want capacity error", err)
	}
	c, err := New(newCtx(t, 2, 1, 1), WithResidency(0))
	if err != nil {
		t.Fatal(err)
	}
	if c.Residency() == nil || c.Residency().Capacity() != 0 {
		t.Fatal("unbounded residency tracker not built")
	}
	if cl, err := New(newCtx(t, 2, 1, 1)); err != nil || cl.Residency() != nil {
		t.Fatalf("cache-less cluster: err=%v tracker=%v, want nil tracker", err, cl.Residency())
	}

	// Malformed regions are rejected at Run.
	c2, err := New(newCtx(t, 2, 1, 1), WithResidency(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	bad := syntheticJob(0, "t", 0, 1e8)
	bad.Origin = 0
	bad.Reads = []residency.Region{
		{Dataset: "d", First: 0, Tiles: 4, TileBytes: 1 << 10},
		{Dataset: "d", First: 2, Tiles: 2, TileBytes: 1 << 10},
	}
	if _, err := c2.Run([]Job{bad}); err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("overlapping reads: err = %v, want overlap error", err)
	}
}

// TestColdMissOnlyStaging is the tentpole contract on a hand-built
// sequence: the first off-origin reader of a dataset pays the full
// staged transfer, every later reader on that device pays nothing,
// and hits + misses always equal the demand.
func TestColdMissOnlyStaging(t *testing.T) {
	ctx := newCtx(t, 2, 1, 1)
	d := residency.Region{Dataset: "panel", First: 0, Tiles: 8, TileBytes: 1 << 20}
	// Three readers of the same dataset, serialized by arrival, all
	// steered to device 1 (off-origin).
	jobs := []Job{
		readerJob(0, 0, 0, 1e8, d),
		readerJob(1, sim.Time(40*sim.Millisecond), 0, 1e8, d),
		readerJob(2, sim.Time(80*sim.Millisecond), 0, 1e8, d),
	}
	c, err := New(ctx,
		WithPlacement(placeByID{m: map[int]int{0: 1, 1: 1, 2: 1}}),
		WithResidency(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	demand := d.Bytes()
	first := r.Jobs[0]
	if !first.Staged || first.MissBytes != demand || first.HitBytes != 0 {
		t.Errorf("cold reader: staged=%v hit=%d miss=%d, want full cold miss of %d", first.Staged, first.HitBytes, first.MissBytes, demand)
	}
	if first.StagedBytes != int64(float64(demand)*DefaultStagingFactor) {
		t.Errorf("cold reader charged %d bytes, want %d", first.StagedBytes, int64(float64(demand)*DefaultStagingFactor))
	}
	for _, o := range r.Jobs[1:] {
		if o.Staged || o.MissBytes != 0 || o.HitBytes != demand {
			t.Errorf("warm reader %d: staged=%v hit=%d miss=%d, want free full hit", o.ID, o.Staged, o.HitBytes, o.MissBytes)
		}
	}
	if r.HitBytes+r.MissBytes != 3*demand {
		t.Errorf("hits %d + misses %d != demanded %d", r.HitBytes, r.MissBytes, 3*demand)
	}
	if r.MissBytes != demand || r.StagedJobs != 1 {
		t.Errorf("run staged %d jobs / %d miss bytes, want cold-miss-only: 1 job, %d bytes", r.StagedJobs, r.MissBytes, demand)
	}

	// The cache-less control run stages every reader in full.
	ctrl, err := New(newCtx(t, 2, 1, 1), WithPlacement(placeByID{m: map[int]int{0: 1, 1: 1, 2: 1}}))
	if err != nil {
		t.Fatal(err)
	}
	rc, err := ctrl.Run([]Job{
		readerJob(0, 0, 0, 1e8, d),
		readerJob(1, sim.Time(40*sim.Millisecond), 0, 1e8, d),
		readerJob(2, sim.Time(80*sim.Millisecond), 0, 1e8, d),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rc.StagedJobs != 3 || rc.HitBytes != 0 || rc.MissBytes != 3*demand {
		t.Errorf("cache-less control: staged=%d hit=%d miss=%d, want 3 full stagings", rc.StagedJobs, rc.HitBytes, rc.MissBytes)
	}
	if r.Makespan >= rc.Makespan {
		t.Errorf("warm makespan %v should beat cache-less %v", r.Makespan, rc.Makespan)
	}
}

// TestWarmSequentialRuns: the cache persists across Run calls, so the
// same workload replayed on one cluster runs entirely warm.
func TestWarmSequentialRuns(t *testing.T) {
	ctx := newCtx(t, 2, 1, 1)
	d := residency.Region{Dataset: "grid", First: 0, Tiles: 4, TileBytes: 2 << 20}
	c, err := New(ctx, WithPlacement(placeByID{m: map[int]int{7: 1}}), WithResidency(0))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := c.Run([]Job{readerJob(7, 0, 0, 1e9, d)})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c.Run([]Job{readerJob(7, 0, 0, 1e9, d)})
	if err != nil {
		t.Fatal(err)
	}
	if cold.MissBytes != d.Bytes() || cold.HitBytes != 0 {
		t.Errorf("cold run: hit=%d miss=%d, want full miss %d", cold.HitBytes, cold.MissBytes, d.Bytes())
	}
	if warm.MissBytes != 0 || warm.HitBytes != d.Bytes() || warm.StagedJobs != 0 {
		t.Errorf("warm run: hit=%d miss=%d staged=%d, want full hit", warm.HitBytes, warm.MissBytes, warm.StagedJobs)
	}
	if warm.Makespan >= cold.Makespan {
		t.Errorf("warm makespan %v should beat cold %v", warm.Makespan, cold.Makespan)
	}
	if got := c.Residency().ResidentBytes(1); got != d.Bytes() {
		t.Errorf("device 1 holds %d bytes after the runs, want %d", got, d.Bytes())
	}
}

// TestInvalidationForcesRestage: a write to a dataset at its origin
// invalidates the staged copy, so the next off-origin reader pays the
// cold miss again; a read-only control keeps the hit.
func TestInvalidationForcesRestage(t *testing.T) {
	d := residency.Region{Dataset: "state", First: 0, Tiles: 4, TileBytes: 1 << 20}
	run := func(write bool) *Result {
		ctx := newCtx(t, 2, 1, 1)
		mid := syntheticJob(1, "t", sim.Time(40*sim.Millisecond), 1e8)
		mid.Origin = 0 // runs at home: no staging either way
		if write {
			mid.Writes = []residency.Region{d}
		}
		c, err := New(ctx, WithPlacement(placeByID{m: map[int]int{0: 1, 1: 0, 2: 1}}), WithResidency(0))
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Run([]Job{
			readerJob(0, 0, 0, 1e8, d),
			mid,
			readerJob(2, sim.Time(80*sim.Millisecond), 0, 1e8, d),
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	dirty := run(true)
	if o := dirty.Jobs[2]; !o.Staged || o.MissBytes != d.Bytes() {
		t.Errorf("reader after origin write: staged=%v miss=%d, want full re-stage of %d", o.Staged, o.MissBytes, d.Bytes())
	}
	clean := run(false)
	if o := clean.Jobs[2]; o.Staged || o.HitBytes != d.Bytes() {
		t.Errorf("reader without write: staged=%v hit=%d, want free full hit", o.Staged, o.HitBytes)
	}
}

// TestEvictionBoundsCache: a capacity smaller than the working set
// evicts at drain instants, the Result reports the evicted volume, and
// no device ends the run over budget.
func TestEvictionBoundsCache(t *testing.T) {
	ctx := newCtx(t, 2, 1, 1)
	cap := int64(6 << 20)
	mk := func(id int, at sim.Time, ds string) Job {
		return readerJob(id, at, 0, 1e8,
			residency.Region{Dataset: ds, First: 0, Tiles: 4, TileBytes: 1 << 20})
	}
	c, err := New(ctx,
		WithPlacement(placeByID{m: map[int]int{0: 1, 1: 1, 2: 1, 3: 1}}),
		WithResidency(cap),
	)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run([]Job{
		mk(0, 0, "a"),
		mk(1, sim.Time(40*sim.Millisecond), "b"),
		mk(2, sim.Time(80*sim.Millisecond), "c"),  // over budget: evicts a
		mk(3, sim.Time(120*sim.Millisecond), "a"), // a is gone: cold again
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.EvictedBytes == 0 {
		t.Error("no eviction despite working set over capacity")
	}
	if o := r.Jobs[3]; !o.Staged || o.MissBytes != o.HitBytes+o.MissBytes {
		t.Errorf("re-reader of evicted dataset: staged=%v hit=%d, want cold re-stage", o.Staged, o.HitBytes)
	}
	for dev := 0; dev < 2; dev++ {
		if got := c.Residency().ResidentBytes(dev); got > cap {
			t.Errorf("device %d ends the run holding %d > capacity %d", dev, got, cap)
		}
	}
}

// TestStealRepricesAgainstThiefResidency is the steal-pricing
// regression: a thief that already holds a committed job's tiles must
// price the move without the redundant staging transfer. The sizes
// make the blind price prohibitive — with the residency consult the
// steal happens and ships nothing; without it (the cache-less control,
// pricing the full demand) no steal is worth taking, stranding the
// backlog behind a busy device.
func TestStealRepricesAgainstThiefResidency(t *testing.T) {
	d := residency.Region{Dataset: "panel", First: 0, Tiles: 16, TileBytes: 4 << 20} // 64 MiB: ~21 ms staged
	run := func(cache bool) *Result {
		ctx := newCtx(t, 2, 1, 1)
		opts := []Option{
			// j0 warms device 1; the rest pin to device 0.
			WithPlacement(placeByID{m: map[int]int{0: 1, 1: 0, 2: 0, 3: 0}}),
			WithStealing(0),
			WithQueueDepth(4),
		}
		if cache {
			opts = append(opts, WithResidency(0))
		}
		c, err := New(ctx, opts...)
		if err != nil {
			t.Fatal(err)
		}
		jobs := []Job{
			readerJob(0, 0, 0, 1e8, d),      // stages the panel onto device 1, done ≈ 21 ms
			transferJob(ctx, 1, 0, 176<<20), // holds device 0 busy ≈ 27 ms
			readerJob(2, 0, 0, 1e8, d),      // queued on device 0 (its origin: unstaged)
			readerJob(3, 0, 0, 1e8, d),      // queued deeper — the steal candidate
		}
		r, err := c.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	aware := run(true)
	if aware.Steals == 0 {
		t.Fatal("residency-aware pricing refused the free steal")
	}
	var stolen *Outcome
	for i := range aware.Jobs {
		if aware.Jobs[i].Stolen {
			stolen = &aware.Jobs[i]
		}
	}
	if stolen == nil {
		t.Fatal("Steals > 0 but no stolen outcome")
	}
	if stolen.Device != 1 || stolen.StolenFrom != 0 {
		t.Fatalf("stolen job moved %d→%d, want 0→1 (the warm thief)", stolen.StolenFrom, stolen.Device)
	}
	if stolen.Staged || stolen.MissBytes != 0 || stolen.HitBytes != d.Bytes() {
		t.Errorf("stolen job staged=%v hit=%d miss=%d, want the whole panel served from the thief's cache",
			stolen.Staged, stolen.HitBytes, stolen.MissBytes)
	}

	blind := run(false)
	if blind.Steals != 0 {
		t.Fatalf("cache-blind pricing stole %d jobs; the staging re-charge should have priced every move out", blind.Steals)
	}
	if aware.Makespan >= blind.Makespan {
		t.Errorf("residency-aware makespan %v should beat cache-blind %v", aware.Makespan, blind.Makespan)
	}
}

// repeatedDatasetMix is the residency analogue of the PR 3/PR 4
// scenario helpers: device-resident jobs cycling through a few shared
// datasets, so a cache has real reuse to exploit.
func repeatedDatasetMix(seed uint64) ScenarioConfig {
	return ScenarioConfig{
		Seed:             seed,
		Arrival:          "bursty",
		SizeSpread:       4,
		AffinityFraction: 1,
		Origins:          []int{0},
		Datasets:         4,
		XferBytes:        8 << 20,
		WindowNs:         10_000_000,
	}
}

// TestResidencyNeverLosesOnMixes replays the PR 3 placement grid and
// the PR 4 stealing mixes — dataset-keyed so the cache has something
// to reuse — and demands the cached cluster never loses to the
// cache-less one on makespan.
func TestResidencyNeverLosesOnMixes(t *testing.T) {
	mixes := []struct {
		name             string
		spread, affinity float64
		datasets         int
		xfer             int64
		windowNs         int64
		depth            int
		steal            bool
	}{
		{"balanced", 1, 0, 0, 1 << 20, 20_000_000, 8, false},
		{"mild", 4, 0.25, 4, 2 << 20, 15_000_000, 8, false},
		{"moderate", 8, 0.5, 4, 4 << 20, 10_000_000, 8, false},
		{"severe", 8, 0.7, 4, 8 << 20, 15_000_000, 8, false},
		{"moderate-steal", 8, 0.5, 4, 4 << 20, 10_000_000, 8, true},
		{"stranded-steal", 4, 1, 4, 8 << 20, 10_000_000, 16, true},
	}
	for _, mix := range mixes {
		for seed := uint64(2016); seed < 2019; seed++ {
			var spans [2]sim.Duration
			for i, cache := range []bool{false, true} {
				ctx := newCtx(t, 2, 2, 2)
				jobs, err := BuildScenario(ctx, ScenarioConfig{
					Seed:             seed,
					Arrival:          "bursty",
					SizeSpread:       mix.spread,
					AffinityFraction: mix.affinity,
					Origins:          []int{0, 1},
					Datasets:         mix.datasets,
					XferBytes:        mix.xfer,
					WindowNs:         mix.windowNs,
				})
				if err != nil {
					t.Fatal(err)
				}
				opts := []Option{WithPlacement(Predicted()), WithQueueDepth(mix.depth)}
				if mix.steal {
					opts = append(opts, WithStealing(0))
				}
				if cache {
					opts = append(opts, WithResidency(0))
				}
				c, err := New(ctx, opts...)
				if err != nil {
					t.Fatal(err)
				}
				r, err := c.Run(jobs)
				if err != nil {
					t.Fatal(err)
				}
				if r.HitBytes+r.MissBytes != offOriginDemand(jobs, r) {
					t.Errorf("%s/seed %d cache=%v: hits %d + misses %d != off-origin demand %d",
						mix.name, seed, cache, r.HitBytes, r.MissBytes, offOriginDemand(jobs, r))
				}
				spans[i] = r.Makespan
			}
			if spans[1] > spans[0] {
				t.Errorf("%s/seed %d: cached makespan %v loses to cache-less %v", mix.name, seed, spans[1], spans[0])
			}
		}
	}
}

// offOriginDemand sums the staging demand of the jobs that ended up
// off their origin — the denominator of the hit/miss accounting.
func offOriginDemand(jobs []Job, r *Result) int64 {
	var n int64
	for i := range jobs {
		o := r.Jobs[i]
		if o.Failed || jobs[i].Origin < 0 || jobs[i].Origin == o.Device {
			continue
		}
		n += jobs[i].StagingDemand()
	}
	return n
}

// TestAffinityHerdsDatasetReaders: on a repeated-dataset mix the
// affinity policy concentrates each dataset's readers, so it stages no
// more cold bytes than cache-blind-tie-broken predicted and never a
// worse makespan than the cache-less baseline.
func TestAffinityHerdsDatasetReaders(t *testing.T) {
	for seed := uint64(2016); seed < 2019; seed++ {
		run := func(place Policy, cache bool) *Result {
			ctx := newCtx(t, 2, 2, 2)
			jobs, err := BuildScenario(ctx, repeatedDatasetMix(seed))
			if err != nil {
				t.Fatal(err)
			}
			opts := []Option{WithPlacement(place), WithQueueDepth(8)}
			if cache {
				opts = append(opts, WithResidency(0))
			}
			c, err := New(ctx, opts...)
			if err != nil {
				t.Fatal(err)
			}
			r, err := c.Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		aff := run(Affinity(), true)
		pred := run(Predicted(), true)
		base := run(Predicted(), false)
		if aff.MissBytes > pred.MissBytes {
			t.Errorf("seed %d: affinity staged %d cold bytes, predicted only %d", seed, aff.MissBytes, pred.MissBytes)
		}
		if aff.MissBytes >= base.MissBytes {
			t.Errorf("seed %d: affinity cold misses %d should undercut cache-less staging %d", seed, aff.MissBytes, base.MissBytes)
		}
		if aff.Makespan > base.Makespan {
			t.Errorf("seed %d: affinity makespan %v loses to cache-less predicted %v", seed, aff.Makespan, base.Makespan)
		}
	}
}

// TestResidencyBitIdenticalRepeats: the cached, affinity-placed,
// stealing cluster is still a pure function of its inputs.
func TestResidencyBitIdenticalRepeats(t *testing.T) {
	run := func() *Result {
		ctx := newCtx(t, 2, 2, 2)
		jobs, err := BuildScenario(ctx, func() ScenarioConfig {
			cfg := repeatedDatasetMix(99)
			cfg.WriteFraction = 0.3
			return cfg
		}())
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(ctx, WithPlacement(Affinity()), WithResidency(16<<20), WithStealing(0), WithQueueDepth(8))
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Run(jobs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated cached runs diverge:\n%+v\nvs\n%+v", a, b)
	}
	if a.HitBytes == 0 {
		t.Error("scenario produced no cache hits; the repeat proves nothing")
	}
}

// TestFailedRunRollsBackPhantomResidency: a committed job whose
// device aborts before dispatch never ran its staged transfer, so its
// residency installs must not survive into a later run on the same
// (persistent) cache as phantom hits.
func TestFailedRunRollsBackPhantomResidency(t *testing.T) {
	ctx := newCtx(t, 2, 1, 1)
	d := residency.Region{Dataset: "phantom", First: 0, Tiles: 4, TileBytes: 1 << 20}
	// Device 1's stream policy dies on its first dispatch, so the
	// off-origin reader committed there installs tiles but never runs.
	c, err := New(ctx,
		WithPlacement(placeByID{m: map[int]int{0: 1}}),
		WithResidency(0),
		WithDevicePolicy(func() sched.Policy { return &vandalStreamPolicy{good: 0} }),
	)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run([]Job{readerJob(0, 0, 0, 1e8, d)})
	if err == nil {
		t.Fatal("vandal device policy should abort the run")
	}
	if r == nil || !r.Jobs[0].Failed {
		t.Fatal("aborted run should return the job as a failed outcome")
	}
	if got := c.Residency().ResidentBytes(1); got != 0 {
		t.Fatalf("device 1 holds %d phantom bytes after the failed run, want 0", got)
	}
	if hit, _ := c.Residency().Lookup(1, []residency.Region{d}); hit != 0 {
		t.Fatalf("failed job's tiles still hit for %d bytes", hit)
	}
}
