package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"micstream/internal/telemetry"
)

// telemetryMixes are the PR 3–5 experiment shapes the determinism
// contract is checked against: plain predicted placement, the
// stealing-heavy stranded mix, and the residency mix with shared
// datasets, writes and a tight cache.
func telemetryMixes() map[string]struct {
	cfg  ScenarioConfig
	opts func() []Option
} {
	return map[string]struct {
		cfg  ScenarioConfig
		opts func() []Option
	}{
		"placement": {
			cfg: ScenarioConfig{Seed: 7, SizeSpread: 4, AffinityFraction: 0.5, Origins: []int{0, 1}},
			opts: func() []Option {
				return []Option{WithPlacement(Predicted())}
			},
		},
		"stealing": {
			cfg: strandedMix(3),
			opts: func() []Option {
				return []Option{WithPlacement(Predicted()), WithStealing(0), WithQueueDepth(16)}
			},
		},
		"residency": {
			cfg: ScenarioConfig{
				Seed:             5,
				Arrival:          "bursty",
				SizeSpread:       4,
				AffinityFraction: 1,
				Origins:          []int{0},
				Datasets:         4,
				WriteFraction:    0.25,
				XferBytes:        8 << 20,
				WindowNs:         10_000_000,
			},
			opts: func() []Option {
				return []Option{WithPlacement(Affinity()), WithResidency(12 << 20)}
			},
		},
	}
}

// runMix runs one mix on a fresh platform, optionally telemetered.
func runMix(t *testing.T, cfg ScenarioConfig, opts []Option, rec *telemetry.Recorder) (*Result, *Cluster) {
	t.Helper()
	ctx := newCtx(t, 2, 2, 2)
	jobs, err := BuildScenario(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		opts = append(opts, WithTelemetry(rec))
	}
	c, err := New(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return r, c
}

// TestTelemetryNeverPerturbsResults is the tentpole's core contract:
// with telemetry enabled, every cluster Result on the PR 3–5
// experiment mixes is bit-identical to the untraced run — recording
// observes decisions, it never feeds back into them.
func TestTelemetryNeverPerturbsResults(t *testing.T) {
	for name, mix := range telemetryMixes() {
		t.Run(name, func(t *testing.T) {
			plain, _ := runMix(t, mix.cfg, mix.opts(), nil)
			traced, _ := runMix(t, mix.cfg, mix.opts(), telemetry.NewRecorder())
			if !reflect.DeepEqual(plain, traced) {
				t.Errorf("traced Result differs from untraced on mix %q", name)
			}
		})
	}
}

// TestTelemetryDeterministicAcrossRepeats checks the event log and the
// Chrome export are byte-identical across repeated fresh runs of the
// same mix — the DESIGN.md §6 determinism contract extended to the
// observability layer.
func TestTelemetryDeterministicAcrossRepeats(t *testing.T) {
	for name, mix := range telemetryMixes() {
		t.Run(name, func(t *testing.T) {
			recA, recB := telemetry.NewRecorder(), telemetry.NewRecorder()
			_, ca := runMix(t, mix.cfg, mix.opts(), recA)
			_, cb := runMix(t, mix.cfg, mix.opts(), recB)
			if !reflect.DeepEqual(recA.Events(), recB.Events()) {
				t.Fatal("event logs differ across identical fresh runs")
			}
			if !reflect.DeepEqual(recA.Metrics(), recB.Metrics()) {
				t.Fatal("metrics snapshots differ across identical fresh runs")
			}
			var a, b bytes.Buffer
			if err := ca.Trace(&a); err != nil {
				t.Fatal(err)
			}
			if err := cb.Trace(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatal("Chrome exports differ across identical fresh runs")
			}
		})
	}
}

// TestTelemetryLifecycleEvents checks the event log carries a complete
// job lifecycle: one admit, place, dispatch, complete and drain per
// job, with the cluster-assigned ID threading the layers together.
func TestTelemetryLifecycleEvents(t *testing.T) {
	mix := telemetryMixes()["placement"]
	rec := telemetry.NewRecorder()
	r, _ := runMix(t, mix.cfg, mix.opts(), rec)
	n := len(r.Jobs)
	for _, want := range []struct {
		kind telemetry.Kind
		n    int
	}{
		{telemetry.Admit, n}, {telemetry.Place, n}, {telemetry.Dispatch, n},
		{telemetry.Complete, n}, {telemetry.Drain, n}, {telemetry.Fail, 0},
	} {
		if got := rec.Count(want.kind); got != want.n {
			t.Errorf("%v events: got %d, want %d", want.kind, got, want.n)
		}
	}
	// Place events from the predicted policy must expose per-device
	// scores, and the picked device must hold the minimum score.
	for _, e := range rec.Events() {
		if e.Kind != telemetry.Place {
			continue
		}
		if len(e.Scores) == 0 {
			t.Fatalf("place event for job %d has no scores under predicted placement", e.ID)
		}
		best := e.Scores[0]
		for _, s := range e.Scores[1:] {
			if s.Predicted < best.Predicted {
				best = s
			}
		}
		if best.Device != e.Device {
			t.Errorf("place event for job %d picked device %d but device %d scored best (%v)",
				e.ID, e.Device, best.Device, best.Predicted)
		}
	}
	// Every event stamped inside the run must be chronologically
	// ordered per Seq ties and non-negative.
	events := rec.Events()
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has Seq %d", i, e.Seq)
		}
		if e.At < 0 {
			t.Fatalf("event %d has negative timestamp %v", i, e.At)
		}
	}
}

// TestTelemetryStealAndResidencyEvents checks the decision kinds that
// only fire on the stealing and residency mixes really appear, and
// agree with the Result's aggregate counters.
func TestTelemetryStealAndResidencyEvents(t *testing.T) {
	t.Run("stealing", func(t *testing.T) {
		mix := telemetryMixes()["stealing"]
		rec := telemetry.NewRecorder()
		r, _ := runMix(t, mix.cfg, mix.opts(), rec)
		if r.Steals == 0 {
			t.Fatal("stranded mix produced no steals; the mix no longer exercises stealing")
		}
		if got := rec.Count(telemetry.Steal); got != r.Steals {
			t.Errorf("steal events: got %d, want %d", got, r.Steals)
		}
		for _, e := range rec.Events() {
			if e.Kind != telemetry.Steal {
				continue
			}
			if e.Device == e.From || e.Device < 0 || e.From < 0 {
				t.Errorf("steal event has thief %d victim %d", e.Device, e.From)
			}
			if e.Dur <= 0 {
				t.Errorf("steal event has non-positive predicted gain %v", e.Dur)
			}
			if !r.Jobs[e.Job].Stolen || r.Jobs[e.Job].StolenFrom != e.From {
				t.Errorf("steal event job %d disagrees with outcome %+v", e.Job, r.Jobs[e.Job])
			}
		}
	})
	t.Run("residency", func(t *testing.T) {
		mix := telemetryMixes()["residency"]
		rec := telemetry.NewRecorder()
		r, _ := runMix(t, mix.cfg, mix.opts(), rec)
		if r.HitBytes == 0 || r.EvictedBytes == 0 {
			t.Fatalf("residency mix produced no hits (%d) or evictions (%d); the mix no longer exercises the cache",
				r.HitBytes, r.EvictedBytes)
		}
		var hit, staged, evicted int64
		for _, e := range rec.Events() {
			switch e.Kind {
			case telemetry.Hit:
				hit += e.Bytes
			case telemetry.Stage:
				staged += e.Bytes
			case telemetry.Evict:
				evicted += e.Bytes
			}
		}
		if hit != r.HitBytes {
			t.Errorf("hit events total %d bytes, Result says %d", hit, r.HitBytes)
		}
		if evicted != r.EvictedBytes {
			t.Errorf("evict events total %d bytes, Result says %d", evicted, r.EvictedBytes)
		}
		// Stage events log the charged volume of jobs that completed
		// *and* of withdrawn commitments, so they bound the Result's
		// final accounting from above.
		if staged < r.StagedBytes {
			t.Errorf("stage events total %d bytes, below Result's %d", staged, r.StagedBytes)
		}
	})
}

// TestTelemetryMetricsSnapshots checks each drain instant captures a
// snapshot whose final state agrees with the Result.
func TestTelemetryMetricsSnapshots(t *testing.T) {
	mix := telemetryMixes()["placement"]
	rec := telemetry.NewRecorder()
	r, c := runMix(t, mix.cfg, mix.opts(), rec)
	snaps := c.Metrics()
	if len(snaps) != len(r.Jobs) {
		t.Fatalf("got %d snapshots, want one per completion (%d)", len(snaps), len(r.Jobs))
	}
	prevAt := snaps[0].At
	prevDone := 0
	for i, s := range snaps {
		if s.At < prevAt {
			t.Fatalf("snapshot %d goes back in time (%v < %v)", i, s.At, prevAt)
		}
		if s.Done < prevDone {
			t.Fatalf("snapshot %d done count regressed (%d < %d)", i, s.Done, prevDone)
		}
		prevAt, prevDone = s.At, s.Done
		if len(s.Devices) != c.NumDevices() {
			t.Fatalf("snapshot %d lists %d devices, want %d", i, len(s.Devices), c.NumDevices())
		}
		if s.Fairness < 0 || s.Fairness > 1+1e-9 {
			t.Fatalf("snapshot %d has Jain index %g outside [0,1]", i, s.Fairness)
		}
	}
	last := snaps[len(snaps)-1]
	if last.Done != len(r.Jobs) {
		t.Errorf("final snapshot done %d, want %d", last.Done, len(r.Jobs))
	}
	if last.ClusterQueue != 0 {
		t.Errorf("final snapshot still queues %d jobs", last.ClusterQueue)
	}
	var tenantDone int
	for _, tm := range last.Tenants {
		tenantDone += tm.Done
		if tm.Done > 0 && tm.P95 <= 0 {
			t.Errorf("tenant %s completed %d jobs but has p95 %v", tm.Tenant, tm.Done, tm.P95)
		}
	}
	if tenantDone != len(r.Jobs) {
		t.Errorf("tenant done counts sum to %d, want %d", tenantDone, len(r.Jobs))
	}
	// Per-device utilization in the final snapshot must agree with the
	// Result's kernel utilization direction: devices that ran jobs are
	// non-idle.
	for _, dm := range last.Devices {
		if ds := r.Device(dm.Device); ds.Jobs > 0 && dm.KernelBusy <= 0 {
			t.Errorf("device %d ran %d jobs but snapshot shows no kernel busy time", dm.Device, ds.Jobs)
		}
	}
}

// TestTelemetryRecorderSurvivesRuns checks the recorder accumulates
// across Run calls (one continuous timeline) while Results stay
// per-run.
func TestTelemetryRecorderSurvivesRuns(t *testing.T) {
	ctx := newCtx(t, 2, 2, 1)
	rec := telemetry.NewRecorder()
	c, err := New(ctx, WithTelemetry(rec))
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, syntheticJob(i, "t", 0, 5e8))
	}
	if _, err := c.Run(jobs); err != nil {
		t.Fatal(err)
	}
	n1 := rec.Len()
	if _, err := c.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if rec.Len() <= n1 {
		t.Fatalf("second run did not append events (%d → %d)", n1, rec.Len())
	}
	if got := rec.Count(telemetry.Drain); got != 12 {
		t.Errorf("drain events across two runs: got %d, want 12", got)
	}
}
