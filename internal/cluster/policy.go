package cluster

import (
	"fmt"
	"sort"

	"micstream/internal/model"
	"micstream/internal/sim"
)

// DeviceView is one device's snapshot at a placement instant.
type DeviceView struct {
	// Device is the device index.
	Device int
	// Streams is the device's stream count.
	Streams int
	// Idle is how many of those streams have no job in flight.
	Idle int
	// Queued is the committed-but-undispatched job count — the
	// queue-depth signal least-loaded placement uses.
	Queued int
	// Backlog is the summed service estimates of the queued jobs —
	// the time-denominated signal predicted placement uses instead.
	Backlog sim.Duration
	// EarliestFree is the device scheduler's estimate of its next
	// stream-drain instant (Now when a stream is already idle).
	EarliestFree sim.Time
	// Now is the current virtual time.
	Now sim.Time
}

// occupancy counts jobs the device holds, running plus queued.
func (v DeviceView) occupancy() int { return v.Streams - v.Idle + v.Queued }

// Policy chooses, at each placement opportunity, which device the
// oldest cluster-queued job commits to. eligible is non-empty, sorted
// by ascending device index, and contains only devices with spare
// admission capacity. Place returns an index into eligible, or a
// negative value to defer the job to the next decision instant (only
// meaningful for pinning policies — deferral forfeits cluster-level
// work conservation). Implementations may keep per-run state and must
// be deterministic functions of their inputs and that state.
type Policy interface {
	// Name identifies the policy in results and CLIs.
	Name() string
	// Place returns an index into eligible, or negative to defer.
	Place(q *Queued, eligible []DeviceView) int
}

// clusterBinder is implemented by policies that derive state from the
// cluster (the platform model, the device count); New and Run call it
// before the first placement.
type clusterBinder interface{ bind(*Cluster) }

// resetter is implemented by stateful policies; Run calls it so every
// run starts from the same policy state.
type resetter interface{ reset() }

// leastLoaded routes to the device holding the fewest jobs (running
// plus queued) — the classic queue-depth heuristic, blind to job sizes
// and staging. Ties go to the lowest device index.
type leastLoaded struct{}

// LeastLoaded returns the queue-depth placement policy.
func LeastLoaded() Policy { return leastLoaded{} }

// Name implements Policy.
func (leastLoaded) Name() string { return "least-loaded" }

// Place implements Policy.
func (leastLoaded) Place(_ *Queued, eligible []DeviceView) int {
	best := 0
	for i, v := range eligible[1:] {
		if v.occupancy() < eligible[best].occupancy() {
			best = i + 1
		}
	}
	return best
}

// roundRobin rotates placement across devices with a persistent
// cursor, ignoring load entirely.
type roundRobin struct {
	devices int
	cursor  int
}

// RoundRobin returns the rotating placement policy. The cursor is
// per-run state: Run resets it.
func RoundRobin() Policy { return &roundRobin{} }

// Name implements Policy.
func (*roundRobin) Name() string { return "round-robin" }

// bind implements clusterBinder.
func (p *roundRobin) bind(c *Cluster) { p.devices = c.NumDevices() }

// reset implements resetter.
func (p *roundRobin) reset() { p.cursor = 0 }

// Place implements Policy: the eligible device nearest at or after the
// cursor on the device ring.
func (p *roundRobin) Place(_ *Queued, eligible []DeviceView) int {
	n := p.devices
	if n < 1 {
		n = len(eligible)
	}
	best, bestDist := 0, n+1
	for i, v := range eligible {
		d := (v.Device - p.cursor + n) % n
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	p.cursor = (eligible[best].Device + 1) % n
	return best
}

// predicted is the model-driven policy: each eligible device is scored
// with its predicted completion instant for the job — the device's
// estimated ready time (drain instant plus queued backlog spread over
// its streams), plus the cross-device staging term when the job would
// run off its data's origin, plus the model's service prediction — and
// the earliest predicted completion wins. The service and staging
// terms go through the analytic model, so a Fit-calibrated model
// (PredictedWithModel) really moves the scores: TransferScale
// stretches the staging price, ComputeScale the kernel share. This is
// the predicted-performance-driven configuration of arXiv:2003.04294
// applied to placement: unlike least-loaded it sees *time*, so a long
// job behind a short queue loses to a short queue of long jobs, and
// unlike every load-blind heuristic it knows that moving a job off its
// origin costs the Fig. 11 staging traffic.
type predicted struct {
	c          *Cluster
	m          *model.Model
	partitions int
}

// Predicted returns the model-driven placement policy. The
// performance model is built from the platform's device and link
// configs when the cluster binds the policy.
func Predicted() Policy { return &predicted{} }

// PredictedWithModel returns the predicted policy with a
// caller-supplied (e.g. Fit-calibrated) performance model.
func PredictedWithModel(m *model.Model) Policy { return &predicted{m: m} }

// Name implements Policy.
func (*predicted) Name() string { return "predicted" }

// bind implements clusterBinder.
func (p *predicted) bind(c *Cluster) {
	p.c = c
	cfg := c.Context().Config()
	p.partitions = cfg.Partitions
	if p.m == nil {
		p.m = model.New(cfg.Device, cfg.Link)
		p.m.StreamsPerPartition = cfg.StreamsPerPartition
	}
}

// stagingEst prices an off-origin placement through the model's
// calibrated link: the charged staging volume at transfer rate,
// stretched by TransferScale.
func (p *predicted) stagingEst(bytes int64) sim.Duration {
	charged := p.c.stagingCharge(bytes)
	if charged <= 0 {
		return 0
	}
	ts := p.m.TransferScale
	if ts <= 0 {
		ts = 1
	}
	return sim.Duration(float64(p.m.Link.TransferTime(charged)) * ts)
}

// Place implements Policy.
func (p *predicted) Place(q *Queued, eligible []DeviceView) int {
	// A caller-declared estimate wins (it is what the backlog term is
	// denominated in); otherwise the model predicts the service from
	// the tasks, which is where Fit calibration enters.
	est := q.Est
	if q.Job.Est <= 0 {
		est = p.m.ServiceTime(q.Job.Tasks, p.partitions)
	}
	best, bestScore := 0, sim.Time(0)
	for i, v := range eligible {
		ready := v.EarliestFree
		if ready < v.Now {
			ready = v.Now
		}
		if v.Streams > 0 {
			ready = ready.Add(v.Backlog / sim.Duration(v.Streams))
		}
		score := ready.Add(est)
		if job := q.Job; job.Origin >= 0 && job.Origin != v.Device {
			score = score.Add(p.stagingEst(job.StagingBytes))
		}
		if i == 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// static pins every job to one device, deferring while it is
// saturated. It exists as the baseline the placement property tests
// compare against (the best static single-device assignment); it is
// not work-conserving at the cluster level and is not registered with
// ByName.
type static struct{ dev int }

// Static returns a policy that places every job on the given device.
func Static(dev int) Policy { return static{dev: dev} }

// Name implements Policy.
func (s static) Name() string { return fmt.Sprintf("static-%d", s.dev) }

// Place implements Policy.
func (s static) Place(_ *Queued, eligible []DeviceView) int {
	for i, v := range eligible {
		if v.Device == s.dev {
			return i
		}
	}
	return -1
}

// Policies lists the built-in placement policy names in stable order.
func Policies() []string {
	names := make([]string, 0, len(policyFactories))
	for name := range policyFactories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// policyFactories maps names to fresh-instance constructors; RR and
// predicted are stateful, so ByName must return a new value each call.
var policyFactories = map[string]func() Policy{
	"least-loaded": LeastLoaded,
	"round-robin":  RoundRobin,
	"predicted":    Predicted,
}

// ByName returns a fresh instance of a built-in placement policy:
// "least-loaded", "round-robin", or "predicted".
func ByName(name string) (Policy, error) {
	f, ok := policyFactories[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown placement policy %q (have %v)", name, Policies())
	}
	return f(), nil
}
