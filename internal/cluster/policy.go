package cluster

import (
	"fmt"
	"sort"

	"micstream/internal/model"
	"micstream/internal/sim"
)

// DeviceView is one device's snapshot at a placement instant.
type DeviceView struct {
	// Device is the device index.
	Device int
	// Streams is the device's stream count.
	Streams int
	// Idle is how many of those streams have no job in flight.
	Idle int
	// Queued is the committed-but-undispatched job count — the
	// queue-depth signal least-loaded placement uses.
	Queued int
	// Backlog is the summed service estimates of the queued jobs —
	// the time-denominated signal predicted placement uses instead.
	Backlog sim.Duration
	// EarliestFree is the device scheduler's estimate of its next
	// stream-drain instant (Now when a stream is already idle).
	EarliestFree sim.Time
	// Now is the current virtual time.
	Now sim.Time
}

// occupancy counts jobs the device holds, running plus queued.
func (v DeviceView) occupancy() int { return v.Streams - v.Idle + v.Queued }

// Policy chooses, at each placement opportunity, which device the
// oldest cluster-queued job commits to. eligible is non-empty, sorted
// by ascending device index, and contains only devices with spare
// admission capacity. Place returns an index into eligible, or a
// negative value to defer the job to the next decision instant (only
// meaningful for pinning policies — deferral forfeits cluster-level
// work conservation). Implementations may keep per-run state and must
// be deterministic functions of their inputs and that state.
type Policy interface {
	// Name identifies the policy in results and CLIs.
	Name() string
	// Place returns an index into eligible, or negative to defer.
	Place(q *Queued, eligible []DeviceView) int
}

// Scorer is optionally implemented by placement policies whose
// decision reduces to a comparable per-device score. Scores returns
// the predicted completion instant of q on each eligible device,
// parallel to eligible. The telemetry layer uses it to record the
// scores behind a Place decision; implementations must be pure reads
// of policy and cluster state (the built-in predicted and affinity
// policies qualify — their pricing consults only read-only residency
// lookups), so scoring for observability can never perturb the
// decision itself.
type Scorer interface {
	Scores(q *Queued, eligible []DeviceView) []sim.Time
}

// clusterBinder is implemented by policies that derive state from the
// cluster (the platform model, the device count); New and Run call it
// before the first placement.
type clusterBinder interface{ bind(*Cluster) }

// resetter is implemented by stateful policies; Run calls it so every
// run starts from the same policy state.
type resetter interface{ reset() }

// leastLoaded routes to the device holding the fewest jobs (running
// plus queued) — the classic queue-depth heuristic, blind to job sizes
// and staging. Ties go to the lowest device index.
type leastLoaded struct{}

// LeastLoaded returns the queue-depth placement policy.
func LeastLoaded() Policy { return leastLoaded{} }

// Name implements Policy.
func (leastLoaded) Name() string { return "least-loaded" }

// Place implements Policy.
func (leastLoaded) Place(_ *Queued, eligible []DeviceView) int {
	best := 0
	for i, v := range eligible[1:] {
		if v.occupancy() < eligible[best].occupancy() {
			best = i + 1
		}
	}
	return best
}

// roundRobin rotates placement across devices with a persistent
// cursor, ignoring load entirely.
type roundRobin struct {
	devices int
	cursor  int
}

// RoundRobin returns the rotating placement policy. The cursor is
// per-run state: Run resets it.
func RoundRobin() Policy { return &roundRobin{} }

// Name implements Policy.
func (*roundRobin) Name() string { return "round-robin" }

// bind implements clusterBinder.
func (p *roundRobin) bind(c *Cluster) { p.devices = c.NumDevices() }

// reset implements resetter.
func (p *roundRobin) reset() { p.cursor = 0 }

// Place implements Policy: the eligible device nearest at or after the
// cursor on the device ring.
func (p *roundRobin) Place(_ *Queued, eligible []DeviceView) int {
	n := p.devices
	if n < 1 {
		n = len(eligible)
	}
	best, bestDist := 0, n+1
	for i, v := range eligible {
		d := (v.Device - p.cursor + n) % n
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	p.cursor = (eligible[best].Device + 1) % n
	return best
}

// predicted is the model-driven policy: each eligible device is scored
// with its predicted completion instant for the job — the device's
// estimated ready time (drain instant plus queued backlog spread over
// its streams), plus the cross-device staging term when the job would
// run off its data's origin, plus the model's service prediction — and
// the earliest predicted completion wins. The service and staging
// terms go through the analytic model, so a Fit-calibrated model
// (PredictedWithModel) really moves the scores: TransferScale
// stretches the staging price, ComputeScale the kernel share. This is
// the predicted-performance-driven configuration of arXiv:2003.04294
// applied to placement: unlike least-loaded it sees *time*, so a long
// job behind a short queue loses to a short queue of long jobs, and
// unlike every load-blind heuristic it knows that moving a job off its
// origin costs the Fig. 11 staging traffic.
type predicted struct {
	c          *Cluster
	m          *model.Model
	partitions int
}

// Predicted returns the model-driven placement policy. The
// performance model is built from the platform's device and link
// configs when the cluster binds the policy.
func Predicted() Policy { return &predicted{} }

// PredictedWithModel returns the predicted policy with a
// caller-supplied (e.g. Fit-calibrated) performance model.
func PredictedWithModel(m *model.Model) Policy { return &predicted{m: m} }

// Name implements Policy.
func (*predicted) Name() string { return "predicted" }

// bind implements clusterBinder.
func (p *predicted) bind(c *Cluster) {
	p.c = c
	cfg := c.Context().Config()
	p.partitions = cfg.Partitions
	if p.m == nil {
		p.m = model.New(cfg.Device, cfg.Link)
		p.m.StreamsPerPartition = cfg.StreamsPerPartition
	}
}

// serviceEst is the service term of a score: a caller-declared
// estimate wins (it is what the backlog term is denominated in);
// otherwise the model predicts the service from the tasks, which is
// where Fit calibration enters.
func (p *predicted) serviceEst(q *Queued) sim.Duration {
	if q.Job.Est <= 0 {
		return p.m.ServiceTime(q.Job.Tasks, p.partitions)
	}
	return q.Est
}

// residual is the staging demand left if q commits to dev now: zero on
// the job's origin, the cold-miss remainder where the residency cache
// holds part of the read set, the full demand otherwise. Lookup is
// read-only, so scoring many devices never perturbs the cache.
func (p *predicted) residual(q *Queued, dev int) int64 {
	job := q.Job
	if job.Origin < 0 || job.Origin == dev || q.demand <= 0 {
		return 0
	}
	if t := p.c.resident; t != nil && len(job.Reads) > 0 {
		_, miss := t.Lookup(dev, job.Reads)
		return miss
	}
	return q.demand
}

// score is the predicted completion instant of q on v: the device's
// estimated ready time (drain instant plus queued backlog spread over
// its streams), the residual staging charge priced through the
// model's staging-only cluster form, and the service estimate.
func (p *predicted) score(q *Queued, v DeviceView, est sim.Duration, residual int64) sim.Time {
	ready := v.EarliestFree
	if ready < v.Now {
		ready = v.Now
	}
	if v.Streams > 0 {
		ready = ready.Add(v.Backlog / sim.Duration(v.Streams))
	}
	s := ready.Add(est)
	if residual > 0 {
		s = s.Add(p.c.stagingPrice(p.m, residual))
	}
	return s
}

// Scores implements Scorer: the predicted completion instant per
// eligible device — exactly the quantities Place minimizes.
func (p *predicted) Scores(q *Queued, eligible []DeviceView) []sim.Time {
	est := p.serviceEst(q)
	out := make([]sim.Time, len(eligible))
	for i, v := range eligible {
		out[i] = p.score(q, v, est, p.residual(q, v.Device))
	}
	return out
}

// Place implements Policy.
func (p *predicted) Place(q *Queued, eligible []DeviceView) int {
	scores := p.Scores(q, eligible)
	best := 0
	for i, s := range scores {
		if s < scores[best] {
			best = i
		}
	}
	return best
}

// DefaultAffinitySlack is the affinity policy's near-tie window: a
// device qualifies as tied when its predicted completion span exceeds
// the best by at most this fraction.
const DefaultAffinitySlack = 0.05

// affinity is the cache-aware refinement of predicted: devices are
// scored identically, but when several land within the near-tie window
// the job goes to the one already holding the largest resident
// fraction of its read set (the origin counts as fully resident).
// Staging is priced at the residual in both policies; what affinity
// adds is the tie-break — on a repeated-dataset mix it herds readers
// of one dataset onto the device that staged it first instead of
// scattering them by backlog noise, so the cold miss is paid once
// (DESIGN.md §11). Without WithResidency (or for jobs without
// declared regions) it degenerates to predicted exactly.
type affinity struct {
	predicted
	slack float64
}

// Affinity returns the cache-affinity placement policy with the
// default near-tie window.
func Affinity() Policy { return &affinity{slack: DefaultAffinitySlack} }

// Name implements Policy.
func (*affinity) Name() string { return "affinity" }

// Place implements Policy.
func (a *affinity) Place(q *Queued, eligible []DeviceView) int {
	est := a.serviceEst(q)
	scores := make([]sim.Time, len(eligible))
	residuals := make([]int64, len(eligible))
	best := 0
	for i, v := range eligible {
		residuals[i] = a.residual(q, v.Device)
		scores[i] = a.score(q, v, est, residuals[i])
		if scores[i] < scores[best] {
			best = i
		}
	}
	// The tie-break needs the cache's information: without a tracker,
	// without declared regions (residual carries no residency signal
	// then), or without demand, affinity is predicted exactly.
	job := q.Job
	if a.c.resident == nil || job.Origin < 0 || q.demand <= 0 || len(job.Reads) == 0 {
		return best
	}
	// Spans are measured from now so the near-tie window is relative
	// to how far away completion is, not to the virtual epoch.
	now := eligible[0].Now
	bestSpan := scores[best].Sub(now)
	window := bestSpan + sim.Duration(float64(bestSpan)*a.slack)
	pick, pickFrac := best, -1.0
	for i := range eligible {
		if scores[i].Sub(now) > window {
			continue
		}
		frac := float64(q.demand-residuals[i]) / float64(q.demand)
		// Largest resident fraction wins; ties keep the earlier
		// predicted completion, then the lower device index (first
		// seen) — the same discipline as every other decision.
		if frac > pickFrac || (frac == pickFrac && scores[i] < scores[pick]) {
			pick, pickFrac = i, frac
		}
	}
	return pick
}

// static pins every job to one device, deferring while it is
// saturated. It exists as the baseline the placement property tests
// compare against (the best static single-device assignment); it is
// not work-conserving at the cluster level and is not registered with
// ByName.
type static struct{ dev int }

// Static returns a policy that places every job on the given device.
func Static(dev int) Policy { return static{dev: dev} }

// Name implements Policy.
func (s static) Name() string { return fmt.Sprintf("static-%d", s.dev) }

// Place implements Policy.
func (s static) Place(_ *Queued, eligible []DeviceView) int {
	for i, v := range eligible {
		if v.Device == s.dev {
			return i
		}
	}
	return -1
}

// Policies lists the built-in placement policy names in stable order.
func Policies() []string {
	names := make([]string, 0, len(policyFactories))
	for name := range policyFactories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// policyFactories maps names to fresh-instance constructors; RR,
// predicted and affinity are stateful, so ByName must return a new
// value each call.
var policyFactories = map[string]func() Policy{
	"least-loaded": LeastLoaded,
	"round-robin":  RoundRobin,
	"predicted":    Predicted,
	"affinity":     Affinity,
}

// ByName returns a fresh instance of a built-in placement policy:
// "affinity", "least-loaded", "round-robin", or "predicted".
func ByName(name string) (Policy, error) {
	f, ok := policyFactories[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown placement policy %q (have %v)", name, Policies())
	}
	return f(), nil
}
