package cluster

import (
	"reflect"
	"strings"
	"testing"

	"micstream/internal/residency"
	"micstream/internal/sim"
)

// sessionWorkload is the mixed scenario the session tests run: three
// tenants, staggered arrivals, a couple of staged off-origin jobs.
func sessionWorkload(n int) []Job {
	jobs := make([]Job, 0, n)
	for i := 0; i < n; i++ {
		j := syntheticJob(i, string(rune('A'+i%3)), sim.Time(i)*sim.Time(sim.Millisecond)/4, 4e8+1e8*float64(i%5))
		if i%4 == 0 {
			j.Origin = i % 2
			j.StagingBytes = 4 << 20
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// A single-batch session must reproduce the batch Run exactly: same
// per-job outcomes, same aggregates — service mode is a refactor of
// the run loop, not a new scheduler.
func TestSessionSingleBatchMatchesRun(t *testing.T) {
	jobs := sessionWorkload(16)

	cRun, err := New(newCtx(t, 2, 2, 2), WithPlacement(Predicted()), WithStealing(0))
	if err != nil {
		t.Fatal(err)
	}
	want, err := cRun.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	cSess, err := New(newCtx(t, 2, 2, 2), WithPlacement(Predicted()), WithStealing(0))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Outcome
	sess, err := cSess.NewSession(func(o Outcome) { streamed = append(streamed, o) })
	if err != nil {
		t.Fatal(err)
	}
	if base, err := sess.Submit(jobs); err != nil || base != 0 {
		t.Fatalf("Submit = (%d, %v), want (0, nil)", base, err)
	}
	if n, err := sess.RunEpoch(); err != nil || n != len(jobs) {
		t.Fatalf("RunEpoch = (%d, %v), want (%d, nil)", n, err, len(jobs))
	}
	got := sess.Result()
	if !reflect.DeepEqual(want.Jobs, got.Jobs) {
		t.Fatalf("session outcomes diverge from batch Run:\nrun:     %+v\nsession: %+v", want.Jobs, got.Jobs)
	}
	if want.Makespan != got.Makespan || want.Steals != got.Steals || want.StagedBytes != got.StagedBytes {
		t.Fatalf("session aggregates diverge: makespan %v/%v steals %d/%d staged %d/%d",
			want.Makespan, got.Makespan, want.Steals, got.Steals, want.StagedBytes, got.StagedBytes)
	}
	if len(streamed) != len(jobs) {
		t.Fatalf("streamed %d outcomes, want %d", len(streamed), len(jobs))
	}
	// The stream carries each terminal outcome exactly once, in virtual
	// completion order, and each matches its Result slot.
	seen := make(map[int]bool)
	for i, o := range streamed {
		if seen[o.Index] {
			t.Fatalf("outcome %d streamed twice", o.Index)
		}
		seen[o.Index] = true
		if !reflect.DeepEqual(o, got.Jobs[o.Index]) {
			t.Fatalf("streamed outcome %d differs from Result slot", o.Index)
		}
		if i > 0 && streamed[i].Done < streamed[i-1].Done {
			t.Fatalf("stream out of completion order at %d: %v after %v", i, streamed[i].Done, streamed[i-1].Done)
		}
	}
}

// Splitting the same workload across epochs keeps every job accounted:
// indices stay dense across batches, each epoch fully drains, and the
// final Result covers all epochs.
func TestSessionMultiEpochAccounting(t *testing.T) {
	jobs := sessionWorkload(18)
	c, err := New(newCtx(t, 2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Outcome
	sess, err := c.NewSession(func(o Outcome) { streamed = append(streamed, o) })
	if err != nil {
		t.Fatal(err)
	}
	for start := 0; start < len(jobs); start += 6 {
		base, err := sess.Submit(jobs[start : start+6])
		if err != nil {
			t.Fatal(err)
		}
		if base != start {
			t.Fatalf("batch at %d got base %d", start, base)
		}
		if n, err := sess.RunEpoch(); err != nil || n != 6 {
			t.Fatalf("epoch at %d: (%d, %v), want (6, nil)", start, n, err)
		}
		if sess.Pending() != 0 {
			t.Fatalf("epoch boundary with %d pending jobs", sess.Pending())
		}
	}
	if sess.Epochs() != 3 || sess.Submitted() != 18 || sess.Terminal() != 18 {
		t.Fatalf("epochs/submitted/terminal = %d/%d/%d, want 3/18/18", sess.Epochs(), sess.Submitted(), sess.Terminal())
	}
	r := sess.Result()
	if len(r.Jobs) != 18 || len(streamed) != 18 {
		t.Fatalf("result %d jobs, streamed %d, want 18/18", len(r.Jobs), len(streamed))
	}
	for i, o := range r.Jobs {
		if o.Failed {
			t.Fatalf("job %d failed", i)
		}
		if o.Index != i || o.ID != jobs[i].ID {
			t.Fatalf("outcome %d misindexed: Index %d ID %d", i, o.Index, o.ID)
		}
		if got, ok := sess.Outcome(i); !ok || !reflect.DeepEqual(got, o) {
			t.Fatalf("Outcome(%d) = (%+v, %v), want Result slot", i, got, ok)
		}
	}
}

// The residency cache stays warm across epochs: a dataset staged in
// epoch 1 is a hit for the identical job in epoch 2 — the service
// mode's reason to exist over repeated batch Runs.
func TestSessionResidencyWarmAcrossEpochs(t *testing.T) {
	d := residency.Region{Dataset: "panel", First: 0, Tiles: 8, TileBytes: 1 << 20}
	mk := func(id int) []Job {
		return []Job{readerJob(id, 0, 0, 5e8, d)}
	}
	c, err := New(newCtx(t, 2, 2, 1),
		WithPlacement(placeByID{m: map[int]int{1: 1, 2: 1}}),
		WithResidency(0))
	if err != nil {
		t.Fatal(err)
	}
	var got []Outcome
	sess, err := c.NewSession(func(o Outcome) { got = append(got, o) })
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 2; id++ {
		if _, err := sess.Submit(mk(id)); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 {
		t.Fatalf("streamed %d outcomes, want 2", len(got))
	}
	if got[0].HitBytes != 0 || got[0].MissBytes != d.Bytes() {
		t.Fatalf("epoch-1 job: hit %d miss %d, want cold (0, %d)", got[0].HitBytes, got[0].MissBytes, d.Bytes())
	}
	if got[1].HitBytes != d.Bytes() || got[1].MissBytes != 0 {
		t.Fatalf("epoch-2 job: hit %d miss %d, want warm (%d, 0)", got[1].HitBytes, got[1].MissBytes, d.Bytes())
	}
}

// Submit is rejected mid-epoch, after Close, and when a batch fails
// validation — in every case without admitting anything.
func TestSessionSubmitRejections(t *testing.T) {
	c, err := New(newCtx(t, 2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.NewSession(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Submit([]Job{{ID: 9}}); err == nil || !strings.Contains(err.Error(), "no tasks") {
		t.Fatalf("taskless job: err %v, want validation error", err)
	}
	if sess.Submitted() != 0 {
		t.Fatalf("rejected batch still admitted %d jobs", sess.Submitted())
	}
	// Batches stack at one boundary: a second Submit before RunEpoch
	// is legal and keeps admission order (the serve layer's per-job
	// fallback depends on it).
	if _, err := sess.Submit(sessionWorkload(2)); err != nil {
		t.Fatal(err)
	}
	if base, err := sess.Submit(sessionWorkload(1)); err != nil || base != 2 {
		t.Fatalf("stacked submit = (%d, %v), want (2, nil)", base, err)
	}
	if n, err := sess.RunEpoch(); err != nil || n != 3 {
		t.Fatalf("stacked epoch = (%d, %v), want (3, nil)", n, err)
	}
	// Mid-epoch means inside RunEpoch: a Submit from an outcome
	// callback is rejected.
	var midErr error
	c2, err := New(newCtx(t, 2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	var sess2 *Session
	sess2, err = c2.NewSession(func(Outcome) {
		_, midErr = sess2.Submit(sessionWorkload(1))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Submit(sessionWorkload(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.RunEpoch(); err != nil {
		t.Fatal(err)
	}
	if midErr == nil || !strings.Contains(midErr.Error(), "mid-epoch") {
		t.Fatalf("callback submit: err %v, want mid-epoch rejection", midErr)
	}
	sess.Close()
	if _, err := sess.Submit(sessionWorkload(1)); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("closed submit: err %v, want closed rejection", err)
	}
	if _, err := sess.RunEpoch(); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("closed epoch: err %v, want closed rejection", err)
	}
	// The cluster itself is reusable after Close.
	if _, err := c.Run(sessionWorkload(4)); err != nil {
		t.Fatalf("Run after session Close: %v", err)
	}
}
