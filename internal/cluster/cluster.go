// Package cluster is the model-driven multi-MIC scheduler: one
// per-device stream scheduler (internal/sched) per simulated
// coprocessor, behind a cluster-level admission queue that routes each
// arriving job to a device under a pluggable placement policy.
//
// The paper's §VI shows one streamed code scaling to several MICs but
// landing below the 2× projection because partitioned workloads stage
// tiles through the host (Fig. 11); the follow-up studies
// (arXiv:1608.03044, arXiv:2003.04294) frame device placement as a
// prediction problem — route work by predicted completion, not by
// queue length. This package implements both sides: jobs carry a data
// origin (the device holding their inputs) and a staging volume, a job
// placed off its origin really pays the staged transfer on the target
// device's link, and the "predicted" placement policy folds that
// staging term plus the analytic model's service estimate into an
// earliest-predicted-completion score. "least-loaded" (queue depth)
// and "round-robin" are the load-blind baselines the placement
// experiment compares it against. With WithResidency enabled the
// staging charge becomes cold-miss-only: a per-device cache
// (internal/residency) remembers which tiles earlier jobs already
// shipped, every pricing path charges only the residual, and the
// "affinity" policy breaks near-ties toward the device holding the
// largest resident fraction of a job's read set (DESIGN.md §11).
//
// Admission is two-level. Each device accepts at most QueueDepth
// committed-but-undispatched jobs; overflow waits in the cluster
// queue, in arrival order, and is placed at the next decision instant
// (a job arrival or any device's job completion). Placement is
// therefore eager while devices have admission capacity — the regime
// where policies differ — and deferred (late-binding) under
// saturation, which preserves cluster-level work conservation: a
// device can only idle while the cluster queue is non-empty if every
// device is saturated, which is impossible (a saturated device has no
// idle streams). Every decision happens at an engine event with
// deterministic tie-breaks, so cluster runs are bit-identical across
// repeats at a fixed seed (DESIGN.md §6, §9).
package cluster

import (
	"fmt"
	"io"
	"math"
	"sort"

	"micstream/internal/core"
	"micstream/internal/hstreams"
	"micstream/internal/model"
	"micstream/internal/pcie"
	"micstream/internal/residency"
	"micstream/internal/sched"
	"micstream/internal/sim"
	"micstream/internal/stats"
	"micstream/internal/telemetry"
)

// DefaultStagingFactor scales a job's StagingBytes into the transfer
// volume charged on the target device's link when the job runs off its
// origin device: the tile crosses PCIe twice (D2H out of the origin,
// H2D into the target), serialized through host memory. The value is
// calibrated against the §VI measurements the experiments reproduce —
// with it, the Fig. 11-style cluster-scaling table lands in the
// paper's 1.5–1.9× band instead of the projected 2×.
const DefaultStagingFactor = 2.0

// Job is one unit of cluster admission: a tenant-tagged task list with
// a virtual arrival time, plus the data-placement fields the placement
// policies reason about.
type Job struct {
	// ID labels the job in results; it need not be unique.
	ID int
	// Tenant attributes the job for per-tenant accounting. Empty
	// means "default".
	Tenant string
	// Arrival is the virtual time the job becomes runnable.
	Arrival sim.Time
	// Tasks is the job's workload; StreamHint values are overridden
	// by the per-device scheduler's placement.
	Tasks []*core.Task
	// Est optionally declares the job's service-time estimate; 0
	// means the cluster derives one from the tasks.
	Est sim.Duration
	// Origin is the device whose memory holds the job's inputs; -1
	// (or any negative value) means host-resident. A job placed on a
	// device other than its origin stages StagingBytes through the
	// host first.
	Origin int
	// StagingBytes is the input volume staged through the host when
	// the job runs off its origin device. Ignored when Origin is
	// negative, and superseded by Reads when regions are declared.
	StagingBytes int64
	// Reads optionally declares the (dataset, tile-range) regions the
	// staged input covers. With regions declared the staging demand is
	// their total volume, and a cluster running WithResidency charges
	// only the tiles not already resident on the target device — the
	// cold-miss remainder (DESIGN.md §11). Regions must not overlap
	// within the list.
	Reads []residency.Region
	// Writes optionally declares regions the job overwrites. At the
	// job's completion instant every other device's cached copy of
	// those tiles is invalidated; the writer keeps the fresh copy when
	// it ran off the dataset's origin.
	Writes []residency.Region
	// Deadline is the job's relative completion deadline — the latency
	// budget measured from cluster admission; 0 means none. Deadlines
	// are accounting only: the completed outcome is tagged Missed when
	// its latency overran the budget (and the telemetry Admit event
	// carries the budget for SLO evaluators), but placement, dispatch
	// and stealing never read it.
	Deadline sim.Duration
}

// StagingDemand is the volume the job must move when placed off its
// origin: the total of its declared read regions, or StagingBytes when
// none are declared.
func (j *Job) StagingDemand() int64 {
	if len(j.Reads) > 0 {
		return residency.TotalBytes(j.Reads)
	}
	return j.StagingBytes
}

// Queued is a cluster-queued job together with the bookkeeping the
// placement policies see.
type Queued struct {
	// Job is the queued job.
	Job *Job
	// Est is the job's service-time estimate excluding staging. After a
	// mid-job migration (WithSlicing + WithStealing) it covers only the
	// remaining tasks — completed slices no longer count.
	Est sim.Duration
	// Seq is the cluster admission sequence number.
	Seq int

	// idx is the job's outcome slot.
	idx int
	// dev and devIdx locate the job after commitment: the device it
	// was routed to and its outcome index on that device's scheduler.
	// Work stealing uses them to withdraw a committed job.
	dev, devIdx int
	// next is the index of the job's first not-yet-dispatched task in
	// the original task list: 0 until a mid-job steal migrates a
	// partially-run remainder (DESIGN.md §13).
	next int
	// reads is the still-needed read set (the full Job.Reads until a
	// migration trims it to the remainder's share) and demand its
	// volume (initially Job.StagingDemand).
	reads  []residency.Region
	demand int64
	// rcpt records what the last commitment installed in the residency
	// tracker, so a steal's withdraw can roll it back; staged,
	// stagedBytes, stagingEst and hitBytes/missBytes are that
	// commitment's own staging accounting, so a pre-dispatch withdraw
	// can un-charge exactly what this commitment added.
	rcpt                residency.Receipt
	staged              bool
	stagedBytes         int64
	stagingEst          sim.Duration
	hitBytes, missBytes int64
}

// Option configures a Cluster.
type Option func(*Cluster)

// WithPlacement selects the placement policy (default Predicted). The
// policy instance must not be shared with another live cluster.
func WithPlacement(p Policy) Option {
	return func(c *Cluster) { c.place = p }
}

// WithDevicePolicy sets the per-device stream-scheduling policy
// factory (default sched.FIFO); each device gets a fresh instance.
func WithDevicePolicy(factory func() sched.Policy) Option {
	return func(c *Cluster) { c.devPolicy = factory }
}

// WithQueueDepth caps how many committed-but-undispatched jobs each
// device holds (default: the device's stream count). Beyond the cap,
// jobs wait in the cluster queue and bind to a device late.
func WithQueueDepth(n int) Option {
	return func(c *Cluster) { c.depth = n }
}

// WithStagingFactor overrides DefaultStagingFactor.
func WithStagingFactor(f float64) Option {
	return func(c *Cluster) { c.stagingFactor = f }
}

// WithResidency enables the device-resident staging cache: a
// deterministic per-device tracker of the (dataset, tile) regions jobs
// declare through Reads/Writes, byte-capacity bounded per device
// (capacityBytes 0 = unbounded), LRU-evicted at drain instants. With
// it enabled, an off-origin placement stages only the tiles not
// already resident on the target — the cold-miss remainder — and every
// pricing path (predicted placement, steal gains) prices that residual
// instead of the full volume (DESIGN.md §11). The cache persists
// across Run calls, so a repeated workload runs warm. A negative
// capacity is rejected by New.
func WithResidency(capacityBytes int64) Option {
	return func(c *Cluster) {
		c.caching = true
		c.cacheCap = capacityBytes
	}
}

// CacheModes lists the residency-cache modes the CLIs accept: "off"
// (no tracker — every off-origin job stages in full) and "lru" (the
// WithResidency tracker with drain-instant LRU eviction).
func CacheModes() []string { return []string{"off", "lru"} }

// WithTelemetry attaches a cluster-wide scheduling-event recorder:
// the cluster emits admit, place (with the per-device predicted
// scores when the placement policy exposes them), steal, residency
// hit/stage/evict/invalidate and drain events, its embedded per-device
// schedulers emit dispatch/complete/fail, and every drain instant
// captures a MetricsSnapshot (DESIGN.md §12). A nil recorder (the
// default) disables telemetry at zero cost — every emission site is
// guarded, so the disabled hot path constructs nothing. Recording
// never feeds back into a decision: a traced run's Result is
// bit-identical to an untraced one. Like the residency cache, the
// recorder persists across Run calls.
func WithTelemetry(rec *telemetry.Recorder) Option {
	return func(c *Cluster) { c.tel = rec }
}

// WithStealing enables drain-instant work stealing: whenever a device
// goes idle while another's committed backlog exceeds threshold, the
// idle device may re-bind committed-but-undispatched jobs whose
// predicted completion — including the Fig. 11 staging re-charge on
// the new link — improves by moving (DESIGN.md §10). threshold 0
// steals whenever any backlog exists; a negative threshold is
// rejected by New. With WithSlicing also enabled the pass extends to
// *dispatched* jobs: a partially-run job's undispatched remainder,
// re-queued at a slice boundary, may migrate mid-job (DESIGN.md §13).
func WithStealing(threshold sim.Duration) Option {
	return func(c *Cluster) {
		c.stealing = true
		c.stealThreshold = threshold
	}
}

// WithSlicing enables preemptive job slicing on every embedded
// per-device scheduler (sched.WithSlicing): a stream grant dispatches
// at most maxTasksPerSlice tasks and the remainder re-queues behind
// the device policy at the slice boundary, so light jobs overtake a
// heavy job between its slices and tenant shares re-plan at task
// granularity. Combined with WithStealing, drain-instant steal passes
// may also migrate a waiting remainder to an idle device, re-pricing
// the Fig. 11 staging term for only the tiles the remainder still
// needs (DESIGN.md §13). 0 (the default) disables slicing; a negative
// cap is rejected by New. Slicing requires dependency-ordered task
// lists (sched.Sliceable); Run rejects jobs violating that order.
func WithSlicing(maxTasksPerSlice int) Option {
	return func(c *Cluster) { c.sliceMax = maxTasksPerSlice }
}

// Cluster routes jobs across the devices of one context. A cluster
// may execute several Run calls sequentially; each drains completely
// before returning.
type Cluster struct {
	ctx            *hstreams.Context
	scheds         []*sched.Scheduler
	place          Policy
	devPolicy      func() sched.Policy
	depth          int
	stagingFactor  float64
	stealing       bool
	stealThreshold sim.Duration
	stealModel     *model.Model
	sliceMax       int
	caching        bool
	cacheCap       int64
	resident       *residency.Tracker
	tel            *telemetry.Recorder

	stagingBuf *hstreams.Buffer
	// resStart snapshots the tracker's cumulative stats at Run entry,
	// so the Result reports per-run eviction deltas while the cache
	// itself stays warm across runs.
	resStart residency.Stats

	// Per-run state, reset by Run (or by NewSession, which then grows
	// it batch by batch instead of sizing it up front).
	queue       []*Queued
	admitted    []*Queued // outcome index → admission record
	outcomes    []Outcome
	submitted   [][]int // device → per-device outcome index → cluster index (-1: withdrawn)
	runFlops    float64
	done        int
	steals      int
	preempts    int
	seq         int
	runErr      error
	afterChange func() // test hook: runs after every dispatch loop

	// onOutcome streams each job's outcome the instant it becomes
	// terminal (completed or failed) — the Session's per-job emission
	// channel. nil (the batch Run default) disables streaming; notified
	// guards every emission site so no outcome is streamed twice, and
	// nterminal counts terminal outcomes for the session's drain
	// accounting.
	onOutcome func(Outcome)
	notified  []bool
	nterminal int

	// runStart anchors the run's elapsed-time accounting; linkBusy0 and
	// kernBusy0 snapshot each device's cumulative sim.Server occupancy
	// at Run entry (the servers accumulate across runs, the Result and
	// metrics report per-run deltas). telStaged accumulates the staging
	// volume charged per device this run; tenantLat/tenantSeen feed the
	// drain-instant per-tenant metrics when telemetry is enabled.
	runStart   sim.Time
	linkBusy0  []sim.Duration
	kernBusy0  []sim.Duration
	telStaged  []int64
	tenantLat  map[string]*tenantAccum
	tenantSeen []string
	// telHit/telMiss accumulate the residency hit/miss byte split this
	// run for the metrics snapshots, un-charged on steal withdraw like
	// telStaged.
	telHit  int64
	telMiss int64
}

// tenantAccum is the running per-tenant completion record behind the
// drain-instant metrics: completion count plus realized latencies (in
// virtual nanoseconds, as float64 for the percentile helpers).
type tenantAccum struct {
	done int
	lats []float64
}

// New builds a cluster over every device of ctx: one embedded
// per-device scheduler owning that device's streams, plus the
// cluster-level admission queue.
func New(ctx *hstreams.Context, opts ...Option) (*Cluster, error) {
	if ctx == nil {
		return nil, fmt.Errorf("cluster: nil context")
	}
	c := &Cluster{
		ctx:           ctx,
		devPolicy:     sched.FIFO,
		stagingFactor: DefaultStagingFactor,
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.place == nil {
		c.place = Predicted()
	}
	if c.devPolicy == nil {
		return nil, fmt.Errorf("cluster: nil device policy factory")
	}
	if c.stagingFactor < 0 {
		return nil, fmt.Errorf("cluster: negative staging factor %g", c.stagingFactor)
	}
	if c.stealing && c.stealThreshold < 0 {
		return nil, fmt.Errorf("cluster: negative steal threshold %v", c.stealThreshold)
	}
	if c.sliceMax < 0 {
		return nil, fmt.Errorf("cluster: negative slice cap %d", c.sliceMax)
	}
	cfg := ctx.Config()
	perDev := cfg.Partitions * cfg.StreamsPerPartition
	if c.depth == 0 {
		c.depth = perDev
	}
	if c.depth < 1 {
		return nil, fmt.Errorf("cluster: queue depth %d must be positive", c.depth)
	}
	for d := 0; d < ctx.NumDevices(); d++ {
		ids := make([]int, perDev)
		for i := range ids {
			ids[i] = d*perDev + i
		}
		sopts := []sched.Option{sched.WithPolicy(c.devPolicy()), sched.WithStreams(ids...)}
		if c.sliceMax > 0 {
			sopts = append(sopts, sched.WithSlicing(c.sliceMax))
		}
		s, err := sched.New(ctx, sopts...)
		if err != nil {
			return nil, err
		}
		dev := d
		s.SetOnDone(func(o sched.JobOutcome) { c.jobDone(dev, o) })
		// The embedded scheduler shares the cluster's recorder and tags
		// its dispatch/complete/fail events with its device index (a nil
		// recorder is a valid no-op sink).
		s.SetTelemetry(c.tel, d)
		c.scheds = append(c.scheds, s)
	}
	if len(c.scheds) == 0 {
		return nil, fmt.Errorf("cluster: context has no devices")
	}
	if c.caching {
		t, err := residency.New(len(c.scheds), c.cacheCap)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.resident = t
	}
	if b, ok := c.place.(clusterBinder); ok {
		b.bind(c)
	}
	c.bindStealModel()
	return c, nil
}

// bindStealModel fixes the performance model the steal decisions
// price staging and service with: the predicted policy's (possibly
// Fit-calibrated) model when that policy routes the cluster, otherwise
// a fresh model from the platform configs.
func (c *Cluster) bindStealModel() {
	if !c.stealing {
		return
	}
	if p, ok := c.place.(*predicted); ok && p.m != nil {
		c.stealModel = p.m
		return
	}
	cfg := c.ctx.Config()
	m := model.New(cfg.Device, cfg.Link)
	m.StreamsPerPartition = cfg.StreamsPerPartition
	c.stealModel = m
}

// Context returns the underlying platform context.
func (c *Cluster) Context() *hstreams.Context { return c.ctx }

// NumDevices reports the cluster's device count.
func (c *Cluster) NumDevices() int { return len(c.scheds) }

// Placement returns the cluster's placement policy.
func (c *Cluster) Placement() Policy { return c.place }

// Scheduler returns device d's embedded stream scheduler (for
// inspection; mutating it mid-run corrupts the cluster).
func (c *Cluster) Scheduler(d int) *sched.Scheduler { return c.scheds[d] }

// Residency returns the cluster's staging cache, or nil when the
// cluster runs cache-less (for inspection; mutating it mid-run
// corrupts the pricing).
func (c *Cluster) Residency() *residency.Tracker { return c.resident }

// Telemetry returns the cluster's event recorder, nil when telemetry
// is disabled.
func (c *Cluster) Telemetry() *telemetry.Recorder { return c.tel }

// PricingModel returns the analytic model behind the cluster's
// pricing decisions — the predicted/affinity policy's (possibly
// Fit-calibrated) model, else the steal model, else nil for a cluster
// whose policies never price. The drift audit (internal/obs) reads
// its calibration for the artifact metadata.
func (c *Cluster) PricingModel() *model.Model {
	switch p := c.place.(type) {
	case *predicted:
		if p.m != nil {
			return p.m
		}
	case *affinity:
		if p.m != nil {
			return p.m
		}
	}
	return c.stealModel
}

// Metrics returns the drain-instant metrics snapshots recorded so far
// (nil when telemetry is disabled).
func (c *Cluster) Metrics() []telemetry.MetricsSnapshot { return c.tel.Metrics() }

// Trace writes the cluster's runs so far as Chrome trace-event JSON,
// unifying the platform's span recorder (resource occupancy) with the
// telemetry event log (scheduling decisions). Either recorder may be
// absent; with both disabled the export is an empty trace.
func (c *Cluster) Trace(w io.Writer) error {
	return telemetry.WriteChromeTrace(w, c.ctx.Recorder().Spans(), c.tel)
}

// link returns the PCIe model shared by the cluster's links (every
// device link is configured identically).
func (c *Cluster) link() pcie.Config { return c.ctx.Config().Link }

// stagingCharge converts a job's staging volume into the byte count
// actually transferred on the target link.
func (c *Cluster) stagingCharge(bytes int64) int64 {
	return int64(math.Ceil(float64(bytes) * c.stagingFactor))
}

// stagingTime is the modeled link occupancy of an off-origin
// placement: the scaled volume at link rate plus one setup latency.
func (c *Cluster) stagingTime(bytes int64) sim.Duration {
	charged := c.stagingCharge(bytes)
	if charged <= 0 {
		return 0
	}
	return c.link().TransferTime(charged)
}

// stagingPrice predicts the cost of staging bytes (a job's residual
// demand after residency hits) through the analytic model's
// multi-device form: a staging-only ClusterWorkload evaluated by
// PredictCluster, so every pricing path — predicted placement scores
// and steal gains alike — carries the same calibrated link scales and
// shared-host contention. The model charges every staged byte as two
// crossings while the cluster's actual charge is stagingFactor × bytes
// in one transfer, so the model is handed half the charged volume and
// the two conventions price the same traffic even under a non-default
// WithStagingFactor.
func (c *Cluster) stagingPrice(m *model.Model, bytes int64) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	charged := c.stagingCharge(bytes)
	if charged <= 0 {
		return 0
	}
	devices := len(c.scheds)
	if devices < 2 {
		devices = 2
	}
	cw := model.StagingOnly("cluster/staging", (charged+1)/2)
	if pred, err := m.PredictCluster(cw, devices, 1, 1); err == nil && pred.StagingTime > 0 {
		return pred.StagingTime
	}
	return c.stagingTime(bytes)
}

// ensureStaging returns the scratch buffer staged transfers move
// through, growing it when a job needs more than any before. The
// buffer carries real backing only on functional contexts.
func (c *Cluster) ensureStaging(n int) *hstreams.Buffer {
	if n < 1 {
		n = 1
	}
	if c.stagingBuf == nil || c.stagingBuf.Len() < n {
		size := 1
		for size < n {
			size *= 2
		}
		if c.ctx.Config().ExecuteKernels {
			c.stagingBuf = hstreams.Alloc1D(c.ctx, "cluster/staging", make([]byte, size))
		} else {
			c.stagingBuf = hstreams.AllocVirtual(c.ctx, "cluster/staging", size, 1)
		}
	}
	return c.stagingBuf
}

// validate rejects malformed jobs before any of them is admitted, so
// an error leaves the cluster's state untouched. Shared by the batch
// Run entry point and the session's per-batch Submit.
func (c *Cluster) validate(jobs []Job) error {
	for i := range jobs {
		j := &jobs[i]
		if len(j.Tasks) == 0 {
			return fmt.Errorf("cluster: job %d (tenant %q) has no tasks", j.ID, j.Tenant)
		}
		for k, task := range j.Tasks {
			if task == nil {
				return fmt.Errorf("cluster: job %d (tenant %q) has nil task %d", j.ID, j.Tenant, k)
			}
		}
		if j.Arrival < 0 {
			return fmt.Errorf("cluster: job %d has negative arrival %v", j.ID, j.Arrival)
		}
		if j.Origin >= len(c.scheds) {
			return fmt.Errorf("cluster: job %d origin device %d out of range [0,%d)", j.ID, j.Origin, len(c.scheds))
		}
		if j.StagingBytes < 0 {
			return fmt.Errorf("cluster: job %d has negative staging volume %d", j.ID, j.StagingBytes)
		}
		if j.Deadline < 0 {
			return fmt.Errorf("cluster: job %d has negative deadline %v", j.ID, j.Deadline)
		}
		if err := residency.Validate(j.Reads); err != nil {
			return fmt.Errorf("cluster: job %d reads: %w", j.ID, err)
		}
		if err := residency.Validate(j.Writes); err != nil {
			return fmt.Errorf("cluster: job %d writes: %w", j.ID, err)
		}
		if c.sliceMax > 0 {
			if err := sched.Sliceable(j.Tasks); err != nil {
				return fmt.Errorf("cluster: job %d (tenant %q): %w", j.ID, j.Tenant, err)
			}
		}
	}
	return nil
}

// Run admits every job at its arrival time, places them under the
// configured policy until all complete, and returns the per-job,
// per-device and per-tenant accounting. Arrival times earlier than the
// context's current virtual time clamp to it.
func (c *Cluster) Run(jobs []Job) (*Result, error) {
	if err := c.validate(jobs); err != nil {
		return nil, err
	}
	for _, s := range c.scheds {
		s.Reset()
	}
	if b, ok := c.place.(clusterBinder); ok {
		b.bind(c)
	}
	if r, ok := c.place.(resetter); ok {
		r.reset()
	}
	c.bindStealModel()
	c.queue = nil
	c.admitted = make([]*Queued, len(jobs))
	c.outcomes = make([]Outcome, len(jobs))
	c.notified = make([]bool, len(jobs))
	c.nterminal = 0
	c.onOutcome = nil
	c.submitted = make([][]int, len(c.scheds))
	c.runFlops = 0
	for i := range jobs {
		for _, t := range jobs[i].Tasks {
			if !t.TransferOnly {
				c.runFlops += t.Cost.Flops
			}
		}
	}
	c.done = 0
	c.steals = 0
	c.preempts = 0
	c.seq = 0
	c.runErr = nil
	if c.resident != nil {
		// The cache itself persists across runs (a repeated workload
		// runs warm); only the per-run stats baseline resets.
		c.resStart = c.resident.Stats()
	}
	// Per-run occupancy baselines: the partition and DMA servers
	// accumulate busy time across runs, so per-run utilization is a
	// delta against Run entry.
	c.linkBusy0 = make([]sim.Duration, len(c.scheds))
	c.kernBusy0 = make([]sim.Duration, len(c.scheds))
	c.telStaged = make([]int64, len(c.scheds))
	c.telHit, c.telMiss = 0, 0
	for d := range c.scheds {
		c.linkBusy0[d] = c.ctx.Link(d).TotalBusy()
		c.kernBusy0[d] = c.kernelBusy(d)
	}
	if c.tel.Enabled() {
		c.tenantLat = make(map[string]*tenantAccum)
		c.tenantSeen = nil
	}

	eng := c.ctx.Engine()
	runStart := eng.Now()
	c.runStart = runStart
	for i := range jobs {
		job := &jobs[i]
		idx := i
		at := job.Arrival
		if at < runStart {
			at = runStart
		}
		eng.At(at, func() { c.admit(job, idx) })
	}
	eng.Run()
	if c.runErr == nil {
		for _, s := range c.scheds {
			if err := s.Err(); err != nil {
				c.runErr = err
				break
			}
		}
	}
	if c.runErr != nil {
		// Mirror the sched error path: the partial result lists every
		// admitted job, the unrun ones flagged Failed, instead of
		// silently dropping the committed and cluster-queued backlog.
		return c.summarize(runStart), c.runErr
	}
	if c.done != len(jobs) {
		return nil, fmt.Errorf("cluster: internal error: %d of %d jobs completed", c.done, len(jobs))
	}
	return c.summarize(runStart), nil
}

// emitOutcome streams outcome idx to the session's per-job sink the
// instant it becomes terminal. The notified guard makes the emission
// exactly-once no matter which failure path marked the job (admission
// after an error, a stranded cluster queue, a device abort), and the
// terminal counter feeds the session's drain accounting whether or not
// a sink is attached.
func (c *Cluster) emitOutcome(idx int) {
	if c.notified == nil || c.notified[idx] {
		return
	}
	c.notified[idx] = true
	c.nterminal++
	if c.onOutcome != nil {
		c.onOutcome(c.outcomes[idx])
	}
}

// admit enqueues one arriving job and runs the placement loop.
// Arrivals after a placement error are recorded as failed outcomes
// rather than dropped.
func (c *Cluster) admit(job *Job, idx int) {
	est := job.Est
	if est <= 0 {
		est = c.scheds[0].Estimate(job.Tasks)
	}
	origin := job.Origin
	if origin < 0 {
		origin = -1
	}
	c.outcomes[idx] = Outcome{
		Index:      idx,
		ID:         job.ID,
		Tenant:     tenantOf(job),
		Arrival:    c.ctx.Now(),
		Est:        est,
		Device:     -1,
		Stream:     -1,
		Origin:     origin,
		StolenFrom: -1,
		Deadline:   job.Deadline,
	}
	if c.runErr != nil {
		c.outcomes[idx].Failed = true
		if c.tel.Enabled() {
			c.tel.Emit(telemetry.Event{At: c.ctx.Now(), Kind: telemetry.Fail,
				Job: idx, ID: job.ID, Tenant: tenantOf(job), Device: -1, From: -1, Stream: -1})
		}
		c.emitOutcome(idx)
		return
	}
	q := &Queued{Job: job, Est: est, Seq: c.seq, idx: idx, dev: -1, devIdx: -1,
		reads: job.Reads, demand: job.StagingDemand()}
	c.admitted[idx] = q
	c.queue = append(c.queue, q)
	c.seq++
	if c.tel.Enabled() {
		c.tel.Emit(telemetry.Event{At: c.ctx.Now(), Kind: telemetry.Admit,
			Job: idx, ID: job.ID, Tenant: tenantOf(job), Device: -1, From: -1, Stream: -1, Dur: est,
			Deadline: job.Deadline})
	}
	c.dispatch()
}

// fail records the first cluster-level error and surfaces every job
// still waiting in the cluster queue as a failed outcome; committed
// jobs keep running (their devices are healthy) and complete normally.
func (c *Cluster) fail(err error) {
	if c.runErr != nil {
		return
	}
	c.runErr = err
	stranded := c.queue
	c.queue = nil
	for _, q := range stranded {
		c.outcomes[q.idx].Failed = true
		if c.tel.Enabled() {
			c.tel.Emit(telemetry.Event{At: c.ctx.Now(), Kind: telemetry.Fail,
				Job: q.idx, ID: q.Job.ID, Tenant: tenantOf(q.Job), Device: -1, From: -1, Stream: -1})
		}
		c.emitOutcome(q.idx)
	}
}

// views snapshots every device for the placement policy. Policies get
// fresh copies each decision — a mutating implementation cannot
// corrupt the cluster.
func (c *Cluster) views() []DeviceView {
	now := c.ctx.Now()
	out := make([]DeviceView, len(c.scheds))
	for d, s := range c.scheds {
		out[d] = DeviceView{
			Device:       d,
			Streams:      s.NumStreams(),
			Idle:         s.NumStreams() - s.InFlight(),
			Queued:       s.QueueDepth(),
			Backlog:      s.PendingBacklog(),
			EarliestFree: s.EarliestFree(),
			Now:          now,
		}
	}
	return out
}

// dispatch places cluster-queued jobs onto devices with admission
// capacity, oldest job first, until the queue or the capacity runs
// out — the cluster-level work-conservation loop: after it returns, a
// non-empty queue implies every device is saturated (full committed
// queue, hence no idle streams).
func (c *Cluster) dispatch() {
	for len(c.queue) > 0 && c.runErr == nil {
		all := c.views()
		eligible := make([]DeviceView, 0, len(all))
		for _, v := range all {
			if v.Queued < c.depth {
				eligible = append(eligible, v)
			}
		}
		if len(eligible) == 0 {
			break
		}
		q := c.queue[0]
		pick := c.place.Place(q, eligible)
		if pick < 0 {
			// The policy deferred placement (a pinning policy whose
			// target is saturated); stop until the next instant.
			break
		}
		if pick >= len(eligible) {
			c.fail(fmt.Errorf("cluster: policy %s picked device index %d out of range [0,%d)",
				c.place.Name(), pick, len(eligible)))
			break
		}
		c.queue = c.queue[1:]
		if c.tel.Enabled() {
			e := telemetry.Event{At: c.ctx.Now(), Kind: telemetry.Place,
				Job: q.idx, ID: q.Job.ID, Tenant: tenantOf(q.Job),
				Device: eligible[pick].Device, From: -1, Stream: -1}
			if sc, ok := c.place.(Scorer); ok {
				// The scoring pass re-runs the policy's pricing against
				// read-only state (residency Lookup never mutates), so
				// capturing the scores cannot perturb the decision.
				for i, s := range sc.Scores(q, eligible) {
					e.Scores = append(e.Scores, telemetry.Score{Device: eligible[i].Device, Predicted: s})
				}
			}
			c.tel.Emit(e)
		}
		c.route(q, eligible[pick].Device)
	}
	if c.afterChange != nil && c.runErr == nil {
		c.afterChange()
	}
}

// route commits one job to a device: charges the staging transfer when
// the job runs off its origin — only the cold-miss remainder when the
// residency cache holds part of the job's read set — submits to the
// device's scheduler, and records the placement. A pre-dispatch stolen
// job routes through here again with its staging fields reset, so the
// charge reflects the final device; a mid-job migrated remainder
// (q.next > 0) routes only its remaining tasks and *accumulates* the
// staging accounting, because the victim's transfer really ran.
func (c *Cluster) route(q *Queued, dev int) {
	job := q.Job
	idx := q.idx
	o := &c.outcomes[idx]
	o.Device = dev
	if q.dev < 0 {
		o.Placed = c.ctx.Now()
	} else {
		// A re-route after a steal: Placed keeps the first commitment
		// instant (PlaceWait measures cluster-queue time, not steals).
		o.StolenAt = c.ctx.Now()
	}
	if q.next == 0 {
		o.Staged = false
		o.StagedBytes = 0
		o.StagingEst = 0
		o.HitBytes = 0
		o.MissBytes = 0
	}
	q.rcpt = residency.Receipt{}
	q.staged = false
	q.stagedBytes, q.stagingEst = 0, 0
	q.hitBytes, q.missBytes = 0, 0

	tasks := job.Tasks[q.next:]
	if q.next > 0 {
		// A migrated remainder re-enters as a fresh submission on the
		// thief: dependencies on consumed tasks are satisfied temporally
		// (the slices serialized on the victim) and must be stripped, or
		// EnqueuePhase would reject references to tasks it never saw.
		inRem := make(map[int]bool, len(tasks))
		for _, t := range tasks {
			inRem[t.ID] = true
		}
		clean := make([]*core.Task, len(tasks))
		for i, t := range tasks {
			ct := *t
			if len(ct.DependsOn) > 0 {
				deps := make([]int, 0, len(ct.DependsOn))
				for _, d := range ct.DependsOn {
					if inRem[d] {
						deps = append(deps, d)
					}
				}
				ct.DependsOn = deps
			}
			clean[i] = &ct
		}
		tasks = clean
	}
	est := q.Est
	if job.Origin >= 0 && job.Origin != dev && q.demand > 0 {
		miss := q.demand
		if c.resident != nil && len(q.reads) > 0 {
			var hit int64
			hit, miss, q.rcpt = c.resident.Commit(dev, q.reads)
			q.hitBytes = hit
			o.HitBytes += hit
			c.telHit += hit
			if hit > 0 && c.tel.Enabled() {
				c.tel.Emit(telemetry.Event{At: c.ctx.Now(), Kind: telemetry.Hit,
					Job: idx, ID: job.ID, Tenant: tenantOf(job), Device: dev, From: -1, Stream: -1, Bytes: hit})
			}
		}
		q.missBytes = miss
		o.MissBytes += miss
		c.telMiss += miss
		if miss > 0 {
			charged := c.stagingCharge(miss)
			buf := c.ensureStaging(int(charged))
			maxID := tasks[0].ID
			for _, t := range tasks {
				if t.ID > maxID {
					maxID = t.ID
				}
			}
			stage := &core.Task{
				ID:           maxID + 1,
				H2D:          []core.TransferSpec{core.Xfer(buf, 0, int(charged))},
				StreamHint:   -1,
				TransferOnly: true,
			}
			// The stage task leads the job on its (single) stream, so
			// FIFO order delays every real task behind the staged bytes.
			tasks = append([]*core.Task{stage}, tasks...)
			o.Staged = true
			q.staged = true
			q.stagedBytes = charged
			q.stagingEst = c.stagingTime(miss)
			o.StagedBytes += charged
			o.StagingEst += q.stagingEst
			est += q.stagingEst
			c.telStaged[dev] += charged
			if c.tel.Enabled() {
				c.tel.Emit(telemetry.Event{At: c.ctx.Now(), Kind: telemetry.Stage,
					Job: idx, ID: job.ID, Tenant: tenantOf(job), Device: dev, From: -1, Stream: -1,
					Bytes: charged, Dur: q.stagingEst})
			}
		}
	}

	sjob := sched.Job{ID: job.ID, Tenant: job.Tenant, Tasks: tasks, Est: est, Ref: idx}
	si, err := c.scheds[dev].Submit(&sjob)
	if err != nil {
		if c.resident != nil {
			// The rejected job's staged transfer never enqueued: the
			// tiles its commit installed must not survive into later
			// runs as phantom residency.
			c.resident.Rollback(q.rcpt)
		}
		c.outcomes[idx].Failed = true
		if c.tel.Enabled() {
			c.tel.Emit(telemetry.Event{At: c.ctx.Now(), Kind: telemetry.Fail,
				Job: idx, ID: job.ID, Tenant: tenantOf(job), Device: dev, From: -1, Stream: -1})
		}
		c.emitOutcome(idx)
		c.fail(fmt.Errorf("cluster: job %d on device %d: %w", job.ID, dev, err))
		return
	}
	if si != len(c.submitted[dev]) {
		c.fail(fmt.Errorf("cluster: internal error: device %d outcome index %d, want %d", dev, si, len(c.submitted[dev])))
		return
	}
	c.submitted[dev] = append(c.submitted[dev], idx)
	q.dev = dev
	q.devIdx = si
}

// jobDone records a completion reported by a per-device scheduler and
// re-enters the placement loop: a drained stream may have opened
// admission capacity for a cluster-queued job, and — with stealing
// enabled — the drain instant is where committed jobs may re-bind.
func (c *Cluster) jobDone(dev int, o sched.JobOutcome) {
	if o.Index >= len(c.submitted[dev]) {
		if o.Failed {
			// A failure fired inside a Submit that has not returned
			// yet (an enqueue error during the synchronous dispatch):
			// route() sees Submit's error and records the real cause —
			// reporting "unknown outcome" here would mask it.
			return
		}
		c.fail(fmt.Errorf("cluster: internal error: device %d reported unknown outcome %d", dev, o.Index))
		return
	}
	idx := c.submitted[dev][o.Index]
	if idx < 0 {
		// A withdrawn slot: the job was stolen away and is accounted
		// under its new device; a late failure report here is stale.
		return
	}
	out := &c.outcomes[idx]
	if o.Failed {
		// The device scheduler aborted with this job still queued;
		// mirror it as a failed cluster outcome, surface the device's
		// error, and roll back the residency installs of a staged
		// transfer that never ran (the cache persists across runs, so
		// phantom tiles would under-charge a later warm replay).
		if c.resident != nil {
			c.resident.Rollback(c.admitted[idx].rcpt)
		}
		out.Failed = true
		c.emitOutcome(idx)
		if err := c.scheds[dev].Err(); err != nil && c.runErr == nil {
			c.fail(err)
		}
		return
	}
	out.Stream = o.Stream
	if out.Slices == 0 {
		// A mid-job migration already captured the victim's dispatch
		// instant (and slice count); only a never-migrated job takes its
		// Start from the completing device.
		out.Start = o.Start
	}
	out.Slices += o.Slices
	out.Done = o.Done
	if out.Deadline > 0 && out.Latency() > out.Deadline {
		out.Missed = true
	}
	c.done++
	c.emitOutcome(idx)
	if c.runErr != nil {
		return
	}
	now := c.ctx.Now()
	if c.tel.Enabled() {
		c.tel.Emit(telemetry.Event{At: now, Kind: telemetry.Drain,
			Job: idx, ID: out.ID, Tenant: out.Tenant, Device: dev, From: -1, Stream: o.Stream})
		acc := c.tenantLat[out.Tenant]
		if acc == nil {
			acc = &tenantAccum{}
			c.tenantLat[out.Tenant] = acc
			c.tenantSeen = append(c.tenantSeen, out.Tenant)
		}
		acc.done++
		acc.lats = append(acc.lats, float64(out.Latency()))
	}
	if c.resident != nil {
		// The drain instant is where write effects land and where
		// capacity is enforced (DESIGN.md §11): invalidate every other
		// device's copy of the completed job's written tiles, then
		// LRU-evict each device back under its byte budget, so the
		// placements priced below see the post-completion cache.
		job := c.admitted[idx].Job
		if len(job.Writes) > 0 {
			var inv0 int64
			if c.tel.Enabled() {
				inv0 = c.resident.Stats().InvalidatedBytes
			}
			c.resident.Invalidate(dev, job.Writes, job.Origin >= 0 && job.Origin != dev)
			if c.tel.Enabled() {
				if d := c.resident.Stats().InvalidatedBytes - inv0; d > 0 {
					c.tel.Emit(telemetry.Event{At: now, Kind: telemetry.Invalidate,
						Job: idx, ID: out.ID, Tenant: out.Tenant, Device: dev, From: dev, Stream: -1, Bytes: d})
				}
			}
		}
		// Per-device enforcement in device order — the same pass
		// EnforceAll runs, unrolled so each device's evicted volume is
		// observable.
		for d := range c.scheds {
			if ev := c.resident.Enforce(d); ev > 0 && c.tel.Enabled() {
				c.tel.Emit(telemetry.Event{At: now, Kind: telemetry.Evict,
					Job: -1, ID: -1, Device: d, From: -1, Stream: -1, Bytes: ev})
			}
		}
	}
	c.dispatch()
	c.trySteals()
	if c.tel.Enabled() {
		c.tel.AddMetrics(c.snapshotMetrics(now))
	}
}

// kernelBusy sums device d's cumulative partition-server occupancy —
// the kernel-side counterpart of pcie.Link.TotalBusy.
func (c *Cluster) kernelBusy(d int) sim.Duration {
	var b sim.Duration
	for _, p := range c.ctx.Device(d).Partitions() {
		b += p.BusyTime()
	}
	return b
}

// snapshotMetrics captures the cluster's state at a drain instant,
// after the instant's placement and steal passes ran. Pure
// observation: every input is a read-only accessor, so metering never
// perturbs a decision.
func (c *Cluster) snapshotMetrics(at sim.Time) telemetry.MetricsSnapshot {
	elapsed := at.Sub(c.runStart)
	secs := elapsed.Seconds()
	snap := telemetry.MetricsSnapshot{
		At:           at,
		Elapsed:      elapsed,
		Done:         c.done,
		Steals:       c.steals,
		ClusterQueue: len(c.queue),
		HitBytes:     c.telHit,
		MissBytes:    c.telMiss,
	}
	parts := c.ctx.Config().Partitions
	snap.Devices = make([]telemetry.DeviceMetrics, len(c.scheds))
	for d, s := range c.scheds {
		dm := telemetry.DeviceMetrics{
			Device:      d,
			Queued:      s.QueueDepth(),
			InFlight:    s.InFlight(),
			Backlog:     s.PendingBacklog(),
			KernelBusy:  c.kernelBusy(d) - c.kernBusy0[d],
			LinkBusy:    c.ctx.Link(d).TotalBusy() - c.linkBusy0[d],
			StagedBytes: c.telStaged[d],
		}
		if c.resident != nil {
			dm.ResidentBytes = c.resident.ResidentBytes(d)
		}
		if secs > 0 && parts > 0 {
			dm.Utilization = dm.KernelBusy.Seconds() / (secs * float64(parts))
		}
		snap.Devices[d] = dm
	}
	names := append([]string(nil), c.tenantSeen...)
	sort.Strings(names)
	tput := make([]float64, 0, len(names))
	for _, name := range names {
		acc := c.tenantLat[name]
		tm := telemetry.TenantMetrics{Tenant: name, Done: acc.done}
		if secs > 0 {
			tm.Throughput = float64(acc.done) / secs
		}
		if len(acc.lats) > 0 {
			tm.MeanLatency = sim.Duration(stats.Mean(acc.lats))
			_, p95, _ := stats.Percentiles(acc.lats)
			tm.P95 = sim.Duration(p95)
		}
		snap.Tenants = append(snap.Tenants, tm)
		tput = append(tput, float64(acc.done))
	}
	snap.Fairness = stats.JainIndex(tput)
	return snap
}

// remainderNeeds maps a migrated remainder — tasks [next:] of the
// job's original list — onto the staging demand it still carries. The
// job's declared read tiles are assumed consumed uniformly in task
// order (task k of K covers read tiles [T·k/K, T·(k+1)/K)); a tile
// straddling the cut still belongs to the remainder. For the per-tile
// task lists the scenario generator builds this is exact — task k
// reads tile k — and for any other shape it is a deterministic
// proportional model. Jobs declaring StagingBytes without regions
// prorate the volume the same way.
func remainderNeeds(job *Job, next int) ([]residency.Region, int64) {
	k := len(job.Tasks)
	if next <= 0 || k == 0 {
		return job.Reads, job.StagingDemand()
	}
	if next >= k {
		return nil, 0
	}
	if len(job.Reads) == 0 {
		rem := job.StagingBytes - job.StagingBytes*int64(next)/int64(k)
		return nil, rem
	}
	total := 0
	for _, r := range job.Reads {
		total += r.Tiles
	}
	skip := total * next / k
	var rem []residency.Region
	for _, r := range job.Reads {
		if skip >= r.Tiles {
			skip -= r.Tiles
			continue
		}
		rr := r
		rr.First += skip
		rr.Tiles -= skip
		skip = 0
		rem = append(rem, rr)
	}
	return rem, residency.TotalBytes(rem)
}

// tenantOf returns the job's tenant label, defaulting empty to
// "default".
func tenantOf(j *Job) string {
	if j.Tenant == "" {
		return "default"
	}
	return j.Tenant
}
