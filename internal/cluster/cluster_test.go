package cluster

import (
	"strings"
	"testing"

	"micstream/internal/core"
	"micstream/internal/device"
	"micstream/internal/hstreams"
	"micstream/internal/model"
	"micstream/internal/sched"
	"micstream/internal/sim"
)

// newCtx builds a timing-only multi-device platform.
func newCtx(t *testing.T, devices, partitions, streams int) *hstreams.Context {
	t.Helper()
	ctx, err := hstreams.Init(hstreams.Config{
		Devices:             devices,
		Partitions:          partitions,
		StreamsPerPartition: streams,
		Trace:               true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// syntheticJob builds a one-task compute job.
func syntheticJob(id int, tenant string, arrival sim.Time, flops float64) Job {
	return Job{
		ID:      id,
		Tenant:  tenant,
		Arrival: arrival,
		Tasks: []*core.Task{{
			ID:         0,
			Cost:       device.KernelCost{Name: "synthetic", Flops: flops},
			StreamHint: -1,
		}},
		Origin: -1,
	}
}

func TestClusterBasics(t *testing.T) {
	ctx := newCtx(t, 2, 2, 1)
	c, err := New(ctx, WithPlacement(LeastLoaded()))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() != 2 {
		t.Fatalf("NumDevices = %d, want 2", c.NumDevices())
	}
	var jobs []Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, syntheticJob(i, string(rune('A'+i%3)), sim.Time(i)*sim.Time(sim.Millisecond)/4, 5e8))
	}
	r, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != len(jobs) {
		t.Fatalf("got %d outcomes, want %d", len(r.Jobs), len(jobs))
	}
	devJobs := 0
	for _, o := range r.Jobs {
		if o.Device < 0 || o.Device >= 2 {
			t.Errorf("job %d ran on invalid device %d", o.ID, o.Device)
		}
		if o.Stream < 0 || o.Stream >= ctx.NumStreams() {
			t.Errorf("job %d ran on invalid stream %d", o.ID, o.Stream)
		}
		// The stream must belong to the recorded device.
		if got := ctx.Stream(o.Stream).DeviceIndex(); got != o.Device {
			t.Errorf("job %d: stream %d is on device %d, outcome says %d", o.ID, o.Stream, got, o.Device)
		}
		if o.Placed < o.Arrival || o.Start < o.Placed || o.Done <= o.Start {
			t.Errorf("job %d has inverted lifecycle %v/%v/%v/%v", o.ID, o.Arrival, o.Placed, o.Start, o.Done)
		}
		if o.Staged {
			t.Errorf("host-resident job %d should not stage", o.ID)
		}
	}
	for _, ds := range r.Devices {
		devJobs += ds.Jobs
		if ds.Jobs > 0 && ds.Utilization <= 0 {
			t.Errorf("device %d ran %d jobs but reports zero utilization", ds.Device, ds.Jobs)
		}
	}
	if devJobs != len(jobs) {
		t.Errorf("device job counts sum to %d, want %d", devJobs, len(jobs))
	}
	// Both devices must participate: 12 back-to-back jobs cannot fit
	// on one device's 2 streams without idling the other.
	if r.Device(0).Jobs == 0 || r.Device(1).Jobs == 0 {
		t.Errorf("expected both devices used, got %d/%d", r.Device(0).Jobs, r.Device(1).Jobs)
	}
	if len(r.Tenants) != 3 {
		t.Fatalf("got %d tenants, want 3", len(r.Tenants))
	}
	if r.Makespan <= 0 || r.GFlops <= 0 {
		t.Errorf("makespan %v / GFlops %v should be positive", r.Makespan, r.GFlops)
	}
	if r.Tenant("A") == nil || r.Tenant("nope") != nil {
		t.Error("Tenant lookup misbehaves")
	}
	if r.Device(0) == nil || r.Device(9) != nil {
		t.Error("Device lookup misbehaves")
	}
}

func TestStagingChargedOffOrigin(t *testing.T) {
	// One job whose data lives on device 1, pinned off-origin by a
	// static policy: it must pay the staged transfer, and the same
	// job placed on its origin must not.
	build := func() Job {
		j := syntheticJob(0, "t", 0, 5e8)
		j.Origin = 1
		j.StagingBytes = 8 << 20
		return j
	}
	off, err := New(newCtx(t, 2, 2, 1), WithPlacement(Static(0)))
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := off.Run([]Job{build()})
	if err != nil {
		t.Fatal(err)
	}
	on, err := New(newCtx(t, 2, 2, 1), WithPlacement(Static(1)))
	if err != nil {
		t.Fatal(err)
	}
	rOn, err := on.Run([]Job{build()})
	if err != nil {
		t.Fatal(err)
	}
	if !rOff.Jobs[0].Staged || rOff.StagedJobs != 1 {
		t.Fatal("off-origin placement should stage")
	}
	if rOn.Jobs[0].Staged || rOn.StagedJobs != 0 {
		t.Fatal("on-origin placement should not stage")
	}
	if want := int64(float64(8<<20) * DefaultStagingFactor); rOff.StagedBytes != want {
		t.Errorf("staged bytes = %d, want %d", rOff.StagedBytes, want)
	}
	// The staging is real simulated traffic, not an accounting
	// fiction: the off-origin run must take longer.
	if rOff.Makespan <= rOn.Makespan {
		t.Errorf("off-origin makespan %v should exceed on-origin %v", rOff.Makespan, rOn.Makespan)
	}
}

func TestPredictedAvoidsStagingWhenFree(t *testing.T) {
	// Two idle devices, one device-resident job: predicted placement
	// must route it home; least-loaded (tie → device 0) must not.
	build := func() []Job {
		j := syntheticJob(0, "t", 0, 5e8)
		j.Origin = 1
		j.StagingBytes = 4 << 20
		return []Job{j}
	}
	pc, err := New(newCtx(t, 2, 2, 1), WithPlacement(Predicted()))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := pc.Run(build())
	if err != nil {
		t.Fatal(err)
	}
	if rp.Jobs[0].Device != 1 || rp.Jobs[0].Staged {
		t.Errorf("predicted placed the job on device %d (staged=%v), want its origin 1 unstaged",
			rp.Jobs[0].Device, rp.Jobs[0].Staged)
	}
	lc, err := New(newCtx(t, 2, 2, 1), WithPlacement(LeastLoaded()))
	if err != nil {
		t.Fatal(err)
	}
	rl, err := lc.Run(build())
	if err != nil {
		t.Fatal(err)
	}
	if rl.Jobs[0].Device != 0 || !rl.Jobs[0].Staged {
		t.Errorf("least-loaded placed the job on device %d (staged=%v), want the load-blind 0 staged",
			rl.Jobs[0].Device, rl.Jobs[0].Staged)
	}
}

func TestPredictedCalibrationMovesPlacement(t *testing.T) {
	// The predicted policy must price staging through its model, so a
	// calibrated TransferScale changes the stage-or-wait decision: a
	// blocker occupies the job's home device, and the device-resident
	// job either crosses to the idle device (staging looks cheap) or
	// waits at home (staging looks ruinous).
	run := func(ts float64) *Result {
		ctx := newCtx(t, 2, 1, 1)
		cfg := ctx.Config()
		m := model.New(cfg.Device, cfg.Link)
		m.TransferScale = ts
		c, err := New(ctx, WithPlacement(PredictedWithModel(m)))
		if err != nil {
			t.Fatal(err)
		}
		blocker := syntheticJob(0, "t", 0, 4e9)
		blocker.Origin = 1
		blocker.StagingBytes = 8 << 20
		affine := syntheticJob(1, "t", sim.Time(sim.Microsecond), 1e8)
		affine.Origin = 1
		affine.StagingBytes = 8 << 20
		r, err := c.Run([]Job{blocker, affine})
		if err != nil {
			t.Fatal(err)
		}
		if r.Jobs[0].Device != 1 {
			t.Fatalf("blocker placed on device %d, want its origin 1", r.Jobs[0].Device)
		}
		return r
	}
	cheap := run(0.25)
	if cheap.Jobs[1].Device != 0 || !cheap.Jobs[1].Staged {
		t.Errorf("cheap staging: job on device %d (staged %v), want crossing to 0",
			cheap.Jobs[1].Device, cheap.Jobs[1].Staged)
	}
	costly := run(4)
	if costly.Jobs[1].Device != 1 || costly.Jobs[1].Staged {
		t.Errorf("costly staging: job on device %d (staged %v), want waiting at home 1",
			costly.Jobs[1].Device, costly.Jobs[1].Staged)
	}
}

func TestRoundRobinRotatesDevices(t *testing.T) {
	ctx := newCtx(t, 3, 1, 1)
	c, err := New(ctx, WithPlacement(RoundRobin()))
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, syntheticJob(i, "t", sim.Time(i)*sim.Time(100*sim.Millisecond), 1e8))
	}
	r, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range r.Jobs {
		if o.Device != i%3 {
			t.Errorf("job %d placed on device %d, want %d", i, o.Device, i%3)
		}
	}
}

func TestClusterQueueDefersUnderSaturation(t *testing.T) {
	// 2 devices × 1 stream, queue depth 1: five simultaneous jobs →
	// two dispatch, two commit to queues, the fifth waits at cluster
	// level until a completion frees capacity (Placed > Arrival).
	ctx := newCtx(t, 2, 1, 1)
	c, err := New(ctx, WithQueueDepth(1), WithPlacement(LeastLoaded()))
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, syntheticJob(i, "t", 0, 5e8))
	}
	r, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	deferred := 0
	for _, o := range r.Jobs {
		if o.PlaceWait() > 0 {
			deferred++
		}
	}
	if deferred == 0 {
		t.Fatal("saturated cluster should defer at least one placement")
	}
}

func TestClusterSequentialRunsCompose(t *testing.T) {
	ctx := newCtx(t, 2, 1, 1)
	c, err := New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.Run([]Job{syntheticJob(0, "a", 0, 1e8)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Run([]Job{syntheticJob(1, "a", 0, 1e8)})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Jobs[0].Arrival < r1.Jobs[0].Done {
		t.Fatalf("second run admitted at %v, before first run finished at %v",
			r2.Jobs[0].Arrival, r1.Jobs[0].Done)
	}
}

func TestClusterErrors(t *testing.T) {
	ctx := newCtx(t, 2, 1, 1)
	if _, err := New(nil); err == nil {
		t.Error("nil context should error")
	}
	if _, err := New(ctx, WithQueueDepth(-1)); err == nil {
		t.Error("negative queue depth should error")
	}
	if _, err := New(ctx, WithStagingFactor(-1)); err == nil {
		t.Error("negative staging factor should error")
	}
	if _, err := New(ctx, WithDevicePolicy(nil)); err == nil {
		t.Error("nil device policy factory should error")
	}
	c, err := New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run([]Job{{ID: 0}}); err == nil {
		t.Error("task-less job should error")
	}
	if _, err := c.Run([]Job{{ID: 0, Tasks: []*core.Task{nil}}}); err == nil {
		t.Error("nil task should error")
	}
	bad := syntheticJob(0, "t", -1, 1e8)
	if _, err := c.Run([]Job{bad}); err == nil {
		t.Error("negative arrival should error")
	}
	orig := syntheticJob(0, "t", 0, 1e8)
	orig.Origin = 7
	if _, err := c.Run([]Job{orig}); err == nil {
		t.Error("out-of-range origin should error")
	}
	neg := syntheticJob(0, "t", 0, 1e8)
	neg.Origin = 1
	neg.StagingBytes = -1
	if _, err := c.Run([]Job{neg}); err == nil {
		t.Error("negative staging volume should error")
	}
	if _, err := ByName("random"); err == nil {
		t.Error("unknown placement name should error")
	}
	for _, name := range Policies() {
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, p, err)
		}
	}
}

func TestBuildScenarioShapes(t *testing.T) {
	ctx := newCtx(t, 2, 2, 1)
	jobs, err := BuildScenario(ctx, ScenarioConfig{Seed: 7, AffinityFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 48 {
		t.Fatalf("default scenario has %d jobs, want 48", len(jobs))
	}
	affine := 0
	for _, j := range jobs {
		if len(j.Tasks) != 2 {
			t.Fatalf("job %d has %d tasks, want 2", j.ID, len(j.Tasks))
		}
		if j.Arrival < 0 {
			t.Fatalf("job %d has negative arrival", j.ID)
		}
		if j.Origin >= 0 {
			affine++
			if j.StagingBytes <= 0 {
				t.Fatalf("affine job %d has no staging volume", j.ID)
			}
		}
	}
	if affine == 0 || affine == len(jobs) {
		t.Errorf("affinity fraction 0.5 produced %d/%d affine jobs", affine, len(jobs))
	}
	if _, err := BuildScenario(ctx, ScenarioConfig{Arrival: "uniform"}); err == nil {
		t.Error("unknown arrival should error")
	}
	if _, err := BuildScenario(ctx, ScenarioConfig{Origins: []int{5}}); err == nil {
		t.Error("out-of-range origin should error")
	}
	if _, err := BuildScenario(ctx, ScenarioConfig{SizeSpread: 0.5}); err == nil {
		t.Error("size spread below 1 should error")
	}
}

func TestScenarioEndToEndAllPlacements(t *testing.T) {
	for _, place := range Policies() {
		for _, arrival := range []string{"poisson", "bursty", "diurnal", "correlated"} {
			ctx := newCtx(t, 2, 2, 2)
			jobs, err := BuildScenario(ctx, ScenarioConfig{Seed: 3, Arrival: arrival, AffinityFraction: 0.3, Origins: []int{0, 1}})
			if err != nil {
				t.Fatal(err)
			}
			p, err := ByName(place)
			if err != nil {
				t.Fatal(err)
			}
			c, err := New(ctx, WithPlacement(p))
			if err != nil {
				t.Fatal(err)
			}
			r, err := c.Run(jobs)
			if err != nil {
				t.Fatalf("%s/%s: %v", place, arrival, err)
			}
			if len(r.Jobs) != len(jobs) || r.Makespan <= 0 {
				t.Fatalf("%s/%s: incomplete run", place, arrival)
			}
		}
	}
}

func TestClusterOnFunctionalContext(t *testing.T) {
	// Functional contexts move real data; the staging scratch buffer
	// must have real backing instead of panicking on transfer.
	ctx, err := hstreams.Init(hstreams.Config{
		Devices: 2, Partitions: 1, ExecuteKernels: true, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, WithPlacement(Static(0)))
	if err != nil {
		t.Fatal(err)
	}
	j := syntheticJob(0, "t", 0, 1e8)
	j.Origin = 1
	j.StagingBytes = 1 << 16
	r, err := c.Run([]Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Jobs[0].Staged {
		t.Fatal("expected a staged run")
	}
}

// vandalPlacement places like least-loaded for its first good picks,
// then returns an out-of-range device index.
type vandalPlacement struct {
	good  int
	picks int
}

func (p *vandalPlacement) Name() string { return "vandal" }

func (p *vandalPlacement) Place(_ *Queued, eligible []DeviceView) int {
	p.picks++
	if p.picks > p.good {
		return len(eligible) + 7
	}
	return 0
}

func TestPlacementErrorSurfacesQueuedJobs(t *testing.T) {
	// Regression: a placement error mid-run used to silently drop every
	// job still waiting in the cluster queue — nil result, no outcome.
	ctx := newCtx(t, 2, 1, 1)
	c, err := New(ctx, WithPlacement(&vandalPlacement{good: 2}))
	if err != nil {
		t.Fatal(err)
	}
	gap := sim.Time(20 * sim.Millisecond)
	var jobs []Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, syntheticJob(i, "t", sim.Time(i)*gap, 5e8))
	}
	r, err := c.Run(jobs)
	if err == nil {
		t.Fatal("vandal placement should abort the run")
	}
	if r == nil {
		t.Fatal("aborted run should still return the partial result")
	}
	if len(r.Jobs) != len(jobs) {
		t.Fatalf("partial result lists %d jobs, want %d", len(r.Jobs), len(jobs))
	}
	ran, failed := 0, 0
	for _, o := range r.Jobs {
		if o.Failed {
			failed++
		} else {
			ran++
			if o.Done <= o.Start {
				t.Errorf("completed job %d has no lifecycle", o.ID)
			}
		}
	}
	if ran != 2 || failed != 4 {
		t.Fatalf("got %d completed + %d failed, want 2 + 4", ran, failed)
	}
	if r.Failed != failed {
		t.Errorf("Result.Failed = %d, want %d", r.Failed, failed)
	}
}

// vandalStreamPolicy is a per-device stream policy that picks an
// invalid stream after its first good picks — the mid-run device
// failure the cluster's two-level queue must surface, not swallow.
type vandalStreamPolicy struct {
	good  int
	picks int
}

func (p *vandalStreamPolicy) Name() string { return "vandal-stream" }

func (p *vandalStreamPolicy) Pick(pending []*sched.Pending, idle []int, _ *sched.View) (int, int) {
	p.picks++
	if p.picks > p.good {
		return 0, -1
	}
	return 0, idle[0]
}

func TestDevicePolicyErrorSurfacesCommittedJobs(t *testing.T) {
	// Device 0's stream policy fails on its third dispatch; the jobs
	// already committed to its queue — and any jobs the cluster holds —
	// must come back as failed outcomes with the device's error.
	ctx := newCtx(t, 2, 1, 1)
	c, err := New(ctx,
		WithPlacement(Static(0)),
		WithQueueDepth(2),
		WithDevicePolicy(func() sched.Policy { return &vandalStreamPolicy{good: 2} }),
	)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, syntheticJob(i, "t", 0, 5e8))
	}
	r, err := c.Run(jobs)
	if err == nil {
		t.Fatal("vandal device policy should abort the run")
	}
	if r == nil {
		t.Fatal("aborted run should still return the partial result")
	}
	if len(r.Jobs) != len(jobs) {
		t.Fatalf("partial result lists %d jobs, want %d", len(r.Jobs), len(jobs))
	}
	completed := 0
	for _, o := range r.Jobs {
		if !o.Failed {
			completed++
		}
	}
	if completed == 0 || completed == len(jobs) {
		t.Fatalf("%d of %d jobs completed; want a mid-run split", completed, len(jobs))
	}
	if r.Failed != len(jobs)-completed {
		t.Errorf("Result.Failed = %d, want %d", r.Failed, len(jobs)-completed)
	}
	// Tenant aggregates must only cover the completed jobs.
	total := 0
	for _, ts := range r.Tenants {
		total += ts.Jobs
	}
	if total != completed {
		t.Errorf("tenant aggregates cover %d jobs, want %d", total, completed)
	}
}

func TestEnqueueErrorKeepsRealCause(t *testing.T) {
	// A job whose tasks fail core.EnqueuePhase (dangling dependency)
	// errors inside the synchronous dispatch of Submit; the run must
	// surface that cause, not a misleading "unknown outcome" internal
	// error, and mark the job failed.
	ctx := newCtx(t, 2, 1, 1)
	c, err := New(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bad := Job{
		ID: 0,
		Tasks: []*core.Task{{
			ID:         0,
			Cost:       device.KernelCost{Name: "bad", Flops: 1e8},
			DependsOn:  []int{99},
			StreamHint: -1,
		}},
		Origin: -1,
	}
	r, err := c.Run([]Job{bad})
	if err == nil {
		t.Fatal("dangling dependency should abort the run")
	}
	if got := err.Error(); !strings.Contains(got, "depend") && !strings.Contains(got, "99") {
		t.Errorf("error %q should name the real enqueue failure, not an internal error", got)
	}
	if r == nil || len(r.Jobs) != 1 || !r.Jobs[0].Failed {
		t.Errorf("partial result should flag the job failed, got %+v", r)
	}
}
