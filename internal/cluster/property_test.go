package cluster

import (
	"testing"

	"micstream/internal/schedtest"
	"micstream/internal/sim"
)

// clusterMarkNames labels the cluster lifecycle for the shared
// harness: admission, commitment, dispatch, completion.
var clusterMarkNames = []string{"arrival", "placed", "start", "done"}

// clusterSpans projects a cluster result onto the shared invariant
// harness: the wait interval is the placement wait arrival→placed (the
// cluster-attributable share), the busy interval the stream occupancy,
// and the lifecycle promises arrival ≤ placed ≤ start ≤ done.
func clusterSpans(r *Result) []schedtest.Span {
	out := make([]schedtest.Span, 0, len(r.Jobs))
	for _, o := range r.Jobs {
		out = append(out, schedtest.Span{
			ID: o.ID, Index: o.Index, Stream: o.Stream,
			Wait:  [2]sim.Time{o.Arrival, o.Placed},
			Busy:  [2]sim.Time{o.Start, o.Done},
			Marks: []sim.Time{o.Arrival, o.Placed, o.Start, o.Done},
		})
	}
	return out
}

// runScenario executes one (placement, scenario, seed) cell on a fresh
// 2-device × 2-partition × 2-stream platform.
func runScenario(t *testing.T, place string, cfg ScenarioConfig, extra ...Option) *Result {
	t.Helper()
	ctx := newCtx(t, 2, 2, 2)
	jobs, err := BuildScenario(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ByName(place)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, append([]Option{WithPlacement(p)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// imbalanced is the scenario grid the properties quantify over: a 16×
// size spread with a third of the jobs device-resident.
func imbalanced(seed uint64) ScenarioConfig {
	return ScenarioConfig{
		Seed:             seed,
		Arrival:          "bursty",
		SizeSpread:       4,
		AffinityFraction: 0.33,
		Origins:          []int{0, 1},
	}
}

// TestClusterBitIdenticalRepeats asserts the determinism contract for
// every placement policy: the same configuration produces
// byte-for-byte identical results on every run.
func TestClusterBitIdenticalRepeats(t *testing.T) {
	for _, place := range Policies() {
		place := place
		schedtest.BitIdentical(t, place, func(seed uint64) any {
			return runScenario(t, place, imbalanced(seed))
		}, 99, 100)
	}
}

// TestClusterWorkConserving asserts the cluster-level invariant for
// the built-in (non-pinning) policies: while any job waits unplaced in
// the cluster queue, every stream of every device is busy
// (schedtest.WorkConserving over the placement-wait intervals).
func TestClusterWorkConserving(t *testing.T) {
	streams := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, place := range Policies() {
		for _, seed := range []uint64{5, 11, 23} {
			cfg := imbalanced(seed)
			cfg.Jobs = 64
			r := runScenario(t, place, cfg)
			schedtest.WorkConserving(t, place, clusterSpans(r), streams)
		}
	}
}

// TestPredictedWithinStaticBound asserts the placement-quality bound:
// predicted placement never trails the best static single-device
// assignment (every job pinned to the single best device of the same
// platform) by more than 5% of makespan, across the imbalanced
// scenario grid. In practice it should win outright — the second
// device's streams are free capacity — but the bound is what the
// policy contract states (DESIGN.md §9).
func TestPredictedWithinStaticBound(t *testing.T) {
	const bound = 1.05
	for _, seed := range []uint64{1, 7, 13, 29} {
		cfg := imbalanced(seed)
		pred := runScenario(t, "predicted", cfg)

		bestStatic := sim.Duration(0)
		for d := 0; d < 2; d++ {
			ctx := newCtx(t, 2, 2, 2)
			jobs, err := BuildScenario(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			c, err := New(ctx, WithPlacement(Static(d)))
			if err != nil {
				t.Fatal(err)
			}
			r, err := c.Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			if bestStatic == 0 || r.Makespan < bestStatic {
				bestStatic = r.Makespan
			}
		}
		if float64(pred.Makespan) > bound*float64(bestStatic) {
			t.Errorf("seed %d: predicted makespan %v exceeds %.0f%% of best static single-device %v",
				seed, pred.Makespan, bound*100, bestStatic)
		}
	}
}

// TestEveryClusterJobRunsExactlyOnce asserts completeness under every
// placement policy.
func TestEveryClusterJobRunsExactlyOnce(t *testing.T) {
	for _, place := range Policies() {
		cfg := imbalanced(42)
		cfg.Jobs = 60
		r := runScenario(t, place, cfg)
		schedtest.UniqueCompletion(t, place, clusterSpans(r), 60, clusterMarkNames)
	}
}

// TestClusterQueueEmptyUnlessSaturated exercises the dispatch-loop
// invariant directly via the test hook: after every placement loop, a
// non-empty cluster queue implies every device has a full committed
// queue and no idle stream.
func TestClusterQueueEmptyUnlessSaturated(t *testing.T) {
	ctx := newCtx(t, 2, 2, 1)
	jobs, err := BuildScenario(ctx, imbalanced(17))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(ctx, WithQueueDepth(1), WithPlacement(Predicted()))
	if err != nil {
		t.Fatal(err)
	}
	checks := 0
	c.afterChange = func() {
		checks++
		if len(c.queue) == 0 {
			return
		}
		for d, s := range c.scheds {
			if s.QueueDepth() < 1 {
				t.Fatalf("cluster queue holds %d jobs while device %d has admission capacity", len(c.queue), d)
			}
			if s.InFlight() < len(s.Streams()) {
				t.Fatalf("cluster queue holds %d jobs while device %d has an idle stream", len(c.queue), d)
			}
		}
	}
	if _, err := c.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if checks == 0 {
		t.Fatal("dispatch hook never ran")
	}
}
